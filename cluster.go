// Cluster mode: a shared-nothing coordinator/worker deployment of Balance
// Sort over TCP. The coordinator scatters the input across W worker
// processes, gathers per-worker key histograms, picks bucket pivots
// deterministically, drives a balancer-placed all-to-all block exchange
// (the paper's Invariant 2 bound x_bh <= m_b + 1 holds on the received
// block matrix), gathers each bucket to its owner, has every worker sort
// its shard with the file-backed SortFile path, and drains the shards in
// key order — producing output byte-identical to a single-process sort.
package balancesort

import (
	"context"
	"net"
	"sync/atomic"
	"time"

	"balancesort/internal/cluster"
	"balancesort/internal/obs"
)

// WorkerLostError is the typed error for a cluster peer that stayed
// unreachable through the dialer's whole retry/backoff budget — the
// distributed analogue of diskio's DiskFailedError. errors.As works on it
// across the coordinator/worker process boundary.
type WorkerLostError = cluster.WorkerLostError

// ClusterDegradedError is returned when worker losses drop the cluster
// below quorum (⌊W/2⌋+1 survivors) and failover can no longer rebuild the
// job. It wraps the quorum-breaking *WorkerLostError.
type ClusterDegradedError = cluster.ClusterDegradedError

// ClusterHeartbeat configures the coordinator's failure detector; see
// ClusterConfig.Heartbeat.
type ClusterHeartbeat = cluster.Heartbeat

// ChaosSpec injects one worker fault at a chosen coordinator phase; see
// ClusterConfig.Chaos. With Coordinator set, the coordinator itself is the
// victim: Sort aborts with ErrCoordinatorChaosKill at the named phase, and
// ResumeClusterSortFile must finish the job from the journal.
type ChaosSpec = cluster.ChaosSpec

// ClusterJoin admits one extra worker at a chosen coordinator phase; see
// ClusterConfig.Join.
type ClusterJoin = cluster.JoinSpec

// StragglerError is the typed error for a worker that stayed alive but
// fell past its phase deadline budget without progress — the latency dual
// of WorkerLostError. errors.As works on it across the process boundary.
type StragglerError = cluster.StragglerError

// ClusterStraggler configures the progress-rate straggler detector and
// the hedged shard-sort re-execution path; see ClusterConfig.Straggler.
type ClusterStraggler = cluster.StragglerConfig

// ClusterStall slows one worker by a multiplicative factor from a chosen
// coordinator phase on — the latency fault injector behind `-chaos-stall`;
// see ClusterConfig.Stall.
type ClusterStall = cluster.StallSpec

// ErrCoordinatorChaosKill is the sentinel ClusterSortFile returns when
// ChaosSpec.Coordinator simulated a coordinator crash — the point where a
// real deployment would call ResumeClusterSortFile.
var ErrCoordinatorChaosKill = cluster.ErrCoordinatorChaosKill

// ErrNoJournaledStart means ResumeClusterSortFile found a journal that
// never recorded a job start; callers fall back to a fresh ClusterSortFile
// (the input file is still the source of truth).
var ErrNoJournaledStart = cluster.ErrNoJournaledStart

// ClusterRecovery reports what a failover cost; see ClusterResult.Recovery.
type ClusterRecovery = cluster.RecoveryStats

// ClusterPhases are the coordinator phase names, in order — the legal
// values for ChaosSpec.Phase and the vocabulary of RecoveryStats.LostPhases.
func ClusterPhases() []string {
	return append([]string(nil), cluster.CoordinatorPhases...)
}

// ClusterConfig configures a coordinator-driven cluster sort.
type ClusterConfig struct {
	// Workers are the worker addresses, in worker-ID order.
	Workers []string
	// Buckets is S, the key-range bucket count. 0 means 4x the worker
	// count.
	Buckets int
	// BlockRecs is the exchange block size in records. 0 means 2048.
	BlockRecs int
	// DialAttempts, DialBackoff, and IOTimeout tune the connection
	// retry/backoff budget and the per-operation deadline. Zero values
	// select the defaults (6 attempts, 25ms doubling backoff, 30s I/O
	// timeout).
	DialAttempts int
	DialBackoff  time.Duration
	IOTimeout    time.Duration
	// Heartbeat tunes the failure detector: a dedicated ping connection
	// per worker whose missed-pong budget declares a silent worker lost.
	// The zero value means 500ms pings with a budget of 3 misses; set
	// Disable to turn monitoring off.
	Heartbeat ClusterHeartbeat
	// Chaos, when non-nil, kills (or hangs) one worker at the start of the
	// named coordinator phase — the built-in chaos harness behind the
	// `-chaos-kill` flag. The job must still produce byte-identical
	// output, recovering through failover.
	Chaos *ChaosSpec
	// Join, when non-nil, admits one extra worker mid-job at the start of
	// the named coordinator phase — the elastic scale-out harness behind
	// `-chaos-join`. The joiner becomes an added virtual disk: the epoch is
	// bumped, bucket placement is re-planned over W+1 workers, and the
	// output stays byte-identical.
	Join *ClusterJoin
	// Straggler configures the progress-rate failure detector: per-phase
	// deadline budgets (derived from the plan cost model and the median
	// finisher when not pinned), demotion of a stalled worker to the
	// failover path, and — with Hedge set — speculative re-execution of a
	// straggling shard sort on the fastest finished peer, first result
	// wins. The zero value disables detection entirely (liveness-only
	// heartbeats, the pre-v6 behaviour).
	Straggler ClusterStraggler
	// Stall, when non-nil, slows one worker by a multiplicative factor
	// from the start of the named coordinator phase — the latency chaos
	// harness behind `-chaos-stall`. Unlike Chaos the victim stays alive
	// and keeps answering heartbeats; only the Straggler detector can get
	// the job off its critical path.
	Stall *ClusterStall
	// JournalPath, when non-empty, appends a crash-consistent journal of
	// phase transitions, scatter extents, worker losses, and failovers —
	// the audit trail for a recovery decision.
	JournalPath string
	// Obs configures coordinator-side phase tracing. With Obs.Trace set,
	// every worker also records its phases and ships them back over the
	// protocol at the end of the job; ClusterResult.Trace is the merged
	// timeline.
	Obs ObsConfig
}

func (c ClusterConfig) dial() cluster.DialConfig {
	return cluster.DialConfig{
		Attempts:  c.DialAttempts,
		Backoff:   c.DialBackoff,
		IOTimeout: c.IOTimeout,
	}
}

// ClusterResult reports what a cluster sort moved and how evenly the
// balancer spread the exchange.
type ClusterResult struct {
	Records        int     `json:"records"`         // records sorted
	Workers        int     `json:"workers"`         // cluster width W
	Buckets        int     `json:"buckets"`         // S
	ExchangeBlocks int     `json:"exchange_blocks"` // blocks moved by the placement exchange
	RecvBlocks     []int   `json:"recv_blocks"`     // per-worker received blocks (column sums of X)
	X              [][]int `json:"x,omitempty"`     // X[b][h]: blocks of bucket b placed on worker h
	GatherRecords  []int   `json:"gather_records"`  // per-worker final shard sizes
	// Recovery is non-nil when the job survived worker losses: who died,
	// in which phase, what was re-scattered, and what failover cost in
	// wall time. X's columns then cover only Recovery.ActiveWorkers.
	Recovery *ClusterRecovery `json:"recovery,omitempty"`
	// Trace is the merged coordinator+worker timeline when ClusterConfig.Obs
	// asked for one; nil otherwise.
	Trace *Trace `json:"-"`
}

// ClusterSortFile externally sorts the 16-byte-record file inPath into
// outPath across the given cluster of workers. The workers must already be
// serving (ServeWorker, or `balancesort -join`). Output is verified sorted
// while streaming and is byte-identical to SortFile on the same input; a
// worker that stays unreachable fails the job fast with a *WorkerLostError
// rather than hanging.
func ClusterSortFile(ctx context.Context, inPath, outPath string, cfg ClusterConfig) (*ClusterResult, error) {
	tr := cfg.Obs.tracer()
	cfg.Obs.attach("coordinator", tr)
	stats, err := cluster.Sort(ctx, inPath, outPath, cluster.SortSpec{
		Workers:     cfg.Workers,
		Buckets:     cfg.Buckets,
		BlockRecs:   cfg.BlockRecs,
		Dial:        cfg.dial(),
		Heartbeat:   cfg.Heartbeat,
		Chaos:       cfg.Chaos,
		Join:        cfg.Join,
		Straggler:   cfg.Straggler,
		Stall:       cfg.Stall,
		JournalPath: cfg.JournalPath,
		Trace:       tr,
		Sample:      cfg.Obs.Sample,
	})
	if err != nil {
		return nil, err
	}
	return clusterResultFrom(stats, tr), nil
}

// ResumeClusterSortFile restarts a crashed coordinator's job from the
// journal at cfg.JournalPath (which must be the path the original
// ClusterSortFile wrote). It replays the phase-commit log, re-dials the
// workers with the v4 resume handshake — each reports which epoch-tagged
// shard it still holds, and only lost shards are re-scattered — and
// re-enters the pipeline at the last committed phase. The output is
// byte-identical to an uninterrupted sort; the journaled pivots are
// cross-checked against the recomputed ones as a determinism assertion.
// Workers, Buckets, and BlockRecs are taken from the journal, not cfg.
func ResumeClusterSortFile(ctx context.Context, inPath, outPath string, cfg ClusterConfig) (*ClusterResult, error) {
	tr := cfg.Obs.tracer()
	cfg.Obs.attach("coordinator", tr)
	stats, err := cluster.Resume(ctx, inPath, outPath, cluster.SortSpec{
		Workers:     cfg.Workers,
		Dial:        cfg.dial(),
		Heartbeat:   cfg.Heartbeat,
		Straggler:   cfg.Straggler,
		JournalPath: cfg.JournalPath,
		Trace:       tr,
		Sample:      cfg.Obs.Sample,
	})
	if err != nil {
		return nil, err
	}
	return clusterResultFrom(stats, tr), nil
}

func clusterResultFrom(stats *cluster.SortStats, tr *obs.Tracer) *ClusterResult {
	return &ClusterResult{
		Records:        stats.Records,
		Workers:        stats.Workers,
		Buckets:        stats.Buckets,
		ExchangeBlocks: stats.ExchangeBlocks,
		RecvBlocks:     stats.RecvBlocks,
		X:              stats.X,
		GatherRecords:  stats.GatherRecords,
		Recovery:       stats.Recovery,
		Trace:          traceFrom(tr),
	}
}

// WorkerOptions configures one cluster worker process.
type WorkerOptions struct {
	// ScratchDir holds per-job shard, exchange, and sort-scratch files; ""
	// means the OS temp dir.
	ScratchDir string
	// Sort configures the worker-local file-backed sort (disks, block
	// size, memory, I/O engine, robustness) exactly as for SortFile. If
	// Sort.Engine is empty the worker defaults to EngineAuto so the
	// planner picks per shard.
	Sort Config
	// InMemory sorts shards in memory instead of through the file-backed
	// engine — for tests and small shards.
	InMemory bool
	// PhaseTimeout bounds a barrier wait for blocks that never arrive.
	// 0 means 2 minutes.
	PhaseTimeout time.Duration
	// DialAttempts, DialBackoff, and IOTimeout tune peer redial/backoff.
	DialAttempts int
	DialBackoff  time.Duration
	IOTimeout    time.Duration
	// DropAfterBlocks force-closes a peer connection once after that many
	// sent blocks — fault injection for the retransmit path. 0 disables.
	DropAfterBlocks int
	// ResumeWindow bounds how long a worker parks its shard after losing a
	// v4 coordinator, waiting for a resumed coordinator to re-attach. Past
	// the window the parked scratch is reclaimed. 0 means 2 minutes.
	ResumeWindow time.Duration
	// ObsAddr, when non-empty, serves this worker's Prometheus /metrics
	// and pprof endpoints on the address for the lifetime of ServeWorker.
	// Empty opens no listener.
	ObsAddr string
	// Sample, when positive, runs a background utilization sampler per
	// job session: goroutines, heap, and wire throughput ride the shipped
	// trace as counter tracks (see ObsConfig.Sample for the coordinator
	// side).
	Sample time.Duration
}

// ServeWorker runs a cluster worker on ln until ctx is canceled or the
// listener fails. Each worker shard is sorted with the same file-backed
// SortFile path a single-process sort uses (unless InMemory is set).
func ServeWorker(ctx context.Context, ln net.Listener, opt WorkerOptions) error {
	wcfg := cluster.WorkerConfig{
		ScratchDir:   opt.ScratchDir,
		PhaseTimeout: opt.PhaseTimeout,
		Dial: cluster.DialConfig{
			Attempts:  opt.DialAttempts,
			Backoff:   opt.DialBackoff,
			IOTimeout: opt.IOTimeout,
		},
		DropAfterBlocks: opt.DropAfterBlocks,
		ResumeWindow:    opt.ResumeWindow,
		Sample:          opt.Sample,
	}
	if opt.ObsAddr != "" {
		srv := obs.NewServer()
		if err := srv.Start(opt.ObsAddr); err != nil {
			return err
		}
		defer srv.Close()
		wcfg.Obs = srv
	}
	if !opt.InMemory {
		sortCfg := opt.Sort
		if sortCfg.Engine == "" {
			// Shard sizes vary with W and the input, so let the planner pick
			// the cheapest engine per shard unless the operator pinned one.
			sortCfg.Engine = EngineAuto
		}
		// Feed each shard sort's measured device bandwidth into the next
		// one's planner, so after the first shard EngineAuto ranks engines
		// with this host's real throughput instead of the 200 MB/s default.
		// An operator-pinned Throughput wins over the feedback loop.
		var measured atomic.Pointer[Throughput]
		wcfg.SortShard = func(ctx context.Context, inPath, outPath, scratchDir string) error {
			cfg := sortCfg
			if cfg.Throughput == (Throughput{}) {
				if t := measured.Load(); t != nil {
					cfg.Throughput = *t
				}
			}
			res, err := SortFileContext(ctx, inPath, outPath, scratchDir, cfg)
			if err == nil && res.MeasuredThroughput != nil {
				measured.Store(res.MeasuredThroughput)
			}
			return err
		}
	}
	return cluster.NewWorker(wcfg).Serve(ctx, ln)
}
