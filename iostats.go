package balancesort

import (
	"context"
	"time"

	"balancesort/internal/diskio"
	"balancesort/internal/obs"
)

// IOConfig configures the concurrent disk I/O engine that file-backed
// sorts (SortFile) can mount under the simulated array. The engine changes
// only wall-clock behavior — queueing, read-ahead, write coalescing, fault
// tolerance — never the model costs: parallel I/O counts are identical
// with the engine on or off.
type IOConfig struct {
	// Engine mounts the concurrent I/O engine. False keeps the
	// synchronous per-disk file stores.
	Engine bool
	// QueueDepth bounds each disk's request queue (0 = 8).
	QueueDepth int
	// Prefetch is the per-disk read-ahead window in blocks (0 = 2 when
	// the engine is on; use a negative value to disable read-ahead).
	Prefetch int
	// WriteBehind is the longest run of adjacent blocks coalesced into
	// one write (0 = 4 when the engine is on; negative disables).
	WriteBehind int
	// MaxRetries bounds the retries of a failed device op (0 = 4).
	MaxRetries int
	// FaultRate injects transient device errors with this probability —
	// the engine's retry/backoff/breaker machinery absorbs them.
	FaultRate float64
	// TornWriteRate is the probability that an injected write fault
	// leaves half the block behind (the retry rewrites it).
	TornWriteRate float64
	// LatencyJitter adds up to this much uniform random delay per device
	// op.
	LatencyJitter time.Duration
	// FaultSeed makes the injected fault sequence reproducible.
	FaultSeed uint64
}

// engineConfig translates the facade knobs to the engine's. ctx cancels
// blocked queue submits, retry backoffs, and breaker cooldowns; tr (may be
// nil) records the engine's flush/retry/breaker activity.
func (c IOConfig) engineConfig(ctx context.Context, tr *obs.Tracer) diskio.Config {
	prefetch := c.Prefetch
	switch {
	case prefetch == 0:
		prefetch = 2
	case prefetch < 0:
		prefetch = 0
	}
	writeBehind := c.WriteBehind
	switch {
	case writeBehind == 0:
		writeBehind = 4
	case writeBehind < 0:
		writeBehind = 0
	}
	return diskio.Config{
		QueueDepth:  c.QueueDepth,
		Prefetch:    prefetch,
		WriteBehind: writeBehind,
		MaxRetries:  c.MaxRetries,
		Context:     ctx,
		Trace:       tr,
		Fault: diskio.FaultConfig{
			ErrorRate:     c.FaultRate,
			TornWriteRate: c.TornWriteRate,
			LatencyJitter: c.LatencyJitter,
			Seed:          c.FaultSeed,
		},
	}
}

// DiskIOStats are one disk's engine counters (see IOStats).
type DiskIOStats struct {
	// Reads and Writes count completed device transfers (a coalesced run
	// is one write); BytesRead/BytesWritten are the payload moved.
	Reads        int64 `json:"reads"`
	Writes       int64 `json:"writes"`
	BytesRead    int64 `json:"bytes_read"`
	BytesWritten int64 `json:"bytes_written"`
	// Retries, Faults, and BreakerTrips describe the fault-handling
	// layer's activity.
	Retries      int64 `json:"retries"`
	Faults       int64 `json:"faults"`
	BreakerTrips int64 `json:"breaker_trips"`
	// PrefetchIssued and PrefetchHits measure read-ahead effectiveness;
	// WriteBufferHits counts reads served from the write-behind run.
	PrefetchIssued  int64 `json:"prefetch_issued"`
	PrefetchHits    int64 `json:"prefetch_hits"`
	WriteBufferHits int64 `json:"write_buffer_hits"`
	// CoalescedBlocks counts blocks merged into a pending write run;
	// Flushes counts runs pushed to the device.
	CoalescedBlocks int64 `json:"coalesced_blocks"`
	Flushes         int64 `json:"flushes"`
	// QueueMax is the deepest request queue observed.
	QueueMax int64 `json:"queue_max"`
	// ReadNanos/WriteNanos sum the device time of successful transfers;
	// BytesRead/ReadNanos is the disk's measured read bandwidth. BusyNanos
	// sums all device-op time including failed attempts.
	ReadNanos  int64 `json:"read_nanos,omitempty"`
	WriteNanos int64 `json:"write_nanos,omitempty"`
	BusyNanos  int64 `json:"busy_nanos,omitempty"`
}

// IOStats are the engine metrics of a file-backed sort, per disk.
type IOStats struct {
	PerDisk []DiskIOStats `json:"per_disk"`
}

// Aggregate sums the per-disk stats (QueueMax takes the max).
func (s *IOStats) Aggregate() DiskIOStats {
	var t DiskIOStats
	for _, d := range s.PerDisk {
		t.Reads += d.Reads
		t.Writes += d.Writes
		t.BytesRead += d.BytesRead
		t.BytesWritten += d.BytesWritten
		t.Retries += d.Retries
		t.Faults += d.Faults
		t.BreakerTrips += d.BreakerTrips
		t.PrefetchIssued += d.PrefetchIssued
		t.PrefetchHits += d.PrefetchHits
		t.WriteBufferHits += d.WriteBufferHits
		t.CoalescedBlocks += d.CoalescedBlocks
		t.Flushes += d.Flushes
		if d.QueueMax > t.QueueMax {
			t.QueueMax = d.QueueMax
		}
		t.ReadNanos += d.ReadNanos
		t.WriteNanos += d.WriteNanos
		t.BusyNanos += d.BusyNanos
	}
	return t
}

// MeasureThroughput derives the per-disk device bandwidth this sort
// actually observed: bytes moved over device-busy seconds, summed across
// disks, so host-side stalls and idle time do not dilute the estimate.
// Feed the result into Config.Throughput so the planner ranks engines with
// measured rates instead of the 200 MB/s default. Fields stay zero where
// nothing was measured.
func (s *IOStats) MeasureThroughput() Throughput {
	if s == nil {
		return Throughput{}
	}
	agg := s.Aggregate()
	var t Throughput
	if agg.ReadNanos > 0 {
		t.ReadBytesPerSec = float64(agg.BytesRead) / (float64(agg.ReadNanos) / 1e9)
	}
	if agg.WriteNanos > 0 {
		t.WriteBytesPerSec = float64(agg.BytesWritten) / (float64(agg.WriteNanos) / 1e9)
	}
	return t
}

// measuredThroughput wraps MeasureThroughput for Result assembly: nil when
// no engine ran or nothing was measured.
func measuredThroughput(s *IOStats) *Throughput {
	if s == nil {
		return nil
	}
	t := s.MeasureThroughput()
	if t == (Throughput{}) {
		return nil
	}
	return &t
}

// ioStatsFrom converts an engine snapshot to the public form.
func ioStatsFrom(snap *diskio.Snapshot) *IOStats {
	if snap == nil {
		return nil
	}
	s := &IOStats{PerDisk: make([]DiskIOStats, len(snap.PerDisk))}
	for i, d := range snap.PerDisk {
		s.PerDisk[i] = DiskIOStats{
			Reads:           d.Reads,
			Writes:          d.Writes,
			BytesRead:       d.BytesRead,
			BytesWritten:    d.BytesWritten,
			Retries:         d.Retries,
			Faults:          d.Faults,
			BreakerTrips:    d.BreakerTrips,
			PrefetchIssued:  d.PrefetchIssued,
			PrefetchHits:    d.PrefetchHits,
			WriteBufferHits: d.WriteBufferHits,
			CoalescedBlocks: d.Coalesced,
			Flushes:         d.Flushes,
			QueueMax:        d.QueueMax,
			ReadNanos:       d.ReadNanos,
			WriteNanos:      d.WriteNanos,
			BusyNanos:       d.BusyNanos,
		}
	}
	return s
}
