// Package balancesort is a production-quality Go implementation of Balance
// Sort — the deterministic distribution sort of Nodine and Vitter (SPAA
// 1993, "Deterministic Distribution Sort in Shared and Distributed Memory
// Multiprocessors") — together with the simulated machines the paper's
// bounds are stated on:
//
//   - the Vitter–Shriver parallel disk model (D disks × B-record blocks,
//     M-record memory, P PRAM processors) — Theorem 1;
//   - parallel memory hierarchies (P-HMM, P-BT, P-UMH) with PRAM or
//     hypercube interconnects — Theorems 2 and 3.
//
// The package front door sorts in-memory record slices while metering every
// model cost (parallel I/Os, PRAM work, hierarchy access time), so that a
// caller can both *use* the algorithm and *measure* it against the paper's
// closed-form bounds. Lower-level control (block layout, custom placement
// strategies, the balancing matrices themselves) lives in the internal
// packages and is re-exported here only as configuration.
//
// # Quick start
//
//	recs := balancesort.NewWorkload(balancesort.Uniform, 1_000_000, 42)
//	res, err := balancesort.Sort(recs, balancesort.Config{Disks: 16, BlockSize: 64, Memory: 1 << 16})
//	// res.Records are sorted; res.IOs, res.IOLowerBound, res.PRAMTime are the model costs.
package balancesort

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"balancesort/internal/balance"
	"balancesort/internal/baseline"
	"balancesort/internal/core"
	"balancesort/internal/guidesort"
	"balancesort/internal/hier"
	"balancesort/internal/hmm"
	"balancesort/internal/matching"
	"balancesort/internal/obs"
	"balancesort/internal/pdm"
	"balancesort/internal/pram"
	"balancesort/internal/record"
	"balancesort/internal/stats"
	"balancesort/internal/umh"

	btmodel "balancesort/internal/bt"
)

// theorem2 and theorem3 evaluate the paper's Θ-bounds (see internal/stats).
var (
	theorem2 = stats.Theorem2Bound
	theorem3 = stats.Theorem3Bound
)

// Record is the 16-byte sortable unit: a 64-bit key plus the record's
// original position, which breaks ties so that effective keys are distinct
// (exactly the paper's distinctness device).
type Record = record.Record

// Workload names a deterministic input generator.
type Workload = record.Workload

// The workload shapes used across the experiments.
const (
	Uniform      = record.Uniform
	FewDistinct  = record.FewDistinct
	NearlySorted = record.NearlySorted
	Reversed     = record.Reversed
	BucketSkew   = record.BucketSkew
	Zipf         = record.Zipf
)

// NewWorkload generates n records of the given shape from seed, with Loc
// stamped to the original positions.
func NewWorkload(w Workload, n int, seed uint64) []Record {
	return record.Generate(w, n, seed)
}

// MatchStrategy selects the Rearrange matching algorithm.
type MatchStrategy = balance.MatchStrategy

// Matching strategies for the rebalancing step.
const (
	MatchDerandomized = balance.MatchDerandomized
	MatchRandomized   = balance.MatchRandomized
	MatchGreedy       = balance.MatchGreedy
)

// PlacementStrategy selects how formed blocks are assigned to disks.
type PlacementStrategy = core.Placement

// Placement strategies (Balance Sort proper plus the two baselines).
const (
	PlacementBalanced   = core.PlacementBalanced
	PlacementRandom     = core.PlacementRandom
	PlacementRoundRobin = core.PlacementRoundRobin
)

// Config describes a parallel-disk sort.
type Config struct {
	// Disks is D, the number of independent disks. Default 8.
	Disks int
	// BlockSize is B, records per block. Default 64.
	BlockSize int
	// Memory is M, records of internal memory. Default max(4096, 8·D·B).
	Memory int
	// Processors is P, the PRAM CPUs doing internal work. Default 1.
	Processors int
	// VirtualDisks enables partial striping (must divide Disks; 0 = D).
	VirtualDisks int
	// Buckets overrides S (0 = the paper's (M/B)^{1/4}).
	Buckets int
	// Match selects the rebalance matching strategy.
	Match MatchStrategy
	// Placement selects the block placement discipline.
	Placement PlacementStrategy
	// NoRadix sorts memoryloads with the comparison sort instead of the
	// parallel LSD radix sort that Section 5 invokes. The radix base case
	// is the default for every engine; the output is byte-identical either
	// way (pinned by the parity tests).
	NoRadix bool
	// Engine selects the file-sort engine (SortFile and friends; in-memory
	// Sort always runs Balance Sort). "" = EngineBalanceSort; EngineAuto
	// lets the cost-model planner pick and records its decision in
	// Result.Plan.
	Engine Engine
	// Throughput is the per-disk bandwidth the planner assumes for
	// EngineAuto; the zero value assumes symmetric commodity disks. Derive
	// a measured one from a prior run with MeasureThroughput.
	Throughput Throughput
	// CRCW charges internal work at concurrent-read/concurrent-write PRAM
	// rates (Section 5's requirement when log(M/B) = o(log M)).
	CRCW bool
	// Seed feeds the randomized variants.
	Seed uint64
	// IO configures the concurrent disk I/O engine for file-backed sorts
	// (SortFile only; in-memory sorts ignore it). The zero value keeps
	// the synchronous file stores.
	IO IOConfig
	// Robust configures checksums, journaling, and scrubbing for
	// file-backed sorts (SortFile and ResumeSortFile; in-memory sorts
	// ignore it except for cancellation).
	Robust RobustConfig
	// Obs configures phase tracing, live progress, and /metrics export.
	// The zero value is fully off: no tracer, no allocations, no listener.
	Obs ObsConfig

	// ctx carries the cancellation context of the *Context entry points.
	ctx context.Context
	// tracer is the per-sort tracer built from Obs by the entry points.
	tracer *obs.Tracer
}

// diskConfig translates the facade configuration to the core sorter's.
func (c Config) diskConfig() core.DiskConfig {
	internal := core.SortRadix
	if c.NoRadix {
		internal = core.SortComparison
	}
	variant := pram.EREW
	if c.CRCW {
		variant = pram.CRCW
	}
	return core.DiskConfig{
		V:                 c.VirtualDisks,
		S:                 c.Buckets,
		P:                 c.Processors,
		PRAM:              variant,
		Match:             c.Match,
		Seed:              c.Seed,
		Placement:         c.Placement,
		Internal:          internal,
		Context:           c.ctx,
		CrashAfterCommits: c.Robust.crashAfterCommits,
		Trace:             c.tracer,
	}
}

func (c *Config) fill() {
	if c.Disks == 0 {
		c.Disks = 8
	}
	if c.BlockSize == 0 {
		c.BlockSize = 64
	}
	if c.Memory == 0 {
		c.Memory = 8 * c.Disks * c.BlockSize
		if c.Memory < 4096 {
			c.Memory = 4096
		}
	}
	if c.Processors == 0 {
		c.Processors = 1
	}
}

// Result is a completed parallel-disk sort. The JSON encoding (the CLI's
// -json flag) carries every model cost but not the records themselves.
type Result struct {
	// Records is the sorted output.
	Records []Record `json:"-"`
	// IOs is the number of parallel I/O operations the sort performed
	// (excluding loading the input and reading back the output).
	IOs int64 `json:"ios"`
	// IOLowerBound is Theorem 1's Θ-bound (N/DB)·log(N/B)/log(M/B); the
	// ratio IOs/IOLowerBound is the constant experiment E1 tracks.
	IOLowerBound float64 `json:"io_lower_bound"`
	// PRAMTime and PRAMWork meter the internal processing on P processors.
	PRAMTime float64 `json:"pram_time"`
	PRAMWork float64 `json:"pram_work"`
	// MaxBucketReadRatio is the Theorem 4 balance measurement.
	MaxBucketReadRatio float64 `json:"max_bucket_read_ratio"`
	// MaxBucketFrac is the partition-element quality measurement.
	MaxBucketFrac float64 `json:"max_bucket_frac"`
	// Depth and Passes describe the recursion.
	Depth  int `json:"depth"`
	Passes int `json:"passes"`
	// MemPeak is the internal-memory high-water mark in records.
	MemPeak int `json:"mem_peak"`
	// IO carries the disk-engine metrics when the sort mounted the I/O
	// engine (Config.IO.Engine with SortFile); nil otherwise.
	IO *IOStats `json:"io,omitempty"`
	// MeasuredThroughput is the per-disk device bandwidth the I/O engine
	// observed during this sort (bytes over device-busy time). Feed it into
	// Config.Throughput so EngineAuto plans with measured rates; cluster
	// workers do this automatically between shard sorts. Nil when no engine
	// ran.
	MeasuredThroughput *Throughput `json:"measured_throughput,omitempty"`
	// Scrub carries the post-sort integrity sweep when the sort ran with
	// Config.Robust.ScrubAfter; nil otherwise.
	Scrub *ScrubReport `json:"scrub,omitempty"`
	// Trace is the recorded phase timeline when Config.Obs asked for one;
	// nil otherwise.
	Trace *Trace `json:"-"`
	// Engine names the engine that ran a file-backed sort ("" for
	// in-memory Sort, which is always Balance Sort).
	Engine string `json:"engine,omitempty"`
	// Plan is the planner's decision when the sort ran with EngineAuto;
	// nil otherwise.
	Plan *Plan `json:"plan,omitempty"`
}

// Sort runs Balance Sort on a simulated disk array and returns the sorted
// records with the model costs. The input slice is not modified.
func Sort(recs []Record, cfg Config) (*Result, error) {
	cfg.fill()
	p := pdm.Params{D: cfg.Disks, B: cfg.BlockSize, M: cfg.Memory}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if 4*p.D*p.B > p.M {
		return nil, fmt.Errorf("balancesort: DB = %d needs M >= %d (got %d)", p.D*p.B, 4*p.D*p.B, p.M)
	}
	if cfg.VirtualDisks != 0 && cfg.Disks%cfg.VirtualDisks != 0 {
		return nil, fmt.Errorf("balancesort: VirtualDisks = %d does not divide Disks = %d", cfg.VirtualDisks, cfg.Disks)
	}
	cfg.tracer = cfg.Obs.tracer()
	cfg.Obs.attach("sort", cfg.tracer)

	arr := pdm.New(p)
	defer arr.Close()
	ds := core.NewDiskSorter(arr, cfg.diskConfig())

	in := ds.WriteInput(recs)
	segs := ds.Sort(in.Off, in.N)
	m := ds.Metrics()

	out := make([]Record, 0, len(recs))
	for _, seg := range segs {
		out = append(out, ds.ReadRegion(seg)...)
	}
	if !record.IsSorted(out) {
		return nil, errors.New("balancesort: internal error: output not sorted")
	}
	return &Result{
		Records:            out,
		IOs:                m.IOs,
		IOLowerBound:       core.LowerBoundIOs(len(recs), p),
		PRAMTime:           m.PRAMTime,
		PRAMWork:           m.PRAMWork,
		MaxBucketReadRatio: m.MaxBucketReadRatio,
		MaxBucketFrac:      m.MaxBucketFrac,
		Depth:              m.Depth,
		Passes:             m.Passes,
		MemPeak:            m.MemPeak,
		Trace:              traceFrom(cfg.tracer),
	}, nil
}

// Algorithm selects which external sorting algorithm SortWith runs on the
// simulated disk array.
type Algorithm int

// The disk-model algorithms of the paper's comparison set.
const (
	// AlgoBalanceSort is the paper's contribution.
	AlgoBalanceSort Algorithm = iota
	// AlgoStripedMerge is merge sort over the D disks striped as one
	// logical disk — deterministic but suboptimal by Θ(log(M/B)/log(M/DB)).
	AlgoStripedMerge
	// AlgoForecastMerge is a merge sort with Greed Sort's independent
	// per-disk greedy reads — the deterministic optimal merge-based
	// comparator.
	AlgoForecastMerge
	// AlgoColumnSort is Leighton's Columnsort run externally: an oblivious
	// deterministic sort, valid while N is at most about (M/2)^{3/2}.
	AlgoColumnSort
	// AlgoGreedSort is the Nodine–Vitter Greed Sort [NoV]: the greedy
	// approximate merge (each disk independently fetches its most promising
	// block; the pool emits eagerly) followed by the window-sort cleanup.
	AlgoGreedSort
	// AlgoGuideSort is the guided mergesort of internal/guidesort: block
	// minima form a guide that precomputes the merge's exact block
	// consumption order, restoring high merge arity with full-width I/Os.
	AlgoGuideSort
)

// String names the algorithm for tables.
func (a Algorithm) String() string {
	switch a {
	case AlgoBalanceSort:
		return "balancesort"
	case AlgoStripedMerge:
		return "stripedmerge"
	case AlgoForecastMerge:
		return "forecastmerge"
	case AlgoColumnSort:
		return "columnsort"
	case AlgoGreedSort:
		return "greedsort"
	case AlgoGuideSort:
		return "guidesort"
	default:
		return "unknown"
	}
}

// SortWith runs the chosen algorithm on the same simulated disk array that
// Sort uses, so the returned I/O counts are directly comparable. For
// AlgoBalanceSort it defers to Sort; the baselines fill the Result's I/O
// and PRAM fields and leave the Balance-specific measurements zero.
func SortWith(algo Algorithm, recs []Record, cfg Config) (*Result, error) {
	if algo == AlgoBalanceSort {
		return Sort(recs, cfg)
	}
	cfg.fill()
	p := pdm.Params{D: cfg.Disks, B: cfg.BlockSize, M: cfg.Memory}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	arr := pdm.New(p)
	defer arr.Close()

	blocks := (len(recs) + p.B - 1) / p.B
	perDisk := (blocks + p.D - 1) / p.D
	if perDisk == 0 {
		perDisk = 1
	}
	off := arr.AllocStripe(perDisk)
	arr.WriteStripe(off, recs)

	if algo == AlgoGuideSort {
		if 4*p.D*p.B > p.M {
			return nil, fmt.Errorf("balancesort: DB = %d needs M >= %d (got %d)", p.D*p.B, 4*p.D*p.B, p.M)
		}
		s := guidesort.NewSorter(arr, guidesort.Config{P: cfg.Processors, NoRadix: cfg.NoRadix, Context: cfg.ctx})
		gReg := s.Sort(off, len(recs))
		gMet := s.Metrics()
		out := make([]Record, gReg.N)
		arr.ReadStripe(gReg.Off, out)
		if !record.IsSorted(out) {
			return nil, errors.New("balancesort: internal error: guidesort output not sorted")
		}
		return &Result{
			Records:      out,
			IOs:          gMet.IOs,
			IOLowerBound: core.LowerBoundIOs(len(recs), p),
			PRAMTime:     gMet.PRAMTime,
			PRAMWork:     gMet.PRAMWork,
			Passes:       gMet.Passes,
			Depth:        gMet.Depth,
			MemPeak:      gMet.MemPeak,
			Engine:       "guidesort",
		}, nil
	}

	var reg baseline.Region
	var met baseline.Metrics
	switch algo {
	case AlgoStripedMerge:
		_, reg, met = baseline.StripedMergeSort(arr, off, len(recs), cfg.Processors)
	case AlgoForecastMerge:
		_, reg, met = baseline.ForecastMergeSort(arr, off, len(recs), cfg.Processors)
	case AlgoColumnSort:
		var err error
		reg, met, err = baseline.ColumnSortDisk(arr, off, len(recs), cfg.Processors)
		if err != nil {
			return nil, err
		}
	case AlgoGreedSort:
		gReg, gMet, err := baseline.GreedSort(arr, off, len(recs), cfg.Processors)
		if err != nil {
			return nil, err
		}
		reg, met = gReg, gMet.Metrics
	default:
		return nil, fmt.Errorf("balancesort: unknown algorithm %d", algo)
	}
	out := make([]Record, reg.N)
	arr.ReadStripe(reg.Off, out)
	if !record.IsSorted(out) {
		return nil, errors.New("balancesort: internal error: baseline output not sorted")
	}
	return &Result{
		Records:      out,
		IOs:          met.IOs,
		IOLowerBound: core.LowerBoundIOs(len(recs), p),
		PRAMTime:     met.PRAMTime,
		PRAMWork:     met.PRAMWork,
		Passes:       met.Passes,
	}, nil
}

// HierarchyModel names a memory-hierarchy kind for SortHierarchy.
type HierarchyModel int

// The hierarchy models of Figure 3.
const (
	// HMMLog is HMM with f(x) = log x.
	HMMLog HierarchyModel = iota
	// HMMPower is HMM with f(x) = x^Alpha.
	HMMPower
	// BTLog is the Block Transfer model with f(x) = log x.
	BTLog
	// BTPower is the Block Transfer model with f(x) = x^Alpha.
	BTPower
	// UMH is the Uniform Memory Hierarchy (ρ = 2, bandwidth exponent Alpha).
	UMH
)

// Interconnect names how the H base levels are joined (Figure 4).
type Interconnect int

// Interconnects of Theorems 2 and 3.
const (
	// EREWPRAM has T(H) = Θ(log H).
	EREWPRAM Interconnect = iota
	// Hypercube has T(H) = Θ(log H (log log H)²) (Cypher–Plaxton's
	// Sharesort, charged as a formula — the algorithm itself is beyond
	// executable scope).
	Hypercube
	// HypercubeBitonic runs every base-level sort on a real simulated
	// hypercube (Batcher bitonic), charging measured network steps, so
	// T(H) = log H(log H+1)/2 exactly. Requires Hierarchies to be a power
	// of two.
	HypercubeBitonic
)

// HierConfig describes a parallel-memory-hierarchy sort.
type HierConfig struct {
	// Hierarchies is H. Default 8.
	Hierarchies int
	// Model selects the memory model. Default HMMLog.
	Model HierarchyModel
	// Alpha parameterizes the power-law models. Default 1.
	Alpha float64
	// Interconnect selects the base-level network. Default EREWPRAM.
	Interconnect Interconnect
	// HPrime overrides the number of virtual hierarchies H' (0 = the
	// paper's H^{1/3}, rounded to a divisor of H). Must divide Hierarchies.
	HPrime int
	// Match and Seed configure rebalancing as in Config.
	Match MatchStrategy
	Seed  uint64
}

// HierResult is a completed hierarchy sort.
type HierResult struct {
	Records []Record
	// Time is the total accrued parallel time; AccessTime and NetTime are
	// its memory and interconnect parts.
	Time       float64
	AccessTime float64
	NetTime    float64
	// Bound is the matching Theorem 2/3 Θ-expression for these parameters;
	// Time/Bound is the constant experiments E6-E9 track.
	Bound float64
	// MaxBucketFrac and MaxLogSkew are the balance measurements.
	MaxBucketFrac float64
	MaxLogSkew    float64
	Depth         int
	Passes        int
}

// SortHierarchy runs Balance Sort on a simulated parallel memory hierarchy.
func SortHierarchy(recs []Record, cfg HierConfig) (*HierResult, error) {
	if cfg.Hierarchies == 0 {
		cfg.Hierarchies = 8
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 1
	}
	var model hier.Model
	switch cfg.Model {
	case HMMLog:
		model = hmm.Model{Cost: hmm.LogCost{}}
	case HMMPower:
		model = hmm.Model{Cost: hmm.PowerCost{Alpha: cfg.Alpha}}
	case BTLog:
		model = btmodel.Model{Cost: hmm.LogCost{}}
	case BTPower:
		model = btmodel.Model{Cost: hmm.PowerCost{Alpha: cfg.Alpha}}
	case UMH:
		model = umh.Model{Rho: 2, Alpha: cfg.Alpha}
	default:
		return nil, fmt.Errorf("balancesort: unknown hierarchy model %d", cfg.Model)
	}
	var tcost matching.TCost
	var netSorter func([]Record) float64
	switch cfg.Interconnect {
	case EREWPRAM:
		tcost = matching.PRAMCost
	case Hypercube:
		tcost = matching.HypercubeCost
	case HypercubeBitonic:
		h := cfg.Hierarchies
		if h&(h-1) != 0 {
			return nil, fmt.Errorf("balancesort: HypercubeBitonic needs a power-of-two H, got %d", h)
		}
		tcost = core.BitonicTCost
		netSorter = core.HypercubeNetSorter(h)
	default:
		return nil, fmt.Errorf("balancesort: unknown interconnect %d", cfg.Interconnect)
	}

	m := hier.New(cfg.Hierarchies, model, tcost)
	if cfg.HPrime != 0 && cfg.Hierarchies%cfg.HPrime != 0 {
		return nil, fmt.Errorf("balancesort: HPrime = %d does not divide Hierarchies = %d", cfg.HPrime, cfg.Hierarchies)
	}
	hs := core.NewHierSorter(m, core.HierConfig{HPrime: cfg.HPrime, Match: cfg.Match, Seed: cfg.Seed, NetSorter: netSorter})
	seg := hs.WriteInput(recs)
	out := hs.Sort(seg)
	got := hs.ReadSegment(out)
	if !record.IsSorted(got) {
		return nil, errors.New("balancesort: internal error: hierarchy output not sorted")
	}
	met := hs.Metrics()
	return &HierResult{
		Records:       got,
		Time:          met.Time,
		AccessTime:    met.AccessTime,
		NetTime:       met.NetTime,
		Bound:         hierBound(cfg, len(recs)),
		MaxBucketFrac: met.MaxBucketFrac,
		MaxLogSkew:    met.MaxLogSkew,
		Depth:         met.Depth,
		Passes:        met.Passes,
	}, nil
}

func hierBound(cfg HierConfig, n int) float64 {
	var tcost func(int) float64
	switch cfg.Interconnect {
	case Hypercube:
		tcost = matching.HypercubeCost
	case HypercubeBitonic:
		tcost = core.BitonicTCost
	default:
		tcost = matching.PRAMCost
	}
	alpha := cfg.Alpha
	switch cfg.Model {
	case HMMLog:
		return theorem2(n, cfg.Hierarchies, -1, tcost)
	case HMMPower:
		return theorem2(n, cfg.Hierarchies, alpha, tcost)
	case BTLog:
		return theorem3(n, cfg.Hierarchies, -1, tcost)
	case BTPower:
		return theorem3(n, cfg.Hierarchies, alpha, tcost)
	default:
		return theorem2(n, cfg.Hierarchies, alpha, tcost)
	}
}

// Verify reports whether out is the sorted permutation of in — a
// convenience for tools and examples.
func Verify(in, out []Record) bool {
	if !record.IsSorted(out) {
		return false
	}
	return record.SameMultiset(in, out)
}

// ReferenceSort sorts a copy of recs with the standard library, for
// baseline comparisons in examples and tests.
func ReferenceSort(recs []Record) []Record {
	out := append([]Record(nil), recs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
