package balancesort

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSortFileEndToEnd(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "in.bin")
	outPath := filepath.Join(dir, "out.bin")

	in := NewWorkload(Zipf, 50000, 77)
	if err := WriteRecordFile(inPath, in); err != nil {
		t.Fatal(err)
	}

	res, err := SortFile(inPath, outPath, "", Config{Disks: 8, BlockSize: 32, Memory: 1 << 13})
	if err != nil {
		t.Fatal(err)
	}
	if res.IOs == 0 {
		t.Fatal("no I/Os counted")
	}

	out, err := ReadRecordFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(in, out) {
		t.Fatal("file sort output is not the sorted permutation of the input")
	}
}

func TestSortFileScratchPersists(t *testing.T) {
	dir := t.TempDir()
	scratch := filepath.Join(dir, "scratch")
	inPath := filepath.Join(dir, "in.bin")
	outPath := filepath.Join(dir, "out.bin")

	in := NewWorkload(Uniform, 10000, 5)
	if err := WriteRecordFile(inPath, in); err != nil {
		t.Fatal(err)
	}
	if _, err := SortFile(inPath, outPath, scratch, Config{Disks: 4, BlockSize: 16, Memory: 4096}); err != nil {
		t.Fatal(err)
	}
	// The scratch directory holds the disk files and manifest.
	if _, err := os.Stat(filepath.Join(scratch, "manifest.json")); err != nil {
		t.Fatal("scratch manifest missing")
	}
	ents, err := os.ReadDir(scratch)
	if err != nil || len(ents) != 5 { // 4 disks + manifest
		t.Fatalf("scratch contents: %v err=%v", ents, err)
	}
}

func TestSortFileRejectsRaggedInput(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "bad.bin")
	if err := os.WriteFile(inPath, make([]byte, 17), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := SortFile(inPath, filepath.Join(dir, "out.bin"), "", Config{}); err == nil {
		t.Fatal("ragged input accepted")
	}
}

func TestSortFileMissingInput(t *testing.T) {
	if _, err := SortFile("/nonexistent/in.bin", "/tmp/out.bin", "", Config{}); err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestSortFileEmpty(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "empty.bin")
	outPath := filepath.Join(dir, "out.bin")
	if err := WriteRecordFile(inPath, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := SortFile(inPath, outPath, "", Config{}); err != nil {
		t.Fatal(err)
	}
	out, err := ReadRecordFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatal("empty file sort produced records")
	}
}

func TestRecordFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.bin")
	rs := NewWorkload(FewDistinct, 1234, 9)
	if err := WriteRecordFile(path, rs); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil || st.Size() != int64(1234*RecordSize) {
		t.Fatalf("file size %v err=%v", st.Size(), err)
	}
	back, err := ReadRecordFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs {
		if back[i] != rs[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}
