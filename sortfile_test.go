package balancesort

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSortFileEndToEnd(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "in.bin")
	outPath := filepath.Join(dir, "out.bin")

	in := NewWorkload(Zipf, 50000, 77)
	if err := WriteRecordFile(inPath, in); err != nil {
		t.Fatal(err)
	}

	res, err := SortFile(inPath, outPath, "", Config{Disks: 8, BlockSize: 32, Memory: 1 << 13})
	if err != nil {
		t.Fatal(err)
	}
	if res.IOs == 0 {
		t.Fatal("no I/Os counted")
	}

	out, err := ReadRecordFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(in, out) {
		t.Fatal("file sort output is not the sorted permutation of the input")
	}
}

func TestSortFileScratchPersists(t *testing.T) {
	dir := t.TempDir()
	scratch := filepath.Join(dir, "scratch")
	inPath := filepath.Join(dir, "in.bin")
	outPath := filepath.Join(dir, "out.bin")

	in := NewWorkload(Uniform, 10000, 5)
	if err := WriteRecordFile(inPath, in); err != nil {
		t.Fatal(err)
	}
	if _, err := SortFile(inPath, outPath, scratch, Config{Disks: 4, BlockSize: 16, Memory: 4096}); err != nil {
		t.Fatal(err)
	}
	// The scratch directory holds the disk files, their checksum
	// sidecars, and the manifest.
	if _, err := os.Stat(filepath.Join(scratch, "manifest.json")); err != nil {
		t.Fatal("scratch manifest missing")
	}
	ents, err := os.ReadDir(scratch)
	if err != nil || len(ents) != 9 { // 4 disks + 4 crc sidecars + manifest
		t.Fatalf("scratch contents: %v err=%v", ents, err)
	}
}

// TestSortFileEngine runs the external sort with the concurrent I/O engine
// mounted and checks the output plus the engine metrics.
func TestSortFileEngine(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "in.bin")
	outPath := filepath.Join(dir, "out.bin")
	in := NewWorkload(BucketSkew, 40000, 31)
	if err := WriteRecordFile(inPath, in); err != nil {
		t.Fatal(err)
	}
	res, err := SortFile(inPath, outPath, "", Config{
		Disks: 8, BlockSize: 32, Memory: 1 << 13,
		IO: IOConfig{Engine: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ReadRecordFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(in, out) {
		t.Fatal("engine-backed sort output is not the sorted permutation of the input")
	}
	if res.IO == nil {
		t.Fatal("engine on but Result.IO is nil")
	}
	agg := res.IO.Aggregate()
	if agg.BytesWritten == 0 || agg.Reads == 0 {
		t.Fatalf("engine metrics empty: %+v", agg)
	}
	if agg.CoalescedBlocks == 0 {
		t.Fatal("striped writes never coalesced")
	}
	if len(res.IO.PerDisk) != 8 {
		t.Fatalf("metrics for %d disks, want 8", len(res.IO.PerDisk))
	}
}

// TestSortFileEngineParity is the acceptance criterion that mounting the
// engine cannot change the measured model costs: parallel I/O counts and
// output bytes are identical with the engine on and off.
func TestSortFileEngineParity(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "in.bin")
	in := NewWorkload(Zipf, 30000, 13)
	if err := WriteRecordFile(inPath, in); err != nil {
		t.Fatal(err)
	}
	run := func(io IOConfig, out string) *Result {
		res, err := SortFile(inPath, filepath.Join(dir, out), "", Config{
			Disks: 8, BlockSize: 32, Memory: 1 << 13, IO: io,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(IOConfig{}, "plain.bin")
	engine := run(IOConfig{Engine: true}, "engine.bin")
	if plain.IOs != engine.IOs {
		t.Fatalf("engine changed the model cost: %d vs %d parallel I/Os", plain.IOs, engine.IOs)
	}
	if plain.IO != nil {
		t.Fatal("engine off but Result.IO set")
	}
	a, err := os.ReadFile(filepath.Join(dir, "plain.bin"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "engine.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("engine changed the output bytes")
	}
}

// TestSortFileUnderFaults injects a nonzero transient-error rate plus torn
// writes and checks the sort still completes with sorted, complete output.
func TestSortFileUnderFaults(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "in.bin")
	outPath := filepath.Join(dir, "out.bin")
	in := NewWorkload(Uniform, 30000, 19)
	if err := WriteRecordFile(inPath, in); err != nil {
		t.Fatal(err)
	}
	res, err := SortFile(inPath, outPath, "", Config{
		Disks: 8, BlockSize: 32, Memory: 1 << 13,
		IO: IOConfig{
			Engine:        true,
			FaultRate:     0.02,
			TornWriteRate: 0.5,
			FaultSeed:     29,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ReadRecordFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(in, out) {
		t.Fatal("sort under injected faults lost or disordered records")
	}
	agg := res.IO.Aggregate()
	if agg.Faults == 0 {
		t.Fatal("fault injection inactive (raise the rate or the op count)")
	}
	if agg.Retries == 0 {
		t.Fatal("faults injected but nothing retried")
	}
}

func TestSortFileRejectsRaggedInput(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "bad.bin")
	if err := os.WriteFile(inPath, make([]byte, 17), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := SortFile(inPath, filepath.Join(dir, "out.bin"), "", Config{}); err == nil {
		t.Fatal("ragged input accepted")
	}
}

func TestSortFileMissingInput(t *testing.T) {
	if _, err := SortFile("/nonexistent/in.bin", "/tmp/out.bin", "", Config{}); err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestSortFileEmpty(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "empty.bin")
	outPath := filepath.Join(dir, "out.bin")
	if err := WriteRecordFile(inPath, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := SortFile(inPath, outPath, "", Config{}); err != nil {
		t.Fatal(err)
	}
	out, err := ReadRecordFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatal("empty file sort produced records")
	}
}

func TestRecordFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.bin")
	rs := NewWorkload(FewDistinct, 1234, 9)
	if err := WriteRecordFile(path, rs); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil || st.Size() != int64(1234*RecordSize) {
		t.Fatalf("file size %v err=%v", st.Size(), err)
	}
	back, err := ReadRecordFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs {
		if back[i] != rs[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}
