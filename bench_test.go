// Benchmarks: one per experiment of DESIGN.md's index (E1-E17), each
// regenerating the headline measurement of one of the paper's claims and
// reporting it via b.ReportMetric, so `go test -bench=. -benchmem` prints
// the whole reproduction in one run. The full parameter sweeps behind
// EXPERIMENTS.md come from `go run ./cmd/experiments`.
package balancesort_test

import (
	"testing"
	"time"

	"balancesort"
	"balancesort/internal/balance"
	"balancesort/internal/bt"
	"balancesort/internal/core"
	"balancesort/internal/experiments"
	"balancesort/internal/hier"
	"balancesort/internal/hmm"
	"balancesort/internal/matching"
	"balancesort/internal/pdm"
	"balancesort/internal/record"
	"balancesort/internal/stats"
)

// benchDiskSort runs one Balance Sort on the standard bench geometry and
// reports I/Os and the Theorem-1 ratio.
func benchDiskSort(b *testing.B, cfg core.DiskConfig, w record.Workload, n int) core.Metrics {
	b.Helper()
	p := pdm.Params{D: 8, B: 32, M: 1 << 13}
	recs := record.Generate(w, n, 42)
	var met core.Metrics
	for i := 0; i < b.N; i++ {
		arr := pdm.New(p)
		ds := core.NewDiskSorter(arr, cfg)
		in := ds.WriteInput(recs)
		segs := ds.Sort(in.Off, in.N)
		if len(segs) == 0 && n > 0 {
			b.Fatal("no output")
		}
		met = ds.Metrics()
		arr.Close()
	}
	b.ReportMetric(float64(met.IOs), "ios")
	b.ReportMetric(float64(met.IOs)/core.LowerBoundIOs(n, p), "io-ratio")
	return met
}

// BenchmarkE1_TheoremOne_IO — Theorem 1: parallel I/Os against the lower
// bound (the io-ratio metric is the constant the theorem promises).
func BenchmarkE1_TheoremOne_IO(b *testing.B) {
	for _, n := range []int{1 << 14, 1 << 16, 1 << 18} {
		b.Run(sizeName(n), func(b *testing.B) {
			benchDiskSort(b, core.DiskConfig{}, record.Uniform, n)
		})
	}
}

// BenchmarkE2_TheoremOne_CPU — Theorem 1: internal PRAM time scaling with P.
func BenchmarkE2_TheoremOne_CPU(b *testing.B) {
	n := 1 << 16
	for _, p := range []int{1, 4, 16} {
		b.Run("P="+itoa(p), func(b *testing.B) {
			met := benchDiskSort(b, core.DiskConfig{P: p}, record.Uniform, n)
			ref := float64(n) / float64(p) * stats.Lg(float64(n))
			b.ReportMetric(met.PRAMTime, "pram-time")
			b.ReportMetric(met.PRAMTime/ref, "cpu-ratio")
		})
	}
}

// BenchmarkE3_BucketBalance — Theorem 4: worst bucket-read ratio (≈ 2).
func BenchmarkE3_BucketBalance(b *testing.B) {
	for _, w := range []record.Workload{record.Uniform, record.BucketSkew, record.FewDistinct} {
		b.Run(w.String(), func(b *testing.B) {
			met := benchDiskSort(b, core.DiskConfig{}, w, 1<<16)
			b.ReportMetric(met.MaxBucketReadRatio, "read-balance")
			b.ReportMetric(met.MaxBucketFrac, "bucket-frac")
		})
	}
}

// BenchmarkE4_InvariantStats — Invariants 1-2: balancing effort per track
// under a random bucket-label stream (the hostile case: unclustered labels
// defeat the rotation and force the matching machinery to work; clustered
// streams, like real sorted runs, rarely do).
func BenchmarkE4_InvariantStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bl := balance.New(balance.Config{S: 8, H: 8})
		rng := record.NewRNG(4)
		var pending []int
		for tr := 0; tr < 500; tr++ {
			track := pending
			pending = nil
			for len(track) < 8 {
				track = append(track, rng.Intn(8))
			}
			_, carry := bl.PlaceTrack(track)
			for _, c := range carry {
				pending = append(pending, track[c])
			}
		}
		if err := bl.CheckInvariant2(); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			st := bl.Stats()
			b.ReportMetric(float64(st.TwosIntroduced)/float64(st.Tracks), "twos/track")
			b.ReportMetric(float64(st.RearrangeMoves)/float64(st.Tracks), "moves/track")
		}
	}
}

// BenchmarkE5_Matching — Theorem 5 / Lemma 1: the three matching
// algorithms' quality (matched/target) and simulated parallel time.
func BenchmarkE5_Matching(b *testing.B) {
	const h = 64
	for _, algo := range []string{"derandomized", "randomized", "greedy"} {
		b.Run(algo, func(b *testing.B) {
			rng := record.NewRNG(9)
			matched, target, ptime := 0, 0, 0.0
			for i := 0; i < b.N; i++ {
				g := benchGraph(h, rng)
				var res matching.Result
				switch algo {
				case "derandomized":
					res = matching.Derandomized(g, matching.PRAMCost)
				case "randomized":
					res = matching.Randomized(g, rng, matching.PRAMCost)
				default:
					res = matching.Greedy(g, matching.PRAMCost)
				}
				matched += len(res.Pairs)
				target += g.Target()
				ptime += res.ParallelTime
			}
			b.ReportMetric(float64(matched)/float64(target), "matched/target")
			b.ReportMetric(ptime/float64(b.N), "parallel-time")
		})
	}
}

func benchGraph(h int, rng *record.RNG) *matching.Graph {
	g := matching.NewGraph(h, h/2)
	need := (h + 1) / 2
	for i := 0; i < h/2; i++ {
		g.U[i] = i
		count := 0
		for v := 0; v < h && count < need; v++ {
			if rng.Intn(2) == 0 || h-v <= need-count {
				g.Adj[i][v] = true
				count++
			}
		}
	}
	return g
}

// benchHier runs one hierarchy sort and reports time and the theorem ratio.
func benchHier(b *testing.B, model hier.Model, alpha float64, bound func(n, h int, alpha float64, t func(int) float64) float64, n, h int) {
	b.Helper()
	recs := record.Generate(record.Uniform, n, 7)
	var met core.HierMetrics
	for i := 0; i < b.N; i++ {
		m := hier.New(h, model, matching.PRAMCost)
		hs := core.NewHierSorter(m, core.HierConfig{})
		seg := hs.WriteInput(recs)
		hs.Sort(seg)
		met = hs.Metrics()
	}
	b.ReportMetric(met.Time, "model-time")
	b.ReportMetric(met.Time/bound(n, h, alpha, matching.PRAMCost), "bound-ratio")
}

// BenchmarkE6_PHMM_Log — Theorem 2, f = log x.
func BenchmarkE6_PHMM_Log(b *testing.B) {
	for _, n := range []int{1 << 13, 1 << 15} {
		b.Run(sizeName(n), func(b *testing.B) {
			benchHier(b, hmm.Model{Cost: hmm.LogCost{}}, -1, stats.Theorem2Bound, n, 8)
		})
	}
}

// BenchmarkE7_PHMM_Power — Theorem 2, f = x^α.
func BenchmarkE7_PHMM_Power(b *testing.B) {
	for _, alpha := range []float64{0.5, 1} {
		b.Run("alpha="+ftoa(alpha), func(b *testing.B) {
			benchHier(b, hmm.Model{Cost: hmm.PowerCost{Alpha: alpha}}, alpha, stats.Theorem2Bound, 1<<15, 8)
		})
	}
}

// BenchmarkE8_PBT_Regimes — Theorem 3: the four BT regimes.
func BenchmarkE8_PBT_Regimes(b *testing.B) {
	regimes := []struct {
		name  string
		cost  hmm.CostFunc
		alpha float64
	}{
		{"log", hmm.LogCost{}, -1},
		{"a0.5", hmm.PowerCost{Alpha: 0.5}, 0.5},
		{"a1", hmm.PowerCost{Alpha: 1}, 1},
		{"a2", hmm.PowerCost{Alpha: 2}, 2},
	}
	for _, r := range regimes {
		b.Run(r.name, func(b *testing.B) {
			benchHier(b, bt.Model{Cost: r.cost}, r.alpha, stats.Theorem3Bound, 1<<15, 8)
		})
	}
}

// BenchmarkE9_PBT_Lemma4 — Lemma 4: BT α<1 time per (N/H) log N.
func BenchmarkE9_PBT_Lemma4(b *testing.B) {
	for _, n := range []int{1 << 13, 1 << 15} {
		b.Run(sizeName(n), func(b *testing.B) {
			recs := record.Generate(record.Uniform, n, 7)
			var met core.HierMetrics
			for i := 0; i < b.N; i++ {
				m := hier.New(8, bt.Model{Cost: hmm.PowerCost{Alpha: 0.5}}, matching.PRAMCost)
				hs := core.NewHierSorter(m, core.HierConfig{})
				hs.Sort(hs.WriteInput(recs))
				met = hs.Metrics()
			}
			b.ReportMetric(met.Time/(float64(n)/8*stats.Lg(float64(n))), "lemma4-ratio")
		})
	}
}

// BenchmarkE10_Multiprocessor — Figure 2: P=D speedup at identical I/Os.
func BenchmarkE10_Multiprocessor(b *testing.B) {
	for _, p := range []int{1, 8} {
		b.Run("P="+itoa(p), func(b *testing.B) {
			met := benchDiskSort(b, core.DiskConfig{P: p}, record.Uniform, 1<<16)
			b.ReportMetric(met.PRAMTime, "pram-time")
		})
	}
}

// BenchmarkE11_StripingGap — Section 1: striped merge vs Balance Sort as
// DB approaches M.
func BenchmarkE11_StripingGap(b *testing.B) {
	n := 1 << 17
	recs := record.Generate(record.Uniform, n, 11)
	p := pdm.Params{D: 32, B: 64, M: 1 << 14} // DB = M/8
	for _, algo := range []balancesort.Algorithm{
		balancesort.AlgoBalanceSort, balancesort.AlgoGreedSort,
		balancesort.AlgoStripedMerge, balancesort.AlgoForecastMerge,
	} {
		b.Run(algo.String(), func(b *testing.B) {
			var ios int64
			for i := 0; i < b.N; i++ {
				res, err := balancesort.SortWith(algo, recs, balancesort.Config{
					Disks: p.D, BlockSize: p.B, Memory: p.M,
				})
				if err != nil {
					b.Fatal(err)
				}
				ios = res.IOs
			}
			b.ReportMetric(float64(ios), "ios")
			b.ReportMetric(float64(ios)/core.LowerBoundIOs(n, p), "io-ratio")
		})
	}
}

// BenchmarkE12_GreedyBalanceAblation — Section 6 conjecture: matching
// strategy ablation inside the full sort.
func BenchmarkE12_GreedyBalanceAblation(b *testing.B) {
	for _, m := range []struct {
		name string
		s    balance.MatchStrategy
	}{{"derandomized", balance.MatchDerandomized}, {"greedy", balance.MatchGreedy}} {
		b.Run(m.name, func(b *testing.B) {
			met := benchDiskSort(b, core.DiskConfig{Match: m.s}, record.BucketSkew, 1<<16)
			b.ReportMetric(met.Balance.MatchTime, "match-time")
			b.ReportMetric(float64(met.Balance.RearrangeMoves), "moves")
		})
	}
}

// BenchmarkE13_RandVsDerand — Section 6 practicality note.
func BenchmarkE13_RandVsDerand(b *testing.B) {
	for _, m := range []struct {
		name string
		s    balance.MatchStrategy
	}{{"derandomized", balance.MatchDerandomized}, {"randomized", balance.MatchRandomized}} {
		b.Run(m.name, func(b *testing.B) {
			met := benchDiskSort(b, core.DiskConfig{Match: m.s, Seed: 13}, record.Uniform, 1<<16)
			b.ReportMetric(met.Balance.MatchTime, "match-time")
		})
	}
}

// BenchmarkE14_AgVvsPDM — Figure 1 vs Figure 2: the E14 table's headline
// row (maximally skewed placement read back under both models' rules).
func BenchmarkE14_AgVvsPDM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.E14(experiments.Quick)
		_ = t
	}
}

// BenchmarkE15_ArgAuxAblation — Section 4.1's alternative auxiliary rule.
func BenchmarkE15_ArgAuxAblation(b *testing.B) {
	for _, r := range []struct {
		name string
		rule balance.AuxRule
	}{{"median", balance.AuxMedian}, {"2xavg", balance.AuxTwiceAverage}} {
		b.Run(r.name, func(b *testing.B) {
			met := benchDiskSort(b, core.DiskConfig{Rule: r.rule}, record.BucketSkew, 1<<16)
			b.ReportMetric(met.MaxBucketReadRatio, "read-balance")
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20:
		return itoa(n>>20) + "Mi"
	case n >= 1<<10:
		return itoa(n>>10) + "Ki"
	default:
		return itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func ftoa(f float64) string {
	if f == float64(int(f)) {
		return itoa(int(f))
	}
	return itoa(int(f)) + "." + itoa(int(f*10)%10)
}

// BenchmarkE16_WriteFullness — Section 6's "no non-striped writes needed":
// fraction of all-write I/Os at full width, per placement strategy.
func BenchmarkE16_WriteFullness(b *testing.B) {
	p := pdm.Params{D: 8, B: 32, M: 1 << 13}
	recs := record.Generate(record.Uniform, 1<<16, 16)
	for _, pl := range []struct {
		name string
		p    core.Placement
	}{{"balanced", core.PlacementBalanced}, {"roundrobin", core.PlacementRoundRobin}} {
		b.Run(pl.name, func(b *testing.B) {
			var st pdm.Stats
			for i := 0; i < b.N; i++ {
				arr := pdm.New(p)
				ds := core.NewDiskSorter(arr, core.DiskConfig{Placement: pl.p})
				in := ds.WriteInput(recs)
				ds.Sort(in.Off, in.N)
				st = arr.Stats()
				arr.Close()
			}
			b.ReportMetric(st.WriteFullness(p.D, 1.0), "full-writes")
			b.ReportMetric(st.Utilization(p.D), "utilization")
		})
	}
}

// BenchmarkE18_FileEngine — the diskio engine's wall-clock effect on a
// file-backed sort. The ios metric must be identical across all four
// sub-benchmarks: the engine never changes model costs. The first pair
// compares the synchronous stores against the engine on a fast device
// (tmpfs — the engine's request hop is visible, its overlap is not); the
// slow-disk pair injects per-op device latency and compares the engine
// with its overlap machinery (write-behind + read-ahead) off and on,
// which is where the wall-clock win lives.
func BenchmarkE18_FileEngine(b *testing.B) {
	n := 1 << 16
	dir := b.TempDir()
	inPath := dir + "/in.bin"
	if err := balancesort.WriteRecordFile(inPath, record.Generate(record.Uniform, n, 23)); err != nil {
		b.Fatal(err)
	}
	const latency = 100 * time.Microsecond
	for _, eng := range []struct {
		name string
		io   balancesort.IOConfig
	}{
		{"engine=off", balancesort.IOConfig{}},
		{"engine=on", balancesort.IOConfig{Engine: true}},
		{"slowdisk/overlap=off", balancesort.IOConfig{
			Engine: true, LatencyJitter: latency, Prefetch: -1, WriteBehind: -1}},
		{"slowdisk/overlap=on", balancesort.IOConfig{
			Engine: true, LatencyJitter: latency, Prefetch: 4, WriteBehind: 8}},
	} {
		b.Run(eng.name, func(b *testing.B) {
			var ios int64
			for i := 0; i < b.N; i++ {
				res, err := balancesort.SortFile(inPath, dir+"/out.bin", "",
					balancesort.Config{Disks: 8, BlockSize: 64, Memory: 1 << 14, IO: eng.io})
				if err != nil {
					b.Fatal(err)
				}
				ios = res.IOs
			}
			b.ReportMetric(float64(ios), "ios")
		})
	}
}

// BenchmarkE17_HierarchyScaling — Figure 4: fixed N, growing H.
func BenchmarkE17_HierarchyScaling(b *testing.B) {
	n := 1 << 15
	for _, h := range []int{2, 8, 32} {
		b.Run("H="+itoa(h), func(b *testing.B) {
			recs := record.Generate(record.Uniform, n, 17)
			var met core.HierMetrics
			for i := 0; i < b.N; i++ {
				m := hier.New(h, hmm.Model{Cost: hmm.LogCost{}}, matching.PRAMCost)
				hs := core.NewHierSorter(m, core.HierConfig{})
				hs.Sort(hs.WriteInput(recs))
				met = hs.Metrics()
			}
			b.ReportMetric(met.Time, "model-time")
		})
	}
}
