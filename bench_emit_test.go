package balancesort_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"balancesort"
)

// TestEmitSortBench writes the standard-geometry sort measurement to
// BENCH_sort.json at the repository root: model I/O counts against the
// Theorem 1 lower bound plus host wall time, for every sort engine over a
// uniform, a duplicate-heavy, and an adversarially skewed workload, plus
// one larger-than-memoryload file-backed point per engine. Gated on
// EMIT_BENCH so the ordinary test run stays fast and side-effect free; CI
// sets the variable, and cmd/benchguard fails the build if any engine's
// io_ratio_vs_lower_bound regresses against the committed file.
func TestEmitSortBench(t *testing.T) {
	if os.Getenv("EMIT_BENCH") == "" {
		t.Skip("set EMIT_BENCH=1 to emit BENCH_sort.json")
	}
	type row struct {
		Engine     string  `json:"engine"`
		Workload   string  `json:"workload"`
		Records    int     `json:"records"`
		FileBacked bool    `json:"file_backed,omitempty"`
		IOs        int64   `json:"ios"`
		IOBound    float64 `json:"io_lower_bound"`
		IORatio    float64 `json:"io_ratio_vs_lower_bound"`
		Seconds    float64 `json:"seconds"`
		RecsPerSec float64 `json:"records_per_sec"`
	}
	out := struct {
		Benchmark string `json:"benchmark"`
		Geometry  string `json:"geometry"`
		Results   []row  `json:"results"`
	}{Benchmark: "sort_model_costs", Geometry: "D=8 B=64 M=32768"}

	cfg := balancesort.Config{Disks: 8, BlockSize: 64, Memory: 1 << 15}
	engines := []struct {
		name string
		algo balancesort.Algorithm
		eng  balancesort.Engine
	}{
		{"balancesort", balancesort.AlgoBalanceSort, balancesort.EngineBalanceSort},
		{"guidesort", balancesort.AlgoGuideSort, balancesort.EngineGuideSort},
		{"stripedmerge", balancesort.AlgoStripedMerge, balancesort.EngineStripedMerge},
	}

	// In-memory model runs: every engine over a uniform, a duplicate-heavy,
	// and an adversarially skewed key distribution at two input sizes.
	for _, w := range []balancesort.Workload{balancesort.Uniform, balancesort.FewDistinct, balancesort.Zipf} {
		for _, n := range []int{1 << 16, 1 << 18} {
			recs := balancesort.NewWorkload(w, n, 42)
			for _, e := range engines {
				start := time.Now()
				res, err := balancesort.SortWith(e.algo, recs, cfg)
				if err != nil {
					t.Fatal(err)
				}
				sec := time.Since(start).Seconds()
				out.Results = append(out.Results, row{
					Engine:     e.name,
					Workload:   w.String(),
					Records:    n,
					IOs:        res.IOs,
					IOBound:    res.IOLowerBound,
					IORatio:    float64(res.IOs) / res.IOLowerBound,
					Seconds:    sec,
					RecsPerSec: float64(n) / sec,
				})
				t.Logf("%s/%s n=%d: %d IOs (%.2fx bound), %.3fs", e.name, w, n, res.IOs,
					float64(res.IOs)/res.IOLowerBound, sec)
			}
		}
	}

	// One larger-than-memoryload point through the file-backed path: 1Mi
	// records (32x the model memory) sorted end to end from disk.
	dir := t.TempDir()
	const bigN = 1 << 20
	inPath := filepath.Join(dir, "in.bin")
	if err := balancesort.WriteRecordFile(inPath, balancesort.NewWorkload(balancesort.Uniform, bigN, 42)); err != nil {
		t.Fatal(err)
	}
	for _, e := range engines {
		fcfg := cfg
		fcfg.Engine = e.eng
		outPath := filepath.Join(dir, e.name+".out")
		start := time.Now()
		res, err := balancesort.SortFile(inPath, outPath, "", fcfg)
		if err != nil {
			t.Fatal(err)
		}
		sec := time.Since(start).Seconds()
		out.Results = append(out.Results, row{
			Engine:     e.name,
			Workload:   "uniform",
			Records:    bigN,
			FileBacked: true,
			IOs:        res.IOs,
			IOBound:    res.IOLowerBound,
			IORatio:    float64(res.IOs) / res.IOLowerBound,
			Seconds:    sec,
			RecsPerSec: float64(bigN) / sec,
		})
		t.Logf("%s/uniform n=%d (file-backed): %d IOs (%.2fx bound), %.3fs", e.name, bigN,
			res.IOs, float64(res.IOs)/res.IOLowerBound, sec)
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_sort.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_sort.json")
}
