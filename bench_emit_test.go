package balancesort_test

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"balancesort"
)

// TestEmitSortBench writes the standard-geometry sort measurement to
// BENCH_sort.json at the repository root: model I/O counts against the
// Theorem 1 lower bound plus host wall time, for Balance Sort and the
// striped-merge baseline. Gated on EMIT_BENCH so the ordinary test run
// stays fast and side-effect free; CI sets the variable.
func TestEmitSortBench(t *testing.T) {
	if os.Getenv("EMIT_BENCH") == "" {
		t.Skip("set EMIT_BENCH=1 to emit BENCH_sort.json")
	}
	type row struct {
		Algorithm  string  `json:"algorithm"`
		Records    int     `json:"records"`
		IOs        int64   `json:"ios"`
		IORatio    float64 `json:"io_ratio_vs_lower_bound"`
		Seconds    float64 `json:"seconds"`
		RecsPerSec float64 `json:"records_per_sec"`
	}
	out := struct {
		Benchmark string `json:"benchmark"`
		Geometry  string `json:"geometry"`
		Workload  string `json:"workload"`
		Results   []row  `json:"results"`
	}{Benchmark: "sort_model_costs", Geometry: "D=8 B=64 M=32768", Workload: "uniform"}

	cfg := balancesort.Config{Disks: 8, BlockSize: 64, Memory: 1 << 15}
	for _, n := range []int{1 << 16, 1 << 18} {
		for _, algo := range []balancesort.Algorithm{
			balancesort.AlgoBalanceSort, balancesort.AlgoStripedMerge,
		} {
			recs := balancesort.NewWorkload(balancesort.Uniform, n, 42)
			start := time.Now()
			res, err := balancesort.SortWith(algo, recs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sec := time.Since(start).Seconds()
			out.Results = append(out.Results, row{
				Algorithm:  algo.String(),
				Records:    n,
				IOs:        res.IOs,
				IORatio:    float64(res.IOs) / res.IOLowerBound,
				Seconds:    sec,
				RecsPerSec: float64(n) / sec,
			})
			t.Logf("%s n=%d: %d IOs (%.2fx bound), %.3fs", algo, n, res.IOs,
				float64(res.IOs)/res.IOLowerBound, sec)
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_sort.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_sort.json")
}
