package balancesort

import (
	"context"
	"errors"
	"fmt"
	"os"

	"balancesort/internal/core"
	"balancesort/internal/diskio"
	"balancesort/internal/pdm"
)

// Integrity and crash recovery for file-backed sorts. Three mechanisms
// compose here:
//
//   - every scratch block carries a CRC32C verified on read (internal/pdm
//     sidecars), so silent corruption surfaces as *pdm.CorruptBlockError
//     instead of flowing into "sorted" output;
//   - with RobustConfig.Journal on, the sorter commits its complete
//     resumable state to a checksummed journal next to the manifest after
//     every pass, and ResumeSortFile restarts from the last commit;
//   - SortFileContext/SortContext cancel between passes and tracks, and a
//     permanently failed disk (diskio breaker open with no recovery)
//     surfaces as *diskio.DiskFailedError.
//
// The checksums, the journal fsyncs, and the scrub are all host-side work:
// model parallel-I/O counts are byte-for-byte identical with them on or
// off (pinned by TestSortFileRobustParity).
//
// Cluster mode layers the distributed duals on top of these: a vanished
// worker surfaces as *WorkerLostError (the analogue of a failed disk) and
// a live-but-stalled worker as *StragglerError — a *latency* fault with no
// single-node counterpart here, because a slow local disk only stretches
// the wall clock, while a slow worker stalls every barrier phase of the
// whole cluster. ClusterConfig.Straggler configures its detection and the
// hedged re-execution that routes around it; DESIGN.md §5i maps the
// mechanism back onto this file's failed-disk recovery model.

// RobustConfig tunes the integrity and recovery machinery of file-backed
// sorts.
type RobustConfig struct {
	// NoChecksums disables the per-block CRC32C sidecars in the scratch
	// array. Checksums are on by default.
	NoChecksums bool
	// Journal records every committed sort pass into scratchDir's journal
	// so an interrupted sort can be continued with ResumeSortFile. It
	// costs one fsync + one journal line per pass and no model I/Os.
	Journal bool
	// ScrubAfter re-reads and verifies every written scratch block after
	// the sort and reports the sweep in Result.Scrub.
	ScrubAfter bool
	// crashAfterCommits, when positive, injects a crash immediately
	// before the k-th pass commit — the recovery tests' kill switch.
	crashAfterCommits int
}

// CorruptBlock identifies one scratch block whose data disagreed with its
// checksum.
type CorruptBlock struct {
	Disk  int    `json:"disk"`
	Block int    `json:"block"`
	Want  uint32 `json:"want"` // checksum on record
	Got   uint32 `json:"got"`  // checksum of the data actually read
}

// ScrubReport summarises a full-array integrity sweep.
type ScrubReport struct {
	// Checksummed is false when the array carries no checksums to verify.
	Checksummed bool `json:"checksummed"`
	// BlocksChecked counts written blocks that were re-read and verified.
	BlocksChecked int `json:"blocks_checked"`
	// Corrupt lists the blocks that failed verification.
	Corrupt []CorruptBlock `json:"corrupt,omitempty"`
}

func scrubReportFrom(rep pdm.ScrubReport) *ScrubReport {
	out := &ScrubReport{Checksummed: rep.Checksummed, BlocksChecked: rep.BlocksChecked}
	for _, c := range rep.Corrupt {
		out.Corrupt = append(out.Corrupt, CorruptBlock{Disk: c.Disk, Block: c.Block, Want: c.Want, Got: c.Got})
	}
	return out
}

// Scrub opens the scratch directory of a previous file-backed sort and
// verifies every written block against its checksum, without running any
// sort. It is the library form of the CLI's -scrub flag.
func Scrub(scratchDir string) (*ScrubReport, error) {
	arr, err := pdm.OpenFileBacked(scratchDir)
	if err != nil {
		return nil, err
	}
	rep := arr.Scrub()
	if err := arr.Close(); err != nil {
		return nil, err
	}
	return scrubReportFrom(rep), nil
}

// JournalCommits reports how many sort passes have been committed to the
// journal of a journaled sort's scratch directory — 0 when no journal
// exists or nothing was committed yet. It is the "has this sort reached a
// durable commit point?" probe: a scratch directory with at least one
// commit resumes through ResumeSortFile without re-reading the input. The
// job server uses it to decide whether an interrupted job is resumable,
// and the kill-and-restart tests use it to aim their kills mid-sort.
func JournalCommits(scratchDir string) (int, error) {
	entries, err := pdm.LoadJournal(pdm.JournalPath(scratchDir))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	return len(entries), nil
}

// sortJournalState is the payload of one journal commit: everything a
// resume needs to continue the sort from this boundary. The geometry
// fields double as a consistency check against the manifest.
type sortJournalState struct {
	// Engine tags the journal with the engine that wrote it ("" in
	// journals from before engine selection; both mean balancesort).
	Engine string `json:"engine,omitempty"`

	N int `json:"n"`
	D int `json:"d"`
	B int `json:"b"`
	M int `json:"m"`
	V int `json:"v"`
	S int `json:"s"`

	Passes     int     `json:"passes"`
	Depth      int     `json:"depth"`
	IOs        int64   `json:"ios"`
	ReadIOs    int64   `json:"read_ios"`
	WriteIOs   int64   `json:"write_ios"`
	BlocksRead int64   `json:"blocks_read"`
	BlocksWrit int64   `json:"blocks_writ"`
	NextFree   []int   `json:"next_free"`
	Done       []jsReg `json:"done"`

	Work []core.SourceDesc `json:"work"`
}

// jsReg is core.Region with explicit JSON tags, so the journal schema is
// stable even if the core type grows fields.
type jsReg struct {
	Off int `json:"off"`
	N   int `json:"n"`
}

// checkJournalState validates a deserialized journal payload against the
// manifest the scratch directory was opened with. Journals come off disk
// after a crash; nothing in them is trusted blindly.
func checkJournalState(st *sortJournalState, p pdm.Params, v int) error {
	if st.D != p.D || st.B != p.B || st.M != p.M {
		return fmt.Errorf("balancesort: journal geometry D=%d B=%d M=%d disagrees with manifest D=%d B=%d M=%d",
			st.D, st.B, st.M, p.D, p.B, p.M)
	}
	if st.N < 0 || st.Passes < 0 || st.IOs < 0 {
		return fmt.Errorf("balancesort: journal has negative counters")
	}
	if len(st.NextFree) != p.D {
		return fmt.Errorf("balancesort: journal has %d allocation marks for D=%d", len(st.NextFree), p.D)
	}
	for i, nf := range st.NextFree {
		if nf < 0 {
			return fmt.Errorf("balancesort: journal allocation mark %d on disk %d", nf, i)
		}
	}
	total := 0
	for _, r := range st.Done {
		if r.Off < 0 || r.N < 0 {
			return fmt.Errorf("balancesort: journal has bad done segment %+v", r)
		}
		total += r.N
	}
	if err := core.CheckDescs(st.Work, v); err != nil {
		return fmt.Errorf("balancesort: journal work-list invalid: %w", err)
	}
	for _, d := range st.Work {
		total += d.Total()
	}
	if total != st.N {
		return fmt.Errorf("balancesort: journal accounts for %d of %d records", total, st.N)
	}
	return nil
}

// classifySortPanic converts the sorter's panic-based operational errors
// into returned errors: a core.Abort (cancellation, injected crash,
// checkpoint failure), a corrupt scratch block, or a permanently failed
// disk. Anything else is a programming bug and keeps panicking.
func classifySortPanic(r any) error {
	if r == nil {
		return nil
	}
	if ab, ok := r.(core.Abort); ok {
		return ab
	}
	if err, ok := r.(error); ok {
		var corrupt *pdm.CorruptBlockError
		var failed *diskio.DiskFailedError
		if errors.As(err, &corrupt) || errors.As(err, &failed) || errors.Is(err, diskio.ErrInjected) {
			return err
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
	}
	panic(r)
}

// SortContext is Sort with cancellation: the sorter polls ctx between
// passes, memoryloads, and distribution tracks, and a done context aborts
// the sort with ctx's error.
func SortContext(ctx context.Context, recs []Record, cfg Config) (res *Result, err error) {
	defer func() {
		if e := classifySortPanic(recover()); e != nil {
			res, err = nil, e
		}
	}()
	cfg.ctx = ctx
	return Sort(recs, cfg)
}
