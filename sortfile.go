package balancesort

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"balancesort/internal/core"
	"balancesort/internal/pdm"
	"balancesort/internal/record"
)

// SortFile externally sorts a file of 16-byte records (little-endian Key
// then Loc; see RecordSize) into outPath, using a file-backed disk array
// under scratchDir as secondary storage. Only O(Memory) records are held in
// host memory at a time — the input streams onto the simulated disks, the
// sort runs there, and the sorted segments stream out — so files larger
// than RAM are fair game. scratchDir "" uses a temporary directory that is
// removed afterwards.
//
// The returned Result carries the model costs but not the records (they
// are in outPath).
//
// With cfg.IO.Engine set, the scratch array is served by the concurrent
// disk I/O engine (internal/diskio): per-disk worker goroutines, buffer
// pooling, read-ahead, write coalescing, and fault injection with retries.
// The engine changes wall-clock behavior only; the model's parallel I/O
// counts are identical either way, and Result.IO reports the engine's
// per-disk metrics.
func SortFile(inPath, outPath, scratchDir string, cfg Config) (*Result, error) {
	cfg.fill()
	p := pdm.Params{D: cfg.Disks, B: cfg.BlockSize, M: cfg.Memory}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if 4*p.D*p.B > p.M {
		return nil, fmt.Errorf("balancesort: DB = %d needs M >= %d (got %d)", p.D*p.B, 4*p.D*p.B, p.M)
	}

	in, err := os.Open(inPath)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	st, err := in.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size()%record.EncodedSize != 0 {
		return nil, fmt.Errorf("balancesort: %s is %d bytes, not a whole number of %d-byte records",
			inPath, st.Size(), record.EncodedSize)
	}
	n := int(st.Size() / record.EncodedSize)

	cleanup := func() {}
	if scratchDir == "" {
		dir, err := os.MkdirTemp("", "balancesort-scratch-*")
		if err != nil {
			return nil, err
		}
		scratchDir = dir
		cleanup = func() { os.RemoveAll(dir) }
	}
	defer cleanup()

	var arr *pdm.Array
	if cfg.IO.Engine {
		arr, err = pdm.NewFileBackedEngine(p, scratchDir, cfg.IO.engineConfig())
	} else {
		arr, err = pdm.NewFileBacked(p, scratchDir)
	}
	if err != nil {
		return nil, err
	}
	defer arr.Close()

	ds := core.NewDiskSorter(arr, cfg.diskConfig())

	// Stream the input onto the array one stripe row at a time.
	inOff, err := loadFileStriped(arr, bufio.NewReaderSize(in, 1<<16), n)
	if err != nil {
		return nil, err
	}

	segs := ds.Sort(inOff, n)
	m := ds.Metrics()

	// Stream the sorted segments out.
	out, err := os.Create(outPath)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriterSize(out, 1<<16)
	var prev record.Record
	first := true
	written := 0
	for _, seg := range segs {
		recs := ds.ReadRegion(seg)
		for _, r := range recs {
			if !first && r.Less(prev) {
				out.Close()
				return nil, fmt.Errorf("balancesort: internal error: output not sorted")
			}
			prev, first = r, false
		}
		if err := record.WriteAll(w, recs); err != nil {
			out.Close()
			return nil, err
		}
		written += len(recs)
	}
	if err := w.Flush(); err != nil {
		out.Close()
		return nil, err
	}
	if err := out.Close(); err != nil {
		return nil, err
	}
	if written != n {
		return nil, fmt.Errorf("balancesort: internal error: wrote %d of %d records", written, n)
	}

	return &Result{
		IO:                 ioStatsFrom(arr.IOMetrics()),
		IOs:                m.IOs,
		IOLowerBound:       core.LowerBoundIOs(n, p),
		PRAMTime:           m.PRAMTime,
		PRAMWork:           m.PRAMWork,
		MaxBucketReadRatio: m.MaxBucketReadRatio,
		MaxBucketFrac:      m.MaxBucketFrac,
		Depth:              m.Depth,
		Passes:             m.Passes,
		MemPeak:            m.MemPeak,
	}, nil
}

// RecordSize is the wire size of one record in SortFile's input and output
// files.
const RecordSize = record.EncodedSize

// WriteRecordFile writes records to path in SortFile's wire format (a
// convenience for generating test inputs).
func WriteRecordFile(path string, recs []Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	if err := record.WriteAll(w, recs); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadRecordFile reads a wire-format record file fully into memory.
func ReadRecordFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return record.ReadAll(f)
}

// loadFileStriped streams n records from r onto a fresh striped region of
// the array, one stripe row per parallel write, and returns the region's
// block offset.
func loadFileStriped(arr *pdm.Array, r io.Reader, n int) (int, error) {
	p := arr.Params()
	blocks := (n + p.B - 1) / p.B
	perDisk := (blocks + p.D - 1) / p.D
	if perDisk == 0 {
		perDisk = 1
	}
	off := arr.AllocStripe(perDisk)

	rowRecs := p.D * p.B
	buf := make([]byte, rowRecs*record.EncodedSize)
	row := make([]record.Record, rowRecs)
	pos := 0
	for pos < n {
		m := rowRecs
		if pos+m > n {
			m = n - pos
		}
		if _, err := io.ReadFull(r, buf[:m*record.EncodedSize]); err != nil {
			return 0, err
		}
		for i := 0; i < m; i++ {
			row[i] = record.Decode(buf[i*record.EncodedSize:])
		}
		// Row k of the region occupies stripe offset off+k on every disk.
		arr.WriteStripe(off+pos/rowRecs, row[:m])
		pos += m
	}
	return off, nil
}
