package balancesort

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"balancesort/internal/core"
	"balancesort/internal/pdm"
	"balancesort/internal/record"
)

// SortFile externally sorts a file of 16-byte records (little-endian Key
// then Loc; see RecordSize) into outPath, using a file-backed disk array
// under scratchDir as secondary storage. Only O(Memory) records are held in
// host memory at a time — the input streams onto the simulated disks, the
// sort runs there, and the sorted segments stream out — so files larger
// than RAM are fair game. scratchDir "" uses a temporary directory that is
// removed afterwards.
//
// The returned Result carries the model costs but not the records (they
// are in outPath).
//
// With cfg.IO.Engine set, the scratch array is served by the concurrent
// disk I/O engine (internal/diskio): per-disk worker goroutines, buffer
// pooling, read-ahead, write coalescing, and fault injection with retries.
// The engine changes wall-clock behavior only; the model's parallel I/O
// counts are identical either way, and Result.IO reports the engine's
// per-disk metrics.
//
// Every scratch block is checksummed (CRC32C) and verified on read unless
// cfg.Robust.NoChecksums is set; with cfg.Robust.Journal, every completed
// pass is committed to a journal in scratchDir so an interrupted sort can
// be continued with ResumeSortFile. See RobustConfig.
func SortFile(inPath, outPath, scratchDir string, cfg Config) (*Result, error) {
	return SortFileContext(context.Background(), inPath, outPath, scratchDir, cfg)
}

// SortFileContext is SortFile with cancellation: ctx is polled between
// sort passes, memoryloads, and distribution tracks, and also unblocks the
// I/O engine's queues and retry backoffs. On cancellation the in-flight
// parallel I/O completes, the array closes cleanly, and — when journaling
// is on — the scratch directory remains resumable.
func SortFileContext(ctx context.Context, inPath, outPath, scratchDir string, cfg Config) (*Result, error) {
	return sortFile(ctx, inPath, outPath, scratchDir, cfg, false)
}

// ResumeSortFile continues an interrupted journaled SortFile from its last
// committed pass, reusing the scratch directory's disk files, manifest,
// and journal. The output is byte-identical to what the uninterrupted run
// would have produced. If the journal holds no committed state (the sort
// crashed before its first commit, or never ran), the sort simply starts
// fresh. cfg supplies the I/O engine and robustness knobs; the model
// geometry comes from the scratch manifest.
func ResumeSortFile(inPath, outPath, scratchDir string, cfg Config) (*Result, error) {
	return ResumeSortFileContext(context.Background(), inPath, outPath, scratchDir, cfg)
}

// ResumeSortFileContext is ResumeSortFile with cancellation.
func ResumeSortFileContext(ctx context.Context, inPath, outPath, scratchDir string, cfg Config) (*Result, error) {
	if scratchDir == "" {
		return nil, errors.New("balancesort: resume needs the scratch directory of the interrupted sort")
	}
	cfg.Robust.Journal = true
	entries, err := pdm.LoadJournal(pdm.JournalPath(scratchDir))
	if err != nil || len(entries) == 0 {
		// Nothing was committed: run from scratch (the input file is the
		// source of truth until the first commit lands).
		return sortFile(ctx, inPath, outPath, scratchDir, cfg, false)
	}
	return sortFile(ctx, inPath, outPath, scratchDir, cfg, true)
}

// balanceSortFile is the Balance Sort engine behind sortFile (see
// engine.go for the dispatch across engines).
func balanceSortFile(ctx context.Context, inPath, outPath, scratchDir string, cfg Config, resume bool) (*Result, error) {
	cfg.fill()
	cfg.ctx = ctx
	cfg.tracer = cfg.Obs.tracer()
	cfg.Obs.attach("sort", cfg.tracer)

	cleanup := func() {}
	if scratchDir == "" {
		if cfg.Robust.Journal {
			return nil, errors.New("balancesort: journaling needs a persistent scratch directory")
		}
		dir, err := os.MkdirTemp("", "balancesort-scratch-*")
		if err != nil {
			return nil, err
		}
		scratchDir = dir
		cleanup = func() { os.RemoveAll(dir) }
	}
	defer cleanup()

	var (
		arr   *pdm.Array
		jnl   *pdm.Journal
		done  []core.Region
		work  []core.SourceDesc
		prior core.Metrics
		n     int
	)

	if resume {
		var err error
		arr, jnl, done, work, prior, err = reopenScratch(ctx, scratchDir, &cfg)
		if err != nil {
			return nil, err
		}
		n = prior.N
	} else {
		p := pdm.Params{D: cfg.Disks, B: cfg.BlockSize, M: cfg.Memory}
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if 4*p.D*p.B > p.M {
			return nil, fmt.Errorf("balancesort: DB = %d needs M >= %d (got %d)", p.D*p.B, 4*p.D*p.B, p.M)
		}

		in, err := os.Open(inPath)
		if err != nil {
			return nil, err
		}
		st, err := in.Stat()
		if err != nil {
			in.Close()
			return nil, err
		}
		if st.Size()%record.EncodedSize != 0 {
			in.Close()
			return nil, fmt.Errorf("balancesort: %s is %d bytes, not a whole number of %d-byte records",
				inPath, st.Size(), record.EncodedSize)
		}
		n = int(st.Size() / record.EncodedSize)

		opts := pdm.FileOptions{NoChecksums: cfg.Robust.NoChecksums}
		if cfg.IO.Engine {
			ecfg := cfg.IO.engineConfig(ctx, cfg.tracer)
			opts.Engine = &ecfg
		}
		arr, err = pdm.NewFileBackedOpts(p, scratchDir, opts)
		if err != nil {
			in.Close()
			return nil, err
		}

		// Stream the input onto the array one stripe row at a time. The
		// array reports store errors (a failed disk, a corrupt block) by
		// panicking, so the load runs under the same classifier as the sort.
		inOff, err := func() (off int, err error) {
			defer func() {
				if e := classifySortPanic(recover()); e != nil {
					off, err = 0, e
				}
			}()
			return loadFileStriped(arr, bufio.NewReaderSize(in, 1<<16), inPath, n)
		}()
		in.Close()
		if err != nil {
			arr.Close()
			return nil, err
		}
		work = []core.SourceDesc{core.StripedDesc(inOff, n, 0)}
		prior = core.Metrics{N: n}

		if cfg.Robust.Journal {
			jnl, err = pdm.CreateJournal(pdm.JournalPath(scratchDir))
			if err != nil {
				arr.Close()
				return nil, err
			}
			// Commit the loaded-input state so even a crash before the
			// first pass resumes without re-reading inPath.
			if err := commitState(arr, jnl, cfg, core.CheckpointState{Work: work, Metrics: prior}); err != nil {
				jnl.Close()
				arr.Close()
				return nil, err
			}
		}
	}
	defer arr.Close()
	if jnl != nil {
		defer jnl.Close()
	}
	defer startSortObs(cfg, arr)()

	dc := cfg.diskConfig()
	if jnl != nil {
		dc.Checkpoint = func(st core.CheckpointState) error {
			return commitState(arr, jnl, cfg, st)
		}
	}
	ds := core.NewDiskSorter(arr, dc)

	res, err := runAndDrain(ds, arr, done, work, prior, outPath, n, cfg)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// runAndDrain runs (or resumes) the sort and streams the sorted segments
// into outPath, converting the sorter's panic-based operational errors
// into returned ones and never leaving a partial output file behind.
func runAndDrain(ds *core.DiskSorter, arr *pdm.Array, done []core.Region, work []core.SourceDesc, prior core.Metrics, outPath string, n int, cfg Config) (res *Result, err error) {
	outCreated := false
	defer func() {
		if e := classifySortPanic(recover()); e != nil {
			res, err = nil, e
		}
		if err != nil && outCreated {
			os.Remove(outPath)
		}
	}()

	segs := ds.Resume(done, work, prior)
	m := ds.Metrics()

	out, err := os.Create(outPath)
	if err != nil {
		return nil, err
	}
	outCreated = true
	w := bufio.NewWriterSize(out, 1<<16)
	var prev record.Record
	first := true
	written := 0
	for _, seg := range segs {
		recs := ds.ReadRegion(seg)
		for _, r := range recs {
			if !first && r.Less(prev) {
				out.Close()
				return nil, fmt.Errorf("balancesort: internal error: output not sorted")
			}
			prev, first = r, false
		}
		if err := record.WriteAll(w, recs); err != nil {
			out.Close()
			return nil, err
		}
		written += len(recs)
	}
	if err := w.Flush(); err != nil {
		out.Close()
		return nil, err
	}
	if err := out.Close(); err != nil {
		return nil, err
	}
	if written != n {
		return nil, fmt.Errorf("balancesort: internal error: wrote %d of %d records", written, n)
	}

	ioStats := ioStatsFrom(arr.IOMetrics())
	res = &Result{
		IO:                 ioStats,
		MeasuredThroughput: measuredThroughput(ioStats),
		IOs:                m.IOs,
		IOLowerBound:       core.LowerBoundIOs(n, arr.Params()),
		PRAMTime:           m.PRAMTime,
		PRAMWork:           m.PRAMWork,
		MaxBucketReadRatio: m.MaxBucketReadRatio,
		MaxBucketFrac:      m.MaxBucketFrac,
		Depth:              m.Depth,
		Passes:             m.Passes,
		MemPeak:            m.MemPeak,
		Trace:              traceFrom(cfg.tracer),
	}
	if cfg.Robust.ScrubAfter {
		if err := arr.Sync(); err != nil {
			return nil, err
		}
		res.Scrub = scrubReportFrom(arr.Scrub())
	}
	return res, nil
}

// commitState makes one pass durable: flush the array (data, checksums,
// manifest — in that order, so the manifest never describes missing
// bytes), then append the serialized sorter state to the journal and
// fsync it. Only after the append returns is the pass committed.
func commitState(arr *pdm.Array, jnl *pdm.Journal, cfg Config, st core.CheckpointState) error {
	if err := arr.Sync(); err != nil {
		return err
	}
	p := arr.Params()
	v := cfg.VirtualDisks
	if v == 0 {
		v = p.D
	}
	js := sortJournalState{
		Engine: string(EngineBalanceSort),
		N:      st.Metrics.N, D: p.D, B: p.B, M: p.M, V: v, S: cfg.Buckets,
		Passes: st.Metrics.Passes, Depth: st.Metrics.Depth,
		IOs: st.Metrics.IOs, ReadIOs: st.Metrics.ReadIOs, WriteIOs: st.Metrics.WriteIOs,
		BlocksRead: st.Metrics.BlocksRead, BlocksWrit: st.Metrics.BlocksWrit,
		NextFree: arr.NextFree(),
		Work:     st.Work,
	}
	for _, r := range st.Done {
		js.Done = append(js.Done, jsReg{Off: r.Off, N: r.N})
	}
	payload, err := json.Marshal(js)
	if err != nil {
		return err
	}
	_, err = jnl.Append(payload)
	return err
}

// reopenScratch reopens a journaled scratch directory for resumption: it
// opens the array from its manifest, recovers the journal (truncating any
// torn tail), validates the recovered state against the manifest, and
// restores the allocation marks to the commit point. The model geometry
// in cfg is overwritten from the manifest.
func reopenScratch(ctx context.Context, scratchDir string, cfg *Config) (*pdm.Array, *pdm.Journal, []core.Region, []core.SourceDesc, core.Metrics, error) {
	var none core.Metrics
	opts := pdm.FileOptions{}
	if cfg.IO.Engine {
		ecfg := cfg.IO.engineConfig(ctx, cfg.tracer)
		opts.Engine = &ecfg
	}
	arr, err := pdm.OpenFileBackedOpts(scratchDir, opts)
	if err != nil {
		return nil, nil, nil, nil, none, err
	}
	fail := func(err error) (*pdm.Array, *pdm.Journal, []core.Region, []core.SourceDesc, core.Metrics, error) {
		arr.Close()
		return nil, nil, nil, nil, none, err
	}
	p := arr.Params()
	cfg.Disks, cfg.BlockSize, cfg.Memory = p.D, p.B, p.M

	jnl, entries, err := pdm.OpenJournalAppend(pdm.JournalPath(scratchDir))
	if err != nil {
		return fail(err)
	}
	if len(entries) == 0 {
		jnl.Close()
		return fail(errors.New("balancesort: journal holds no committed state"))
	}
	var st sortJournalState
	if err := json.Unmarshal(entries[len(entries)-1].Payload, &st); err != nil {
		jnl.Close()
		return fail(fmt.Errorf("balancesort: bad journal payload: %w", err))
	}
	if st.V == 0 {
		st.V = st.D
	}
	if err := checkJournalState(&st, p, st.V); err != nil {
		jnl.Close()
		return fail(err)
	}
	cfg.VirtualDisks = st.V
	cfg.Buckets = st.S
	arr.SetNextFree(st.NextFree)

	var done []core.Region
	for _, r := range st.Done {
		done = append(done, core.Region{Off: r.Off, N: r.N})
	}
	prior := core.Metrics{
		N: st.N, Passes: st.Passes, Depth: st.Depth,
		IOs: st.IOs, ReadIOs: st.ReadIOs, WriteIOs: st.WriteIOs,
		BlocksRead: st.BlocksRead, BlocksWrit: st.BlocksWrit,
	}
	return arr, jnl, done, st.Work, prior, nil
}

// RecordSize is the wire size of one record in SortFile's input and output
// files.
const RecordSize = record.EncodedSize

// WriteRecordFile writes records to path in SortFile's wire format (a
// convenience for generating test inputs).
func WriteRecordFile(path string, recs []Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	if err := record.WriteAll(w, recs); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadRecordFile reads a wire-format record file fully into memory.
func ReadRecordFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return record.ReadAll(f)
}

// loadFileStriped streams n records from r onto a fresh striped region of
// the array, one stripe row per parallel write, and returns the region's
// block offset.
func loadFileStriped(arr *pdm.Array, r io.Reader, inPath string, n int) (int, error) {
	p := arr.Params()
	blocks := (n + p.B - 1) / p.B
	perDisk := (blocks + p.D - 1) / p.D
	if perDisk == 0 {
		perDisk = 1
	}
	off := arr.AllocStripe(perDisk)

	rowRecs := p.D * p.B
	buf := make([]byte, rowRecs*record.EncodedSize)
	row := make([]record.Record, rowRecs)
	pos := 0
	for pos < n {
		m := rowRecs
		if pos+m > n {
			m = n - pos
		}
		if _, err := io.ReadFull(r, buf[:m*record.EncodedSize]); err != nil {
			return 0, fmt.Errorf("balancesort: reading %s at record %d (byte offset %d): %w",
				inPath, pos, int64(pos)*record.EncodedSize, err)
		}
		for i := 0; i < m; i++ {
			row[i] = record.Decode(buf[i*record.EncodedSize:])
		}
		// Row k of the region occupies stripe offset off+k on every disk.
		arr.WriteStripe(off+pos/rowRecs, row[:m])
		pos += m
	}
	return off, nil
}
