package balancesort

import (
	"testing"

	"balancesort/internal/record"
)

func TestSortDefaults(t *testing.T) {
	in := NewWorkload(Uniform, 20000, 1)
	res, err := Sort(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(in, res.Records) {
		t.Fatal("output not a sorted permutation")
	}
	if res.IOs == 0 || res.IOLowerBound <= 0 || res.PRAMTime <= 0 {
		t.Fatalf("metrics incomplete: %+v", res)
	}
	ratio := float64(res.IOs) / res.IOLowerBound
	if ratio < 1 || ratio > 15 {
		t.Fatalf("I/O ratio %.2f outside the constant-factor band", ratio)
	}
}

func TestSortAllWorkloads(t *testing.T) {
	for _, w := range []Workload{Uniform, FewDistinct, NearlySorted, Reversed, BucketSkew, Zipf} {
		in := NewWorkload(w, 8000, 2)
		res, err := Sort(in, Config{Disks: 4, BlockSize: 16, Memory: 2048})
		if err != nil {
			t.Fatalf("%v: %v", w, err)
		}
		if !Verify(in, res.Records) {
			t.Fatalf("%v: bad output", w)
		}
	}
}

func TestSortInputUntouched(t *testing.T) {
	in := NewWorkload(Uniform, 5000, 3)
	before := append([]Record(nil), in...)
	if _, err := Sort(in, Config{}); err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != before[i] {
			t.Fatal("Sort modified its input")
		}
	}
}

func TestSortMatchesReference(t *testing.T) {
	in := NewWorkload(Zipf, 10000, 4)
	res, err := Sort(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := ReferenceSort(in)
	for i := range want {
		if res.Records[i] != want[i] {
			t.Fatalf("mismatch with reference sort at %d", i)
		}
	}
}

func TestSortConfigValidation(t *testing.T) {
	in := NewWorkload(Uniform, 100, 5)
	if _, err := Sort(in, Config{Disks: 8, BlockSize: 64, Memory: 512}); err == nil {
		t.Fatal("DB > M/2 accepted")
	}
	if _, err := Sort(in, Config{Disks: 8, VirtualDisks: 3}); err == nil {
		t.Fatal("non-divisor VirtualDisks accepted")
	}
}

func TestSortStrategies(t *testing.T) {
	in := NewWorkload(BucketSkew, 12000, 6)
	for _, pl := range []PlacementStrategy{PlacementBalanced, PlacementRandom, PlacementRoundRobin} {
		res, err := Sort(in, Config{Placement: pl, Seed: 7})
		if err != nil {
			t.Fatalf("placement %d: %v", pl, err)
		}
		if !Verify(in, res.Records) {
			t.Fatalf("placement %d: bad output", pl)
		}
	}
	for _, m := range []MatchStrategy{MatchDerandomized, MatchRandomized, MatchGreedy} {
		res, err := Sort(in, Config{Match: m, Seed: 7})
		if err != nil {
			t.Fatalf("match %d: %v", m, err)
		}
		if !Verify(in, res.Records) {
			t.Fatalf("match %d: bad output", m)
		}
	}
}

func TestSortHierarchyModels(t *testing.T) {
	in := NewWorkload(Uniform, 6000, 8)
	for _, m := range []HierarchyModel{HMMLog, HMMPower, BTLog, BTPower, UMH} {
		for _, ic := range []Interconnect{EREWPRAM, Hypercube} {
			res, err := SortHierarchy(in, HierConfig{Model: m, Interconnect: ic, Alpha: 0.5})
			if err != nil {
				t.Fatalf("model %d ic %d: %v", m, ic, err)
			}
			if !Verify(in, res.Records) {
				t.Fatalf("model %d ic %d: bad output", m, ic)
			}
			if res.Time <= 0 || res.Bound <= 0 {
				t.Fatalf("model %d ic %d: missing costs %+v", m, ic, res)
			}
		}
	}
}

func TestSortHierarchyBoundRatioStable(t *testing.T) {
	// The measured-time/bound ratio should stay within one order of
	// magnitude as N quadruples — the shape claim of Theorem 2.
	var ratios []float64
	for _, n := range []int{8000, 32000} {
		in := NewWorkload(Uniform, n, 9)
		res, err := SortHierarchy(in, HierConfig{Model: HMMLog})
		if err != nil {
			t.Fatal(err)
		}
		ratios = append(ratios, res.Time/res.Bound)
	}
	if ratios[1] > ratios[0]*8 || ratios[0] > ratios[1]*8 {
		t.Fatalf("bound ratio unstable: %v", ratios)
	}
}

func TestVerifyRejectsBadOutputs(t *testing.T) {
	in := []Record{{Key: 2, Loc: 0}, {Key: 1, Loc: 1}}
	if Verify(in, in) {
		t.Fatal("unsorted output accepted")
	}
	if Verify(in, []Record{{Key: 1, Loc: 1}, {Key: 3, Loc: 0}}) {
		t.Fatal("non-permutation accepted")
	}
	if !Verify(in, []Record{{Key: 1, Loc: 1}, {Key: 2, Loc: 0}}) {
		t.Fatal("good output rejected")
	}
}

func TestReferenceSort(t *testing.T) {
	in := NewWorkload(Reversed, 1000, 10)
	out := ReferenceSort(in)
	if !record.IsSorted(out) {
		t.Fatal("reference sort failed")
	}
	if record.IsSorted(in) {
		t.Fatal("reference sort mutated its input")
	}
}

func TestSortEmpty(t *testing.T) {
	res, err := Sort(nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 {
		t.Fatal("empty sort produced records")
	}
}

func TestSortWithAllAlgorithms(t *testing.T) {
	in := NewWorkload(Zipf, 6000, 11)
	for _, a := range []Algorithm{AlgoBalanceSort, AlgoStripedMerge, AlgoForecastMerge, AlgoColumnSort, AlgoGreedSort} {
		res, err := SortWith(a, in, Config{Disks: 4, BlockSize: 16, Memory: 4096})
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if !Verify(in, res.Records) {
			t.Fatalf("%v: bad output", a)
		}
		if res.IOs == 0 {
			t.Fatalf("%v: no I/Os counted", a)
		}
	}
}

func TestSortWithColumnSortTooLarge(t *testing.T) {
	in := NewWorkload(Uniform, 1<<18, 12)
	if _, err := SortWith(AlgoColumnSort, in, Config{Disks: 4, BlockSize: 16, Memory: 4096}); err == nil {
		t.Fatal("columnsort beyond its shape bound did not error")
	}
}

func TestSortBaseCaseParityFacade(t *testing.T) {
	// The radix base case is the default; -nocradix keeps the comparison
	// path. Both must produce the same bytes and the same model I/Os.
	in := NewWorkload(FewDistinct, 9000, 13)
	radix, err := Sort(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Sort(in, Config{NoRadix: true})
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(in, radix.Records) {
		t.Fatal("radix-base-case sort failed")
	}
	for i := range radix.Records {
		if radix.Records[i] != comp.Records[i] {
			t.Fatalf("radix and comparison base cases disagree at %d", i)
		}
	}
	if radix.IOs != comp.IOs {
		t.Fatalf("base case changed model I/Os: radix %d, comparison %d", radix.IOs, comp.IOs)
	}
}

func TestSortHierarchyBitonicInterconnect(t *testing.T) {
	in := NewWorkload(Uniform, 8000, 14)
	res, err := SortHierarchy(in, HierConfig{Hierarchies: 8, Model: HMMLog, Interconnect: HypercubeBitonic})
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(in, res.Records) {
		t.Fatal("bitonic-interconnect sort failed")
	}
	if res.NetTime <= 0 {
		t.Fatal("no network time charged")
	}
	// Must reject a non-power-of-two H.
	if _, err := SortHierarchy(in, HierConfig{Hierarchies: 6, Interconnect: HypercubeBitonic}); err == nil {
		t.Fatal("non-power-of-two H accepted for the bitonic interconnect")
	}
}

func TestBitonicChargesExceedPRAM(t *testing.T) {
	in := NewWorkload(Uniform, 8000, 15)
	rp, err := SortHierarchy(in, HierConfig{Hierarchies: 16, Model: HMMLog, Interconnect: EREWPRAM})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := SortHierarchy(in, HierConfig{Hierarchies: 16, Model: HMMLog, Interconnect: HypercubeBitonic})
	if err != nil {
		t.Fatal(err)
	}
	if rb.NetTime <= rp.NetTime {
		t.Fatalf("bitonic net time %.0f not above PRAM %.0f (log² vs log)", rb.NetTime, rp.NetTime)
	}
}

func TestSortCRCWCheaperInternalTime(t *testing.T) {
	in := NewWorkload(Uniform, 20000, 16)
	re, err := Sort(in, Config{Processors: 16})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := Sort(in, Config{Processors: 16, CRCW: true})
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(in, rc.Records) {
		t.Fatal("CRCW sort failed")
	}
	if rc.PRAMTime >= re.PRAMTime {
		t.Fatalf("CRCW time %.0f not below EREW %.0f", rc.PRAMTime, re.PRAMTime)
	}
	if rc.IOs != re.IOs {
		t.Fatal("PRAM variant changed the I/O count")
	}
}

func TestAllAlgorithmsAgreeExactly(t *testing.T) {
	// Five algorithms, one answer: every disk algorithm must produce the
	// byte-identical sorted sequence (total order is strict, so there is
	// exactly one correct output).
	in := NewWorkload(Zipf, 5000, 21)
	want := ReferenceSort(in)
	for _, a := range []Algorithm{AlgoBalanceSort, AlgoStripedMerge, AlgoForecastMerge, AlgoColumnSort, AlgoGreedSort} {
		res, err := SortWith(a, in, Config{Disks: 4, BlockSize: 16, Memory: 4096})
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		for i := range want {
			if res.Records[i] != want[i] {
				t.Fatalf("%v differs from reference at %d", a, i)
			}
		}
	}
}

func TestHierarchySortersAgreeExactly(t *testing.T) {
	in := NewWorkload(BucketSkew, 4000, 22)
	want := ReferenceSort(in)
	for _, m := range []HierarchyModel{HMMLog, BTPower, UMH} {
		res, err := SortHierarchy(in, HierConfig{Hierarchies: 8, Model: m, Alpha: 0.5})
		if err != nil {
			t.Fatalf("model %d: %v", m, err)
		}
		for i := range want {
			if res.Records[i] != want[i] {
				t.Fatalf("model %d differs from reference at %d", m, i)
			}
		}
	}
}

func TestHierarchyHPrimeOverride(t *testing.T) {
	in := NewWorkload(Uniform, 6000, 23)
	res, err := SortHierarchy(in, HierConfig{Hierarchies: 16, HPrime: 8, Model: HMMLog})
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(in, res.Records) {
		t.Fatal("H' override broke the sort")
	}
	if _, err := SortHierarchy(in, HierConfig{Hierarchies: 16, HPrime: 3}); err == nil {
		t.Fatal("non-divisor H' accepted")
	}
}
