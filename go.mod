module balancesort

go 1.22
