// Command sortanalyze reads a Chrome trace written by the sorter (the
// -trace output of cmd/balancesort, or the merged cluster trace from
// ClusterResult.Trace) and prints a bottleneck report: the critical path
// through the coordinator's phases, per-phase worker overlap, and how idle
// each resource track sat.
//
// Usage:
//
//	sortanalyze [-json] [-gate-overlap] trace.json
//
// -json emits the report as JSON instead of text. -gate-overlap exits
// non-zero when the trace shows more than one worker but no phase ever ran
// two workers at once — a CI tripwire for accidentally serialized clusters.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"balancesort/internal/analyze"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	gate := flag.Bool("gate-overlap", false, "exit non-zero when >1 worker but zero phase overlap (serialized cluster)")
	coordPid := flag.Int("coordinator-pid", 0, "pid of the coordinator process in the trace")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sortanalyze [-json] [-gate-overlap] trace.json")
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tr, err := analyze.Load(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	rep := analyze.Analyze(tr, *coordPid)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		analyze.WriteText(os.Stdout, rep)
	}

	if *gate {
		if err := analyze.OverlapGate(rep); err != nil {
			fmt.Fprintln(os.Stderr, "gate failed:", err)
			os.Exit(1)
		}
	}
}
