// Command benchguard compares a freshly emitted BENCH_sort.json against the
// committed one and fails (exit 1) when any engine's I/O efficiency
// regresses: a row's io_ratio_vs_lower_bound more than 10% above the
// committed ratio for the same (engine, workload, records) point, a point
// that disappeared from the fresh file, or a guidesort model row above the
// 5.0 acceptance bar. Model I/O counts are deterministic, so the tolerance
// only exists to absorb intentional small re-tunings without a guard edit.
//
// Usage: benchguard -committed BENCH_sort.json -fresh /tmp/BENCH_sort.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type row struct {
	Engine     string  `json:"engine"`
	Workload   string  `json:"workload"`
	Records    int     `json:"records"`
	FileBacked bool    `json:"file_backed"`
	IOs        int64   `json:"ios"`
	IORatio    float64 `json:"io_ratio_vs_lower_bound"`
}

type bench struct {
	Benchmark string `json:"benchmark"`
	Geometry  string `json:"geometry"`
	Results   []row  `json:"results"`
}

func load(path string) (*bench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b bench
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Results) == 0 {
		return nil, fmt.Errorf("%s: no results", path)
	}
	return &b, nil
}

func key(r row) string {
	return fmt.Sprintf("%s/%s/n=%d/file=%v", r.Engine, r.Workload, r.Records, r.FileBacked)
}

func main() {
	committedPath := flag.String("committed", "BENCH_sort.json", "committed benchmark file (the baseline)")
	freshPath := flag.String("fresh", "", "freshly emitted benchmark file to check")
	slack := flag.Float64("slack", 1.10, "allowed ratio growth factor before failing")
	guideBar := flag.Float64("guidebar", 5.0, "absolute io_ratio ceiling for guidesort model rows")
	flag.Parse()
	if *freshPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -fresh is required")
		os.Exit(2)
	}

	committed, err := load(*committedPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}

	freshBy := make(map[string]row, len(fresh.Results))
	for _, r := range fresh.Results {
		freshBy[key(r)] = r
	}

	failed := false
	fail := func(format string, args ...any) {
		failed = true
		fmt.Fprintf(os.Stderr, "benchguard: FAIL "+format+"\n", args...)
	}
	for _, old := range committed.Results {
		now, ok := freshBy[key(old)]
		if !ok {
			fail("%s: point missing from the fresh emit", key(old))
			continue
		}
		if now.IORatio > old.IORatio**slack {
			fail("%s: io_ratio %.3f exceeds committed %.3f by more than %.0f%% (%d vs %d I/Os)",
				key(old), now.IORatio, old.IORatio, (*slack-1)*100, now.IOs, old.IOs)
		} else {
			fmt.Printf("benchguard: ok %s ratio %.3f (committed %.3f)\n", key(old), now.IORatio, old.IORatio)
		}
	}
	for _, r := range fresh.Results {
		if r.Engine == "guidesort" && !r.FileBacked && r.IORatio > *guideBar {
			fail("%s: guidesort ratio %.3f above the %.1f acceptance bar", key(r), r.IORatio, *guideBar)
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d points checked against %s, no regressions\n", len(committed.Results), *committedPath)
}
