// Command balancesort sorts a generated workload on a simulated parallel
// disk array or parallel memory hierarchy and reports the model costs —
// the quickest way to poke at the system from a shell.
//
//	go run ./cmd/balancesort -n 1000000 -d 16 -b 64 -m 65536
//	go run ./cmd/balancesort -algo stripedmerge -d 32
//	go run ./cmd/balancesort -hier hmm-log -H 16 -ic hypercube
//	go run ./cmd/balancesort -workload bucketskew -placement random
//	go run ./cmd/balancesort -join 127.0.0.1:7101 -scratch /tmp/w1
//	go run ./cmd/balancesort -infile in.bin -outfile out.bin -cluster 127.0.0.1:7101,127.0.0.1:7102
//	go run ./cmd/balancesort -serve 127.0.0.1:8080 -data-dir /var/lib/balancesort
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"balancesort"
	"balancesort/internal/jobs"
)

func main() {
	var (
		n         = flag.Int("n", 1<<18, "records to sort")
		seed      = flag.Uint64("seed", 42, "workload seed")
		workload  = flag.String("workload", "uniform", "uniform|fewdistinct|nearlysorted|reversed|bucketskew|zipf")
		d         = flag.Int("d", 8, "disks (D)")
		b         = flag.Int("b", 64, "block size in records (B)")
		m         = flag.Int("m", 0, "internal memory in records (M); 0 = 8*D*B")
		p         = flag.Int("p", 1, "PRAM processors (P)")
		v         = flag.Int("v", 0, "virtual disks for partial striping; 0 = D")
		algo      = flag.String("algo", "balancesort", "balancesort|guidesort|stripedmerge|forecastmerge|columnsort|greedsort")
		placement = flag.String("placement", "balanced", "balanced|random|roundrobin")
		match     = flag.String("match", "derandomized", "derandomized|randomized|greedy")
		hierM     = flag.String("hier", "", "run on a hierarchy instead: hmm-log|hmm-power|bt-log|bt-power|umh")
		hcount    = flag.Int("H", 8, "hierarchies (H) for -hier")
		alpha     = flag.Float64("alpha", 1, "α for the power-law hierarchy models")
		ic        = flag.String("ic", "pram", "interconnect for -hier: pram|hypercube|hypercube-bitonic")
		inFile    = flag.String("infile", "", "sort this 16-byte-record file instead of a generated workload")
		outFile   = flag.String("outfile", "", "write the sorted records here (required with -infile)")
		scratch   = flag.String("scratch", "", "directory for the file-backed disks (default: a temp dir)")
		genFile   = flag.String("genfile", "", "just generate -n records of -workload into this file and exit")
		verify    = flag.String("verify", "", "just check that this record file is sorted and exit")

		// Integrity and recovery knobs (with -infile / -scratch).
		scrub      = flag.String("scrub", "", "verify every block checksum in this scratch directory and exit")
		resume     = flag.Bool("resume", false, "continue an interrupted journaled sort from -scratch")
		journal    = flag.Bool("journal", false, "journal every sort pass so the sort can be resumed (needs -scratch)")
		noChecksum = flag.Bool("nochecksum", false, "disable the per-block CRC32C checksums on the scratch disks")
		scrubAfter = flag.Bool("scrubafter", false, "scrub the scratch array after sorting and report the sweep")
		timeout    = flag.Duration("timeout", 0, "bound the run: cancel a file or cluster sort, or drain the job server, after this long (0 = no deadline)")

		// Engine selection (with -infile and inside -serve/-join sorts).
		engine   = flag.String("engine", "", "file-sort engine: auto|balancesort|guidesort|stripedmerge|inmem (empty = balancesort; auto asks the cost-model planner)")
		noCRadix = flag.Bool("nocradix", false, "sort memoryloads with the comparison sort instead of the default LSD radix sort")

		// Disk I/O engine knobs (with -infile).
		ioEngine    = flag.Bool("ioengine", true, "serve the file-backed disks with the concurrent I/O engine")
		stats       = flag.Bool("stats", false, "print the engine's per-disk I/O metrics")
		queueDepth  = flag.Int("queue", 0, "engine request-queue depth per disk (0 = default)")
		prefetch    = flag.Int("prefetch", 0, "engine read-ahead window in blocks (0 = default, <0 = off)")
		writeBehind = flag.Int("writebehind", 0, "engine write-coalescing run length in blocks (0 = default, <0 = off)")
		retries     = flag.Int("retries", 0, "engine retries per failed device op (0 = default)")
		faultRate   = flag.Float64("faultrate", 0, "inject transient device faults with this probability")
		tornRate    = flag.Float64("tornrate", 0, "probability an injected write fault tears the block")
		jitter      = flag.Duration("jitter", 0, "inject up to this much per-op device latency")

		// Cluster mode (coordinator/worker Balance Sort over TCP).
		join       = flag.String("join", "", "serve as a cluster worker on this listen address (e.g. 127.0.0.1:0)")
		addrFile   = flag.String("addrfile", "", "with -join: write the actual listen address to this file")
		clusterWs  = flag.String("cluster", "", "coordinate a cluster sort over these comma-separated worker addresses (with -infile/-outfile)")
		cbuckets   = flag.Int("cbuckets", 0, "cluster bucket count S (0 = 4x workers)")
		xblock     = flag.Int("xblock", 0, "cluster exchange block size in records (0 = 2048)")
		inMem      = flag.Bool("inmem", false, "with -join: sort worker shards in memory instead of the file-backed engine")
		dropAfter  = flag.Int("dropafter", 0, "with -join: force-close a peer connection once after this many sent blocks (fault injection)")
		chaosKill  = flag.String("chaos-kill", "", "with -cluster: kill worker W at coordinator phase P, as phase:worker (e.g. exchange:2); append :hang to hang it instead; coordinator@P kills the coordinator itself")
		chaosJoin  = flag.String("chaos-join", "", "with -cluster: hold the last -cluster address back and join it as a new worker at this coordinator phase (e.g. exchange)")
		chaosStall = flag.String("chaos-stall", "", "with -cluster: slow worker W by a multiplicative factor from coordinator phase P on, as phase:worker[:factor] (e.g. local-sort:2:10, default factor 10); the worker stays alive — pair with -straggle/-hedge to mitigate")
		straggle   = flag.Bool("straggle", false, "with -cluster: enable the progress-rate straggler detector (phase deadline budgets; a stalled worker is demoted to the failover path)")
		hedge      = flag.Bool("hedge", false, "with -cluster: speculatively re-run a straggling shard sort on the fastest finished worker, first result wins (implies -straggle)")
		softBudget = flag.Duration("straggle-soft", 0, "with -straggle: hedge a shard sort that exceeds this budget (0 = derive from the median finisher and the plan cost model)")
		hardBudget = flag.Duration("straggle-hard", 0, "with -straggle: demote a worker whose phase exceeds this budget (0 = derive from the median finisher and the plan cost model)")
		hbEvery    = flag.Duration("heartbeat", 0, "with -cluster: heartbeat ping interval (0 = 500ms default, negative disables the failure detector)")
		cjournal   = flag.String("cjournal", "", "with -cluster: append the coordinator's phase/loss/failover journal to this file")
		cresume    = flag.Bool("cresume", false, "with -cluster: resume a crashed coordinator's job from the -cjournal phase-commit log instead of starting over")

		// Sort-as-a-service job server (-serve).
		serveAddr    = flag.String("serve", "", "run the multi-tenant sort job server on this address (e.g. 127.0.0.1:8080); needs -data-dir")
		dataDir      = flag.String("data-dir", "", "with -serve: durable root for job manifests, inputs, scratch, and outputs")
		serveWorkers = flag.Int("serve-workers", 2, "with -serve: concurrently running sorts")
		budgetMem    = flag.String("budget-mem", "1G", "with -serve: total memory budget for running sorts (bytes, K/M/G suffix ok)")
		budgetDisk   = flag.String("budget-disk", "16G", "with -serve: total disk budget for admitted jobs (bytes, K/M/G suffix ok)")
		tenantJobs   = flag.Int("tenant-quota", 0, "with -serve: max live (queued+running) jobs per tenant (0 = unlimited)")
		tenantDisk   = flag.String("tenant-disk", "", "with -serve: max reserved disk per tenant (bytes, K/M/G suffix ok; empty = unlimited)")
		tenantWts    = flag.String("tenant-weights", "", "with -serve: fair-queueing weights as name=w,name=w (default weight 1)")

		// Observability (tracing, progress, metrics endpoint).
		traceFile = flag.String("trace", "", "write a Chrome trace_event JSON of the sort's phase spans to this file (load at ui.perfetto.dev)")
		jsonOut   = flag.Bool("json", false, "emit the full result as one JSON line on stdout instead of the human report")
		progress  = flag.Bool("progress", false, "render live sort/cluster phase events to stderr")
		obsAddr   = flag.String("obs-addr", "", "serve Prometheus /metrics and pprof on this address (e.g. 127.0.0.1:9100); empty opens no listener")
		sample    = flag.Duration("sample", 0, "sample per-disk utilization, pool occupancy, and runtime gauges at this interval (e.g. 10ms); lands as Chrome counter tracks in -trace and balancesort_util gauges on -obs-addr")
	)
	flag.Parse()

	// obsCfg assembles the observability knobs for the sorting paths; srv
	// may be nil (no -obs-addr), which attaches nothing.
	obsCfg := func(srv *balancesort.ObsServer) balancesort.ObsConfig {
		oc := balancesort.ObsConfig{Trace: *traceFile != "", Server: srv, Sample: *sample}
		if *progress {
			oc.Observer = newProgressRenderer()
		}
		return oc
	}
	// writeTrace lands the recorded timeline in -trace, if asked for.
	writeTrace := func(tr *balancesort.Trace) {
		if *traceFile == "" {
			return
		}
		f, err := os.Create(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteChrome(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		if !*jsonOut {
			fmt.Printf("  trace:                 %d spans -> %s\n", len(tr.Spans()), *traceFile)
		}
		if d := tr.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "warning: span ring overflowed; %d oldest spans dropped from %s (raise ObsConfig.SpanCapacity)\n", d, *traceFile)
		}
	}
	emitJSON := func(v any) {
		if err := json.NewEncoder(os.Stdout).Encode(v); err != nil {
			log.Fatal(err)
		}
	}

	sortEngine, err := balancesort.ParseEngine(*engine)
	if err != nil {
		log.Fatal(err)
	}

	fileCfg := func() balancesort.Config {
		return balancesort.Config{
			Disks: *d, BlockSize: *b, Memory: *m, Processors: *p,
			VirtualDisks: *v, Seed: *seed,
			Engine:  sortEngine,
			NoRadix: *noCRadix,
			IO: balancesort.IOConfig{
				Engine:        *ioEngine,
				QueueDepth:    *queueDepth,
				Prefetch:      *prefetch,
				WriteBehind:   *writeBehind,
				MaxRetries:    *retries,
				FaultRate:     *faultRate,
				TornWriteRate: *tornRate,
				LatencyJitter: *jitter,
				FaultSeed:     *seed,
			},
			Robust: balancesort.RobustConfig{
				NoChecksums: *noChecksum,
				Journal:     *journal || *resume,
				ScrubAfter:  *scrubAfter,
			},
		}
	}

	if *serveAddr != "" {
		if *dataDir == "" {
			log.Fatal("-serve requires -data-dir")
		}
		memB, err := parseBytes(*budgetMem)
		if err != nil {
			log.Fatalf("-budget-mem: %v", err)
		}
		diskB, err := parseBytes(*budgetDisk)
		if err != nil {
			log.Fatalf("-budget-disk: %v", err)
		}
		var tdisk int64
		if *tenantDisk != "" {
			if tdisk, err = parseBytes(*tenantDisk); err != nil {
				log.Fatalf("-tenant-disk: %v", err)
			}
		}
		weights, err := parseWeights(*tenantWts)
		if err != nil {
			log.Fatalf("-tenant-weights: %v", err)
		}
		var clusterAddrs []string
		if *clusterWs != "" {
			clusterAddrs = strings.Split(*clusterWs, ",")
		}
		srv, err := jobs.New(jobs.Options{
			DataDir:       *dataDir,
			Workers:       *serveWorkers,
			Budget:        jobs.Budget{MemoryBytes: memB, DiskBytes: diskB},
			Quota:         jobs.Quota{MaxJobsPerTenant: *tenantJobs, MaxDiskPerTenant: tdisk},
			TenantWeights: weights,
			Sort:          fileCfg(),
			Cluster:       clusterAddrs,
		})
		if err != nil {
			log.Fatal(err)
		}
		addr, err := srv.Start(*serveAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("job server on http://%s (data in %s, %d workers, mem %d disk %d)",
			addr, *dataDir, *serveWorkers, memB, diskB)

		// SIGTERM/SIGINT drains: stop admitting, let running jobs reach a
		// journal commit point, leave everything resumable, exit 0. A
		// -timeout deadline drains the same way, so a scripted run bounds
		// the server's lifetime exactly like a file sort's.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
		var deadline <-chan time.Time
		if *timeout > 0 {
			t := time.NewTimer(*timeout)
			defer t.Stop()
			deadline = t.C
		}
		select {
		case <-sig:
		case <-deadline:
			log.Printf("-timeout %v reached", *timeout)
		}
		log.Printf("draining: no new admissions; running jobs stop at their next journal commit")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			log.Fatalf("drain: %v", err)
		}
		log.Printf("drained; queued and interrupted jobs resume on next start")
		return
	}

	if *join != "" {
		ln, err := net.Listen("tcp", *join)
		if err != nil {
			log.Fatal(err)
		}
		if *addrFile != "" {
			// Write-then-rename so a watcher never reads a partial address.
			tmp := *addrFile + ".tmp"
			if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
				log.Fatal(err)
			}
			if err := os.Rename(tmp, *addrFile); err != nil {
				log.Fatal(err)
			}
		}
		log.Printf("cluster worker listening on %s", ln.Addr())
		opt := balancesort.WorkerOptions{
			ScratchDir:      *scratch,
			Sort:            fileCfg(),
			InMemory:        *inMem,
			DropAfterBlocks: *dropAfter,
			ObsAddr:         *obsAddr,
			Sample:          *sample,
		}
		if *obsAddr != "" {
			log.Printf("worker metrics on http://%s/metrics", *obsAddr)
		}
		if err := balancesort.ServeWorker(context.Background(), ln, opt); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *clusterWs != "" {
		if *inFile == "" || *outFile == "" {
			log.Fatal("-cluster requires -infile and -outfile")
		}
		workers := strings.Split(*clusterWs, ",")
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		srv, err := balancesort.StartObsServer(*obsAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		chaos, err := parseChaosKill(*chaosKill)
		if err != nil {
			log.Fatal(err)
		}
		stall, err := parseChaosStall(*chaosStall)
		if err != nil {
			log.Fatal(err)
		}
		var joinSpec *balancesort.ClusterJoin
		if *chaosJoin != "" {
			if len(workers) < 2 {
				log.Fatal("-chaos-join needs at least two -cluster addresses (the last one is the joiner)")
			}
			joinSpec = &balancesort.ClusterJoin{Phase: *chaosJoin, Addr: workers[len(workers)-1]}
			workers = workers[:len(workers)-1]
		}
		hb := balancesort.ClusterHeartbeat{}
		if *hbEvery > 0 {
			hb.Interval = *hbEvery
		} else if *hbEvery < 0 {
			hb.Disable = true
		}
		ccfg := balancesort.ClusterConfig{
			Workers: workers, Buckets: *cbuckets, BlockRecs: *xblock,
			Heartbeat: hb, Chaos: chaos, Join: joinSpec, Stall: stall,
			Straggler: balancesort.ClusterStraggler{
				Enabled:    *straggle || *hedge,
				Hedge:      *hedge,
				SoftBudget: *softBudget,
				HardBudget: *hardBudget,
			},
			JournalPath: *cjournal,
			Obs:         obsCfg(srv),
		}
		start := time.Now()
		var res *balancesort.ClusterResult
		if *cresume {
			if *cjournal == "" {
				log.Fatal("-cresume requires -cjournal (the journal the crashed run was writing)")
			}
			res, err = balancesort.ResumeClusterSortFile(ctx, *inFile, *outFile, ccfg)
		} else {
			res, err = balancesort.ClusterSortFile(ctx, *inFile, *outFile, ccfg)
		}
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if *jsonOut {
			writeTrace(res.Trace)
			emitJSON(res)
			return
		}
		fmt.Printf("cluster sorted %s -> %s (%d workers, S=%d buckets, %v)\n",
			*inFile, *outFile, res.Workers, res.Buckets, elapsed.Round(time.Millisecond))
		fmt.Printf("  records:               %d\n", res.Records)
		fmt.Printf("  exchange blocks:       %d\n", res.ExchangeBlocks)
		for w := range res.RecvBlocks {
			fmt.Printf("  worker %-2d              recv %d blocks, sorted %d records\n",
				w, res.RecvBlocks[w], res.GatherRecords[w])
		}
		if rec := res.Recovery; rec != nil {
			if rec.Resumed {
				fmt.Printf("  resumed:               from journaled phase %q\n", rec.ResumePhase)
			}
			if rec.Joins > 0 {
				fmt.Printf("  joined:                workers %v admitted mid-job (%d join(s))\n",
					rec.JoinedWorkers, rec.Joins)
			}
			if len(rec.LostWorkers) > 0 || rec.Failovers > 0 {
				fmt.Printf("  failover:              lost workers %v (phases %v), %d failover(s)\n",
					rec.LostWorkers, rec.LostPhases, rec.Failovers)
			}
			fmt.Printf("    re-scattered:        %d chunks / %d records to %d active workers in %v\n",
				rec.RescatteredBlocks, rec.RescatteredRecords, len(rec.ActiveWorkers),
				time.Duration(rec.FailoverWallNanos).Round(time.Millisecond))
		}
		fmt.Println("  verification:          OK (checked while streaming out)")
		writeTrace(res.Trace)
		return
	}

	if *scrub != "" {
		rep, err := balancesort.Scrub(*scrub)
		if err != nil {
			log.Fatal(err)
		}
		if !rep.Checksummed {
			fmt.Printf("%s: no checksums to verify (array created with -nochecksum?)\n", *scrub)
			os.Exit(1)
		}
		if len(rep.Corrupt) > 0 {
			fmt.Printf("%s: %d of %d blocks CORRUPT\n", *scrub, len(rep.Corrupt), rep.BlocksChecked)
			for _, c := range rep.Corrupt {
				fmt.Printf("  disk %d block %d: checksum %08x, data hashes to %08x\n", c.Disk, c.Block, c.Want, c.Got)
			}
			os.Exit(1)
		}
		fmt.Printf("%s: all %d blocks verified\n", *scrub, rep.BlocksChecked)
		return
	}

	if *verify != "" {
		recs, err := balancesort.ReadRecordFile(*verify)
		if err != nil {
			log.Fatal(err)
		}
		for i := 1; i < len(recs); i++ {
			if recs[i].Less(recs[i-1]) {
				fmt.Printf("%s: NOT sorted (inversion at record %d)\n", *verify, i)
				os.Exit(1)
			}
		}
		fmt.Printf("%s: sorted (%d records)\n", *verify, len(recs))
		return
	}

	w, err := parseWorkload(*workload)
	if err != nil {
		log.Fatal(err)
	}

	if *genFile != "" {
		recs := balancesort.NewWorkload(w, *n, *seed)
		if err := balancesort.WriteRecordFile(*genFile, recs); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d %s records (%d bytes) to %s\n",
			*n, w, *n*balancesort.RecordSize, *genFile)
		return
	}

	if *inFile != "" {
		if *outFile == "" {
			log.Fatal("-infile requires -outfile")
		}
		cfg := fileCfg()
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		srv, err := balancesort.StartObsServer(*obsAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		cfg.Obs = obsCfg(srv)
		start := time.Now()
		var res *balancesort.Result
		if *resume {
			res, err = balancesort.ResumeSortFileContext(ctx, *inFile, *outFile, *scratch, cfg)
		} else {
			res, err = balancesort.SortFileContext(ctx, *inFile, *outFile, *scratch, cfg)
		}
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if *jsonOut {
			writeTrace(res.Trace)
			emitJSON(res)
			return
		}
		fmt.Printf("externally sorted %s -> %s (D=%d B=%d M=%d, engine=%s, ioengine=%v, %v)\n",
			*inFile, *outFile, cfg.Disks, cfg.BlockSize, cfg.Memory, res.Engine, *ioEngine, elapsed.Round(time.Millisecond))
		if res.Plan != nil {
			pred := res.Plan.Predicted()
			fmt.Printf("  planner:               chose %s (predicted %.0f I/Os, %.3fs; candidates", res.Plan.Engine, pred.IOs, pred.Seconds)
			for _, c := range res.Plan.Candidates {
				if c.Feasible {
					fmt.Printf(" %s=%.0f", c.Engine, c.IOs)
				}
			}
			fmt.Println(")")
		}
		fmt.Printf("  parallel I/Os:         %d\n", res.IOs)
		fmt.Printf("  Theorem 1 lower bound: %.0f  (ratio %.2fx)\n",
			res.IOLowerBound, float64(res.IOs)/res.IOLowerBound)
		if res.MaxBucketReadRatio > 0 {
			fmt.Printf("  bucket read balance:   %.2fx of optimal\n", res.MaxBucketReadRatio)
		}
		if t := res.MeasuredThroughput; t != nil {
			fmt.Printf("  measured throughput:   %.0f MB/s read, %.0f MB/s write per disk\n",
				t.ReadBytesPerSec/(1<<20), t.WriteBytesPerSec/(1<<20))
		}
		fmt.Println("  verification:          OK (checked while streaming out)")
		if res.Scrub != nil {
			fmt.Printf("  scrub:                 %d blocks checked, %d corrupt\n",
				res.Scrub.BlocksChecked, len(res.Scrub.Corrupt))
		}
		if *stats {
			printIOStats(res.IO)
		}
		writeTrace(res.Trace)
		return
	}

	recs := balancesort.NewWorkload(w, *n, *seed)

	if *hierM != "" {
		runHierarchy(recs, *hierM, *hcount, *alpha, *ic, *seed)
		return
	}

	cfg := balancesort.Config{
		Disks: *d, BlockSize: *b, Memory: *m, Processors: *p,
		VirtualDisks: *v, Seed: *seed,
	}
	switch strings.ToLower(*placement) {
	case "balanced":
		cfg.Placement = balancesort.PlacementBalanced
	case "random":
		cfg.Placement = balancesort.PlacementRandom
	case "roundrobin":
		cfg.Placement = balancesort.PlacementRoundRobin
	default:
		log.Fatalf("unknown placement %q", *placement)
	}
	switch strings.ToLower(*match) {
	case "derandomized":
		cfg.Match = balancesort.MatchDerandomized
	case "randomized":
		cfg.Match = balancesort.MatchRandomized
	case "greedy":
		cfg.Match = balancesort.MatchGreedy
	default:
		log.Fatalf("unknown match strategy %q", *match)
	}

	var a balancesort.Algorithm
	switch strings.ToLower(*algo) {
	case "balancesort":
		a = balancesort.AlgoBalanceSort
	case "guidesort":
		a = balancesort.AlgoGuideSort
	case "stripedmerge":
		a = balancesort.AlgoStripedMerge
	case "forecastmerge":
		a = balancesort.AlgoForecastMerge
	case "columnsort":
		a = balancesort.AlgoColumnSort
	case "greedsort":
		a = balancesort.AlgoGreedSort
	default:
		log.Fatalf("unknown algorithm %q", *algo)
	}

	srv, err := balancesort.StartObsServer(*obsAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	cfg.Obs = obsCfg(srv)

	res, err := balancesort.SortWith(a, recs, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if !balancesort.Verify(recs, res.Records) {
		log.Fatal("FAILED: output is not the sorted permutation of the input")
	}
	if *jsonOut {
		writeTrace(res.Trace)
		emitJSON(res)
		return
	}

	fmt.Printf("%s: sorted %d %s records (D=%d B=%d M=%d P=%d)\n",
		*algo, *n, w, cfg.Disks, cfg.BlockSize, cfg.Memory, cfg.Processors)
	fmt.Printf("  parallel I/Os:         %d\n", res.IOs)
	fmt.Printf("  Theorem 1 lower bound: %.0f  (ratio %.2fx)\n",
		res.IOLowerBound, float64(res.IOs)/res.IOLowerBound)
	fmt.Printf("  PRAM time / work:      %.4g / %.4g\n", res.PRAMTime, res.PRAMWork)
	if a == balancesort.AlgoBalanceSort {
		fmt.Printf("  bucket read balance:   %.2fx of optimal (Theorem 4 ≈ 2)\n", res.MaxBucketReadRatio)
		fmt.Printf("  max bucket size:       %.2fx of even share (guarantee ≈ 2)\n", res.MaxBucketFrac)
		fmt.Printf("  recursion depth:       %d (%d distribution passes)\n", res.Depth, res.Passes)
		fmt.Printf("  memory peak:           %d of %d records\n", res.MemPeak, cfg.Memory)
	}
	fmt.Println("  verification:          OK")
	writeTrace(res.Trace)
}

// progressRenderer is the -progress Observer: it narrates sort and cluster
// phase starts/ends to stderr with a run-relative timestamp. The "disk"
// layer's per-flush spans are deliberately skipped — at one line per device
// flush they would drown the phase narrative.
type progressRenderer struct {
	mu    sync.Mutex
	start time.Time
}

func newProgressRenderer() *progressRenderer {
	return &progressRenderer{start: time.Now()}
}

func (p *progressRenderer) stamp() time.Duration {
	return time.Since(p.start).Round(time.Millisecond)
}

func (p *progressRenderer) SpanStart(layer, name string, id int) {
	if layer == "disk" {
		return
	}
	p.mu.Lock()
	fmt.Fprintf(os.Stderr, "[%9s] > %s/%s #%d\n", p.stamp(), layer, name, id)
	p.mu.Unlock()
}

func (p *progressRenderer) SpanEnd(s balancesort.Span) {
	if s.Layer == "disk" {
		return
	}
	p.mu.Lock()
	fmt.Fprintf(os.Stderr, "[%9s] < %s/%s #%d (%s)\n",
		p.stamp(), s.Layer, s.Name, s.ID, s.Dur.Round(time.Microsecond))
	p.mu.Unlock()
}

func (p *progressRenderer) Count(layer, name string, id int, delta int64) {}

// printIOStats renders the engine's per-disk metrics table for -stats.
func printIOStats(s *balancesort.IOStats) {
	if s == nil {
		fmt.Println("  I/O engine:            off (no engine metrics; run with -ioengine)")
		return
	}
	agg := s.Aggregate()
	fmt.Println("  I/O engine metrics:")
	fmt.Printf("    %-6s %8s %8s %10s %10s %8s %8s %8s %8s %6s\n",
		"disk", "reads", "writes", "rd-bytes", "wr-bytes", "pf-hit", "wb-hit", "coalesce", "retries", "qmax")
	for i, d := range s.PerDisk {
		fmt.Printf("    %-6d %8d %8d %10d %10d %8d %8d %8d %8d %6d\n",
			i, d.Reads, d.Writes, d.BytesRead, d.BytesWritten,
			d.PrefetchHits, d.WriteBufferHits, d.CoalescedBlocks, d.Retries, d.QueueMax)
	}
	fmt.Printf("    %-6s %8d %8d %10d %10d %8d %8d %8d %8d %6d\n",
		"total", agg.Reads, agg.Writes, agg.BytesRead, agg.BytesWritten,
		agg.PrefetchHits, agg.WriteBufferHits, agg.CoalescedBlocks, agg.Retries, agg.QueueMax)
	if agg.Faults > 0 || agg.BreakerTrips > 0 {
		fmt.Printf("    faults injected: %d   breaker trips: %d\n", agg.Faults, agg.BreakerTrips)
	}
}

func runHierarchy(recs []balancesort.Record, model string, h int, alpha float64, ic string, seed uint64) {
	cfg := balancesort.HierConfig{Hierarchies: h, Alpha: alpha, Seed: seed}
	switch strings.ToLower(model) {
	case "hmm-log":
		cfg.Model = balancesort.HMMLog
	case "hmm-power":
		cfg.Model = balancesort.HMMPower
	case "bt-log":
		cfg.Model = balancesort.BTLog
	case "bt-power":
		cfg.Model = balancesort.BTPower
	case "umh":
		cfg.Model = balancesort.UMH
	default:
		log.Fatalf("unknown hierarchy model %q", model)
	}
	switch strings.ToLower(ic) {
	case "pram":
		cfg.Interconnect = balancesort.EREWPRAM
	case "hypercube":
		cfg.Interconnect = balancesort.Hypercube
	case "hypercube-bitonic":
		cfg.Interconnect = balancesort.HypercubeBitonic
	default:
		log.Fatalf("unknown interconnect %q", ic)
	}
	res, err := balancesort.SortHierarchy(recs, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if !balancesort.Verify(recs, res.Records) {
		log.Fatal("FAILED: output is not the sorted permutation of the input")
	}
	fmt.Printf("%s on H=%d (%s): sorted %d records\n", model, h, ic, len(recs))
	fmt.Printf("  parallel time:   %.4g (access %.4g + interconnect %.4g)\n",
		res.Time, res.AccessTime, res.NetTime)
	fmt.Printf("  Θ-bound:         %.4g  (ratio %.2fx)\n", res.Bound, res.Time/res.Bound)
	fmt.Printf("  bucket balance:  %.2fx even share; log skew %.2fx\n", res.MaxBucketFrac, res.MaxLogSkew)
	fmt.Printf("  recursion depth: %d (%d distribution passes)\n", res.Depth, res.Passes)
	fmt.Println("  verification:    OK")
}

// parseChaosStall decodes -chaos-stall's phase:worker[:factor] syntax.
func parseChaosStall(s string) (*balancesort.ClusterStall, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return nil, fmt.Errorf("-chaos-stall %q: want phase:worker or phase:worker:factor", s)
	}
	w, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("-chaos-stall %q: bad worker id: %v", s, err)
	}
	spec := &balancesort.ClusterStall{Phase: parts[0], Worker: w}
	if len(parts) == 3 {
		f, err := strconv.Atoi(parts[2])
		if err != nil || f < 2 {
			return nil, fmt.Errorf("-chaos-stall %q: factor must be an integer >= 2", s)
		}
		spec.Factor = f
	}
	return spec, nil
}

// parseChaosKill decodes -chaos-kill's phase:worker[:hang] syntax, plus the
// coordinator@phase form that kills the coordinator itself (recover with
// -cresume against the same -cjournal).
func parseChaosKill(s string) (*balancesort.ChaosSpec, error) {
	if s == "" {
		return nil, nil
	}
	if phase, ok := strings.CutPrefix(s, "coordinator@"); ok {
		if phase == "" {
			return nil, fmt.Errorf("-chaos-kill %q: want coordinator@phase", s)
		}
		return &balancesort.ChaosSpec{Phase: phase, Coordinator: true}, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return nil, fmt.Errorf("-chaos-kill %q: want phase:worker or phase:worker:hang", s)
	}
	w, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("-chaos-kill %q: bad worker id: %v", s, err)
	}
	spec := &balancesort.ChaosSpec{Phase: parts[0], Worker: w}
	if len(parts) == 3 {
		if parts[2] != "hang" {
			return nil, fmt.Errorf("-chaos-kill %q: third field must be \"hang\"", s)
		}
		spec.Hang = true
	}
	return spec, nil
}

// parseBytes decodes a byte count with an optional K/M/G suffix (powers
// of 1024).
func parseBytes(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad byte count %q", s)
	}
	return n * mult, nil
}

// parseWeights decodes -tenant-weights' name=w,name=w syntax.
func parseWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		name, w, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad entry %q: want name=weight", part)
		}
		n, err := strconv.Atoi(w)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad weight in %q: want a positive integer", part)
		}
		out[name] = n
	}
	return out, nil
}

func parseWorkload(s string) (balancesort.Workload, error) {
	switch strings.ToLower(s) {
	case "uniform":
		return balancesort.Uniform, nil
	case "fewdistinct":
		return balancesort.FewDistinct, nil
	case "nearlysorted":
		return balancesort.NearlySorted, nil
	case "reversed":
		return balancesort.Reversed, nil
	case "bucketskew":
		return balancesort.BucketSkew, nil
	case "zipf":
		return balancesort.Zipf, nil
	default:
		return 0, fmt.Errorf("unknown workload %q", s)
	}
}
