// Command experiments regenerates the measurement tables of EXPERIMENTS.md:
// one table per experiment ID of DESIGN.md (E1-E15), each reproducing one
// of the paper's theorems, lemmas, invariants, or model figures.
//
//	go run ./cmd/experiments            # all experiments, full scale
//	go run ./cmd/experiments -quick     # reduced sizes (seconds, not minutes)
//	go run ./cmd/experiments -e e1,e3   # a subset
//	go run ./cmd/experiments -out EXPERIMENTS.tables.md
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"balancesort/internal/experiments"
	"balancesort/internal/stats"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-size experiments")
	only := flag.String("e", "", "comma-separated experiment ids (e1..e15); empty = all")
	out := flag.String("out", "", "also write the tables to this file")
	flag.Parse()

	scale := experiments.Full
	if *quick {
		scale = experiments.Quick
	}

	type exp struct {
		id  string
		run func(experiments.Scale) *stats.Table
	}
	all := []exp{
		{"e1", experiments.E1}, {"e2", experiments.E2}, {"e3", experiments.E3},
		{"e4", experiments.E4}, {"e5", experiments.E5}, {"e6", experiments.E6},
		{"e7", experiments.E7}, {"e8", experiments.E8}, {"e9", experiments.E9},
		{"e10", experiments.E10}, {"e11", experiments.E11}, {"e12", experiments.E12},
		{"e13", experiments.E13}, {"e14", experiments.E14}, {"e15", experiments.E15}, {"e16", experiments.E16}, {"e17", experiments.E17},
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}

	var w io.Writer = os.Stdout
	var f *os.File
	if *out != "" {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", e.id)
		e.run(scale).Render(w)
	}
}
