package balancesort

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"balancesort/internal/core"
	"balancesort/internal/diskio"
	"balancesort/internal/pdm"
)

// matrixConfig is shared by the crash tests: D=4, B=8, M=1024, S=4 drives
// N=6000 records through a 3-level recursion (one root pass, four level-1
// passes, sixteen base cases — ~21 commit boundaries to kill at).
func matrixConfig() Config {
	return Config{Disks: 4, BlockSize: 8, Memory: 1024, Buckets: 4}
}

func writeMatrixInput(t *testing.T, dir string) (string, []Record) {
	t.Helper()
	inPath := filepath.Join(dir, "in.bin")
	in := NewWorkload(Zipf, 6000, 21)
	if err := WriteRecordFile(inPath, in); err != nil {
		t.Fatal(err)
	}
	return inPath, in
}

func flipFileByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}

// TestSortFileRobustParity is the acceptance pin that the integrity
// machinery is free in model terms: checksums, journaling, and the final
// scrub change neither the parallel I/O count nor one output byte.
func TestSortFileRobustParity(t *testing.T) {
	dir := t.TempDir()
	inPath, _ := writeMatrixInput(t, dir)

	cfg := matrixConfig()
	cfg.Robust = RobustConfig{NoChecksums: true}
	plain, err := SortFile(inPath, filepath.Join(dir, "plain.bin"), "", cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg = matrixConfig()
	cfg.Robust = RobustConfig{Journal: true, ScrubAfter: true}
	robust, err := SortFile(inPath, filepath.Join(dir, "robust.bin"), filepath.Join(dir, "scratch"), cfg)
	if err != nil {
		t.Fatal(err)
	}

	if plain.IOs != robust.IOs {
		t.Fatalf("robustness machinery changed the model cost: %d vs %d parallel I/Os", plain.IOs, robust.IOs)
	}
	a, _ := os.ReadFile(filepath.Join(dir, "plain.bin"))
	b, _ := os.ReadFile(filepath.Join(dir, "robust.bin"))
	if len(a) == 0 || string(a) != string(b) {
		t.Fatal("robustness machinery changed the output bytes")
	}
	if robust.Scrub == nil || !robust.Scrub.Checksummed {
		t.Fatalf("ScrubAfter reported %+v", robust.Scrub)
	}
	if robust.Scrub.BlocksChecked == 0 || len(robust.Scrub.Corrupt) != 0 {
		t.Fatalf("post-sort scrub: %+v", robust.Scrub)
	}
	if plain.Scrub != nil {
		t.Fatal("Scrub set without ScrubAfter")
	}
}

// TestCrashMatrixResume kills the sort immediately before every commit
// boundary of a 3-level recursion, resumes each interrupted run, and
// checks the resumed output is byte-identical to the uninterrupted one
// while costing at most one redone pass of extra committed I/Os.
func TestCrashMatrixResume(t *testing.T) {
	dir := t.TempDir()
	inPath, _ := writeMatrixInput(t, dir)

	// Uninterrupted journaled baseline: output bytes, total I/Os, and the
	// per-commit I/O ledger from its journal.
	basePath := filepath.Join(dir, "base.bin")
	cfg := matrixConfig()
	cfg.Robust = RobustConfig{Journal: true}
	base, err := SortFile(inPath, basePath, filepath.Join(dir, "base-scratch"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseBytes, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}

	entries, err := pdm.LoadJournal(pdm.JournalPath(filepath.Join(dir, "base-scratch")))
	if err != nil {
		t.Fatal(err)
	}
	// Entry 1 is the loaded-input commit; the rest are sorter passes.
	commits := len(entries) - 1
	if commits < 10 {
		t.Fatalf("only %d commit boundaries; the matrix needs a multi-level sort", commits)
	}
	var maxStep, prevIOs int64
	for _, e := range entries {
		var st sortJournalState
		if err := json.Unmarshal(e.Payload, &st); err != nil {
			t.Fatal(err)
		}
		if d := st.IOs - prevIOs; d > maxStep {
			maxStep = d
		}
		prevIOs = st.IOs
	}
	if prevIOs != base.IOs {
		t.Fatalf("journal final I/O count %d disagrees with the result's %d", prevIOs, base.IOs)
	}

	step := 1
	if testing.Short() {
		step = 5
	}
	for k := 1; k <= commits; k += step {
		scratch := filepath.Join(dir, "scratch", "k")
		outPath := filepath.Join(dir, "out.bin")
		os.RemoveAll(scratch)
		os.Remove(outPath)

		cfg := matrixConfig()
		cfg.Robust = RobustConfig{Journal: true, crashAfterCommits: k}
		_, err := SortFile(inPath, outPath, scratch, cfg)
		if !errors.Is(err, core.ErrInjectedCrash) {
			t.Fatalf("kill %d: got %v, want the injected crash", k, err)
		}
		if _, err := os.Stat(outPath); !os.IsNotExist(err) {
			t.Fatalf("kill %d: crashed sort left an output file", k)
		}

		res, err := ResumeSortFile(inPath, outPath, scratch, matrixConfig())
		if err != nil {
			t.Fatalf("resume after kill %d: %v", k, err)
		}
		got, err := os.ReadFile(outPath)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(baseBytes) {
			t.Fatalf("resume after kill %d: output differs from the uninterrupted run", k)
		}
		if res.IOs > base.IOs+maxStep {
			t.Fatalf("resume after kill %d: %d committed I/Os, uninterrupted %d + one pass %d",
				k, res.IOs, base.IOs, maxStep)
		}
	}
}

// TestResumeRefusesCorruptScratch flips one byte of a committed scratch
// block after a crash; the resume must surface the typed corruption error
// and must not write an output file.
func TestResumeRefusesCorruptScratch(t *testing.T) {
	dir := t.TempDir()
	inPath, _ := writeMatrixInput(t, dir)
	scratch := filepath.Join(dir, "scratch")
	outPath := filepath.Join(dir, "out.bin")

	cfg := matrixConfig()
	cfg.Robust = RobustConfig{Journal: true, crashAfterCommits: 1}
	if _, err := SortFile(inPath, outPath, scratch, cfg); !errors.Is(err, core.ErrInjectedCrash) {
		t.Fatal("crash injection did not fire")
	}

	// Block 0 of disk 0 holds the start of the striped input region the
	// journal's work list points at; the resume must re-read it.
	flipFileByte(t, filepath.Join(scratch, "disk000.bin"), 0)

	_, err := ResumeSortFile(inPath, outPath, scratch, matrixConfig())
	var corrupt *pdm.CorruptBlockError
	if !errors.As(err, &corrupt) {
		t.Fatalf("resume over corrupt scratch: got %v, want *pdm.CorruptBlockError", err)
	}
	if corrupt.Disk != 0 || corrupt.Block != 0 {
		t.Fatalf("corruption misattributed: %+v", corrupt)
	}
	if _, err := os.Stat(outPath); !os.IsNotExist(err) {
		t.Fatal("corrupt resume emitted an output file")
	}
}

// TestSortFileCancelAndResume cancels a journaled sort before it starts
// its passes, checks the typed error and the absent output, then resumes
// to completion from the same scratch directory.
func TestSortFileCancelAndResume(t *testing.T) {
	dir := t.TempDir()
	inPath, in := writeMatrixInput(t, dir)
	scratch := filepath.Join(dir, "scratch")
	outPath := filepath.Join(dir, "out.bin")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := matrixConfig()
	cfg.Robust = RobustConfig{Journal: true}
	_, err := SortFileContext(ctx, inPath, outPath, scratch, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled sort: got %v, want context.Canceled", err)
	}
	if _, err := os.Stat(outPath); !os.IsNotExist(err) {
		t.Fatal("canceled sort left an output file")
	}

	if _, err := ResumeSortFile(inPath, outPath, scratch, matrixConfig()); err != nil {
		t.Fatalf("resume after cancellation: %v", err)
	}
	out, err := ReadRecordFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(in, out) {
		t.Fatal("resumed sort output is not the sorted permutation of the input")
	}
}

// TestResumeFreshFallback checks ResumeSortFile on a scratch directory
// with no committed journal simply sorts from the input file.
func TestResumeFreshFallback(t *testing.T) {
	dir := t.TempDir()
	inPath, in := writeMatrixInput(t, dir)
	outPath := filepath.Join(dir, "out.bin")

	if _, err := ResumeSortFile(inPath, outPath, filepath.Join(dir, "scratch"), matrixConfig()); err != nil {
		t.Fatalf("resume with no journal: %v", err)
	}
	out, err := ReadRecordFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(in, out) {
		t.Fatal("fallback sort output is not the sorted permutation of the input")
	}
}

// TestSortFileEngineFailure drives the I/O engine with a certain fault
// rate: the sort must return an error rooted in the injected fault — not
// panic — and must not leave a partial output file.
func TestSortFileEngineFailure(t *testing.T) {
	dir := t.TempDir()
	inPath, _ := writeMatrixInput(t, dir)
	outPath := filepath.Join(dir, "out.bin")

	cfg := matrixConfig()
	cfg.IO = IOConfig{Engine: true, FaultRate: 1, FaultSeed: 7}
	_, err := SortFile(inPath, outPath, "", cfg)
	if err == nil {
		t.Fatal("sort on an always-failing engine succeeded")
	}
	if !errors.Is(err, diskio.ErrInjected) {
		t.Fatalf("got %v, want an error rooted in the injected fault", err)
	}
	if _, err := os.Stat(outPath); !os.IsNotExist(err) {
		t.Fatal("failed sort left an output file")
	}
}

// TestScrubStandalone checks the library-level Scrub over a finished
// scratch directory, clean and after deliberate damage.
func TestScrubStandalone(t *testing.T) {
	dir := t.TempDir()
	inPath, _ := writeMatrixInput(t, dir)
	scratch := filepath.Join(dir, "scratch")

	if _, err := SortFile(inPath, filepath.Join(dir, "out.bin"), scratch, matrixConfig()); err != nil {
		t.Fatal(err)
	}
	rep, err := Scrub(scratch)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Checksummed || rep.BlocksChecked == 0 || len(rep.Corrupt) != 0 {
		t.Fatalf("clean scrub: %+v", rep)
	}

	flipFileByte(t, filepath.Join(scratch, "disk000.bin"), 3)
	rep, err = Scrub(scratch)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Corrupt) != 1 || rep.Corrupt[0].Disk != 0 || rep.Corrupt[0].Block != 0 {
		t.Fatalf("scrub after damage: %+v", rep.Corrupt)
	}
}
