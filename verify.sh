#!/bin/sh
# verify.sh — the per-PR gate. Formatting, static checks, the full test
# suite, and a race-checked pass over the concurrency-bearing packages
# (the diskio engine and the pdm disk arrays mounted on it).
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== staticcheck =="
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
else
    echo "staticcheck not installed; skipped (CI runs the pinned version)"
fi

echo "== go build =="
go build ./...

echo "== go test (tier 1) =="
go test ./...

echo "== go test -race (concurrency layer) =="
go test -race ./internal/diskio/... ./internal/pdm/... ./internal/cluster/... ./internal/jobs/...

echo "== go test -race (crash recovery + engine parity) =="
go test -race -run 'Robust|Crash|Resume|Cancel|Scrub|EngineParity|EngineAuto' .
go test -race -count=1 -run 'KillRestart|DrainRestart|RecoveryQuarantine' ./internal/jobs/
go test -race -count=1 -run 'Crash|Cancel' ./internal/guidesort/

echo "== go test -race (cluster churn matrix: worker kills, coordinator kill+resume, and joins at every phase) =="
go test -race -count=1 -run 'Chaos|Degraded|Flap|FailoverJournal|Join|Resume|Dedup' ./internal/cluster/
go test -race -count=1 -run 'ServerCluster' ./internal/jobs/

echo "== go test -race (straggler matrix: stalls at every phase, hedged re-execution, and demotion fallback) =="
go test -race -count=1 -run 'Stall|Straggler|Hedge' ./internal/cluster/

echo "verify.sh: all checks passed"
