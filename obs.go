package balancesort

import (
	"io"
	"time"

	"balancesort/internal/obs"
)

// Observability facade: phase tracing, live progress, and the /metrics +
// pprof endpoint for every sort entry point. All of it is off by default —
// a zero ObsConfig creates no tracer, no goroutine, and no listener — and
// turning it on never changes what the sort computes: model parallel-I/O
// counts and output bytes are identical either way (pinned by the parity
// tests).

// Observer receives live phase events as they happen — the hook behind the
// CLI's -progress renderer. Callbacks run on the sorting goroutines and must
// be fast.
type Observer = obs.Observer

// Span is one completed, recorded phase: its layer ("sort", "disk",
// "cluster"), name, originating node (0 = this process or the cluster
// coordinator, w+1 = cluster worker w), start offset, and duration.
type Span = obs.Span

// SpanAttr is one integer-valued attribute on a Span (records moved, pass
// depth, block counts, ...).
type SpanAttr = obs.Attr

// ObsConfig turns on phase tracing and live progress for a sort.
type ObsConfig struct {
	// Trace records phase spans across all layers the sort touches: the
	// distribute/repair steps of the core sorter, the disk engine's flush
	// and retry activity, and — in cluster mode — every coordinator and
	// worker phase, merged onto one timeline. The recorded Trace is
	// returned on the Result.
	Trace bool
	// SpanCapacity bounds the span ring buffer (0 = 16384 spans). When the
	// ring overflows, the oldest spans are dropped; histogram totals still
	// count every span.
	SpanCapacity int
	// Observer, when non-nil, receives phase events live. Setting it
	// enables the tracing machinery even when Trace is false.
	Observer Observer
	// Sample, when positive, runs a background utilization sampler at this
	// interval for the duration of the sort: per-disk queue depth, busy
	// fraction, write-behind backlog, buffer-pool occupancy, goroutines,
	// and heap land as Chrome counter tracks in the trace and as
	// balancesort_util gauges on Server's /metrics. Setting it enables the
	// tracing machinery even when Trace is false. Sampling never changes
	// what the sort computes (pinned by the parity tests).
	Sample time.Duration
	// Server, when non-nil, exposes this sort's phase histograms and event
	// counters on the server's /metrics endpoint for the duration of the
	// sort (see StartObsServer).
	Server *ObsServer
	// ServerKey overrides the registry key the sort's tracer is published
	// under on Server ("sort" for disk sorts, "coordinator" for cluster
	// jobs). A server that runs many sorts at once — the job server — gives
	// each one a distinct key so concurrent sorts don't evict each other
	// from /metrics.
	ServerKey string
}

// tracer builds the tracer this configuration calls for — nil (free,
// structural no-op) when tracing is fully off.
func (c ObsConfig) tracer() *obs.Tracer {
	if !c.Trace && c.Observer == nil && c.Sample <= 0 {
		return nil
	}
	return obs.New(c.SpanCapacity, c.Observer)
}

// attach registers tr's histograms and counters on the configured metrics
// server, if both exist. ServerKey, when set, wins over the entry point's
// default key.
func (c ObsConfig) attach(key string, tr *obs.Tracer) {
	if c.ServerKey != "" {
		key = c.ServerKey
	}
	if c.Server != nil && tr != nil {
		c.Server.srv.SetTracer(key, tr)
	}
}

// Trace is the recorded phase timeline of one completed sort.
type Trace struct {
	tr *obs.Tracer
}

func traceFrom(tr *obs.Tracer) *Trace {
	if tr == nil {
		return nil
	}
	return &Trace{tr: tr}
}

// Spans returns the recorded spans, oldest first. In cluster mode the list
// holds coordinator and worker spans rebased onto one timeline; Span.Node
// tells them apart.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.tr.Spans()
}

// Dropped reports how many spans were lost to ring-buffer overflow.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.tr.Dropped()
}

// WriteChrome writes the timeline in Chrome trace_event JSON — load the
// file at ui.perfetto.dev or chrome://tracing. A nil Trace writes a valid
// empty trace. When the span ring overflowed, the trace carries a
// "spans_dropped" metadata event and an otherData footer announcing the
// loss.
func (t *Trace) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "{\"traceEvents\":[]}\n")
		return err
	}
	return obs.WriteChromeTraceDropped(w, t.tr.Spans(), t.tr.Dropped())
}

// PhaseTotals sums the recorded span durations per "layer/name" phase —
// the quick wall-clock breakdown without loading the full trace.
func (t *Trace) PhaseTotals() map[string]time.Duration {
	if t == nil {
		return nil
	}
	out := make(map[string]time.Duration)
	for _, h := range t.tr.Hists() {
		out[h.Layer+"/"+h.Name] = h.Sum
	}
	return out
}

// ObsServer serves Prometheus text /metrics and net/http/pprof on its own
// listener and mux (http.DefaultServeMux is never touched).
type ObsServer struct {
	srv *obs.Server
}

// WrapObsServer adopts an already-built internal metrics server as the
// facade type ObsConfig.Server accepts. It exists for in-module composers
// (the job server mounts /metrics on its own API mux and still needs each
// sort's tracer registered there); external callers use StartObsServer.
func WrapObsServer(s *obs.Server) *ObsServer {
	if s == nil {
		return nil
	}
	return &ObsServer{srv: s}
}

// StartObsServer binds addr and serves /metrics and /debug/pprof/*. An
// empty addr returns (nil, nil) and opens no listener — the nil *ObsServer
// is safe to use everywhere an ObsServer is accepted.
func StartObsServer(addr string) (*ObsServer, error) {
	if addr == "" {
		return nil, nil
	}
	s := obs.NewServer()
	if err := s.Start(addr); err != nil {
		return nil, err
	}
	return &ObsServer{srv: s}, nil
}

// Addr returns the bound listen address, or "" on a nil server.
func (s *ObsServer) Addr() string {
	if s == nil {
		return ""
	}
	return s.srv.Addr()
}

// Close stops the server and releases its listener. Safe on nil.
func (s *ObsServer) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
