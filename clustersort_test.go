package balancesort

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"balancesort/internal/cluster"
	"balancesort/internal/diskio"
	"balancesort/internal/pdm"
)

// TestMain doubles as the cluster-worker child process: the OS-process test
// re-executes the test binary with BALANCESORT_CLUSTER_WORKER=1, which
// serves a worker on loopback instead of running the test suite.
func TestMain(m *testing.M) {
	if os.Getenv("BALANCESORT_CLUSTER_WORKER") == "1" {
		clusterWorkerChild()
		return
	}
	os.Exit(m.Run())
}

// clusterWorkerChild is the body of a spawned worker process. It listens on
// an ephemeral loopback port, publishes the address via write-then-rename
// (so the parent never reads a partial file), and serves jobs with the real
// file-backed SortFile path until killed.
func clusterWorkerChild() {
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "cluster worker child:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	addrFile := os.Getenv("BALANCESORT_ADDRFILE")
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		fail(err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		fail(err)
	}
	drop, _ := strconv.Atoi(os.Getenv("BALANCESORT_DROPAFTER"))
	err = ServeWorker(context.Background(), ln, WorkerOptions{
		ScratchDir:      os.Getenv("BALANCESORT_SCRATCH"),
		Sort:            clusterShardConfig(),
		DropAfterBlocks: drop,
		DialBackoff:     5 * time.Millisecond,
	})
	if err != nil {
		fail(err)
	}
}

// clusterShardConfig is the worker-local SortFile geometry used by the
// cluster tests: small enough to force real multi-pass file-backed sorting
// of each shard, big enough to finish promptly.
func clusterShardConfig() Config {
	return Config{Disks: 4, BlockSize: 64, Memory: 1 << 16}
}

func writeClusterInput(t *testing.T, dir string, w Workload, n int, seed uint64) (string, string) {
	t.Helper()
	inPath := filepath.Join(dir, "in.dat")
	recs := NewWorkload(w, n, seed)
	if err := WriteRecordFile(inPath, recs); err != nil {
		t.Fatal(err)
	}
	// The single-process reference output the cluster must match
	// byte-for-byte.
	refPath := filepath.Join(dir, "ref.dat")
	refScratch := filepath.Join(dir, "refscratch")
	if err := os.MkdirAll(refScratch, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := SortFile(inPath, refPath, refScratch, clusterShardConfig()); err != nil {
		t.Fatalf("reference SortFile: %v", err)
	}
	return inPath, refPath
}

func requireSameBytes(t *testing.T, refPath, outPath string) {
	t.Helper()
	ref, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, out) {
		t.Fatalf("cluster output differs from single-process SortFile output (%d vs %d bytes)", len(out), len(ref))
	}
}

// TestClusterMatchesSortFile: an in-process 4-worker cluster, each shard
// sorted through the real file-backed SortFile path, must produce output
// byte-identical to a single-process SortFile of the same input — for a
// uniform key space and for a duplicate-heavy one, where correctness
// leans entirely on the deterministic (Key, Loc) tiebreak surviving the
// scatter/exchange/gather reshuffles.
func TestClusterMatchesSortFile(t *testing.T) {
	for _, tc := range []struct {
		name string
		w    Workload
	}{
		{"uniform", Uniform},
		{"few-distinct", FewDistinct},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			const W = 4
			addrs := make([]string, W)
			for i := 0; i < W; i++ {
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				addrs[i] = ln.Addr().String()
				scratch := filepath.Join(dir, fmt.Sprintf("w%d", i))
				if err := os.MkdirAll(scratch, 0o755); err != nil {
					t.Fatal(err)
				}
				ctx, cancel := context.WithCancel(context.Background())
				done := make(chan struct{})
				go func() {
					defer close(done)
					_ = ServeWorker(ctx, ln, WorkerOptions{ScratchDir: scratch, Sort: clusterShardConfig()})
				}()
				t.Cleanup(func() {
					cancel()
					<-done
				})
			}

			inPath, refPath := writeClusterInput(t, dir, tc.w, 100_000, 42)
			outPath := filepath.Join(dir, "out.dat")
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			res, err := ClusterSortFile(ctx, inPath, outPath, ClusterConfig{Workers: addrs})
			if err != nil {
				t.Fatal(err)
			}
			if res.Records != 100_000 || res.Workers != W {
				t.Fatalf("result %+v", res)
			}
			requireSameBytes(t, refPath, outPath)
		})
	}
}

// TestClusterOSProcesses is the acceptance scenario: four separate worker
// OS processes over loopback TCP sort 2^20 records, with one worker
// injecting a connection drop mid-exchange, and the output must be
// byte-identical to a single-process SortFile.
func TestClusterOSProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("OS-process cluster test skipped in -short mode")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	const W = 4
	addrs := make([]string, W)
	for i := 0; i < W; i++ {
		addrFile := filepath.Join(dir, fmt.Sprintf("addr%d", i))
		scratch := filepath.Join(dir, fmt.Sprintf("scratch%d", i))
		if err := os.MkdirAll(scratch, 0o755); err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command(exe, "-test.run=^$")
		cmd.Env = append(os.Environ(),
			"BALANCESORT_CLUSTER_WORKER=1",
			"BALANCESORT_ADDRFILE="+addrFile,
			"BALANCESORT_SCRATCH="+scratch,
		)
		if i == 1 {
			// One worker severs a peer connection after its 5th sent
			// block; the job must recover via redial + retransmit.
			cmd.Env = append(cmd.Env, "BALANCESORT_DROPAFTER=5")
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})

		deadline := time.Now().Add(15 * time.Second)
		for {
			if data, rerr := os.ReadFile(addrFile); rerr == nil {
				addrs[i] = string(data)
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker %d never published its address", i)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	inPath, refPath := writeClusterInput(t, dir, Uniform, 1<<20, 7)
	outPath := filepath.Join(dir, "out.dat")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	res, err := ClusterSortFile(ctx, inPath, outPath, ClusterConfig{Workers: addrs, BlockRecs: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 1<<20 {
		t.Fatalf("sorted %d records", res.Records)
	}
	requireSameBytes(t, refPath, outPath)
}

// TestClusterChaosMatchesSortFile: the exported chaos harness kills one of
// four workers mid-exchange; the job must fail over, finish, report the
// recovery, and still match single-process SortFile byte-for-byte.
func TestClusterChaosMatchesSortFile(t *testing.T) {
	dir := t.TempDir()
	const W = 4
	addrs := make([]string, W)
	for i := 0; i < W; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		scratch := filepath.Join(dir, fmt.Sprintf("w%d", i))
		if err := os.MkdirAll(scratch, 0o755); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = ServeWorker(ctx, ln, WorkerOptions{
				ScratchDir:  scratch,
				Sort:        clusterShardConfig(),
				DialBackoff: time.Millisecond,
			})
		}()
		t.Cleanup(func() {
			cancel()
			<-done
		})
	}

	inPath, refPath := writeClusterInput(t, dir, Uniform, 100_000, 99)
	outPath := filepath.Join(dir, "out.dat")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := ClusterSortFile(ctx, inPath, outPath, ClusterConfig{
		Workers:     addrs,
		DialBackoff: time.Millisecond,
		Heartbeat:   ClusterHeartbeat{Interval: 25 * time.Millisecond},
		Chaos:       &ChaosSpec{Phase: "exchange", Worker: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Recovery
	if rec == nil || rec.Failovers < 1 {
		t.Fatalf("chaos kill left no recovery record: %+v", rec)
	}
	found := false
	for _, w := range rec.LostWorkers {
		if w == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("victim 2 missing from LostWorkers %v", rec.LostWorkers)
	}
	requireSameBytes(t, refPath, outPath)
}

// TestClusterSortFileWorkerLost: the exported API must fail fast with the
// aliased *WorkerLostError when a worker address answers nothing.
func TestClusterSortFileWorkerLost(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	dir := t.TempDir()
	inPath := filepath.Join(dir, "in.dat")
	if err := WriteRecordFile(inPath, NewWorkload(Uniform, 100, 1)); err != nil {
		t.Fatal(err)
	}
	_, err = ClusterSortFile(context.Background(), inPath, filepath.Join(dir, "out.dat"), ClusterConfig{
		Workers:      []string{dead},
		DialAttempts: 2,
		DialBackoff:  time.Millisecond,
	})
	var lost *WorkerLostError
	if !errors.As(err, &lost) {
		t.Fatalf("got %v, want *WorkerLostError", err)
	}
}

// TestTypedErrorRoundTrips pins the errors.Is/As contract of every typed
// failure in the system: each must survive wrapping, expose its fields via
// errors.As, and (where it wraps a cause) reach it via errors.Is.
func TestTypedErrorRoundTrips(t *testing.T) {
	t.Run("pdm.CorruptBlockError", func(t *testing.T) {
		orig := &pdm.CorruptBlockError{Disk: 2, Block: 9, Want: 0xAB, Got: 0xCD}
		err := fmt.Errorf("scrub: %w", fmt.Errorf("disk sweep: %w", orig))
		var got *pdm.CorruptBlockError
		if !errors.As(err, &got) || got.Disk != 2 || got.Block != 9 {
			t.Fatalf("errors.As through two wraps: %v -> %+v", err, got)
		}
		if !errors.Is(err, orig) {
			t.Fatal("errors.Is lost the original")
		}
	})
	t.Run("pdm.TruncatedDiskError", func(t *testing.T) {
		orig := &pdm.TruncatedDiskError{Disk: 1, Path: "d1.blk", WantBlocks: 8, GotBytes: 100, BlockBytes: 512}
		err := fmt.Errorf("open: %w", orig)
		var got *pdm.TruncatedDiskError
		if !errors.As(err, &got) || got.Path != "d1.blk" || got.WantBlocks != 8 {
			t.Fatalf("errors.As: %+v", got)
		}
	})
	t.Run("diskio.DiskFailedError", func(t *testing.T) {
		cause := errors.New("device yanked")
		orig := &diskio.DiskFailedError{Disk: 3, Trips: 12, Err: cause}
		err := fmt.Errorf("engine: %w", orig)
		var got *diskio.DiskFailedError
		if !errors.As(err, &got) || got.Disk != 3 || got.Trips != 12 {
			t.Fatalf("errors.As: %+v", got)
		}
		if !errors.Is(err, cause) {
			t.Fatal("errors.Is lost the device error through Unwrap")
		}
	})
	t.Run("cluster.WorkerLostError", func(t *testing.T) {
		cause := errors.New("connection refused")
		orig := &cluster.WorkerLostError{Worker: 1, Addr: "127.0.0.1:9", Err: cause}
		err := fmt.Errorf("cluster sort: %w", orig)
		// The root alias and the internal type are one type: both As
		// targets must hit.
		var viaAlias *WorkerLostError
		var viaPkg *cluster.WorkerLostError
		if !errors.As(err, &viaAlias) || !errors.As(err, &viaPkg) {
			t.Fatalf("errors.As failed: %v", err)
		}
		if viaAlias.Worker != 1 || viaAlias.Addr != "127.0.0.1:9" {
			t.Fatalf("recovered %+v", viaAlias)
		}
		if !errors.Is(err, cause) {
			t.Fatal("errors.Is lost the transport error through Unwrap")
		}
	})
	t.Run("cluster.StragglerError", func(t *testing.T) {
		cause := errors.New("no progress for 3 ticks")
		orig := &cluster.StragglerError{
			Worker: 2, Addr: "127.0.0.1:9", Phase: "local-sort",
			Budget: 800 * time.Millisecond, Err: cause,
		}
		err := fmt.Errorf("cluster sort: %w", orig)
		var viaAlias *StragglerError
		var viaPkg *cluster.StragglerError
		if !errors.As(err, &viaAlias) || !errors.As(err, &viaPkg) {
			t.Fatalf("errors.As failed: %v", err)
		}
		if viaAlias.Worker != 2 || viaAlias.Phase != "local-sort" || viaAlias.Budget != 800*time.Millisecond {
			t.Fatalf("recovered %+v", viaAlias)
		}
		if !errors.Is(err, cause) {
			t.Fatal("errors.Is lost the detector's observation through Unwrap")
		}
		// A straggler is live, not lost: the types must stay distinct.
		var lost *WorkerLostError
		if errors.As(err, &lost) {
			t.Fatal("StragglerError also matched *WorkerLostError")
		}
	})
	t.Run("cluster.ClusterDegradedError", func(t *testing.T) {
		inner := &cluster.WorkerLostError{Worker: 3, Addr: "127.0.0.1:9", Err: errors.New("EOF")}
		orig := &cluster.ClusterDegradedError{Lost: []int{1, 3}, Workers: 4, Quorum: 3, Err: inner}
		err := fmt.Errorf("cluster sort: %w", orig)
		var viaAlias *ClusterDegradedError
		var viaPkg *cluster.ClusterDegradedError
		if !errors.As(err, &viaAlias) || !errors.As(err, &viaPkg) {
			t.Fatalf("errors.As failed: %v", err)
		}
		if len(viaAlias.Lost) != 2 || viaAlias.Quorum != 3 {
			t.Fatalf("recovered %+v", viaAlias)
		}
		var lost *WorkerLostError
		if !errors.As(err, &lost) || lost.Worker != 3 {
			t.Fatal("degraded error does not expose the quorum-breaking WorkerLostError")
		}
	})
}
