package balancesort_test

import (
	"testing"

	"balancesort"
	"balancesort/internal/balance"
	"balancesort/internal/record"
)

// FuzzSort drives the whole disk sorter with fuzzer-chosen keys and model
// parameters; any unsorted output, lost record, invariant violation, or
// memory-budget overflow surfaces as a panic or a reported failure.
func FuzzSort(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(2), uint8(1))
	f.Add([]byte{}, uint8(0), uint8(0))
	f.Add([]byte{255, 0, 255, 0, 9, 9, 9, 9, 1}, uint8(3), uint8(2))
	f.Add(make([]byte, 4096), uint8(3), uint8(0))         // one giant duplicate run
	f.Add([]byte{7}, uint8(3), uint8(2))                  // single record, widest geometry
	f.Add([]byte{31, 30, 29, 28, 27, 26, 25, 24, 23, 22}, // strictly descending keys
		uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, dRaw, bRaw uint8) {
		if len(raw) > 1<<14 {
			raw = raw[:1<<14]
		}
		d := 1 << (dRaw % 4)  // 1..8 disks
		bs := 4 << (bRaw % 3) // 4..16 records per block
		m := 16 * d * bs      // comfortably >= 4DB
		in := make([]balancesort.Record, 0, len(raw))
		for i, by := range raw {
			// Narrow key space provokes duplicates and skewed buckets.
			in = append(in, balancesort.Record{Key: uint64(by % 32), Loc: uint64(i)})
		}
		res, err := balancesort.Sort(in, balancesort.Config{Disks: d, BlockSize: bs, Memory: m})
		if err != nil {
			t.Fatal(err)
		}
		if !balancesort.Verify(in, res.Records) {
			t.Fatalf("bad output for d=%d b=%d n=%d", d, bs, len(in))
		}
	})
}

// FuzzBalancer feeds arbitrary bucket-label streams through the balance
// core and checks both invariants after every track.
func FuzzBalancer(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0, 0, 0}, uint8(4), uint8(4))
	f.Add([]byte{0}, uint8(1), uint8(1))
	f.Add(make([]byte, 512), uint8(15), uint8(15)) // all one bucket, max geometry
	f.Add([]byte{5, 5, 5, 5, 1, 1, 1, 1, 5, 5, 5, 5}, uint8(2), uint8(8))
	f.Fuzz(func(t *testing.T, labels []byte, sRaw, hRaw uint8) {
		if len(labels) > 4096 {
			labels = labels[:4096]
		}
		s := 1 + int(sRaw%16)
		h := 1 + int(hRaw%16)
		bl := balance.New(balance.Config{S: s, H: h})
		var pending []int
		pos := 0
		for pos < len(labels) || len(pending) > 0 {
			track := pending
			pending = nil
			for len(track) < h && pos < len(labels) {
				track = append(track, int(labels[pos])%s)
				pos++
			}
			if len(track) == 0 {
				break
			}
			writes, carry := bl.PlaceTrack(track)
			if len(writes)+len(carry) != len(track) {
				t.Fatalf("placement lost blocks: %d+%d != %d", len(writes), len(carry), len(track))
			}
			for _, c := range carry {
				pending = append(pending, track[c])
			}
			if err := bl.CheckInvariant1(); err != nil {
				t.Fatal(err)
			}
			if err := bl.CheckInvariant2(); err != nil {
				t.Fatal(err)
			}
			if pos >= len(labels) && len(carry) == len(track) {
				// Tail blocks that never place would loop forever only if
				// the balancer stopped making progress; the rotation
				// guarantees placement within H further tracks, so give it
				// that long before declaring failure.
				deadline := 10 * h
				for len(pending) > 0 && deadline > 0 {
					w2, c2 := bl.PlaceTrack(pending)
					next := make([]int, 0, len(c2))
					for _, c := range c2 {
						next = append(next, pending[c])
					}
					pending = next
					deadline--
					_ = w2
				}
				if len(pending) > 0 {
					t.Fatal("balancer failed to drain tail blocks")
				}
			}
		}
	})
}

// FuzzRecordCodec round-trips the wire format.
func FuzzRecordCodec(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(^uint64(0), uint64(42))
	f.Fuzz(func(t *testing.T, k, l uint64) {
		r := record.Record{Key: k, Loc: l}
		buf := record.Encode(nil, r)
		if got := record.Decode(buf); got != r {
			t.Fatalf("codec round trip: %v != %v", got, r)
		}
	})
}
