package balancesort

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"balancesort/internal/core"
	"balancesort/internal/pdm"
)

func sortFileWithEngine(t *testing.T, dir, name, inPath string, eng Engine) ([]byte, *Result) {
	t.Helper()
	outPath := filepath.Join(dir, name+".out")
	cfg := matrixConfig()
	cfg.Engine = eng
	res, err := SortFile(inPath, outPath, "", cfg)
	if err != nil {
		t.Fatalf("engine %s: %v", eng, err)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != string(eng) {
		t.Fatalf("result engine %q, ran %q", res.Engine, eng)
	}
	return got, res
}

// TestEngineParityMatrix pins that every engine produces byte-identical
// output over skewed, duplicate-heavy, and reverse-sorted inputs — the
// (Key, Loc) effective keys make the sorted permutation unique, so any
// divergence is a bug.
func TestEngineParityMatrix(t *testing.T) {
	dir := t.TempDir()
	for _, w := range []Workload{Zipf, FewDistinct, Reversed} {
		in := NewWorkload(w, 6000, 21)
		inPath := filepath.Join(dir, w.String()+".bin")
		if err := WriteRecordFile(inPath, in); err != nil {
			t.Fatal(err)
		}
		want, _ := sortFileWithEngine(t, dir, w.String()+"-balance", inPath, EngineBalanceSort)
		for _, eng := range []Engine{EngineGuideSort, EngineStripedMerge} {
			got, _ := sortFileWithEngine(t, dir, w.String()+"-"+string(eng), inPath, eng)
			if string(got) != string(want) {
				t.Fatalf("%s/%s: output differs from balancesort", w, eng)
			}
		}
	}
}

// TestEngineAutoParity pins the auto contract: the planner's pick sorts to
// the same bytes as balancesort, records its decision, and does not
// perform more model I/Os than balancesort at this geometry.
func TestEngineAutoParity(t *testing.T) {
	dir := t.TempDir()
	inPath, _ := writeMatrixInput(t, dir)
	want, bal := sortFileWithEngine(t, dir, "balance", inPath, EngineBalanceSort)

	outPath := filepath.Join(dir, "auto.out")
	cfg := matrixConfig()
	cfg.Engine = EngineAuto
	res, err := SortFile(inPath, outPath, "", cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("auto output differs from balancesort")
	}
	if res.Plan == nil {
		t.Fatal("auto did not record its plan")
	}
	if res.Engine != res.Plan.Engine {
		t.Fatalf("ran %q but planned %q", res.Engine, res.Plan.Engine)
	}
	if res.IOs > bal.IOs {
		t.Fatalf("auto picked %s at %d I/Os, worse than balancesort's %d", res.Engine, res.IOs, bal.IOs)
	}
}

func TestEngineInMemFile(t *testing.T) {
	dir := t.TempDir()
	in := NewWorkload(Zipf, 400, 7)
	inPath := filepath.Join(dir, "in.bin")
	if err := WriteRecordFile(inPath, in); err != nil {
		t.Fatal(err)
	}
	want, _ := sortFileWithEngine(t, dir, "balance", inPath, EngineBalanceSort)
	got, res := sortFileWithEngine(t, dir, "inmem", inPath, EngineInMem)
	if string(got) != string(want) {
		t.Fatal("inmem output differs from balancesort")
	}
	if res.IOs == 0 || res.PRAMWork == 0 {
		t.Fatalf("inmem result not metered: %+v", res)
	}
	// Too large for half a memoryload must be refused, not mis-sorted.
	big := NewWorkload(Uniform, matrixConfig().Memory, 9)
	bigPath := filepath.Join(dir, "big.bin")
	if err := WriteRecordFile(bigPath, big); err != nil {
		t.Fatal(err)
	}
	cfg := matrixConfig()
	cfg.Engine = EngineInMem
	if _, err := SortFile(bigPath, filepath.Join(dir, "big.out"), "", cfg); err == nil {
		t.Fatal("inmem accepted an input larger than M/2")
	}
}

func TestParseEngine(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Engine
	}{
		{"", EngineBalanceSort},
		{"auto", EngineAuto},
		{"balancesort", EngineBalanceSort},
		{"guidesort", EngineGuideSort},
		{"stripedmerge", EngineStripedMerge},
		{"inmem", EngineInMem},
	} {
		got, err := ParseEngine(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseEngine(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseEngine("quantum"); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// TestGuidesortCrashMatrixResume mirrors TestCrashMatrixResume for the
// guidesort engine: kill immediately before every journal commit in turn,
// resume, and demand byte-identical output plus a bounded I/O overhead
// (at most one redone step).
func TestGuidesortCrashMatrixResume(t *testing.T) {
	dir := t.TempDir()
	inPath, _ := writeMatrixInput(t, dir)

	basePath := filepath.Join(dir, "base.bin")
	cfg := matrixConfig()
	cfg.Engine = EngineGuideSort
	cfg.Robust = RobustConfig{Journal: true}
	base, err := SortFile(inPath, basePath, filepath.Join(dir, "base-scratch"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseBytes, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}

	entries, err := pdm.LoadJournal(pdm.JournalPath(filepath.Join(dir, "base-scratch")))
	if err != nil {
		t.Fatal(err)
	}
	// Entry 1 is the loaded-input commit; the rest are sorter steps.
	commits := len(entries) - 1
	if commits < 10 {
		t.Fatalf("only %d commit boundaries; the matrix needs a multi-step sort", commits)
	}
	var maxStep, prevIOs int64
	for _, e := range entries {
		var js guideJournalState
		if err := json.Unmarshal(e.Payload, &js); err != nil {
			t.Fatal(err)
		}
		if js.Engine != string(EngineGuideSort) {
			t.Fatalf("journal entry tagged %q", js.Engine)
		}
		if d := js.State.Metrics.IOs - prevIOs; d > maxStep {
			maxStep = d
		}
		prevIOs = js.State.Metrics.IOs
	}
	if prevIOs != base.IOs {
		t.Fatalf("journal final I/O count %d disagrees with the result's %d", prevIOs, base.IOs)
	}

	step := 1
	if testing.Short() {
		step = 5
	}
	for k := 1; k <= commits; k += step {
		scratch := filepath.Join(dir, "scratch", "k")
		outPath := filepath.Join(dir, "out.bin")
		os.RemoveAll(scratch)
		os.Remove(outPath)

		cfg := matrixConfig()
		cfg.Engine = EngineGuideSort
		cfg.Robust = RobustConfig{Journal: true, crashAfterCommits: k}
		_, err := SortFile(inPath, outPath, scratch, cfg)
		if !errors.Is(err, core.ErrInjectedCrash) {
			t.Fatalf("kill %d: got %v, want the injected crash", k, err)
		}
		if _, err := os.Stat(outPath); !os.IsNotExist(err) {
			t.Fatalf("kill %d: crashed sort left an output file", k)
		}

		// Resume deliberately passes no Engine: the journal's tag must win.
		res, err := ResumeSortFile(inPath, outPath, scratch, matrixConfig())
		if err != nil {
			t.Fatalf("resume after kill %d: %v", k, err)
		}
		if res.Engine != string(EngineGuideSort) {
			t.Fatalf("resume after kill %d ran %q, journal said guidesort", k, res.Engine)
		}
		got, err := os.ReadFile(outPath)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(baseBytes) {
			t.Fatalf("resume after kill %d: output differs from the uninterrupted run", k)
		}
		if res.IOs > base.IOs+maxStep {
			t.Fatalf("resume after kill %d: %d committed I/Os, uninterrupted %d + one step %d",
				k, res.IOs, base.IOs, maxStep)
		}
	}
}

// TestStripedMergeCrashResume spot-checks that the striped discipline
// inherits the same journaling machinery.
func TestStripedMergeCrashResume(t *testing.T) {
	dir := t.TempDir()
	inPath, _ := writeMatrixInput(t, dir)
	want, _ := sortFileWithEngine(t, dir, "striped-base", inPath, EngineStripedMerge)

	scratch := filepath.Join(dir, "scratch")
	outPath := filepath.Join(dir, "out.bin")
	cfg := matrixConfig()
	cfg.Engine = EngineStripedMerge
	cfg.Robust = RobustConfig{Journal: true, crashAfterCommits: 3}
	if _, err := SortFile(inPath, outPath, scratch, cfg); !errors.Is(err, core.ErrInjectedCrash) {
		t.Fatalf("got %v, want the injected crash", err)
	}
	res, err := ResumeSortFile(inPath, outPath, scratch, matrixConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != string(EngineStripedMerge) {
		t.Fatalf("resumed as %q", res.Engine)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("resumed striped output differs")
	}
}

// TestGuidesortRatioAcceptance is the issue's acceptance bar: at the
// committed bench geometry, guidesort's I/O ratio vs the lower bound is at
// most 5.0 and strictly better than balancesort's.
func TestGuidesortRatioAcceptance(t *testing.T) {
	cfg := Config{Disks: 8, BlockSize: 64, Memory: 1 << 15}
	in := NewWorkload(Uniform, 1<<16, 42)
	guide, err := SortWith(AlgoGuideSort, in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(in, guide.Records) {
		t.Fatal("guidesort output wrong")
	}
	ratio := float64(guide.IOs) / guide.IOLowerBound
	if ratio > 5.0 {
		t.Fatalf("guidesort ratio %.2f exceeds the 5.0 acceptance bar", ratio)
	}
	bal, err := Sort(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if guide.IOs >= bal.IOs {
		t.Fatalf("guidesort %d I/Os did not beat balancesort's %d", guide.IOs, bal.IOs)
	}
	t.Logf("guidesort %.2fx lower bound (%d I/Os) vs balancesort %.2fx (%d I/Os)",
		ratio, guide.IOs, float64(bal.IOs)/bal.IOLowerBound, bal.IOs)
}

func TestPlanFile(t *testing.T) {
	dir := t.TempDir()
	inPath, _ := writeMatrixInput(t, dir)
	pl, err := PlanFile(inPath, matrixConfig())
	if err != nil {
		t.Fatal(err)
	}
	if pl.Engine == "" || len(pl.Candidates) == 0 || pl.LowerBoundIOs <= 0 {
		t.Fatalf("plan incomplete: %+v", pl)
	}
}
