// external demonstrates the library as an actual external-sorting tool: it
// generates a binary record file, sorts it through a *file-backed* disk
// array (the simulated drives persist to real files, so the dataset never
// has to fit in RAM), and verifies the output — the end-to-end workflow of
// `cmd/balancesort -infile/-outfile`.
//
//	go run ./examples/external
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"balancesort"
)

func main() {
	const n = 1 << 19

	dir, err := os.MkdirTemp("", "balancesort-external-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	inPath := filepath.Join(dir, "input.bin")
	outPath := filepath.Join(dir, "sorted.bin")
	scratch := filepath.Join(dir, "disks")

	recs := balancesort.NewWorkload(balancesort.Zipf, n, 2026)
	if err := balancesort.WriteRecordFile(inPath, recs); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(inPath)
	fmt.Printf("input: %s (%d records, %d bytes)\n", inPath, n, st.Size())

	cfg := balancesort.Config{Disks: 8, BlockSize: 64, Memory: 1 << 14}
	res, err := balancesort.SortFile(inPath, outPath, scratch, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sorted with D=%d file-backed disks under %s\n", cfg.Disks, scratch)
	fmt.Printf("  parallel I/Os: %d (%.2fx the Theorem 1 bound)\n",
		res.IOs, float64(res.IOs)/res.IOLowerBound)
	fmt.Printf("  memory peak:   %d of %d records (%.1f%% of M — the rest stayed on disk)\n",
		res.MemPeak, cfg.Memory, 100*float64(res.MemPeak)/float64(cfg.Memory))

	// Show what landed on the simulated drives.
	ents, err := os.ReadDir(scratch)
	if err != nil {
		log.Fatal(err)
	}
	var bytes int64
	for _, e := range ents {
		if info, err := e.Info(); err == nil {
			bytes += info.Size()
		}
	}
	fmt.Printf("  scratch disks: %d files, %d bytes\n", len(ents)-1, bytes)

	out, err := balancesort.ReadRecordFile(outPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  verification: ", balancesort.Verify(recs, out))
}
