// dbsort models the workload the paper's introduction motivates: an
// external sort of database records far larger than memory, on a disk farm.
// Keys are duplicate-heavy (customer IDs following a Zipf law), so the run
// also exercises the paper's tie-breaking device (appending each record's
// initial location to its key).
//
// The example races Balance Sort against the two merge-based comparators —
// disk-striped merge sort (the industry-simple strawman of Section 1) and a
// Greed-Sort-style forecasting merge — on the identical disk geometry, then
// shows the striping penalty growing as D rises while M stays fixed: the
// Θ(log(M/B)/log(M/DB)) factor.
//
//	go run ./examples/dbsort
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"balancesort"
)

func main() {
	const (
		n = 1 << 19 // half a million records
		b = 64
		m = 1 << 14 // 16Ki records of memory — small, like a real buffer pool
	)

	recs := balancesort.NewWorkload(balancesort.Zipf, n, 7)

	fmt.Printf("database sort: N=%d Zipf-keyed records, B=%d, M=%d\n\n", n, b, m)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "D\talgorithm\tparallel I/Os\tvs lower bound\t")

	for _, d := range []int{4, 8, 16, 32} {
		if 4*d*b > m {
			continue
		}
		for _, algo := range []balancesort.Algorithm{
			balancesort.AlgoBalanceSort,
			balancesort.AlgoGreedSort,
			balancesort.AlgoForecastMerge,
			balancesort.AlgoStripedMerge,
		} {
			res, err := balancesort.SortWith(algo, recs, balancesort.Config{
				Disks: d, BlockSize: b, Memory: m,
			})
			if err != nil {
				log.Fatal(err)
			}
			if !balancesort.Verify(recs, res.Records) {
				log.Fatalf("%v on D=%d failed verification", algo, d)
			}
			fmt.Fprintf(tw, "%d\t%v\t%d\t%.2fx\t\n", d, algo, res.IOs,
				float64(res.IOs)/res.IOLowerBound)
		}
	}
	tw.Flush()
	fmt.Println("\nas D grows with fixed M, the striped merge's merge arity M/(2DB) collapses and its")
	fmt.Println("ratio to the lower bound climbs pass by pass, while Balance Sort's ratio stays flat —")
	fmt.Println("the Θ(log(M/B)/log(M/DB)) gap of Section 1. (At small D striping's constant is still")
	fmt.Println("competitive; the theorem is about the trend as DB approaches M.)")
}
