// Quickstart: sort a million records on a simulated 16-disk array and
// compare the measured parallel I/O count against Theorem 1's lower bound.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"balancesort"
)

func main() {
	const n = 1 << 20

	recs := balancesort.NewWorkload(balancesort.Uniform, n, 42)

	res, err := balancesort.Sort(recs, balancesort.Config{
		Disks:     16,
		BlockSize: 64,
		Memory:    1 << 16, // 64Ki records of internal memory
	})
	if err != nil {
		log.Fatal(err)
	}

	if !balancesort.Verify(recs, res.Records) {
		log.Fatal("output failed verification")
	}

	fmt.Printf("sorted %d records on D=16 disks (B=64, M=65536)\n", n)
	fmt.Printf("  parallel I/Os:        %d\n", res.IOs)
	fmt.Printf("  Theorem 1 lower bound: %.0f\n", res.IOLowerBound)
	fmt.Printf("  ratio:                %.2fx (a constant — that is the theorem)\n",
		float64(res.IOs)/res.IOLowerBound)
	fmt.Printf("  recursion depth:      %d, distribution passes: %d\n", res.Depth, res.Passes)
	fmt.Printf("  bucket read balance:  %.2fx of optimal (Theorem 4 bounds this near 2)\n",
		res.MaxBucketReadRatio)
	fmt.Printf("  internal PRAM time:   %.3g units on P=1\n", res.PRAMTime)
}
