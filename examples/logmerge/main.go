// logmerge sorts a nearly-ordered event log with adversarial bursts — the
// kind of input that trips data-dependent placement schemes. A naive
// per-bucket round-robin placement and the randomized Vitter–Shriver
// placement are run on the same input to show that the deterministic
// balance matrices give the same I/O count as randomization without any
// coin flips, and that the Theorem 4 bucket-read balance holds even when
// 90% of records fall into one bucket.
//
//	go run ./examples/logmerge
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"balancesort"
)

func main() {
	const n = 1 << 18

	fmt.Println("log-record sort: nearly-sorted stream plus a skewed burst")
	fmt.Println()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tplacement\tI/Os\tbucket-read balance\tmax bucket frac\t")

	for _, w := range []balancesort.Workload{balancesort.NearlySorted, balancesort.BucketSkew} {
		recs := balancesort.NewWorkload(w, n, 11)
		for _, pl := range []struct {
			name string
			p    balancesort.PlacementStrategy
		}{
			{"balanced (paper)", balancesort.PlacementBalanced},
			{"randomized [ViSa]", balancesort.PlacementRandom},
			{"round-robin naive", balancesort.PlacementRoundRobin},
		} {
			res, err := balancesort.Sort(recs, balancesort.Config{
				Disks: 8, BlockSize: 32, Memory: 1 << 13,
				Placement: pl.p, Seed: 3,
			})
			if err != nil {
				log.Fatal(err)
			}
			if !balancesort.Verify(recs, res.Records) {
				log.Fatalf("%s failed verification", pl.name)
			}
			fmt.Fprintf(tw, "%v\t%s\t%d\t%.2fx\t%.2f\t\n",
				w, pl.name, res.IOs, res.MaxBucketReadRatio, res.MaxBucketFrac)
		}
	}
	tw.Flush()
	fmt.Println("\nthe balanced placement matches the randomized I/O count deterministically;")
	fmt.Println("Theorem 4 keeps every bucket readable within ~2x of optimal even under skew.")
}
