// hierarchy runs Balance Sort across the paper's parallel memory-hierarchy
// models (Figure 3 / Figure 4): P-HMM and P-BT under both cost functions,
// with EREW-PRAM and hypercube interconnects, and reports measured parallel
// time against the Theorem 2/3 Θ-expressions. The ratio column staying flat
// as models and interconnects vary is the reproduction of those theorems'
// upper bounds.
//
//	go run ./examples/hierarchy
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"balancesort"
)

func main() {
	const n = 1 << 16

	recs := balancesort.NewWorkload(balancesort.Uniform, n, 5)

	fmt.Printf("parallel hierarchy sort: N=%d, H=16 hierarchies\n\n", n)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "model\tinterconnect\tmeasured time\tΘ-bound\tratio\t")

	type row struct {
		name  string
		model balancesort.HierarchyModel
		alpha float64
	}
	models := []row{
		{"P-HMM f=log x", balancesort.HMMLog, 0},
		{"P-HMM f=x^0.5", balancesort.HMMPower, 0.5},
		{"P-BT  f=log x", balancesort.BTLog, 0},
		{"P-BT  f=x^0.5", balancesort.BTPower, 0.5},
		{"P-BT  f=x^1", balancesort.BTPower, 1},
		{"P-UMH ρ=2", balancesort.UMH, 1},
	}
	for _, mr := range models {
		for _, ic := range []struct {
			name string
			i    balancesort.Interconnect
		}{{"EREW PRAM", balancesort.EREWPRAM}, {"hypercube", balancesort.Hypercube}} {
			res, err := balancesort.SortHierarchy(recs, balancesort.HierConfig{
				Hierarchies: 16, Model: mr.model, Alpha: mr.alpha, Interconnect: ic.i,
			})
			if err != nil {
				log.Fatal(err)
			}
			if !balancesort.Verify(recs, res.Records) {
				log.Fatalf("%s/%s failed verification", mr.name, ic.name)
			}
			fmt.Fprintf(tw, "%s\t%s\t%.3g\t%.3g\t%.2f\t\n",
				mr.name, ic.name, res.Time, res.Bound, res.Time/res.Bound)
		}
	}
	tw.Flush()
	fmt.Println("\nmeasured/bound ratios are constants per model — the Theorem 2/3 shapes.")
}
