package balancesort

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"balancesort/internal/cluster"
)

// chromeTestTrace mirrors the Chrome trace_event envelope for test-side
// schema validation. Pointer fields distinguish "absent" from zero.
type chromeTestTrace struct {
	TraceEvents []chromeTestEvent `json:"traceEvents"`
}

type chromeTestEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	ID   string         `json:"id"`
	Ts   *float64       `json:"ts"`
	Dur  *float64       `json:"dur"`
	Pid  *int           `json:"pid"`
	Tid  *int           `json:"tid"`
	Args map[string]any `json:"args"`
}

func parseChromeTrace(t *testing.T, data []byte) chromeTestTrace {
	t.Helper()
	var tr chromeTestTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	for i, e := range tr.TraceEvents {
		if e.Name == "" || e.Ph == "" || e.Pid == nil {
			t.Fatalf("event %d missing required fields: %+v", i, e)
		}
		switch e.Ph {
		case "X":
			if e.Ts == nil || e.Dur == nil || e.Tid == nil {
				t.Fatalf("complete event %d missing ts/dur/tid: %+v", i, e)
			}
			if *e.Ts < 0 || *e.Dur < 0 {
				t.Fatalf("complete event %d has negative time: %+v", i, e)
			}
		case "C":
			// Counter sample: needs a timestamp and a value argument.
			if e.Ts == nil || e.Args["value"] == nil {
				t.Fatalf("counter event %d missing ts/value: %+v", i, e)
			}
		case "s", "f":
			// Flow edge endpoint: needs a timestamp and a binding id.
			if e.Ts == nil || e.ID == "" {
				t.Fatalf("flow event %d missing ts/id: %+v", i, e)
			}
		case "M":
			// Process metadata; name payload lives in args.
		default:
			t.Fatalf("event %d has unexpected phase %q", i, e.Ph)
		}
	}
	return tr
}

func TestStartObsServerDisabled(t *testing.T) {
	srv, err := StartObsServer("")
	if err != nil {
		t.Fatalf("empty addr: %v", err)
	}
	if srv != nil {
		t.Fatal("empty addr must return a nil server — no listener")
	}
	if got := srv.Addr(); got != "" {
		t.Fatalf("nil server Addr = %q", got)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("nil server Close: %v", err)
	}
}

// TestSortFileObsParity pins the tentpole guarantee: with tracing, span
// resource attribution, utilization sampling, and the metrics endpoint all
// enabled, the model parallel-I/O counts and the sorted output are
// byte-identical to an observability-off run.
func TestSortFileObsParity(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "in.dat")
	if err := WriteRecordFile(inPath, NewWorkload(Uniform, 60_000, 11)); err != nil {
		t.Fatal(err)
	}
	base := Config{Disks: 4, BlockSize: 64, Memory: 1 << 16, IO: IOConfig{Engine: true}}

	offOut := filepath.Join(dir, "off.dat")
	offRes, err := SortFile(inPath, offOut, filepath.Join(dir, "scratch-off"), base)
	if err != nil {
		t.Fatal(err)
	}
	if offRes.Trace != nil {
		t.Fatal("observability off must not record a trace")
	}

	srv, err := StartObsServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	on := base
	on.Obs = ObsConfig{Trace: true, Server: srv, Sample: time.Millisecond}
	onOut := filepath.Join(dir, "on.dat")
	onRes, err := SortFile(inPath, onOut, filepath.Join(dir, "scratch-on"), on)
	if err != nil {
		t.Fatal(err)
	}

	if onRes.IOs != offRes.IOs || onRes.Passes != offRes.Passes || onRes.Depth != offRes.Depth {
		t.Fatalf("model costs differ with tracing on: IOs %d/%d passes %d/%d depth %d/%d",
			onRes.IOs, offRes.IOs, onRes.Passes, offRes.Passes, onRes.Depth, offRes.Depth)
	}
	requireSameBytes(t, offOut, onOut)

	if onRes.Trace == nil {
		t.Fatal("tracing on returned no trace")
	}
	phases := make(map[string]bool)
	for _, s := range onRes.Trace.Spans() {
		phases[s.Layer+"/"+s.Name] = true
	}
	for _, want := range []string{"sort/distribute-pass", "sort/run-formation", "sort/base-case", "disk/flush"} {
		if !phases[want] {
			t.Fatalf("trace has no %q span; recorded phases: %v", want, phases)
		}
	}
	totals := onRes.Trace.PhaseTotals()
	if totals["sort/distribute-pass"] <= 0 {
		t.Fatalf("PhaseTotals has no positive distribute-pass time: %v", totals)
	}

	// Attribution: at least one phase span must carry resource deltas, and
	// the phase spans must form a causality tree (run-formation parented
	// under its distribute-pass).
	var attributed, counters, parented bool
	byID := make(map[uint64]string)
	for _, s := range onRes.Trace.Spans() {
		if s.SpanID != 0 {
			byID[s.SpanID] = s.Name
		}
	}
	for _, s := range onRes.Trace.Spans() {
		for _, a := range s.Attrs {
			if a.Key == "io.bytes_read" || a.Key == "recs.moved" {
				attributed = true
			}
		}
		if s.Layer == "counter" {
			counters = true
		}
		if s.Name == "run-formation" && byID[s.Parent] == "distribute-pass" {
			parented = true
		}
	}
	if !attributed {
		t.Fatal("no span carries resource-attribution deltas")
	}
	if !counters {
		t.Fatal("sampling enabled but no counter samples recorded")
	}
	if !parented {
		t.Fatal("run-formation span is not parented under distribute-pass")
	}

	// The /metrics endpoint must expose the sort's phase histograms.
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"balancesort_phase_seconds_bucket",
		`layer="sort",phase="distribute-pass"`,
		`le="+Inf"`,
		"balancesort_phase_seconds_count",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}

// TestClusterTraceMergedTimeline is the acceptance scenario: a 4-worker
// in-process cluster sort with tracing must produce one Chrome trace-event
// JSON containing coordinator spans (pid 0) and every worker's spans
// (pids 1..4) for every cluster phase — and the traced run's output must be
// byte-identical to the observability-off single-process reference.
func TestClusterTraceMergedTimeline(t *testing.T) {
	dir := t.TempDir()
	const W = 4
	addrs := make([]string, W)
	for i := 0; i < W; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		scratch := filepath.Join(dir, fmt.Sprintf("w%d", i))
		if err := os.MkdirAll(scratch, 0o755); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = ServeWorker(ctx, ln, WorkerOptions{ScratchDir: scratch, Sort: clusterShardConfig()})
		}()
		t.Cleanup(func() {
			cancel()
			<-done
		})
	}

	inPath, refPath := writeClusterInput(t, dir, Uniform, 60_000, 23)
	outPath := filepath.Join(dir, "out.dat")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := ClusterSortFile(ctx, inPath, outPath, ClusterConfig{
		Workers: addrs,
		Obs:     ObsConfig{Trace: true, Sample: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	requireSameBytes(t, refPath, outPath)
	if res.Trace == nil {
		t.Fatal("cluster sort with tracing returned no trace")
	}

	var buf bytes.Buffer
	if err := res.Trace.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	tr := parseChromeTrace(t, buf.Bytes())

	// Index the complete events by (pid, name).
	type key struct {
		pid  int
		name string
	}
	have := make(map[key]int)
	pids := make(map[int]bool)
	flowOut := make(map[string]bool) // flow id -> seen "s" on the coordinator
	for _, e := range tr.TraceEvents {
		if e.Ph == "s" && *e.Pid == 0 {
			flowOut[e.ID] = true
		}
	}
	var flowBound, counterSamples int
	for _, e := range tr.TraceEvents {
		switch e.Ph {
		case "f":
			if flowOut[e.ID] && *e.Pid > 0 {
				flowBound++
			}
			continue
		case "C":
			counterSamples++
			continue
		}
		if e.Ph != "X" {
			continue
		}
		pids[*e.Pid] = true
		if e.Cat == "cluster" {
			have[key{*e.Pid, e.Name}]++
		}
	}
	// Causality edges: coordinator "s" points must bind to worker "f"
	// points through identical derived flow ids — for W workers across the
	// pivots/plan/gather/local-sort/drain edges that is at least W edges.
	if flowBound < W {
		t.Fatalf("only %d coordinator→worker flow edges bound (want >= %d)", flowBound, W)
	}
	// Coordinator-side sampling was on: the merged trace must carry
	// utilization counter tracks.
	if counterSamples == 0 {
		t.Fatal("sampling enabled but merged trace has no counter events")
	}
	for pid := 0; pid <= W; pid++ {
		if !pids[pid] {
			t.Fatalf("merged trace has no spans for pid %d (0 = coordinator, 1..%d = workers)", pid, W)
		}
	}
	for _, phase := range cluster.CoordinatorPhases {
		if have[key{0, phase}] == 0 {
			t.Fatalf("coordinator phase %q missing from merged trace", phase)
		}
	}
	for w := 1; w <= W; w++ {
		for _, phase := range cluster.WorkerPhases {
			if have[key{w, phase}] == 0 {
				t.Fatalf("worker %d phase %q missing from merged trace", w-1, phase)
			}
		}
	}
	if res.Trace.Dropped() != 0 {
		t.Fatalf("trace dropped %d spans; ring too small for this test", res.Trace.Dropped())
	}
}

// TestClusterLiveScrape runs a 2-worker cluster sort while hammering every
// observability endpoint from concurrent goroutines — worker /metrics,
// worker pprof, coordinator /metrics — with sampling and attribution on.
// Under -race this pins that live scraping never races the sorting path,
// and that the sort's output is still byte-identical to the reference.
func TestClusterLiveScrape(t *testing.T) {
	dir := t.TempDir()
	const W = 2
	addrs := make([]string, W)
	obsAddrs := make([]string, W)
	for i := 0; i < W; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		oln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		obsAddrs[i] = oln.Addr().String()
		oln.Close() // we only needed a free port for ObsAddr
		addrs[i] = ln.Addr().String()
		scratch := filepath.Join(dir, fmt.Sprintf("w%d", i))
		if err := os.MkdirAll(scratch, 0o755); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		opt := WorkerOptions{
			ScratchDir: scratch,
			Sort:       clusterShardConfig(),
			ObsAddr:    obsAddrs[i],
			Sample:     time.Millisecond,
		}
		go func() {
			defer close(done)
			_ = ServeWorker(ctx, ln, opt)
		}()
		t.Cleanup(func() {
			cancel()
			<-done
		})
	}

	srv, err := StartObsServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Scrapers: poll every endpoint until the sort completes.
	scrapeCtx, stopScrape := context.WithCancel(context.Background())
	defer stopScrape()
	var scraped int64
	var wg sync.WaitGroup
	urls := []string{"http://" + srv.Addr() + "/metrics"}
	for _, oa := range obsAddrs {
		urls = append(urls,
			"http://"+oa+"/metrics",
			"http://"+oa+"/debug/pprof/goroutine?debug=1")
	}
	for _, u := range urls {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			for scrapeCtx.Err() == nil {
				resp, err := http.Get(u)
				if err != nil {
					// The worker's obs server may not be listening yet.
					time.Sleep(2 * time.Millisecond)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				atomic.AddInt64(&scraped, 1)
				time.Sleep(time.Millisecond)
			}
		}(u)
	}

	inPath, refPath := writeClusterInput(t, dir, Uniform, 60_000, 29)
	outPath := filepath.Join(dir, "out.dat")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := ClusterSortFile(ctx, inPath, outPath, ClusterConfig{
		Workers: addrs,
		Obs:     ObsConfig{Trace: true, Sample: time.Millisecond, Server: srv},
	})
	if err != nil {
		t.Fatal(err)
	}
	stopScrape()
	wg.Wait()
	requireSameBytes(t, refPath, outPath)
	if res.Trace == nil {
		t.Fatal("no trace from scraped run")
	}
	if atomic.LoadInt64(&scraped) == 0 {
		t.Fatal("no endpoint was ever scraped during the sort")
	}
}
