package balancesort

import (
	"testing"

	"balancesort/internal/diskio"
)

// TestIOStatsAggregate pins the aggregation rule: every counter sums across
// disks except QueueMax, which is a high-water mark and takes the maximum.
func TestIOStatsAggregate(t *testing.T) {
	s := &IOStats{PerDisk: []DiskIOStats{
		{Reads: 1, Writes: 2, BytesRead: 3, BytesWritten: 4, Retries: 5, Faults: 6, BreakerTrips: 7,
			PrefetchIssued: 8, PrefetchHits: 9, WriteBufferHits: 10, CoalescedBlocks: 11, Flushes: 12, QueueMax: 4},
		{Reads: 10, Writes: 20, BytesRead: 30, BytesWritten: 40, Retries: 50, Faults: 60, BreakerTrips: 70,
			PrefetchIssued: 80, PrefetchHits: 90, WriteBufferHits: 100, CoalescedBlocks: 110, Flushes: 120, QueueMax: 9},
		{QueueMax: 2},
	}}
	agg := s.Aggregate()
	want := DiskIOStats{Reads: 11, Writes: 22, BytesRead: 33, BytesWritten: 44, Retries: 55, Faults: 66,
		BreakerTrips: 77, PrefetchIssued: 88, PrefetchHits: 99, WriteBufferHits: 110, CoalescedBlocks: 121,
		Flushes: 132, QueueMax: 9}
	if agg != want {
		t.Fatalf("Aggregate = %+v, want %+v", agg, want)
	}
	if agg.QueueMax == 4+9+2 {
		t.Fatal("QueueMax was summed; it must take the per-disk maximum")
	}
	var empty IOStats
	if got := empty.Aggregate(); got != (DiskIOStats{}) {
		t.Fatalf("empty Aggregate = %+v, want zero", got)
	}
}

// TestIOStatsFrom pins the engine-snapshot-to-public-stats field mapping,
// including the Coalesced -> CoalescedBlocks rename.
func TestIOStatsFrom(t *testing.T) {
	if got := ioStatsFrom(nil); got != nil {
		t.Fatalf("ioStatsFrom(nil) = %+v, want nil", got)
	}
	snap := &diskio.Snapshot{PerDisk: []diskio.DiskStats{
		{Reads: 1, Writes: 2, BytesRead: 3, BytesWritten: 4, Retries: 5, Faults: 6, BreakerTrips: 7,
			PrefetchIssued: 8, PrefetchHits: 9, WriteBufferHits: 10, Coalesced: 11, Flushes: 12, QueueMax: 13},
		{Reads: 21, QueueMax: 5},
	}}
	got := ioStatsFrom(snap)
	if len(got.PerDisk) != 2 {
		t.Fatalf("%d disks converted, want 2", len(got.PerDisk))
	}
	want0 := DiskIOStats{Reads: 1, Writes: 2, BytesRead: 3, BytesWritten: 4, Retries: 5, Faults: 6,
		BreakerTrips: 7, PrefetchIssued: 8, PrefetchHits: 9, WriteBufferHits: 10, CoalescedBlocks: 11,
		Flushes: 12, QueueMax: 13}
	if got.PerDisk[0] != want0 {
		t.Fatalf("disk 0 = %+v, want %+v", got.PerDisk[0], want0)
	}
	if got.PerDisk[1] != (DiskIOStats{Reads: 21, QueueMax: 5}) {
		t.Fatalf("disk 1 = %+v", got.PerDisk[1])
	}
}
