package balancesort

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"balancesort/internal/core"
	"balancesort/internal/guidesort"
	"balancesort/internal/pdm"
	"balancesort/internal/plan"
	"balancesort/internal/pram"
	"balancesort/internal/record"
)

// Engine selection for file-backed sorts. Config.Engine names which
// external sorting engine SortFile runs — or EngineAuto to let the
// cost-model planner (internal/plan) pick per instance. Every engine
// produces byte-identical output (the (Key, Loc) effective keys make the
// sorted permutation unique); they differ only in I/O schedule and cost.
// All engines share the robustness stack: scratch checksums, the pass
// journal with ResumeSortFile, cancellation, and obs phase spans.

// Engine names a file-sort engine.
type Engine string

// The engines SortFile can run.
const (
	// EngineAuto lets the planner pick; the decision lands in Result.Plan.
	EngineAuto Engine = "auto"
	// EngineBalanceSort is the paper's distribution sort (the default).
	EngineBalanceSort Engine = Engine(plan.EngineBalanceSort)
	// EngineGuideSort is the guided mergesort of internal/guidesort.
	EngineGuideSort Engine = Engine(plan.EngineGuideSort)
	// EngineStripedMerge is merge sort with the D disks striped as one
	// logical disk (the guidesort machinery in its striped discipline).
	EngineStripedMerge Engine = Engine(plan.EngineStripedMerge)
	// EngineInMem reads the whole file into memory — only when N ≤ M/2.
	EngineInMem Engine = Engine(plan.EngineInMem)
)

// Engines lists every selectable engine name, auto first.
var Engines = []Engine{EngineAuto, EngineBalanceSort, EngineGuideSort, EngineStripedMerge, EngineInMem}

// ParseEngine parses an -engine flag value ("" = balancesort).
func ParseEngine(s string) (Engine, error) {
	switch Engine(s) {
	case "":
		return EngineBalanceSort, nil
	case EngineAuto, EngineBalanceSort, EngineGuideSort, EngineStripedMerge, EngineInMem:
		return Engine(s), nil
	default:
		return "", fmt.Errorf("balancesort: unknown engine %q (want auto, balancesort, guidesort, stripedmerge, or inmem)", s)
	}
}

// Plan is the planner's decision: the chosen engine plus every candidate
// engine's predicted cost at the instance's geometry.
type Plan = plan.Plan

// Prediction is one engine's predicted cost within a Plan.
type Prediction = plan.Prediction

// Throughput is the per-disk bandwidth assumption the planner ranks
// engines with; the zero value assumes symmetric commodity disks.
type Throughput = plan.Throughput

// MeasureThroughput derives a Throughput from a prior run's aggregate
// byte counts (e.g. Result.IO.Aggregate()) and wall-clock.
func MeasureThroughput(readBytes, writeBytes int64, disks int, seconds float64) Throughput {
	return plan.Measure(readBytes, writeBytes, disks, seconds)
}

// PlanFile runs the cost-model planner for sorting inPath at cfg's
// geometry without sorting anything: it stats the input, predicts every
// engine's pass count, I/O volume, and wall-clock, and returns the
// decision EngineAuto would take.
func PlanFile(inPath string, cfg Config) (*Plan, error) {
	cfg.fill()
	n, err := statRecords(inPath)
	if err != nil {
		return nil, err
	}
	return planGeometry(n, cfg)
}

func planGeometry(n int, cfg Config) (*Plan, error) {
	return plan.Choose(plan.Geometry{
		N: n, D: cfg.Disks, B: cfg.BlockSize, M: cfg.Memory,
		RecordBytes: RecordSize,
	}, cfg.Throughput)
}

// statRecords counts the records in a wire-format file.
func statRecords(path string) (int, error) {
	st, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	if st.Size()%record.EncodedSize != 0 {
		return 0, fmt.Errorf("balancesort: %s is %d bytes, not a whole number of %d-byte records",
			path, st.Size(), record.EncodedSize)
	}
	return int(st.Size() / record.EncodedSize), nil
}

// sortFile dispatches one file sort (fresh or resumed) to its engine. On a
// fresh sort the engine comes from cfg.Engine (EngineAuto asks the
// planner); on a resume it comes from the journal's engine tag, so a sort
// started under one engine always resumes under the same one regardless of
// what cfg says now.
func sortFile(ctx context.Context, inPath, outPath, scratchDir string, cfg Config, resume bool) (*Result, error) {
	cfg.fill()

	eng := cfg.Engine
	var pl *Plan
	if resume {
		tag, err := journalEngine(scratchDir)
		if err != nil {
			return nil, err
		}
		switch tag {
		case "", string(EngineBalanceSort):
			// Untagged journals predate engine selection.
			eng = EngineBalanceSort
		case string(EngineGuideSort), string(EngineStripedMerge):
			eng = Engine(tag)
		default:
			return nil, fmt.Errorf("balancesort: journal names unknown engine %q", tag)
		}
	} else {
		switch eng {
		case "":
			eng = EngineBalanceSort
		case EngineAuto:
			n, err := statRecords(inPath)
			if err != nil {
				return nil, err
			}
			p, err := planGeometry(n, cfg)
			if err != nil {
				return nil, err
			}
			pl = p
			eng = Engine(p.Engine)
		case EngineBalanceSort, EngineGuideSort, EngineStripedMerge, EngineInMem:
		default:
			return nil, fmt.Errorf("balancesort: unknown engine %q", cfg.Engine)
		}
	}

	var res *Result
	var err error
	switch eng {
	case EngineInMem:
		res, err = inMemSortFile(ctx, inPath, outPath, cfg)
	case EngineGuideSort:
		res, err = guideSortFile(ctx, inPath, outPath, scratchDir, cfg, resume, false)
	case EngineStripedMerge:
		res, err = guideSortFile(ctx, inPath, outPath, scratchDir, cfg, resume, true)
	default:
		res, err = balanceSortFile(ctx, inPath, outPath, scratchDir, cfg, resume)
	}
	if err != nil {
		return nil, err
	}
	res.Engine = string(eng)
	res.Plan = pl
	return res, nil
}

// journalEngine probes the engine tag of a scratch directory's last
// journal commit ("" for journals from before engine selection existed).
func journalEngine(scratchDir string) (string, error) {
	entries, err := pdm.LoadJournal(pdm.JournalPath(scratchDir))
	if err != nil {
		return "", err
	}
	if len(entries) == 0 {
		return "", errors.New("balancesort: journal holds no committed state")
	}
	var tag struct {
		Engine string `json:"engine"`
	}
	if err := json.Unmarshal(entries[len(entries)-1].Payload, &tag); err != nil {
		return "", fmt.Errorf("balancesort: bad journal payload: %w", err)
	}
	return tag.Engine, nil
}

// inMemSortFile is the degenerate engine for inputs that fit a
// half-memory load: read, sort in memory (metering the PRAM work), write.
// It needs no scratch array; its model I/O count is the two unavoidable
// data sweeps.
func inMemSortFile(ctx context.Context, inPath, outPath string, cfg Config) (*Result, error) {
	cfg.tracer = cfg.Obs.tracer()
	cfg.Obs.attach("sort", cfg.tracer)
	defer startSortObs(cfg, nil)() // runtime gauges only: no scratch array

	recs, err := ReadRecordFile(inPath)
	if err != nil {
		return nil, err
	}
	if len(recs) > cfg.Memory/2 {
		return nil, fmt.Errorf("balancesort: inmem engine needs N=%d ≤ M/2=%d", len(recs), cfg.Memory/2)
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	sp := cfg.tracer.Begin("sort", "inmem-sort", 0)
	cpu := pram.New(cfg.Processors)
	if cfg.NoRadix {
		cpu.Sort(recs)
	} else {
		cpu.SortRadix(recs)
	}
	sp.End()
	if !record.IsSorted(recs) {
		return nil, errors.New("balancesort: internal error: output not sorted")
	}
	if err := WriteRecordFile(outPath, recs); err != nil {
		return nil, err
	}
	p := pdm.Params{D: cfg.Disks, B: cfg.BlockSize, M: cfg.Memory}
	sweeps := int64((len(recs) + cfg.Disks*cfg.BlockSize - 1) / (cfg.Disks * cfg.BlockSize))
	return &Result{
		IOs:          2 * sweeps,
		IOLowerBound: core.LowerBoundIOs(len(recs), p),
		PRAMTime:     cpu.Time(),
		PRAMWork:     cpu.Work(),
		Passes:       1,
		MemPeak:      len(recs),
		Trace:        traceFrom(cfg.tracer),
	}, nil
}

// guideJournalState is the payload of one guidesort/stripedmerge journal
// commit: the engine tag, the geometry (checked against the manifest on
// resume), the allocation marks, and the sorter's complete State.
type guideJournalState struct {
	Engine string `json:"engine"`
	D      int    `json:"d"`
	B      int    `json:"b"`
	M      int    `json:"m"`

	NextFree []int           `json:"next_free"`
	State    guidesort.State `json:"state"`
}

// checkGuideJournalState validates a deserialized guidesort journal
// payload; nothing read off disk after a crash is trusted blindly.
func checkGuideJournalState(js *guideJournalState, p pdm.Params) error {
	if js.D != p.D || js.B != p.B || js.M != p.M {
		return fmt.Errorf("balancesort: journal geometry D=%d B=%d M=%d disagrees with manifest D=%d B=%d M=%d",
			js.D, js.B, js.M, p.D, p.B, p.M)
	}
	if len(js.NextFree) != p.D {
		return fmt.Errorf("balancesort: journal has %d allocation marks for D=%d", len(js.NextFree), p.D)
	}
	for i, nf := range js.NextFree {
		if nf < 0 {
			return fmt.Errorf("balancesort: journal allocation mark %d on disk %d", nf, i)
		}
	}
	st := &js.State
	if st.InputN < 0 || st.InputPos < 0 || st.InputPos > st.InputN || st.InputOff < 0 {
		return fmt.Errorf("balancesort: journal input extent [%d,%d) pos %d invalid", st.InputOff, st.InputN, st.InputPos)
	}
	if st.Metrics.N != st.InputN {
		return fmt.Errorf("balancesort: journal metrics N=%d disagrees with input N=%d", st.Metrics.N, st.InputN)
	}
	if st.Metrics.IOs < 0 || st.Metrics.Passes < 0 {
		return errors.New("balancesort: journal has negative counters")
	}
	formed := 0
	for _, r := range st.Runs {
		if r.Off < 0 || r.N < 0 || r.MinOff < 0 || r.MinN < 0 {
			return fmt.Errorf("balancesort: journal has bad run %+v", r)
		}
		formed += r.N
	}
	if formed != st.InputPos {
		return fmt.Errorf("balancesort: journal runs hold %d records but %d were formed", formed, st.InputPos)
	}
	return nil
}

// commitGuideState makes one guidesort step durable: flush the array, then
// append the tagged state to the journal and fsync it.
func commitGuideState(arr *pdm.Array, jnl *pdm.Journal, engine Engine, st guidesort.State) error {
	if err := arr.Sync(); err != nil {
		return err
	}
	p := arr.Params()
	payload, err := json.Marshal(guideJournalState{
		Engine: string(engine), D: p.D, B: p.B, M: p.M,
		NextFree: arr.NextFree(), State: st,
	})
	if err != nil {
		return err
	}
	_, err = jnl.Append(payload)
	return err
}

// reopenGuideScratch reopens a journaled guidesort scratch directory for
// resumption, mirroring reopenScratch: array from manifest, journal
// recovery with torn-tail truncation, state validation, allocation marks
// restored to the commit point.
func reopenGuideScratch(ctx context.Context, scratchDir string, cfg *Config, striped bool) (*pdm.Array, *pdm.Journal, guidesort.State, error) {
	var none guidesort.State
	opts := pdm.FileOptions{}
	if cfg.IO.Engine {
		ecfg := cfg.IO.engineConfig(ctx, cfg.tracer)
		opts.Engine = &ecfg
	}
	arr, err := pdm.OpenFileBackedOpts(scratchDir, opts)
	if err != nil {
		return nil, nil, none, err
	}
	fail := func(err error) (*pdm.Array, *pdm.Journal, guidesort.State, error) {
		arr.Close()
		return nil, nil, none, err
	}
	p := arr.Params()
	cfg.Disks, cfg.BlockSize, cfg.Memory = p.D, p.B, p.M

	jnl, entries, err := pdm.OpenJournalAppend(pdm.JournalPath(scratchDir))
	if err != nil {
		return fail(err)
	}
	if len(entries) == 0 {
		jnl.Close()
		return fail(errors.New("balancesort: journal holds no committed state"))
	}
	var js guideJournalState
	if err := json.Unmarshal(entries[len(entries)-1].Payload, &js); err != nil {
		jnl.Close()
		return fail(fmt.Errorf("balancesort: bad journal payload: %w", err))
	}
	want := EngineGuideSort
	if striped {
		want = EngineStripedMerge
	}
	if js.Engine != string(want) {
		jnl.Close()
		return fail(fmt.Errorf("balancesort: journal engine %q, resuming as %q", js.Engine, want))
	}
	if err := checkGuideJournalState(&js, p); err != nil {
		jnl.Close()
		return fail(err)
	}
	arr.SetNextFree(js.NextFree)
	return arr, jnl, js.State, nil
}

// guideSortFile runs the guidesort engine (or, with striped, its
// striped-merge discipline) on a file, with the same scratch handling,
// journaling, crash classification, and drain contract as the
// balancesort path.
func guideSortFile(ctx context.Context, inPath, outPath, scratchDir string, cfg Config, resume, striped bool) (*Result, error) {
	engine := EngineGuideSort
	if striped {
		engine = EngineStripedMerge
	}
	cfg.ctx = ctx
	cfg.tracer = cfg.Obs.tracer()
	cfg.Obs.attach("sort", cfg.tracer)

	cleanup := func() {}
	if scratchDir == "" {
		if cfg.Robust.Journal {
			return nil, errors.New("balancesort: journaling needs a persistent scratch directory")
		}
		dir, err := os.MkdirTemp("", "balancesort-scratch-*")
		if err != nil {
			return nil, err
		}
		scratchDir = dir
		cleanup = func() { os.RemoveAll(dir) }
	}
	defer cleanup()

	var (
		arr *pdm.Array
		jnl *pdm.Journal
		st  guidesort.State
	)
	if resume {
		var err error
		arr, jnl, st, err = reopenGuideScratch(ctx, scratchDir, &cfg, striped)
		if err != nil {
			return nil, err
		}
	} else {
		p := pdm.Params{D: cfg.Disks, B: cfg.BlockSize, M: cfg.Memory}
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if 4*p.D*p.B > p.M {
			return nil, fmt.Errorf("balancesort: DB = %d needs M >= %d (got %d)", p.D*p.B, 4*p.D*p.B, p.M)
		}

		in, err := os.Open(inPath)
		if err != nil {
			return nil, err
		}
		n, err := statRecords(inPath)
		if err != nil {
			in.Close()
			return nil, err
		}
		opts := pdm.FileOptions{NoChecksums: cfg.Robust.NoChecksums}
		if cfg.IO.Engine {
			ecfg := cfg.IO.engineConfig(ctx, cfg.tracer)
			opts.Engine = &ecfg
		}
		arr, err = pdm.NewFileBackedOpts(p, scratchDir, opts)
		if err != nil {
			in.Close()
			return nil, err
		}
		inOff, err := func() (off int, err error) {
			defer func() {
				if e := classifySortPanic(recover()); e != nil {
					off, err = 0, e
				}
			}()
			return loadFileStriped(arr, bufio.NewReaderSize(in, 1<<16), inPath, n)
		}()
		in.Close()
		if err != nil {
			arr.Close()
			return nil, err
		}
		st = guidesort.State{InputOff: inOff, InputN: n, Metrics: guidesort.Metrics{N: n}}

		if cfg.Robust.Journal {
			jnl, err = pdm.CreateJournal(pdm.JournalPath(scratchDir))
			if err != nil {
				arr.Close()
				return nil, err
			}
			// Commit the loaded-input state so even a crash before the first
			// run resumes without re-reading inPath.
			if err := commitGuideState(arr, jnl, engine, st); err != nil {
				jnl.Close()
				arr.Close()
				return nil, err
			}
		}
	}
	defer arr.Close()
	if jnl != nil {
		defer jnl.Close()
	}

	defer startSortObs(cfg, arr)()

	gcfg := guidesort.Config{
		P:                 cfg.Processors,
		Striped:           striped,
		NoRadix:           cfg.NoRadix,
		Context:           ctx,
		CrashAfterCommits: cfg.Robust.crashAfterCommits,
		Trace:             cfg.tracer,
	}
	if jnl != nil {
		gcfg.Checkpoint = func(s guidesort.State) error {
			return commitGuideState(arr, jnl, engine, s)
		}
	}

	return guideRunAndDrain(arr, gcfg, st, outPath, cfg)
}

// guideRunAndDrain runs (or resumes) the guidesort and streams the sorted
// region into outPath, converting panic-based operational errors into
// returned ones and never leaving a partial output file behind.
func guideRunAndDrain(arr *pdm.Array, gcfg guidesort.Config, st guidesort.State, outPath string, cfg Config) (res *Result, err error) {
	outCreated := false
	defer func() {
		if e := classifySortPanic(recover()); e != nil {
			res, err = nil, e
		}
		if err != nil && outCreated {
			os.Remove(outPath)
		}
	}()

	s := guidesort.NewSorter(arr, gcfg)
	reg := s.Resume(st)
	met := s.Metrics() // snapshot before the drain's read-back I/Os
	n := st.InputN

	out, err := os.Create(outPath)
	if err != nil {
		return nil, err
	}
	outCreated = true
	w := bufio.NewWriterSize(out, 1<<16)
	p := arr.Params()
	rowRecs := p.D * p.B
	row := make([]record.Record, rowRecs)
	var prev record.Record
	first := true
	written := 0
	for written < reg.N {
		m := rowRecs
		if reg.N-written < m {
			m = reg.N - written
		}
		arr.ReadStripe(reg.Off+written/rowRecs, row[:m])
		for _, r := range row[:m] {
			if !first && r.Less(prev) {
				out.Close()
				return nil, errors.New("balancesort: internal error: output not sorted")
			}
			prev, first = r, false
		}
		if err := record.WriteAll(w, row[:m]); err != nil {
			out.Close()
			return nil, err
		}
		written += m
	}
	if err := w.Flush(); err != nil {
		out.Close()
		return nil, err
	}
	if err := out.Close(); err != nil {
		return nil, err
	}
	if written != n {
		return nil, fmt.Errorf("balancesort: internal error: wrote %d of %d records", written, n)
	}

	ioStats := ioStatsFrom(arr.IOMetrics())
	res = &Result{
		IO:                 ioStats,
		MeasuredThroughput: measuredThroughput(ioStats),
		IOs:                met.IOs,
		IOLowerBound:       core.LowerBoundIOs(n, p),
		PRAMTime:           met.PRAMTime,
		PRAMWork:           met.PRAMWork,
		Depth:              met.Depth,
		Passes:             met.Passes,
		MemPeak:            met.MemPeak,
		Trace:              traceFrom(cfg.tracer),
	}
	if cfg.Robust.ScrubAfter {
		if err := arr.Sync(); err != nil {
			return nil, err
		}
		res.Scrub = scrubReportFrom(arr.Scrub())
	}
	return res, nil
}
