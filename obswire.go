package balancesort

import (
	"strconv"

	"balancesort/internal/diskio"
	"balancesort/internal/obs"
	"balancesort/internal/pdm"
)

// Resource attribution and utilization sampling for file-backed sorts.
// startSortObs is called once the scratch array exists: it installs the
// tracer's resource source (so every span carries the byte, I/O, and
// allocation deltas it was responsible for) and, when ObsConfig.Sample is
// set, starts the background utilization sampler. The returned stop
// function halts the sampler and detaches the source; callers defer it
// before the array's own Close so the gauges never read a torn-down engine.

func startSortObs(cfg Config, arr *pdm.Array) func() {
	tr := cfg.tracer
	if tr == nil {
		return func() {}
	}
	if arr != nil {
		tr.SetResourceSource(engineResourceAttrs(arr), "sort")
	}
	smp := obs.StartSampler(tr, cfg.Obs.Sample, engineGauges(arr))
	if smp != nil && cfg.Obs.Server != nil {
		key := "sort"
		if cfg.Obs.ServerKey != "" {
			key = cfg.Obs.ServerKey
		}
		cfg.Obs.Server.srv.SetSource(key+"/util", smp.Metrics)
	}
	return func() {
		smp.Stop()
		tr.SetResourceSource(nil)
	}
}

// engineResourceAttrs builds the cumulative-counter snapshot function span
// attribution diffs: aggregate and per-disk device bytes, device transfer
// counts, model parallel I/Os and block counts (records moved is blocks ×
// B), and heap allocation totals. Zero deltas are elided per span, so a
// phase that moved nothing stays as small as before.
func engineResourceAttrs(arr *pdm.Array) func() []obs.Attr {
	b := int64(arr.Params().B)
	// Key strings are built once: the source runs twice per attributed
	// span, so per-call strconv concatenation would be pure GC churn.
	rdKey := make([]string, arr.Params().D)
	wrKey := make([]string, arr.Params().D)
	for i := range rdKey {
		rdKey[i] = "disk" + strconv.Itoa(i) + ".rd_bytes"
		wrKey[i] = "disk" + strconv.Itoa(i) + ".wr_bytes"
	}
	return func() []obs.Attr {
		attrs := make([]obs.Attr, 0, 12+2*arr.Params().D)
		if snap := arr.IOMetrics(); snap != nil {
			var agg diskio.DiskStats
			for i := range snap.PerDisk {
				agg.Add(snap.PerDisk[i])
			}
			attrs = append(attrs,
				obs.Attr{Key: "io.bytes_read", Val: agg.BytesRead},
				obs.Attr{Key: "io.bytes_written", Val: agg.BytesWritten},
				obs.Attr{Key: "io.dev_reads", Val: agg.Reads},
				obs.Attr{Key: "io.dev_writes", Val: agg.Writes},
			)
			for i := range snap.PerDisk {
				d := &snap.PerDisk[i]
				attrs = append(attrs,
					obs.Attr{Key: rdKey[i], Val: d.BytesRead},
					obs.Attr{Key: wrKey[i], Val: d.BytesWritten},
				)
			}
		}
		ios, br, bw := arr.IOCounts()
		attrs = append(attrs,
			obs.Attr{Key: "model.ios", Val: ios},
			obs.Attr{Key: "model.blocks_read", Val: br},
			obs.Attr{Key: "model.blocks_written", Val: bw},
			obs.Attr{Key: "recs.moved", Val: (br + bw) * b},
		)
		return append(attrs, obs.AllocAttrs()...)
	}
}

// engineGauges builds the utilization gauge set: per-disk queue depth, busy
// fraction, and write-behind backlog, aggregate device byte rates, buffer
// pool occupancy, plus the process-wide runtime gauges. With no I/O engine
// mounted only the runtime gauges remain.
func engineGauges(arr *pdm.Array) []obs.Gauge {
	gs := obs.RuntimeGauges()
	if arr == nil || arr.IOMetrics() == nil {
		return gs
	}
	for i := 0; i < arr.Params().D; i++ {
		i := i
		name := "disk" + strconv.Itoa(i)
		gs = append(gs,
			obs.Gauge{Name: name + ".queue", Kind: obs.GaugeInstant, Fn: func() int64 {
				return arr.IOMetrics().PerDisk[i].QueueLen
			}},
			obs.Gauge{Name: name + ".busy_pct", Kind: obs.GaugeBusyPct, Fn: func() int64 {
				return arr.IOMetrics().PerDisk[i].BusyNanos
			}},
			obs.Gauge{Name: name + ".wb_backlog", Kind: obs.GaugeInstant, Fn: func() int64 {
				return arr.IOMetrics().PerDisk[i].WBBacklog
			}},
		)
	}
	gs = append(gs,
		obs.Gauge{Name: "io.read_bps", Kind: obs.GaugeRate, Fn: func() int64 {
			return arr.IOMetrics().Aggregate().BytesRead
		}},
		obs.Gauge{Name: "io.write_bps", Kind: obs.GaugeRate, Fn: func() int64 {
			return arr.IOMetrics().Aggregate().BytesWritten
		}},
		obs.Gauge{Name: "pool.bufs", Kind: obs.GaugeInstant, Fn: func() int64 {
			return arr.IOMetrics().PoolInUse
		}},
	)
	return gs
}
