package balancesort_test

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"balancesort"
)

// ExampleSort sorts a generated workload on a simulated 8-disk array and
// checks the result against Theorem 1's guarantees.
func ExampleSort() {
	recs := balancesort.NewWorkload(balancesort.Uniform, 100_000, 42)
	res, err := balancesort.Sort(recs, balancesort.Config{
		Disks: 8, BlockSize: 32, Memory: 1 << 13,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sorted:", balancesort.Verify(recs, res.Records))
	fmt.Println("I/O ratio under 12x:", float64(res.IOs) < 12*res.IOLowerBound)
	fmt.Println("bucket balance under 2x:", res.MaxBucketReadRatio < 2)
	// Output:
	// sorted: true
	// I/O ratio under 12x: true
	// bucket balance under 2x: true
}

// ExampleSortHierarchy runs Balance Sort on a P-BT hierarchy with a
// sub-linear cost function and compares against Lemma 4's Θ((N/H) log N).
func ExampleSortHierarchy() {
	recs := balancesort.NewWorkload(balancesort.Zipf, 20_000, 7)
	res, err := balancesort.SortHierarchy(recs, balancesort.HierConfig{
		Hierarchies: 8,
		Model:       balancesort.BTPower,
		Alpha:       0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sorted:", balancesort.Verify(recs, res.Records))
	fmt.Println("within 40x of the bound:", res.Time < 40*res.Bound)
	// Output:
	// sorted: true
	// within 40x of the bound: true
}

// ExampleSortFile externally sorts a binary record file through a
// file-backed disk array, holding only O(Memory) records in RAM.
func ExampleSortFile() {
	dir, err := os.MkdirTemp("", "balancesort-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	in := filepath.Join(dir, "in.bin")
	out := filepath.Join(dir, "out.bin")
	recs := balancesort.NewWorkload(balancesort.Reversed, 30_000, 3)
	if err := balancesort.WriteRecordFile(in, recs); err != nil {
		log.Fatal(err)
	}

	if _, err := balancesort.SortFile(in, out, "", balancesort.Config{
		Disks: 4, BlockSize: 32, Memory: 1 << 12,
	}); err != nil {
		log.Fatal(err)
	}

	sorted, err := balancesort.ReadRecordFile(out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sorted:", balancesort.Verify(recs, sorted))
	// Output:
	// sorted: true
}
