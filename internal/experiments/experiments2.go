package experiments

import (
	"balancesort/internal/balance"
	"balancesort/internal/bt"
	"balancesort/internal/core"
	"balancesort/internal/hier"
	"balancesort/internal/hmm"
	"balancesort/internal/matching"
	"balancesort/internal/pdm"
	"balancesort/internal/record"
	"balancesort/internal/stats"
)

// hierRun sorts a uniform workload on a hierarchy machine and returns the
// measured metrics.
func hierRun(h int, model hier.Model, tcost matching.TCost, n int, seed uint64) core.HierMetrics {
	m := hier.New(h, model, tcost)
	hs := core.NewHierSorter(m, core.HierConfig{})
	seg := hs.WriteInput(record.Generate(record.Uniform, n, seed))
	out := hs.Sort(seg)
	got := hs.ReadSegment(out)
	if !record.IsSorted(got) || len(got) != n {
		panic("experiments: hierarchy sort failed")
	}
	return hs.Metrics()
}

// E6 — Theorem 2, f(x) = log x: measured P-HMM time over the Θ-bound stays
// flat across N for both interconnects.
func E6(s Scale) *stats.Table {
	t := stats.NewTable("E6 — Theorem 2 (P-HMM, f=log x): time vs Θ-bound",
		"N", "H", "interconnect", "time", "bound", "ratio")
	ns := []int{1 << 12, 1 << 14, 1 << 16}
	if s == Full {
		ns = append(ns, 1<<18)
	}
	for _, h := range []int{4, 16} {
		for _, n := range ns {
			for _, ic := range []struct {
				name string
				t    matching.TCost
			}{{"PRAM", matching.PRAMCost}, {"hypercube", matching.HypercubeCost}} {
				m := hierRun(h, hmm.Model{Cost: hmm.LogCost{}}, ic.t, n, 7)
				bound := stats.Theorem2Bound(n, h, -1, ic.t)
				t.AddRow(n, h, ic.name, m.Time, bound, m.Time/bound)
			}
		}
	}
	return t
}

// E6Ratios returns the PRAM E6 ratios for one H across the N sweep.
func E6Ratios() []float64 {
	var out []float64
	for _, n := range []int{1 << 12, 1 << 14, 1 << 16} {
		m := hierRun(8, hmm.Model{Cost: hmm.LogCost{}}, matching.PRAMCost, n, 7)
		out = append(out, m.Time/stats.Theorem2Bound(n, 8, -1, matching.PRAMCost))
	}
	return out
}

// E7 — Theorem 2, f(x) = x^α: the measured time tracks
// (N/H)^{α+1} + (N/H)·(log N/log H)·T(H).
func E7(s Scale) *stats.Table {
	t := stats.NewTable("E7 — Theorem 2 (P-HMM, f=x^α): time vs Θ-bound",
		"α", "N", "time", "bound", "ratio")
	ns := []int{1 << 12, 1 << 14, 1 << 16}
	if s == Full {
		ns = append(ns, 1<<18)
	}
	const h = 8
	for _, alpha := range []float64{0.5, 1, 2} {
		for _, n := range ns {
			m := hierRun(h, hmm.Model{Cost: hmm.PowerCost{Alpha: alpha}}, matching.PRAMCost, n, 8)
			bound := stats.Theorem2Bound(n, h, alpha, matching.PRAMCost)
			t.AddRow(alpha, n, m.Time, bound, m.Time/bound)
		}
	}
	return t
}

// E7Ratios returns the α=1 ratios across the N sweep.
func E7Ratios() []float64 {
	var out []float64
	for _, n := range []int{1 << 12, 1 << 14, 1 << 16} {
		m := hierRun(8, hmm.Model{Cost: hmm.PowerCost{Alpha: 1}}, matching.PRAMCost, n, 8)
		out = append(out, m.Time/stats.Theorem2Bound(n, 8, 1, matching.PRAMCost))
	}
	return out
}

// E8 — Theorem 3: the four P-BT regimes (f=log x; α<1; α=1; α>1), measured
// against the per-regime Θ-expression.
func E8(s Scale) *stats.Table {
	t := stats.NewTable("E8 — Theorem 3 (P-BT): the four cost regimes",
		"f(x)", "N", "time", "bound", "ratio")
	ns := []int{1 << 12, 1 << 14, 1 << 16}
	if s == Full {
		ns = append(ns, 1<<18)
	}
	const h = 8
	type regime struct {
		name  string
		cost  hmm.CostFunc
		alpha float64
	}
	regimes := []regime{
		{"log x", hmm.LogCost{}, -1},
		{"x^0.5", hmm.PowerCost{Alpha: 0.5}, 0.5},
		{"x^1", hmm.PowerCost{Alpha: 1}, 1},
		{"x^2", hmm.PowerCost{Alpha: 2}, 2},
	}
	for _, r := range regimes {
		for _, n := range ns {
			m := hierRun(h, bt.Model{Cost: r.cost}, matching.PRAMCost, n, 9)
			bound := stats.Theorem3Bound(n, h, r.alpha, matching.PRAMCost)
			t.AddRow(r.name, n, m.Time, bound, m.Time/bound)
		}
	}
	return t
}

// E8Ratios returns the α=1 BT ratios across the N sweep.
func E8Ratios() []float64 {
	var out []float64
	for _, n := range []int{1 << 12, 1 << 14, 1 << 16} {
		m := hierRun(8, bt.Model{Cost: hmm.PowerCost{Alpha: 1}}, matching.PRAMCost, n, 9)
		out = append(out, m.Time/stats.Theorem3Bound(n, 8, 1, matching.PRAMCost))
	}
	return out
}

// E9 — Lemma 4: P-BT with f=x^α, α<1, sorts in Θ((N/H) log N); the
// measured time per (N/H) log N stays flat.
func E9(s Scale) *stats.Table {
	t := stats.NewTable("E9 — Lemma 4 (P-BT, α<1): time vs (N/H)·log N",
		"α", "N", "time", "(N/H)logN", "ratio")
	ns := []int{1 << 12, 1 << 14, 1 << 16}
	if s == Full {
		ns = append(ns, 1<<18, 1<<20)
	}
	const h = 8
	for _, alpha := range []float64{0.25, 0.5, 0.75} {
		for _, n := range ns {
			m := hierRun(h, bt.Model{Cost: hmm.PowerCost{Alpha: alpha}}, matching.PRAMCost, n, 10)
			ref := float64(n) / float64(h) * stats.Lg(float64(n))
			t.AddRow(alpha, n, m.Time, ref, m.Time/ref)
		}
	}
	return t
}

// E12 — Section 6's conjecture/ablation: greedy (min-cost-style maximal)
// matching inside Balance Sort versus the paper's Fast-Partial-Match, and
// the Arge auxiliary rule versus the median rule.
func E12(s Scale) *stats.Table {
	t := stats.NewTable("E12 — matching-strategy ablation inside Balance Sort",
		"matching", "IOs", "rearrange moves", "match time", "read balance")
	n := 1 << 16
	if s == Full {
		n = 1 << 18
	}
	p := pdm.Params{D: 8, B: 32, M: 1 << 13}
	for _, mm := range []struct {
		name string
		m    balance.MatchStrategy
	}{
		{"derandomized (paper)", balance.MatchDerandomized},
		{"randomized Alg. 7", balance.MatchRandomized},
		{"greedy maximal", balance.MatchGreedy},
	} {
		met := diskRun(p, core.DiskConfig{Match: mm.m, Seed: 11}, record.BucketSkew, n, 11)
		t.AddRow(mm.name, met.IOs, met.Balance.RearrangeMoves, met.Balance.MatchTime, met.MaxBucketReadRatio)
	}
	return t
}

// E13 — Section 6's practicality note: the randomized matching gives the
// same I/O count as the derandomized one with cheaper matching.
func E13(s Scale) *stats.Table {
	t := stats.NewTable("E13 — randomized vs derandomized matching (same I/Os)",
		"workload", "IOs derand", "IOs rand", "match time derand", "match time rand")
	n := 1 << 16
	if s == Full {
		n = 1 << 18
	}
	p := pdm.Params{D: 8, B: 32, M: 1 << 13}
	for _, w := range []record.Workload{record.Uniform, record.BucketSkew, record.FewDistinct} {
		md := diskRun(p, core.DiskConfig{Match: balance.MatchDerandomized}, w, n, 12)
		mr := diskRun(p, core.DiskConfig{Match: balance.MatchRandomized, Seed: 12}, w, n, 12)
		t.AddRow(w.String(), md.IOs, mr.IOs, md.Balance.MatchTime, mr.Balance.MatchTime)
	}
	return t
}

// E14 — Figure 1 vs Figure 2: in the AgV model any D blocks move per I/O,
// so even a maximally skewed placement reads back in ⌈blocks/D⌉ I/Os; the
// PDM's one-block-per-disk rule makes the same skewed placement cost up to
// D times more — the reason the balancing machinery must exist.
func E14(s Scale) *stats.Table {
	t := stats.NewTable("E14 — Figure 1 vs 2: reading a bucket under AgV vs PDM rules",
		"placement skew", "blocks", "D", "PDM read I/Os", "AgV read I/Os", "PDM/AgV")
	const d, b = 8, 16
	blocks := 64
	if s == Full {
		blocks = 512
	}
	for _, skew := range []struct {
		name string
		disk func(i int) int
	}{
		{"balanced (round robin)", func(i int) int { return i % d }},
		{"2x skew (half on one disk)", func(i int) int {
			if i%2 == 0 {
				return 0
			}
			return 1 + i%(d-1)
		}},
		{"all on one disk", func(i int) int { return 0 }},
	} {
		pdmIOs := readBackIOs(pdm.ModePDM, blocks, d, b, skew.disk)
		agvIOs := readBackIOs(pdm.ModeAgV, blocks, d, b, skew.disk)
		t.AddRow(skew.name, blocks, d, pdmIOs, agvIOs, float64(pdmIOs)/float64(agvIOs))
	}
	return t
}

// readBackIOs writes `blocks` blocks with the given per-block disk choice
// and counts the parallel I/Os to read them all back under the model rule.
func readBackIOs(mode pdm.Mode, blocks, d, b int, disk func(i int) int) int64 {
	arr := pdm.NewMode(pdm.Params{D: d, B: b, M: 4 * d * b}, mode)
	defer arr.Close()
	offs := make([][2]int, blocks)
	for i := 0; i < blocks; i++ {
		dd := disk(i)
		off := arr.Alloc(dd, 1)
		blk := record.Generate(record.Uniform, b, uint64(i))
		arr.ParallelIO([]pdm.Op{{Disk: dd, Off: off, Write: true, Data: blk}})
		offs[i] = [2]int{dd, off}
	}
	arr.ResetStats()
	// Read back with maximal packing for the mode: PDM takes one block per
	// distinct disk per I/O; AgV takes any D blocks per I/O.
	remaining := append([][2]int(nil), offs...)
	for len(remaining) > 0 {
		var ops []pdm.Op
		if mode == pdm.ModeAgV {
			take := d
			if take > len(remaining) {
				take = len(remaining)
			}
			for _, bo := range remaining[:take] {
				ops = append(ops, pdm.Op{Disk: bo[0], Off: bo[1], Data: make([]record.Record, b)})
			}
			remaining = remaining[take:]
		} else {
			used := make(map[int]bool, d)
			var rest [][2]int
			for _, bo := range remaining {
				if !used[bo[0]] && len(ops) < d {
					used[bo[0]] = true
					ops = append(ops, pdm.Op{Disk: bo[0], Off: bo[1], Data: make([]record.Record, b)})
				} else {
					rest = append(rest, bo)
				}
			}
			remaining = rest
		}
		arr.ParallelIO(ops)
	}
	return arr.Stats().IOs
}

// E15 — the Arge auxiliary-matrix remark of Section 4.1: both rules keep
// buckets balanced; the table compares their effort and outcomes.
func E15(s Scale) *stats.Table {
	t := stats.NewTable("E15 — auxiliary-matrix rule ablation (median vs twice-average)",
		"rule", "workload", "IOs", "read balance", "carried blocks", "rearrange moves")
	n := 1 << 16
	if s == Full {
		n = 1 << 18
	}
	p := pdm.Params{D: 8, B: 32, M: 1 << 13}
	for _, rr := range []struct {
		name string
		r    balance.AuxRule
	}{
		{"median (paper)", balance.AuxMedian},
		{"2x average [Arg]", balance.AuxTwiceAverage},
	} {
		for _, w := range []record.Workload{record.Uniform, record.BucketSkew} {
			m := diskRun(p, core.DiskConfig{Rule: rr.r}, w, n, 13)
			t.AddRow(rr.name, w.String(), m.IOs, m.MaxBucketReadRatio, m.Balance.BlocksCarried, m.Balance.RearrangeMoves)
		}
	}
	return t
}

// All returns every experiment table in order.
func All(s Scale) []*stats.Table {
	return []*stats.Table{
		E1(s), E2(s), E3(s), E4(s), E5(s), E6(s), E7(s), E8(s),
		E9(s), E10(s), E11(s), E12(s), E13(s), E14(s), E15(s), E16(s), E17(s),
	}
}

// E16 — Section 6's closing claim: Balance Sort "can operate without need
// of non-striped write operations". We measure how full the write I/Os
// actually run: the fraction of all-write parallel I/Os using at least
// half (and all) of the disks, plus overall disk-slot utilization, for the
// three placement disciplines.
func E16(s Scale) *stats.Table {
	t := stats.NewTable("E16 — write fullness and disk utilization (Section 6)",
		"placement", "workload", "full-width writes", ">=half-width writes", "slot utilization")
	n := 1 << 16
	if s == Full {
		n = 1 << 18
	}
	p := pdm.Params{D: 8, B: 32, M: 1 << 13}
	for _, pl := range []struct {
		name string
		p    core.Placement
	}{
		{"balanced (paper)", core.PlacementBalanced},
		{"randomized [ViSa]", core.PlacementRandom},
		{"round robin", core.PlacementRoundRobin},
	} {
		for _, w := range []record.Workload{record.Uniform, record.BucketSkew} {
			arr := pdm.New(p)
			ds := core.NewDiskSorter(arr, core.DiskConfig{Placement: pl.p, Seed: 16})
			in := ds.WriteInput(record.Generate(w, n, 16))
			segs := ds.Sort(in.Off, in.N)
			verifySegments(ds, segs, n)
			st := arr.Stats()
			t.AddRow(pl.name, w.String(),
				st.WriteFullness(p.D, 1.0), st.WriteFullness(p.D, 0.5), st.Utilization(p.D))
			arr.Close()
		}
	}
	return t
}

// E17 — Figure 4's point: adding hierarchies speeds the sort. Fixed N,
// growing H on P-HMM(log): the measured time should fall roughly like the
// Θ-bound's (N/H)·log N (interconnect terms temper perfect speedup).
func E17(s Scale) *stats.Table {
	t := stats.NewTable("E17 — Figure 4: hierarchy scaling (fixed N, growing H)",
		"H", "time", "speedup vs H=2", "bound speedup")
	n := 1 << 15
	if s == Full {
		n = 1 << 17
	}
	base := 0.0
	baseBound := 0.0
	for _, h := range []int{2, 4, 8, 16, 32} {
		m := hierRun(h, hmm.Model{Cost: hmm.LogCost{}}, matching.PRAMCost, n, 17)
		bound := stats.Theorem2Bound(n, h, -1, matching.PRAMCost)
		if h == 2 {
			base, baseBound = m.Time, bound
		}
		t.AddRow(h, m.Time, base/m.Time, baseBound/bound)
	}
	return t
}

// E17Speedups returns the measured speedups for the H sweep.
func E17Speedups() []float64 {
	n := 1 << 15
	var out []float64
	base := 0.0
	for _, h := range []int{2, 8, 32} {
		m := hierRun(h, hmm.Model{Cost: hmm.LogCost{}}, matching.PRAMCost, n, 17)
		if h == 2 {
			base = m.Time
		}
		out = append(out, base/m.Time)
	}
	return out
}
