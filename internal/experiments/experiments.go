// Package experiments regenerates every table of EXPERIMENTS.md: one
// function per experiment ID of DESIGN.md (E1-E17), each returning a
// rendered table of measured model costs against the paper's closed-form
// claims. cmd/experiments drives them from the command line; bench_test.go
// exposes each as a benchmark; the package tests assert the headline
// property of each table (flat ratio, bounded balance factor, and so on).
package experiments

import (
	"fmt"

	"balancesort/internal/balance"
	"balancesort/internal/baseline"
	"balancesort/internal/core"
	"balancesort/internal/matching"
	"balancesort/internal/pdm"
	"balancesort/internal/record"
	"balancesort/internal/stats"
)

// Scale selects how much work an experiment does.
type Scale int

const (
	// Quick keeps every experiment under a second or two — used by tests.
	Quick Scale = iota
	// Full is what cmd/experiments runs to regenerate EXPERIMENTS.md.
	Full
)

// diskRun sorts a workload on a fresh array and returns the sorter metrics.
func diskRun(p pdm.Params, cfg core.DiskConfig, w record.Workload, n int, seed uint64) core.Metrics {
	arr := pdm.New(p)
	defer arr.Close()
	ds := core.NewDiskSorter(arr, cfg)
	in := ds.WriteInput(record.Generate(w, n, seed))
	segs := ds.Sort(in.Off, in.N)
	verifySegments(ds, segs, n)
	return ds.Metrics()
}

func verifySegments(ds *core.DiskSorter, segs []core.Region, n int) {
	total := 0
	var last record.Record
	first := true
	for _, seg := range segs {
		recs := ds.ReadRegion(seg)
		total += len(recs)
		if !record.IsSorted(recs) {
			panic("experiments: unsorted segment")
		}
		if len(recs) > 0 {
			if !first && recs[0].Less(last) {
				panic("experiments: segments out of order")
			}
			last = recs[len(recs)-1]
			first = false
		}
	}
	if total != n {
		panic(fmt.Sprintf("experiments: %d of %d records came back", total, n))
	}
}

// E1 — Theorem 1 (I/O bound): the ratio of measured parallel I/Os to
// (N/DB)·log(N/B)/log(M/B) stays a flat constant across N and D.
func E1(s Scale) *stats.Table {
	t := stats.NewTable("E1 — Theorem 1: I/Os vs lower bound (flat ratio ⇒ optimal)",
		"N", "D", "B", "M", "IOs", "lower bound", "ratio")
	ns := []int{1 << 14, 1 << 16, 1 << 18}
	if s == Full {
		ns = append(ns, 1<<20)
	}
	for _, d := range []int{4, 16} {
		for _, n := range ns {
			p := pdm.Params{D: d, B: 32, M: 1 << 13}
			m := diskRun(p, core.DiskConfig{}, record.Uniform, n, 1)
			lb := core.LowerBoundIOs(n, p)
			t.AddRow(n, d, p.B, p.M, m.IOs, lb, float64(m.IOs)/lb)
		}
	}
	return t
}

// E1Ratios returns just the E1 ratios for assertion in tests.
func E1Ratios(s Scale) []float64 {
	var out []float64
	ns := []int{1 << 14, 1 << 16, 1 << 18}
	for _, n := range ns {
		p := pdm.Params{D: 4, B: 32, M: 1 << 13}
		m := diskRun(p, core.DiskConfig{}, record.Uniform, n, 1)
		out = append(out, float64(m.IOs)/core.LowerBoundIOs(n, p))
	}
	return out
}

// E2 — Theorem 1 (CPU bound): internal PRAM time divided by (N/P)·log N
// stays a flat constant as P grows.
func E2(s Scale) *stats.Table {
	t := stats.NewTable("E2 — Theorem 1: internal processing vs (N/P)·log N",
		"N", "P", "PRAM time", "(N/P)logN", "ratio")
	n := 1 << 16
	if s == Full {
		n = 1 << 18
	}
	ps := []int{1, 2, 4, 8, 16, 32}
	for _, p := range ps {
		m := diskRun(pdm.Params{D: 4, B: 32, M: 1 << 13},
			core.DiskConfig{P: p}, record.Uniform, n, 2)
		ref := float64(n) / float64(p) * stats.Lg(float64(n))
		t.AddRow(n, p, m.PRAMTime, ref, m.PRAMTime/ref)
	}
	return t
}

// E2Ratios returns PRAM-time/((N/P) log N) for the P sweep.
func E2Ratios() []float64 {
	var out []float64
	n := 1 << 16
	for _, p := range []int{1, 4, 16} {
		m := diskRun(pdm.Params{D: 4, B: 32, M: 1 << 13},
			core.DiskConfig{P: p}, record.Uniform, n, 2)
		out = append(out, m.PRAMTime/(float64(n)/float64(p)*stats.Lg(float64(n))))
	}
	return out
}

// E3 — Theorem 4: the worst bucket needs at most about twice the optimal
// number of parallel reads, on every workload including adversarial skew.
func E3(s Scale) *stats.Table {
	t := stats.NewTable("E3 — Theorem 4: bucket read balance (bound ≈ 2)",
		"workload", "N", "max read ratio", "max bucket frac")
	n := 1 << 16
	if s == Full {
		n = 1 << 18
	}
	for _, w := range record.AllWorkloads {
		m := diskRun(pdm.Params{D: 8, B: 32, M: 1 << 13},
			core.DiskConfig{}, w, n, 3)
		t.AddRow(w.String(), n, m.MaxBucketReadRatio, m.MaxBucketFrac)
	}
	return t
}

// E3MaxRatio returns the worst Theorem-4 ratio across workloads.
func E3MaxRatio() float64 {
	worst := 0.0
	for _, w := range record.AllWorkloads {
		m := diskRun(pdm.Params{D: 8, B: 32, M: 1 << 13},
			core.DiskConfig{}, w, 1<<15, 3)
		if m.MaxBucketReadRatio > worst {
			worst = m.MaxBucketReadRatio
		}
	}
	return worst
}

// E4 — Invariants 1 and 2: balance-state statistics per workload. The
// invariants themselves are asserted by the balance package's tests after
// every track; this table reports how hard the machinery had to work.
func E4(s Scale) *stats.Table {
	t := stats.NewTable("E4 — Invariants 1-2: balancing effort",
		"distribution", "tracks", "2s introduced", "rearrange moves", "carried", "extra write steps")
	nTracks := 400
	if s == Full {
		nTracks = 4000
	}
	type dist struct {
		name string
		pick func(rng *record.RNG, s int) int
	}
	dists := []dist{
		{"uniform", func(rng *record.RNG, s int) int { return rng.Intn(s) }},
		{"90% one bucket", func(rng *record.RNG, s int) int {
			if rng.Intn(10) != 0 {
				return 0
			}
			return rng.Intn(s)
		}},
		{"single bucket", func(rng *record.RNG, s int) int { return 0 }},
		{"two hot buckets", func(rng *record.RNG, s int) int { return rng.Intn(2) }},
	}
	const S, H = 8, 8
	for _, d := range dists {
		bl := balance.New(balance.Config{S: S, H: H})
		rng := record.NewRNG(4)
		var pending []int
		for i := 0; i < nTracks; i++ {
			track := pending
			pending = nil
			for len(track) < H {
				track = append(track, d.pick(rng, S))
			}
			_, carry := bl.PlaceTrack(track)
			for _, c := range carry {
				pending = append(pending, track[c])
			}
			if err := bl.CheckInvariant2(); err != nil {
				panic(err)
			}
		}
		st := bl.Stats()
		t.AddRow(d.name, st.Tracks, st.TwosIntroduced, st.RearrangeMoves, st.BlocksCarried, st.ExtraWriteSteps)
	}
	return t
}

// E5 — Theorem 5 / Lemma 1: all three matching algorithms reach the
// ⌈H'/4⌉ target; the deterministic one does so in O(T(H)) simulated time
// while greedy pays Θ(H') sequential time.
func E5(s Scale) *stats.Table {
	t := stats.NewTable("E5 — Theorem 5: partial matching quality and simulated time",
		"H'", "algorithm", "mean matched", "target ⌈H'/4⌉", "parallel time")
	hs := []int{8, 32, 128}
	if s == Full {
		hs = append(hs, 512)
	}
	trials := 20
	for _, h := range hs {
		for _, algo := range []string{"derandomized", "randomized", "greedy"} {
			rng := record.NewRNG(uint64(h))
			sum, timeSum := 0, 0.0
			target := 0
			for i := 0; i < trials; i++ {
				g := randomInvariantGraph(h, h/2, rng)
				target = g.Target()
				var res matching.Result
				switch algo {
				case "derandomized":
					res = matching.Derandomized(g, matching.PRAMCost)
				case "randomized":
					res = matching.Randomized(g, rng, matching.PRAMCost)
				case "greedy":
					res = matching.Greedy(g, matching.PRAMCost)
				}
				if !matching.Valid(g, res.Pairs) {
					panic("experiments: invalid matching")
				}
				sum += len(res.Pairs)
				timeSum += res.ParallelTime
			}
			t.AddRow(h, algo, float64(sum)/float64(trials), target, timeSum/float64(trials))
		}
	}
	return t
}

// randomInvariantGraph builds a matching instance satisfying Invariant 1.
func randomInvariantGraph(h, k int, rng *record.RNG) *matching.Graph {
	g := matching.NewGraph(h, k)
	need := (h + 1) / 2
	for i := 0; i < k; i++ {
		g.U[i] = i
		deg := need + rng.Intn(h-need+1)
		perm := make([]int, h)
		for j := range perm {
			perm[j] = j
		}
		for j := h - 1; j > 0; j-- {
			l := rng.Intn(j + 1)
			perm[j], perm[l] = perm[l], perm[j]
		}
		for _, v := range perm[:deg] {
			g.Adj[i][v] = true
		}
	}
	return g
}

// E10 — Figure 2a vs 2b: multiprocessor internal speedup at identical I/O
// counts (P = D processors vs a uniprocessor).
func E10(s Scale) *stats.Table {
	t := stats.NewTable("E10 — Figure 2: uniprocessor vs P=D multiprocessor",
		"D=P", "IOs (P=1)", "IOs (P=D)", "PRAM time (P=1)", "PRAM time (P=D)", "speedup")
	n := 1 << 16
	if s == Full {
		n = 1 << 18
	}
	for _, d := range []int{2, 4, 8, 16} {
		p := pdm.Params{D: d, B: 32, M: 1 << 13}
		m1 := diskRun(p, core.DiskConfig{P: 1}, record.Uniform, n, 5)
		md := diskRun(p, core.DiskConfig{P: d}, record.Uniform, n, 5)
		if m1.IOs != md.IOs {
			panic("experiments: P changed the I/O count")
		}
		t.AddRow(d, m1.IOs, md.IOs, m1.PRAMTime, md.PRAMTime, m1.PRAMTime/md.PRAMTime)
	}
	return t
}

// E11 — Section 1's striping discussion: as DB approaches M the striped
// merge pays the Θ(log(M/B)/log(M/DB)) factor while Balance Sort does not.
func E11(s Scale) *stats.Table {
	t := stats.NewTable("E11 — striping gap: I/O ratio to lower bound as DB/M grows",
		"D", "DB/M", "balancesort", "greedsort", "striped merge", "forecast merge", "striping factor log(M/B)/log(M/DB)")
	n := 1 << 17
	if s == Full {
		n = 1 << 19
	}
	b := 64
	m := 1 << 14
	for _, d := range []int{2, 4, 8, 16, 32} {
		p := pdm.Params{D: d, B: b, M: m}
		bm := diskRun(p, core.DiskConfig{}, record.Uniform, n, 6)
		lb := core.LowerBoundIOs(n, p)

		arr := pdm.New(p)
		off := writeInput(arr, n, 6)
		_, _, sm := baseline.StripedMergeSort(arr, off, n, 1)
		arr.Close()

		arr2 := pdm.New(p)
		off2 := writeInput(arr2, n, 6)
		_, _, fm := baseline.ForecastMergeSort(arr2, off2, n, 1)
		arr2.Close()

		arr3 := pdm.New(p)
		off3 := writeInput(arr3, n, 6)
		_, gm, err := baseline.GreedSort(arr3, off3, n, 1)
		if err != nil {
			panic(err)
		}
		arr3.Close()

		factor := stats.Lg(float64(m)/float64(b)) / stats.Lg(float64(m)/float64(d*b))
		t.AddRow(d, float64(d*b)/float64(m), float64(bm.IOs)/lb, float64(gm.IOs)/lb,
			float64(sm.IOs)/lb, float64(fm.IOs)/lb, factor)
	}
	return t
}

func writeInput(arr *pdm.Array, n int, seed uint64) int {
	p := arr.Params()
	recs := record.Generate(record.Uniform, n, seed)
	blocks := (n + p.B - 1) / p.B
	perDisk := (blocks + p.D - 1) / p.D
	off := arr.AllocStripe(perDisk)
	arr.WriteStripe(off, recs)
	return off
}
