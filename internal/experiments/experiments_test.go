package experiments

import (
	"strings"
	"testing"
)

// flatness asserts max/min of a positive ratio series stays under bound.
func flatness(t *testing.T, ratios []float64, bound float64, what string) {
	t.Helper()
	lo, hi := ratios[0], ratios[0]
	for _, r := range ratios {
		if r <= 0 {
			t.Fatalf("%s: non-positive ratio %v", what, r)
		}
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if hi/lo > bound {
		t.Fatalf("%s: ratios %v vary by %.2fx (> %.1fx) — not a flat constant", what, ratios, hi/lo, bound)
	}
}

func TestE1RatioFlat(t *testing.T) {
	// Theorem 1: measured I/Os / lower bound must be a constant across a
	// 16x sweep of N.
	flatness(t, E1Ratios(Quick), 2.5, "E1")
}

func TestE2RatioFlat(t *testing.T) {
	// Theorem 1 CPU: PRAM time over (N/P) log N flat across a 16x P sweep.
	flatness(t, E2Ratios(), 3.0, "E2")
}

func TestE3Theorem4(t *testing.T) {
	if worst := E3MaxRatio(); worst > 2.5 {
		t.Fatalf("Theorem 4 read balance %.2f exceeds ~2", worst)
	}
}

func TestE6RatioFlat(t *testing.T) {
	flatness(t, E6Ratios(), 4.0, "E6 (P-HMM log)")
}

func TestE7RatioFlat(t *testing.T) {
	flatness(t, E7Ratios(), 6.0, "E7 (P-HMM power)")
}

func TestE8RatioFlat(t *testing.T) {
	flatness(t, E8Ratios(), 6.0, "E8 (P-BT)")
}

func TestAllTablesRender(t *testing.T) {
	if testing.Short() {
		t.Skip("renders every experiment")
	}
	for i, tb := range All(Quick) {
		var sb strings.Builder
		tb.Render(&sb)
		if !strings.Contains(sb.String(), "|") {
			t.Fatalf("table %d rendered empty", i)
		}
	}
}

func TestE17SpeedupMonotone(t *testing.T) {
	sp := E17Speedups()
	if !(sp[0] == 1 && sp[1] > 1.5 && sp[2] > sp[1]) {
		t.Fatalf("hierarchy scaling not monotone: %v", sp)
	}
}
