package umh

import "testing"

func TestAccessCostGrowsWithDepth(t *testing.T) {
	m := Model{Rho: 2, Alpha: 1}
	shallow := m.AccessCost(0, 100)
	deep := m.AccessCost(100000, 100100)
	if deep <= shallow {
		t.Fatalf("deep access (%v) not costlier than shallow (%v)", deep, shallow)
	}
}

func TestAccessCostLinearInLength(t *testing.T) {
	m := Model{Rho: 2, Alpha: 1}
	c1 := m.AccessCost(1000, 1100)
	c2 := m.AccessCost(1000, 1200)
	if c2 <= c1 {
		t.Fatal("longer transfer not costlier")
	}
}

func TestEmptyRangeFree(t *testing.T) {
	m := Model{Rho: 4, Alpha: 0.5}
	if m.AccessCost(10, 10) != 0 {
		t.Fatal("empty range must cost 0")
	}
}

func TestLevelBoundaries(t *testing.T) {
	m := Model{Rho: 2, Alpha: 1}
	// Level capacities: 1, 4, 16, ... cumulative 1, 5, 21.
	if m.level(0) != 0 {
		t.Fatalf("level(0) = %d", m.level(0))
	}
	if m.level(3) != 1 {
		t.Fatalf("level(3) = %d", m.level(3))
	}
	if m.level(10) != 2 {
		t.Fatalf("level(10) = %d", m.level(10))
	}
}

func TestName(t *testing.T) {
	if (Model{Rho: 2, Alpha: 1}).Name() != "UMH" {
		t.Fatal("name")
	}
}
