// Package umh models the Uniform Memory Hierarchy of Alpern, Carter and
// Feig (reference [ACF]; Figure 3c of the paper). UMH_{α,ρ} consists of
// memory modules: level ℓ holds ρ^{2ℓ}… in the original formulation, ρ^ℓ
// blocks of ρ^ℓ records connected to level ℓ+1 by a bus of bandwidth
// b(ℓ) = ρ^{αℓ} records per cycle.
//
// The paper's Section 3 notes only that the Balance Sort techniques
// transform the randomized P-UMH algorithms of [ViN] into deterministic
// ones, and then concentrates on P-HMM and P-BT; this package accordingly
// provides a cost model faithful enough to run the same sorter on P-UMH
// (no theorem table references it). Transferring a contiguous range that
// ends at depth x must cross every bus between the base and x's level, so
// the model charges len/b(ℓ) on each bus crossed plus the blocks' cycle
// counts.
package umh

import "math"

// Model is the UMH_{α,ρ} access-cost model for internal/hier's machine.
type Model struct {
	// Rho is the aspect ratio between consecutive levels; must be >= 2.
	Rho float64
	// Alpha exponentiates the bus bandwidth b(ℓ) = Rho^(Alpha·ℓ).
	Alpha float64
}

// level returns the memory level containing depth x: the smallest ℓ with
// capacity Σ_{i<=ℓ} ρ^{2i} > x.
func (m Model) level(x float64) int {
	if x < 1 {
		return 0
	}
	cap := 0.0
	for l := 0; ; l++ {
		cap += math.Pow(m.Rho, 2*float64(l))
		if cap > x {
			return l
		}
	}
}

// AccessCost charges moving the range [lo, hi) to the base level: the
// range's n = hi-lo records cross the buses from level(hi) down to level 0,
// paying n/b(ℓ) on each, plus one cycle per record at the base.
func (m Model) AccessCost(lo, hi int) float64 {
	if hi <= lo {
		return 0
	}
	n := float64(hi - lo)
	top := m.level(float64(hi))
	total := n // base-level cycles
	for l := 0; l < top; l++ {
		b := math.Pow(m.Rho, m.Alpha*float64(l))
		if b < 1 {
			b = 1
		}
		total += n / b
	}
	return total
}

// Name labels the model.
func (m Model) Name() string { return "UMH" }
