package pram

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"balancesort/internal/record"
)

func TestChargeBrent(t *testing.T) {
	m := New(4)
	m.Charge(100, 3)
	if got := m.Time(); got != 100.0/4+3 {
		t.Fatalf("time = %v, want 28", got)
	}
	if m.Work() != 100 {
		t.Fatalf("work = %v, want 100", m.Work())
	}
	if m.Syncs() != 1 {
		t.Fatalf("syncs = %d, want 1", m.Syncs())
	}
}

func TestChargeNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative charge did not panic")
		}
	}()
	New(1).Charge(-1, 0)
}

func TestNewInvalidP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("P=0 did not panic")
		}
	}()
	New(0)
}

func TestReset(t *testing.T) {
	m := New(2)
	m.ChargeSort(100)
	m.Reset()
	if m.Time() != 0 || m.Work() != 0 || m.Syncs() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestChargeSortCost(t *testing.T) {
	m := New(1)
	m.ChargeSort(1024)
	want := 1024*10 + 10.0 // n log n / 1 + log n
	if math.Abs(m.Time()-want) > 1e-9 {
		t.Fatalf("sort cost = %v, want %v", m.Time(), want)
	}
	m.Reset()
	m.ChargeSort(1) // trivial sorts are free
	if m.Time() != 0 {
		t.Fatalf("sort of 1 item charged %v", m.Time())
	}
}

func TestMoreProcessorsNeverSlower(t *testing.T) {
	costs := make([]float64, 0, 4)
	for _, p := range []int{1, 4, 16, 64} {
		m := New(p)
		m.ChargeSort(1 << 16)
		m.ChargePartition(1<<16, 32)
		m.ChargeScan(1 << 16)
		costs = append(costs, m.Time())
	}
	for i := 1; i < len(costs); i++ {
		if costs[i] > costs[i-1] {
			t.Fatalf("P increase raised time: %v", costs)
		}
	}
}

func TestPrefixSums(t *testing.T) {
	m := New(2)
	prefix, total := m.PrefixSums([]int{3, 1, 4, 1, 5})
	wantPrefix := []int{0, 3, 4, 8, 9}
	if total != 14 {
		t.Fatalf("total = %d, want 14", total)
	}
	for i := range wantPrefix {
		if prefix[i] != wantPrefix[i] {
			t.Fatalf("prefix[%d] = %d, want %d", i, prefix[i], wantPrefix[i])
		}
	}
}

func TestSegmentedCount(t *testing.T) {
	m := New(2)
	counts := m.SegmentedCount([]int{0, 0, 1, 3, 3, 3}, 4)
	want := []int{2, 1, 0, 3}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
}

func TestSegmentedCountRejectsNonMonotone(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-monotone segments did not panic")
		}
	}()
	New(1).SegmentedCount([]int{1, 0}, 2)
}

func TestMonotoneRoute(t *testing.T) {
	m := New(2)
	src := []record.Record{{Key: 10}, {Key: 20}, {Key: 30}}
	dst := make([]record.Record, 6)
	m.MonotoneRoute(src, []int{1, 3, 4}, dst)
	if dst[1].Key != 10 || dst[3].Key != 20 || dst[4].Key != 30 {
		t.Fatalf("routing wrong: %v", dst)
	}
}

func TestMonotoneRouteRejectsNonMonotone(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-monotone ranks did not panic")
		}
	}()
	dst := make([]record.Record, 4)
	New(1).MonotoneRoute(make([]record.Record, 2), []int{2, 2}, dst)
}

func TestSortSmall(t *testing.T) {
	m := New(4)
	rs := record.Generate(record.Uniform, 100, 3)
	m.Sort(rs)
	if !record.IsSorted(rs) {
		t.Fatal("small sort failed")
	}
}

func TestSortLargeParallelPath(t *testing.T) {
	// Big enough to trigger the goroutine fan-out path even on multi-core
	// hosts.
	m := New(8)
	rs := record.Generate(record.Reversed, 64*grain, 4)
	want := append([]record.Record(nil), rs...)
	sort.Slice(want, func(i, j int) bool { return want[i].Less(want[j]) })
	m.Sort(rs)
	if !record.IsSorted(rs) {
		t.Fatal("parallel sort output not sorted")
	}
	for i := range rs {
		if rs[i] != want[i] {
			t.Fatalf("parallel sort mismatch at %d", i)
		}
	}
	if m.Time() <= 0 {
		t.Fatal("no time charged")
	}
}

func TestSortQuickProperty(t *testing.T) {
	f := func(keys []uint64, p8 uint8) bool {
		p := int(p8%8) + 1
		rs := make([]record.Record, len(keys))
		for i, k := range keys {
			rs[i] = record.Record{Key: k, Loc: uint64(i)}
		}
		m := New(p)
		m.Sort(rs)
		return record.IsSorted(rs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPartition(t *testing.T) {
	m := New(2)
	pivots := []record.Record{{Key: 10}, {Key: 20}, {Key: 30}}
	rs := []record.Record{
		{Key: 5}, {Key: 10}, {Key: 15}, {Key: 25}, {Key: 35},
	}
	got := m.Partition(rs, pivots)
	// bucket = number of pivots <= r: 5→0, 10→1 (pivot {10,0} equals it... pivot Loc=0, record Loc=0), 15→1, 25→2, 35→3.
	want := []int{0, 1, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("partition = %v, want %v", got, want)
		}
	}
}

func TestPartitionMatchesLinearScan(t *testing.T) {
	f := func(keys []uint64, nPivotRaw uint8) bool {
		rs := make([]record.Record, len(keys))
		for i, k := range keys {
			rs[i] = record.Record{Key: k % 64, Loc: uint64(i)}
		}
		np := int(nPivotRaw%5) + 1
		pivots := make([]record.Record, np)
		for i := range pivots {
			pivots[i] = record.Record{Key: uint64((i + 1) * 10), Loc: 0}
		}
		m := New(3)
		got := m.Partition(rs, pivots)
		for i, r := range rs {
			count := 0
			for _, p := range pivots {
				if p.Less(r) || p == r {
					count++
				}
			}
			if got[i] != count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionBucketsAreOrdered(t *testing.T) {
	// Records in bucket b must all be < records in bucket b+1.
	rs := record.Generate(record.Uniform, 5000, 11)
	sorted := append([]record.Record(nil), rs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	pivots := []record.Record{sorted[1000], sorted[2500], sorted[4000]}
	m := New(4)
	buckets := m.Partition(rs, pivots)
	maxOf := make(map[int]record.Record)
	minOf := make(map[int]record.Record)
	for i, b := range buckets {
		r := rs[i]
		if mx, ok := maxOf[b]; !ok || mx.Less(r) {
			maxOf[b] = r
		}
		if mn, ok := minOf[b]; !ok || r.Less(mn) {
			minOf[b] = r
		}
	}
	for b := 0; b < 3; b++ {
		hi, ok1 := maxOf[b]
		lo, ok2 := minOf[b+1]
		if ok1 && ok2 && lo.Less(hi) {
			t.Fatalf("bucket %d max %v >= bucket %d min %v", b, hi, b+1, lo)
		}
	}
}

func TestCRCWVariantDepths(t *testing.T) {
	e := New(1)
	c := NewVariant(1, CRCW)
	if c.Variant() != CRCW || e.Variant() != EREW {
		t.Fatal("variant accessors wrong")
	}
	n := 1 << 16
	e.ChargeScan(n)
	c.ChargeScan(n)
	// Same work (n) but CRCW's depth is log log n = 4 vs EREW's 16.
	if eT, cT := e.Time(), c.Time(); cT >= eT {
		t.Fatalf("CRCW scan (%v) not cheaper than EREW (%v)", cT, eT)
	}
	e.Reset()
	c.Reset()
	e.ChargeSort(n)
	c.ChargeSort(n)
	if eT, cT := e.Time(), c.Time(); cT >= eT {
		t.Fatalf("CRCW sort (%v) not cheaper than EREW (%v)", cT, eT)
	}
}

func TestCRCWStillSortsCorrectly(t *testing.T) {
	m := NewVariant(4, CRCW)
	rs := record.Generate(record.Reversed, 5000, 8)
	m.Sort(rs)
	if !record.IsSorted(rs) {
		t.Fatal("CRCW machine sort failed")
	}
}

func TestParallelMergeSortDirect(t *testing.T) {
	// workers() caps fan-out at GOMAXPROCS, so on a single-core host the
	// goroutine path never runs through Sort; exercise it directly.
	for _, w := range []int{2, 3, 5, 8} {
		for _, n := range []int{10, 1000, 4097, 10000} {
			rs := record.Generate(record.Zipf, n, uint64(w*n))
			want := append([]record.Record(nil), rs...)
			sort.Slice(want, func(i, j int) bool { return want[i].Less(want[j]) })
			parallelMergeSort(rs, w)
			for i := range want {
				if rs[i] != want[i] {
					t.Fatalf("w=%d n=%d: mismatch at %d", w, n, i)
				}
			}
		}
	}
}

func TestMergeInto(t *testing.T) {
	a := []record.Record{{Key: 1}, {Key: 3}, {Key: 5}}
	b := []record.Record{{Key: 2}, {Key: 4}}
	out := make([]record.Record, 5)
	mergeInto(a, b, out)
	for i, want := range []uint64{1, 2, 3, 4, 5} {
		if out[i].Key != want {
			t.Fatalf("merge out = %v", out)
		}
	}
	// One side empty.
	out2 := make([]record.Record, 3)
	mergeInto(a, nil, out2)
	if out2[2].Key != 5 {
		t.Fatalf("one-sided merge = %v", out2)
	}
}

func TestChargeMergeAndP(t *testing.T) {
	m := New(4)
	if m.P() != 4 {
		t.Fatalf("P = %d", m.P())
	}
	m.ChargeMerge(0) // free
	if m.Time() != 0 {
		t.Fatal("empty merge charged")
	}
	m.ChargeMerge(1024)
	if m.Time() != 1024.0/4+10 {
		t.Fatalf("merge charge = %v", m.Time())
	}
}
