package pram

import "balancesort/internal/record"

// SortRadix sorts rs by the effective key (Key, Loc) with a stable LSD
// radix sort over 16-bit digits — the integer-sorting path Section 5 of
// the paper invokes (Rajasekaran–Reif) to hit the Θ((N/P) log N) internal
// bound when keys are machine words. Each pass is a counting sort; the
// charge per pass is one scan's work at prefix depth, matching the
// parallel counting-sort schedule (per-processor histograms, a prefix over
// the 2^b counters, and a stable scatter).
func (m *Machine) SortRadix(rs []record.Record) {
	n := len(rs)
	if n <= 1 {
		return
	}
	const digitBits = 16
	const buckets = 1 << digitBits
	buf := make([]record.Record, n)
	src, dst := rs, buf

	// LSD over Loc (low significance) then Key: 4 + 4 passes of 16 bits.
	pass := func(key func(record.Record) uint64, shift uint) {
		var counts [buckets]int
		for _, r := range src {
			counts[(key(r)>>shift)&(buckets-1)]++
		}
		total := 0
		for d := 0; d < buckets; d++ {
			c := counts[d]
			counts[d] = total
			total += c
		}
		for _, r := range src {
			d := (key(r) >> shift) & (buckets - 1)
			dst[counts[d]] = r
			counts[d]++
		}
		src, dst = dst, src
		// One counting-sort pass: n work to count, 2^b prefix, n scatter.
		m.Charge(float64(2*n+buckets), lg(float64(n))+lg(float64(buckets)))
	}
	locKey := func(r record.Record) uint64 { return r.Loc }
	keyKey := func(r record.Record) uint64 { return r.Key }
	for shift := uint(0); shift < 64; shift += digitBits {
		pass(locKey, shift)
	}
	for shift := uint(0); shift < 64; shift += digitBits {
		pass(keyKey, shift)
	}
	// Eight passes leave the result back in rs (even number of swaps).
	if &src[0] != &rs[0] {
		copy(rs, src)
	}
}
