// Package pram models the P-processor EREW PRAM that interconnects the
// CPUs (parallel disk model, Figure 2b) or the base memory levels of the
// hierarchies (Figure 4). It plays two roles:
//
//  1. Cost accounting. The paper's internal-processing bounds (Theorem 1:
//     Θ((N/P) log N); Theorems 2-3: the T(H) terms) are stated in PRAM
//     steps. Machine accrues parallel time under Brent's scheduling
//     principle, time = work/P + depth, with the work/depth of each
//     primitive charged at the complexity of the algorithm the paper cites
//     (Cole's EREW merge sort for sorting, prefix/segmented-prefix scans,
//     monotone routing per Leighton §3.4.3).
//
//  2. Real execution. The primitives actually compute their results (with
//     goroutine fan-out for large inputs), so the simulated costs are
//     attached to genuinely performed work.
package pram

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"balancesort/internal/record"
)

// Variant selects the PRAM's concurrency rules. Section 5 notes that for
// P up to M with log(M/B) = o(log M) the algorithm needs a CRCW PRAM; the
// CRCW variant charges the classical stronger primitives (Θ(log log n)
// semigroup operations, Θ(log n / log log n) comparison sorting) so that
// regime can be measured too.
type Variant int

const (
	// EREW is the exclusive-read/exclusive-write PRAM (the default).
	EREW Variant = iota
	// CRCW is the concurrent-read/concurrent-write PRAM.
	CRCW
)

// Machine is a PRAM cost accumulator with P processors.
type Machine struct {
	mu      sync.Mutex
	p       int
	variant Variant
	time    float64 // parallel steps, by Brent's principle
	work    float64 // total operations
	syncs   int64   // number of charged primitives (each implies a barrier)
}

// New returns an EREW PRAM cost model with p processors. p must be >= 1.
func New(p int) *Machine {
	return NewVariant(p, EREW)
}

// NewVariant returns a PRAM cost model of the given variant.
func NewVariant(p int, v Variant) *Machine {
	if p < 1 {
		panic("pram: P must be >= 1")
	}
	return &Machine{p: p, variant: v}
}

// Variant returns the machine's concurrency rules.
func (m *Machine) Variant() Variant { return m.variant }

// scanDepth is the critical path of a prefix/route-style primitive on n
// items: log n on EREW, log log n on CRCW (Valiant-style semigroup).
func (m *Machine) scanDepth(n float64) float64 {
	if m.variant == CRCW {
		return lg(lg(n))
	}
	return lg(n)
}

// sortDepth is the critical path of sorting n items: log n on EREW (Cole),
// log n / log log n on CRCW (AKS-style with concurrent access).
func (m *Machine) sortDepth(n float64) float64 {
	if m.variant == CRCW {
		d := lg(n) / lg(lg(n))
		if d < 1 {
			return 1
		}
		return d
	}
	return lg(n)
}

// P returns the processor count.
func (m *Machine) P() int { return m.p }

// Charge accrues one primitive with the given total work and critical-path
// depth: parallel time increases by work/P + depth.
func (m *Machine) Charge(work, depth float64) {
	if work < 0 || depth < 0 {
		panic("pram: negative charge")
	}
	m.mu.Lock()
	m.work += work
	m.time += work/float64(m.p) + depth
	m.syncs++
	m.mu.Unlock()
}

// Time returns the accumulated parallel time in PRAM steps.
func (m *Machine) Time() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.time
}

// Work returns the accumulated total work.
func (m *Machine) Work() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.work
}

// Syncs returns the number of charged primitives.
func (m *Machine) Syncs() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.syncs
}

// Reset zeroes the accumulated time and work.
func (m *Machine) Reset() {
	m.mu.Lock()
	m.time, m.work, m.syncs = 0, 0, 0
	m.mu.Unlock()
}

// lg returns the paper's log x = max(1, log2 x).
func lg(x float64) float64 {
	if x <= 2 {
		return 1
	}
	return math.Log2(x)
}

// ChargeSort charges an EREW sort of n items at Cole's merge-sort cost:
// work n log n, depth log n.
func (m *Machine) ChargeSort(n int) {
	if n <= 1 {
		return
	}
	fn := float64(n)
	m.Charge(fn*lg(fn), m.sortDepth(fn))
}

// ChargeScan charges a (segmented) prefix operation on n items: work n,
// depth log n.
func (m *Machine) ChargeScan(n int) {
	if n == 0 {
		return
	}
	fn := float64(n)
	m.Charge(fn, m.scanDepth(fn))
}

// ChargeRoute charges a monotone routing of n items (Leighton §3.4.3):
// work n, depth log n.
func (m *Machine) ChargeRoute(n int) {
	if n == 0 {
		return
	}
	fn := float64(n)
	m.Charge(fn, m.scanDepth(fn))
}

// ChargePartition charges partitioning n records among s sorted partition
// elements by parallel binary search: work n log s, depth log s.
func (m *Machine) ChargePartition(n, s int) {
	if n == 0 || s <= 1 {
		return
	}
	fn, fs := float64(n), float64(s)
	m.Charge(fn*lg(fs), lg(fs))
}

// ChargeMerge charges a parallel two-way merge of n total items: work n,
// depth log n.
func (m *Machine) ChargeMerge(n int) {
	if n == 0 {
		return
	}
	fn := float64(n)
	m.Charge(fn, m.scanDepth(fn))
}

// --- Executed primitives -------------------------------------------------

// grain is the minimum per-goroutine slice for real fan-out; below it the
// sequential path is faster on any machine.
const grain = 4096

// workers returns how many goroutines to actually spawn for n items on a
// machine with P model processors: the model cost is always charged for P,
// but real fan-out is capped by the host.
func (m *Machine) workers(n int) int {
	w := m.p
	if hc := runtime.GOMAXPROCS(0); w > hc {
		w = hc
	}
	if w > n/grain {
		w = n / grain
	}
	if w < 1 {
		w = 1
	}
	return w
}

// PrefixSums computes the exclusive prefix sums of xs and returns them with
// the grand total. Charges one scan.
func (m *Machine) PrefixSums(xs []int) (prefix []int, total int) {
	m.ChargeScan(len(xs))
	prefix = make([]int, len(xs))
	for i, x := range xs {
		prefix[i] = total
		total += x
	}
	return prefix, total
}

// SegmentedCount takes per-item segment IDs (nondecreasing) and returns the
// size of each of nseg segments. Charges one scan. This is the "segmented
// prefix operation for each unique key" of Section 4.2.
func (m *Machine) SegmentedCount(seg []int, nseg int) []int {
	m.ChargeScan(len(seg))
	counts := make([]int, nseg)
	for i, s := range seg {
		if s < 0 || s >= nseg {
			panic("pram: segment id out of range")
		}
		if i > 0 && seg[i] < seg[i-1] {
			panic("pram: segment ids not monotone")
		}
		counts[s]++
	}
	return counts
}

// MonotoneRoute places src[i] at dst[rank[i]], where rank is strictly
// increasing (a monotone routing). Charges one route.
func (m *Machine) MonotoneRoute(src []record.Record, rank []int, dst []record.Record) {
	if len(src) != len(rank) {
		panic("pram: rank length mismatch")
	}
	m.ChargeRoute(len(src))
	prev := -1
	for i, r := range rank {
		if r <= prev {
			panic("pram: ranks not monotone")
		}
		prev = r
		dst[r] = src[i]
	}
}

// Sort sorts rs in place and charges Cole's EREW merge-sort cost. For large
// inputs it runs a real parallel merge sort across workers.
func (m *Machine) Sort(rs []record.Record) {
	m.ChargeSort(len(rs))
	w := m.workers(len(rs))
	if w <= 1 {
		sort.Slice(rs, func(i, j int) bool { return rs[i].Less(rs[j]) })
		return
	}
	parallelMergeSort(rs, w)
}

// parallelMergeSort splits rs into w chunks, sorts them concurrently, and
// merges pairwise.
func parallelMergeSort(rs []record.Record, w int) {
	n := len(rs)
	chunks := make([][]record.Record, 0, w)
	for i := 0; i < w; i++ {
		lo, hi := i*n/w, (i+1)*n/w
		if lo < hi {
			chunks = append(chunks, rs[lo:hi])
		}
	}
	var wg sync.WaitGroup
	for _, c := range chunks {
		wg.Add(1)
		go func(c []record.Record) {
			defer wg.Done()
			sort.Slice(c, func(i, j int) bool { return c[i].Less(c[j]) })
		}(c)
	}
	wg.Wait()
	// Pairwise merge rounds.
	buf := make([]record.Record, n)
	for len(chunks) > 1 {
		next := make([][]record.Record, 0, (len(chunks)+1)/2)
		var mwg sync.WaitGroup
		off := 0
		for i := 0; i < len(chunks); i += 2 {
			if i+1 == len(chunks) {
				next = append(next, chunks[i])
				continue
			}
			a, b := chunks[i], chunks[i+1]
			out := buf[off : off+len(a)+len(b)]
			off += len(a) + len(b)
			next = append(next, out)
			mwg.Add(1)
			go func(a, b, out []record.Record) {
				defer mwg.Done()
				mergeInto(a, b, out)
			}(a, b, out)
		}
		mwg.Wait()
		// Copy merged data back into rs's storage so slices stay aligned.
		pos := 0
		for i, c := range next {
			target := rs[pos : pos+len(c)]
			if &c[0] != &target[0] {
				copy(target, c)
				next[i] = target
			}
			pos += len(c)
		}
		chunks = next
	}
}

func mergeInto(a, b, out []record.Record) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if b[j].Less(a[i]) {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	copy(out[k:], a[i:])
	copy(out[k+len(a)-i:], b[j:])
}

// Partition assigns each record of rs its bucket among the sorted pivots:
// bucket(r) = number of pivots <= r, so records below pivots[0] map to 0 and
// records >= pivots[len-1] map to len(pivots). It charges a parallel binary
// search and runs fanned out for large inputs.
func (m *Machine) Partition(rs []record.Record, pivots []record.Record) []int {
	m.ChargePartition(len(rs), len(pivots)+1)
	out := make([]int, len(rs))
	w := m.workers(len(rs))
	if w <= 1 {
		for i, r := range rs {
			out[i] = bucketOf(r, pivots)
		}
		return out
	}
	var wg sync.WaitGroup
	n := len(rs)
	for t := 0; t < w; t++ {
		lo, hi := t*n/w, (t+1)*n/w
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = bucketOf(rs[i], pivots)
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// bucketOf returns the number of pivots <= r by binary search.
func bucketOf(r record.Record, pivots []record.Record) int {
	lo, hi := 0, len(pivots)
	for lo < hi {
		mid := (lo + hi) / 2
		if pivots[mid].Less(r) || pivots[mid] == r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
