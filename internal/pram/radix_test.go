package pram

import (
	"sort"
	"testing"
	"testing/quick"

	"balancesort/internal/record"
)

func TestSortRadixMatchesComparison(t *testing.T) {
	for _, w := range record.AllWorkloads {
		rs := record.Generate(w, 5000, 17)
		want := append([]record.Record(nil), rs...)
		sort.Slice(want, func(i, j int) bool { return want[i].Less(want[j]) })
		m := New(4)
		m.SortRadix(rs)
		for i := range want {
			if rs[i] != want[i] {
				t.Fatalf("%v: radix mismatch at %d", w, i)
			}
		}
	}
}

func TestSortRadixTiny(t *testing.T) {
	m := New(1)
	m.SortRadix(nil)
	one := []record.Record{{Key: 5}}
	m.SortRadix(one)
	if one[0].Key != 5 {
		t.Fatal("singleton mangled")
	}
	two := []record.Record{{Key: 2, Loc: 0}, {Key: 1, Loc: 1}}
	m.SortRadix(two)
	if two[0].Key != 1 {
		t.Fatal("pair not sorted")
	}
}

func TestSortRadixDuplicateKeysOrderedByLoc(t *testing.T) {
	rs := record.Generate(record.FewDistinct, 3000, 21)
	m := New(2)
	m.SortRadix(rs)
	for i := 1; i < len(rs); i++ {
		if rs[i].Key == rs[i-1].Key && rs[i].Loc < rs[i-1].Loc {
			t.Fatalf("loc order broken at %d", i)
		}
	}
	if !record.IsSorted(rs) {
		t.Fatal("not sorted")
	}
}

func TestSortRadixQuick(t *testing.T) {
	f := func(keys []uint64) bool {
		rs := make([]record.Record, len(keys))
		for i, k := range keys {
			rs[i] = record.Record{Key: k, Loc: uint64(i)}
		}
		m := New(3)
		m.SortRadix(rs)
		return record.IsSorted(rs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortRadixChargesWork(t *testing.T) {
	m := New(1)
	rs := record.Generate(record.Uniform, 4096, 5)
	m.SortRadix(rs)
	if m.Time() <= 0 || m.Syncs() != 8 {
		t.Fatalf("radix charged time=%v syncs=%d, want 8 passes", m.Time(), m.Syncs())
	}
}

func TestSortRadixExtremeValues(t *testing.T) {
	rs := []record.Record{
		{Key: ^uint64(0), Loc: ^uint64(0)},
		{Key: 0, Loc: 0},
		{Key: ^uint64(0), Loc: 0},
		{Key: 0, Loc: ^uint64(0)},
		{Key: 1 << 63, Loc: 42},
	}
	m := New(2)
	m.SortRadix(rs)
	if !record.IsSorted(rs) {
		t.Fatalf("extreme values unsorted: %v", rs)
	}
}
