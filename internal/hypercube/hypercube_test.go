package hypercube

import (
	"sort"
	"testing"
	"testing/quick"

	"balancesort/internal/record"
)

func TestNewRejectsNonPowerOfTwo(t *testing.T) {
	for _, h := range []int{0, 3, 6, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("H=%d accepted", h)
				}
			}()
			New(h)
		}()
	}
}

func TestDims(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 8: 3, 64: 6}
	for h, d := range cases {
		if n := New(h); n.Dims() != d {
			t.Fatalf("Dims(%d) = %d, want %d", h, n.Dims(), d)
		}
	}
}

func TestBitonicSortSorts(t *testing.T) {
	for _, h := range []int{1, 2, 4, 16, 64, 256} {
		n := New(h)
		regs := record.Generate(record.Uniform, h, uint64(h))
		n.BitonicSort(regs)
		if !record.IsSorted(regs) {
			t.Fatalf("H=%d: bitonic output not sorted", h)
		}
	}
}

func TestBitonicSortStepCount(t *testing.T) {
	// The measured step count must equal the closed form log H (log H+1)/2
	// — this pins the Θ(log² H) cost model to the executed network.
	for _, h := range []int{2, 8, 64, 1024} {
		n := New(h)
		regs := record.Generate(record.Uniform, h, 3)
		n.BitonicSort(regs)
		if n.Steps() != BitonicStepCount(h) {
			t.Fatalf("H=%d: %d steps, closed form %d", h, n.Steps(), BitonicStepCount(h))
		}
	}
}

func TestBitonicSortQuick(t *testing.T) {
	f := func(keys [64]uint64) bool {
		n := New(64)
		regs := make([]record.Record, 64)
		for i, k := range keys {
			regs[i] = record.Record{Key: k, Loc: uint64(i)}
		}
		n.BitonicSort(regs)
		return record.IsSorted(regs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBitonicSortWrongArityPanics(t *testing.T) {
	n := New(8)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong arity accepted")
		}
	}()
	n.BitonicSort(make([]record.Record, 7))
}

func TestSortDistributed(t *testing.T) {
	for _, per := range []int{1, 4, 32} {
		h := 16
		n := New(h)
		recs := record.Generate(record.Reversed, h*per, uint64(per))
		want := append([]record.Record(nil), recs...)
		sort.Slice(want, func(i, j int) bool { return want[i].Less(want[j]) })
		n.SortDistributed(recs)
		if !record.IsSorted(recs) {
			t.Fatalf("per=%d: distributed sort failed", per)
		}
		for i := range want {
			if recs[i] != want[i] {
				t.Fatalf("per=%d: mismatch at %d", per, i)
			}
		}
		// Communication steps are the same schedule as one-per-node.
		if n.Steps() != BitonicStepCount(h) {
			t.Fatalf("per=%d: %d steps, want %d", per, n.Steps(), BitonicStepCount(h))
		}
	}
}

func TestSortDistributedRejectsRagged(t *testing.T) {
	n := New(8)
	defer func() {
		if recover() == nil {
			t.Fatal("ragged distribution accepted")
		}
	}()
	n.SortDistributed(make([]record.Record, 12))
}

func TestRoutePermutation(t *testing.T) {
	h := 32
	n := New(h)
	regs := record.Generate(record.Uniform, h, 5)
	rng := record.NewRNG(6)
	dest := make([]int, h)
	for i := range dest {
		dest[i] = i
	}
	for i := h - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		dest[i], dest[j] = dest[j], dest[i]
	}
	out := n.Route(regs, dest)
	for i := range regs {
		if out[dest[i]] != regs[i] {
			t.Fatalf("record %d did not arrive at %d", i, dest[i])
		}
	}
}

func TestRouteQuick(t *testing.T) {
	f := func(seed uint64) bool {
		h := 16
		n := New(h)
		regs := record.Generate(record.Uniform, h, seed)
		rng := record.NewRNG(seed ^ 1)
		dest := make([]int, h)
		for i := range dest {
			dest[i] = i
		}
		for i := h - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			dest[i], dest[j] = dest[j], dest[i]
		}
		out := n.Route(regs, dest)
		for i := range regs {
			if out[dest[i]] != regs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteRejectsNonPermutation(t *testing.T) {
	n := New(4)
	defer func() {
		if recover() == nil {
			t.Fatal("non-permutation accepted")
		}
	}()
	n.Route(make([]record.Record, 4), []int{0, 0, 1, 2})
}

func TestSharesortCostGrowsSlowerThanBitonic(t *testing.T) {
	// The Sharesort charge log H (log log H)² is asymptotically below the
	// bitonic log² H, but its constant only wins beyond astronomically
	// large H; what must hold at simulation scales is the trend — the
	// ratio Sharesort/bitonic strictly decreases as H grows.
	prev := 1e18
	for _, h := range []int{1 << 10, 1 << 16, 1 << 24, 1 << 40} {
		r := SharesortCost(h) / float64(BitonicStepCount(h))
		if r >= prev {
			t.Fatalf("H=2^%d: ratio %v did not decrease (prev %v)", h, r, prev)
		}
		prev = r
	}
}

func TestResetCost(t *testing.T) {
	n := New(8)
	regs := record.Generate(record.Uniform, 8, 7)
	n.BitonicSort(regs)
	n.ResetCost()
	if n.Steps() != 0 || n.Compares() != 0 {
		t.Fatal("reset incomplete")
	}
}
