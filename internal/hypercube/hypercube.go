// Package hypercube simulates the H-processor hypercube interconnect of
// Theorems 1-3's "hypercube" variants. It is a real network simulator, not
// just a cost formula: nodes hold records, communication happens as
// synchronous compare-exchange or register-exchange steps along one cube
// dimension at a time, and the step counter is the model time.
//
// Two sorting procedures run on it:
//
//   - BitonicSort — Batcher's bitonic network mapped dimension-wise onto
//     the cube: exactly log H (log H + 1)/2 compare-exchange steps for one
//     record per node, the classical deterministic Θ(log² H).
//   - SortDistributed — n >= H records, n/H per node: local sort plus
//     bitonic merges of whole subsequences, the standard distributed
//     formulation used when a memoryload is sorted across the base levels.
//
// The paper charges its hypercube bounds at T(H) = O(log H (log log H)²)
// via Cypher–Plaxton Sharesort, which is far too intricate to execute here;
// SharesortCost exposes that charge, and the package tests pin the measured
// bitonic step count to its closed form so the two cost models bracketing
// T(H) (bitonic above, Sharesort below) are both available and validated.
package hypercube

import (
	"fmt"
	"math"
	"sort"

	"balancesort/internal/record"
)

// Network is a synchronous hypercube of H = 2^dims nodes.
type Network struct {
	h    int
	dims int

	steps    int64 // parallel communication steps
	compares int64 // total compare-exchanges performed
}

// New creates a hypercube with h nodes; h must be a power of two.
func New(h int) *Network {
	if h < 1 || h&(h-1) != 0 {
		panic(fmt.Sprintf("hypercube: %d nodes is not a power of two", h))
	}
	dims := 0
	for 1<<dims < h {
		dims++
	}
	return &Network{h: h, dims: dims}
}

// H returns the node count.
func (n *Network) H() int { return n.h }

// Dims returns the cube dimension log2 H.
func (n *Network) Dims() int { return n.dims }

// Steps returns the parallel communication steps performed so far.
func (n *Network) Steps() int64 { return n.steps }

// Compares returns the total compare-exchange operations performed.
func (n *Network) Compares() int64 { return n.compares }

// ResetCost zeroes the counters.
func (n *Network) ResetCost() { n.steps, n.compares = 0, 0 }

// compareExchange performs one synchronous step along dimension d: every
// node pair (i, i^2^d) orders its records so the lower-indexed node keeps
// the smaller record iff ascending(i) is true.
func (n *Network) compareExchange(regs []record.Record, d int, ascending func(node int) bool) {
	bit := 1 << d
	for i := 0; i < n.h; i++ {
		j := i ^ bit
		if j < i {
			continue // each pair once
		}
		n.compares++
		wantLowFirst := ascending(i)
		inOrder := !regs[j].Less(regs[i])
		if inOrder != wantLowFirst {
			regs[i], regs[j] = regs[j], regs[i]
		}
	}
	n.steps++
}

// BitonicSort sorts exactly H records, one per node, in place. It performs
// dims·(dims+1)/2 compare-exchange steps — the Θ(log² H) bitonic bound.
func (n *Network) BitonicSort(regs []record.Record) {
	if len(regs) != n.h {
		panic(fmt.Sprintf("hypercube: %d records for %d nodes", len(regs), n.h))
	}
	// Stage k builds sorted runs of length 2^(k+1); within a stage the
	// merge walks dimensions k..0. A node's direction flips with bit k+1
	// of its index, producing the bitonic pattern.
	for k := 0; k < n.dims; k++ {
		for d := k; d >= 0; d-- {
			n.compareExchange(regs, d, func(node int) bool {
				return node&(1<<(k+1)) == 0
			})
		}
	}
}

// BitonicStepCount returns the closed-form step count of BitonicSort on an
// H-node cube: log H (log H + 1)/2.
func BitonicStepCount(h int) int64 {
	d := 0
	for 1<<d < h {
		d++
	}
	return int64(d * (d + 1) / 2)
}

// SortDistributed sorts len(recs) >= H records distributed n/H per node
// (node i holds records i·n/H..): each node sorts locally (charged as one
// local phase of n/H log(n/H) comparisons spread over the nodes), then the
// bitonic schedule runs with compare-split steps exchanging whole
// sub-arrays. Steps counts the communication phases.
func (n *Network) SortDistributed(recs []record.Record) {
	total := len(recs)
	if total%n.h != 0 {
		panic("hypercube: record count must be a multiple of H")
	}
	per := total / n.h
	if per == 0 {
		return
	}
	node := func(i int) []record.Record { return recs[i*per : (i+1)*per] }
	for i := 0; i < n.h; i++ {
		chunk := node(i)
		sort.Slice(chunk, func(a, b int) bool { return chunk[a].Less(chunk[b]) })
	}
	n.compares += int64(float64(total) * math.Max(1, math.Log2(float64(per))))

	buf := make([]record.Record, 2*per)
	compareSplit := func(i, j int, lowToI bool) {
		a, b := node(i), node(j)
		copy(buf, a)
		copy(buf[per:], b)
		mergeRecords(buf, a, b)
		if lowToI {
			copy(a, buf[:per])
			copy(b, buf[per:])
		} else {
			copy(b, buf[:per])
			copy(a, buf[per:])
		}
		n.compares += int64(2 * per)
	}
	for k := 0; k < n.dims; k++ {
		for d := k; d >= 0; d-- {
			bit := 1 << d
			for i := 0; i < n.h; i++ {
				j := i ^ bit
				if j < i {
					continue
				}
				compareSplit(i, j, i&(1<<(k+1)) == 0)
			}
			n.steps++
		}
	}
}

// mergeRecords merges the (sorted) halves of buf — buf holds a||b already.
func mergeRecords(buf, a, b []record.Record) {
	tmp := make([]record.Record, len(buf))
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if buf[len(a)+j].Less(buf[i]) {
			tmp[k] = buf[len(a)+j]
			j++
		} else {
			tmp[k] = buf[i]
			i++
		}
		k++
	}
	copy(tmp[k:], buf[i:len(a)])
	copy(tmp[k+len(a)-i:], buf[len(a)+j:])
	copy(buf, tmp)
}

// Route delivers regs[i] to node dest[i] for a permutation dest, by the
// sorting-based routing the paper itself uses ("sorting according to
// destination address and doing monotone routing", Section 4.1): packets
// are bitonic-sorted by destination, which for a permutation places the
// packet destined for node k exactly at node k. Greedy dimension-ordered
// routing is *not* used because it can collide on general permutations.
func (n *Network) Route(regs []record.Record, dest []int) []record.Record {
	if len(regs) != n.h || len(dest) != n.h {
		panic("hypercube: route arity mismatch")
	}
	seen := make([]bool, n.h)
	for _, d := range dest {
		if d < 0 || d >= n.h || seen[d] {
			panic("hypercube: dest is not a permutation")
		}
		seen[d] = true
	}
	// Sort packets by destination with the same bitonic schedule the
	// record sort uses; keys are the destinations, payloads follow.
	keys := make([]record.Record, n.h)
	payload := make([]record.Record, n.h)
	for i := range keys {
		keys[i] = record.Record{Key: uint64(dest[i]), Loc: uint64(i)}
		payload[i] = regs[i]
	}
	// compareExchange on a parallel pair of arrays: re-run the schedule
	// manually so payloads travel with keys.
	swapPair := func(i, j int) {
		keys[i], keys[j] = keys[j], keys[i]
		payload[i], payload[j] = payload[j], payload[i]
	}
	for k := 0; k < n.dims; k++ {
		for d := k; d >= 0; d-- {
			bit := 1 << d
			for i := 0; i < n.h; i++ {
				j := i ^ bit
				if j < i {
					continue
				}
				n.compares++
				wantLowFirst := i&(1<<(k+1)) == 0
				inOrder := !keys[j].Less(keys[i])
				if inOrder != wantLowFirst {
					swapPair(i, j)
				}
			}
			n.steps++
		}
	}
	for i := range keys {
		if int(keys[i].Key) != i {
			panic("hypercube: routing did not converge")
		}
	}
	return payload
}

// SharesortCost is the Cypher–Plaxton deterministic hypercube sorting time
// the paper charges: Θ(log H (log log H)²).
func SharesortCost(h int) float64 {
	l := math.Max(1, math.Log2(float64(h)))
	ll := math.Max(1, math.Log2(l))
	return l * ll * ll
}
