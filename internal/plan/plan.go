// Package plan is the engine-selection subsystem: a cost-model planner
// that, given the sort geometry (N records of a known width over D disks,
// B-record blocks, M records of memory) and the measured or assumed
// per-disk throughput, predicts the pass count, parallel I/O count, and
// wall-clock of every available engine and picks the cheapest feasible
// one. It is the "engineering over theory" layer of Rahn/Sanders/Singler
// ("Scalable Distributed-Memory External Sorting", PAPERS.md) applied to
// this repository's single-node hot path: the asymptotically optimal
// algorithm is not always the fastest at a concrete geometry, so measure
// the constants and choose per instance.
//
// The model is deliberately simple and closed-form. Every external engine
// moves the dataset passes × 2 times (read + write) in ⌈N/DB⌉-I/O sweeps;
// engines differ in how many passes their fan-in/fan-out affords and in a
// calibrated per-engine efficiency factor (partial-width writes, sidecar
// and bookkeeping traffic) fitted against the committed BENCH_sort.json:
//
//   - balancesort:  fan-out S = ⌊(M/B)^{1/4}⌋ per distribution pass,
//     memoryload base case; factor ≈ 2.0 (tracks, partial-width bucket
//     writes, partition-element sampling).
//   - stripedmerge: fan-in M/(2DB); factor 1.0 (every I/O full-width).
//   - guidesort:    fan-in M/(8B); factor ≈ 1.15 (minima sidecars, guide
//     reads, occasional lone demand fetches).
//   - inmem:        one read + one write pass, only when N fits a
//     half-memory load.
//
// Predictions divide bytes moved by the aggregate disk bandwidth, so a
// measured Throughput (e.g. derived from diskio metrics of a prior run)
// changes which engine wins on hardware where reads and writes differ.
package plan

import (
	"fmt"
	"math"
	"sort"

	"balancesort/internal/guidesort"
	"balancesort/internal/pdm"
)

// Engine names, shared with the root facade's Config.Engine.
const (
	EngineBalanceSort  = "balancesort"
	EngineGuideSort    = "guidesort"
	EngineStripedMerge = "stripedmerge"
	EngineInMem        = "inmem"
)

// Engines lists every engine the planner ranks, in preference order for
// cost ties (cheapest bookkeeping first).
var Engines = []string{EngineInMem, EngineStripedMerge, EngineGuideSort, EngineBalanceSort}

// Geometry is the instance the planner decides for.
type Geometry struct {
	// N is the record count; D, B, M the parallel-disk-model parameters.
	N int `json:"n"`
	D int `json:"d"`
	B int `json:"b"`
	M int `json:"m"`
	// RecordBytes is the on-disk width of one record (0 = 16).
	RecordBytes int `json:"record_bytes,omitempty"`
}

// Throughput is the assumed or measured per-disk bandwidth. Zero fields
// take DefaultThroughput's values. Derive a measured one from diskio
// metrics with Measure.
type Throughput struct {
	// ReadBytesPerSec and WriteBytesPerSec are per-disk, not aggregate.
	ReadBytesPerSec  float64 `json:"read_bps,omitempty"`
	WriteBytesPerSec float64 `json:"write_bps,omitempty"`
}

// DefaultThroughput is the planner's assumption when nothing was measured:
// a commodity disk doing 200 MB/s either way. With symmetric defaults the
// ranking reduces to predicted I/O volume, which is what the model-only
// tests pin.
var DefaultThroughput = Throughput{ReadBytesPerSec: 200 << 20, WriteBytesPerSec: 200 << 20}

// Measure builds a Throughput from observed byte counts and elapsed time
// of a prior run on the same disks (per-disk counts, wall seconds).
func Measure(readBytes, writeBytes int64, disks int, seconds float64) Throughput {
	if disks < 1 || seconds <= 0 {
		return Throughput{}
	}
	return Throughput{
		ReadBytesPerSec:  float64(readBytes) / float64(disks) / seconds,
		WriteBytesPerSec: float64(writeBytes) / float64(disks) / seconds,
	}
}

// Prediction is one engine's predicted cost at the geometry.
type Prediction struct {
	Engine string `json:"engine"`
	// Feasible is false when the engine cannot run at this geometry (the
	// Reason says why); infeasible engines are never chosen.
	Feasible bool   `json:"feasible"`
	Reason   string `json:"reason,omitempty"`
	// Passes counts full sweeps over the data (run formation or the
	// initial load counts as one).
	Passes int `json:"passes"`
	// IOs is the predicted parallel I/O count; Bytes the total volume
	// moved; Seconds the predicted wall-clock at the throughput.
	IOs     float64 `json:"ios"`
	Bytes   float64 `json:"bytes"`
	Seconds float64 `json:"seconds"`
}

// Plan is the planner's decision: the chosen engine plus every candidate's
// prediction (sorted cheapest first), for reporting and for the bench
// emitters.
type Plan struct {
	Engine        string       `json:"engine"`
	LowerBoundIOs float64      `json:"io_lower_bound"`
	Candidates    []Prediction `json:"candidates"`
}

// Predicted returns the chosen candidate's prediction.
func (p *Plan) Predicted() Prediction {
	for _, c := range p.Candidates {
		if c.Engine == p.Engine {
			return c
		}
	}
	return Prediction{}
}

// Calibrated per-engine efficiency factors (measured I/Os ÷ ideal
// passes·2·⌈N/DB⌉ at the committed bench geometries).
const (
	factorBalance = 2.0
	factorStriped = 1.0
	factorGuide   = 1.15
)

// Choose validates the geometry, predicts every engine, and picks the
// cheapest feasible one (ties break by the Engines preference order).
func Choose(g Geometry, t Throughput) (*Plan, error) {
	if g.N < 0 {
		return nil, fmt.Errorf("plan: negative N %d", g.N)
	}
	p := pdm.Params{D: g.D, B: g.B, M: g.M}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if g.RecordBytes <= 0 {
		g.RecordBytes = 16
	}
	if t.ReadBytesPerSec <= 0 {
		t.ReadBytesPerSec = DefaultThroughput.ReadBytesPerSec
	}
	if t.WriteBytesPerSec <= 0 {
		t.WriteBytesPerSec = DefaultThroughput.WriteBytesPerSec
	}

	rank := make(map[string]int, len(Engines))
	for i, e := range Engines {
		rank[e] = i
	}
	var cands []Prediction
	for _, e := range Engines {
		cands = append(cands, predict(e, g, p, t))
	}
	sort.SliceStable(cands, func(a, b int) bool {
		ca, cb := cands[a], cands[b]
		if ca.Feasible != cb.Feasible {
			return ca.Feasible
		}
		if ca.Seconds != cb.Seconds {
			return ca.Seconds < cb.Seconds
		}
		return rank[ca.Engine] < rank[cb.Engine]
	})
	if !cands[0].Feasible {
		return nil, fmt.Errorf("plan: no engine feasible at D=%d B=%d M=%d N=%d", g.D, g.B, g.M, g.N)
	}
	return &Plan{
		Engine:        cands[0].Engine,
		LowerBoundIOs: lowerBoundIOs(g.N, p),
		Candidates:    cands,
	}, nil
}

// predict models one engine at the geometry.
func predict(engine string, g Geometry, p pdm.Params, t Throughput) Prediction {
	pr := Prediction{Engine: engine}
	sweeps := math.Ceil(float64(g.N) / float64(p.D*p.B)) // I/Os per full read or write of the data
	memload := (p.M / 2 / p.B) * p.B
	if memload < 1 {
		memload = 1
	}
	runs := ceilDiv(g.N, memload)

	switch engine {
	case EngineInMem:
		if g.N > p.M/2 {
			pr.Reason = fmt.Sprintf("N=%d exceeds the half-memory load M/2=%d", g.N, p.M/2)
			return pr
		}
		pr.Feasible = true
		pr.Passes = 1
		pr.IOs = 2 * sweeps // host read + host write, expressed in sweep units
	case EngineStripedMerge:
		if 4*p.D*p.B > p.M {
			pr.Reason = fmt.Sprintf("DB=%d needs M>=%d", p.D*p.B, 4*p.D*p.B)
			return pr
		}
		arity := p.M / (2 * p.D * p.B)
		if arity < 2 {
			arity = 2
		}
		pr.Feasible = true
		pr.Passes = 1 + mergePasses(runs, arity)
		pr.IOs = float64(pr.Passes) * 2 * sweeps * factorStriped
	case EngineGuideSort:
		if 4*p.D*p.B > p.M {
			pr.Reason = fmt.Sprintf("DB=%d needs M>=%d", p.D*p.B, 4*p.D*p.B)
			return pr
		}
		arity := p.M / (8 * p.B)
		if arity < 2 {
			arity = 2
		}
		factor := factorGuide
		if !guidesort.GuidedFits(p) {
			// The engine degrades to its striped discipline at this
			// geometry; model it as such.
			arity = p.M / (2 * p.D * p.B)
			if arity < 2 {
				arity = 2
			}
			factor = factorStriped
		}
		pr.Feasible = true
		pr.Passes = 1 + mergePasses(runs, arity)
		pr.IOs = float64(pr.Passes) * 2 * sweeps * factor
	case EngineBalanceSort:
		if 4*p.D*p.B > p.M {
			pr.Reason = fmt.Sprintf("DB=%d needs M>=%d", p.D*p.B, 4*p.D*p.B)
			return pr
		}
		s := int(math.Floor(math.Pow(float64(p.M)/float64(p.B), 0.25)))
		if s < 2 {
			s = 2
		}
		// Distribution levels until buckets fit a memoryload.
		levels := 0
		for span := g.N; span > memload; span = ceilDiv(span, s) {
			levels++
		}
		pr.Feasible = true
		pr.Passes = levels + 1
		pr.IOs = float64(pr.Passes) * 2 * sweeps * factorBalance
	default:
		pr.Reason = "unknown engine"
		return pr
	}

	pr.Bytes = pr.IOs * float64(p.D*p.B) * float64(g.RecordBytes)
	// Half the volume is read, half written, across D disks in parallel.
	pr.Seconds = pr.Bytes/2/(float64(p.D)*t.ReadBytesPerSec) +
		pr.Bytes/2/(float64(p.D)*t.WriteBytesPerSec)
	return pr
}

// PhaseBudgetSeconds predicts the single-node wall-clock of sorting
// `records` records of `recordBytes` width at a nominal geometry (D=4
// disks, 64-record blocks, a 64Ki-record memory) and default throughput.
// The cluster's straggler detector uses it as an absolute ceiling on
// derived per-phase deadline budgets: no phase of a healthy worker's
// shard should take longer than a whole local sort of the full input,
// so a budget extrapolated from a handful of fast finishers can never
// balloon past physical plausibility. It never fails — an invalid or
// empty geometry yields 0, which callers treat as "no ceiling".
func PhaseBudgetSeconds(records, recordBytes int) float64 {
	if records <= 0 {
		return 0
	}
	p, err := Choose(Geometry{N: records, D: 4, B: 64, M: 1 << 16, RecordBytes: recordBytes}, Throughput{})
	if err != nil {
		return 0
	}
	return p.Predicted().Seconds
}

// mergePasses is ⌈log_arity(runs)⌉ for runs ≥ 1.
func mergePasses(runs, arity int) int {
	if runs <= 1 {
		return 0
	}
	passes := 0
	for runs > 1 {
		runs = ceilDiv(runs, arity)
		passes++
	}
	return passes
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// lowerBoundIOs mirrors core.LowerBoundIOs exactly (duplicated to keep
// this package's import graph to pdm + guidesort only).
func lowerBoundIOs(n int, p pdm.Params) float64 {
	if n == 0 {
		return 0
	}
	lg := func(x float64) float64 {
		if x <= 2 {
			return 1
		}
		return math.Log2(x)
	}
	fn := float64(n)
	return fn / float64(p.D*p.B) * lg(fn/float64(p.B)) / lg(float64(p.M)/float64(p.B))
}
