package plan

import (
	"testing"

	"balancesort/internal/guidesort"
	"balancesort/internal/pdm"
)

// benchGeometries are the committed BENCH_sort.json points.
var benchGeometries = []Geometry{
	{N: 1 << 16, D: 8, B: 64, M: 1 << 15},
	{N: 1 << 18, D: 8, B: 64, M: 1 << 15},
}

func mustChoose(t *testing.T, g Geometry) *Plan {
	t.Helper()
	pl, err := Choose(g, Throughput{})
	if err != nil {
		t.Fatalf("Choose(%+v): %v", g, err)
	}
	return pl
}

func find(pl *Plan, engine string) Prediction {
	for _, c := range pl.Candidates {
		if c.Engine == engine {
			return c
		}
	}
	return Prediction{}
}

func TestChoosePrefersInMemWhenItFits(t *testing.T) {
	pl := mustChoose(t, Geometry{N: 100, D: 4, B: 8, M: 1024})
	if pl.Engine != EngineInMem {
		t.Fatalf("tiny input chose %s, want inmem", pl.Engine)
	}
}

func TestChooseNeverWorseThanBalanceSortOnBenchGeometries(t *testing.T) {
	for _, g := range benchGeometries {
		pl := mustChoose(t, g)
		chosen := pl.Predicted()
		bal := find(pl, EngineBalanceSort)
		if !bal.Feasible {
			t.Fatalf("%+v: balancesort infeasible", g)
		}
		if chosen.Seconds > bal.Seconds {
			t.Fatalf("%+v: chose %s at %.3fs, worse than balancesort's %.3fs",
				g, pl.Engine, chosen.Seconds, bal.Seconds)
		}
		if pl.Engine == EngineBalanceSort {
			t.Fatalf("%+v: planner still picks balancesort — the point of the planner is to beat it here", g)
		}
	}
}

func TestPredictedIOsTrackCommittedBench(t *testing.T) {
	// The committed BENCH_sort.json: balancesort 1039/6122 model I/Os and
	// stripedmerge 512/2048 at these geometries. The model must land within
	// 15% of those measurements — that is the calibration contract.
	want := map[string][2]float64{
		EngineBalanceSort:  {1039, 6122},
		EngineStripedMerge: {512, 2048},
	}
	for i, g := range benchGeometries {
		pl := mustChoose(t, g)
		for eng, ios := range want {
			got := find(pl, eng).IOs
			w := ios[i]
			if got < w*0.85 || got > w*1.15 {
				t.Errorf("%+v %s: predicted %.0f IOs, measured %.0f (off by >15%%)", g, eng, got, w)
			}
		}
	}
}

func TestGuidesortBeatsBalanceSortInModel(t *testing.T) {
	for _, g := range benchGeometries {
		pl := mustChoose(t, g)
		gd, bal := find(pl, EngineGuideSort), find(pl, EngineBalanceSort)
		if !gd.Feasible {
			t.Fatalf("%+v: guidesort infeasible", g)
		}
		if gd.IOs >= bal.IOs {
			t.Fatalf("%+v: guidesort predicted %.0f IOs, not better than balancesort's %.0f", g, gd.IOs, bal.IOs)
		}
	}
}

func TestAsymmetricThroughputChangesSeconds(t *testing.T) {
	g := benchGeometries[0]
	fast, err := Choose(g, Throughput{ReadBytesPerSec: 1 << 30, WriteBytesPerSec: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Choose(g, Throughput{ReadBytesPerSec: 1 << 20, WriteBytesPerSec: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Predicted().Seconds >= slow.Predicted().Seconds {
		t.Fatal("faster disks did not predict a faster sort")
	}
}

func TestMeasure(t *testing.T) {
	th := Measure(4<<20, 2<<20, 4, 2.0)
	if th.ReadBytesPerSec != float64(4<<20)/4/2 || th.WriteBytesPerSec != float64(2<<20)/4/2 {
		t.Fatalf("Measure wrong: %+v", th)
	}
	if z := Measure(1, 1, 0, 1); z != (Throughput{}) {
		t.Fatalf("degenerate Measure should zero out, got %+v", z)
	}
}

func TestChooseRejectsBadGeometry(t *testing.T) {
	if _, err := Choose(Geometry{N: 100, D: 0, B: 8, M: 64}, Throughput{}); err == nil {
		t.Fatal("want error for D=0")
	}
	if _, err := Choose(Geometry{N: -1, D: 4, B: 8, M: 1024}, Throughput{}); err == nil {
		t.Fatal("want error for negative N")
	}
}

func TestInfeasibleGeometryErrors(t *testing.T) {
	// M < 4DB: no external engine fits, and N > M/2 rules out inmem.
	if _, err := Choose(Geometry{N: 1 << 20, D: 8, B: 64, M: 1024}, Throughput{}); err == nil {
		t.Fatal("want no-engine-feasible error")
	}
}

// FuzzPlan asserts the planner's two safety properties on arbitrary
// geometries: the chosen engine never violates the memory geometry, and
// auto is never predicted worse than always-balancesort when balancesort
// is feasible.
func FuzzPlan(f *testing.F) {
	f.Add(1<<16, 8, 64, 1<<15)
	f.Add(1<<18, 8, 64, 1<<15)
	f.Add(6000, 4, 8, 1024)
	f.Add(100, 2, 2, 16)
	f.Add(0, 1, 1, 4)
	f.Add(1<<20, 16, 128, 1<<20)
	f.Fuzz(func(t *testing.T, n, d, b, m int) {
		if n < 0 || n > 1<<30 || d < 1 || d > 256 || b < 1 || b > 1<<16 || m < 1 || m > 1<<26 {
			t.Skip()
		}
		g := Geometry{N: n, D: d, B: b, M: m}
		pl, err := Choose(g, Throughput{})
		if err != nil {
			return // invalid or infeasible geometry is allowed to error
		}
		p := pdm.Params{D: d, B: b, M: m}
		chosen := pl.Predicted()
		if !chosen.Feasible {
			t.Fatalf("chose infeasible engine %s at %+v", pl.Engine, g)
		}
		// Memory-geometry safety per engine.
		switch pl.Engine {
		case EngineInMem:
			if n > m/2 {
				t.Fatalf("inmem chosen with N=%d > M/2=%d", n, m/2)
			}
		case EngineGuideSort:
			if 4*d*b > m {
				t.Fatalf("guidesort chosen with 4DB=%d > M=%d", 4*d*b, m)
			}
			if guidesort.GuidedFits(p) {
				arity, window, guideCap := 0, 0, 0
				arity = m / (8 * b)
				if arity < 2 {
					arity = 2
				}
				window = m / (8 * b)
				if window < 1 {
					window = 1
				}
				guideCap = m / 8
				if guideCap < 8 {
					guideCap = 8
				}
				if need := arity*b + window*b + d*b + b + guideCap + arity; need > m {
					t.Fatalf("GuidedFits lied: residents %d > M=%d", need, m)
				}
			}
		case EngineStripedMerge, EngineBalanceSort:
			if 4*d*b > m {
				t.Fatalf("%s chosen with 4DB=%d > M=%d", pl.Engine, 4*d*b, m)
			}
		default:
			t.Fatalf("unknown engine %q", pl.Engine)
		}
		// Auto is never predicted worse than always-balancesort.
		if bal := find(pl, EngineBalanceSort); bal.Feasible && chosen.Seconds > bal.Seconds {
			t.Fatalf("auto chose %s (%.4fs) over balancesort (%.4fs) at %+v",
				pl.Engine, chosen.Seconds, bal.Seconds, g)
		}
		if pl.LowerBoundIOs < 0 {
			t.Fatalf("negative lower bound at %+v", g)
		}
	})
}
