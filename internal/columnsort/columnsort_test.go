package columnsort

import (
	"sort"
	"testing"
	"testing/quick"

	"balancesort/internal/record"
)

func TestMinRows(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 9, 4: 20}
	for s, want := range cases {
		got := MinRows(s)
		if got != want {
			t.Fatalf("MinRows(%d) = %d, want %d", s, got, want)
		}
		if !Valid(got, s) {
			t.Fatalf("MinRows(%d) = %d is not Valid", s, got)
		}
	}
}

func TestValid(t *testing.T) {
	if !Valid(8, 2) || !Valid(9, 3) {
		t.Fatal("legal shapes rejected")
	}
	if Valid(7, 3) { // 7 not divisible by 3
		t.Fatal("non-divisible rows accepted")
	}
	if Valid(6, 3) { // 6 < 2*(3-1)^2 = 8
		t.Fatal("too-short columns accepted")
	}
}

func TestSortAllShapes(t *testing.T) {
	for s := 1; s <= 8; s++ {
		for _, extra := range []int{0, 1, 3} {
			r := MinRows(s) + extra*s
			rs := record.Generate(record.Uniform, r*s, uint64(s*100+extra))
			want := append([]record.Record(nil), rs...)
			sort.Slice(want, func(i, j int) bool { return want[i].Less(want[j]) })
			Sort(rs, r, s)
			for i := range want {
				if rs[i] != want[i] {
					t.Fatalf("r=%d s=%d: mismatch at %d", r, s, i)
				}
			}
		}
	}
}

func TestSortAllWorkloads(t *testing.T) {
	s := 4
	r := MinRows(s) * 2
	for _, w := range record.AllWorkloads {
		rs := record.Generate(w, r*s, 7)
		Sort(rs, r, s)
		if !record.IsSorted(rs) {
			t.Fatalf("%v: columnsort failed", w)
		}
	}
}

func TestSortQuickProperty(t *testing.T) {
	f := func(seed uint64, sRaw, extraRaw uint8) bool {
		s := 1 + int(sRaw%6)
		r := MinRows(s) + int(extraRaw%4)*s
		rs := record.Generate(record.Uniform, r*s, seed)
		Sort(rs, r, s)
		return record.IsSorted(rs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortRejectsIllegalShapes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("illegal shape accepted")
		}
	}()
	Sort(make([]record.Record, 18), 6, 3)
}

func TestSortRejectsWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong length accepted")
		}
	}()
	Sort(make([]record.Record, 10), 8, 2)
}

func TestColumnSortCount(t *testing.T) {
	// Steps 1, 3, 5 sort s columns each; the shifted step 7 sorts s+1
	// (two half-columns plus the straddling windows).
	s := 3
	r := MinRows(s)
	rs := record.Generate(record.Uniform, r*s, 1)
	got := Sort(rs, r, s)
	want := 3*s + s + 1
	if got != want {
		t.Fatalf("columnSorts = %d, want %d", got, want)
	}
	one := record.Generate(record.Uniform, 16, 2)
	if Sort(one, 16, 1) != 1 {
		t.Fatal("single column should cost one sort")
	}
}

func TestSortIsObliviousPermutationSchedule(t *testing.T) {
	// The data movement must not depend on the values: two different
	// inputs of the same shape must produce the same count of column
	// sorts (the only data-dependent work is inside the column sorts).
	s := 4
	r := MinRows(s)
	a := record.Generate(record.Uniform, r*s, 3)
	b := record.Generate(record.Reversed, r*s, 4)
	if Sort(a, r, s) != Sort(b, r, s) {
		t.Fatal("schedule depended on data")
	}
}
