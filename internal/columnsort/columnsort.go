// Package columnsort implements Leighton's Columnsort (reference [Lei],
// Introduction to Parallel Algorithms and Architectures §3.4; the machinery
// behind Cypher–Plaxton-style deterministic sorting and the cleanup pass of
// Greed Sort [NoV]). Columnsort sorts an r×s matrix, stored column-major
// and read out in column-major order, using eight steps — four column-sort
// steps interleaved with four fixed permutations — provided
//
//	r >= 2(s-1)²  and  s | r.
//
// Its significance for this repository: every data-dependent operation is a
// sort of one column (r records that fit in memory), and every data
// movement is a fixed permutation — so it is an external/parallel sorting
// recipe with *oblivious* I/O, the same design point as the paper's
// deterministic ambitions, and the standard tool for cleaning up
// nearly-sorted output.
package columnsort

import (
	"fmt"
	"sort"

	"balancesort/internal/record"
)

// MinRows returns the smallest legal row count for s columns: the least
// multiple of s that is >= 2(s-1)².
func MinRows(s int) int {
	if s < 1 {
		panic("columnsort: s must be >= 1")
	}
	need := 2 * (s - 1) * (s - 1)
	if need < s {
		need = s
	}
	if rem := need % s; rem != 0 {
		need += s - rem
	}
	return need
}

// Valid reports whether an r×s Columnsort is within Leighton's conditions.
func Valid(r, s int) bool {
	return s >= 1 && r >= 2*(s-1)*(s-1) && r%s == 0 && r >= 1
}

// Sort sorts rs (viewed as an r×s matrix in column-major order: column j is
// rs[j*r:(j+1)*r]) in place; afterwards reading the columns in order yields
// all records in nondecreasing order. It panics unless len(rs) = r·s and
// Valid(r, s).
//
// ColumnSorts counts the column-sort steps performed (for cost accounting
// by callers: each is one memoryload sort plus a scan-shaped permutation).
func Sort(rs []record.Record, r, s int) (columnSorts int) {
	if len(rs) != r*s {
		panic(fmt.Sprintf("columnsort: %d records is not %d x %d", len(rs), r, s))
	}
	if !Valid(r, s) {
		panic(fmt.Sprintf("columnsort: r=%d s=%d violates r >= 2(s-1)^2 and s|r", r, s))
	}
	if s == 1 {
		sortColumn(rs)
		return 1
	}

	// Step 1: sort each column.        Step 2: "transpose": read the matrix
	// in column-major order, write it back in row-major order (records
	// redistribute round-robin over the columns).
	// Step 3: sort each column.        Step 4: inverse of step 2.
	// Step 5: sort each column.        Step 6: shift down by r/2 (the first
	// half-column of -inf and trailing +inf are conceptual).
	// Step 7: sort each column.        Step 8: unshift.
	sortAll := func() {
		for j := 0; j < s; j++ {
			sortColumn(rs[j*r : (j+1)*r])
			columnSorts++
		}
	}

	buf := make([]record.Record, len(rs))

	transpose := func() {
		// "Transpose and reshape": the column-major stream is dealt
		// round-robin across the s columns — stream slot t lands in column
		// t mod s at row t div s.
		for t := range rs {
			buf[(t%s)*r+t/s] = rs[t]
		}
		copy(rs, buf)
	}
	untranspose := func() {
		for t := range rs {
			buf[t] = rs[(t%s)*r+t/s]
		}
		copy(rs, buf)
	}

	// Steps 6-8: shift the matrix down by r/2 into s+1 columns (the first
	// half-column padded with -inf, the last with +inf), sort the shifted
	// columns, and unshift. Because the pads are contiguous extremes, the
	// shifted-column sorts are exactly in-place sorts of the
	// boundary-straddling windows of the *unshifted* array: positions
	// [0, r/2), the windows [j·r - r/2, j·r + r/2) for 0 < j < s, and
	// [n - r/2, n). No data actually moves for the shift itself.
	shiftSort := func() {
		n := len(rs)
		sortColumn(rs[:r/2])
		columnSorts++
		for j := 1; j < s; j++ {
			sortColumn(rs[j*r-r/2 : j*r+r/2])
			columnSorts++
		}
		sortColumn(rs[n-r/2:])
		columnSorts++
	}

	sortAll()     // step 1
	transpose()   // step 2
	sortAll()     // step 3
	untranspose() // step 4
	sortAll()     // step 5
	shiftSort()   // steps 6-8
	return columnSorts
}

// sortColumn sorts one column in memory.
func sortColumn(col []record.Record) {
	sort.Slice(col, func(i, j int) bool { return col[i].Less(col[j]) })
}
