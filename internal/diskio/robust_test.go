package diskio

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestDiskFailedErrorFailFast drives a disk into permanent failure — with
// BreakerThreshold 1 every failed attempt trips the breaker, so one op's
// retries accumulate FailThreshold consecutive trips — and checks both the
// typed error and the fail-fast short-circuit on subsequent ops.
func TestDiskFailedErrorFailFast(t *testing.T) {
	e, _ := testEngine(t, Config{
		MaxRetries:       6,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Microsecond,
		RetryBase:        time.Microsecond,
		FailThreshold:    4,
		Fault:            FaultConfig{ErrorRate: 1, Seed: 11},
	}, 2)
	defer e.Close()

	buf := make([]byte, testBlock)
	err := e.Read(0, 0, buf)
	var failed *DiskFailedError
	if !errors.As(err, &failed) {
		t.Fatalf("got %v, want *DiskFailedError", err)
	}
	if failed.Disk != 0 || failed.Trips < 4 {
		t.Fatalf("bad failure report: %+v", failed)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatal("DiskFailedError does not unwrap to the root cause")
	}

	// Subsequent ops on the failed disk short-circuit: same typed error,
	// no further retries.
	retries := e.Metrics().PerDisk[0].Retries
	if err := e.Read(0, 1, buf); !errors.As(err, &failed) {
		t.Fatalf("second op: got %v, want fail-fast *DiskFailedError", err)
	}
	if got := e.Metrics().PerDisk[0].Retries; got != retries {
		t.Fatalf("fail-fast op retried (%d -> %d)", retries, got)
	}

	// The write path surfaces it too, and does not leak the pooled buffer
	// (Close would deadlock or the race detector would complain if the
	// buffer accounting were off).
	if err := e.Write(0, 0, pattern(0, 0)); !errors.As(err, &failed) {
		t.Fatalf("write on failed disk: got %v", err)
	}

	// The other disk is unaffected by disk 0's failure — but with
	// ErrorRate 1 it fails its own retries with the root cause, not a
	// premature permanent-failure verdict (its trips are independent).
	err = e.Read(1, 0, buf)
	if err == nil {
		t.Fatal("disk 1 read with ErrorRate 1 succeeded")
	}
}

// TestFailThresholdDisabled checks a negative FailThreshold keeps the old
// behavior: trips accumulate but no disk is ever declared failed.
func TestFailThresholdDisabled(t *testing.T) {
	e, _ := testEngine(t, Config{
		MaxRetries:       6,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Microsecond,
		RetryBase:        time.Microsecond,
		FailThreshold:    -1,
		Fault:            FaultConfig{ErrorRate: 1, Seed: 3},
	}, 1)
	defer e.Close()
	err := e.Read(0, 0, make([]byte, testBlock))
	var failed *DiskFailedError
	if errors.As(err, &failed) {
		t.Fatal("FailThreshold < 0 still declared the disk failed")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want the injected error", err)
	}
}

// TestContextCancelAbortsRetries checks a canceled context unblocks the
// retry/backoff sleeps: an op that would otherwise back off for a very
// long time returns ctx.Err() promptly.
func TestContextCancelAbortsRetries(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	e, _ := testEngine(t, Config{
		MaxRetries: 100,
		RetryBase:  time.Hour, // would block ~forever without cancellation
		Context:    ctx,
		Fault:      FaultConfig{ErrorRate: 1, Seed: 5},
	}, 1)
	defer e.Close()

	done := make(chan error, 1)
	go func() { done <- e.Read(0, 0, make([]byte, testBlock)) }()
	time.Sleep(10 * time.Millisecond) // let the op enter its backoff sleep
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled op never returned")
	}
}

// TestContextPreCanceled checks an already-canceled context fails ops at
// the first sleep without hanging, and the engine still closes cleanly.
func TestContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e, _ := testEngine(t, Config{
		MaxRetries: 50,
		RetryBase:  time.Hour,
		Context:    ctx,
		Fault:      FaultConfig{ErrorRate: 1, Seed: 9},
	}, 1)
	err := e.Read(0, 0, make([]byte, testBlock))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("close after cancellation: %v", err)
	}
}
