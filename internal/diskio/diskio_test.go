package diskio

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

const testBlock = 64

func testEngine(t *testing.T, cfg Config, disks int) (*Engine, []*MemDevice) {
	t.Helper()
	if cfg.BlockBytes == 0 {
		cfg.BlockBytes = testBlock
	}
	devs := make([]Device, disks)
	mems := make([]*MemDevice, disks)
	for i := range devs {
		mems[i] = NewMemDevice()
		devs[i] = mems[i]
	}
	e, err := New(cfg, devs)
	if err != nil {
		t.Fatal(err)
	}
	return e, mems
}

func pattern(blk int64, disk int) []byte {
	buf := make([]byte, testBlock)
	for i := range buf {
		buf[i] = byte(int64(i) + blk*7 + int64(disk)*13)
	}
	return buf
}

func TestEngineRoundTrip(t *testing.T) {
	e, _ := testEngine(t, Config{}, 3)
	defer e.Close()
	for disk := 0; disk < 3; disk++ {
		for blk := int64(0); blk < 10; blk++ {
			if err := e.Write(disk, blk, pattern(blk, disk)); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := make([]byte, testBlock)
	for disk := 0; disk < 3; disk++ {
		for blk := int64(9); blk >= 0; blk-- {
			if err := e.Read(disk, blk, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, pattern(blk, disk)) {
				t.Fatalf("disk %d block %d corrupted", disk, blk)
			}
		}
	}
}

func TestEngineRejectsBadArgs(t *testing.T) {
	if _, err := New(Config{}, []Device{NewMemDevice()}); err == nil {
		t.Fatal("BlockBytes = 0 accepted")
	}
	if _, err := New(Config{BlockBytes: 8}, nil); err == nil {
		t.Fatal("no devices accepted")
	}
	e, _ := testEngine(t, Config{}, 1)
	defer e.Close()
	if err := e.Read(5, 0, make([]byte, testBlock)); err == nil {
		t.Fatal("out-of-range disk accepted")
	}
	if err := e.Write(0, 0, make([]byte, 3)); err == nil {
		t.Fatal("short write buffer accepted")
	}
	if err := e.Read(0, 0, make([]byte, 3)); err == nil {
		t.Fatal("short read buffer accepted")
	}
}

// TestWriteBehindCoalesces checks that adjacent writes merge into fewer,
// larger device transfers, and that the data still lands correctly.
func TestWriteBehindCoalesces(t *testing.T) {
	e, mems := testEngine(t, Config{WriteBehind: 4}, 1)
	for blk := int64(0); blk < 12; blk++ {
		if err := e.Write(0, blk, pattern(blk, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(0); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics().Aggregate()
	if m.Coalesced == 0 {
		t.Fatal("no writes coalesced")
	}
	if m.Writes >= 12 {
		t.Fatalf("device saw %d writes for 12 blocks; coalescing did nothing", m.Writes)
	}
	if mems[0].Len() != 12*testBlock {
		t.Fatalf("device holds %d bytes, want %d", mems[0].Len(), 12*testBlock)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	for blk := int64(0); blk < 12; blk++ {
		got := make([]byte, testBlock)
		if _, err := mems[0].ReadAt(got, blk*testBlock); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pattern(blk, 0)) {
			t.Fatalf("block %d corrupted after coalesced flush", blk)
		}
	}
}

// TestReadYourWrites checks reads see data still sitting in the
// write-behind run, including overwrites of buffered blocks.
func TestReadYourWrites(t *testing.T) {
	e, _ := testEngine(t, Config{WriteBehind: 8}, 1)
	defer e.Close()
	if err := e.Write(0, 3, pattern(3, 0)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, testBlock)
	if err := e.Read(0, 3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pattern(3, 0)) {
		t.Fatal("read missed the write-behind run")
	}
	// Overwrite while buffered; the fresh bytes must win.
	fresh := pattern(99, 0)
	if err := e.Write(0, 3, fresh); err != nil {
		t.Fatal(err)
	}
	if err := e.Read(0, 3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fresh) {
		t.Fatal("overwrite of a buffered block lost")
	}
	if m := e.Metrics().Aggregate(); m.WriteBufferHits == 0 {
		t.Fatal("write-buffer hits not counted")
	}
}

// TestPrefetchHits checks a sequential scan is served from read-ahead.
func TestPrefetchHits(t *testing.T) {
	e, _ := testEngine(t, Config{Prefetch: 4}, 1)
	defer e.Close()
	const blocks = 64
	for blk := int64(0); blk < blocks; blk++ {
		if err := e.Write(0, blk, pattern(blk, 0)); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]byte, testBlock)
	for blk := int64(0); blk < blocks; blk++ {
		if err := e.Read(0, blk, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pattern(blk, 0)) {
			t.Fatalf("block %d corrupted", blk)
		}
		// Let the worker drain its speculation queue so the scan actually
		// exercises the cache (a real sort gives it idle time naturally).
		if blk%8 == 7 {
			time.Sleep(time.Millisecond)
		}
	}
	m := e.Metrics().Aggregate()
	if m.PrefetchIssued == 0 {
		t.Fatal("no prefetches issued")
	}
	if m.PrefetchHits == 0 {
		t.Fatal("no prefetch hits on a sequential scan")
	}
}

// TestPrefetchInvalidatedByWrite checks a write after a speculative fetch
// of the same block makes the next read return the new data.
func TestPrefetchInvalidatedByWrite(t *testing.T) {
	e, _ := testEngine(t, Config{Prefetch: 2}, 1)
	defer e.Close()
	for blk := int64(0); blk < 4; blk++ {
		if err := e.Write(0, blk, pattern(blk, 0)); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]byte, testBlock)
	if err := e.Read(0, 0, got); err != nil { // schedules prefetch of 1, 2
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond) // let speculation land in the cache
	fresh := pattern(42, 0)
	if err := e.Write(0, 1, fresh); err != nil {
		t.Fatal(err)
	}
	if err := e.Read(0, 1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fresh) {
		t.Fatal("read served stale prefetched data after a write")
	}
}

// TestFaultRetryRecovers checks a realistic transient-error rate is fully
// absorbed by retries: every op succeeds and the data is intact.
func TestFaultRetryRecovers(t *testing.T) {
	e, _ := testEngine(t, Config{
		RetryBase: 10 * time.Microsecond,
		Fault:     FaultConfig{ErrorRate: 0.3, TornWriteRate: 0.5, Seed: 7},
	}, 2)
	defer e.Close()
	for disk := 0; disk < 2; disk++ {
		for blk := int64(0); blk < 32; blk++ {
			if err := e.Write(disk, blk, pattern(blk, disk)); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := make([]byte, testBlock)
	for disk := 0; disk < 2; disk++ {
		for blk := int64(0); blk < 32; blk++ {
			if err := e.Read(disk, blk, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, pattern(blk, disk)) {
				t.Fatalf("disk %d block %d corrupted under faults", disk, blk)
			}
		}
	}
	m := e.Metrics().Aggregate()
	if m.Faults == 0 || m.Retries == 0 {
		t.Fatalf("fault layer inactive: faults=%d retries=%d", m.Faults, m.Retries)
	}
}

// TestTornWriteRepaired forces every first write attempt to fail torn and
// checks the retry leaves a whole block, not half of one.
func TestTornWriteRepaired(t *testing.T) {
	e, mems := testEngine(t, Config{
		RetryBase:  10 * time.Microsecond,
		MaxRetries: 8,
		Fault:      FaultConfig{ErrorRate: 0.5, TornWriteRate: 1, Seed: 3},
	}, 1)
	want := pattern(0, 0)
	if err := e.Write(0, 0, want); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, testBlock)
	if _, err := mems[0].ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("torn write not repaired by retry")
	}
}

// TestPermanentFailureSurfaces checks a 100% error rate exhausts the
// retries, trips the breaker, and returns the injected error.
func TestPermanentFailureSurfaces(t *testing.T) {
	e, _ := testEngine(t, Config{
		RetryBase:        10 * time.Microsecond,
		MaxRetries:       3,
		BreakerThreshold: 2,
		BreakerCooldown:  100 * time.Microsecond,
		Fault:            FaultConfig{ErrorRate: 1, Seed: 1},
	}, 1)
	defer e.Close()
	err := e.Read(0, 0, make([]byte, testBlock))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	m := e.Metrics().Aggregate()
	if m.Retries != 3 {
		t.Fatalf("retries = %d, want 3", m.Retries)
	}
	if m.BreakerTrips == 0 {
		t.Fatal("breaker never tripped under permanent failure")
	}
}

// TestDeferredFlushErrorSurfaces checks a write-behind flush failure is
// reported on a later call instead of vanishing.
func TestDeferredFlushErrorSurfaces(t *testing.T) {
	e, _ := testEngine(t, Config{
		WriteBehind: 2,
		RetryBase:   10 * time.Microsecond,
		MaxRetries:  1,
		Fault:       FaultConfig{ErrorRate: 1, Seed: 5},
	}, 1)
	defer e.Close()
	// Fill a run, then force a flush by writing a non-adjacent block; the
	// flush fails and must surface on the write or flush that follows.
	var sawErr bool
	for _, blk := range []int64{0, 1, 9, 20} {
		if err := e.Write(0, blk, pattern(blk, 0)); err != nil {
			sawErr = true
		}
	}
	if err := e.Flush(0); err != nil {
		sawErr = true
	}
	if !sawErr {
		t.Fatal("failed flush never surfaced")
	}
}

// TestQueueDepthMetric checks the high-water mark responds to backlog.
func TestQueueDepthMetric(t *testing.T) {
	e, _ := testEngine(t, Config{
		QueueDepth: 16,
		Fault:      FaultConfig{LatencyJitter: 200 * time.Microsecond, Seed: 2},
	}, 1)
	defer e.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for blk := int64(0); blk < 4; blk++ {
				if err := e.Write(0, int64(g)*4+blk, pattern(blk, 0)); err != nil {
					t.Error(err)
				}
			}
		}(g)
	}
	wg.Wait()
	if m := e.Metrics().Aggregate(); m.QueueMax < 2 {
		t.Fatalf("queue max = %d under 8 concurrent writers", m.QueueMax)
	}
}

// TestConcurrentDisks hammers all disks from many goroutines while
// snapshotting metrics — the race detector's view of the engine.
func TestConcurrentDisks(t *testing.T) {
	const disks = 4
	e, _ := testEngine(t, Config{Prefetch: 2, WriteBehind: 4}, disks)
	var wg sync.WaitGroup
	for disk := 0; disk < disks; disk++ {
		wg.Add(1)
		go func(disk int) {
			defer wg.Done()
			buf := make([]byte, testBlock)
			for blk := int64(0); blk < 50; blk++ {
				if err := e.Write(disk, blk, pattern(blk, disk)); err != nil {
					t.Error(err)
					return
				}
			}
			for blk := int64(0); blk < 50; blk++ {
				if err := e.Read(disk, blk, buf); err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(buf, pattern(blk, disk)) {
					t.Errorf("disk %d block %d corrupted", disk, blk)
					return
				}
			}
		}(disk)
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				e.Metrics()
			}
		}
	}()
	wg.Wait()
	close(stop)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultDeterminism checks the same seed injects the same faults.
func TestFaultDeterminism(t *testing.T) {
	run := func() DiskStats {
		e, _ := testEngine(t, Config{
			RetryBase: time.Microsecond,
			Fault:     FaultConfig{ErrorRate: 0.4, Seed: 11},
		}, 1)
		defer e.Close()
		buf := make([]byte, testBlock)
		for blk := int64(0); blk < 40; blk++ {
			if err := e.Write(0, blk, pattern(blk, 0)); err != nil {
				t.Fatal(err)
			}
		}
		for blk := int64(0); blk < 40; blk++ {
			if err := e.Read(0, blk, buf); err != nil {
				t.Fatal(err)
			}
		}
		return e.Metrics().Aggregate()
	}
	a, b := run(), run()
	if a.Faults != b.Faults || a.Retries != b.Retries {
		t.Fatalf("same seed, different faults: %+v vs %+v", a, b)
	}
}
