package diskio

import "sync"

// bufPool recycles block-sized byte buffers so that steady-state transfers
// — demand reads, write copies, prefetches — allocate nothing.
type bufPool struct {
	size int
	pool sync.Pool
}

func newBufPool(size int) *bufPool {
	p := &bufPool{size: size}
	p.pool.New = func() any { return make([]byte, size) }
	return p
}

func (p *bufPool) get() []byte { return p.pool.Get().([]byte) }

func (p *bufPool) put(buf []byte) {
	if cap(buf) == p.size {
		p.pool.Put(buf[:p.size])
	}
}
