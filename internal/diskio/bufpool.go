package diskio

import (
	"sync"
	"sync/atomic"
)

// bufPool recycles block-sized byte buffers so that steady-state transfers
// — demand reads, write copies, prefetches — allocate nothing. inUse counts
// buffers currently checked out (gets minus puts), the occupancy signal the
// utilization sampler reports.
type bufPool struct {
	size  int
	inUse atomic.Int64
	pool  sync.Pool
}

func newBufPool(size int) *bufPool {
	p := &bufPool{size: size}
	p.pool.New = func() any { return make([]byte, size) }
	return p
}

func (p *bufPool) get() []byte {
	p.inUse.Add(1)
	return p.pool.Get().([]byte)
}

func (p *bufPool) put(buf []byte) {
	p.inUse.Add(-1)
	if cap(buf) == p.size {
		p.pool.Put(buf[:p.size])
	}
}
