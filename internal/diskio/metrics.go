package diskio

// DiskStats is a snapshot of one disk's counters.
type DiskStats struct {
	// Reads and Writes count completed device transfers (a coalesced run
	// of adjacent blocks is one write), with BytesRead/BytesWritten the
	// payload moved.
	Reads, Writes           int64
	BytesRead, BytesWritten int64
	// Retries counts backoff-then-retry rounds; Faults counts injected
	// failures; BreakerTrips counts circuit-breaker cooldowns.
	Retries, Faults int64
	BreakerTrips    int64
	// PrefetchIssued/PrefetchHits measure the read-ahead; WriteBufferHits
	// counts reads served from the write-behind run.
	PrefetchIssued  int64
	PrefetchHits    int64
	WriteBufferHits int64
	// Coalesced counts blocks merged into an already-open write-behind
	// run; Flushes counts runs pushed to the device.
	Coalesced, Flushes int64
	// QueueMax is the deepest observed demand queue.
	QueueMax int64
	// ReadNanos/WriteNanos sum the device time of successful transfers —
	// BytesRead/ReadNanos is this disk's measured read bandwidth.
	// BusyNanos sums all device-op time, failed attempts included.
	ReadNanos, WriteNanos int64
	BusyNanos             int64
	// QueueLen and WBBacklog are instantaneous: the demand queue depth and
	// the write-behind run length (blocks) at snapshot time.
	QueueLen  int64
	WBBacklog int64
}

// Add accumulates o into s (QueueMax takes the max).
func (s *DiskStats) Add(o DiskStats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.BytesRead += o.BytesRead
	s.BytesWritten += o.BytesWritten
	s.Retries += o.Retries
	s.Faults += o.Faults
	s.BreakerTrips += o.BreakerTrips
	s.PrefetchIssued += o.PrefetchIssued
	s.PrefetchHits += o.PrefetchHits
	s.WriteBufferHits += o.WriteBufferHits
	s.Coalesced += o.Coalesced
	s.Flushes += o.Flushes
	if o.QueueMax > s.QueueMax {
		s.QueueMax = o.QueueMax
	}
	s.ReadNanos += o.ReadNanos
	s.WriteNanos += o.WriteNanos
	s.BusyNanos += o.BusyNanos
	s.QueueLen += o.QueueLen
	s.WBBacklog += o.WBBacklog
}

// Snapshot is the whole engine's metrics at one instant.
type Snapshot struct {
	PerDisk []DiskStats
	// PoolInUse is the number of block buffers currently checked out of
	// the engine's buffer pool.
	PoolInUse int64
}

// Aggregate sums the per-disk stats.
func (s Snapshot) Aggregate() DiskStats {
	var total DiskStats
	for _, d := range s.PerDisk {
		total.Add(d)
	}
	return total
}

// Metrics snapshots every disk's counters. Safe to call at any time,
// including while transfers are in flight.
func (e *Engine) Metrics() Snapshot {
	snap := Snapshot{PerDisk: make([]DiskStats, len(e.workers)), PoolInUse: e.pool.inUse.Load()}
	for i, w := range e.workers {
		snap.PerDisk[i] = DiskStats{
			Reads:           w.m.reads.Load(),
			Writes:          w.m.writes.Load(),
			BytesRead:       w.m.bytesRead.Load(),
			BytesWritten:    w.m.bytesWritten.Load(),
			Retries:         w.m.retries.Load(),
			Faults:          w.m.faults.Load(),
			BreakerTrips:    w.m.breakerTrips.Load(),
			PrefetchIssued:  w.m.prefetchIssued.Load(),
			PrefetchHits:    w.m.prefetchHits.Load(),
			WriteBufferHits: w.m.writeHits.Load(),
			Coalesced:       w.m.coalesced.Load(),
			Flushes:         w.m.flushes.Load(),
			QueueMax:        w.m.queueMax.Load(),
			ReadNanos:       w.m.readNanos.Load(),
			WriteNanos:      w.m.writeNanos.Load(),
			BusyNanos:       w.m.busyNanos.Load(),
			QueueLen:        int64(len(w.demand)),
			WBBacklog:       w.m.wbBacklog.Load(),
		}
	}
	return snap
}
