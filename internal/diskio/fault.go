package diskio

import (
	"errors"
	"math/rand/v2"
	"time"
)

// ErrInjected is the transient error produced by the fault-injection
// layer. Callers retrying on it exercise exactly the code path a real
// transient medium error would take.
var ErrInjected = errors.New("diskio: injected transient fault")

// FaultConfig parameterizes the injection layer. Injection is
// deterministic given Seed: each disk derives its own PRNG stream, so a
// failing run replays exactly.
type FaultConfig struct {
	// ErrorRate is the probability in [0, 1] that a device op fails with
	// ErrInjected.
	ErrorRate float64
	// TornWriteRate is the probability, given a failing write, that half
	// the payload reaches the device before the fault — the classic torn
	// write a retry must repair by rewriting the whole block.
	TornWriteRate float64
	// LatencyJitter adds a uniform random delay in [0, LatencyJitter) to
	// every device op, modeling rotational/seek variance.
	LatencyJitter time.Duration
	// Seed feeds the per-disk PRNG streams.
	Seed uint64
}

func (f FaultConfig) enabled() bool {
	return f.ErrorRate > 0 || f.LatencyJitter > 0
}

// injector is one disk's fault source. It lives on the worker goroutine
// and is never shared.
type injector struct {
	cfg FaultConfig
	rng *rand.Rand
}

func newInjector(cfg FaultConfig, disk int) *injector {
	return &injector{
		cfg: cfg,
		rng: rand.New(rand.NewPCG(cfg.Seed, uint64(disk)*0x9e3779b97f4a7c15+1)),
	}
}

func (in *injector) jitter() {
	if in.cfg.LatencyJitter > 0 {
		time.Sleep(time.Duration(in.rng.Int64N(int64(in.cfg.LatencyJitter))))
	}
}

func (in *injector) failRead() bool {
	return in.cfg.ErrorRate > 0 && in.rng.Float64() < in.cfg.ErrorRate
}

func (in *injector) failWrite() (fail, torn bool) {
	if in.cfg.ErrorRate > 0 && in.rng.Float64() < in.cfg.ErrorRate {
		return true, in.rng.Float64() < in.cfg.TornWriteRate
	}
	return false, false
}
