// Package diskio is the concurrent block-I/O engine behind the file-backed
// disk arrays. The parallel disk model's whole premise is that D disks
// operate independently per parallel I/O; this package supplies the
// machinery that makes that true in wall-clock terms for real storage:
//
//   - one worker goroutine per disk with a bounded request queue, so a
//     parallel I/O round issues all D block transfers concurrently;
//   - a sync.Pool buffer manager, so steady-state transfers allocate
//     nothing;
//   - a read-ahead prefetcher that speculatively fetches the next block on
//     each disk's current stripe whenever the disk is otherwise idle;
//   - a write-behind coalescer that batches adjacent block writes into a
//     single larger WriteAt;
//   - a fault-injection layer (per-disk error rate, latency jitter, torn
//     writes) with retry, exponential backoff, and a per-disk circuit
//     breaker, so transient I/O errors are absorbed instead of aborting a
//     sort;
//   - a metrics registry (reads, writes, retries, prefetch hits, queue
//     depth, bytes moved) per disk and in aggregate.
//
// The engine moves raw bytes and knows nothing about records or the cost
// model: parallel-I/O counting stays in internal/pdm, one layer up, so
// mounting the engine cannot perturb a measured experiment.
package diskio

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"balancesort/internal/obs"
)

// Device is the raw storage one disk worker drives. *os.File satisfies it;
// MemDevice is the in-memory equivalent for tests and benchmarks.
type Device interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Close() error
}

// Config fixes one engine's behavior. The zero value of every optional
// field selects a sensible default (see withDefaults); Prefetch and
// WriteBehind default to off and must be asked for.
type Config struct {
	// BlockBytes is the transfer unit in bytes. Required.
	BlockBytes int
	// QueueDepth bounds each disk's demand-request queue. Default 8.
	QueueDepth int
	// Prefetch is the read-ahead window in blocks: after a demand read of
	// block k the worker speculatively fetches up to this many successor
	// blocks while idle. 0 disables prefetching.
	Prefetch int
	// WriteBehind is the maximum run of adjacent blocks the coalescer
	// merges into one WriteAt. 0 disables write-behind (every write goes
	// to the device before it is acknowledged).
	WriteBehind int
	// MaxRetries is how many times a failed device op is retried with
	// exponential backoff before the error is returned. Default 4.
	MaxRetries int
	// RetryBase is the first retry's backoff. Default 100µs.
	RetryBase time.Duration
	// BreakerThreshold is the consecutive-failure count that trips a
	// disk's circuit breaker. Default 8.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped disk rests before the breaker
	// half-opens and ops are attempted again. Default 2ms.
	BreakerCooldown time.Duration
	// FailThreshold is the number of consecutive circuit-breaker trips
	// (with no intervening success) after which a disk is declared
	// permanently failed: every subsequent op on it fails fast with a
	// typed *DiskFailedError instead of burning retries block by block.
	// Default 4; negative disables the fail-fast path.
	FailThreshold int
	// Context, when non-nil, cancels engine operations: a blocked queue
	// submit, a retry backoff, or a breaker cooldown returns ctx.Err()
	// instead of waiting out the sleep. In-flight device transfers are
	// drained (a submitted request always gets its reply), so a canceled
	// engine still closes cleanly.
	Context context.Context
	// Trace, when non-nil, records write-behind flush and breaker-cooldown
	// spans plus retry/fault/breaker-trip/queue-full event counts under the
	// "disk" layer, keyed by disk id. The nil default costs nothing: every
	// tracer method on nil is a no-op, and the engine never counts model
	// I/Os, so tracing cannot perturb a measured experiment.
	Trace *obs.Tracer
	// Fault configures the injection layer. Zero value injects nothing.
	Fault FaultConfig
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 4
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 100 * time.Microsecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 8
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Millisecond
	}
	if c.FailThreshold == 0 {
		c.FailThreshold = 4
	}
	if c.Context == nil {
		c.Context = context.Background()
	}
	return c
}

// DiskFailedError reports a disk whose circuit breaker is permanently
// open: FailThreshold consecutive breaker trips passed without a single
// successful device op. Every subsequent op on the disk returns the same
// error immediately, so a dead device costs one diagnosis, not one
// retry storm per block.
type DiskFailedError struct {
	Disk  int
	Trips int64 // breaker trips observed when the disk was declared failed
	Err   error // the last device error
}

func (e *DiskFailedError) Error() string {
	return fmt.Sprintf("diskio: disk %d failed permanently after %d breaker trips: %v", e.Disk, e.Trips, e.Err)
}

func (e *DiskFailedError) Unwrap() error { return e.Err }

// Engine serves block reads and writes for a set of devices, one worker
// goroutine per device. Read, Write, and Flush may be called from any
// goroutine; Close must not race with them.
type Engine struct {
	cfg     Config
	pool    *bufPool
	workers []*worker
	closed  bool
}

// New starts an engine over the given devices. The engine owns the devices
// from here on: Close closes them.
func New(cfg Config, devs []Device) (*Engine, error) {
	if cfg.BlockBytes <= 0 {
		return nil, fmt.Errorf("diskio: BlockBytes = %d, want > 0", cfg.BlockBytes)
	}
	if len(devs) == 0 {
		return nil, errors.New("diskio: no devices")
	}
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:     cfg,
		pool:    newBufPool(cfg.BlockBytes),
		workers: make([]*worker, len(devs)),
	}
	for i, dev := range devs {
		w := newWorker(i, &e.cfg, dev, e.pool)
		e.workers[i] = w
		go w.run()
	}
	return e, nil
}

// Disks returns the number of devices the engine serves.
func (e *Engine) Disks() int { return len(e.workers) }

// Read fills dst (len BlockBytes) with block blk of the given disk. It
// blocks until the transfer completes and is safe to call concurrently
// with operations on other disks — that concurrency is the point.
func (e *Engine) Read(disk int, blk int64, dst []byte) error {
	w, err := e.worker(disk)
	if err != nil {
		return err
	}
	if len(dst) != e.cfg.BlockBytes {
		return fmt.Errorf("diskio: read buffer is %d bytes, block is %d", len(dst), e.cfg.BlockBytes)
	}
	r := &request{op: opRead, block: blk, buf: dst, reply: make(chan error, 1)}
	if err := w.submit(r); err != nil {
		return err
	}
	return <-r.reply
}

// Write stores src (len BlockBytes) as block blk of the given disk. The
// data is copied before Write returns; with write-behind enabled the
// device transfer may happen later, and a deferred flush error surfaces on
// a subsequent Write, Flush, or Close of the same disk.
func (e *Engine) Write(disk int, blk int64, src []byte) error {
	w, err := e.worker(disk)
	if err != nil {
		return err
	}
	if len(src) != e.cfg.BlockBytes {
		return fmt.Errorf("diskio: write buffer is %d bytes, block is %d", len(src), e.cfg.BlockBytes)
	}
	buf := e.pool.get()
	copy(buf, src)
	r := &request{op: opWrite, block: blk, buf: buf, reply: make(chan error, 1)}
	if err := w.submit(r); err != nil {
		e.pool.put(buf)
		return err
	}
	return <-r.reply
}

// Flush forces the disk's write-behind run to the device and returns any
// deferred write error.
func (e *Engine) Flush(disk int) error {
	w, err := e.worker(disk)
	if err != nil {
		return err
	}
	r := &request{op: opFlush, reply: make(chan error, 1)}
	if err := w.submit(r); err != nil {
		return err
	}
	return <-r.reply
}

// FlushAll flushes every disk and returns the first error.
func (e *Engine) FlushAll() error {
	var firstErr error
	for i := range e.workers {
		if err := e.Flush(i); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close flushes every disk, stops the workers, and closes the devices.
func (e *Engine) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	firstErr := e.FlushAll()
	for _, w := range e.workers {
		close(w.demand)
		<-w.done
	}
	for _, w := range e.workers {
		if err := w.dev.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (e *Engine) worker(disk int) (*worker, error) {
	if disk < 0 || disk >= len(e.workers) {
		return nil, fmt.Errorf("diskio: disk %d of %d", disk, len(e.workers))
	}
	return e.workers[disk], nil
}

// request ops.
const (
	opRead = iota
	opWrite
	opFlush
)

type request struct {
	op    int
	block int64
	// buf is the caller's destination for opRead and an engine-owned
	// pooled copy of the payload for opWrite.
	buf   []byte
	reply chan error
}

// worker owns one device. All device access, the write-behind run, and the
// prefetch cache live on its goroutine; the only cross-goroutine state is
// the two request channels and the atomic counters.
type worker struct {
	id     int
	cfg    *Config
	dev    Device
	pool   *bufPool
	demand chan *request
	specul chan int64
	done   chan struct{}
	m      counters

	// Goroutine-owned state below.
	inj *injector
	// Write-behind run: wb holds len(wb)/BlockBytes adjacent blocks
	// starting at block wbStart; wb == nil means no pending run.
	wb      []byte
	wbStart int64
	// deferred is a write-behind flush error not yet reported to a caller.
	deferred error
	// cache maps prefetched block numbers to pooled buffers; order is the
	// FIFO eviction queue (entries may be stale after invalidation).
	cache map[int64][]byte
	order []int64
	// consecFails feeds the circuit breaker; consecTrips counts breaker
	// trips with no intervening success and feeds the fail-fast path.
	consecFails int
	consecTrips int64
	// failed, once set, short-circuits every further op on this disk.
	failed *DiskFailedError
}

func newWorker(id int, cfg *Config, dev Device, pool *bufPool) *worker {
	w := &worker{
		id:     id,
		cfg:    cfg,
		dev:    dev,
		pool:   pool,
		demand: make(chan *request, cfg.QueueDepth),
		specul: make(chan int64, cfg.QueueDepth),
		done:   make(chan struct{}),
		cache:  make(map[int64][]byte),
	}
	if cfg.Fault.enabled() {
		w.inj = newInjector(cfg.Fault, id)
	}
	return w
}

func (w *worker) submit(r *request) error {
	// Gauge the queue at its deepest observed point; len() on a channel is
	// approximate under concurrency, which is fine for a high-water mark.
	depth := int64(len(w.demand)) + 1
	for {
		cur := w.m.queueMax.Load()
		if depth <= cur || w.m.queueMax.CompareAndSwap(cur, depth) {
			break
		}
	}
	select {
	case w.demand <- r:
		return nil
	default:
	}
	// Queue full: wait, but give up if the engine's context is canceled so
	// a stalled disk cannot wedge a cancelled sort.
	w.cfg.Trace.Count("disk", "queue-full", w.id, 1)
	select {
	case w.demand <- r:
		return nil
	case <-w.cfg.Context.Done():
		return w.cfg.Context.Err()
	}
}

// flushSentinel on the speculation queue asks the worker to push the
// write-behind run to the device during idle time, so a full run's device
// latency is usually off the caller's critical path.
const flushSentinel = int64(-1)

// run is the worker loop: demand requests strictly before speculative
// work (prefetches and idle flushes), so the speculation only uses idle
// disk time.
func (w *worker) run() {
	defer close(w.done)
	for {
		select {
		case r, ok := <-w.demand:
			if !ok {
				return
			}
			w.handle(r)
		default:
			select {
			case r, ok := <-w.demand:
				if !ok {
					return
				}
				w.handle(r)
			case blk := <-w.specul:
				if blk == flushSentinel {
					if err := w.flushWB(); err != nil && w.deferred == nil {
						w.deferred = err
					}
				} else {
					w.prefetch(blk)
				}
			}
		}
	}
}

func (w *worker) handle(r *request) {
	switch r.op {
	case opRead:
		r.reply <- w.read(r.block, r.buf)
	case opWrite:
		r.reply <- w.write(r.block, r.buf)
	case opFlush:
		err := w.flushWB()
		if err == nil {
			err = w.takeDeferred()
		}
		r.reply <- err
	}
}

// read serves a demand read: write-behind run first (read-your-writes),
// then the prefetch cache, then the device.
func (w *worker) read(blk int64, dst []byte) error {
	bb := int64(w.cfg.BlockBytes)
	if len(w.wb) > 0 {
		if i := blk - w.wbStart; i >= 0 && i < int64(len(w.wb))/bb {
			copy(dst, w.wb[i*bb:(i+1)*bb])
			w.m.writeHits.Add(1)
			return nil
		}
	}
	if buf, ok := w.cache[blk]; ok {
		copy(dst, buf)
		delete(w.cache, blk)
		w.pool.put(buf)
		w.m.prefetchHits.Add(1)
		w.schedulePrefetch(blk + 1)
		return nil
	}
	if err := w.withRetry(func() error { return w.deviceRead(dst, blk*bb) }); err != nil {
		return err
	}
	w.schedulePrefetch(blk + 1)
	return nil
}

// write buffers blk into the write-behind run (or writes through when
// write-behind is off) and reports any deferred flush error.
func (w *worker) write(blk int64, buf []byte) error {
	defer w.pool.put(buf)
	defer w.syncWB()
	w.invalidate(blk)
	bb := int64(w.cfg.BlockBytes)
	if w.cfg.WriteBehind <= 0 {
		return w.withRetry(func() error { return w.deviceWrite(buf, blk*bb) })
	}
	if len(w.wb) > 0 {
		run := int64(len(w.wb)) / bb
		switch {
		case blk >= w.wbStart && blk < w.wbStart+run:
			// Overwrite of a block already in the run.
			copy(w.wb[(blk-w.wbStart)*bb:], buf)
			return w.takeDeferred()
		case blk == w.wbStart+run && run < int64(w.cfg.WriteBehind):
			w.wb = append(w.wb, buf...)
			w.m.coalesced.Add(1)
			if run+1 == int64(w.cfg.WriteBehind) {
				w.scheduleIdleFlush()
			}
			return w.takeDeferred()
		default:
			if err := w.flushWB(); err != nil {
				w.deferred = err
			}
		}
	}
	if w.wb == nil {
		w.wb = make([]byte, 0, w.cfg.WriteBehind*w.cfg.BlockBytes)
	}
	w.wbStart = blk
	w.wb = append(w.wb[:0], buf...)
	if w.cfg.WriteBehind == 1 {
		w.scheduleIdleFlush()
	}
	return w.takeDeferred()
}

func (w *worker) scheduleIdleFlush() {
	select {
	case w.specul <- flushSentinel:
	default:
	}
}

// syncWB mirrors the write-behind run length (in blocks) into the atomic
// the sampler reads.
func (w *worker) syncWB() {
	w.m.wbBacklog.Store(int64(len(w.wb)) / int64(w.cfg.BlockBytes))
}

// flushWB pushes the pending run to the device as one WriteAt.
func (w *worker) flushWB() error {
	if len(w.wb) == 0 {
		return nil
	}
	run := w.wb
	off := w.wbStart * int64(w.cfg.BlockBytes)
	w.wb = w.wb[:0]
	w.syncWB()
	sp := w.cfg.Trace.Begin("disk", "flush", w.id)
	err := w.withRetry(func() error { return w.deviceWrite(run, off) })
	sp.End(obs.Attr{Key: "blocks", Val: int64(len(run) / w.cfg.BlockBytes)})
	if err == nil {
		w.m.flushes.Add(1)
	}
	return err
}

func (w *worker) takeDeferred() error {
	err := w.deferred
	w.deferred = nil
	return err
}

// schedulePrefetch queues speculative reads for blocks blk..blk+window-1;
// a full speculation queue drops the hint rather than blocking the disk.
func (w *worker) schedulePrefetch(blk int64) {
	for i := 0; i < w.cfg.Prefetch; i++ {
		select {
		case w.specul <- blk + int64(i):
		default:
			return
		}
	}
}

// prefetch speculatively reads blk into the cache. Failures are dropped —
// a speculative miss (unwritten block, end of file, injected fault) must
// never surface as an error, and it is not retried.
func (w *worker) prefetch(blk int64) {
	if _, ok := w.cache[blk]; ok {
		return
	}
	bb := int64(w.cfg.BlockBytes)
	if len(w.wb) > 0 {
		if i := blk - w.wbStart; i >= 0 && i < int64(len(w.wb))/bb {
			return // pending write already holds fresher bytes
		}
	}
	w.m.prefetchIssued.Add(1)
	buf := w.pool.get()
	if err := w.deviceRead(buf, blk*bb); err != nil {
		w.pool.put(buf)
		return
	}
	for len(w.cache) >= w.cfg.Prefetch && len(w.order) > 0 {
		old := w.order[0]
		w.order = w.order[1:]
		if b, ok := w.cache[old]; ok {
			delete(w.cache, old)
			w.pool.put(b)
		}
	}
	w.cache[blk] = buf
	w.order = append(w.order, blk)
}

func (w *worker) invalidate(blk int64) {
	if buf, ok := w.cache[blk]; ok {
		delete(w.cache, blk)
		w.pool.put(buf)
	}
}

// withRetry runs a device op with exponential backoff on failure and
// trips the circuit breaker after BreakerThreshold consecutive failures:
// the disk rests for BreakerCooldown, then the breaker half-opens and the
// op is attempted again. FailThreshold consecutive trips without a single
// success declare the disk permanently failed; from then on every op
// short-circuits with the same *DiskFailedError. All sleeps abort early
// when the engine's context is canceled.
func (w *worker) withRetry(op func() error) error {
	if w.failed != nil {
		return w.failed
	}
	backoff := w.cfg.RetryBase
	var err error
	for attempt := 0; ; attempt++ {
		if err = op(); err == nil {
			w.consecFails = 0
			w.consecTrips = 0
			return nil
		}
		w.consecFails++
		if w.consecFails >= w.cfg.BreakerThreshold {
			w.m.breakerTrips.Add(1)
			w.cfg.Trace.Count("disk", "breaker-trip", w.id, 1)
			w.consecFails = 0
			w.consecTrips++
			if w.cfg.FailThreshold > 0 && w.consecTrips >= int64(w.cfg.FailThreshold) {
				w.failed = &DiskFailedError{Disk: w.id, Trips: w.m.breakerTrips.Load(), Err: err}
				w.cfg.Trace.Count("disk", "disk-failed", w.id, 1)
				return w.failed
			}
			sp := w.cfg.Trace.Begin("disk", "breaker-cooldown", w.id)
			serr := w.sleep(w.cfg.BreakerCooldown)
			sp.End()
			if serr != nil {
				return serr
			}
		}
		if attempt >= w.cfg.MaxRetries {
			return err
		}
		w.m.retries.Add(1)
		w.cfg.Trace.Count("disk", "retry", w.id, 1)
		if serr := w.sleep(backoff); serr != nil {
			return serr
		}
		backoff *= 2
	}
}

// sleep waits for d or until the engine's context is canceled, whichever
// comes first.
func (w *worker) sleep(d time.Duration) error {
	done := w.cfg.Context.Done()
	if done == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-done:
		return w.cfg.Context.Err()
	}
}

// deviceRead and deviceWrite are the only two functions that touch the
// Device; the fault injector sits here so every other layer sees faults
// exactly as it would see real ones.
func (w *worker) deviceRead(dst []byte, off int64) error {
	start := time.Now()
	defer func() { w.m.busyNanos.Add(time.Since(start).Nanoseconds()) }()
	if w.inj != nil {
		w.inj.jitter()
		if w.inj.failRead() {
			w.m.faults.Add(1)
			w.cfg.Trace.Count("disk", "fault", w.id, 1)
			return ErrInjected
		}
	}
	if _, err := w.dev.ReadAt(dst, off); err != nil {
		return err
	}
	w.m.reads.Add(1)
	w.m.bytesRead.Add(int64(len(dst)))
	w.m.readNanos.Add(time.Since(start).Nanoseconds())
	return nil
}

func (w *worker) deviceWrite(src []byte, off int64) error {
	start := time.Now()
	defer func() { w.m.busyNanos.Add(time.Since(start).Nanoseconds()) }()
	if w.inj != nil {
		w.inj.jitter()
		if fail, torn := w.inj.failWrite(); fail {
			w.m.faults.Add(1)
			w.cfg.Trace.Count("disk", "fault", w.id, 1)
			if torn && len(src) >= 2 {
				// A torn write: half the payload reaches the platter
				// before the fault. The retry must overwrite it fully.
				w.dev.WriteAt(src[:len(src)/2], off)
			}
			return ErrInjected
		}
	}
	if _, err := w.dev.WriteAt(src, off); err != nil {
		return err
	}
	w.m.writes.Add(1)
	w.m.bytesWritten.Add(int64(len(src)))
	w.m.writeNanos.Add(time.Since(start).Nanoseconds())
	return nil
}

// counters are the per-disk atomic tallies behind DiskStats.
type counters struct {
	reads, writes           atomic.Int64
	bytesRead, bytesWritten atomic.Int64
	retries, faults         atomic.Int64
	breakerTrips            atomic.Int64
	prefetchIssued          atomic.Int64
	prefetchHits, writeHits atomic.Int64
	coalesced, flushes      atomic.Int64
	queueMax                atomic.Int64
	// Device-time accounting: readNanos/writeNanos sum the duration of
	// successful device transfers (the basis for measured throughput),
	// busyNanos sums all device-op time including failed attempts (the
	// basis for the busy-fraction utilization track). wbBacklog mirrors the
	// goroutine-owned write-behind run length in blocks so the sampler can
	// read it without racing the worker.
	readNanos, writeNanos atomic.Int64
	busyNanos             atomic.Int64
	wbBacklog             atomic.Int64
}
