package diskio

import (
	"io"
	"sync"
)

// MemDevice is an in-memory Device: a growable byte array with file
// semantics (reads past the end return io.EOF, writes extend). It lets the
// engine — and everything mounted on it — run without touching the
// filesystem, which is what the engine-backed in-memory pdm arrays and the
// engine's own tests use.
type MemDevice struct {
	mu   sync.Mutex
	data []byte
}

// NewMemDevice returns an empty in-memory device.
func NewMemDevice() *MemDevice { return &MemDevice{} }

func (d *MemDevice) ReadAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if off >= int64(len(d.data)) {
		return 0, io.EOF
	}
	n := copy(p, d.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (d *MemDevice) WriteAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if need := off + int64(len(p)); need > int64(len(d.data)) {
		if need > int64(cap(d.data)) {
			grown := make([]byte, need, need*2)
			copy(grown, d.data)
			d.data = grown
		} else {
			d.data = d.data[:need]
		}
	}
	return copy(d.data[off:], p), nil
}

func (d *MemDevice) Close() error { return nil }

// Len returns the device's current size in bytes.
func (d *MemDevice) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.data)
}
