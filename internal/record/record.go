// Package record defines the record type sorted throughout this repository
// and deterministic workload generators for every experiment.
//
// The paper assumes distinct keys and notes that distinctness "is easily
// realizable by appending to each key the record's initial location". We
// realize that device literally: a Record carries its 64-bit Key plus the
// 64-bit Loc it occupied in the original input, and all comparisons order by
// (Key, Loc). Duplicate-heavy workloads therefore exercise exactly the
// tie-breaking path the paper prescribes.
package record

// Record is a 16-byte sortable record. Key is the user key; Loc is the
// record's position in the original input and serves as the tie-breaker that
// makes effective keys distinct.
type Record struct {
	Key uint64
	Loc uint64
}

// Less reports whether r orders strictly before s under the effective key
// (Key, Loc).
func (r Record) Less(s Record) bool {
	if r.Key != s.Key {
		return r.Key < s.Key
	}
	return r.Loc < s.Loc
}

// Compare returns -1, 0, or +1 as r orders before, equal to, or after s.
// Two records compare equal only if both Key and Loc match, which never
// happens for records drawn from one input.
func (r Record) Compare(s Record) int {
	switch {
	case r.Key < s.Key:
		return -1
	case r.Key > s.Key:
		return 1
	case r.Loc < s.Loc:
		return -1
	case r.Loc > s.Loc:
		return 1
	default:
		return 0
	}
}

// IsSorted reports whether rs is nondecreasing under the effective key.
func IsSorted(rs []Record) bool {
	for i := 1; i < len(rs); i++ {
		if rs[i].Less(rs[i-1]) {
			return false
		}
	}
	return true
}

// Stamp assigns Loc = base+i to every record, establishing the original
// input positions used for tie-breaking.
func Stamp(rs []Record, base uint64) {
	for i := range rs {
		rs[i].Loc = base + uint64(i)
	}
}

// Keys extracts the raw keys of rs, mostly for test assertions.
func Keys(rs []Record) []uint64 {
	ks := make([]uint64, len(rs))
	for i, r := range rs {
		ks[i] = r.Key
	}
	return ks
}

// SameMultiset reports whether a and b contain exactly the same records
// (same multiset of (Key, Loc) pairs). It is used by tests and by runtime
// verification in the command-line tools.
func SameMultiset(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[Record]int, len(a))
	for _, r := range a {
		m[r]++
	}
	for _, r := range b {
		m[r]--
		if m[r] < 0 {
			return false
		}
	}
	return true
}
