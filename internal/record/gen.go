package record

import "math"

// Workload generators. Every generator is a pure function of its seed so
// experiments are reproducible bit-for-bit. We use a local SplitMix64
// generator instead of math/rand so the byte streams are pinned by this
// repository rather than by the standard library's generator choice.

// RNG is a SplitMix64 pseudo-random generator. The zero value is a valid
// generator seeded with 0.
type RNG struct {
	state uint64
}

// NewRNG returns a SplitMix64 generator with the given seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (g *RNG) Uint64() uint64 {
	g.state += 0x9e3779b97f4a7c15
	z := g.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random integer in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int {
	if n <= 0 {
		panic("record: Intn with non-positive n")
	}
	return int(g.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random value in [0, 1).
func (g *RNG) Float64() float64 {
	return float64(g.Uint64()>>11) / (1 << 53)
}

// Workload names a generator shape. The set covers the regimes the paper's
// analysis distinguishes: average case (uniform), heavy duplication (the
// tie-breaking path), nearly sorted and reversed inputs (merge-friendly and
// merge-hostile), and an adversarial shape that funnels most records into
// few buckets to stress the balance machinery.
type Workload int

const (
	// Uniform draws keys uniformly from the full 64-bit space.
	Uniform Workload = iota
	// FewDistinct draws keys from a tiny alphabet so runs of equal keys
	// dominate and ordering is decided by Loc.
	FewDistinct
	// NearlySorted produces an ascending sequence with a small fraction of
	// random displacements.
	NearlySorted
	// Reversed produces a strictly descending sequence.
	Reversed
	// BucketSkew concentrates ~90% of the keys in a narrow key range so
	// almost all records fall into the same distribution bucket.
	BucketSkew
	// Zipf draws keys from an approximate Zipf(1.2) distribution over 1024
	// distinct values.
	Zipf
)

// String returns the generator's name as used in experiment tables.
func (w Workload) String() string {
	switch w {
	case Uniform:
		return "uniform"
	case FewDistinct:
		return "fewdistinct"
	case NearlySorted:
		return "nearlysorted"
	case Reversed:
		return "reversed"
	case BucketSkew:
		return "bucketskew"
	case Zipf:
		return "zipf"
	default:
		return "unknown"
	}
}

// AllWorkloads lists every generator, in table order.
var AllWorkloads = []Workload{Uniform, FewDistinct, NearlySorted, Reversed, BucketSkew, Zipf}

// Generate produces n records for workload w from the given seed, with Loc
// stamped 0..n-1.
func Generate(w Workload, n int, seed uint64) []Record {
	g := NewRNG(seed ^ (uint64(w) << 56))
	rs := make([]Record, n)
	switch w {
	case Uniform:
		for i := range rs {
			rs[i].Key = g.Uint64()
		}
	case FewDistinct:
		for i := range rs {
			rs[i].Key = uint64(g.Intn(7))
		}
	case NearlySorted:
		for i := range rs {
			rs[i].Key = uint64(i) << 8
		}
		swaps := n / 64
		for s := 0; s < swaps; s++ {
			i, j := g.Intn(n), g.Intn(n)
			rs[i].Key, rs[j].Key = rs[j].Key, rs[i].Key
		}
	case Reversed:
		for i := range rs {
			rs[i].Key = uint64(n-i) << 8
		}
	case BucketSkew:
		for i := range rs {
			if g.Intn(10) == 0 {
				rs[i].Key = g.Uint64()
			} else {
				// Narrow band near the top of the key space.
				rs[i].Key = ^uint64(0) - uint64(g.Intn(1024))
			}
		}
	case Zipf:
		for i := range rs {
			rs[i].Key = zipfDraw(g)
		}
	default:
		panic("record: unknown workload")
	}
	Stamp(rs, 0)
	return rs
}

// zipfDraw samples an approximate Zipf(s=1.2) value over ranks 1..1024 by
// inverse-CDF on a precomputed table.
func zipfDraw(g *RNG) uint64 {
	u := g.Float64() * zipfTotal
	// Binary search the cumulative table.
	lo, hi := 0, len(zipfCum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if zipfCum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint64(lo)
}

var (
	zipfCum   []float64
	zipfTotal float64
)

func init() {
	const ranks = 1024
	zipfCum = make([]float64, ranks)
	c := 0.0
	for r := 1; r <= ranks; r++ {
		c += 1.0 / pow12(float64(r))
		zipfCum[r-1] = c
	}
	zipfTotal = c
}

func pow12(x float64) float64 { return math.Pow(x, 1.2) }
