package record

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"
)

func TestLessOrdersByKeyThenLoc(t *testing.T) {
	a := Record{Key: 1, Loc: 9}
	b := Record{Key: 2, Loc: 0}
	if !a.Less(b) || b.Less(a) {
		t.Fatalf("key ordering broken: %v vs %v", a, b)
	}
	c := Record{Key: 1, Loc: 10}
	if !a.Less(c) || c.Less(a) {
		t.Fatalf("loc tie-breaking broken: %v vs %v", a, c)
	}
	if a.Less(a) {
		t.Fatalf("record compares less than itself")
	}
}

func TestCompareConsistentWithLess(t *testing.T) {
	f := func(k1, l1, k2, l2 uint64) bool {
		a := Record{Key: k1, Loc: l1}
		b := Record{Key: k2, Loc: l2}
		c := a.Compare(b)
		switch {
		case a.Less(b):
			return c == -1 && b.Compare(a) == 1
		case b.Less(a):
			return c == 1 && b.Compare(a) == -1
		default:
			return c == 0 && b.Compare(a) == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareTransitivity(t *testing.T) {
	f := func(ks [3]uint64, ls [3]uint64) bool {
		rs := []Record{
			{Key: ks[0] % 4, Loc: ls[0] % 4},
			{Key: ks[1] % 4, Loc: ls[1] % 4},
			{Key: ks[2] % 4, Loc: ls[2] % 4},
		}
		sort.Slice(rs, func(i, j int) bool { return rs[i].Less(rs[j]) })
		return !rs[1].Less(rs[0]) && !rs[2].Less(rs[1])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted(nil) {
		t.Fatal("nil slice should be sorted")
	}
	if !IsSorted([]Record{{Key: 1}}) {
		t.Fatal("singleton should be sorted")
	}
	if !IsSorted([]Record{{Key: 1, Loc: 0}, {Key: 1, Loc: 1}, {Key: 2}}) {
		t.Fatal("sorted slice reported unsorted")
	}
	if IsSorted([]Record{{Key: 2}, {Key: 1}}) {
		t.Fatal("unsorted slice reported sorted")
	}
	if IsSorted([]Record{{Key: 1, Loc: 1}, {Key: 1, Loc: 0}}) {
		t.Fatal("loc inversion not detected")
	}
}

func TestStamp(t *testing.T) {
	rs := make([]Record, 5)
	Stamp(rs, 100)
	for i, r := range rs {
		if r.Loc != 100+uint64(i) {
			t.Fatalf("rs[%d].Loc = %d, want %d", i, r.Loc, 100+i)
		}
	}
}

func TestSameMultiset(t *testing.T) {
	a := []Record{{Key: 1, Loc: 0}, {Key: 1, Loc: 1}, {Key: 2, Loc: 2}}
	b := []Record{{Key: 2, Loc: 2}, {Key: 1, Loc: 0}, {Key: 1, Loc: 1}}
	if !SameMultiset(a, b) {
		t.Fatal("permutation not recognized")
	}
	if SameMultiset(a, a[:2]) {
		t.Fatal("length mismatch not detected")
	}
	c := []Record{{Key: 1, Loc: 0}, {Key: 1, Loc: 0}, {Key: 2, Loc: 2}}
	if SameMultiset(a, c) {
		t.Fatal("multiplicity mismatch not detected")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, w := range AllWorkloads {
		a := Generate(w, 512, 42)
		b := Generate(w, 512, 42)
		if len(a) != 512 {
			t.Fatalf("%v: wrong length %d", w, len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: generation not deterministic at %d", w, i)
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := Generate(Uniform, 256, 1)
	b := Generate(Uniform, 256, 2)
	same := 0
	for i := range a {
		if a[i].Key == b[i].Key {
			same++
		}
	}
	if same > 8 {
		t.Fatalf("different seeds produced %d/256 identical keys", same)
	}
}

func TestGenerateStampsLocs(t *testing.T) {
	for _, w := range AllWorkloads {
		rs := Generate(w, 100, 7)
		for i, r := range rs {
			if r.Loc != uint64(i) {
				t.Fatalf("%v: rs[%d].Loc = %d", w, i, r.Loc)
			}
		}
	}
}

func TestGenerateEffectiveKeysDistinct(t *testing.T) {
	// Even FewDistinct must have fully distinct (Key, Loc) pairs.
	rs := Generate(FewDistinct, 1000, 3)
	seen := make(map[Record]bool, len(rs))
	for _, r := range rs {
		if seen[r] {
			t.Fatalf("duplicate effective key %v", r)
		}
		seen[r] = true
	}
}

func TestWorkloadShapes(t *testing.T) {
	n := 4096
	rev := Generate(Reversed, n, 5)
	for i := 1; i < n; i++ {
		if rev[i-1].Key <= rev[i].Key {
			t.Fatalf("Reversed not strictly descending at %d", i)
		}
	}

	ns := Generate(NearlySorted, n, 5)
	inversions := 0
	for i := 1; i < n; i++ {
		if ns[i].Key < ns[i-1].Key {
			inversions++
		}
	}
	if inversions == 0 || inversions > n/8 {
		t.Fatalf("NearlySorted has %d adjacent inversions, want a small positive count", inversions)
	}

	fd := Generate(FewDistinct, n, 5)
	distinct := make(map[uint64]bool)
	for _, r := range fd {
		distinct[r.Key] = true
	}
	if len(distinct) > 7 {
		t.Fatalf("FewDistinct produced %d distinct keys", len(distinct))
	}

	sk := Generate(BucketSkew, n, 5)
	high := 0
	for _, r := range sk {
		if r.Key > ^uint64(0)-2048 {
			high++
		}
	}
	if high < n/2 {
		t.Fatalf("BucketSkew concentrated only %d/%d keys in the hot band", high, n)
	}

	z := Generate(Zipf, n, 5)
	counts := make(map[uint64]int)
	for _, r := range z {
		counts[r.Key]++
	}
	if counts[0] < counts[512] {
		t.Fatalf("Zipf rank 0 (%d) not hotter than rank 512 (%d)", counts[0], counts[512])
	}
}

func TestRNGIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	g := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := g.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestKeys(t *testing.T) {
	rs := []Record{{Key: 3}, {Key: 1}, {Key: 2}}
	ks := Keys(rs)
	want := []uint64{3, 1, 2}
	for i := range want {
		if ks[i] != want[i] {
			t.Fatalf("Keys[%d] = %d, want %d", i, ks[i], want[i])
		}
	}
}

func TestCodecInPackage(t *testing.T) {
	rs := Generate(Zipf, 100, 3)
	buf := EncodeSlice(rs)
	back, err := DecodeSlice(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs {
		if back[i] != rs[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestWriteReadAll(t *testing.T) {
	rs := Generate(Uniform, 5000, 9) // spans multiple WriteAll chunks
	var sb bytes.Buffer
	if err := WriteAll(&sb, rs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(&sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rs) {
		t.Fatalf("got %d records", len(back))
	}
	for i := range rs {
		if back[i] != rs[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestWorkloadStrings(t *testing.T) {
	names := map[Workload]string{
		Uniform: "uniform", FewDistinct: "fewdistinct", NearlySorted: "nearlysorted",
		Reversed: "reversed", BucketSkew: "bucketskew", Zipf: "zipf", Workload(99): "unknown",
	}
	for w, want := range names {
		if w.String() != want {
			t.Fatalf("%d.String() = %q, want %q", w, w.String(), want)
		}
	}
}
