package record

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Wire format: 16 bytes per record, little-endian Key then Loc. This is
// the on-disk format of the file-backed disk arrays and of the CLI's
// input/output files.

// EncodedSize is the wire size of one record in bytes.
const EncodedSize = 16

// Encode appends the wire form of r to buf and returns the extended slice.
func Encode(buf []byte, r Record) []byte {
	var tmp [EncodedSize]byte
	binary.LittleEndian.PutUint64(tmp[0:8], r.Key)
	binary.LittleEndian.PutUint64(tmp[8:16], r.Loc)
	return append(buf, tmp[:]...)
}

// Decode reads one record from the first EncodedSize bytes of buf.
func Decode(buf []byte) Record {
	return Record{
		Key: binary.LittleEndian.Uint64(buf[0:8]),
		Loc: binary.LittleEndian.Uint64(buf[8:16]),
	}
}

// EncodeSlice returns the wire form of rs.
func EncodeSlice(rs []Record) []byte {
	out := make([]byte, 0, len(rs)*EncodedSize)
	for _, r := range rs {
		out = Encode(out, r)
	}
	return out
}

// DecodeSlice parses a whole buffer of encoded records.
func DecodeSlice(buf []byte) ([]Record, error) {
	if len(buf)%EncodedSize != 0 {
		return nil, fmt.Errorf("record: %d bytes is not a whole number of records", len(buf))
	}
	out := make([]Record, len(buf)/EncodedSize)
	for i := range out {
		out[i] = Decode(buf[i*EncodedSize:])
	}
	return out, nil
}

// WriteAll writes rs to w in wire form.
func WriteAll(w io.Writer, rs []Record) error {
	// Stream in modest chunks to avoid a full-size staging buffer.
	const chunk = 4096
	for lo := 0; lo < len(rs); lo += chunk {
		hi := lo + chunk
		if hi > len(rs) {
			hi = len(rs)
		}
		if _, err := w.Write(EncodeSlice(rs[lo:hi])); err != nil {
			return err
		}
	}
	return nil
}

// ReadAll reads records from r until EOF.
func ReadAll(r io.Reader) ([]Record, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return DecodeSlice(raw)
}
