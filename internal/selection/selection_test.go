package selection

import (
	"sort"
	"testing"
	"testing/quick"

	"balancesort/internal/record"
)

func TestSelectAgainstSort(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 11, 100, 1000} {
		rs := record.Generate(record.Uniform, n, uint64(n))
		sorted := append([]record.Record(nil), rs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
		for _, k := range []int{0, n / 3, n / 2, n - 1} {
			if got := Select(rs, k); got != sorted[k] {
				t.Fatalf("n=%d k=%d: got %v want %v", n, k, got, sorted[k])
			}
		}
	}
}

func TestSelectDoesNotMutate(t *testing.T) {
	rs := record.Generate(record.Uniform, 64, 9)
	before := append([]record.Record(nil), rs...)
	Select(rs, 10)
	for i := range rs {
		if rs[i] != before[i] {
			t.Fatalf("Select mutated input at %d", i)
		}
	}
}

func TestSelectWithDuplicates(t *testing.T) {
	rs := record.Generate(record.FewDistinct, 500, 2)
	sorted := append([]record.Record(nil), rs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	for k := 0; k < 500; k += 37 {
		if got := Select(rs, k); got != sorted[k] {
			t.Fatalf("k=%d: got %v want %v", k, got, sorted[k])
		}
	}
}

func TestSelectRankOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range rank did not panic")
		}
	}()
	Select(make([]record.Record, 3), 3)
}

func TestSelectIntsQuick(t *testing.T) {
	f := func(raw []int16, kraw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]int, len(raw))
		for i, v := range raw {
			xs[i] = int(v)
		}
		k := int(kraw) % len(xs)
		got := SelectInts(xs, k)
		sorted := append([]int(nil), xs...)
		sort.Ints(sorted)
		return got == sorted[k]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRowMedianConvention(t *testing.T) {
	// The paper's median is the ceil(n/2)-th smallest, not the statistical
	// average of the two middle elements.
	cases := []struct {
		xs   []int
		want int
	}{
		{[]int{5}, 5},
		{[]int{2, 1}, 1},       // ceil(2/2)=1st smallest
		{[]int{3, 1, 2}, 2},    // 2nd smallest
		{[]int{4, 1, 3, 2}, 2}, // ceil(4/2)=2nd smallest
		{[]int{0, 0, 1, 1}, 0}, // duplicates
		{[]int{9, 7, 5, 3, 1}, 5},
	}
	for _, c := range cases {
		if got := RowMedian(c.xs); got != c.want {
			t.Fatalf("RowMedian(%v) = %d, want %d", c.xs, got, c.want)
		}
	}
}

func TestRowMedianEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty row did not panic")
		}
	}()
	RowMedian(nil)
}

func TestRowMedianDoesNotMutate(t *testing.T) {
	xs := []int{5, 4, 3, 2, 1}
	RowMedian(xs)
	want := []int{5, 4, 3, 2, 1}
	for i := range xs {
		if xs[i] != want[i] {
			t.Fatalf("RowMedian mutated input")
		}
	}
}

func TestSelectAdversarialPatterns(t *testing.T) {
	// Sorted, reverse-sorted, and organ-pipe inputs are the classic
	// quickselect killers; BFPRT must stay correct (and is worst-case
	// linear regardless).
	n := 1001
	patterns := map[string]func(i int) uint64{
		"sorted":    func(i int) uint64 { return uint64(i) },
		"reverse":   func(i int) uint64 { return uint64(n - i) },
		"organpipe": func(i int) uint64 { return uint64(min(i, n-i)) },
		"constant":  func(i int) uint64 { return 7 },
	}
	for name, f := range patterns {
		rs := make([]record.Record, n)
		for i := range rs {
			rs[i] = record.Record{Key: f(i), Loc: uint64(i)}
		}
		sorted := append([]record.Record(nil), rs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
		for _, k := range []int{0, 1, n / 2, n - 2, n - 1} {
			if got := Select(rs, k); got != sorted[k] {
				t.Fatalf("%s k=%d: got %v want %v", name, k, got, sorted[k])
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
