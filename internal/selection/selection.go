// Package selection provides deterministic linear-time rank selection
// (Blum–Floyd–Pratt–Rivest–Tarjan median-of-medians, reference [BFP] of the
// paper). Balance Sort is deterministic end to end, so the medians m_b of
// the histogram rows and the ranked partition elements must come from a
// deterministic selector rather than from randomized quickselect.
package selection

import "balancesort/internal/record"

// Select returns the k-th smallest record of rs under the effective key
// (0-indexed). It runs in worst-case linear time and does not modify rs.
func Select(rs []record.Record, k int) record.Record {
	if k < 0 || k >= len(rs) {
		panic("selection: rank out of range")
	}
	work := append([]record.Record(nil), rs...)
	return selectInPlace(work, k)
}

// SelectInts returns the k-th smallest of xs (0-indexed), used for the
// histogram-row medians where the values are block counts, not records.
// It does not modify xs.
func SelectInts(xs []int, k int) int {
	if k < 0 || k >= len(xs) {
		panic("selection: rank out of range")
	}
	work := append([]int(nil), xs...)
	return intSelect(work, k)
}

// RowMedian returns the paper's median of a histogram row: the ceil(n/2)-th
// smallest element (1-indexed), per the convention in Section 4.1 footnote 3
// ("the median is always the ceil(D/2)-th smallest element").
func RowMedian(xs []int) int {
	if len(xs) == 0 {
		panic("selection: median of empty row")
	}
	k := (len(xs)+1)/2 - 1 // ceil(n/2)-th smallest, 0-indexed
	return SelectInts(xs, k)
}

func selectInPlace(rs []record.Record, k int) record.Record {
	for {
		if len(rs) <= 10 {
			insertionSort(rs)
			return rs[k]
		}
		pivot := medianOfMedians(rs)
		lt, gt := partition3(rs, pivot)
		switch {
		case k < lt:
			rs = rs[:lt]
		case k >= gt:
			k -= gt
			rs = rs[gt:]
		default:
			return pivot
		}
	}
}

// medianOfMedians returns the BFPRT pivot: the median of the medians of
// groups of 5.
func medianOfMedians(rs []record.Record) record.Record {
	n := (len(rs) + 4) / 5
	meds := make([]record.Record, 0, n)
	for i := 0; i < len(rs); i += 5 {
		j := i + 5
		if j > len(rs) {
			j = len(rs)
		}
		g := append([]record.Record(nil), rs[i:j]...)
		insertionSort(g)
		meds = append(meds, g[(len(g)-1)/2])
	}
	return selectInPlace(meds, (len(meds)-1)/2)
}

// partition3 three-way partitions rs around pivot and returns the boundary
// indices: rs[:lt] < pivot, rs[lt:gt] == pivot, rs[gt:] > pivot.
func partition3(rs []record.Record, pivot record.Record) (lt, gt int) {
	lo, i, hi := 0, 0, len(rs)
	for i < hi {
		switch rs[i].Compare(pivot) {
		case -1:
			rs[lo], rs[i] = rs[i], rs[lo]
			lo++
			i++
		case 1:
			hi--
			rs[i], rs[hi] = rs[hi], rs[i]
		default:
			i++
		}
	}
	return lo, hi
}

func insertionSort(rs []record.Record) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Less(rs[j-1]); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

func intSelect(xs []int, k int) int {
	for {
		if len(xs) <= 10 {
			intInsertionSort(xs)
			return xs[k]
		}
		pivot := intMedianOfMedians(xs)
		lt, gt := intPartition3(xs, pivot)
		switch {
		case k < lt:
			xs = xs[:lt]
		case k >= gt:
			k -= gt
			xs = xs[gt:]
		default:
			return pivot
		}
	}
}

func intMedianOfMedians(xs []int) int {
	n := (len(xs) + 4) / 5
	meds := make([]int, 0, n)
	for i := 0; i < len(xs); i += 5 {
		j := i + 5
		if j > len(xs) {
			j = len(xs)
		}
		g := append([]int(nil), xs[i:j]...)
		intInsertionSort(g)
		meds = append(meds, g[(len(g)-1)/2])
	}
	return intSelect(meds, (len(meds)-1)/2)
}

func intPartition3(xs []int, pivot int) (lt, gt int) {
	lo, i, hi := 0, 0, len(xs)
	for i < hi {
		switch {
		case xs[i] < pivot:
			xs[lo], xs[i] = xs[i], xs[lo]
			lo++
			i++
		case xs[i] > pivot:
			hi--
			xs[i], xs[hi] = xs[hi], xs[i]
		default:
			i++
		}
	}
	return lo, hi
}

func intInsertionSort(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
