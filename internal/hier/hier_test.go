package hier

import (
	"testing"

	"balancesort/internal/hmm"
	"balancesort/internal/matching"
	"balancesort/internal/record"
)

func newTestMachine(h int) *Machine {
	return New(h, hmm.Model{Cost: hmm.LogCost{}}, matching.PRAMCost)
}

func TestWriteThenRead(t *testing.T) {
	m := newTestMachine(4)
	data := record.Generate(record.Uniform, 16, 1)
	base := m.AllocAligned(0, 4, 4)
	var wops []Op
	for h := 0; h < 4; h++ {
		wops = append(wops, Op{H: h, Addr: base, N: 4, Data: data[h*4 : (h+1)*4]})
	}
	m.ParallelWrite(wops)

	var rops []Op
	for h := 0; h < 4; h++ {
		rops = append(rops, Op{H: h, Addr: base, N: 4})
	}
	got := m.ParallelRead(rops)
	for h := 0; h < 4; h++ {
		for i := 0; i < 4; i++ {
			if got[h][i] != data[h*4+i] {
				t.Fatalf("readback mismatch at h=%d i=%d", h, i)
			}
		}
	}
}

func TestParallelStepCostsMax(t *testing.T) {
	m := newTestMachine(2)
	d := record.Generate(record.Uniform, 100, 2)
	// Hierarchy 0 writes 100 records deep, hierarchy 1 writes 10: the step
	// cost is the max (the deep one), not the sum.
	m.ParallelWrite([]Op{
		{H: 0, Addr: 0, N: 100, Data: d},
		{H: 1, Addr: 0, N: 10, Data: d[:10]},
	})
	want := hmm.LogCost{}.Range(0, 100)
	if m.AccessTime() != want {
		t.Fatalf("step cost = %v, want max %v", m.AccessTime(), want)
	}
	if m.Steps() != 1 {
		t.Fatalf("steps = %d, want 1", m.Steps())
	}
}

func TestSequentialStepsAdd(t *testing.T) {
	m := newTestMachine(1)
	d := record.Generate(record.Uniform, 10, 3)
	m.ParallelWrite([]Op{{H: 0, Addr: 0, N: 10, Data: d}})
	one := m.AccessTime()
	m.ParallelWrite([]Op{{H: 0, Addr: 0, N: 10, Data: d}})
	if m.AccessTime() != 2*one {
		t.Fatalf("costs did not add: %v vs 2*%v", m.AccessTime(), one)
	}
}

func TestTwoOpsSameHierarchySum(t *testing.T) {
	m := newTestMachine(2)
	d := record.Generate(record.Uniform, 20, 4)
	m.ParallelWrite([]Op{
		{H: 0, Addr: 0, N: 10, Data: d[:10]},
		{H: 0, Addr: 10, N: 10, Data: d[10:]},
	})
	want := hmm.LogCost{}.Range(0, 10) + hmm.LogCost{}.Range(10, 20)
	if m.AccessTime() != want {
		t.Fatalf("same-hierarchy ops must sum: %v vs %v", m.AccessTime(), want)
	}
}

func TestReadUnwrittenPanics(t *testing.T) {
	m := newTestMachine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("unwritten read did not panic")
		}
	}()
	m.ParallelRead([]Op{{H: 0, Addr: 0, N: 1}})
}

func TestBadHierarchyPanics(t *testing.T) {
	m := newTestMachine(2)
	defer func() {
		if recover() == nil {
			t.Fatal("bad hierarchy did not panic")
		}
	}()
	m.ParallelRead([]Op{{H: 5, Addr: 0, N: 1}})
}

func TestAllocAligned(t *testing.T) {
	m := newTestMachine(4)
	// Disturb hierarchy 1.
	if m.AllocAligned(1, 2, 7) != 0 {
		t.Fatal("first alloc not at 0")
	}
	base := m.AllocAligned(0, 4, 3)
	if base != 7 {
		t.Fatalf("aligned alloc at %d, want 7", base)
	}
	for h := 0; h < 4; h++ {
		if m.Top(h) != 10 {
			t.Fatalf("top[%d] = %d, want 10", h, m.Top(h))
		}
	}
}

func TestChargeNetAccounting(t *testing.T) {
	m := newTestMachine(16)
	m.ChargeNet(5)
	m.ChargeNetSort(64) // 4 rounds * log2(16)=4 -> 16
	m.ChargeNetScan(16) // 1 round * 4
	if m.NetTime() != 5+16+4 {
		t.Fatalf("net time = %v, want 25", m.NetTime())
	}
	if m.Time() != m.AccessTime()+m.NetTime() {
		t.Fatal("time must be access+net")
	}
}

func TestResetCost(t *testing.T) {
	m := newTestMachine(1)
	d := record.Generate(record.Uniform, 4, 5)
	m.ParallelWrite([]Op{{H: 0, Addr: 0, N: 4, Data: d}})
	m.ChargeNet(3)
	m.ResetCost()
	if m.Time() != 0 || m.Steps() != 0 {
		t.Fatal("reset incomplete")
	}
	// Data survives a cost reset.
	got := m.ParallelRead([]Op{{H: 0, Addr: 0, N: 4}})
	if got[0][0] != d[0] {
		t.Fatal("reset clobbered memory")
	}
}

func TestEmptyStepFree(t *testing.T) {
	m := newTestMachine(2)
	m.ParallelWrite(nil)
	m.ParallelRead(nil)
	if m.Time() != 0 || m.Steps() != 0 {
		t.Fatal("empty steps charged")
	}
}

func TestMaxTopAndTruncate(t *testing.T) {
	m := newTestMachine(4)
	m.AllocAligned(0, 2, 5)
	m.AllocAligned(2, 4, 9)
	if m.MaxTop() != 9 {
		t.Fatalf("MaxTop = %d, want 9", m.MaxTop())
	}
	m.TruncateTo(3)
	for h := 0; h < 4; h++ {
		if m.Top(h) != 3 {
			t.Fatalf("top[%d] = %d after truncate", h, m.Top(h))
		}
	}
	// Allocation resumes at the truncated mark.
	if base := m.AllocAligned(0, 4, 1); base != 3 {
		t.Fatalf("alloc after truncate at %d", base)
	}
}

func TestTruncateNegativePanics(t *testing.T) {
	m := newTestMachine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative truncate accepted")
		}
	}()
	m.TruncateTo(-1)
}

func TestOriginsChangeCharges(t *testing.T) {
	m := newTestMachine(1)
	d := record.Generate(record.Uniform, 8, 11)
	// Deep write with no origin: charged at absolute depth.
	m.ParallelWrite([]Op{{H: 0, Addr: 1000, N: 8, Data: d}})
	deep := m.AccessTime()

	m.ResetCost()
	m.AllocAligned(0, 1, 1008)
	o := m.PushOrigin()
	if o != 1008 {
		t.Fatalf("origin at %d", o)
	}
	m.ParallelWrite([]Op{{H: 0, Addr: 1008, N: 8, Data: d}})
	rel := m.AccessTime()
	m.PopOrigin()
	if rel >= deep {
		t.Fatalf("frame-relative charge %v not below absolute %v", rel, deep)
	}

	// Region base shadows everything, even outside a frame.
	m.ResetCost()
	m.ParallelWrite([]Op{{H: 0, Addr: 2000, N: 8, Base: 2000, Data: d}})
	if m.AccessTime() != rel {
		t.Fatalf("region-based charge %v != frame-relative %v", m.AccessTime(), rel)
	}
}

func TestPopOriginUnderflowPanics(t *testing.T) {
	m := newTestMachine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("origin underflow accepted")
		}
	}()
	m.PopOrigin()
}

func TestOpBelowRegionBasePanics(t *testing.T) {
	m := newTestMachine(1)
	d := record.Generate(record.Uniform, 2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("op below its region base accepted")
		}
	}()
	m.ParallelWrite([]Op{{H: 0, Addr: 5, N: 2, Base: 10, Data: d}})
}

func TestCostOfMatchesCharge(t *testing.T) {
	m := newTestMachine(2)
	d := record.Generate(record.Uniform, 4, 7)
	want := m.CostOf(0, 4)
	m.ParallelWrite([]Op{{H: 0, Addr: 0, N: 4, Data: d}})
	if m.AccessTime() != want {
		t.Fatalf("CostOf = %v but charge = %v", want, m.AccessTime())
	}
	if m.CostOfRegion(100, 100, 104) != want {
		t.Fatal("CostOfRegion at base should equal depth-0 cost")
	}
	if m.H() != 2 || m.Model() == nil || m.TCost() == nil {
		t.Fatal("accessors broken")
	}
}
