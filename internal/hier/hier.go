// Package hier simulates the parallel multilevel memory hierarchies of
// Figure 4: H hierarchies of one kind (HMM, BT, or UMH — supplied as an
// access-cost Model) whose base levels are joined by an interconnect (EREW
// PRAM or hypercube — supplied as a matching.TCost). The machine executes
// real data movement and accrues the model's parallel time: hierarchy
// accesses issued in one parallel step cost the maximum over hierarchies
// (they proceed simultaneously), and interconnect operations are charged at
// the supplied T(H) rate.
//
// This machine is to Theorems 2 and 3 what internal/pdm is to Theorem 1:
// the measurement instrument.
package hier

import (
	"fmt"

	"balancesort/internal/matching"
	"balancesort/internal/record"
)

// Model is the per-hierarchy access-cost model. AccessCost prices one
// hierarchy touching the contiguous address range [lo, hi) in one
// operation; hmm.Model sums per-location costs, bt.Model prices one block
// transfer, umh.Model prices the bus crossings.
type Model interface {
	AccessCost(lo, hi int) float64
	Name() string
}

// Op names one contiguous access on one hierarchy: N records at address
// Addr of hierarchy H. For writes, Data supplies the N records.
//
// Base is the cost origin of the region being streamed (usually the base
// address of the segment or append-log region the op belongs to): the
// access is charged at region-relative depth, f over [Addr-Base,
// Addr-Base+N). This encodes the touch/transposition fiction of Sections
// 4.3-4.4 — a region that is streamed sequentially costs as if it had been
// brought to the top of the hierarchy, the bound [ACSa]'s touch pass and
// generalized transposition provide. Base = 0 charges at the enclosing
// recursion frame's origin instead.
type Op struct {
	H    int
	Addr int
	N    int
	Base int
	Data []record.Record
}

// Machine is a bank of H identical hierarchies plus cost accounting.
type Machine struct {
	h     int
	model Model
	tcost matching.TCost

	mem [][]record.Record
	top []int

	// origin is a stack of cost origins. The paper's recurrences assume
	// each recursive call operates on data occupying the topmost locations
	// of the hierarchies; the sorter realizes that by streaming every
	// subproblem into a fresh frame (paying the move as charged passes)
	// and pushing the frame base as the cost origin, so accesses inside
	// the frame are priced at frame-relative depth. Without this, a small
	// subproblem executed late in the run would pay f(absolute address)
	// for data that the model considers to be at the top.
	origin []int

	accessTime float64
	netTime    float64
	steps      int64
}

// New creates a machine of h hierarchies with the given access model and
// interconnect cost. tcost nil selects the EREW PRAM rate.
func New(h int, model Model, tcost matching.TCost) *Machine {
	if h < 1 {
		panic("hier: H must be >= 1")
	}
	if tcost == nil {
		tcost = matching.PRAMCost
	}
	return &Machine{
		h:     h,
		model: model,
		tcost: tcost,
		mem:   make([][]record.Record, h),
		top:   make([]int, h),
	}
}

// H returns the hierarchy count.
func (m *Machine) H() int { return m.h }

// Model returns the access-cost model.
func (m *Machine) Model() Model { return m.model }

// TCost returns the interconnect's sort-time function.
func (m *Machine) TCost() matching.TCost { return m.tcost }

// Time returns the total accrued parallel time (memory + interconnect).
func (m *Machine) Time() float64 { return m.accessTime + m.netTime }

// AccessTime returns the memory-access part of the accrued time.
func (m *Machine) AccessTime() float64 { return m.accessTime }

// NetTime returns the interconnect part of the accrued time.
func (m *Machine) NetTime() float64 { return m.netTime }

// Steps returns the number of parallel memory steps performed.
func (m *Machine) Steps() int64 { return m.steps }

// ResetCost zeroes the accrued time (memory contents are kept).
func (m *Machine) ResetCost() {
	m.accessTime, m.netTime, m.steps = 0, 0, 0
}

// AllocAligned reserves n fresh addresses at a common offset on every
// hierarchy in [lo, hi) and returns that offset. Aligned regions are what
// striped segments and virtual blocks are built from.
func (m *Machine) AllocAligned(lo, hi, n int) int {
	if lo < 0 || hi > m.h || lo >= hi {
		panic(fmt.Sprintf("hier: bad hierarchy range [%d,%d)", lo, hi))
	}
	base := 0
	for h := lo; h < hi; h++ {
		if m.top[h] > base {
			base = m.top[h]
		}
	}
	for h := lo; h < hi; h++ {
		m.top[h] = base + n
	}
	return base
}

// Top returns the bump-allocation high-water mark of hierarchy h (tests and
// depth accounting).
func (m *Machine) Top(h int) int { return m.top[h] }

// MaxTop returns the deepest allocation mark across hierarchies — the
// stack pointer for the sorter's frame discipline.
func (m *Machine) MaxTop() int {
	t := 0
	for _, v := range m.top {
		if v > t {
			t = v
		}
	}
	return t
}

// TruncateTo pops every allocation above addr on all hierarchies, reusing
// the address space for later frames. The hierarchical cost model makes
// this essential, not cosmetic: an algorithm that lets garbage push its
// live data ever deeper pays f(depth) for the garbage too, which is
// precisely what the paper's algorithms avoid by working in place near the
// top of the hierarchy.
func (m *Machine) TruncateTo(addr int) {
	if addr < 0 {
		panic("hier: negative truncation")
	}
	for h := range m.top {
		m.top[h] = addr
	}
}

// ParallelRead performs the given reads as one parallel memory step and
// returns the data, op for op. The step costs the maximum, over
// hierarchies, of the summed access costs issued to that hierarchy.
func (m *Machine) ParallelRead(ops []Op) [][]record.Record {
	out := make([][]record.Record, len(ops))
	perH := make(map[int]float64, m.h)
	for i, op := range ops {
		m.checkOp(op)
		if op.Addr+op.N > len(m.mem[op.H]) {
			panic(fmt.Sprintf("hier: read of unwritten range [%d,%d) on hierarchy %d", op.Addr, op.Addr+op.N, op.H))
		}
		out[i] = append([]record.Record(nil), m.mem[op.H][op.Addr:op.Addr+op.N]...)
		perH[op.H] += m.model.AccessCost(m.relBase(op))
	}
	m.chargeStep(perH)
	return out
}

// ParallelWrite performs the given writes as one parallel memory step.
func (m *Machine) ParallelWrite(ops []Op) {
	perH := make(map[int]float64, m.h)
	for _, op := range ops {
		m.checkOp(op)
		if len(op.Data) != op.N {
			panic(fmt.Sprintf("hier: write op carries %d records, declares %d", len(op.Data), op.N))
		}
		for op.Addr+op.N > len(m.mem[op.H]) {
			m.mem[op.H] = append(m.mem[op.H], record.Record{})
		}
		copy(m.mem[op.H][op.Addr:op.Addr+op.N], op.Data)
		perH[op.H] += m.model.AccessCost(m.relBase(op))
	}
	m.chargeStep(perH)
}

func (m *Machine) checkOp(op Op) {
	if op.H < 0 || op.H >= m.h {
		panic(fmt.Sprintf("hier: hierarchy %d of %d", op.H, m.h))
	}
	if op.Addr < 0 || op.N < 0 {
		panic("hier: negative address or length")
	}
}

func (m *Machine) chargeStep(perH map[int]float64) {
	if len(perH) == 0 {
		return
	}
	maxc := 0.0
	for _, c := range perH {
		if c > maxc {
			maxc = c
		}
	}
	m.accessTime += maxc
	m.steps++
}

// CostOf returns what one access to [lo, hi) would be charged right now
// (frame-relative), so streaming code can pick matching transfer lengths.
func (m *Machine) CostOf(lo, hi int) float64 {
	return m.model.AccessCost(m.rel(lo, hi))
}

// CostOfRegion is CostOf with an explicit region base, matching relBase.
func (m *Machine) CostOfRegion(base, lo, hi int) float64 {
	return m.model.AccessCost(m.relFrom(base, lo, hi))
}

// PushOrigin makes the current allocation top the cost origin for
// subsequent accesses (entering a recursion frame). Returns the origin.
func (m *Machine) PushOrigin() int {
	o := m.MaxTop()
	m.origin = append(m.origin, o)
	return o
}

// PopOrigin leaves the current recursion frame.
func (m *Machine) PopOrigin() {
	if len(m.origin) == 0 {
		panic("hier: origin stack underflow")
	}
	m.origin = m.origin[:len(m.origin)-1]
}

// rel translates an absolute address range to frame-relative depth for
// cost purposes, clamping accesses below the origin (the caller's data,
// which the model fiction places at the top) to depth zero.
func (m *Machine) rel(lo, hi int) (int, int) {
	return m.relFrom(0, lo, hi)
}

// relBase applies the op's own region base when set, else the frame origin.
func (m *Machine) relBase(op Op) (int, int) {
	return m.relFrom(op.Base, op.Addr, op.Addr+op.N)
}

func (m *Machine) relFrom(base, lo, hi int) (int, int) {
	if base > 0 {
		// Region-relative charging: the op names its region's cost origin
		// explicitly. Chained regions (append-log flushes) set base so that
		// lo-base is the region's cumulative logical depth.
		l := lo - base
		if l < 0 {
			panic(fmt.Sprintf("hier: op at %d below its region base %d", lo, base))
		}
		return l, l + (hi - lo)
	}
	o := 0
	if len(m.origin) > 0 {
		o = m.origin[len(m.origin)-1]
	}
	l := lo - o
	if l < 0 {
		l = 0
	}
	return l, l + (hi - lo)
}

// ChargeNet charges t units of interconnect time directly.
func (m *Machine) ChargeNet(t float64) {
	if t < 0 {
		panic("hier: negative network charge")
	}
	m.netTime += t
}

// ChargeNetSort charges the interconnect for sorting n items spread over
// the H base levels: ⌈n/H⌉ rounds at the T(H) sorting rate (Cole's merge
// sort on a PRAM, Sharesort on a hypercube).
func (m *Machine) ChargeNetSort(n int) {
	if n <= 1 {
		return
	}
	rounds := (n + m.h - 1) / m.h
	m.netTime += float64(rounds) * m.tcost(m.h)
}

// ChargeNetScan charges a prefix/route-style interconnect operation over n
// items: ⌈n/H⌉ rounds of log H steps each.
func (m *Machine) ChargeNetScan(n int) {
	if n == 0 {
		return
	}
	rounds := (n + m.h - 1) / m.h
	m.netTime += float64(rounds) * matching.PRAMCost(m.h)
}
