package cluster

import (
	"errors"
	"fmt"
	"testing"
)

func TestWorkerLostErrorIdentity(t *testing.T) {
	inner := errors.New("connection refused")
	err := fmt.Errorf("dialing: %w", &WorkerLostError{Worker: 3, Addr: "10.0.0.3:7000", Err: inner})

	var lost *WorkerLostError
	if !errors.As(err, &lost) {
		t.Fatal("errors.As failed through a wrap layer")
	}
	if lost.Worker != 3 || lost.Addr != "10.0.0.3:7000" {
		t.Fatalf("recovered %+v", lost)
	}
	if !errors.Is(err, inner) {
		t.Fatal("errors.Is failed to reach the transport error through Unwrap")
	}
}

// TestWorkerLostErrorSurvivesWire: a WorkerLostError flattened to a
// msgError on one side of the TCP connection must reconstruct as the same
// typed error on the other, so errors.As works across the process boundary.
func TestWorkerLostErrorSurvivesWire(t *testing.T) {
	orig := &WorkerLostError{Worker: 2, Addr: "peer:9", Err: errors.New("i/o timeout")}
	wrapped := fmt.Errorf("exchange: %w", orig)

	m := errorToWire(0, wrapped)
	if m.Code != ecWorkerLost {
		t.Fatalf("wire code %d, want ecWorkerLost", m.Code)
	}
	var back msgError
	if err := back.decode(m.encode()); err != nil {
		t.Fatal(err)
	}
	rebuilt := wireToError(&back)

	var lost *WorkerLostError
	if !errors.As(rebuilt, &lost) {
		t.Fatalf("rebuilt error %T is not a *WorkerLostError", rebuilt)
	}
	if lost.Worker != 2 || lost.Addr != "peer:9" {
		t.Fatalf("rebuilt %+v", lost)
	}
}

func TestGenericErrorSurvivesWire(t *testing.T) {
	m := errorToWire(5, errors.New("shard truncated"))
	if m.Code != ecGeneric || m.Worker != 5 {
		t.Fatalf("wire form %+v", m)
	}
	rebuilt := wireToError(m)
	var lost *WorkerLostError
	if errors.As(rebuilt, &lost) {
		t.Fatal("generic error reconstructed as WorkerLostError")
	}
}

// TestClusterDegradedErrorIdentity: errors.As must reach both the degraded
// error and the quorum-breaking WorkerLostError it wraps, through extra
// wrap layers.
func TestClusterDegradedErrorIdentity(t *testing.T) {
	inner := &WorkerLostError{Worker: 1, Addr: "peer:2", Err: errors.New("EOF")}
	err := fmt.Errorf("job: %w", &ClusterDegradedError{
		Lost: []int{1, 3}, Workers: 4, Quorum: 3, Err: inner,
	})

	var deg *ClusterDegradedError
	if !errors.As(err, &deg) {
		t.Fatal("errors.As failed to find ClusterDegradedError")
	}
	if len(deg.Lost) != 2 || deg.Quorum != 3 {
		t.Fatalf("recovered %+v", deg)
	}
	var lost *WorkerLostError
	if !errors.As(err, &lost) {
		t.Fatal("errors.As failed to reach the wrapped WorkerLostError")
	}
	if lost.Worker != 1 {
		t.Fatalf("wrapped loss names worker %d, want 1", lost.Worker)
	}
}
