package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"path/filepath"
	"testing"
	"time"

	"balancesort/internal/pdm"
	"balancesort/internal/record"
)

// fastDial keeps chaos tests snappy: failover spends most of its wall time
// in redial backoff and heartbeat intervals, all of which can shrink by two
// orders of magnitude on loopback.
var fastDial = DialConfig{Attempts: 2, Backoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}

func fastWorker(_ int, cfg *WorkerConfig) { cfg.Dial = fastDial }

func fastHeartbeat() Heartbeat {
	return Heartbeat{Interval: 25 * time.Millisecond, MissBudget: 3}
}

// checkRecovery asserts that stats records exactly the expected worker
// losses and that the surviving column set is consistent with them.
func checkRecovery(t *testing.T, stats *SortStats, workers int, victims ...int) {
	t.Helper()
	rec := stats.Recovery
	if rec == nil {
		t.Fatal("job recovered from worker loss but SortStats.Recovery is nil")
	}
	if rec.Failovers < 1 {
		t.Fatalf("recovery recorded %d failovers, want >= 1", rec.Failovers)
	}
	lost := make(map[int]bool)
	for _, w := range rec.LostWorkers {
		lost[w] = true
	}
	for _, v := range victims {
		if !lost[v] {
			t.Fatalf("victim %d missing from LostWorkers %v", v, rec.LostWorkers)
		}
	}
	if len(rec.LostPhases) != len(rec.LostWorkers) {
		t.Fatalf("%d lost phases for %d lost workers", len(rec.LostPhases), len(rec.LostWorkers))
	}
	if len(rec.ActiveWorkers) != workers-len(rec.LostWorkers) {
		t.Fatalf("ActiveWorkers %v after losing %v of %d", rec.ActiveWorkers, rec.LostWorkers, workers)
	}
	for _, a := range rec.ActiveWorkers {
		if lost[a] {
			t.Fatalf("worker %d is both lost and active", a)
		}
	}
	if len(stats.X) > 0 && len(stats.X[0]) != len(rec.ActiveWorkers) {
		t.Fatalf("X has %d columns, want one per survivor (%d)", len(stats.X[0]), len(rec.ActiveWorkers))
	}
}

// TestChaosMatrix kills one of four workers at the start of every
// coordinator phase. Each run must still produce byte-identical sorted
// output (runClusterSort compares against the reference order), record the
// loss, and re-plan over the shrunk disk set without breaking the balance
// bound on the post-failover matrix.
func TestChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix is slow under -short")
	}
	for i, phase := range CoordinatorPhases {
		victim := i % 4
		t.Run(phase, func(t *testing.T) {
			addrs := startWorkers(t, 4, fastWorker)
			stats := runClusterSort(t, addrs, 20000, int64(100+i), false, SortSpec{
				BlockRecs: 128,
				Dial:      fastDial,
				Heartbeat: fastHeartbeat(),
				Chaos:     &ChaosSpec{Phase: phase, Worker: victim},
			})
			checkRecovery(t, stats, 4, victim)
			checkBalanceBound(t, stats.X)
		})
	}
}

// TestChaosKillDuringDrain pins down the hardest edge of the matrix: the
// victim dies while the coordinator is already streaming sorted shards into
// the output file. The partial output must be thrown away and rebuilt, and
// the loss must be attributed to the drain phase.
func TestChaosKillDuringDrain(t *testing.T) {
	addrs := startWorkers(t, 4, fastWorker)
	stats := runClusterSort(t, addrs, 20000, 71, true, SortSpec{
		BlockRecs: 128,
		Dial:      fastDial,
		Heartbeat: fastHeartbeat(),
		Chaos:     &ChaosSpec{Phase: "drain", Worker: 0},
	})
	checkRecovery(t, stats, 4, 0)
	found := false
	for _, p := range stats.Recovery.LostPhases {
		if p == "drain" {
			found = true
		}
	}
	if !found {
		t.Fatalf("loss phases %v do not include the drain phase", stats.Recovery.LostPhases)
	}
}

// TestChaosHangDetectedByHeartbeat makes the victim go silent instead of
// dying: its connections stay open but it stops answering pings and stops
// making progress. Only the heartbeat detector can notice that, so a
// passing run proves the ping monitors work end to end.
func TestChaosHangDetectedByHeartbeat(t *testing.T) {
	addrs := startWorkers(t, 4, fastWorker)
	stats := runClusterSort(t, addrs, 20000, 53, false, SortSpec{
		BlockRecs: 128,
		Dial:      fastDial,
		Heartbeat: Heartbeat{Interval: 25 * time.Millisecond, MissBudget: 2},
		Chaos:     &ChaosSpec{Phase: "plan", Worker: 1, Hang: true},
	})
	checkRecovery(t, stats, 4, 1)
}

// TestHeartbeatFlapNoFailover injects pong latency spikes that each exceed
// the ping interval but never exhaust the miss budget. The run must finish
// with no failover at all: a slow pong resets the miss counter even when it
// arrives a full interval late.
func TestHeartbeatFlapNoFailover(t *testing.T) {
	addrs := startWorkers(t, 4, func(i int, cfg *WorkerConfig) {
		cfg.Dial = fastDial
		cfg.PongDelay = 60 * time.Millisecond
		cfg.PongDelayCount = 2
	})
	stats := runClusterSort(t, addrs, 10000, 59, false, SortSpec{
		BlockRecs: 128,
		Dial:      fastDial,
		Heartbeat: Heartbeat{Interval: 30 * time.Millisecond, MissBudget: 3},
	})
	if stats.Recovery != nil {
		t.Fatalf("heartbeat flap escalated to failover: %+v", stats.Recovery)
	}
}

// TestClusterDegradedBelowQuorum kills two of four workers at local sort,
// dropping the cluster below ⌊W/2⌋+1 survivors. However the two deaths
// interleave with failover (one at a time, or both inside one recovery
// window), the job must converge to a typed ClusterDegradedError that still
// exposes the underlying WorkerLostError.
func TestClusterDegradedBelowQuorum(t *testing.T) {
	const W = 4
	kills := make([]context.CancelFunc, W)
	addrs := make([]string, W)
	for i := 0; i < W; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cfg := WorkerConfig{ScratchDir: t.TempDir(), Dial: fastDial}
		if i >= 2 {
			i := i
			cfg.SortShard = func(ctx context.Context, _, _, _ string) error {
				kills[i]() // sever this worker's every connection
				<-ctx.Done()
				return ctx.Err()
			}
		}
		w := NewWorker(cfg)
		ctx, cancel := context.WithCancel(context.Background())
		kills[i] = cancel
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = w.Serve(ctx, ln)
		}()
		t.Cleanup(func() {
			cancel()
			<-done
		})
		addrs[i] = ln.Addr().String()
	}

	inPath, _ := makeInput(t, 20000, 31, false)
	outPath := filepath.Join(t.TempDir(), "out.dat")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	_, err := Sort(ctx, inPath, outPath, SortSpec{
		Workers:   addrs,
		BlockRecs: 128,
		Dial:      fastDial,
		Heartbeat: fastHeartbeat(),
	})
	var deg *ClusterDegradedError
	if !errors.As(err, &deg) {
		t.Fatalf("two losses below quorum returned %v, want *ClusterDegradedError", err)
	}
	if len(deg.Lost) < 2 || deg.Workers != W || deg.Quorum != W/2+1 {
		t.Fatalf("degraded error %+v, want >= 2 lost of %d, quorum %d", deg, W, W/2+1)
	}
	var lost *WorkerLostError
	if !errors.As(err, &lost) {
		t.Fatal("degraded error does not expose the quorum-breaking WorkerLostError")
	}
}

// TestFailoverJournal runs a chaos kill with journaling on and replays the
// journal: it must narrate the job as phases, the loss, and the failover,
// with the scatter extents needed to audit a re-scatter decision.
func TestFailoverJournal(t *testing.T) {
	addrs := startWorkers(t, 4, fastWorker)
	jpath := filepath.Join(t.TempDir(), "cluster.journal")
	runClusterSort(t, addrs, 20000, 41, false, SortSpec{
		BlockRecs:   128,
		Dial:        fastDial,
		Heartbeat:   fastHeartbeat(),
		Chaos:       &ChaosSpec{Phase: "gather", Worker: 2},
		JournalPath: jpath,
	})
	entries, err := pdm.LoadJournal(jpath)
	if err != nil {
		t.Fatalf("load journal: %v", err)
	}
	var sawLost, sawFailover, sawExtents bool
	phases := make(map[string]bool)
	for _, e := range entries {
		var ev journalEvent
		if err := json.Unmarshal(e.Payload, &ev); err != nil {
			t.Fatalf("journal entry %d: %v", e.Seq, err)
		}
		switch ev.Event {
		case "phase":
			phases[ev.Phase] = true
		case "lost":
			if ev.Worker == 2 {
				sawLost = true
			}
		case "failover":
			if ev.Epoch >= 1 && ev.Blocks > 0 {
				sawFailover = true
			}
		case "scatter-done":
			if len(ev.Extents) == 4 {
				sawExtents = true
			}
		}
	}
	for _, p := range CoordinatorPhases {
		if !phases[p] {
			t.Fatalf("journal never entered phase %q (saw %v)", p, phases)
		}
	}
	if !sawLost || !sawFailover || !sawExtents {
		t.Fatalf("journal incomplete: lost=%v failover=%v extents=%v", sawLost, sawFailover, sawExtents)
	}
}

// TestDedupSetBounded: the receiver's retransmit-dedup state must be
// O(streams), not O(blocks received). Each (phase, source) stream has at
// most one unacked block in flight, so remembering only the newest key per
// stream is both sufficient and bounded.
func TestDedupSetBounded(t *testing.T) {
	w := NewWorker(WorkerConfig{ScratchDir: t.TempDir()})
	s, err := newSession(w, &msgHello{JobID: 1, Worker: 0, Workers: 4, S: 8, BlockRecs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.teardown()
	data := make([]byte, 4*record.EncodedSize)
	const blocks = 50
	for src := uint32(0); src < 3; src++ {
		for seq := uint32(0); seq < blocks; seq++ {
			stale, err := s.storeBlock(&msgBlock{
				Phase: 1, Src: src, Bucket: seq % 8, Seq: seq, Data: data,
			}, 0)
			if stale || err != nil {
				t.Fatalf("src %d seq %d: stale=%v err=%v", src, seq, stale, err)
			}
		}
	}
	if s.recvBlocks != 3*blocks {
		t.Fatalf("stored %d blocks, want %d", s.recvBlocks, 3*blocks)
	}
	if len(s.last) != 3 {
		t.Fatalf("dedup state holds %d entries after %d blocks, want one per stream (3)",
			len(s.last), 3*blocks)
	}
	// A retransmission of each stream's newest block — the only block that
	// can legally be retransmitted — must be a stored-nothing no-op.
	for src := uint32(0); src < 3; src++ {
		stale, err := s.storeBlock(&msgBlock{
			Phase: 1, Src: src, Bucket: uint32((blocks - 1) % 8), Seq: blocks - 1, Data: data,
		}, 0)
		if stale || err != nil {
			t.Fatalf("replay src %d: stale=%v err=%v", src, stale, err)
		}
	}
	if s.recvBlocks != 3*blocks {
		t.Fatalf("retransmissions were double-stored: recvBlocks = %d", s.recvBlocks)
	}
}

// TestDialCancelDuringBackoff: canceling the context while dial sleeps
// between attempts must return promptly with context.Canceled, not ride out
// the remaining backoff schedule.
func TestDialCancelDuringBackoff(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here anymore: every attempt fails fast
	d := DialConfig{Attempts: 50, Backoff: 5 * time.Second, MaxBackoff: 5 * time.Second}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = d.dial(ctx, 1, addr)
	if err == nil {
		t.Fatal("dial to a closed port succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("dial returned %v, want context.Canceled", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("cancel took %v to interrupt the backoff sleep", waited)
	}
}
