package cluster

import (
	"encoding/binary"
	"fmt"
	"time"

	"balancesort/internal/obs"
	"balancesort/internal/record"
)

// protocolVersion is bumped on any incompatible wire change; Hello carries
// it and mismatches abort the handshake before any data moves. Version 2
// added the Hello Flags word and the trace-collection messages.
const protocolVersion = 2

// Message types. Coordinator<->worker control messages and worker<->worker
// block messages share one frame namespace so a single decoder serves both.
const (
	mHello byte = iota + 1
	mHelloAck
	mRecords
	mScatterDone
	mHistogram
	mPivots
	mCounts
	mPlan
	mStartGather
	mPhaseDone
	mSortReq
	mSortDone
	mFetch
	mFetchDone
	mBye
	mPeerHello
	mPeerHelloAck
	mBlock
	mBlockAck
	mError
	mTraceReq
	mTrace
	mTraceDone
)

// Hello flag bits.
const (
	// helloFlagTrace asks the worker to record phase spans for the job and
	// ship them back when the coordinator sends mTraceReq after the drain.
	helloFlagTrace uint32 = 1 << 0
)

// histBins is the resolution of the per-worker key histograms the
// coordinator merges to pick bucket pivots: keys are binned by their top
// histBits bits. 4096 bins resolve pivots finely enough for the S <= 4·W
// buckets a cluster sort uses while keeping the message at 32 KiB.
const (
	histBits = 12
	histBins = 1 << histBits
)

// keyBin maps a key to its histogram bin.
func keyBin(key uint64) int { return int(key >> (64 - histBits)) }

// binStart is the smallest key of bin i (i may equal histBins, yielding the
// exclusive upper end of the key space, which saturates to MaxUint64).
func binStart(i int) uint64 {
	if i >= histBins {
		return ^uint64(0)
	}
	return uint64(i) << (64 - histBits)
}

// writer/reader cursors. The reader never panics: any short read marks the
// cursor bad and every subsequent accessor returns zero, so message decoders
// are a linear read followed by a single err check.

type wcur struct{ b []byte }

func (w *wcur) u8(v byte)    { w.b = append(w.b, v) }
func (w *wcur) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *wcur) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *wcur) bytes(p []byte) {
	w.u32(uint32(len(p)))
	w.b = append(w.b, p...)
}
func (w *wcur) str(s string) { w.bytes([]byte(s)) }

type rcur struct {
	b   []byte
	off int
	bad bool
}

func (r *rcur) take(n int) []byte {
	if r.bad || n < 0 || r.off+n > len(r.b) {
		r.bad = true
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

func (r *rcur) u8() byte {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (r *rcur) u32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (r *rcur) u64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (r *rcur) bytes() []byte {
	n := int(r.u32())
	if n > len(r.b)-r.off { // bound before take so a hostile length cannot wrap
		r.bad = true
		return nil
	}
	return r.take(n)
}

func (r *rcur) str() string { return string(r.bytes()) }

// done reports a fully and exactly consumed payload.
func (r *rcur) done() error {
	if r.bad {
		return fmt.Errorf("cluster: truncated or malformed message payload")
	}
	if r.off != len(r.b) {
		return fmt.Errorf("cluster: %d trailing bytes in message payload", len(r.b)-r.off)
	}
	return nil
}

// msgHello is the coordinator's job announcement to one worker.
type msgHello struct {
	Version   uint32
	JobID     uint64
	Worker    uint32 // the recipient's ID in this job
	Workers   uint32 // cluster width W
	S         uint32 // bucket count
	BlockRecs uint32 // records per exchange block
	Flags     uint32 // helloFlag* bits
	Peers     []string
}

func (m *msgHello) encode() []byte {
	var w wcur
	w.u32(m.Version)
	w.u64(m.JobID)
	w.u32(m.Worker)
	w.u32(m.Workers)
	w.u32(m.S)
	w.u32(m.BlockRecs)
	w.u32(m.Flags)
	w.u32(uint32(len(m.Peers)))
	for _, p := range m.Peers {
		w.str(p)
	}
	return w.b
}

func (m *msgHello) decode(p []byte) error {
	r := rcur{b: p}
	m.Version = r.u32()
	m.JobID = r.u64()
	m.Worker = r.u32()
	m.Workers = r.u32()
	m.S = r.u32()
	m.BlockRecs = r.u32()
	m.Flags = r.u32()
	n := int(r.u32())
	if n > maxWorkers {
		return fmt.Errorf("cluster: hello lists %d peers", n)
	}
	m.Peers = make([]string, 0, n)
	for i := 0; i < n && !r.bad; i++ {
		m.Peers = append(m.Peers, r.str())
	}
	return r.done()
}

// maxWorkers bounds cluster width; it exists to keep hostile peer lists and
// per-worker allocations finite, not as a scaling target.
const maxWorkers = 1 << 10

// encodeRecords / decodeRecords carry raw record payloads (scatter chunks,
// shard drains, exchange blocks all share the format).
func encodeRecords(recs []record.Record) []byte { return record.EncodeSlice(recs) }

func decodeRecords(p []byte) ([]record.Record, error) { return record.DecodeSlice(p) }

// msgCount is the one-u64 payload shared by ScatterDone, SortDone, and
// FetchDone.
type msgCount struct{ Count uint64 }

func (m *msgCount) encode() []byte {
	var w wcur
	w.u64(m.Count)
	return w.b
}

func (m *msgCount) decode(p []byte) error {
	r := rcur{b: p}
	m.Count = r.u64()
	return r.done()
}

// msgHistogram is a worker's key histogram over its shard.
type msgHistogram struct {
	Bins []uint64 // length histBins
}

func (m *msgHistogram) encode() []byte {
	w := wcur{b: make([]byte, 0, 8*histBins)}
	for _, v := range m.Bins {
		w.u64(v)
	}
	return w.b
}

func (m *msgHistogram) decode(p []byte) error {
	if len(p) != 8*histBins {
		return fmt.Errorf("cluster: histogram payload is %d bytes, want %d", len(p), 8*histBins)
	}
	r := rcur{b: p}
	m.Bins = make([]uint64, histBins)
	for i := range m.Bins {
		m.Bins[i] = r.u64()
	}
	return r.done()
}

// msgPivots broadcasts the S-1 deterministic bucket pivots. Bucket b covers
// keys in [piv[b-1], piv[b]); bucketOf computes the index.
type msgPivots struct {
	Pivots []uint64
}

func (m *msgPivots) encode() []byte {
	var w wcur
	w.u32(uint32(len(m.Pivots)))
	for _, v := range m.Pivots {
		w.u64(v)
	}
	return w.b
}

func (m *msgPivots) decode(p []byte) error {
	r := rcur{b: p}
	n := int(r.u32())
	if n < 0 || n > len(p)/8 {
		return fmt.Errorf("cluster: pivot message claims %d pivots in %d bytes", n, len(p))
	}
	m.Pivots = make([]uint64, n)
	for i := range m.Pivots {
		m.Pivots[i] = r.u64()
	}
	return r.done()
}

// bucketOf returns the bucket of key under pivots: the number of pivots <= key.
func bucketOf(key uint64, pivots []uint64) int {
	lo, hi := 0, len(pivots)
	for lo < hi {
		mid := (lo + hi) / 2
		if pivots[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// msgCounts is a worker's per-bucket record counts after partitioning its
// shard against the pivots.
type msgCounts struct {
	PerBucket []uint64
}

func (m *msgCounts) encode() []byte {
	var w wcur
	w.u32(uint32(len(m.PerBucket)))
	for _, v := range m.PerBucket {
		w.u64(v)
	}
	return w.b
}

func (m *msgCounts) decode(p []byte) error {
	r := rcur{b: p}
	n := int(r.u32())
	if n < 0 || n > len(p)/8 {
		return fmt.Errorf("cluster: counts message claims %d buckets in %d bytes", n, len(p))
	}
	m.PerBucket = make([]uint64, n)
	for i := range m.PerBucket {
		m.PerBucket[i] = r.u64()
	}
	return r.done()
}

// msgPlan carries one worker's marching orders for the exchange and gather
// phases: the balancer-decided destination of every block the worker will
// form (indexed [bucket][seq]), how many exchange blocks it will receive,
// the bucket->owner map, and how many gather records to expect.
type msgPlan struct {
	Dests            [][]uint32 // [bucket][seq] -> destination worker
	ExpectRecvBlocks uint64
	Owners           []uint32 // [bucket] -> owning worker
	ExpectGatherRecs uint64
}

func (m *msgPlan) encode() []byte {
	var w wcur
	w.u32(uint32(len(m.Dests)))
	for _, row := range m.Dests {
		w.u32(uint32(len(row)))
		for _, d := range row {
			w.u32(d)
		}
	}
	w.u64(m.ExpectRecvBlocks)
	w.u32(uint32(len(m.Owners)))
	for _, o := range m.Owners {
		w.u32(o)
	}
	w.u64(m.ExpectGatherRecs)
	return w.b
}

func (m *msgPlan) decode(p []byte) error {
	r := rcur{b: p}
	s := int(r.u32())
	if s < 0 || s > len(p)/4 {
		return fmt.Errorf("cluster: plan claims %d buckets in %d bytes", s, len(p))
	}
	m.Dests = make([][]uint32, s)
	for b := range m.Dests {
		n := int(r.u32())
		if n < 0 || n > (len(p)-r.off)/4 {
			return fmt.Errorf("cluster: plan bucket %d claims %d blocks", b, n)
		}
		row := make([]uint32, n)
		for i := range row {
			row[i] = r.u32()
		}
		m.Dests[b] = row
	}
	m.ExpectRecvBlocks = r.u64()
	n := int(r.u32())
	if n < 0 || n > (len(p)-r.off+3)/4 {
		return fmt.Errorf("cluster: plan claims %d owners", n)
	}
	m.Owners = make([]uint32, n)
	for i := range m.Owners {
		m.Owners[i] = r.u32()
	}
	m.ExpectGatherRecs = r.u64()
	return r.done()
}

// msgPhaseDone is a worker's barrier report: it has sent everything the
// plan required of it for the phase and received everything it expected.
type msgPhaseDone struct {
	Phase      uint8 // 1 = exchange, 2 = gather
	BlocksSent uint64
	BlocksRecv uint64
	RecsRecv   uint64
}

func (m *msgPhaseDone) encode() []byte {
	var w wcur
	w.u8(m.Phase)
	w.u64(m.BlocksSent)
	w.u64(m.BlocksRecv)
	w.u64(m.RecsRecv)
	return w.b
}

func (m *msgPhaseDone) decode(p []byte) error {
	r := rcur{b: p}
	m.Phase = r.u8()
	m.BlocksSent = r.u64()
	m.BlocksRecv = r.u64()
	m.RecsRecv = r.u64()
	return r.done()
}

// msgPeerHello opens a worker-to-worker block connection.
type msgPeerHello struct {
	JobID uint64
	Src   uint32
}

func (m *msgPeerHello) encode() []byte {
	var w wcur
	w.u64(m.JobID)
	w.u32(m.Src)
	return w.b
}

func (m *msgPeerHello) decode(p []byte) error {
	r := rcur{b: p}
	m.JobID = r.u64()
	m.Src = r.u32()
	return r.done()
}

// msgBlock moves one exchange or gather block between workers. Blocks are
// idempotent — (Phase, Src, Bucket, Seq) identifies one forever — so a
// retransmitted block after a dropped connection deduplicates at the
// receiver instead of corrupting the shard.
type msgBlock struct {
	Phase  uint8
	Src    uint32
	Bucket uint32
	Seq    uint32
	Data   []byte // raw encoded records
}

func (m *msgBlock) encode() []byte {
	w := wcur{b: make([]byte, 0, 13+4+len(m.Data))}
	w.u8(m.Phase)
	w.u32(m.Src)
	w.u32(m.Bucket)
	w.u32(m.Seq)
	w.bytes(m.Data)
	return w.b
}

func (m *msgBlock) decode(p []byte) error {
	r := rcur{b: p}
	m.Phase = r.u8()
	m.Src = r.u32()
	m.Bucket = r.u32()
	m.Seq = r.u32()
	m.Data = r.bytes()
	if err := r.done(); err != nil {
		return err
	}
	if len(m.Data)%record.EncodedSize != 0 {
		return fmt.Errorf("cluster: block payload of %d bytes is not whole records", len(m.Data))
	}
	return nil
}

// msgBlockAck acknowledges one block on the same connection it arrived on.
type msgBlockAck struct {
	Phase  uint8
	Bucket uint32
	Seq    uint32
}

func (m *msgBlockAck) encode() []byte {
	var w wcur
	w.u8(m.Phase)
	w.u32(m.Bucket)
	w.u32(m.Seq)
	return w.b
}

func (m *msgBlockAck) decode(p []byte) error {
	r := rcur{b: p}
	m.Phase = r.u8()
	m.Bucket = r.u32()
	m.Seq = r.u32()
	return r.done()
}

// Error codes carried by msgError so typed errors survive the process
// boundary: the receiving side reconstructs the matching Go error type.
const (
	ecGeneric uint32 = iota
	ecWorkerLost
)

// msgError propagates a fatal job error in either direction.
type msgError struct {
	Code   uint32
	Worker uint32
	Addr   string
	Text   string
}

func (m *msgError) encode() []byte {
	var w wcur
	w.u32(m.Code)
	w.u32(m.Worker)
	w.str(m.Addr)
	w.str(m.Text)
	return w.b
}

func (m *msgError) decode(p []byte) error {
	r := rcur{b: p}
	m.Code = r.u32()
	m.Worker = r.u32()
	m.Addr = r.str()
	m.Text = r.str()
	return r.done()
}

// traceChunkSpans bounds spans per mTrace frame. A span is ~60 bytes on
// the wire with typical names, so 8192 spans stay well under the 2 MiB
// MaxFramePayload even with generous attribute lists.
const traceChunkSpans = 8192

// msgTrace ships one chunk of a worker's recorded spans back to the
// coordinator. EpochNanos is the worker tracer's epoch as wall-clock
// UnixNano, which the coordinator uses to rebase span offsets onto its
// own epoch before merging into the job timeline.
type msgTrace struct {
	EpochNanos uint64
	Spans      []obs.Span
}

func (m *msgTrace) encode() []byte {
	var w wcur
	w.u64(m.EpochNanos)
	w.u32(uint32(len(m.Spans)))
	for _, s := range m.Spans {
		w.str(s.Layer)
		w.str(s.Name)
		w.u32(uint32(s.ID))
		w.u64(uint64(s.Start))
		w.u64(uint64(s.Dur))
		w.u32(uint32(len(s.Attrs)))
		for _, a := range s.Attrs {
			w.str(a.Key)
			w.u64(uint64(a.Val))
		}
	}
	return w.b
}

func (m *msgTrace) decode(p []byte) error {
	r := rcur{b: p}
	m.EpochNanos = r.u64()
	n := int(r.u32())
	// A span is at least 32 bytes (two empty strings, id, start, dur,
	// attr count); bound before allocating so a hostile count cannot
	// balloon memory.
	if n < 0 || n > (len(p)-r.off)/32 {
		return fmt.Errorf("cluster: trace chunk claims %d spans in %d bytes", n, len(p))
	}
	m.Spans = make([]obs.Span, 0, n)
	for i := 0; i < n && !r.bad; i++ {
		var s obs.Span
		s.Layer = r.str()
		s.Name = r.str()
		s.ID = int(r.u32())
		s.Start = time.Duration(r.u64())
		s.Dur = time.Duration(r.u64())
		na := int(r.u32())
		if na < 0 || na > (len(p)-r.off)/12 {
			return fmt.Errorf("cluster: trace span claims %d attrs", na)
		}
		if na > 0 {
			s.Attrs = make([]obs.Attr, 0, na)
			for j := 0; j < na && !r.bad; j++ {
				var a obs.Attr
				a.Key = r.str()
				a.Val = int64(r.u64())
				s.Attrs = append(s.Attrs, a)
			}
		}
		m.Spans = append(m.Spans, s)
	}
	return r.done()
}
