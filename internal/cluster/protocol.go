package cluster

import (
	"encoding/binary"
	"fmt"
	"time"

	"balancesort/internal/obs"
	"balancesort/internal/record"
)

// protocolVersion is bumped on any incompatible wire change; Hello carries
// it and the two sides settle on min(coordinator, worker) before any data
// moves. Version 2 added the Hello Flags word and the trace-collection
// messages. Version 3 added the failure-detector messages (mMonHello,
// mPing/mPong), the failover messages (mPeerLost, mRescatter,
// mRescatterDone, mRescatterAck), the chaos message (mCrash), a version
// payload on mHelloAck, and an optional epoch suffix on mPeerHello.
//
// A v3 worker still serves a v2 coordinator byte-for-byte (empty HelloAck,
// no epochs on the wire, fail-fast on peer loss); a v3 coordinator driving
// any v2 worker disables heartbeats and failover for the whole job, so a
// mixed cluster degrades to v2 semantics rather than failing the handshake.
//
// Version 4 added the membership-churn messages: mJoin (a worker added
// mid-job as a new virtual disk), mResume/mResumeState (coordinator crash
// recovery: a restarted coordinator re-attaches to parked worker sessions
// and learns which epoch-tagged shard state each still holds), and two
// optional trailing fields on mRescatter — a Fresh flag that forces the
// shard to be truncated before the re-scatter stream, and a Peers list that
// replaces the session's peer table so survivors learn a joiner's address.
// All of it degrades: a v4 coordinator driving any v<4 worker disables
// join and resume for the job (c.elastic), and the epoch-0/no-churn wire
// encoding stays byte-identical to v3.
//
// Version 5 extended the mTrace span encoding with causality fields (span
// id, parent id, flow id, flow direction) behind the traceExtFlag bit of
// the span-count word. A v5 worker only emits the extended encoding when
// the session settled on version 5, so a v<5 coordinator still receives
// byte-identical v4 trace chunks; a v5 decoder reads both forms.
//
// Version 6 added the straggler-mitigation wire surface: an optional
// progress trailer on mPong (per-phase work counters, so the coordinator
// can detect a live-but-stalled worker), the crashStall chaos mode with an
// optional slowdown factor on mCrash, the hedged shard-sort messages
// (mHedgeHello/mHedgeHelloAck on a dedicated coordinator->target
// connection, mHedgeSend on every control link, mHedgeDone, mSortCancel),
// and the ecStraggler error code with an optional phase/budget trailer on
// mError. All of it degrades: a v6 worker only appends the pong trailer
// when the session settled on version 6, hedging and stall injection are
// disabled for the whole job unless every worker negotiated v6, and the
// v<6 encodings stay byte-identical.
const (
	protocolVersion    = 6
	minProtocolVersion = 2
)

// Message types. Coordinator<->worker control messages and worker<->worker
// block messages share one frame namespace so a single decoder serves both.
const (
	mHello byte = iota + 1
	mHelloAck
	mRecords
	mScatterDone
	mHistogram
	mPivots
	mCounts
	mPlan
	mStartGather
	mPhaseDone
	mSortReq
	mSortDone
	mFetch
	mFetchDone
	mBye
	mPeerHello
	mPeerHelloAck
	mBlock
	mBlockAck
	mError
	mTraceReq
	mTrace
	mTraceDone
	// v3 messages below. A v2 peer never sees them on the wire.
	mMonHello      // coordinator opens a heartbeat connection to a worker
	mPing          // coordinator liveness probe on the monitor connection
	mPong          // worker liveness reply
	mPeerLost      // worker -> coordinator: a peer stopped answering; keep me alive
	mCrash         // coordinator -> worker chaos injection: die or hang now
	mRescatter     // coordinator -> survivor: new epoch begins, extra shard records follow
	mRescatterDone // coordinator -> survivor: re-scatter stream complete, total shard size
	mRescatterAck  // survivor -> coordinator: reset done, ready for the new epoch
	// v4 messages below. A v<4 peer never sees them on the wire.
	mJoin        // coordinator -> new worker: attach mid-job as an added virtual disk
	mResume      // restarted coordinator -> worker: re-open the job's control link
	mResumeState // worker -> coordinator: the epoch-tagged shard state it still holds
	// v6 messages below. A v<6 peer never sees them on the wire.
	mHedgeHello    // coordinator -> hedge target: re-run a straggler's shard sort
	mHedgeHelloAck // hedge target -> coordinator: hedge session armed
	mHedgeSend     // coordinator -> every worker: resend a victim's gather blocks to the target
	mHedgeDone     // hedge target -> coordinator: hedged shard sorted, record count follows
	mSortCancel    // coordinator -> straggler: hedge won, abandon the shard sort
)

// Hello flag bits.
const (
	// helloFlagTrace asks the worker to record phase spans for the job and
	// ship them back when the coordinator sends mTraceReq after the drain.
	helloFlagTrace uint32 = 1 << 0
)

// histBins is the resolution of the per-worker key histograms the
// coordinator merges to pick bucket pivots: keys are binned by their top
// histBits bits. 4096 bins resolve pivots finely enough for the S <= 4·W
// buckets a cluster sort uses while keeping the message at 32 KiB.
const (
	histBits = 12
	histBins = 1 << histBits
)

// keyBin maps a key to its histogram bin.
func keyBin(key uint64) int { return int(key >> (64 - histBits)) }

// binStart is the smallest key of bin i (i may equal histBins, yielding the
// exclusive upper end of the key space, which saturates to MaxUint64).
func binStart(i int) uint64 {
	if i >= histBins {
		return ^uint64(0)
	}
	return uint64(i) << (64 - histBits)
}

// writer/reader cursors. The reader never panics: any short read marks the
// cursor bad and every subsequent accessor returns zero, so message decoders
// are a linear read followed by a single err check.

type wcur struct{ b []byte }

func (w *wcur) u8(v byte)    { w.b = append(w.b, v) }
func (w *wcur) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *wcur) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *wcur) bytes(p []byte) {
	w.u32(uint32(len(p)))
	w.b = append(w.b, p...)
}
func (w *wcur) str(s string) { w.bytes([]byte(s)) }

type rcur struct {
	b   []byte
	off int
	bad bool
}

func (r *rcur) take(n int) []byte {
	if r.bad || n < 0 || r.off+n > len(r.b) {
		r.bad = true
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

func (r *rcur) u8() byte {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (r *rcur) u32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (r *rcur) u64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (r *rcur) bytes() []byte {
	n := int(r.u32())
	if n > len(r.b)-r.off { // bound before take so a hostile length cannot wrap
		r.bad = true
		return nil
	}
	return r.take(n)
}

func (r *rcur) str() string { return string(r.bytes()) }

// done reports a fully and exactly consumed payload.
func (r *rcur) done() error {
	if r.bad {
		return fmt.Errorf("cluster: truncated or malformed message payload")
	}
	if r.off != len(r.b) {
		return fmt.Errorf("cluster: %d trailing bytes in message payload", len(r.b)-r.off)
	}
	return nil
}

// msgHello is the coordinator's job announcement to one worker.
type msgHello struct {
	Version   uint32
	JobID     uint64
	Worker    uint32 // the recipient's ID in this job
	Workers   uint32 // cluster width W
	S         uint32 // bucket count
	BlockRecs uint32 // records per exchange block
	Flags     uint32 // helloFlag* bits
	Peers     []string
}

func (m *msgHello) encode() []byte {
	var w wcur
	w.u32(m.Version)
	w.u64(m.JobID)
	w.u32(m.Worker)
	w.u32(m.Workers)
	w.u32(m.S)
	w.u32(m.BlockRecs)
	w.u32(m.Flags)
	w.u32(uint32(len(m.Peers)))
	for _, p := range m.Peers {
		w.str(p)
	}
	return w.b
}

func (m *msgHello) decode(p []byte) error {
	r := rcur{b: p}
	m.Version = r.u32()
	m.JobID = r.u64()
	m.Worker = r.u32()
	m.Workers = r.u32()
	m.S = r.u32()
	m.BlockRecs = r.u32()
	m.Flags = r.u32()
	n := int(r.u32())
	if n > maxWorkers {
		return fmt.Errorf("cluster: hello lists %d peers", n)
	}
	m.Peers = make([]string, 0, n)
	for i := 0; i < n && !r.bad; i++ {
		m.Peers = append(m.Peers, r.str())
	}
	return r.done()
}

// maxWorkers bounds cluster width; it exists to keep hostile peer lists and
// per-worker allocations finite, not as a scaling target.
const maxWorkers = 1 << 10

// encodeRecords / decodeRecords carry raw record payloads (scatter chunks,
// shard drains, exchange blocks all share the format).
func encodeRecords(recs []record.Record) []byte { return record.EncodeSlice(recs) }

func decodeRecords(p []byte) ([]record.Record, error) { return record.DecodeSlice(p) }

// msgCount is the one-u64 payload shared by ScatterDone, SortDone, and
// FetchDone.
type msgCount struct{ Count uint64 }

func (m *msgCount) encode() []byte {
	var w wcur
	w.u64(m.Count)
	return w.b
}

func (m *msgCount) decode(p []byte) error {
	r := rcur{b: p}
	m.Count = r.u64()
	return r.done()
}

// msgHistogram is a worker's key histogram over its shard.
type msgHistogram struct {
	Bins []uint64 // length histBins
}

func (m *msgHistogram) encode() []byte {
	w := wcur{b: make([]byte, 0, 8*histBins)}
	for _, v := range m.Bins {
		w.u64(v)
	}
	return w.b
}

func (m *msgHistogram) decode(p []byte) error {
	if len(p) != 8*histBins {
		return fmt.Errorf("cluster: histogram payload is %d bytes, want %d", len(p), 8*histBins)
	}
	r := rcur{b: p}
	m.Bins = make([]uint64, histBins)
	for i := range m.Bins {
		m.Bins[i] = r.u64()
	}
	return r.done()
}

// msgPivots broadcasts the S-1 deterministic bucket pivots. Bucket b covers
// keys in [piv[b-1], piv[b]); bucketOf computes the index.
type msgPivots struct {
	Pivots []uint64
}

func (m *msgPivots) encode() []byte {
	var w wcur
	w.u32(uint32(len(m.Pivots)))
	for _, v := range m.Pivots {
		w.u64(v)
	}
	return w.b
}

func (m *msgPivots) decode(p []byte) error {
	r := rcur{b: p}
	n := int(r.u32())
	if n < 0 || n > len(p)/8 {
		return fmt.Errorf("cluster: pivot message claims %d pivots in %d bytes", n, len(p))
	}
	m.Pivots = make([]uint64, n)
	for i := range m.Pivots {
		m.Pivots[i] = r.u64()
	}
	return r.done()
}

// bucketOf returns the bucket of key under pivots: the number of pivots <= key.
func bucketOf(key uint64, pivots []uint64) int {
	lo, hi := 0, len(pivots)
	for lo < hi {
		mid := (lo + hi) / 2
		if pivots[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// msgCounts is a worker's per-bucket record counts after partitioning its
// shard against the pivots.
type msgCounts struct {
	PerBucket []uint64
}

func (m *msgCounts) encode() []byte {
	var w wcur
	w.u32(uint32(len(m.PerBucket)))
	for _, v := range m.PerBucket {
		w.u64(v)
	}
	return w.b
}

func (m *msgCounts) decode(p []byte) error {
	r := rcur{b: p}
	n := int(r.u32())
	if n < 0 || n > len(p)/8 {
		return fmt.Errorf("cluster: counts message claims %d buckets in %d bytes", n, len(p))
	}
	m.PerBucket = make([]uint64, n)
	for i := range m.PerBucket {
		m.PerBucket[i] = r.u64()
	}
	return r.done()
}

// msgPlan carries one worker's marching orders for the exchange and gather
// phases: the balancer-decided destination of every block the worker will
// form (indexed [bucket][seq]), how many exchange blocks it will receive,
// the bucket->owner map, and how many gather records to expect.
type msgPlan struct {
	Dests            [][]uint32 // [bucket][seq] -> destination worker
	ExpectRecvBlocks uint64
	Owners           []uint32 // [bucket] -> owning worker
	ExpectGatherRecs uint64
}

func (m *msgPlan) encode() []byte {
	var w wcur
	w.u32(uint32(len(m.Dests)))
	for _, row := range m.Dests {
		w.u32(uint32(len(row)))
		for _, d := range row {
			w.u32(d)
		}
	}
	w.u64(m.ExpectRecvBlocks)
	w.u32(uint32(len(m.Owners)))
	for _, o := range m.Owners {
		w.u32(o)
	}
	w.u64(m.ExpectGatherRecs)
	return w.b
}

func (m *msgPlan) decode(p []byte) error {
	r := rcur{b: p}
	s := int(r.u32())
	if s < 0 || s > len(p)/4 {
		return fmt.Errorf("cluster: plan claims %d buckets in %d bytes", s, len(p))
	}
	m.Dests = make([][]uint32, s)
	for b := range m.Dests {
		n := int(r.u32())
		if n < 0 || n > (len(p)-r.off)/4 {
			return fmt.Errorf("cluster: plan bucket %d claims %d blocks", b, n)
		}
		row := make([]uint32, n)
		for i := range row {
			row[i] = r.u32()
		}
		m.Dests[b] = row
	}
	m.ExpectRecvBlocks = r.u64()
	n := int(r.u32())
	if n < 0 || n > (len(p)-r.off+3)/4 {
		return fmt.Errorf("cluster: plan claims %d owners", n)
	}
	m.Owners = make([]uint32, n)
	for i := range m.Owners {
		m.Owners[i] = r.u32()
	}
	m.ExpectGatherRecs = r.u64()
	return r.done()
}

// msgPhaseDone is a worker's barrier report: it has sent everything the
// plan required of it for the phase and received everything it expected.
type msgPhaseDone struct {
	Phase      uint8 // 1 = exchange, 2 = gather
	BlocksSent uint64
	BlocksRecv uint64
	RecsRecv   uint64
}

func (m *msgPhaseDone) encode() []byte {
	var w wcur
	w.u8(m.Phase)
	w.u64(m.BlocksSent)
	w.u64(m.BlocksRecv)
	w.u64(m.RecsRecv)
	return w.b
}

func (m *msgPhaseDone) decode(p []byte) error {
	r := rcur{b: p}
	m.Phase = r.u8()
	m.BlocksSent = r.u64()
	m.BlocksRecv = r.u64()
	m.RecsRecv = r.u64()
	return r.done()
}

// msgPeerHello opens a worker-to-worker block connection. Epoch is the
// failover epoch the sender believes the job is in; it is appended to the
// payload only when nonzero, so the epoch-0 encoding is byte-identical to
// the v2 wire format (recovery epochs only exist in all-v3 clusters). A
// receiver refuses connections from a stale epoch: the sender is a zombie
// from before a failover and its blocks must not land in the reset shard.
type msgPeerHello struct {
	JobID uint64
	Src   uint32
	Epoch uint32
}

func (m *msgPeerHello) encode() []byte {
	var w wcur
	w.u64(m.JobID)
	w.u32(m.Src)
	if m.Epoch != 0 {
		w.u32(m.Epoch)
	}
	return w.b
}

func (m *msgPeerHello) decode(p []byte) error {
	r := rcur{b: p}
	m.JobID = r.u64()
	m.Src = r.u32()
	m.Epoch = 0
	if r.off < len(r.b) {
		m.Epoch = r.u32()
	}
	return r.done()
}

// msgVersion is the mHelloAck payload from a v3 worker carrying the
// protocol version it settled on. A v2 worker acks with an empty payload,
// which decodes as version 2, so the coordinator learns each worker's
// dialect from the ack alone.
type msgVersion struct {
	Version uint32
}

func (m *msgVersion) encode() []byte {
	var w wcur
	w.u32(m.Version)
	return w.b
}

func (m *msgVersion) decode(p []byte) error {
	if len(p) == 0 {
		m.Version = minProtocolVersion
		return nil
	}
	r := rcur{b: p}
	m.Version = r.u32()
	return r.done()
}

// msgMonHello opens the coordinator's heartbeat connection to a worker.
// The worker attaches it to the running job's session (so chaos kills and
// session teardown close it) and answers every mPing with an mPong.
type msgMonHello struct {
	JobID uint64
}

func (m *msgMonHello) encode() []byte {
	var w wcur
	w.u64(m.JobID)
	return w.b
}

func (m *msgMonHello) decode(p []byte) error {
	r := rcur{b: p}
	m.JobID = r.u64()
	return r.done()
}

// msgPing / msgPong carry a sequence number so a delayed pong is still
// recognizably a liveness signal (any pong resets the miss counter; the
// sequence exists for debugging, not matching).
type msgPing struct {
	Seq uint64
}

func (m *msgPing) encode() []byte {
	var w wcur
	w.u64(m.Seq)
	return w.b
}

func (m *msgPing) decode(p []byte) error {
	r := rcur{b: p}
	m.Seq = r.u64()
	return r.done()
}

// msgProgress is the v6 mPong payload: the echoed ping sequence followed
// by the worker's per-phase progress counters. A v<6 worker answers with
// the bare 8-byte echo, which decodes with Have == false, so the
// coordinator's progress detector silently degrades to liveness-only for
// that worker. Units is a monotone count of work items finished in the
// current phase (records scanned, blocks stored, chunks sent, ...): the
// detector only compares successive values of the same worker, so the
// unit does not have to mean the same thing across phases or peers.
type msgProgress struct {
	Seq        uint64
	Have       bool  // trailer present: the worker speaks v6
	Phase      uint8 // index into WorkerPhases
	Units      uint64
	ShardRecs  uint64 // records scattered into the shard
	RecvBlocks uint64 // exchange blocks received
	GatherRecs uint64 // gather records received
}

func (m *msgProgress) encode() []byte {
	var w wcur
	w.u64(m.Seq)
	if m.Have {
		w.u8(m.Phase)
		w.u64(m.Units)
		w.u64(m.ShardRecs)
		w.u64(m.RecvBlocks)
		w.u64(m.GatherRecs)
	}
	return w.b
}

func (m *msgProgress) decode(p []byte) error {
	r := rcur{b: p}
	m.Seq = r.u64()
	m.Have = false
	if !r.bad && r.off < len(r.b) {
		m.Have = true
		m.Phase = r.u8()
		m.Units = r.u64()
		m.ShardRecs = r.u64()
		m.RecvBlocks = r.u64()
		m.GatherRecs = r.u64()
	}
	return r.done()
}

// msgHedgeHello opens the coordinator's dedicated hedge connection to the
// target worker: re-collect the victim's buckets (about to be re-sent as
// phase-3 blocks by every active worker) and sort them as a speculative
// copy of the victim's shard. The target answers mHedgeHelloAck, later
// mHedgeDone with the sorted count, and finally serves the shard over the
// same connection via mFetch. The connection doubling as the hedge's
// lifetime handle is the cancellation protocol: the coordinator closing it
// aborts the hedge, and a failover epoch bump closes it from the worker
// side.
type msgHedgeHello struct {
	JobID   uint64
	Epoch   uint32
	Victim  uint32   // the straggler whose shard is being re-run
	Recs    uint64   // exact records the hedged shard must contain
	Buckets []uint32 // the buckets the victim owns, ascending
}

func (m *msgHedgeHello) encode() []byte {
	var w wcur
	w.u64(m.JobID)
	w.u32(m.Epoch)
	w.u32(m.Victim)
	w.u64(m.Recs)
	w.u32(uint32(len(m.Buckets)))
	for _, b := range m.Buckets {
		w.u32(b)
	}
	return w.b
}

func (m *msgHedgeHello) decode(p []byte) error {
	r := rcur{b: p}
	m.JobID = r.u64()
	m.Epoch = r.u32()
	m.Victim = r.u32()
	m.Recs = r.u64()
	n := int(r.u32())
	if n < 0 || n > (len(p)-r.off+3)/4 {
		return fmt.Errorf("cluster: hedge hello claims %d buckets in %d bytes", n, len(p))
	}
	m.Buckets = make([]uint32, 0, n)
	for i := 0; i < n && !r.bad; i++ {
		m.Buckets = append(m.Buckets, r.u32())
	}
	return r.done()
}

// msgHedgeSend orders one worker to re-send the listed buckets' gather
// blocks to the hedge target as phase-3 mBlock frames (fresh streams, so
// the receiver's per-stream dedup makes retransmission safe). The bucket
// list rides the message so re-senders never have to consult their own
// plan state from another goroutine.
type msgHedgeSend struct {
	Epoch   uint32
	Victim  uint32
	Target  uint32
	Buckets []uint32
}

func (m *msgHedgeSend) encode() []byte {
	var w wcur
	w.u32(m.Epoch)
	w.u32(m.Victim)
	w.u32(m.Target)
	w.u32(uint32(len(m.Buckets)))
	for _, b := range m.Buckets {
		w.u32(b)
	}
	return w.b
}

func (m *msgHedgeSend) decode(p []byte) error {
	r := rcur{b: p}
	m.Epoch = r.u32()
	m.Victim = r.u32()
	m.Target = r.u32()
	n := int(r.u32())
	if n < 0 || n > (len(p)-r.off+3)/4 {
		return fmt.Errorf("cluster: hedge send claims %d buckets in %d bytes", n, len(p))
	}
	m.Buckets = make([]uint32, 0, n)
	for i := 0; i < n && !r.bad; i++ {
		m.Buckets = append(m.Buckets, r.u32())
	}
	return r.done()
}

// Chaos modes carried by msgCrash.
const (
	crashKill  uint8 = iota // drop the session and close every connection
	crashHang               // go silent: stop ponging and stop making progress
	crashStall              // v6: keep ponging but slow every unit of work by Factor
)

// msgCrash is the chaos-harness injection: the worker dies, hangs, or
// slows down the instant its control reader sees it, whatever phase the
// job is in. Factor is appended only for crashStall, which only an all-v6
// cluster ever sends, so the kill/hang encoding is unchanged.
type msgCrash struct {
	Mode   uint8
	Factor uint32 // crashStall only: every work unit takes Factor times as long
}

func (m *msgCrash) encode() []byte {
	var w wcur
	w.u8(m.Mode)
	if m.Mode == crashStall {
		w.u32(m.Factor)
	}
	return w.b
}

func (m *msgCrash) decode(p []byte) error {
	r := rcur{b: p}
	m.Mode = r.u8()
	m.Factor = 0
	if m.Mode == crashStall && r.off < len(r.b) {
		m.Factor = r.u32()
	}
	return r.done()
}

// msgPeerLost is a v3 worker's report that a peer stopped answering during
// the exchange or gather phase. Unlike the v2 mError path the reporter
// stays alive and waits for the coordinator's recovery instructions.
type msgPeerLost struct {
	Worker uint32
	Addr   string
	Text   string
}

func (m *msgPeerLost) encode() []byte {
	var w wcur
	w.u32(m.Worker)
	w.str(m.Addr)
	w.str(m.Text)
	return w.b
}

func (m *msgPeerLost) decode(p []byte) error {
	r := rcur{b: p}
	m.Worker = r.u32()
	m.Addr = r.str()
	m.Text = r.str()
	return r.done()
}

// msgRescatter opens a failover epoch on a surviving worker: discard all
// exchange/gather state, keep the scattered shard, adopt the new epoch and
// the shrunk active set. The dead workers' shard records follow as
// mRecords frames, then mRescatterDone closes the stream.
//
// Two v4 trailing fields are appended only when churn needs them, so the
// v3 failover encoding is unchanged: Fresh forces the shard to be truncated
// before the stream (a resumed worker whose shard no longer matches the
// journal must be re-fed from scratch), and a non-empty Peers list replaces
// the session's peer address table (a join grows it; the active set can now
// name a worker the session has never met).
type msgRescatter struct {
	Epoch  uint32
	Active []uint32 // surviving worker IDs, ascending
	Fresh  bool     // v4: truncate the shard before applying the stream
	Peers  []string // v4: full replacement peer table, empty = keep current
}

func (m *msgRescatter) encode() []byte {
	var w wcur
	w.u32(m.Epoch)
	w.u32(uint32(len(m.Active)))
	for _, a := range m.Active {
		w.u32(a)
	}
	if m.Fresh || len(m.Peers) > 0 {
		if m.Fresh {
			w.u8(1)
		} else {
			w.u8(0)
		}
		w.u32(uint32(len(m.Peers)))
		for _, p := range m.Peers {
			w.str(p)
		}
	}
	return w.b
}

func (m *msgRescatter) decode(p []byte) error {
	r := rcur{b: p}
	m.Epoch = r.u32()
	n := int(r.u32())
	if n < 0 || n > maxWorkers {
		return fmt.Errorf("cluster: rescatter lists %d active workers", n)
	}
	m.Active = make([]uint32, 0, n)
	for i := 0; i < n && !r.bad; i++ {
		m.Active = append(m.Active, r.u32())
	}
	m.Fresh, m.Peers = false, nil
	if !r.bad && r.off < len(r.b) {
		m.Fresh = r.u8() != 0
		np := int(r.u32())
		if np > maxWorkers {
			return fmt.Errorf("cluster: rescatter lists %d peers", np)
		}
		m.Peers = make([]string, 0, np)
		for i := 0; i < np && !r.bad; i++ {
			m.Peers = append(m.Peers, r.str())
		}
	}
	return r.done()
}

// msgRescatterDone ends a re-scatter stream; Total is the shard size the
// coordinator now expects on this worker, which the worker cross-checks.
type msgRescatterDone struct {
	Epoch uint32
	Total uint64
}

func (m *msgRescatterDone) encode() []byte {
	var w wcur
	w.u32(m.Epoch)
	w.u64(m.Total)
	return w.b
}

func (m *msgRescatterDone) decode(p []byte) error {
	r := rcur{b: p}
	m.Epoch = r.u32()
	m.Total = r.u64()
	return r.done()
}

// msgRescatterAck reports a survivor reset and re-fed: old exchange and
// gather state dropped, shard extended, ready to rerun from the histogram
// phase under the new epoch.
type msgRescatterAck struct {
	Epoch     uint32
	ShardRecs uint64
}

func (m *msgRescatterAck) encode() []byte {
	var w wcur
	w.u32(m.Epoch)
	w.u64(m.ShardRecs)
	return w.b
}

func (m *msgRescatterAck) decode(p []byte) error {
	r := rcur{b: p}
	m.Epoch = r.u32()
	m.ShardRecs = r.u64()
	return r.done()
}

// msgAttach is the payload shared by mJoin and mResume (v4): the full job
// description a fresh mHello would carry, plus the epoch the attaching
// worker must adopt. For mJoin the recipient is a brand-new worker added as
// an extra virtual disk mid-job; for mResume the recipient may still hold a
// parked session from before the coordinator crashed, and answers with
// mResumeState describing whatever epoch-tagged shard it kept.
type msgAttach struct {
	Version   uint32
	JobID     uint64
	Worker    uint32 // the recipient's ID in this job
	Workers   uint32 // cluster width W after the attach
	S         uint32 // bucket count
	BlockRecs uint32 // records per exchange block
	Flags     uint32 // helloFlag* bits
	Epoch     uint32 // the epoch the attach establishes / resumes into
	Peers     []string
}

func (m *msgAttach) encode() []byte {
	var w wcur
	w.u32(m.Version)
	w.u64(m.JobID)
	w.u32(m.Worker)
	w.u32(m.Workers)
	w.u32(m.S)
	w.u32(m.BlockRecs)
	w.u32(m.Flags)
	w.u32(m.Epoch)
	w.u32(uint32(len(m.Peers)))
	for _, p := range m.Peers {
		w.str(p)
	}
	return w.b
}

func (m *msgAttach) decode(p []byte) error {
	r := rcur{b: p}
	m.Version = r.u32()
	m.JobID = r.u64()
	m.Worker = r.u32()
	m.Workers = r.u32()
	m.S = r.u32()
	m.BlockRecs = r.u32()
	m.Flags = r.u32()
	m.Epoch = r.u32()
	n := int(r.u32())
	if n > maxWorkers {
		return fmt.Errorf("cluster: attach lists %d peers", n)
	}
	m.Peers = make([]string, 0, n)
	for i := 0; i < n && !r.bad; i++ {
		m.Peers = append(m.Peers, r.str())
	}
	return r.done()
}

// msgResumeState is a worker's answer to mResume: whether it still holds a
// parked shard for the job, and if so under which epoch and how many
// records. A coordinator re-streams a worker's scatter extents only when
// the reported state does not match its journal; matching shards are
// adopted as-is, which is what makes resume cheap after a clean park.
type msgResumeState struct {
	Version   uint32
	HaveShard uint8 // 1 when a parked shard for the job was adopted
	Epoch     uint32
	ShardRecs uint64
}

func (m *msgResumeState) encode() []byte {
	var w wcur
	w.u32(m.Version)
	w.u8(m.HaveShard)
	w.u32(m.Epoch)
	w.u64(m.ShardRecs)
	return w.b
}

func (m *msgResumeState) decode(p []byte) error {
	r := rcur{b: p}
	m.Version = r.u32()
	m.HaveShard = r.u8()
	m.Epoch = r.u32()
	m.ShardRecs = r.u64()
	return r.done()
}

// msgBlock moves one exchange or gather block between workers. Blocks are
// idempotent — (Phase, Src, Bucket, Seq) identifies one forever — so a
// retransmitted block after a dropped connection deduplicates at the
// receiver instead of corrupting the shard.
type msgBlock struct {
	Phase  uint8
	Src    uint32
	Bucket uint32
	Seq    uint32
	Data   []byte // raw encoded records
}

func (m *msgBlock) encode() []byte {
	w := wcur{b: make([]byte, 0, 13+4+len(m.Data))}
	w.u8(m.Phase)
	w.u32(m.Src)
	w.u32(m.Bucket)
	w.u32(m.Seq)
	w.bytes(m.Data)
	return w.b
}

func (m *msgBlock) decode(p []byte) error {
	r := rcur{b: p}
	m.Phase = r.u8()
	m.Src = r.u32()
	m.Bucket = r.u32()
	m.Seq = r.u32()
	m.Data = r.bytes()
	if err := r.done(); err != nil {
		return err
	}
	if len(m.Data)%record.EncodedSize != 0 {
		return fmt.Errorf("cluster: block payload of %d bytes is not whole records", len(m.Data))
	}
	return nil
}

// msgBlockAck acknowledges one block on the same connection it arrived on.
type msgBlockAck struct {
	Phase  uint8
	Bucket uint32
	Seq    uint32
}

func (m *msgBlockAck) encode() []byte {
	var w wcur
	w.u8(m.Phase)
	w.u32(m.Bucket)
	w.u32(m.Seq)
	return w.b
}

func (m *msgBlockAck) decode(p []byte) error {
	r := rcur{b: p}
	m.Phase = r.u8()
	m.Bucket = r.u32()
	m.Seq = r.u32()
	return r.done()
}

// Error codes carried by msgError so typed errors survive the process
// boundary: the receiving side reconstructs the matching Go error type.
const (
	ecGeneric uint32 = iota
	ecWorkerLost
	ecStraggler // v6: a live worker demoted for falling past its phase budget
)

// msgError propagates a fatal job error in either direction. The Phase and
// Budget fields ride a trailer appended only for ecStraggler — a code only
// v6-aware peers ever produce — so the v2 encoding is unchanged.
type msgError struct {
	Code   uint32
	Worker uint32
	Addr   string
	Text   string
	Phase  string // ecStraggler only: the coordinator phase that blew its budget
	Budget uint64 // ecStraggler only: the phase deadline budget, in nanoseconds
}

func (m *msgError) encode() []byte {
	var w wcur
	w.u32(m.Code)
	w.u32(m.Worker)
	w.str(m.Addr)
	w.str(m.Text)
	if m.Code == ecStraggler {
		w.str(m.Phase)
		w.u64(m.Budget)
	}
	return w.b
}

func (m *msgError) decode(p []byte) error {
	r := rcur{b: p}
	m.Code = r.u32()
	m.Worker = r.u32()
	m.Addr = r.str()
	m.Text = r.str()
	m.Phase, m.Budget = "", 0
	if m.Code == ecStraggler && !r.bad && r.off < len(r.b) {
		m.Phase = r.str()
		m.Budget = r.u64()
	}
	return r.done()
}

// traceChunkSpans bounds spans per mTrace frame. A span is ~60 bytes on
// the wire with typical names, so 8192 spans stay well under the 2 MiB
// MaxFramePayload even with generous attribute lists.
const traceChunkSpans = 8192

// traceExtFlag marks a v5 extended trace chunk in the top bit of the
// span-count word. Legitimate counts are bounded by traceChunkSpans, so
// the bit is never set by a v4 encoder, and a v4 decoder fed an extended
// chunk fails the count bound cleanly instead of mis-parsing.
const traceExtFlag uint32 = 1 << 31

// msgTrace ships one chunk of a worker's recorded spans back to the
// coordinator. EpochNanos is the worker tracer's epoch as wall-clock
// UnixNano, which the coordinator uses to rebase span offsets onto its
// own epoch before merging into the job timeline. Ext selects the v5
// encoding that carries each span's causality fields; set it only when
// the session settled on protocol 5.
type msgTrace struct {
	EpochNanos uint64
	Spans      []obs.Span
	Ext        bool
}

func (m *msgTrace) encode() []byte {
	var w wcur
	w.u64(m.EpochNanos)
	count := uint32(len(m.Spans))
	if m.Ext {
		count |= traceExtFlag
	}
	w.u32(count)
	for _, s := range m.Spans {
		w.str(s.Layer)
		w.str(s.Name)
		w.u32(uint32(s.ID))
		w.u64(uint64(s.Start))
		w.u64(uint64(s.Dur))
		w.u32(uint32(len(s.Attrs)))
		for _, a := range s.Attrs {
			w.str(a.Key)
			w.u64(uint64(a.Val))
		}
		if m.Ext {
			w.u64(s.SpanID)
			w.u64(s.Parent)
			w.u64(s.Flow)
			if s.FlowOut {
				w.u8(1)
			} else {
				w.u8(0)
			}
		}
	}
	return w.b
}

func (m *msgTrace) decode(p []byte) error {
	r := rcur{b: p}
	m.EpochNanos = r.u64()
	count := r.u32()
	m.Ext = count&traceExtFlag != 0
	n := int(count &^ traceExtFlag)
	// A span is at least 32 bytes (two empty strings, id, start, dur,
	// attr count); bound before allocating so a hostile count cannot
	// balloon memory.
	if n < 0 || n > (len(p)-r.off)/32 {
		return fmt.Errorf("cluster: trace chunk claims %d spans in %d bytes", n, len(p))
	}
	m.Spans = make([]obs.Span, 0, n)
	for i := 0; i < n && !r.bad; i++ {
		var s obs.Span
		s.Layer = r.str()
		s.Name = r.str()
		s.ID = int(r.u32())
		s.Start = time.Duration(r.u64())
		s.Dur = time.Duration(r.u64())
		na := int(r.u32())
		if na < 0 || na > (len(p)-r.off)/12 {
			return fmt.Errorf("cluster: trace span claims %d attrs", na)
		}
		if na > 0 {
			s.Attrs = make([]obs.Attr, 0, na)
			for j := 0; j < na && !r.bad; j++ {
				var a obs.Attr
				a.Key = r.str()
				a.Val = int64(r.u64())
				s.Attrs = append(s.Attrs, a)
			}
		}
		if m.Ext {
			s.SpanID = r.u64()
			s.Parent = r.u64()
			s.Flow = r.u64()
			s.FlowOut = r.u8() != 0
		}
		m.Spans = append(m.Spans, s)
	}
	return r.done()
}
