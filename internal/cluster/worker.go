package cluster

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"balancesort/internal/obs"
	"balancesort/internal/record"
)

// WorkerConfig parameterizes one worker process.
type WorkerConfig struct {
	// ScratchDir is where the worker keeps its per-job shard, exchange
	// spill, gather spill, sorted shard, and local-sort scratch. Each job
	// gets its own subdirectory, removed when the job ends.
	ScratchDir string
	// SortShard sorts the raw record file inPath into outPath, using
	// scratchDir for spill space. The repository wires the file-backed
	// SortFile path here; nil selects an in-memory sorter (tests, small
	// shards).
	SortShard func(ctx context.Context, inPath, outPath, scratchDir string) error
	// Dial tunes peer connection retry/backoff and per-op timeouts.
	Dial DialConfig
	// PhaseTimeout bounds how long the worker waits at an exchange or
	// gather barrier for blocks that never arrive (its peers' failure
	// reports normally arrive much sooner). Default 2 minutes.
	PhaseTimeout time.Duration
	// ProtocolVersion pins the highest protocol version this worker
	// negotiates; 0 means the newest it speaks. Pinning to 2 exercises the
	// mixed-cluster downgrade path: no heartbeats, no failover.
	ProtocolVersion int
	// DropAfterBlocks is a fault-injection knob: after this many blocks
	// have been sent to peers, the worker force-closes that connection
	// once, exercising the redial/retransmit/dedup path. 0 disables.
	DropAfterBlocks int
	// PongDelay and PongDelayCount inject heartbeat flap: the first
	// PongDelayCount pongs are answered PongDelay late. The coordinator's
	// miss counter must absorb the flap without declaring the worker lost.
	PongDelay      time.Duration
	PongDelayCount int
	// ResumeWindow is how long a v4 worker keeps a parked shard after its
	// coordinator connection dies on a transport error, waiting for a
	// restarted coordinator's mResume. Past the window the shard is
	// deleted and a resume starts the worker from scratch (the coordinator
	// re-streams its extents). Default 2 minutes.
	ResumeWindow time.Duration
	// Obs, when non-nil, receives each job's tracer under the key "job",
	// so the worker's /metrics endpoint exposes live phase histograms and
	// event counts. Independent of the Hello trace flag: a worker can
	// serve metrics even when the coordinator is not collecting traces,
	// and ship traces without serving metrics.
	Obs *obs.Server
	// Sample, when positive and a session trace is active, runs a
	// background utilization sampler at this interval: goroutine count,
	// heap, and wire throughput land as counter samples in the session
	// trace and ship to the coordinator with the phase spans.
	Sample time.Duration
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	c.Dial = c.Dial.withDefaults()
	if c.PhaseTimeout <= 0 {
		c.PhaseTimeout = 2 * time.Minute
	}
	if c.SortShard == nil {
		c.SortShard = memorySortShard
	}
	if c.ProtocolVersion == 0 {
		c.ProtocolVersion = protocolVersion
	}
	if c.ResumeWindow <= 0 {
		c.ResumeWindow = 2 * time.Minute
	}
	return c
}

// memorySortShard is the fallback local sorter: whole shard in memory,
// ordered by the strict (Key, Loc) record order.
func memorySortShard(_ context.Context, inPath, outPath, _ string) error {
	recs, err := readRecordFile(inPath)
	if err != nil {
		return err
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Less(recs[j]) })
	return writeRecordFile(outPath, recs)
}

func readRecordFile(path string) ([]record.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return record.ReadAll(f)
}

func writeRecordFile(path string, recs []record.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	if err := record.WriteAll(w, recs); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Worker is one cluster member: it serves coordinator jobs sequentially and
// peer block streams concurrently.
type Worker struct {
	cfg WorkerConfig

	mu     sync.Mutex
	sess   *session
	parked *parkedShard
}

// parkedShard is the state a worker keeps after its coordinator vanished on
// a transport error: just the scratch directory (whose in.shard is the only
// durable state an epoch reset preserves anyway) and enough metadata to
// answer a restarted coordinator's mResume. The timer deletes it when the
// resume window closes.
type parkedShard struct {
	jobID     uint64
	worker    int
	dir       string
	epoch     uint32
	shardRecs uint64
	timer     *time.Timer
}

// maybePark decides whether a failed session is worth keeping for a
// coordinator resume: the session must speak v4, the failure must look like
// the coordinator dying (a transport error — not a chaos kill, not a local
// cancellation, not a lost peer the coordinator would have handled), and
// the shard file must be exactly the records the session accounted for.
func (w *Worker) maybePark(s *session, err error) bool {
	if s.version < 4 || s.isHung() {
		return false
	}
	var lost *WorkerLostError
	if errors.As(err, &lost) {
		return false
	}
	if !isTransportErr(err) {
		return false
	}
	st, serr := os.Stat(s.shardPath())
	if serr != nil || st.Size() != int64(s.shardRecs)*int64(record.EncodedSize) {
		return false
	}
	s.mu.Lock()
	s.keepDir = true
	epoch := s.epoch
	s.mu.Unlock()
	p := &parkedShard{
		jobID: s.jobID, worker: s.self, dir: s.dir,
		epoch: epoch, shardRecs: s.shardRecs,
	}
	p.timer = time.AfterFunc(w.cfg.ResumeWindow, func() {
		w.mu.Lock()
		expired := w.parked == p
		if expired {
			w.parked = nil
		}
		w.mu.Unlock()
		if expired {
			os.RemoveAll(p.dir)
		}
	})
	w.mu.Lock()
	old := w.parked
	w.parked = p
	w.mu.Unlock()
	if old != nil {
		old.timer.Stop()
		os.RemoveAll(old.dir)
	}
	return true
}

// takeParked claims the parked shard for (jobID, worker), if one exists,
// stopping its expiry timer. The caller owns the directory afterwards.
func (w *Worker) takeParked(jobID uint64, worker int) *parkedShard {
	w.mu.Lock()
	p := w.parked
	if p != nil && p.jobID == jobID && p.worker == worker {
		w.parked = nil
	} else {
		p = nil
	}
	w.mu.Unlock()
	if p != nil {
		p.timer.Stop()
	}
	return p
}

// isTransportErr classifies connection-death errors: the kind a coordinator
// crash produces on the worker's end of the wire.
func isTransportErr(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// NewWorker builds a worker from cfg.
func NewWorker(cfg WorkerConfig) *Worker {
	return &Worker{cfg: cfg.withDefaults()}
}

// Serve accepts connections on ln until ctx is canceled or the listener
// fails. Coordinator connections run jobs; peer and monitor connections
// attach to the active job.
func (w *Worker) Serve(ctx context.Context, ln net.Listener) error {
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			ln.Close()
			w.mu.Lock()
			if w.sess != nil {
				w.sess.abort(ctx.Err())
			}
			w.mu.Unlock()
		case <-watchDone:
		}
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		go w.handleConn(ctx, conn)
	}
}

// current returns the active session, if any.
func (w *Worker) current() *session {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sess
}

// clearSession detaches s if it is still the active session (compare-and-
// clear: a chaos kill may have already detached it and a new job begun).
func (w *Worker) clearSession(s *session) {
	w.mu.Lock()
	if w.sess == s {
		w.sess = nil
	}
	w.mu.Unlock()
}

// handleConn classifies an inbound connection by its first frame.
func (w *Worker) handleConn(ctx context.Context, conn net.Conn) {
	setOpDeadline(conn, w.cfg.Dial)
	br := bufio.NewReaderSize(conn, 1<<16)
	typ, payload, err := readFrame(br)
	if err != nil {
		conn.Close()
		return
	}
	switch typ {
	case mHello:
		var h msgHello
		if err := h.decode(payload); err != nil {
			conn.Close()
			return
		}
		w.runJob(ctx, conn, br, &h)
	case mJoin, mResume:
		var a msgAttach
		if err := a.decode(payload); err != nil {
			conn.Close()
			return
		}
		w.runAttach(ctx, conn, br, &a, typ == mResume)
	case mPeerHello:
		var ph msgPeerHello
		if err := ph.decode(payload); err != nil {
			conn.Close()
			return
		}
		s := w.current()
		if s == nil || !s.peerHelloOK(&ph) {
			// Unknown job or a stale epoch: refuse silently. The dialing
			// peer retries with backoff; a stale-epoch sender is about to
			// be canceled by its own re-scatter anyway.
			conn.Close()
			return
		}
		if err := writeFrame(conn, mPeerHelloAck, nil); err != nil {
			conn.Close()
			return
		}
		s.servePeer(conn, br, ph.Epoch)
	case mMonHello:
		var mh msgMonHello
		if err := mh.decode(payload); err != nil {
			conn.Close()
			return
		}
		s := w.current()
		if s == nil || s.jobID != mh.JobID {
			conn.Close()
			return
		}
		s.serveMonitor(conn, br)
	case mHedgeHello:
		var hh msgHedgeHello
		if err := hh.decode(payload); err != nil {
			conn.Close()
			return
		}
		s := w.current()
		if s == nil || s.jobID != hh.JobID || s.version < 6 {
			conn.Close()
			return
		}
		s.runHedge(conn, br, &hh)
	default:
		conn.Close()
	}
}

// runJob executes one coordinator session on the calling goroutine.
func (w *Worker) runJob(ctx context.Context, conn net.Conn, br *bufio.Reader, h *msgHello) {
	defer conn.Close()
	sendErr := func(self int, err error) {
		setOpDeadline(conn, w.cfg.Dial)
		_ = writeFrame(conn, mError, errorToWire(self, err).encode())
	}
	if h.Version < minProtocolVersion {
		sendErr(int(h.Worker), fmt.Errorf("protocol version %d, worker requires at least %d",
			h.Version, minProtocolVersion))
		return
	}
	ver := w.cfg.ProtocolVersion
	if int(h.Version) < ver {
		ver = int(h.Version)
	}
	if ver < minProtocolVersion {
		sendErr(int(h.Worker), fmt.Errorf("worker pinned to protocol %d, below minimum %d",
			ver, minProtocolVersion))
		return
	}
	if h.Workers < 1 || h.Worker >= h.Workers || int(h.Workers) != len(h.Peers) ||
		h.S < 1 || h.BlockRecs < 1 || int(h.BlockRecs)*record.EncodedSize+64 > MaxFramePayload {
		sendErr(int(h.Worker), fmt.Errorf("malformed hello: W=%d self=%d peers=%d S=%d blockRecs=%d",
			h.Workers, h.Worker, len(h.Peers), h.S, h.BlockRecs))
		return
	}

	s, err := newSession(w, h)
	if err != nil {
		sendErr(int(h.Worker), err)
		return
	}
	s.version = ver
	w.mu.Lock()
	if w.sess != nil {
		w.mu.Unlock()
		s.teardown()
		sendErr(int(h.Worker), errors.New("worker busy with another job"))
		return
	}
	w.sess = s
	w.mu.Unlock()
	defer func() {
		w.clearSession(s)
		s.teardown()
	}()

	jobCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	s.ctx = jobCtx
	s.cancel = cancel
	s.mu.Lock()
	s.ctlConn = conn
	s.mu.Unlock()

	if err := s.run(&wlink{conn: conn, br: br, cfg: w.cfg.Dial, s: s}); err != nil {
		if w.maybePark(s, err) {
			return // shard kept for a coordinator resume; defers abort + close
		}
		s.abort(err)
		sendErr(s.self, err)
	}
}

// runAttach executes a v4 mid-job attach — a join (new virtual disk) or a
// coordinator resume — on the calling goroutine. Both end up in the same
// place as a failover survivor: waiting for the coordinator's mRescatter to
// open the attach epoch, then running the pipeline loop.
func (w *Worker) runAttach(ctx context.Context, conn net.Conn, br *bufio.Reader, a *msgAttach, resume bool) {
	defer conn.Close()
	sendErr := func(self int, err error) {
		setOpDeadline(conn, w.cfg.Dial)
		_ = writeFrame(conn, mError, errorToWire(self, err).encode())
	}
	ver := w.cfg.ProtocolVersion
	if int(a.Version) < ver {
		ver = int(a.Version)
	}
	if ver < 4 {
		sendErr(int(a.Worker), fmt.Errorf("cluster: join/resume needs protocol 4, settled on %d", ver))
		return
	}
	if a.Workers < 1 || a.Worker >= a.Workers || int(a.Workers) != len(a.Peers) ||
		a.S < 1 || a.BlockRecs < 1 || int(a.BlockRecs)*record.EncodedSize+64 > MaxFramePayload {
		sendErr(int(a.Worker), fmt.Errorf("malformed attach: W=%d self=%d peers=%d S=%d blockRecs=%d",
			a.Workers, a.Worker, len(a.Peers), a.S, a.BlockRecs))
		return
	}
	var parked *parkedShard
	if resume {
		// A matching parked shard lives in the exact directory newSession
		// derives from (jobID, worker), so adoption is just not deleting it.
		parked = w.takeParked(a.JobID, int(a.Worker))
	}
	h := &msgHello{
		Version: a.Version, JobID: a.JobID, Worker: a.Worker, Workers: a.Workers,
		S: a.S, BlockRecs: a.BlockRecs, Flags: a.Flags, Peers: a.Peers,
	}
	s, err := newSession(w, h)
	if err != nil {
		sendErr(int(a.Worker), err)
		return
	}
	s.version = ver
	if parked != nil {
		s.setShardRecs(parked.shardRecs)
		s.epoch = parked.epoch
	}
	w.mu.Lock()
	if w.sess != nil {
		w.mu.Unlock()
		s.teardown()
		sendErr(int(a.Worker), errors.New("worker busy with another job"))
		return
	}
	w.sess = s
	w.mu.Unlock()
	defer func() {
		w.clearSession(s)
		s.teardown()
	}()

	jobCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	s.ctx = jobCtx
	s.cancel = cancel
	s.mu.Lock()
	s.ctlConn = conn
	s.mu.Unlock()

	if err := s.runAttached(&wlink{conn: conn, br: br, cfg: w.cfg.Dial, s: s}, resume, parked != nil); err != nil {
		if w.maybePark(s, err) {
			return
		}
		s.abort(err)
		sendErr(s.self, err)
	}
}

// wlink is the worker's framed control connection to the coordinator. Under
// protocol v3 only the control reader goroutine reads from it; sends stay
// on the job goroutine. A hung session (chaos) blocks every send until the
// session dies, simulating a live TCP peer that has stopped participating.
type wlink struct {
	conn net.Conn
	br   *bufio.Reader
	cfg  DialConfig
	s    *session
}

func (l *wlink) send(typ byte, payload []byte) error {
	if l.s != nil && l.s.isHung() {
		<-l.s.done
		return errors.New("cluster: worker hung")
	}
	setWriteDeadline(l.conn, l.cfg)
	if err := writeFrame(l.conn, typ, payload); err != nil {
		return err
	}
	if l.s != nil {
		l.s.net.out(len(payload))
	}
	return nil
}

// recv reads directly from the connection — protocol v2 only (under v3 the
// control reader owns all reads).
func (l *wlink) recv(slow bool) (byte, []byte, error) {
	if slow {
		clearDeadline(l.conn)
	} else {
		setOpDeadline(l.conn, l.cfg)
	}
	typ, payload, err := readFrame(l.br)
	if err == nil && l.s != nil {
		l.s.net.in(len(payload))
	}
	return typ, payload, err
}

// errInterrupted unwinds the worker's phase machinery when a re-scatter
// announcement opens a new epoch. It never crosses the wire.
var errInterrupted = errors.New("cluster: epoch interrupted by re-scatter")

// blockKey identifies one block forever; retransmissions deduplicate on it.
type blockKey struct {
	phase  uint8
	src    uint32
	bucket uint32
	seq    uint32
}

// streamKey names one sender's block stream into this worker. Each stream
// delivers blocks strictly in order with at most the newest block ever
// retransmitted (the sender redials and replays only its in-flight block),
// so remembering the last stored key per stream is a complete dedup — and
// it keeps the dedup state at O(streams), not O(blocks).
type streamKey struct {
	phase uint8
	src   uint32
}

// dedupEntry is one stream's dedup state, tagged with the epoch it belongs
// to. Entries from superseded epochs are dead weight — their streams will
// restart from seq 0 under the new epoch — so resetEpoch drops them
// eagerly, keeping the map bounded by the live streams of the current
// epoch no matter how much membership churn the job absorbs.
type dedupEntry struct {
	epoch uint32
	key   blockKey
}

// blockLoc locates one stored exchange block in the spill file.
type blockLoc struct {
	off   int64
	bytes int32
}

// session is the per-job state of a worker.
type session struct {
	w         *Worker
	jobID     uint64
	self      int
	workers   int
	s         int // bucket count S
	blockRecs int
	version   int
	peers     []string
	dir       string
	dial      DialConfig
	ctx       context.Context
	cancel    context.CancelFunc
	trace     *obs.Tracer  // non-nil when the Hello trace flag or cfg.Obs asked for it
	net       *netMeter    // wire frames/bytes moved by this session
	sampler   *obs.Sampler // utilization sampler; stopped by teardown

	// Control-plane state, touched only by the job goroutine.
	shardRecs uint64
	pivots    []uint64
	plan      *msgPlan
	reFrame   *frameMsg // single-slot pushback for recvCtlRaw
	ctlCh     chan frameMsg

	// Shared receive state: peer-serving goroutines store blocks, the job
	// goroutine waits on the barriers. done is closed exactly once, by
	// abort, and unblocks everything that cannot watch the cond.
	mu             sync.Mutex
	cond           *sync.Cond
	done           chan struct{}
	aborted        bool
	abortErr       error
	hung           bool
	epoch          uint32
	epochCtx       context.Context
	epochCancel    context.CancelFunc
	pending        *msgRescatter // announced but not yet recovered epoch
	keepDir        bool          // parked: teardown must not delete the dir
	recvErr        error
	last           map[streamKey]dedupEntry
	exFile         *os.File
	exSize         int64
	exIndex        map[int][]blockLoc
	recvBlocks     uint64
	gaFile         *os.File
	gaSize         int64
	recvGatherRecs uint64
	ctlConn        net.Conn
	conns          map[net.Conn]struct{} // peer data conns: closed on abort and on epoch reset
	monConns       map[net.Conn]struct{} // monitor conns: closed on abort only
	hedge          *hedgeState           // armed hedge re-execution, nil when none
	sortCancel     context.CancelFunc    // cancels the in-flight shard sort (hedge won)
	sortCanceled   bool                  // coordinator sent mSortCancel: never send mSortDone

	sentNet     atomic.Int64 // blocks pushed over the network, feeds DropAfterBlocks
	dropOnce    sync.Once
	pongsServed atomic.Int64 // feeds PongDelayCount

	// Progress state the monitor goroutine reads for the v6 pong trailer.
	// workUnits is a monotone count of work items finished (records
	// scanned, blocks moved, chunks streamed); phaseIdx indexes
	// WorkerPhases; stallFactor is the crashStall slowdown multiplier.
	workUnits   atomic.Uint64
	phaseIdx    atomic.Int32
	shardRecsA  atomic.Uint64 // mirrors shardRecs for the monitor goroutine
	stallFactor atomic.Int64
}

// hedgeState is a worker's side of one hedged shard-sort: it re-collects a
// straggling peer's gather blocks as phase-3 streams and sorts them into a
// speculative copy of that peer's shard. It lives under the session mutex;
// an epoch reset or abort disarms it (and closes the hedge connection,
// which is registered like any peer conn).
type hedgeState struct {
	victim int
	epoch  uint32
	want   uint64 // exact records the hedged shard must contain
	file   *os.File
	size   int64
	recs   uint64
}

func newSession(w *Worker, h *msgHello) (*session, error) {
	scratch := w.cfg.ScratchDir
	if scratch == "" {
		scratch = os.TempDir()
	}
	dir := filepath.Join(scratch, fmt.Sprintf("cluster-job-%016x-w%d", h.JobID, h.Worker))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &session{
		w:         w,
		jobID:     h.JobID,
		self:      int(h.Worker),
		workers:   int(h.Workers),
		s:         int(h.S),
		blockRecs: int(h.BlockRecs),
		peers:     append([]string(nil), h.Peers...),
		dir:       dir,
		dial:      w.cfg.Dial,
		ctlCh:     make(chan frameMsg, 16),
		done:      make(chan struct{}),
		last:      make(map[streamKey]dedupEntry),
		exIndex:   make(map[int][]blockLoc),
		conns:     make(map[net.Conn]struct{}),
		monConns:  make(map[net.Conn]struct{}),
	}
	s.net = &netMeter{}
	if h.Flags&helloFlagTrace != 0 || w.cfg.Obs != nil {
		s.trace = obs.New(0, nil)
		// Every phase span closes with the network and allocation deltas
		// it caused, so the coordinator's merged timeline can attribute
		// wire traffic per worker per phase.
		s.trace.SetResourceSource(s.net.resourceSource(), "cluster")
		s.sampler = obs.StartSampler(s.trace, w.cfg.Sample,
			append(obs.RuntimeGauges(), s.net.gauges()...))
		if w.cfg.Obs != nil {
			w.cfg.Obs.SetTracer("job", s.trace)
		}
	}
	s.cond = sync.NewCond(&s.mu)
	var err error
	if s.exFile, err = os.Create(filepath.Join(dir, "exchange.dat")); err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	if s.gaFile, err = os.Create(filepath.Join(dir, "gather.dat")); err != nil {
		s.exFile.Close()
		os.RemoveAll(dir)
		return nil, err
	}
	return s, nil
}

// setShardRecs records the shard size for the job goroutine and mirrors it
// for the monitor goroutine's progress trailer.
func (s *session) setShardRecs(n uint64) {
	s.shardRecs = n
	s.shardRecsA.Store(n)
}

func (s *session) shardPath() string  { return filepath.Join(s.dir, "in.shard") }
func (s *session) gatherPath() string { return filepath.Join(s.dir, "gather.dat") }
func (s *session) sortedPath() string { return filepath.Join(s.dir, "sorted.dat") }

func (s *session) curEpoch() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// peerHelloOK validates an inbound peer handshake against the session's
// current membership and epoch, under the lock: a join grows s.workers
// mid-job, so the width check can no longer read an immutable field.
func (s *session) peerHelloOK(ph *msgPeerHello) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobID == ph.JobID && int(ph.Src) >= 0 && int(ph.Src) < s.workers && ph.Epoch == s.epoch
}

// ectx is the context phase work should run under: canceled the moment a
// re-scatter opens a new epoch (or the job dies), so in-flight sends and
// local sorts stop promptly instead of finishing doomed work.
func (s *session) ectx() context.Context {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.epochCtx != nil {
		return s.epochCtx
	}
	return s.ctx
}

func (s *session) isHung() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hung
}

func (s *session) setHung() {
	s.mu.Lock()
	s.hung = true
	s.mu.Unlock()
}

// interrupted reports an announced epoch this goroutine has not yet
// recovered into.
func (s *session) interrupted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending != nil
}

func (s *session) registerConn(c net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.aborted {
		c.Close()
		return
	}
	s.conns[c] = struct{}{}
}

func (s *session) unregisterConn(c net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, c)
}

func (s *session) registerMonConn(c net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.aborted {
		c.Close()
		return
	}
	s.monConns[c] = struct{}{}
}

func (s *session) unregisterMonConn(c net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.monConns, c)
}

// abort marks the session dead, closes every connection so no goroutine can
// block on I/O, cancels the job context, and wakes everything.
func (s *session) abort(err error) {
	s.mu.Lock()
	if s.aborted {
		s.mu.Unlock()
		return
	}
	s.aborted = true
	s.abortErr = err
	close(s.done)
	if s.ctlConn != nil {
		s.ctlConn.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	for c := range s.monConns {
		c.Close()
	}
	cancel := s.cancel
	s.cond.Broadcast()
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

func (s *session) abortReason() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.abortErr != nil {
		return s.abortErr
	}
	return errors.New("cluster: job aborted")
}

func (s *session) teardown() {
	s.sampler.Stop()
	s.abort(errors.New("cluster: job torn down"))
	s.mu.Lock()
	if s.exFile != nil {
		s.exFile.Close()
	}
	if s.gaFile != nil {
		s.gaFile.Close()
	}
	keep := s.keepDir
	s.mu.Unlock()
	if !keep {
		os.RemoveAll(s.dir)
	}
}

// fail records the first receive-side error and wakes the barrier waiters.
func (s *session) fail(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.recvErr == nil {
		s.recvErr = err
	}
	s.cond.Broadcast()
}

// initEpoch arms epoch 0's context (protocol v3).
func (s *session) initEpoch() {
	s.mu.Lock()
	s.epochCtx, s.epochCancel = context.WithCancel(s.ctx)
	s.mu.Unlock()
}

// noteRescatter is the control reader's half of a failover: record the
// announced epoch, cancel the current one so senders and sorts stop, and
// wake the barrier waiters. The job goroutine completes the switch in
// doRecover.
func (s *session) noteRescatter(m *msgRescatter) {
	s.mu.Lock()
	if s.pending == nil || s.pending.Epoch < m.Epoch {
		s.pending = m
	}
	if s.epochCancel != nil {
		s.epochCancel()
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// resetEpoch rewinds the session to its post-scatter state for epoch m:
// received blocks, plan, pivots, and peer connections all belong to the
// dead epoch and are discarded; the shard file is the one durable input.
// A v4 announcement may also replace the peer table (a join grew the
// cluster) — the new width takes effect atomically with the epoch.
func (s *session) resetEpoch(m *msgRescatter) error {
	s.mu.Lock()
	s.epoch = m.Epoch
	if s.epochCancel != nil {
		s.epochCancel()
	}
	s.epochCtx, s.epochCancel = context.WithCancel(s.ctx)
	if len(m.Peers) > 0 {
		s.peers = append([]string(nil), m.Peers...)
		s.workers = len(m.Peers)
	}
	// Drop dedup entries of superseded epochs eagerly: every stream
	// restarts from seq 0 under the new epoch, so stale entries can only
	// accumulate across churn, never match again.
	for sk, e := range s.last {
		if e.epoch < m.Epoch {
			delete(s.last, sk)
		}
	}
	s.exIndex = make(map[int][]blockLoc)
	s.exSize, s.gaSize = 0, 0
	s.recvBlocks, s.recvGatherRecs = 0, 0
	s.recvErr = nil
	if s.hedge != nil {
		// The hedge belonged to the dead epoch; its connection is in
		// s.conns and closes below, which unwinds runHedge.
		s.hedge.file.Close()
		s.hedge = nil
	}
	s.sortCanceled = false
	if s.sortCancel != nil {
		s.sortCancel()
	}
	if s.pending != nil && s.pending.Epoch <= m.Epoch {
		s.pending = nil
	}
	for c := range s.conns {
		c.Close()
	}
	s.conns = make(map[net.Conn]struct{})
	exFile, gaFile := s.exFile, s.gaFile
	s.cond.Broadcast()
	s.mu.Unlock()

	s.pivots, s.plan = nil, nil
	s.sentNet.Store(0)
	if err := exFile.Truncate(0); err != nil {
		return err
	}
	if err := gaFile.Truncate(0); err != nil {
		return err
	}
	os.RemoveAll(filepath.Join(s.dir, "sortscratch"))
	os.Remove(s.sortedPath())
	return nil
}

// readCtl is the protocol-v3 control reader: it owns every read from the
// coordinator connection, acts on chaos and re-scatter frames immediately
// (even while the job goroutine is deep inside a phase), and forwards the
// rest — including the re-scatter frame itself, which doubles as the
// recovery sync point — to the job goroutine.
func (s *session) readCtl(ctl *wlink) {
	for {
		clearDeadline(ctl.conn)
		typ, payload, err := readFrame(ctl.br)
		if err == nil {
			s.net.in(len(payload))
		}
		if err != nil {
			if s.isHung() || s.version >= 4 {
				// v4: a dead control link means the coordinator is gone.
				// Abort so phase barriers wake promptly; the job goroutine
				// surfaces the transport error and may park the shard for
				// a resume. (Hung sessions need it too: nobody else will
				// ever read the pushed error.)
				s.abort(err)
			}
			s.pushCtl(frameMsg{err: err})
			return
		}
		if s.isHung() {
			continue // a hung worker consumes silently and answers nothing
		}
		switch typ {
		case mCrash:
			var mc msgCrash
			if err := mc.decode(payload); err != nil {
				s.pushCtl(frameMsg{err: err})
				return
			}
			if mc.Mode == crashHang {
				s.setHung()
				continue
			}
			if mc.Mode == crashStall {
				// Stall: keep ponging, keep participating, but make every
				// unit of work Factor times slower from here on.
				s.stallFactor.Store(int64(mc.Factor))
				continue
			}
			// Kill: simulate sudden process death — detach from the worker
			// and close every connection without a word on any of them.
			s.w.clearSession(s)
			s.abort(errors.New("cluster: chaos kill"))
			return
		case mSortCancel:
			// The coordinator's hedge won: stop the in-flight shard sort
			// now, and forward the frame so a job goroutine blocked waiting
			// for mFetch learns it will never be drained.
			s.mu.Lock()
			s.sortCanceled = true
			if s.sortCancel != nil {
				s.sortCancel()
			}
			s.mu.Unlock()
			s.pushCtl(frameMsg{typ: typ, payload: payload})
		case mHedgeSend:
			var hs msgHedgeSend
			if err := hs.decode(payload); err != nil {
				s.pushCtl(frameMsg{err: err})
				return
			}
			// Re-send off the control reader: a hedge is speculative, so
			// its deliveries must never block or fail the job.
			go s.runHedgeResend(&hs)
		case mRescatter:
			var m msgRescatter
			if err := m.decode(payload); err != nil {
				s.pushCtl(frameMsg{err: err})
				return
			}
			s.noteRescatter(&m)
			s.pushCtl(frameMsg{typ: typ, payload: payload})
		default:
			s.pushCtl(frameMsg{typ: typ, payload: payload})
		}
	}
}

func (s *session) pushCtl(f frameMsg) {
	select {
	case s.ctlCh <- f:
	case <-s.done:
	}
}

// recvCtlRaw returns the next control frame: the pushed-back one first,
// then the reader channel (v3) or the connection itself (v2).
func (s *session) recvCtlRaw(ctl *wlink) (frameMsg, error) {
	if s.version < 3 {
		typ, payload, err := ctl.recv(true)
		return frameMsg{typ: typ, payload: payload, err: err}, err
	}
	if f := s.reFrame; f != nil {
		s.reFrame = nil
		return *f, f.err
	}
	select {
	case f := <-s.ctlCh:
		return f, f.err
	case <-s.done:
		return frameMsg{}, s.abortReason()
	}
}

// recvCtl is recvCtlRaw with the epoch turn: a re-scatter frame is pushed
// back (so doRecover can re-read it) and surfaced as errInterrupted.
func (s *session) recvCtl(ctl *wlink) (byte, []byte, error) {
	f, err := s.recvCtlRaw(ctl)
	if err != nil {
		return 0, nil, err
	}
	if f.typ == mRescatter {
		cp := f
		s.reFrame = &cp
		return 0, nil, errInterrupted
	}
	return f.typ, f.payload, nil
}

// expectCtl reads the next control frame and requires it to be of type
// want, converting a coordinator-reported mError into its typed Go error.
func (s *session) expectCtl(ctl *wlink, want byte) ([]byte, error) {
	typ, payload, err := s.recvCtl(ctl)
	if err != nil {
		return nil, err
	}
	if typ == mError {
		var e msgError
		if derr := e.decode(payload); derr != nil {
			return nil, derr
		}
		return nil, wireToError(&e)
	}
	if typ != want {
		return nil, fmt.Errorf("cluster: expected message %d, got %d", want, typ)
	}
	return payload, nil
}

// servePeer handles one inbound block stream for one epoch. A connection
// error here is not fatal to the job: the sending side redials and
// retransmits, and the per-stream dedup keeps replays idempotent.
func (s *session) servePeer(conn net.Conn, br *bufio.Reader, epoch uint32) {
	s.registerConn(conn)
	defer func() {
		s.unregisterConn(conn)
		conn.Close()
	}()
	for {
		clearDeadline(conn) // peers sit idle across phases legitimately
		typ, payload, err := readFrame(br)
		if err != nil {
			return
		}
		s.net.in(len(payload))
		if typ != mBlock {
			return
		}
		var b msgBlock
		if err := b.decode(payload); err != nil {
			return
		}
		stale, err := s.storeBlock(&b, epoch)
		if err != nil {
			s.fail(err)
			return
		}
		if stale {
			return // epoch moved on mid-stream: drop the conn, no ack
		}
		ack := (&msgBlockAck{Phase: b.Phase, Bucket: b.Bucket, Seq: b.Seq}).encode()
		setOpDeadline(conn, s.dial)
		if err := writeFrame(conn, mBlockAck, ack); err != nil {
			return
		}
		s.net.out(len(ack))
	}
}

// serveMonitor answers the coordinator's heartbeat pings. A hung session
// goes silent — the whole point of the monitor is to notice that.
func (s *session) serveMonitor(conn net.Conn, br *bufio.Reader) {
	s.registerMonConn(conn)
	defer func() {
		s.unregisterMonConn(conn)
		conn.Close()
	}()
	for {
		clearDeadline(conn)
		typ, payload, err := readFrame(br)
		if err != nil || typ != mPing {
			return
		}
		if s.isHung() {
			<-s.done
			return
		}
		if d := s.w.cfg.PongDelay; d > 0 && s.pongsServed.Add(1) <= int64(s.w.cfg.PongDelayCount) {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-s.done:
				t.Stop()
				return
			}
		}
		if s.version >= 6 {
			// v6: the pong carries the progress counters the coordinator's
			// straggler detector rates. A stalled worker keeps ponging —
			// that is the point: it is alive, just not advancing.
			var ping msgPing
			if err := ping.decode(payload); err != nil {
				return
			}
			s.mu.Lock()
			recvBlocks, gatherRecs := s.recvBlocks, s.recvGatherRecs
			s.mu.Unlock()
			payload = (&msgProgress{
				Seq: ping.Seq, Have: true,
				Phase:      uint8(s.phaseIdx.Load()),
				Units:      s.workUnits.Load(),
				ShardRecs:  s.shardRecsA.Load(),
				RecvBlocks: recvBlocks,
				GatherRecs: gatherRecs,
			}).encode()
		}
		setOpDeadline(conn, s.dial)
		if err := writeFrame(conn, mPong, payload); err != nil {
			return
		}
	}
}

// runHedge is the hedge target's side of a speculative shard re-execution:
// arm the phase-3 receive state, collect the straggler's gather blocks as
// every active worker re-sends them, sort them with the same local sorter
// a first-run shard uses, report mHedgeDone, and serve the sorted shard
// over the same connection when the coordinator fetches it. Everything is
// best-effort: the hedge losing the race (the coordinator closes the
// connection), an epoch bump, or any local error simply abandons the hedge
// without touching the job.
func (s *session) runHedge(conn net.Conn, br *bufio.Reader, m *msgHedgeHello) {
	s.registerConn(conn)
	defer func() {
		s.unregisterConn(conn)
		conn.Close()
	}()
	file, err := os.Create(filepath.Join(s.dir, "hedge.dat"))
	if err != nil {
		return
	}
	st := &hedgeState{victim: int(m.Victim), epoch: m.Epoch, want: m.Recs, file: file}
	s.mu.Lock()
	if s.aborted || s.epoch != m.Epoch || s.hedge != nil {
		s.mu.Unlock()
		file.Close()
		return
	}
	s.hedge = st
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		if s.hedge == st {
			s.hedge = nil
		}
		s.mu.Unlock()
		file.Close()
	}()
	setOpDeadline(conn, s.dial)
	if err := writeFrame(conn, mHedgeHelloAck, nil); err != nil {
		return
	}
	// The coordinator's only further frame on this connection is the
	// mFetch after we report mHedgeDone; a read error before that means
	// the hedge lost and was abandoned. Either way the watch doubles as
	// the cancellation signal for the collect wait and the sort.
	hctx, hcancel := context.WithCancel(s.ectx())
	defer hcancel()
	fetchCh := make(chan bool, 1)
	go func() {
		clearDeadline(conn)
		typ, _, rerr := readFrame(br)
		ok := rerr == nil && typ == mFetch
		if !ok {
			hcancel()
		}
		fetchCh <- ok
	}()
	stopWake := context.AfterFunc(hctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stopWake()
	sp := s.trace.Begin("cluster", "hedge-sort", s.self)
	defer sp.End(
		obs.Attr{Key: "victim", Val: int64(m.Victim)},
		obs.Attr{Key: "records", Val: int64(m.Recs)},
	)
	s.mu.Lock()
	for st.recs < m.Recs && !s.aborted && s.hedge == st && s.recvErr == nil && hctx.Err() == nil {
		s.cond.Wait()
	}
	ok := st.recs == m.Recs && !s.aborted && s.hedge == st && s.recvErr == nil && hctx.Err() == nil
	s.mu.Unlock()
	if !ok || st.file.Sync() != nil {
		return
	}
	scratch := filepath.Join(s.dir, "hedgescratch")
	if os.MkdirAll(scratch, 0o755) != nil {
		return
	}
	sorted := filepath.Join(s.dir, "hedge-sorted.dat")
	if m.Recs == 0 {
		f, cerr := os.Create(sorted)
		if cerr != nil {
			return
		}
		f.Close()
	} else if s.w.cfg.SortShard(hctx, filepath.Join(s.dir, "hedge.dat"), sorted, scratch) != nil {
		return
	}
	fst, err := os.Stat(sorted)
	if err != nil || fst.Size() != int64(m.Recs)*int64(record.EncodedSize) {
		return
	}
	setOpDeadline(conn, s.dial)
	if writeFrame(conn, mHedgeDone, (&msgCount{Count: m.Recs}).encode()) != nil {
		return
	}
	if !<-fetchCh {
		return
	}
	// Stream the hedged shard exactly like a drain: record chunks, then
	// the count. The coordinator verifies sortedness and byte identity.
	f, err := os.Open(sorted)
	if err != nil {
		return
	}
	defer f.Close()
	fr := bufio.NewReaderSize(f, 1<<16)
	buf := make([]byte, scatterChunk*record.EncodedSize)
	left := m.Recs
	for left > 0 {
		n := uint64(scatterChunk)
		if n > left {
			n = left
		}
		chunk := buf[:n*record.EncodedSize]
		if _, err := readFull(fr, chunk); err != nil {
			return
		}
		setOpDeadline(conn, s.dial)
		if writeFrame(conn, mRecords, chunk) != nil {
			return
		}
		s.net.out(len(chunk))
		left -= n
	}
	setOpDeadline(conn, s.dial)
	_ = writeFrame(conn, mFetchDone, (&msgCount{Count: m.Recs}).encode())
}

// runHedgeResend re-sends this worker's stored exchange blocks for the
// victim's buckets to the hedge target, as phase-3 streams: the same
// dial/deliver/ack/dedup machinery the gather phase uses, with fresh
// (phase, src) stream keys so retransmission after a dropped connection
// stays idempotent. It runs off the control reader and swallows every
// error — a hedge that cannot be fed is simply a lost hedge, never a
// failed job. It is deliberately not subject to the crashStall throttle:
// the stall models a slow data path (scan, sort, stream), while the resend
// is a small positional re-read of already-spilled blocks.
func (s *session) runHedgeResend(m *msgHedgeSend) {
	ctx := s.ectx()
	s.mu.Lock()
	if s.aborted || s.epoch != m.Epoch {
		s.mu.Unlock()
		return
	}
	exFile := s.exFile
	index := make(map[uint32][]blockLoc, len(m.Buckets))
	for _, b := range m.Buckets {
		index[b] = append([]blockLoc(nil), s.exIndex[int(b)]...)
	}
	s.mu.Unlock()
	if int(m.Target) == s.self {
		for _, b := range m.Buckets {
			for i, loc := range index[b] {
				data := make([]byte, loc.bytes)
				if _, err := exFile.ReadAt(data, loc.off); err != nil {
					return
				}
				blk := &msgBlock{Phase: 3, Src: uint32(s.self), Bucket: b, Seq: uint32(i), Data: data}
				if stale, err := s.storeBlock(blk, m.Epoch); err != nil || stale {
					return
				}
			}
		}
		return
	}
	ch := make(chan outBlock, 2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.sendLoop(ctx, m.Epoch, 3, int(m.Target), ch)
	}()
feed:
	for _, b := range m.Buckets {
		for i, loc := range index[b] {
			data := make([]byte, loc.bytes)
			if _, err := exFile.ReadAt(data, loc.off); err != nil {
				break feed
			}
			select {
			case ch <- outBlock{bucket: b, seq: uint32(i), data: data}:
			case <-ctx.Done():
				break feed
			case <-s.done:
				break feed
			}
		}
	}
	close(ch)
	<-done
}

// storeBlock persists one received (or self-delivered) block, exactly once.
// It reports stale=true when the block belongs to a superseded epoch.
func (s *session) storeBlock(b *msgBlock, epoch uint32) (stale bool, err error) {
	key := blockKey{phase: b.Phase, src: b.Src, bucket: b.Bucket, seq: b.Seq}
	sk := streamKey{phase: b.Phase, src: b.Src}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.aborted {
		return false, errors.New("cluster: job aborted")
	}
	if epoch != s.epoch {
		return true, nil
	}
	if int(b.Bucket) >= s.s {
		return false, fmt.Errorf("cluster: block for bucket %d of %d", b.Bucket, s.s)
	}
	if e, ok := s.last[sk]; ok && e.epoch == epoch && e.key == key {
		return false, nil // retransmission after a lost ack: already stored
	}
	switch b.Phase {
	case 1:
		if _, err := s.exFile.WriteAt(b.Data, s.exSize); err != nil {
			return false, err
		}
		s.exIndex[int(b.Bucket)] = append(s.exIndex[int(b.Bucket)],
			blockLoc{off: s.exSize, bytes: int32(len(b.Data))})
		s.exSize += int64(len(b.Data))
		s.recvBlocks++
	case 2:
		if _, err := s.gaFile.WriteAt(b.Data, s.gaSize); err != nil {
			return false, err
		}
		s.gaSize += int64(len(b.Data))
		s.recvGatherRecs += uint64(len(b.Data) / record.EncodedSize)
	case 3:
		// Hedge stream: a straggler's gather blocks re-sent to this worker.
		// Without an armed hedge for this epoch the sender is a zombie from
		// an abandoned hedge; drop the connection like a stale epoch.
		st := s.hedge
		if st == nil || st.epoch != epoch {
			return true, nil
		}
		if _, err := st.file.WriteAt(b.Data, st.size); err != nil {
			return false, err
		}
		st.size += int64(len(b.Data))
		st.recs += uint64(len(b.Data) / record.EncodedSize)
	default:
		return false, fmt.Errorf("cluster: block phase %d", b.Phase)
	}
	s.last[sk] = dedupEntry{epoch: epoch, key: key}
	s.workUnits.Add(1)
	s.cond.Broadcast()
	switch b.Phase {
	case 1:
		s.trace.Count("cluster", "blocks-received", s.self, 1)
	case 2:
		s.trace.Count("cluster", "records-gathered", s.self, int64(len(b.Data)/record.EncodedSize))
	case 3:
		s.trace.Count("cluster", "hedge-blocks-received", s.self, 1)
	}
	return false, nil
}

// waitRecv blocks until done() holds (under the session lock), a receive
// error lands, a re-scatter interrupts the epoch, the session aborts, or
// the phase times out.
func (s *session) waitRecv(phase string, done func() bool) error {
	timer := time.AfterFunc(s.w.cfg.PhaseTimeout, func() {
		s.fail(fmt.Errorf("cluster: %s barrier timed out after %v", phase, s.w.cfg.PhaseTimeout))
	})
	defer timer.Stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for !done() && s.recvErr == nil && !s.aborted && s.pending == nil {
		s.cond.Wait()
	}
	if s.pending != nil {
		return errInterrupted
	}
	if s.recvErr != nil {
		return s.recvErr
	}
	if s.aborted {
		if s.abortErr != nil {
			return s.abortErr
		}
		return errors.New("cluster: job aborted")
	}
	return nil
}

// outBlock is one block queued to a peer sender.
type outBlock struct {
	bucket uint32
	seq    uint32
	data   []byte
}

// runSenders spins up one sender goroutine per remote peer, runs produce to
// emit blocks (self-destined blocks store locally, no network), and returns
// the first error once every queue has drained. It returns the number of
// blocks emitted.
func (s *session) runSenders(phase uint8, produce func(emit func(dest int, blk outBlock) error) error) (uint64, error) {
	ctx := s.ectx()
	epoch := s.curEpoch()
	chans := make([]chan outBlock, s.workers)
	errs := make([]error, s.workers)
	var wg sync.WaitGroup
	for d := 0; d < s.workers; d++ {
		if d == s.self {
			continue
		}
		ch := make(chan outBlock, 2)
		chans[d] = ch
		wg.Add(1)
		go func(d int, ch chan outBlock) {
			defer wg.Done()
			errs[d] = s.sendLoop(ctx, epoch, phase, d, ch)
		}(d, ch)
	}
	var emitted uint64
	perr := produce(func(dest int, blk outBlock) error {
		emitted++
		if dest < 0 || dest >= s.workers {
			return fmt.Errorf("cluster: plan routes a block to worker %d of %d", dest, s.workers)
		}
		if dest == s.self {
			stale, err := s.storeBlock(&msgBlock{
				Phase: phase, Src: uint32(s.self),
				Bucket: blk.bucket, Seq: blk.seq, Data: blk.data,
			}, epoch)
			if err == nil && stale {
				return errInterrupted
			}
			return err
		}
		select {
		case chans[dest] <- blk:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	for _, ch := range chans {
		if ch != nil {
			close(ch)
		}
	}
	wg.Wait()
	if perr != nil {
		return emitted, perr
	}
	for _, e := range errs {
		if e != nil {
			return emitted, e
		}
	}
	return emitted, nil
}

// maxDeliverRetries bounds consecutive failed deliveries of one block; each
// failed delivery already burned a full dial retry/backoff budget, so
// exceeding this is the cluster analogue of a tripped circuit breaker and
// the peer is declared lost.
const maxDeliverRetries = 3

// sendLoop delivers one peer's queue: dial (with retry/backoff), stream a
// block, await its ack; on any connection failure, redial and retransmit —
// the receiver deduplicates. A peer that stays unreachable surfaces as a
// typed *WorkerLostError. On failure the loop keeps draining its queue so
// the producer never blocks.
func (s *session) sendLoop(ctx context.Context, epoch uint32, phase uint8, dest int, ch chan outBlock) error {
	var conn net.Conn
	var br *bufio.Reader
	closeConn := func() {
		if conn != nil {
			s.unregisterConn(conn)
			conn.Close()
			conn, br = nil, nil
		}
	}
	defer closeConn()
	var firstErr error
	for blk := range ch {
		if firstErr != nil {
			continue // drain
		}
		consec := 0
		for {
			if ctx.Err() != nil {
				firstErr = ctx.Err()
				break
			}
			if conn == nil {
				c, b, err := s.dialPeer(ctx, epoch, dest)
				if err != nil {
					var lost *WorkerLostError
					if errors.As(err, &lost) || ctx.Err() != nil {
						firstErr = err
					} else if consec++; consec > maxDeliverRetries {
						firstErr = &WorkerLostError{Worker: dest, Addr: s.peers[dest], Err: err}
					} else {
						continue
					}
					break
				}
				conn, br = c, b
			}
			err := s.deliver(conn, br, phase, &blk)
			if err == nil {
				break
			}
			closeConn()
			if consec++; consec > maxDeliverRetries {
				firstErr = &WorkerLostError{Worker: dest, Addr: s.peers[dest], Err: err}
				break
			}
		}
	}
	return firstErr
}

// dialPeer opens and handshakes a block connection to dest for one epoch.
func (s *session) dialPeer(ctx context.Context, epoch uint32, dest int) (net.Conn, *bufio.Reader, error) {
	conn, err := s.dial.dial(ctx, dest, s.peers[dest])
	if err != nil {
		return nil, nil, err
	}
	br := bufio.NewReaderSize(conn, 1<<16)
	hello := (&msgPeerHello{JobID: s.jobID, Src: uint32(s.self), Epoch: epoch}).encode()
	setOpDeadline(conn, s.dial)
	if err := writeFrame(conn, mPeerHello, hello); err != nil {
		conn.Close()
		return nil, nil, err
	}
	s.net.out(len(hello))
	typ, ackPayload, err := readFrame(br)
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	s.net.in(len(ackPayload))
	if typ != mPeerHelloAck {
		conn.Close()
		return nil, nil, fmt.Errorf("cluster: peer %d answered handshake with message %d", dest, typ)
	}
	s.registerConn(conn)
	return conn, br, nil
}

// deliver pushes one block and waits for its ack.
func (s *session) deliver(conn net.Conn, br *bufio.Reader, phase uint8, blk *outBlock) error {
	m := msgBlock{Phase: phase, Src: uint32(s.self), Bucket: blk.bucket, Seq: blk.seq, Data: blk.data}
	payload := m.encode()
	setOpDeadline(conn, s.dial)
	if err := writeFrame(conn, mBlock, payload); err != nil {
		return err
	}
	s.net.out(len(payload))
	// Fault injection: sever the connection once, after the configured
	// number of network sends, before the ack is read — the retransmit
	// path must recover without duplicating the block.
	if n := s.sentNet.Add(1); s.w.cfg.DropAfterBlocks > 0 && n >= int64(s.w.cfg.DropAfterBlocks) {
		s.dropOnce.Do(func() { conn.Close() })
	}
	typ, payload, err := readFrame(br)
	if err != nil {
		return err
	}
	s.net.in(len(payload))
	if typ != mBlockAck {
		return fmt.Errorf("cluster: peer answered block with message %d", typ)
	}
	var a msgBlockAck
	if err := a.decode(payload); err != nil {
		return err
	}
	if a.Phase != phase || a.Bucket != blk.bucket || a.Seq != blk.seq {
		return fmt.Errorf("cluster: ack for block %d/%d, sent %d/%d", a.Bucket, a.Seq, blk.bucket, blk.seq)
	}
	s.workUnits.Add(1)
	return nil
}

// run is the worker side of the job protocol: the scatter, then epochs of
// the phase pipeline, re-entered through doRecover whenever the
// coordinator announces a failover re-scatter.
func (s *session) run(ctl *wlink) error {
	var ack []byte
	if s.version >= 3 {
		ack = (&msgVersion{Version: uint32(s.version)}).encode()
	}
	if err := ctl.send(mHelloAck, ack); err != nil {
		return err
	}
	if s.version >= 3 {
		s.initEpoch()
		go s.readCtl(ctl)
	}

	sp := s.trace.Begin("cluster", "scatter-recv", s.self)
	err := s.recvScatter(ctl)
	sp.End(obs.Attr{Key: "records", Val: int64(s.shardRecs)})
	if err != nil && !errors.Is(err, errInterrupted) {
		return err
	}
	for {
		if err == nil {
			err = s.pipeline(ctl)
		}
		if err == nil {
			return nil
		}
		if !errors.Is(err, errInterrupted) {
			return err
		}
		err = s.doRecover(ctl)
	}
}

// runAttached is run's counterpart for a v4 mid-job attach. A joiner
// answers with mHelloAck and starts from an empty shard; a resumed worker
// answers with mResumeState reporting the epoch-tagged shard it still
// holds (if any). Either way the coordinator's next control frame is the
// mRescatter opening the attach epoch, so the session enters the pipeline
// through doRecover exactly like a failover survivor.
func (s *session) runAttached(ctl *wlink, resume, adopted bool) error {
	if resume {
		st := msgResumeState{Version: uint32(s.version), Epoch: s.epoch, ShardRecs: s.shardRecs}
		if adopted {
			st.HaveShard = 1
		}
		if err := ctl.send(mResumeState, st.encode()); err != nil {
			return err
		}
	} else {
		if err := ctl.send(mHelloAck, (&msgVersion{Version: uint32(s.version)}).encode()); err != nil {
			return err
		}
		// A joiner's durable input starts empty: the attach epoch's
		// re-scatter streams its whole shard with Fresh set.
		if err := os.WriteFile(s.shardPath(), nil, 0o644); err != nil {
			return err
		}
	}
	s.initEpoch()
	go s.readCtl(ctl)

	err := s.doRecover(ctl)
	for {
		if err == nil {
			err = s.pipeline(ctl)
		}
		if err == nil {
			return nil
		}
		if !errors.Is(err, errInterrupted) {
			return err
		}
		err = s.doRecover(ctl)
	}
}

// pipeline runs one epoch's phases after the shard is in place.
func (s *session) pipeline(ctl *wlink) error {
	if s.interrupted() {
		return errInterrupted
	}

	// Histogram over the shard.
	s.phaseIdx.Store(1) // histogram
	spHist := s.trace.Begin("cluster", "histogram", s.self)
	bins, err := s.scanHistogram()
	if err != nil {
		return err
	}
	if err := ctl.send(mHistogram, (&msgHistogram{Bins: bins}).encode()); err != nil {
		return err
	}
	spHist.End()

	// Pivots, then per-bucket counts.
	payload, err := s.expectCtl(ctl, mPivots)
	if err != nil {
		return err
	}
	s.flowIn("pivots")
	var pv msgPivots
	if err := pv.decode(payload); err != nil {
		return err
	}
	if len(pv.Pivots) != s.s-1 {
		return fmt.Errorf("cluster: %d pivots for S=%d", len(pv.Pivots), s.s)
	}
	s.pivots = pv.Pivots
	s.phaseIdx.Store(2) // partition-counts
	spCounts := s.trace.Begin("cluster", "partition-counts", s.self)
	cnts, err := s.scanCounts()
	if err != nil {
		return err
	}
	if err := ctl.send(mCounts, (&msgCounts{PerBucket: cnts}).encode()); err != nil {
		return err
	}
	spCounts.End(obs.Attr{Key: "buckets", Val: int64(s.s)})

	// Plan.
	payload, err = s.expectCtl(ctl, mPlan)
	if err != nil {
		return err
	}
	s.flowIn("plan")
	var plan msgPlan
	if err := plan.decode(payload); err != nil {
		return err
	}
	if err := s.checkPlan(&plan, cnts); err != nil {
		return err
	}
	s.plan = &plan

	// Exchange: partition the shard into balancer-placed blocks while
	// receiving everyone else's.
	s.phaseIdx.Store(3) // exchange
	spEx := s.trace.Begin("cluster", "exchange", s.self)
	sent, err := s.runSenders(1, s.produceExchange)
	if err != nil {
		return s.phaseFail(ctl, err)
	}
	if err := s.waitRecv("exchange", func() bool { return s.recvBlocks >= plan.ExpectRecvBlocks }); err != nil {
		return s.phaseFail(ctl, err)
	}
	s.mu.Lock()
	recvBlocks := s.recvBlocks
	s.mu.Unlock()
	done := msgPhaseDone{Phase: 1, BlocksSent: sent, BlocksRecv: recvBlocks}
	if err := ctl.send(mPhaseDone, done.encode()); err != nil {
		return err
	}
	spEx.End(
		obs.Attr{Key: "blocks-sent", Val: int64(sent)},
		obs.Attr{Key: "blocks-recv", Val: int64(recvBlocks)},
	)

	// Gather: push every stored block to its bucket's owner.
	if _, err := s.expectCtl(ctl, mStartGather); err != nil {
		return err
	}
	s.flowIn("gather")
	s.phaseIdx.Store(4) // gather
	spGather := s.trace.Begin("cluster", "gather", s.self)
	sent, err = s.runSenders(2, s.produceGather)
	if err != nil {
		return s.phaseFail(ctl, err)
	}
	if err := s.waitRecv("gather", func() bool { return s.recvGatherRecs >= plan.ExpectGatherRecs }); err != nil {
		return s.phaseFail(ctl, err)
	}
	s.mu.Lock()
	gatherRecs := s.recvGatherRecs
	s.mu.Unlock()
	done = msgPhaseDone{Phase: 2, BlocksSent: sent, RecsRecv: gatherRecs}
	if err := ctl.send(mPhaseDone, done.encode()); err != nil {
		return err
	}
	spGather.End(obs.Attr{Key: "records", Val: int64(gatherRecs)})

	// Local sort of the final shard.
	if _, err := s.expectCtl(ctl, mSortReq); err != nil {
		return err
	}
	s.flowIn("local-sort")
	s.phaseIdx.Store(5) // shard-sort
	spSort := s.trace.Begin("cluster", "shard-sort", s.self)
	count, err := s.sortShard()
	if err != nil {
		if s.interrupted() {
			return errInterrupted
		}
		if s.sortWasCanceled() {
			// The coordinator's hedge won mid-sort: this shard will never
			// be asked for. Stay in the job for the endgame (trace, bye).
			spSort.End(obs.Attr{Key: "canceled", Val: 1})
			return s.awaitEnd(ctl)
		}
		return fmt.Errorf("cluster: worker %d local sort: %w", s.self, err)
	}
	spSort.End(obs.Attr{Key: "records", Val: int64(count)})
	if s.sortWasCanceled() {
		// The cancel landed after the sort finished but before the report:
		// the hedge already won, so the report would only be debris.
		return s.awaitEnd(ctl)
	}
	if count != plan.ExpectGatherRecs {
		return fmt.Errorf("cluster: worker %d sorted %d of %d records", s.self, count, plan.ExpectGatherRecs)
	}
	if err := ctl.send(mSortDone, (&msgCount{Count: count}).encode()); err != nil {
		return err
	}

	// Drain the sorted shard back to the coordinator — unless the hedge
	// won the race against our mSortDone, in which case mSortCancel (not
	// mFetch) arrives and the shard is never drained.
	for {
		typ, payload, err := s.recvCtl(ctl)
		if err != nil {
			return err
		}
		if typ == mError {
			var e msgError
			if derr := e.decode(payload); derr != nil {
				return derr
			}
			return wireToError(&e)
		}
		if typ == mSortCancel {
			return s.awaitEnd(ctl)
		}
		if typ == mFetch {
			break
		}
		return fmt.Errorf("cluster: expected message %d, got %d", mFetch, typ)
	}
	s.flowIn("drain")
	s.phaseIdx.Store(6) // drain
	spDrain := s.trace.Begin("cluster", "drain", s.self)
	if err := s.sendSorted(ctl, count); err != nil {
		return err
	}
	spDrain.End(obs.Attr{Key: "records", Val: int64(count)})

	return s.awaitEnd(ctl)
}

// awaitEnd is the pipeline's endgame: the coordinator may collect this
// worker's trace; then Bye (or the coordinator just closing the
// connection) ends the job. A re-scatter can still land here: another
// worker died while the coordinator was draining a later shard. A stray
// mSortCancel is hedge debris and is ignored.
func (s *session) awaitEnd(ctl *wlink) error {
	for {
		typ, _, err := s.recvCtl(ctl)
		if errors.Is(err, errInterrupted) {
			return err
		}
		if err != nil || typ == mBye {
			return nil
		}
		switch typ {
		case mTraceReq:
			if err := s.sendTrace(ctl); err != nil {
				return err
			}
		case mSortCancel:
		default:
			return fmt.Errorf("cluster: unexpected message %d after drain", typ)
		}
	}
}

// sortWasCanceled reports whether the coordinator sent mSortCancel because
// its hedged re-execution of this worker's shard finished first.
func (s *session) sortWasCanceled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sortCanceled
}

// phaseFail triages a phase error. Interruption wins: the epoch is being
// replaced and the error is just its debris. A peer loss under protocol v3
// is reported to the coordinator — which answers with a re-scatter (we
// join the new epoch) or gives up (we fail with the original error). Under
// v2 the error propagates and fails the job, exactly as before.
func (s *session) phaseFail(ctl *wlink, err error) error {
	if s.interrupted() || errors.Is(err, errInterrupted) {
		return errInterrupted
	}
	var lost *WorkerLostError
	if s.version >= 3 && errors.As(err, &lost) {
		pl := msgPeerLost{Worker: uint32(lost.Worker), Addr: lost.Addr, Text: lost.Err.Error()}
		if serr := ctl.send(mPeerLost, pl.encode()); serr != nil {
			return err
		}
		for {
			f, rerr := s.recvCtlRaw(ctl)
			if rerr != nil {
				return err
			}
			if f.typ == mRescatter {
				cp := f
				s.reFrame = &cp
				return errInterrupted
			}
			if f.typ == mBye {
				return err
			}
			// Anything else is pre-failover debris; discard and keep
			// waiting for the coordinator's verdict.
		}
	}
	return err
}

// doRecover joins the epoch a re-scatter announced: sync to the re-scatter
// frame (discarding the dead epoch's stragglers), rewind the session to its
// post-scatter state, append the re-streamed chunks to the shard, and ack.
// A newer re-scatter arriving mid-recovery preempts the current one.
func (s *session) doRecover(ctl *wlink) error {
	s.phaseIdx.Store(0) // back to scatter-recv: the new epoch re-feeds the shard
	var m msgRescatter
	for {
		f, err := s.recvCtlRaw(ctl)
		if err != nil {
			return err
		}
		if f.typ == mRescatter {
			if err := m.decode(f.payload); err != nil {
				return err
			}
			break
		}
		// A frame the dead epoch left in the channel; drop it.
	}

restart:
	if err := s.resetEpoch(&m); err != nil {
		return err
	}
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	got := s.shardRecs
	if m.Fresh {
		// The coordinator is re-streaming this worker's whole shard (it is
		// a joiner, or its shard did not survive the crash): drop whatever
		// is on disk and count from zero.
		flags = os.O_CREATE | os.O_WRONLY | os.O_TRUNC
		got = 0
	}
	shard, err := os.OpenFile(s.shardPath(), flags, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(shard, 1<<16)
	finish := func() error {
		if err := bw.Flush(); err != nil {
			shard.Close()
			return err
		}
		return shard.Close()
	}
	for {
		f, err := s.recvCtlRaw(ctl)
		if err != nil {
			shard.Close()
			return err
		}
		switch f.typ {
		case mRecords:
			if len(f.payload)%record.EncodedSize != 0 {
				shard.Close()
				return fmt.Errorf("cluster: re-scatter chunk of %d bytes", len(f.payload))
			}
			if _, err := bw.Write(f.payload); err != nil {
				shard.Close()
				return err
			}
			got += uint64(len(f.payload) / record.EncodedSize)
		case mRescatterDone:
			var d msgRescatterDone
			if err := d.decode(f.payload); err != nil {
				shard.Close()
				return err
			}
			if d.Epoch != m.Epoch {
				shard.Close()
				return fmt.Errorf("cluster: re-scatter done for epoch %d inside epoch %d", d.Epoch, m.Epoch)
			}
			if d.Total != got {
				shard.Close()
				return fmt.Errorf("cluster: re-scatter left %d records, coordinator says %d", got, d.Total)
			}
			if err := finish(); err != nil {
				return err
			}
			s.setShardRecs(got)
			a := msgRescatterAck{Epoch: m.Epoch, ShardRecs: got}
			return ctl.send(mRescatterAck, a.encode())
		case mRescatter:
			// A newer failover preempts this recovery.
			if err := finish(); err != nil {
				return err
			}
			s.setShardRecs(got)
			if err := m.decode(f.payload); err != nil {
				return err
			}
			goto restart
		default:
			shard.Close()
			return fmt.Errorf("cluster: unexpected message %d during re-scatter", f.typ)
		}
	}
}

// sendTrace ships every locally recorded span to the coordinator in bounded
// chunks, tagged with this worker's epoch so the coordinator can rebase the
// offsets onto its own timeline, and finishes with mTraceDone. Against a v5
// coordinator the chunks carry each span's causality fields; a v<5 session
// ships the byte-identical v4 encoding and loses only span ids and flows.
func (s *session) sendTrace(ctl *wlink) error {
	spans := s.trace.Spans()
	epoch := uint64(s.trace.Epoch().UnixNano())
	ext := s.version >= 5
	for len(spans) > 0 {
		n := traceChunkSpans
		if n > len(spans) {
			n = len(spans)
		}
		m := msgTrace{EpochNanos: epoch, Spans: spans[:n], Ext: ext}
		if err := ctl.send(mTrace, m.encode()); err != nil {
			return err
		}
		spans = spans[n:]
	}
	return ctl.send(mTraceDone, nil)
}

// flowIn drops the inbound half of a coordinator->worker causality edge the
// moment the phase-triggering control message is acted on; see the
// coordinator's flowOut for the outbound half and the id derivation.
func (s *session) flowIn(phase string) {
	s.trace.FlowPoint("cluster", "flow-"+phase, s.self, flowID(phase, s.curEpoch(), s.self), false)
}

// recvScatter streams the coordinator's record chunks into the shard file.
// A re-scatter landing mid-stream (the coordinator lost some other worker
// while scattering) flushes what arrived — those records are ours to keep —
// and hands control to doRecover.
func (s *session) recvScatter(ctl *wlink) error {
	s.phaseIdx.Store(0) // scatter-recv
	shard, err := os.Create(s.shardPath())
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(shard, 1<<16)
	var got uint64
	for {
		typ, payload, err := s.recvCtl(ctl)
		if err != nil {
			ferr := bw.Flush()
			cerr := shard.Close()
			if errors.Is(err, errInterrupted) && ferr == nil && cerr == nil {
				s.setShardRecs(got)
			}
			return err
		}
		switch typ {
		case mRecords:
			if len(payload)%record.EncodedSize != 0 {
				shard.Close()
				return fmt.Errorf("cluster: scatter chunk of %d bytes", len(payload))
			}
			chunkStart := time.Now()
			if _, err := bw.Write(payload); err != nil {
				shard.Close()
				return err
			}
			got += uint64(len(payload) / record.EncodedSize)
			s.workUnits.Add(1)
			if err := s.throttleWork(s.ectx(), time.Since(chunkStart)); err != nil {
				shard.Close()
				return err
			}
		case mScatterDone:
			var c msgCount
			if err := c.decode(payload); err != nil {
				shard.Close()
				return err
			}
			if c.Count != got {
				shard.Close()
				return fmt.Errorf("cluster: scatter delivered %d records, coordinator sent %d", got, c.Count)
			}
			if err := bw.Flush(); err != nil {
				shard.Close()
				return err
			}
			if err := shard.Close(); err != nil {
				return err
			}
			s.setShardRecs(got)
			return nil
		default:
			shard.Close()
			return fmt.Errorf("cluster: unexpected message %d during scatter", typ)
		}
	}
}

// scanShard streams the shard file, invoking fn with each record's key.
// The whole pass counts as work units for the progress detector, and a
// crashStall-injected session pays the slowdown here — the scan is the
// compute backbone of the histogram, partition, and exchange phases.
func (s *session) scanShard(fn func(key uint64, raw []byte) error) error {
	start := time.Now()
	f, err := os.Open(s.shardPath())
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	buf := make([]byte, record.EncodedSize)
	for i := uint64(0); i < s.shardRecs; i++ {
		if _, err := readFull(br, buf); err != nil {
			return fmt.Errorf("cluster: shard truncated at record %d: %w", i, err)
		}
		if err := fn(binary.LittleEndian.Uint64(buf[0:8]), buf); err != nil {
			return err
		}
		s.workUnits.Add(1)
	}
	return s.throttleWork(s.ectx(), time.Since(start))
}

// throttleWork is the crashStall chaos mode's engine: after a unit of work
// that took elapsed, sleep (factor-1)×elapsed, so the session behaves like
// a machine running factor times slower without ever going silent. The
// sleep wakes promptly on epoch cancellation (demotion, hedge loss) or
// session abort.
func (s *session) throttleWork(ctx context.Context, elapsed time.Duration) error {
	f := s.stallFactor.Load()
	if f <= 1 || elapsed <= 0 {
		return nil
	}
	t := time.NewTimer(time.Duration(f-1) * elapsed)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-s.done:
		return s.abortReason()
	}
}

func (s *session) scanHistogram() ([]uint64, error) {
	bins := make([]uint64, histBins)
	err := s.scanShard(func(key uint64, _ []byte) error {
		bins[keyBin(key)]++
		return nil
	})
	return bins, err
}

func (s *session) scanCounts() ([]uint64, error) {
	cnts := make([]uint64, s.s)
	err := s.scanShard(func(key uint64, _ []byte) error {
		cnts[bucketOf(key, s.pivots)]++
		return nil
	})
	return cnts, err
}

// checkPlan validates the coordinator's plan against local reality before a
// single block moves.
func (s *session) checkPlan(p *msgPlan, cnts []uint64) error {
	if len(p.Dests) != s.s || len(p.Owners) != s.s {
		return fmt.Errorf("cluster: plan covers %d dest buckets and %d owners, want %d", len(p.Dests), len(p.Owners), s.s)
	}
	for b, row := range p.Dests {
		want := int((cnts[b] + uint64(s.blockRecs) - 1) / uint64(s.blockRecs))
		if len(row) != want {
			return fmt.Errorf("cluster: plan has %d blocks for bucket %d, worker will form %d", len(row), b, want)
		}
		for _, d := range row {
			if int(d) >= s.workers {
				return fmt.Errorf("cluster: plan routes bucket %d to worker %d of %d", b, d, s.workers)
			}
		}
	}
	for b, o := range p.Owners {
		if int(o) >= s.workers {
			return fmt.Errorf("cluster: bucket %d owned by worker %d of %d", b, o, s.workers)
		}
	}
	return nil
}

// produceExchange partitions the shard into per-bucket blocks and emits
// each to its balancer-assigned destination.
func (s *session) produceExchange(emit func(dest int, blk outBlock) error) error {
	blockBytes := s.blockRecs * record.EncodedSize
	bufs := make([][]byte, s.s)
	seqs := make([]uint32, s.s)
	flush := func(b int) error {
		data := make([]byte, len(bufs[b]))
		copy(data, bufs[b])
		dest := int(s.plan.Dests[b][seqs[b]])
		blk := outBlock{bucket: uint32(b), seq: seqs[b], data: data}
		seqs[b]++
		bufs[b] = bufs[b][:0]
		return emit(dest, blk)
	}
	err := s.scanShard(func(key uint64, raw []byte) error {
		b := bucketOf(key, s.pivots)
		if bufs[b] == nil {
			bufs[b] = make([]byte, 0, blockBytes)
		}
		bufs[b] = append(bufs[b], raw...)
		if len(bufs[b]) == blockBytes {
			return flush(b)
		}
		return nil
	})
	if err != nil {
		return err
	}
	for b := range bufs {
		if len(bufs[b]) > 0 {
			if err := flush(b); err != nil {
				return err
			}
		}
	}
	for b, row := range s.plan.Dests {
		if int(seqs[b]) != len(row) {
			return fmt.Errorf("cluster: formed %d blocks for bucket %d, plan says %d", seqs[b], b, len(row))
		}
	}
	return nil
}

// produceGather pushes every stored exchange block to its bucket's owner,
// in ascending bucket order.
func (s *session) produceGather(emit func(dest int, blk outBlock) error) error {
	start := time.Now()
	s.mu.Lock()
	index := make(map[int][]blockLoc, len(s.exIndex))
	for b, locs := range s.exIndex {
		index[b] = append([]blockLoc(nil), locs...)
	}
	exFile := s.exFile
	s.mu.Unlock()
	for b := 0; b < s.s; b++ {
		owner := int(s.plan.Owners[b])
		for i, loc := range index[b] {
			data := make([]byte, loc.bytes)
			if _, err := exFile.ReadAt(data, loc.off); err != nil {
				return err
			}
			if err := emit(owner, outBlock{bucket: uint32(b), seq: uint32(i), data: data}); err != nil {
				return err
			}
		}
	}
	return s.throttleWork(s.ectx(), time.Since(start))
}

// sortShard runs the configured local sorter over the gathered records,
// under the epoch context so a failover cancels it promptly — and under a
// per-sort cancel so the coordinator's mSortCancel (its hedge won) stops a
// straggling sort without killing the session.
func (s *session) sortShard() (uint64, error) {
	s.mu.Lock()
	size := s.gaSize
	err := s.gaFile.Sync()
	s.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if size == 0 {
		// Nothing gathered: the sorted shard is the empty file.
		f, err := os.Create(s.sortedPath())
		if err != nil {
			return 0, err
		}
		return 0, f.Close()
	}
	sortScratch := filepath.Join(s.dir, "sortscratch")
	if err := os.MkdirAll(sortScratch, 0o755); err != nil {
		return 0, err
	}
	ctx, cancel := context.WithCancel(s.ectx())
	defer cancel()
	s.mu.Lock()
	if s.sortCanceled {
		s.mu.Unlock()
		return 0, context.Canceled
	}
	s.sortCancel = cancel
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.sortCancel = nil
		s.mu.Unlock()
	}()
	start := time.Now()
	if err := s.w.cfg.SortShard(ctx, s.gatherPath(), s.sortedPath(), sortScratch); err != nil {
		return 0, err
	}
	s.workUnits.Add(1)
	if err := s.throttleWork(ctx, time.Since(start)); err != nil {
		return 0, err
	}
	st, err := os.Stat(s.sortedPath())
	if err != nil {
		return 0, err
	}
	if st.Size()%record.EncodedSize != 0 {
		return 0, fmt.Errorf("cluster: sorted shard is %d bytes", st.Size())
	}
	return uint64(st.Size() / record.EncodedSize), nil
}

// sendSorted streams the sorted shard to the coordinator in chunks,
// checking for epoch interruption between chunks.
func (s *session) sendSorted(ctl *wlink, count uint64) error {
	f, err := os.Open(s.sortedPath())
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	buf := make([]byte, scatterChunk*record.EncodedSize)
	left := count
	for left > 0 {
		if s.interrupted() {
			return errInterrupted
		}
		chunkStart := time.Now()
		m := uint64(scatterChunk)
		if m > left {
			m = left
		}
		chunk := buf[:m*record.EncodedSize]
		if _, err := readFull(br, chunk); err != nil {
			return err
		}
		if err := ctl.send(mRecords, chunk); err != nil {
			return err
		}
		left -= m
		s.workUnits.Add(1)
		if err := s.throttleWork(s.ectx(), time.Since(chunkStart)); err != nil {
			return err
		}
	}
	return ctl.send(mFetchDone, (&msgCount{Count: count}).encode())
}
