package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"balancesort/internal/obs"
	"balancesort/internal/record"
)

// benchSort runs one cluster sort over w in-process workers and returns the
// wall time. Optional mods tweak the SortSpec (tracing, sampling) before
// the run.
func benchSort(tb testing.TB, addrs []string, inPath string, n int, mods ...func(*SortSpec)) time.Duration {
	tb.Helper()
	outPath := filepath.Join(tb.TempDir(), "out.dat")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	for attempt := 0; ; attempt++ {
		start := time.Now()
		spec := SortSpec{Workers: addrs}
		for _, m := range mods {
			m(&spec)
		}
		stats, err := Sort(ctx, inPath, outPath, spec)
		if err != nil {
			// A worker may still be tearing the previous bench job's
			// session down when the next one dials in; give it a moment.
			if attempt < 40 && strings.Contains(err.Error(), "busy") {
				time.Sleep(25 * time.Millisecond)
				continue
			}
			tb.Fatal(err)
		}
		if stats.Records != n {
			tb.Fatalf("sorted %d of %d records", stats.Records, n)
		}
		return time.Since(start)
	}
}

// outOfCoreSortShard returns a WorkerConfig.SortShard that external-sorts
// the shard under a hard memory budget of memRecs records: sorted runs are
// spilled to scratchDir and k-way merged into outPath. It stands in for the
// root file-backed engine (which internal/cluster cannot import without a
// cycle) so the bench can publish an honest larger-than-memory row.
func outOfCoreSortShard(memRecs int) func(context.Context, string, string, string) error {
	return func(ctx context.Context, inPath, outPath, scratchDir string) error {
		in, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer in.Close()
		var runs []*os.File
		defer func() {
			for _, f := range runs {
				f.Close()
			}
		}()
		buf := make([]byte, memRecs*record.EncodedSize)
		for i := 0; ; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			n, rerr := io.ReadFull(in, buf)
			if rerr == io.EOF {
				break
			}
			if rerr != nil && rerr != io.ErrUnexpectedEOF {
				return rerr
			}
			recs, derr := record.DecodeSlice(buf[:n])
			if derr != nil {
				return derr
			}
			sort.Slice(recs, func(a, b int) bool { return recs[a].Less(recs[b]) })
			f, cerr := os.Create(filepath.Join(scratchDir, fmt.Sprintf("run-%d.dat", i)))
			if cerr != nil {
				return cerr
			}
			runs = append(runs, f)
			if werr := record.WriteAll(f, recs); werr != nil {
				return werr
			}
			if _, serr := f.Seek(0, io.SeekStart); serr != nil {
				return serr
			}
			if rerr == io.ErrUnexpectedEOF {
				break
			}
		}
		out, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer out.Close()
		w := bufio.NewWriterSize(out, 1<<16)
		rd := make([]*bufio.Reader, len(runs))
		heads := make([]record.Record, len(runs))
		live := make([]bool, len(runs))
		var tmp [record.EncodedSize]byte
		advance := func(i int) error {
			_, err := io.ReadFull(rd[i], tmp[:])
			if err == io.EOF {
				live[i] = false
				return nil
			}
			if err != nil {
				return err
			}
			heads[i] = record.Decode(tmp[:])
			live[i] = true
			return nil
		}
		for i := range runs {
			rd[i] = bufio.NewReaderSize(runs[i], 1<<16)
			if err := advance(i); err != nil {
				return err
			}
		}
		ebuf := make([]byte, 0, record.EncodedSize)
		for {
			best := -1
			for i := range heads {
				if live[i] && (best < 0 || heads[i].Less(heads[best])) {
					best = i
				}
			}
			if best < 0 {
				break
			}
			ebuf = record.Encode(ebuf[:0], heads[best])
			if _, err := w.Write(ebuf); err != nil {
				return err
			}
			if err := advance(best); err != nil {
				return err
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
		return out.Sync()
	}
}

// BenchmarkClusterSort measures end-to-end cluster sort wall time as the
// worker count scales on one machine (loopback TCP, in-memory shard sorts,
// so the measured quantity is runtime + protocol overhead, not disk).
func BenchmarkClusterSort(b *testing.B) {
	const n = 1 << 17
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			addrs := startWorkers(b, w, nil)
			inPath, _ := makeInput(b, n, 99, false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := benchSort(b, addrs, inPath, n)
				b.ReportMetric(float64(n)/d.Seconds(), "recs/s")
			}
		})
	}
}

// TestEmitClusterBench writes the 1/2/4-worker scaling measurement to
// BENCH_cluster.json at the repository root. Gated on EMIT_BENCH so the
// ordinary test run stays fast and side-effect free; CI sets the variable.
func TestEmitClusterBench(t *testing.T) {
	if os.Getenv("EMIT_BENCH") == "" {
		t.Skip("set EMIT_BENCH=1 to emit BENCH_cluster.json")
	}
	const n = 1 << 18
	type row struct {
		Workers          int     `json:"workers"`
		Seconds          float64 `json:"seconds"`
		RecsPerSec       float64 `json:"records_per_sec"`
		Speedup          float64 `json:"speedup_vs_1"`
		ShardSort        string  `json:"shard_sort,omitempty"`
		MemBudgetRecords int     `json:"mem_budget_records,omitempty"`
		OutOfCore        bool    `json:"out_of_core,omitempty"`
	}
	out := struct {
		Benchmark string `json:"benchmark"`
		Records   int    `json:"records"`
		Transport string `json:"transport"`
		Results   []row  `json:"results"`
	}{Benchmark: "cluster_scaling", Records: n, Transport: "loopback-tcp"}

	var base float64
	for _, w := range []int{1, 2, 4} {
		addrs := startWorkers(t, w, nil)
		inPath, _ := makeInput(t, n, 123, false)
		benchSort(t, addrs, inPath, n) // warm-up: page cache, listener setup
		d := benchSort(t, addrs, inPath, n)
		sec := d.Seconds()
		if w == 1 {
			base = sec
		}
		out.Results = append(out.Results, row{
			Workers:    w,
			Seconds:    sec,
			RecsPerSec: float64(n) / sec,
			Speedup:    base / sec,
			ShardSort:  "in-memory",
		})
		t.Logf("workers=%d: %.3fs (%.0f recs/s)", w, sec, float64(n)/sec)
	}

	// The honest out-of-core points: shards sorted through a disk-spilling
	// external merge under an 8k-record memory budget. The 1-worker row is
	// the baseline for the out-of-core speedup — comparing an
	// external-merge run against the in-memory single-worker time mixes
	// two different shard sorters and published a meaningless sub-1x
	// "speedup" for a configuration that actually scales.
	const memRecs = 8192
	var oocBase float64
	for _, w := range []int{1, 4} {
		addrs := startWorkers(t, w, func(_ int, cfg *WorkerConfig) {
			cfg.SortShard = outOfCoreSortShard(memRecs)
		})
		inPath, _ := makeInput(t, n, 123, false)
		benchSort(t, addrs, inPath, n)
		d := benchSort(t, addrs, inPath, n)
		sec := d.Seconds()
		if w == 1 {
			oocBase = sec
		}
		out.Results = append(out.Results, row{
			Workers:          w,
			Seconds:          sec,
			RecsPerSec:       float64(n) / sec,
			Speedup:          oocBase / sec,
			ShardSort:        "external-merge",
			MemBudgetRecords: memRecs,
			OutOfCore:        true,
		})
		t.Logf("workers=%d out-of-core (mem %d recs): %.3fs (%.0f recs/s)", w, memRecs, sec, float64(n)/sec)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("..", "..", "BENCH_cluster.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)

	// One more 4-worker run with tracing and utilization sampling on, so
	// CI can feed the merged coordinator+worker timeline to
	// cmd/sortanalyze. Written as TRACE_cluster.json at the repo root.
	tr := obs.New(0, nil)
	addrs := startWorkers(t, 4, func(_ int, cfg *WorkerConfig) {
		cfg.Sample = 2 * time.Millisecond
	})
	inPath, _ := makeInput(t, n, 123, false)
	benchSort(t, addrs, inPath, n, func(sp *SortSpec) {
		sp.Trace = tr
		sp.Sample = 2 * time.Millisecond
	})
	tracePath := filepath.Join("..", "..", "TRACE_cluster.json")
	tf, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	if err := obs.WriteChromeTraceDropped(tf, tr.Spans(), tr.Dropped()); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d spans)", tracePath, len(tr.Spans()))
}

// TestEmitFailoverBench measures what a mid-exchange worker kill costs a
// 4-worker job against an identical clean run, and writes the comparison to
// BENCH_failover.json plus a merged Chrome trace of the failover run
// (TRACE_failover.json) whose timeline shows the failover span between the
// aborted and re-run phases. Gated on EMIT_BENCH; CI uploads both.
func TestEmitFailoverBench(t *testing.T) {
	if os.Getenv("EMIT_BENCH") == "" {
		t.Skip("set EMIT_BENCH=1 to emit BENCH_failover.json")
	}
	const n = 1 << 18
	run := func(chaos *ChaosSpec, tr *obs.Tracer) (time.Duration, *SortStats) {
		addrs := startWorkers(t, 4, fastWorker)
		inPath, _ := makeInput(t, n, 321, false)
		outPath := filepath.Join(t.TempDir(), "out.dat")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer cancel()
		start := time.Now()
		stats, err := Sort(ctx, inPath, outPath, SortSpec{
			Workers:   addrs,
			Dial:      fastDial,
			Heartbeat: fastHeartbeat(),
			Chaos:     chaos,
			Trace:     tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		return time.Since(start), stats
	}

	cleanDur, _ := run(nil, nil)
	tr := obs.New(0, nil)
	chaosDur, stats := run(&ChaosSpec{Phase: "exchange", Worker: 1}, tr)
	if stats.Recovery == nil {
		t.Fatal("chaos run recorded no recovery")
	}

	out := struct {
		Benchmark          string  `json:"benchmark"`
		Records            int     `json:"records"`
		Workers            int     `json:"workers"`
		ChaosPhase         string  `json:"chaos_phase"`
		CleanSeconds       float64 `json:"clean_seconds"`
		FailoverSeconds    float64 `json:"failover_seconds"`
		OverheadRatio      float64 `json:"overhead_ratio"`
		FailoverWallNanos  int64   `json:"failover_wall_nanos"`
		RescatteredBlocks  int     `json:"rescattered_blocks"`
		RescatteredRecords int     `json:"rescattered_records"`
	}{
		Benchmark: "cluster_failover", Records: n, Workers: 4, ChaosPhase: "exchange",
		CleanSeconds:       cleanDur.Seconds(),
		FailoverSeconds:    chaosDur.Seconds(),
		OverheadRatio:      chaosDur.Seconds() / cleanDur.Seconds(),
		FailoverWallNanos:  stats.Recovery.FailoverWallNanos,
		RescatteredBlocks:  stats.Recovery.RescatteredBlocks,
		RescatteredRecords: stats.Recovery.RescatteredRecords,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("..", "..", "BENCH_failover.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (clean %.3fs, failover %.3fs, %.2fx)", path,
		cleanDur.Seconds(), chaosDur.Seconds(), out.OverheadRatio)

	tracePath := filepath.Join("..", "..", "TRACE_failover.json")
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := obs.WriteChromeTrace(f, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d spans)", tracePath, len(tr.Spans()))
}

// TestEmitStragglerBench measures what a 10x-slowed worker costs a
// 4-worker job with the straggler machinery off (the job simply waits the
// stall out) versus on with hedging (the victim's shard is speculatively
// re-sorted on the fastest idle peer), plus an unstalled reference run.
// Written to BENCH_straggler.json with a merged Chrome trace of the hedged
// run (TRACE_straggler.json) showing the hedge span beside the stalled
// local sort. Gated on EMIT_BENCH; CI uploads both.
func TestEmitStragglerBench(t *testing.T) {
	if os.Getenv("EMIT_BENCH") == "" {
		t.Skip("set EMIT_BENCH=1 to emit BENCH_straggler.json")
	}
	const n = 1 << 18
	run := func(stall *StallSpec, sc StragglerConfig, tr *obs.Tracer) (time.Duration, *SortStats) {
		addrs := startWorkers(t, 4, fastWorker)
		inPath, _ := makeInput(t, n, 321, false)
		outPath := filepath.Join(t.TempDir(), "out.dat")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer cancel()
		start := time.Now()
		stats, err := Sort(ctx, inPath, outPath, SortSpec{
			Workers:   addrs,
			Dial:      fastDial,
			Heartbeat: fastHeartbeat(),
			Stall:     stall,
			Straggler: sc,
			Trace:     tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		return time.Since(start), stats
	}

	cleanDur, _ := run(nil, StragglerConfig{}, nil)
	stall := &StallSpec{Phase: "local-sort", Worker: 1, Factor: 10}
	stalledDur, _ := run(stall, StragglerConfig{}, nil)
	tr := obs.New(0, nil)
	hedged := StragglerConfig{
		Enabled: true,
		Hedge:   true,
		// Fire early: the 10x stall stretches a ~15ms shard sort to ~150ms,
		// so the hedge must launch well inside that window to win the race.
		SoftBudget: 25 * time.Millisecond,
		HardBudget: time.Minute, // the hedge, not demotion, must do the rescue
	}
	hedgedDur, stats := run(stall, hedged, tr)
	if stats.Recovery == nil || stats.Recovery.HedgeWins != 1 {
		t.Fatalf("hedged run recorded no hedge win: %+v", stats.Recovery)
	}
	if hedgedDur >= stalledDur {
		t.Errorf("hedging did not pay: hedged %.3fs >= stalled %.3fs", hedgedDur.Seconds(), stalledDur.Seconds())
	}

	out := struct {
		Benchmark      string  `json:"benchmark"`
		Records        int     `json:"records"`
		Workers        int     `json:"workers"`
		StallPhase     string  `json:"stall_phase"`
		StallFactor    int     `json:"stall_factor"`
		CleanSeconds   float64 `json:"clean_seconds"`
		StalledSeconds float64 `json:"stalled_seconds"`
		HedgedSeconds  float64 `json:"hedged_seconds"`
		HedgeSpeedup   float64 `json:"hedge_speedup"`
		HedgeWins      int     `json:"hedge_wins"`
	}{
		Benchmark: "cluster_straggler", Records: n, Workers: 4,
		StallPhase: "local-sort", StallFactor: 10,
		CleanSeconds:   cleanDur.Seconds(),
		StalledSeconds: stalledDur.Seconds(),
		HedgedSeconds:  hedgedDur.Seconds(),
		HedgeSpeedup:   stalledDur.Seconds() / hedgedDur.Seconds(),
		HedgeWins:      stats.Recovery.HedgeWins,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("..", "..", "BENCH_straggler.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (clean %.3fs, stalled %.3fs, hedged %.3fs, %.2fx)", path,
		cleanDur.Seconds(), stalledDur.Seconds(), hedgedDur.Seconds(), out.HedgeSpeedup)

	tracePath := filepath.Join("..", "..", "TRACE_straggler.json")
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := obs.WriteChromeTrace(f, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d spans)", tracePath, len(tr.Spans()))
}
