package cluster

import (
	"errors"
	"fmt"
	"time"
)

// WorkerLostError reports a worker that the cluster could not reach after
// the dialer's full retry/backoff budget — the distributed analogue of
// diskio's DiskFailedError. It surfaces on whichever side observed the
// loss: a coordinator that cannot reach a worker, or a worker whose peer
// vanished mid-exchange (the worker reports it to the coordinator, which
// reconstructs the typed error for its caller).
type WorkerLostError struct {
	Worker int    // the lost worker's ID in the job (-1 if unknown)
	Addr   string // the address that stopped answering
	Err    error  // the last transport error
}

func (e *WorkerLostError) Error() string {
	return fmt.Sprintf("cluster: worker %d (%s) lost: %v", e.Worker, e.Addr, e.Err)
}

func (e *WorkerLostError) Unwrap() error { return e.Err }

// ClusterDegradedError reports a job abandoned because too many workers
// died: failover needs a majority of the original cluster (⌊W/2⌋+1
// survivors) to keep the re-scattered shards and the placement matrix
// meaningful. It wraps the *WorkerLostError of the loss that broke quorum,
// so errors.As reaches both types. It is built on the coordinator and
// never crosses the wire.
type ClusterDegradedError struct {
	Lost    []int // every worker lost so far, in detection order
	Workers int   // original cluster width W
	Quorum  int   // minimum survivors required
	Err     error // the quorum-breaking loss (a *WorkerLostError)
}

func (e *ClusterDegradedError) Error() string {
	return fmt.Sprintf("cluster: degraded below quorum: %d of %d workers lost (need %d alive): %v",
		len(e.Lost), e.Workers, e.Quorum, e.Err)
}

func (e *ClusterDegradedError) Unwrap() error { return e.Err }

// StragglerError reports a worker that stayed alive — it kept answering
// heartbeats — but fell past its phase deadline budget without making
// progress, and was demoted to the failover path. It is the latency dual
// of WorkerLostError: the worker is reachable, just uselessly slow. A job
// that survives the demotion never surfaces it (the failover rebuild
// absorbs it, reported via RecoveryStats); it reaches the caller only when
// the demotion breaks quorum, wrapped in a ClusterDegradedError, or when
// failover is disabled. jobs.Classify maps it to a retryable status.
type StragglerError struct {
	Worker int           // the straggling worker's ID in the job
	Addr   string        // its address (still reachable, unlike a lost worker)
	Phase  string        // the coordinator phase that blew its budget
	Budget time.Duration // the deadline budget the worker fell past
	Err    error         // detail: what the detector last observed
}

func (e *StragglerError) Error() string {
	return fmt.Sprintf("cluster: worker %d (%s) straggling in %s past budget %v: %v",
		e.Worker, e.Addr, e.Phase, e.Budget, e.Err)
}

func (e *StragglerError) Unwrap() error { return e.Err }

// errorToWire flattens err into a msgError, preserving WorkerLostError's
// and StragglerError's identity across the process boundary.
func errorToWire(self int, err error) *msgError {
	var straggler *StragglerError
	if errors.As(err, &straggler) {
		return &msgError{
			Code: ecStraggler, Worker: uint32(straggler.Worker), Addr: straggler.Addr,
			Text: straggler.Err.Error(), Phase: straggler.Phase, Budget: uint64(straggler.Budget),
		}
	}
	var lost *WorkerLostError
	if errors.As(err, &lost) {
		return &msgError{Code: ecWorkerLost, Worker: uint32(lost.Worker), Addr: lost.Addr, Text: lost.Err.Error()}
	}
	return &msgError{Code: ecGeneric, Worker: uint32(self), Text: err.Error()}
}

// wireToError is the inverse: it rebuilds the typed error a msgError
// describes, so errors.As keeps working for callers on the far side.
func wireToError(m *msgError) error {
	switch m.Code {
	case ecWorkerLost:
		return &WorkerLostError{Worker: int(m.Worker), Addr: m.Addr, Err: errors.New(m.Text)}
	case ecStraggler:
		return &StragglerError{
			Worker: int(m.Worker), Addr: m.Addr, Phase: m.Phase,
			Budget: time.Duration(m.Budget), Err: errors.New(m.Text),
		}
	default:
		return fmt.Errorf("cluster: worker %d: %s", m.Worker, m.Text)
	}
}
