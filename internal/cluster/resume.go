package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"balancesort/internal/obs"
	"balancesort/internal/pdm"
	"balancesort/internal/plan"
	"balancesort/internal/record"
)

// journalState is everything Resume reconstructs from a coordinator
// journal: the job identity, the membership as grown by joins, the last
// committed chunk-ownership map, the committed pivot set, and how far the
// job provably got.
type journalState struct {
	jobID     uint64
	addrs     []string
	s         int
	blockRecs int
	records   int
	assign    []int32 // nil: the crash predates scatter-done
	maxEpoch  uint32
	lastPhase string
	pivots    []uint64
	digest    uint64
	done      bool
}

// ErrNoJournaledStart means the journal exists but never recorded a job
// start — the coordinator died before committing anything worth resuming.
// Callers fall back to a fresh Sort; the input is still the source of truth.
var ErrNoJournaledStart = errors.New("journal records no job start")

func parseJournalState(entries []pdm.JournalEntry) (*journalState, error) {
	st := &journalState{}
	for _, e := range entries {
		var ev journalEvent
		if err := json.Unmarshal(e.Payload, &ev); err != nil {
			return nil, fmt.Errorf("cluster: journal entry %d: %w", e.Seq, err)
		}
		if ev.Epoch > st.maxEpoch {
			st.maxEpoch = ev.Epoch
		}
		switch ev.Event {
		case "start":
			st.jobID = ev.JobID
			st.addrs = ev.Addrs
			st.s = ev.S
			st.blockRecs = ev.BlockRecs
			st.records = ev.Records
		case "phase":
			st.lastPhase = ev.Phase
		case "pivots":
			st.pivots = ev.Pivots
			st.digest = ev.Digest
		case "join":
			st.addrs = append(st.addrs, ev.Addr)
		case "done":
			st.done = true
		}
		if len(ev.Assign) > 0 {
			st.assign = ev.Assign
		}
	}
	return st, nil
}

// Resume restarts a crashed coordinator's job from its journal: it replays
// the phase-commit log to recover the job identity, membership, chunk
// ownership, and committed pivots, re-dials the workers with the v4
// mResume handshake (each reports which epoch-tagged shard it still
// holds), re-scatters only what was lost, and re-enters the pipeline at
// the epoch cut. Output is byte-identical to an uninterrupted Sort — the
// committed pivots are cross-checked against the recomputed ones as a
// determinism assertion. Workers that cannot be re-reached count as
// losses; quorum decides whether the resumed job proceeds.
func Resume(ctx context.Context, inPath, outPath string, spec SortSpec) (*SortStats, error) {
	if spec.JournalPath == "" {
		return nil, fmt.Errorf("cluster: resume needs a journal path")
	}
	jr, entries, err := pdm.OpenJournalAppend(spec.JournalPath)
	if err != nil {
		return nil, fmt.Errorf("cluster: resume journal: %w", err)
	}
	st, err := parseJournalState(entries)
	if err != nil {
		jr.Close()
		return nil, err
	}
	if st.jobID == 0 || len(st.addrs) == 0 {
		jr.Close()
		return nil, fmt.Errorf("cluster: journal %s: %w", spec.JournalPath, ErrNoJournaledStart)
	}
	spec.Workers = st.addrs
	spec.Buckets = st.s
	spec.BlockRecs = st.blockRecs
	spec, err = spec.withDefaults()
	if err != nil {
		jr.Close()
		return nil, err
	}

	if st.done {
		// The journal committed completion. If the output is still intact
		// there is nothing to redo; otherwise fall through and rebuild it.
		if ost, serr := os.Stat(outPath); serr == nil && ost.Size() == int64(st.records)*int64(record.EncodedSize) {
			jr.Close()
			return &SortStats{
				Records: st.records, Workers: len(st.addrs), Buckets: st.s,
				Recovery: &RecoveryStats{Resumed: true, ResumePhase: "done"},
			}, nil
		}
	}

	in, err := os.Open(inPath)
	if err != nil {
		jr.Close()
		return nil, err
	}
	defer in.Close()
	ist, err := in.Stat()
	if err != nil {
		jr.Close()
		return nil, err
	}
	if ist.Size() != int64(st.records)*int64(record.EncodedSize) {
		jr.Close()
		return nil, fmt.Errorf("cluster: %s holds %d bytes, journal expects %d records of %d bytes",
			inPath, ist.Size(), st.records, record.EncodedSize)
	}

	c := &coordinator{
		spec:       spec,
		W:          len(spec.Workers),
		S:          spec.Buckets,
		n:          st.records,
		in:         in,
		inPath:     inPath,
		outPath:    outPath,
		tr:         spec.Trace,
		net:        &netMeter{},
		jobID:      st.jobID,
		jr:         jr,
		epoch:      st.maxEpoch,
		deadErr:    make(map[int]error),
		lostSig:    make(chan struct{}, 1),
		prog:       make(map[int]progTrack),
		wantPivots: st.pivots,
		wantDigest: st.digest,
	}
	c.hctx, c.hcancel = context.WithCancel(ctx)
	if spec.Straggler.Enabled {
		c.predicted = time.Duration(plan.PhaseBudgetSeconds(c.n, record.EncodedSize) * float64(time.Second))
	}
	if len(st.assign) > 0 {
		c.chunks = (c.n + scatterChunk - 1) / scatterChunk
		if len(st.assign) == c.chunks {
			c.assign = append([]int32(nil), st.assign...)
		} else {
			c.chunks = 0 // corrupt ownership map: reseed re-deals everything
		}
	}
	defer func() {
		c.stopPhaseWatch()
		if c.monCancel != nil {
			c.monCancel()
			c.monWG.Wait()
		}
		c.hcancel()
		c.closeHedge()
		c.watchWG.Wait()
		for _, l := range c.links {
			if l != nil {
				l.conn.Close()
				close(l.done)
			}
		}
		if c.jr != nil {
			c.jr.Close()
		}
	}()
	return c.resume(ctx, st)
}

func (c *coordinator) resume(ctx context.Context, st *journalState) (*SortStats, error) {
	if c.tr != nil {
		c.tr.SetResourceSource(c.net.resourceSource(), "cluster")
		defer c.tr.SetResourceSource(nil)
		smp := obs.StartSampler(c.tr, c.spec.Sample,
			append(obs.RuntimeGauges(), c.net.gauges()...))
		defer smp.Stop()
	}
	sp := c.tr.Begin("cluster", "resume", 0)
	c.links = make([]*link, c.W)
	c.vers = make([]int, c.W)
	c.failover = true
	c.elastic = true
	fresh := make(map[int]bool)
	expected := c.expectedPerWorker()
	for i := range c.spec.Workers {
		if err := c.attachResume(ctx, i, expected, fresh); err != nil {
			if ctx.Err() != nil {
				sp.End()
				return nil, ctx.Err()
			}
			c.markDeadEarly(i, err)
		}
	}

	c.mu.Lock()
	dead := make([]int, 0, len(c.deadErr))
	for i := 0; i < c.W; i++ {
		if _, d := c.deadErr[i]; d {
			dead = append(dead, i)
		}
	}
	lastLost := c.lastLost
	c.mu.Unlock()
	quorum := c.W/2 + 1
	if c.W-len(dead) < quorum {
		sp.End()
		return nil, &ClusterDegradedError{Lost: dead, Workers: c.W, Quorum: quorum, Err: lastLost}
	}

	stop := c.watchCancel(ctx)
	defer stop()
	c.startMonitors(ctx)

	activeList := c.active()
	c.mu.Lock()
	c.epoch++
	epoch := c.epoch
	c.rec.Resumed = true
	c.rec.ResumePhase = st.lastPhase
	c.rec.ActiveWorkers = append([]int(nil), activeList...)
	c.mu.Unlock()
	c.journal(journalEvent{Event: "resume", Epoch: epoch, Phase: st.lastPhase})

	pending, recs, err := c.reseed(fresh)
	if err == nil {
		c.journal(journalEvent{
			Event: "reseed", Epoch: epoch, Blocks: pending,
			Extents: append([]uint64(nil), c.perWorker...),
			Assign:  append([]int32(nil), c.assign...),
		})
	}
	sp.End(
		obs.Attr{Key: "epoch", Val: int64(epoch)},
		obs.Attr{Key: "phase", Val: int64(len(st.lastPhase))},
		obs.Attr{Key: "rescattered-records", Val: int64(recs)},
	)
	return c.finish(ctx, err)
}

// expectedPerWorker derives each worker's shard size from the journaled
// chunk-ownership map; a worker whose parked shard does not match exactly
// is treated as fresh and re-fed.
func (c *coordinator) expectedPerWorker() []uint64 {
	out := make([]uint64, c.W)
	for t, w := range c.assign {
		if w < 0 {
			continue
		}
		m := scatterChunk
		if (t+1)*scatterChunk > c.n {
			m = c.n - t*scatterChunk
		}
		out[w] += uint64(m)
	}
	return out
}

// attachResume re-opens worker i's control link with the mResume
// handshake. A worker may still be tearing its old session down moments
// after the coordinator's crash severed the links, so a busy/handshake
// failure is retried a few times before the worker counts as lost.
func (c *coordinator) attachResume(ctx context.Context, i int, expected []uint64, fresh map[int]bool) error {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, 25*time.Millisecond); err != nil {
				return err
			}
		}
		conn, err := c.spec.Dial.dial(ctx, i, c.spec.Workers[i])
		if err != nil {
			lastErr = err
			continue
		}
		l := newLink(i, conn, c.spec.Dial, c.net)
		c.links[i] = l
		a := msgAttach{
			Version: protocolVersion, JobID: c.jobID,
			Worker: uint32(i), Workers: uint32(c.W),
			S: uint32(c.S), BlockRecs: uint32(c.spec.BlockRecs),
			Flags: c.helloFlags(), Epoch: c.epoch, Peers: c.spec.Workers,
		}
		payload, err := func() ([]byte, error) {
			if err := l.send(mResume, a.encode()); err != nil {
				return nil, err
			}
			return c.expectHandshakeOn(l, mResumeState)
		}()
		if err != nil {
			conn.Close()
			close(l.done)
			c.links[i] = nil
			lastErr = err
			continue
		}
		var rs msgResumeState
		if err := rs.decode(payload); err != nil {
			conn.Close()
			close(l.done)
			c.links[i] = nil
			lastErr = err
			continue
		}
		c.vers[i] = int(rs.Version)
		if rs.HaveShard != 1 || rs.ShardRecs != expected[i] {
			fresh[i] = true
		}
		return nil
	}
	return lastErr
}

func (c *coordinator) helloFlags() uint32 {
	if c.tr != nil {
		return helloFlagTrace
	}
	return 0
}

// markDeadEarly records worker i as lost during resume's reconnect, before
// links or monitors exist for it. Unlike lost() it does not fire the loss
// signal — there are no phase waiters yet; quorum alone decides whether
// the resumed job proceeds.
func (c *coordinator) markDeadEarly(i int, err error) {
	c.mu.Lock()
	if _, dup := c.deadErr[i]; !dup {
		wl := c.asLost(i, err)
		c.deadErr[i] = wl
		c.lastLost = wl
		c.rec.LostWorkers = append(c.rec.LostWorkers, i)
		c.rec.LostPhases = append(c.rec.LostPhases, "resume")
	}
	l := c.links[i]
	c.mu.Unlock()
	if l != nil {
		l.conn.Close()
	}
	c.journal(journalEvent{Event: "lost", Epoch: c.epoch, Phase: "resume", Worker: i})
}

// histDigest is an FNV-1a fold of the merged histogram, journaled with the
// pivots so a resumed (or re-planned) epoch can prove it reproduced the
// same global key distribution.
func histDigest(bins []uint64) uint64 {
	h := uint64(1469598103934665603)
	for _, v := range bins {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
