package cluster

import (
	"strconv"
	"sync/atomic"

	"balancesort/internal/obs"
)

// netMeter counts the frames and wire bytes one process moves over its
// cluster connections (control, peer block, and handshake traffic; monitor
// pings are excluded as constant-rate noise). Byte counts include the
// frame overhead, so they reflect what actually crossed the socket. A nil
// meter is a no-op, so un-instrumented paths cost nothing.
type netMeter struct {
	framesOut, bytesOut atomic.Int64
	framesIn, bytesIn   atomic.Int64
}

func (m *netMeter) out(payloadLen int) {
	if m == nil {
		return
	}
	m.framesOut.Add(1)
	m.bytesOut.Add(int64(payloadLen + frameOverhead))
}

func (m *netMeter) in(payloadLen int) {
	if m == nil {
		return
	}
	m.framesIn.Add(1)
	m.bytesIn.Add(int64(payloadLen + frameOverhead))
}

// attrs snapshots the counters as span attributes; a tracer resource
// source diffs two snapshots to attribute network traffic to one span.
func (m *netMeter) attrs() []obs.Attr {
	if m == nil {
		return nil
	}
	return []obs.Attr{
		{Key: "net.bytes_out", Val: m.bytesOut.Load()},
		{Key: "net.frames_out", Val: m.framesOut.Load()},
		{Key: "net.bytes_in", Val: m.bytesIn.Load()},
		{Key: "net.frames_in", Val: m.framesIn.Load()},
	}
}

// resourceSource is the span-attribution hook for a cluster process:
// network counters plus cumulative allocation totals.
func (m *netMeter) resourceSource() func() []obs.Attr {
	return func() []obs.Attr { return append(m.attrs(), obs.AllocAttrs()...) }
}

// gauges are the meter's utilization-sampler tracks: inbound and outbound
// wire throughput in bytes per second.
func (m *netMeter) gauges() []obs.Gauge {
	return []obs.Gauge{
		{Name: "net.in_bps", Kind: obs.GaugeRate, Fn: m.bytesIn.Load},
		{Name: "net.out_bps", Kind: obs.GaugeRate, Fn: m.bytesOut.Load},
	}
}

// flowID derives the causality id both ends of a coordinator->worker phase
// edge compute independently from (phase, epoch, worker) — no id crosses
// the wire, yet the two flow points bind in the merged trace.
func flowID(phase string, epoch uint32, worker int) uint64 {
	return obs.FlowID(phase, strconv.FormatUint(uint64(epoch), 10), strconv.Itoa(worker))
}
