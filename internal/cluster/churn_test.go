package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"path/filepath"
	"testing"
	"time"

	"balancesort/internal/pdm"
	"balancesort/internal/record"
)

// killResume runs one coordinator-crash-and-resume cycle: Sort is killed by
// the coordinator chaos hook at the named phase, then Resume replays the
// journal against the same (still running, shard-parking) workers. The
// resumed output must be byte-identical to the reference order.
func killResume(t *testing.T, phase string, seed int64, n int) *SortStats {
	t.Helper()
	addrs := startWorkers(t, 4, fastWorker)
	inPath, want := makeInput(t, n, seed, false)
	outPath := filepath.Join(t.TempDir(), "out.dat")
	jpath := filepath.Join(t.TempDir(), "cluster.journal")
	spec := SortSpec{
		Workers:     addrs,
		BlockRecs:   128,
		Dial:        fastDial,
		Heartbeat:   fastHeartbeat(),
		Chaos:       &ChaosSpec{Phase: phase, Coordinator: true},
		JournalPath: jpath,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	_, err := Sort(ctx, inPath, outPath, spec)
	if !errors.Is(err, ErrCoordinatorChaosKill) {
		t.Fatalf("coordinator chaos at %q returned %v, want ErrCoordinatorChaosKill", phase, err)
	}

	spec.Chaos = nil
	stats, err := Resume(ctx, inPath, outPath, spec)
	if err != nil {
		t.Fatalf("resume after kill at %q: %v", phase, err)
	}
	checkOutput(t, outPath, want)
	if stats.Recovery == nil || !stats.Recovery.Resumed {
		t.Fatalf("resumed run did not report Recovery.Resumed: %+v", stats.Recovery)
	}
	return stats
}

// TestChaosCoordinatorResumeMatrix kills the coordinator at the start of
// every phase and resumes from the journal. Each resumed run must produce
// byte-identical output, report itself as resumed, and keep Invariant 2 on
// the re-planned exchange matrix.
func TestChaosCoordinatorResumeMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("coordinator resume matrix is slow under -short")
	}
	for i, phase := range CoordinatorPhases {
		t.Run(phase, func(t *testing.T) {
			stats := killResume(t, phase, int64(200+i), 20000)
			checkBalanceBound(t, stats.X)
		})
	}
}

// TestChaosJoinMatrix admits a fifth worker at the start of every phase of
// a four-worker job. Every run must treat the joiner as an added virtual
// disk: the epoch bumps, placement re-plans over W+1 disks (Invariant 2
// re-checked on the resulting matrix), and the output bytes do not move.
func TestChaosJoinMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("join matrix is slow under -short")
	}
	for i, phase := range CoordinatorPhases {
		t.Run(phase, func(t *testing.T) {
			addrs := startWorkers(t, 5, fastWorker)
			stats := runClusterSort(t, addrs[:4], 20000, int64(300+i), false, SortSpec{
				BlockRecs: 128,
				Dial:      fastDial,
				Heartbeat: fastHeartbeat(),
				Join:      &JoinSpec{Phase: phase, Addr: addrs[4]},
			})
			rec := stats.Recovery
			if rec == nil || rec.Joins != 1 {
				t.Fatalf("join at %q not recorded: %+v", phase, rec)
			}
			if len(rec.JoinedWorkers) != 1 || rec.JoinedWorkers[0] != 4 {
				t.Fatalf("JoinedWorkers %v, want [4]", rec.JoinedWorkers)
			}
			if len(rec.ActiveWorkers) != 5 {
				t.Fatalf("ActiveWorkers %v after join, want all 5", rec.ActiveWorkers)
			}
			checkBalanceBound(t, stats.X)
			if len(stats.X) > 0 && len(stats.X[0]) != 5 {
				t.Fatalf("X has %d columns, want 5 (joiner is a placement disk)", len(stats.X[0]))
			}
		})
	}
}

// churnWorkers starts W workers where each index in killAt severs all of
// its own connections when asked to sort its shard — the deterministic way
// to land a loss after a join has already grown the membership.
func churnWorkers(t *testing.T, w int, killAt map[int]bool) []string {
	t.Helper()
	kills := make([]context.CancelFunc, w)
	addrs := make([]string, w)
	for i := 0; i < w; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cfg := WorkerConfig{ScratchDir: t.TempDir(), Dial: fastDial}
		if killAt[i] {
			i := i
			cfg.SortShard = func(ctx context.Context, _, _, _ string) error {
				kills[i]()
				<-ctx.Done()
				return ctx.Err()
			}
		}
		wk := NewWorker(cfg)
		ctx, cancel := context.WithCancel(context.Background())
		kills[i] = cancel
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = wk.Serve(ctx, ln)
		}()
		t.Cleanup(func() {
			cancel()
			<-done
		})
		addrs[i] = ln.Addr().String()
	}
	return addrs
}

// TestJoinThenLossAtQuorum pins the quorum arithmetic under churn: a join
// grows the cluster from 4 to 5 (quorum 3), then two workers die at local
// sort. Three survivors are exactly quorum, so the job must complete with
// byte-identical output.
func TestJoinThenLossAtQuorum(t *testing.T) {
	addrs := churnWorkers(t, 5, map[int]bool{2: true, 3: true})
	inPath, want := makeInput(t, 20000, 37, false)
	outPath := filepath.Join(t.TempDir(), "out.dat")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	stats, err := Sort(ctx, inPath, outPath, SortSpec{
		Workers:   addrs[:4],
		BlockRecs: 128,
		Dial:      fastDial,
		Heartbeat: fastHeartbeat(),
		Join:      &JoinSpec{Phase: "plan", Addr: addrs[4]},
	})
	if err != nil {
		t.Fatalf("join then two losses at quorum: %v", err)
	}
	checkOutput(t, outPath, want)
	rec := stats.Recovery
	if rec == nil || rec.Joins != 1 {
		t.Fatalf("join not recorded: %+v", rec)
	}
	if len(rec.LostWorkers) != 2 {
		t.Fatalf("LostWorkers %v, want exactly the two sort-phase victims", rec.LostWorkers)
	}
	if len(rec.ActiveWorkers) != 3 {
		t.Fatalf("ActiveWorkers %v, want 3 (exactly quorum of the grown cluster)", rec.ActiveWorkers)
	}
}

// TestJoinThenLossBelowQuorum is the other side of the boundary: after the
// same 4→5 join, three deaths leave two survivors — one below quorum — and
// the job must converge to a typed *ClusterDegradedError that reflects the
// grown membership.
func TestJoinThenLossBelowQuorum(t *testing.T) {
	addrs := churnWorkers(t, 5, map[int]bool{1: true, 2: true, 3: true})
	inPath, _ := makeInput(t, 20000, 43, false)
	outPath := filepath.Join(t.TempDir(), "out.dat")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	_, err := Sort(ctx, inPath, outPath, SortSpec{
		Workers:   addrs[:4],
		BlockRecs: 128,
		Dial:      fastDial,
		Heartbeat: fastHeartbeat(),
		Join:      &JoinSpec{Phase: "plan", Addr: addrs[4]},
	})
	var deg *ClusterDegradedError
	if !errors.As(err, &deg) {
		t.Fatalf("three losses after a join returned %v, want *ClusterDegradedError", err)
	}
	if deg.Workers != 5 || deg.Quorum != 3 {
		t.Fatalf("degraded error %+v, want quorum 3 of the grown 5-worker cluster", deg)
	}
}

// TestHeartbeatFlapDuringJoin injects pong latency spikes on every incumbent
// while a joiner is admitted mid-job. The join's epoch bump and re-plan must
// not let the flapping pongs escalate into a spurious failover.
func TestHeartbeatFlapDuringJoin(t *testing.T) {
	addrs := startWorkers(t, 5, func(i int, cfg *WorkerConfig) {
		cfg.Dial = fastDial
		cfg.PongDelay = 60 * time.Millisecond
		cfg.PongDelayCount = 2
	})
	stats := runClusterSort(t, addrs[:4], 10000, 61, false, SortSpec{
		BlockRecs: 128,
		Dial:      fastDial,
		Heartbeat: Heartbeat{Interval: 30 * time.Millisecond, MissBudget: 3},
		Join:      &JoinSpec{Phase: "histogram-merge", Addr: addrs[4]},
	})
	rec := stats.Recovery
	if rec == nil || rec.Joins != 1 {
		t.Fatalf("join not recorded: %+v", rec)
	}
	if rec.Failovers != 0 || len(rec.LostWorkers) != 0 {
		t.Fatalf("heartbeat flap during join escalated to failover: %+v", rec)
	}
}

// TestResumeJournalReplay replays the phase-commit log a kill-and-resume
// cycle writes: it must carry the job identity, the committed pivots and
// histogram digest, per-worker phase completions, the resume cut with its
// reseeded ownership map, and the final done record.
func TestResumeJournalReplay(t *testing.T) {
	addrs := startWorkers(t, 4, fastWorker)
	inPath, want := makeInput(t, 20000, 47, true)
	outPath := filepath.Join(t.TempDir(), "out.dat")
	jpath := filepath.Join(t.TempDir(), "cluster.journal")
	spec := SortSpec{
		Workers:     addrs,
		BlockRecs:   128,
		Dial:        fastDial,
		Heartbeat:   fastHeartbeat(),
		Chaos:       &ChaosSpec{Phase: "local-sort", Coordinator: true},
		JournalPath: jpath,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if _, err := Sort(ctx, inPath, outPath, spec); !errors.Is(err, ErrCoordinatorChaosKill) {
		t.Fatalf("Sort returned %v, want ErrCoordinatorChaosKill", err)
	}
	spec.Chaos = nil
	if _, err := Resume(ctx, inPath, outPath, spec); err != nil {
		t.Fatalf("resume: %v", err)
	}
	checkOutput(t, outPath, want)

	entries, err := pdm.LoadJournal(jpath)
	if err != nil {
		t.Fatalf("load journal: %v", err)
	}
	var start, pivots, wdone, resume, reseed, done bool
	for _, e := range entries {
		var ev journalEvent
		if err := json.Unmarshal(e.Payload, &ev); err != nil {
			t.Fatalf("journal entry %d: %v", e.Seq, err)
		}
		switch ev.Event {
		case "start":
			start = ev.JobID != 0 && len(ev.Addrs) == 4 && ev.Records == 20000
		case "pivots":
			pivots = len(ev.Pivots) > 0 && ev.Digest != 0
		case "wdone":
			wdone = true
		case "resume":
			resume = true
		case "reseed":
			reseed = len(ev.Assign) > 0
		case "done":
			done = true
		}
	}
	if !start || !pivots || !wdone || !resume || !reseed || !done {
		t.Fatalf("journal incomplete: start=%v pivots=%v wdone=%v resume=%v reseed=%v done=%v",
			start, pivots, wdone, resume, reseed, done)
	}

	// A second resume against the completed journal is a cheap no-op: the
	// done record plus the intact output short-circuits the whole pipeline.
	stats, err := Resume(ctx, inPath, outPath, spec)
	if err != nil {
		t.Fatalf("idempotent resume: %v", err)
	}
	if stats.Recovery == nil || stats.Recovery.ResumePhase != "done" {
		t.Fatalf("second resume re-ran the job: %+v", stats.Recovery)
	}
}

// TestResumeEmptyJournal: a journal that never recorded a start (the
// coordinator died before committing anything) must fail with the typed
// ErrNoJournaledStart so callers fall back to a fresh sort.
func TestResumeEmptyJournal(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "cluster.journal")
	if _, err := pdm.CreateJournal(jpath); err != nil {
		t.Fatal(err)
	}
	inPath, _ := makeInput(t, 100, 3, false)
	_, err := Resume(context.Background(), inPath, filepath.Join(t.TempDir(), "out.dat"),
		SortSpec{JournalPath: jpath})
	if !errors.Is(err, ErrNoJournaledStart) {
		t.Fatalf("resume of a startless journal returned %v, want ErrNoJournaledStart", err)
	}
}

// TestDedupEpochBounded: a rescatter announcement must eagerly drop every
// dedup entry belonging to a superseded epoch — under membership churn the
// per-stream map would otherwise only ever grow.
func TestDedupEpochBounded(t *testing.T) {
	w := NewWorker(WorkerConfig{ScratchDir: t.TempDir()})
	s, err := newSession(w, &msgHello{JobID: 1, Worker: 0, Workers: 4, S: 8, BlockRecs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.teardown()
	s.ctx = context.Background()
	s.initEpoch()

	data := make([]byte, 4*record.EncodedSize)
	for src := uint32(0); src < 3; src++ {
		if _, err := s.storeBlock(&msgBlock{Phase: 1, Src: src, Bucket: 0, Seq: 0, Data: data}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.last) != 3 {
		t.Fatalf("dedup holds %d entries, want 3", len(s.last))
	}
	if err := s.resetEpoch(&msgRescatter{Epoch: 2}); err != nil {
		t.Fatal(err)
	}
	if len(s.last) != 0 {
		t.Fatalf("dedup still holds %d stale-epoch entries after the epoch bump", len(s.last))
	}
	// Entries stored under the new epoch survive the *same* epoch's replayed
	// announcement (idempotent rescatter) but not a later one.
	if _, err := s.storeBlock(&msgBlock{Phase: 1, Src: 0, Bucket: 0, Seq: 0, Data: data}, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.resetEpoch(&msgRescatter{Epoch: 2}); err != nil {
		t.Fatal(err)
	}
	if len(s.last) != 1 {
		t.Fatalf("same-epoch entry dropped: dedup holds %d entries, want 1", len(s.last))
	}
	if err := s.resetEpoch(&msgRescatter{Epoch: 3}); err != nil {
		t.Fatal(err)
	}
	if len(s.last) != 0 {
		t.Fatalf("epoch-2 entry survived the epoch-3 bump: %d entries", len(s.last))
	}
}
