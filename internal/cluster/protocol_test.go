package cluster

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"balancesort/internal/obs"
)

// roundTrip encodes m, decodes into fresh, and compares. Every message type
// must survive its own codec bit-exactly and reject trailing garbage.
func roundTrip(t *testing.T, name string, m interface {
	encode() []byte
}, fresh interface {
	decode([]byte) error
}) {
	t.Helper()
	p := m.encode()
	if err := fresh.decode(p); err != nil {
		t.Fatalf("%s: decode: %v", name, err)
	}
	// The decoded message must re-encode to the same bytes.
	re, ok := fresh.(interface{ encode() []byte })
	if !ok {
		t.Fatalf("%s: no encode on decoded value", name)
	}
	if !bytes.Equal(re.encode(), p) {
		t.Fatalf("%s: re-encode differs", name)
	}
	if !reflect.DeepEqual(normalize(m), normalize(fresh)) {
		t.Fatalf("%s: round trip mutated the message:\n  sent %+v\n  got  %+v", name, m, fresh)
	}
	if err := fresh.decode(append(p, 0)); err == nil {
		t.Fatalf("%s: trailing byte went undetected", name)
	}
	if len(p) > 0 {
		if err := fresh.decode(p[:len(p)-1]); err == nil {
			t.Fatalf("%s: truncated payload went undetected", name)
		}
	}
}

// normalize flattens nil-vs-empty slice differences before DeepEqual.
func normalize(v any) string {
	re := v.(interface{ encode() []byte })
	return string(re.encode())
}

func TestMessageRoundTrips(t *testing.T) {
	roundTrip(t, "hello", &msgHello{
		Version: protocolVersion, JobID: 0xDEADBEEF, Worker: 1, Workers: 4,
		S: 16, BlockRecs: 2048, Peers: []string{"127.0.0.1:1", "127.0.0.1:2", "", "host:99"},
	}, &msgHello{})
	roundTrip(t, "count", &msgCount{Count: 1 << 40}, &msgCount{})
	bins := make([]uint64, histBins)
	for i := range bins {
		bins[i] = uint64(i * i)
	}
	roundTrip(t, "histogram", &msgHistogram{Bins: bins}, &msgHistogram{})
	roundTrip(t, "pivots", &msgPivots{Pivots: []uint64{1, 99, ^uint64(0)}}, &msgPivots{})
	roundTrip(t, "counts", &msgCounts{PerBucket: []uint64{0, 7, 1 << 33}}, &msgCounts{})
	roundTrip(t, "plan", &msgPlan{
		Dests:            [][]uint32{{0, 1, 2}, {}, {3}},
		ExpectRecvBlocks: 12,
		Owners:           []uint32{0, 0, 1},
		ExpectGatherRecs: 9999,
	}, &msgPlan{})
	roundTrip(t, "phasedone", &msgPhaseDone{Phase: 2, BlocksSent: 5, BlocksRecv: 6, RecsRecv: 7}, &msgPhaseDone{})
	roundTrip(t, "peerhello", &msgPeerHello{JobID: 42, Src: 3}, &msgPeerHello{})
	roundTrip(t, "block", &msgBlock{Phase: 1, Src: 2, Bucket: 3, Seq: 4, Data: make([]byte, 64)}, &msgBlock{})
	roundTrip(t, "blockack", &msgBlockAck{Phase: 1, Bucket: 3, Seq: 4}, &msgBlockAck{})
	roundTrip(t, "error", &msgError{Code: ecWorkerLost, Worker: 2, Addr: "h:1", Text: "gone"}, &msgError{})
	roundTrip(t, "trace", &msgTrace{
		EpochNanos: 0x1122334455667788,
		Spans: []obs.Span{
			{Layer: "cluster", Name: "exchange", ID: 3, Start: 5 * time.Millisecond, Dur: time.Millisecond,
				Attrs: []obs.Attr{{Key: "blocks", Val: 12}, {Key: "neg", Val: -7}}},
			{Layer: "sort", Name: "base-case", Start: time.Microsecond, Dur: time.Microsecond},
		},
	}, &msgTrace{})
	roundTrip(t, "trace-empty", &msgTrace{EpochNanos: 1}, &msgTrace{})
	// Protocol v5: extended span encoding with causality and flow fields.
	roundTrip(t, "trace-ext", &msgTrace{
		EpochNanos: 0x1122334455667788,
		Ext:        true,
		Spans: []obs.Span{
			{Layer: "cluster", Name: "exchange", ID: 3, Start: 5 * time.Millisecond, Dur: time.Millisecond,
				SpanID: 7, Parent: 2,
				Attrs: []obs.Attr{{Key: "net.bytes_out", Val: 4096}}},
			{Layer: "cluster", Name: "flow-plan", ID: 1, Start: time.Microsecond,
				SpanID: 9, Flow: 0xDEADBEEFCAFE, FlowOut: true},
		},
	}, &msgTrace{})
	// Protocol v3 messages.
	roundTrip(t, "peerhello-epoch", &msgPeerHello{JobID: 42, Src: 3, Epoch: 2}, &msgPeerHello{})
	roundTrip(t, "version", &msgVersion{Version: protocolVersion}, &msgVersion{})
	roundTrip(t, "monhello", &msgMonHello{JobID: 0xFEEDFACE}, &msgMonHello{})
	roundTrip(t, "ping", &msgPing{Seq: 1 << 50}, &msgPing{})
	roundTrip(t, "crash", &msgCrash{Mode: crashHang}, &msgCrash{})
	roundTrip(t, "peerlost", &msgPeerLost{Worker: 2, Addr: "h:9", Text: "conn reset"}, &msgPeerLost{})
	roundTrip(t, "rescatter", &msgRescatter{Epoch: 1, Active: []uint32{0, 2, 3}}, &msgRescatter{})
	roundTrip(t, "rescatterdone", &msgRescatterDone{Epoch: 1, Total: 1 << 33}, &msgRescatterDone{})
	roundTrip(t, "rescatterack", &msgRescatterAck{Epoch: 1, ShardRecs: 77}, &msgRescatterAck{})
}

func TestPeerHelloEpochZeroIsV2Compatible(t *testing.T) {
	// Epoch 0 must encode to the exact v2 wire format (no epoch field), so
	// a v2 worker can parse a v3 peer's first-epoch handshake and vice
	// versa; a nonzero epoch extends the payload.
	v2 := (&msgPeerHello{JobID: 7, Src: 1}).encode()
	var m msgPeerHello
	if err := m.decode(v2); err != nil {
		t.Fatalf("decode v2 peer hello: %v", err)
	}
	if m.Epoch != 0 || m.JobID != 7 || m.Src != 1 {
		t.Fatalf("v2 peer hello decoded as %+v", m)
	}
	withEpoch := (&msgPeerHello{JobID: 7, Src: 1, Epoch: 3}).encode()
	if len(withEpoch) != len(v2)+4 {
		t.Fatalf("epoch field is %d bytes, want 4", len(withEpoch)-len(v2))
	}
}

func TestVersionDecodeEmptyMeansV2(t *testing.T) {
	// A v2 worker acks Hello with an empty payload; the coordinator must
	// read that as the minimum protocol version.
	var m msgVersion
	if err := m.decode(nil); err != nil {
		t.Fatalf("decode empty version: %v", err)
	}
	if m.Version != minProtocolVersion {
		t.Fatalf("empty version payload decoded as %d, want %d", m.Version, minProtocolVersion)
	}
}

func TestBlockRejectsPartialRecords(t *testing.T) {
	m := msgBlock{Phase: 1, Data: make([]byte, 17)} // not a whole record
	if err := (&msgBlock{}).decode(m.encode()); err == nil {
		t.Fatal("17-byte block payload went undetected")
	}
}

func TestBucketOf(t *testing.T) {
	pivots := []uint64{10, 20, 20, 30} // repeated pivot: empty bucket is legal
	linear := func(key uint64) int {
		n := 0
		for _, p := range pivots {
			if p <= key {
				n++
			}
		}
		return n
	}
	for _, key := range []uint64{0, 9, 10, 11, 19, 20, 21, 29, 30, 31, ^uint64(0)} {
		if got, want := bucketOf(key, pivots), linear(key); got != want {
			t.Fatalf("bucketOf(%d) = %d, want %d", key, got, want)
		}
	}
	if got := bucketOf(5, nil); got != 0 {
		t.Fatalf("bucketOf with no pivots = %d, want 0", got)
	}
}

func TestPickPivots(t *testing.T) {
	bins := make([]uint64, histBins)
	var n uint64
	for i := range bins {
		bins[i] = uint64(i % 5)
		n += bins[i]
	}
	for _, s := range []int{1, 2, 7, 64} {
		piv := pickPivots(bins, n, s)
		if len(piv) != s-1 {
			t.Fatalf("S=%d: %d pivots", s, len(piv))
		}
		for i := 1; i < len(piv); i++ {
			if piv[i] < piv[i-1] {
				t.Fatalf("S=%d: pivots not nondecreasing at %d", s, i)
			}
		}
	}
	// Empty input: every pivot must still be defined.
	piv := pickPivots(make([]uint64, histBins), 0, 8)
	if len(piv) != 7 {
		t.Fatalf("empty input: %d pivots", len(piv))
	}
}

func TestAssignOwners(t *testing.T) {
	totals := []uint64{5, 5, 5, 5, 100, 5, 5, 5}
	owners := assignOwners(totals, 4)
	if len(owners) != len(totals) {
		t.Fatalf("%d owners for %d buckets", len(owners), len(totals))
	}
	for b := 1; b < len(owners); b++ {
		if owners[b] < owners[b-1] {
			t.Fatalf("owners not contiguous ascending at bucket %d", b)
		}
	}
	if owners[0] != 0 {
		t.Fatalf("first bucket owned by %d", owners[0])
	}
	if int(owners[len(owners)-1]) > 3 {
		t.Fatalf("owner out of range: %d", owners[len(owners)-1])
	}
}
