package cluster

import (
	"context"
	"math/rand/v2"
	"net"
	"time"
)

// DialConfig tunes how cluster links are established and how patient block
// delivery is, mirroring the retry/backoff/fail-fast discipline of the
// diskio engine: transient failures are retried with exponential backoff,
// and a peer that exhausts the whole budget is declared lost with a typed
// *WorkerLostError rather than hung on.
type DialConfig struct {
	// Attempts is how many times a dial is tried before the peer is
	// declared lost. Default 6.
	Attempts int
	// Backoff is the first retry's delay; it doubles per attempt. Default
	// 25ms.
	Backoff time.Duration
	// MaxBackoff caps the per-attempt delay. Default 1s.
	MaxBackoff time.Duration
	// IOTimeout bounds one block's write-plus-ack round trip (and control
	// handshakes); a peer silent for longer counts as a connection failure
	// and triggers the redial path. Default 30s.
	IOTimeout time.Duration
}

func (d DialConfig) withDefaults() DialConfig {
	if d.Attempts <= 0 {
		d.Attempts = 6
	}
	if d.Backoff <= 0 {
		d.Backoff = 25 * time.Millisecond
	}
	if d.MaxBackoff <= 0 {
		d.MaxBackoff = time.Second
	}
	if d.IOTimeout <= 0 {
		d.IOTimeout = 30 * time.Second
	}
	return d
}

// dial connects to addr with the configured retry/backoff budget. On
// exhaustion it returns a *WorkerLostError naming the peer.
//
// The per-attempt delay is exponential but capped at MaxBackoff and
// jittered to 50-100% of the nominal value: when a restarted coordinator
// comes back and every parked worker redials at once, full synchronized
// backoff would have the whole fleet sleeping through the resume window in
// lockstep. Cancellation is honored before the first attempt too, so a
// caller that is already dead never dials at all.
func (d DialConfig) dial(ctx context.Context, worker int, addr string) (net.Conn, error) {
	d = d.withDefaults()
	backoff := d.Backoff
	var lastErr error
	for attempt := 0; attempt < d.Attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if attempt > 0 {
			if err := sleepCtx(ctx, jitter(backoff)); err != nil {
				return nil, err
			}
			backoff *= 2
			if backoff > d.MaxBackoff {
				backoff = d.MaxBackoff
			}
		}
		var nd net.Dialer
		nd.Timeout = d.IOTimeout
		conn, err := nd.DialContext(ctx, "tcp", addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, &WorkerLostError{Worker: worker, Addr: addr, Err: lastErr}
}

// jitter maps t to a uniform value in [t/2, t], desynchronizing retry
// storms without ever shrinking the delay below half its nominal budget.
func jitter(t time.Duration) time.Duration {
	if t <= 1 {
		return t
	}
	return t/2 + time.Duration(rand.Int64N(int64(t/2)+1))
}

// sleepCtx waits for t or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, t time.Duration) error {
	timer := time.NewTimer(t)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// deadlineConn applies cfg.IOTimeout as a fresh read+write deadline; a zero
// timeout clears deadlines.
func setOpDeadline(conn net.Conn, cfg DialConfig) {
	cfg = cfg.withDefaults()
	_ = conn.SetDeadline(time.Now().Add(cfg.IOTimeout))
}

// setWriteDeadline bounds only the write side. Send paths on connections
// whose reads belong to a dedicated reader goroutine must use this: a full
// SetDeadline would arm a read deadline under a reader that is already
// blocked (it clears deadlines only before each read), turning a quiet
// 30-second stretch into a spurious connection loss.
func setWriteDeadline(conn net.Conn, cfg DialConfig) {
	cfg = cfg.withDefaults()
	_ = conn.SetWriteDeadline(time.Now().Add(cfg.IOTimeout))
}

// clearDeadline removes any pending deadline (used between phases, where a
// worker may legitimately sit idle while its peers catch up).
func clearDeadline(conn net.Conn) {
	_ = conn.SetDeadline(time.Time{})
}
