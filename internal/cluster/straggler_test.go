package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"balancesort/internal/obs"
	"balancesort/internal/pdm"
	"balancesort/internal/record"
)

func TestStragglerErrorIdentity(t *testing.T) {
	inner := errors.New("no barrier completion after 300ms")
	err := fmt.Errorf("local-sort: %w", &StragglerError{
		Worker: 2, Addr: "10.0.0.2:7000", Phase: "local-sort",
		Budget: 300 * time.Millisecond, Err: inner,
	})

	var slow *StragglerError
	if !errors.As(err, &slow) {
		t.Fatal("errors.As failed through a wrap layer")
	}
	if slow.Worker != 2 || slow.Addr != "10.0.0.2:7000" || slow.Phase != "local-sort" {
		t.Fatalf("recovered %+v", slow)
	}
	if slow.Budget != 300*time.Millisecond {
		t.Fatalf("budget %v survived as %v", 300*time.Millisecond, slow.Budget)
	}
	if !errors.Is(err, inner) {
		t.Fatal("errors.Is failed to reach the detector's observation through Unwrap")
	}
	// A straggler is emphatically not a lost worker: the two types must
	// stay distinguishable under errors.As.
	var lost *WorkerLostError
	if errors.As(err, &lost) {
		t.Fatal("StragglerError also matched *WorkerLostError")
	}
}

// TestStragglerErrorSurvivesWire: a StragglerError flattened to a msgError
// on one side of the TCP connection must reconstruct as the same typed
// error — phase and budget included — on the other.
func TestStragglerErrorSurvivesWire(t *testing.T) {
	orig := &StragglerError{
		Worker: 1, Addr: "peer:9", Phase: "exchange",
		Budget: 750 * time.Millisecond, Err: errors.New("progress flat for 3 ticks"),
	}
	wrapped := fmt.Errorf("job: %w", orig)

	m := errorToWire(0, wrapped)
	if m.Code != ecStraggler {
		t.Fatalf("wire code %d, want ecStraggler", m.Code)
	}
	var back msgError
	if err := back.decode(m.encode()); err != nil {
		t.Fatal(err)
	}
	rebuilt := wireToError(&back)

	var slow *StragglerError
	if !errors.As(rebuilt, &slow) {
		t.Fatalf("rebuilt error %T is not a *StragglerError", rebuilt)
	}
	if slow.Worker != 1 || slow.Addr != "peer:9" || slow.Phase != "exchange" {
		t.Fatalf("rebuilt %+v", slow)
	}
	if slow.Budget != 750*time.Millisecond {
		t.Fatalf("budget lost on the wire: %v", slow.Budget)
	}
}

// TestHedgeBlockDedup drives the phase-3 hedge stream through storeBlock
// directly: a retransmitted hedge block must be a stored-nothing no-op
// (hedged output would otherwise gain duplicate records), and a hedge
// stream arriving with no armed hedge — a zombie sender from an abandoned
// hedge — must be dropped as stale.
func TestHedgeBlockDedup(t *testing.T) {
	w := NewWorker(WorkerConfig{ScratchDir: t.TempDir()})
	s, err := newSession(w, &msgHello{JobID: 1, Worker: 0, Workers: 4, S: 8, BlockRecs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.teardown()
	data := make([]byte, 4*record.EncodedSize)

	// No hedge armed: the stream is debris from an epoch this worker never
	// agreed to cover, and must be rejected like a stale-epoch block.
	stale, err := s.storeBlock(&msgBlock{Phase: 3, Src: 2, Bucket: 0, Seq: 0, Data: data}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !stale {
		t.Fatal("phase-3 block accepted with no armed hedge")
	}

	f, err := os.Create(filepath.Join(t.TempDir(), "hedge-in.dat"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s.mu.Lock()
	s.hedge = &hedgeState{victim: 2, epoch: 0, want: 8, file: f}
	s.mu.Unlock()

	store := func(seq uint32) bool {
		t.Helper()
		stale, err := s.storeBlock(&msgBlock{Phase: 3, Src: 2, Bucket: 0, Seq: seq, Data: data}, 0)
		if err != nil {
			t.Fatal(err)
		}
		return stale
	}
	if store(0) {
		t.Fatal("armed hedge rejected its first block")
	}
	// Retransmission after a lost ack: same (phase, src, bucket, seq).
	if store(0) {
		t.Fatal("retransmission misreported as stale")
	}
	if store(1) {
		t.Fatal("armed hedge rejected its second block")
	}
	s.mu.Lock()
	recs, size := s.hedge.recs, s.hedge.size
	s.mu.Unlock()
	if recs != 8 {
		t.Fatalf("hedge holds %d records after a retransmit, want 8 (dedup failed)", recs)
	}
	if size != int64(2*len(data)) {
		t.Fatalf("hedge file grew to %d bytes, want %d", size, 2*len(data))
	}
}

// TestScaleShardBudget: a derived local-sort deadline must stretch with
// the worker's planned shard volume relative to the median finisher's —
// under bucket skew the biggest shard legitimately sorts slower, and
// demoting it would only re-spread the skew. When every finisher's shard
// was empty (extreme duplicate skew), the derived budget has no baseline
// and must issue no verdict for a worker that actually holds data.
func TestScaleShardBudget(t *testing.T) {
	c := &coordinator{expectGather: []uint64{100, 100, 1000, 0}}
	hard := 200 * time.Millisecond
	finished := []uint64{100, 100}

	if got := c.scaleShardBudget("local-sort", 0, finished, hard); got != hard {
		t.Fatalf("median-sized shard scaled: %v", got)
	}
	if got := c.scaleShardBudget("local-sort", 2, finished, hard); got != 10*hard {
		t.Fatalf("10x shard budget = %v, want %v", got, 10*hard)
	}
	if got := c.scaleShardBudget("drain", 2, finished, hard); got != 10*hard {
		t.Fatalf("drain must scale like local-sort, got %v", got)
	}
	if got := c.scaleShardBudget("exchange", 2, finished, hard); got != hard {
		t.Fatalf("exchange scaled by shard size: %v", got)
	}
	// Every finisher's shard empty: no verdict for a loaded worker, but an
	// equally-empty worker keeps the plain deadline.
	empty := []uint64{0, 0}
	if got := c.scaleShardBudget("local-sort", 2, empty, hard); got != 0 {
		t.Fatalf("no-baseline budget = %v, want 0 (no verdict)", got)
	}
	if got := c.scaleShardBudget("local-sort", 3, empty, hard); got != hard {
		t.Fatalf("empty-shard worker budget = %v, want %v", got, hard)
	}
	if got := c.scaleShardBudget("local-sort", 2, nil, hard); got != hard {
		t.Fatalf("no finishers must leave the budget alone, got %v", got)
	}
}

// TestStallChaosMatrix slows one of four workers 20000x at the start of
// every coordinator phase. The worker stays alive and keeps ponging — only
// the progress-rate detector can see it. Each run must demote the
// straggler past its hard budget, fail over, record the demotion, and
// still produce byte-identical sorted output. The factor is huge because
// the stall is multiplicative on real work time: drain moves a worker's
// shard in a handful of ~100µs chunks, and the stall must still dwarf
// the budget on a fast machine — and the budget itself is a full second
// so a loaded CI machine cannot push a healthy worker past it in the
// post-failover epoch.
func TestStallChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("stall chaos matrix is slow under -short")
	}
	traceDir := os.Getenv("CHAOS_TRACE")
	for i, phase := range CoordinatorPhases {
		victim := i % 4
		t.Run(phase, func(t *testing.T) {
			var tr *obs.Tracer
			if traceDir != "" {
				tr = obs.New(0, nil)
				// Deferred so the trace survives a t.Fatal inside the run:
				// CI uploads these as the post-mortem for a failed matrix.
				defer func() {
					f, err := os.Create(filepath.Join(traceDir, "chaos-stall-"+phase+".json"))
					if err != nil {
						t.Errorf("chaos trace: %v", err)
						return
					}
					defer f.Close()
					if err := obs.WriteChromeTrace(f, tr.Spans()); err != nil {
						t.Errorf("chaos trace: %v", err)
					}
				}()
			}
			addrs := startWorkers(t, 4, fastWorker)
			stats := runClusterSort(t, addrs, 20000, int64(200+i), false, SortSpec{
				BlockRecs: 128,
				Dial:      fastDial,
				Heartbeat: fastHeartbeat(),
				Stall:     &StallSpec{Phase: phase, Worker: victim, Factor: 20001},
				Straggler: StragglerConfig{Enabled: true, HardBudget: time.Second},
				Trace:     tr,
			})
			checkRecovery(t, stats, 4, victim)
			checkBalanceBound(t, stats.X)
			found := false
			for _, w := range stats.Recovery.Stragglers {
				if w == victim {
					found = true
				}
			}
			if !found {
				t.Fatalf("victim %d missing from Stragglers %v (demotion not attributed to the detector)",
					victim, stats.Recovery.Stragglers)
			}
		})
	}
}

// TestStallHedgeWins stalls a worker's local sort 5000x with hedging on.
// The soft budget fires a speculative re-run of the victim's shard on the
// fastest idle peer, the hedge finishes first, the victim's sort is
// cancelled, and the job completes with no failover at all — and still
// byte-identical output.
func TestStallHedgeWins(t *testing.T) {
	if testing.Short() {
		t.Skip("hedge race is slow under -short")
	}
	const victim = 1
	addrs := startWorkers(t, 4, fastWorker)
	jpath := filepath.Join(t.TempDir(), "cluster.journal")
	stats := runClusterSort(t, addrs, 20000, 83, false, SortSpec{
		BlockRecs: 128,
		Dial:      fastDial,
		Heartbeat: fastHeartbeat(),
		Stall:     &StallSpec{Phase: "local-sort", Worker: victim, Factor: 5000},
		Straggler: StragglerConfig{
			Enabled:    true,
			Hedge:      true,
			SoftBudget: 150 * time.Millisecond,
			// A hard budget the race can never reach: a hedge win must
			// rescue the job on its own, not lean on demotion.
			HardBudget: time.Minute,
		},
		JournalPath: jpath,
	})
	rec := stats.Recovery
	if rec == nil {
		t.Fatal("hedge win left no recovery record")
	}
	if rec.HedgeWins != 1 {
		t.Fatalf("HedgeWins = %d, want 1 (%+v)", rec.HedgeWins, rec)
	}
	if len(rec.LostWorkers) != 0 || rec.Failovers != 0 {
		t.Fatalf("hedge win escalated to failover: %+v", rec)
	}

	entries, err := pdm.LoadJournal(jpath)
	if err != nil {
		t.Fatalf("load journal: %v", err)
	}
	sawHedge := false
	for _, e := range entries {
		var ev journalEvent
		if err := json.Unmarshal(e.Payload, &ev); err != nil {
			t.Fatalf("journal entry %d: %v", e.Seq, err)
		}
		if ev.Event == "hedge" && ev.Worker == victim {
			sawHedge = true
		}
	}
	if !sawHedge {
		t.Fatal("journal never recorded the hedge win")
	}
}

// TestStallHedgeFallbackDemote: hedging only covers the local sort. A
// stall in any other phase under a hedge-enabled config must fall back to
// the demotion path — the hedge machinery must not suppress it.
func TestStallHedgeFallbackDemote(t *testing.T) {
	if testing.Short() {
		t.Skip("stall demotion is slow under -short")
	}
	const victim = 3
	addrs := startWorkers(t, 4, fastWorker)
	stats := runClusterSort(t, addrs, 20000, 89, false, SortSpec{
		BlockRecs: 128,
		Dial:      fastDial,
		Heartbeat: fastHeartbeat(),
		Stall:     &StallSpec{Phase: "exchange", Worker: victim, Factor: 2001},
		Straggler: StragglerConfig{
			Enabled:    true,
			Hedge:      true,
			SoftBudget: 150 * time.Millisecond,
			HardBudget: time.Second,
		},
	})
	checkRecovery(t, stats, 4, victim)
	if stats.Recovery.HedgeWins != 0 {
		t.Fatalf("a hedge claimed a win outside local-sort: %+v", stats.Recovery)
	}
	found := false
	for _, w := range stats.Recovery.Stragglers {
		if w == victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("victim %d missing from Stragglers %v", victim, stats.Recovery.Stragglers)
	}
}
