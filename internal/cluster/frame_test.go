package cluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		[]byte("x"),
		bytes.Repeat([]byte{0xAB}, 1000),
		bytes.Repeat([]byte{0}, MaxFramePayload),
	}
	for _, p := range payloads {
		var buf bytes.Buffer
		if err := writeFrame(&buf, mRecords, p); err != nil {
			t.Fatalf("writeFrame(%d bytes): %v", len(p), err)
		}
		typ, got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("readFrame(%d bytes): %v", len(p), err)
		}
		if typ != mRecords || !bytes.Equal(got, p) {
			t.Fatalf("round trip of %d bytes: type %d, %d bytes back", len(p), typ, len(got))
		}
	}
}

func TestFrameWriteTooLarge(t *testing.T) {
	var buf bytes.Buffer
	err := writeFrame(&buf, mRecords, make([]byte, MaxFramePayload+1))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized write: %v, want ErrFrameTooLarge", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("oversized write still emitted %d bytes", buf.Len())
	}
}

// TestFrameHostileLength feeds the decoder a header claiming a payload far
// beyond the bound. It must reject before allocating or reading further —
// the reader only holds the 5 header bytes, so any attempt to consume the
// claimed payload would error differently.
func TestFrameHostileLength(t *testing.T) {
	for _, n := range []uint32{MaxFramePayload + 1, 1 << 30, ^uint32(0)} {
		hdr := make([]byte, 5)
		binary.LittleEndian.PutUint32(hdr, n)
		hdr[4] = mHello
		_, _, err := readFrame(bytes.NewReader(hdr))
		if !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("claimed %d bytes: %v, want ErrFrameTooLarge", n, err)
		}
	}
}

func TestFrameCorruption(t *testing.T) {
	frame := appendFrame(nil, mPivots, []byte("some payload bytes"))
	for i := 4; i < len(frame); i++ { // every byte except the length prefix
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x40
		_, _, err := readFrame(bytes.NewReader(bad))
		if err == nil {
			t.Fatalf("flipping byte %d went undetected", i)
		}
	}
}

func TestFrameTruncation(t *testing.T) {
	frame := appendFrame(nil, mCounts, bytes.Repeat([]byte{7}, 64))
	for n := 0; n < len(frame); n++ {
		_, _, err := readFrame(bytes.NewReader(frame[:n]))
		if err == nil {
			t.Fatalf("truncation to %d of %d bytes went undetected", n, len(frame))
		}
		if n >= 5 && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
			t.Fatalf("truncation to %d bytes: %v, want an EOF error", n, err)
		}
	}
}

// FuzzFrame holds the decoder to its contract on arbitrary bytes: never
// panic, never over-allocate on a hostile length prefix, and any frame it
// does accept must re-encode to bytes that decode to the same frame. The
// accepted payloads are also pushed through every message decoder, which
// must likewise survive hostile input without panicking.
func FuzzFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendFrame(nil, mHello, (&msgHello{Version: 1, Workers: 2, Peers: []string{"a", "b"}}).encode()))
	f.Add(appendFrame(nil, mBlock, (&msgBlock{Phase: 1, Bucket: 3, Data: make([]byte, 32)}).encode()))
	f.Add(appendFrame(nil, mError, (&msgError{Code: ecWorkerLost, Addr: "x", Text: "y"}).encode()))
	f.Add(appendFrame(nil, mRescatter, (&msgRescatter{Epoch: 2, Active: []uint32{0, 2}, Fresh: true, Peers: []string{"a", "b", "c"}}).encode()))
	f.Add(appendFrame(nil, mJoin, (&msgAttach{Version: 4, JobID: 7, Worker: 4, Workers: 5, S: 16, BlockRecs: 128, Epoch: 1, Peers: []string{"a", "b"}}).encode()))
	f.Add(appendFrame(nil, mResume, (&msgAttach{Version: 4, JobID: 7, Worker: 0, Workers: 4, S: 16, BlockRecs: 128, Epoch: 3}).encode()))
	f.Add(appendFrame(nil, mResumeState, (&msgResumeState{Version: 4, HaveShard: 1, Epoch: 3, ShardRecs: 5000}).encode()))
	trunc := appendFrame(nil, mPlan, []byte("truncate me"))
	f.Add(trunc[:len(trunc)-3])
	corrupt := appendFrame(nil, mPivots, []byte("corrupt me"))
	corrupt[7] ^= 0xFF
	f.Add(corrupt)
	huge := make([]byte, 5)
	binary.LittleEndian.PutUint32(huge, ^uint32(0))
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			typ, payload, err := readFrame(r)
			if err != nil {
				break
			}
			re := appendFrame(nil, typ, payload)
			typ2, p2, err2 := readFrame(bytes.NewReader(re))
			if err2 != nil || typ2 != typ || !bytes.Equal(p2, payload) {
				t.Fatalf("re-encoded frame did not round trip: %v", err2)
			}
			decodeAny(payload)
		}
	})
}

// decodeAny runs payload through every message decoder; values are
// discarded, only absence of panics matters.
func decodeAny(p []byte) {
	_ = (&msgHello{}).decode(p)
	_ = (&msgCount{}).decode(p)
	_ = (&msgHistogram{}).decode(p)
	_ = (&msgPivots{}).decode(p)
	_ = (&msgCounts{}).decode(p)
	_ = (&msgPlan{}).decode(p)
	_ = (&msgPhaseDone{}).decode(p)
	_ = (&msgPeerHello{}).decode(p)
	_ = (&msgBlock{}).decode(p)
	_ = (&msgBlockAck{}).decode(p)
	_ = (&msgError{}).decode(p)
	_ = (&msgRescatter{}).decode(p)
	_ = (&msgAttach{}).decode(p)
	_ = (&msgResumeState{}).decode(p)
}
