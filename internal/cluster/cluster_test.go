package cluster

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"balancesort/internal/record"
)

// startWorkers launches n in-process workers on loopback listeners and
// returns their addresses. Workers are torn down with the test.
func startWorkers(t testing.TB, n int, mutate func(i int, cfg *WorkerConfig)) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cfg := WorkerConfig{ScratchDir: t.TempDir()}
		if mutate != nil {
			mutate(i, &cfg)
		}
		w := NewWorker(cfg)
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = w.Serve(ctx, ln)
		}()
		t.Cleanup(func() {
			cancel()
			<-done
		})
		addrs[i] = ln.Addr().String()
	}
	return addrs
}

// makeInput writes n pseudo-random records (seeded, so reproducible) and
// returns the file path plus the expected sorted order.
func makeInput(t testing.TB, n int, seed int64, dupKeys bool) (string, []record.Record) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	recs := make([]record.Record, n)
	for i := range recs {
		key := rng.Uint64()
		if dupKeys {
			key %= 50 // heavy duplication exercises the (Key, Loc) tiebreak
		}
		recs[i] = record.Record{Key: key, Loc: uint64(i)}
	}
	path := filepath.Join(t.TempDir(), "in.dat")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := record.WriteAll(f, recs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	want := append([]record.Record(nil), recs...)
	sort.Slice(want, func(i, j int) bool { return want[i].Less(want[j]) })
	return path, want
}

func checkOutput(t testing.TB, outPath string, want []record.Record) {
	t.Helper()
	f, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := record.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("output holds %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

// checkBalanceBound asserts Invariant 2 on the received-block matrix: for
// every bucket b, no worker holds more than m_b + 1 of its blocks, where
// m_b is the ⌈H/2⌉-th smallest entry of row b.
func checkBalanceBound(t testing.TB, X [][]int) {
	t.Helper()
	for b, row := range X {
		sorted := append([]int(nil), row...)
		sort.Ints(sorted)
		h := len(sorted)
		mb := sorted[(h+1)/2-1]
		for w, x := range row {
			if x > mb+1 {
				t.Fatalf("bucket %d on worker %d: %d blocks exceeds m_b+1 = %d (row %v)", b, w, x, mb+1, row)
			}
		}
	}
}

func runClusterSort(t testing.TB, addrs []string, n int, seed int64, dupKeys bool, spec SortSpec) *SortStats {
	t.Helper()
	inPath, want := makeInput(t, n, seed, dupKeys)
	outPath := filepath.Join(t.TempDir(), "out.dat")
	spec.Workers = addrs
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	stats, err := Sort(ctx, inPath, outPath, spec)
	if err != nil {
		t.Fatalf("cluster sort over %d workers: %v", len(addrs), err)
	}
	checkOutput(t, outPath, want)
	return stats
}

// TestClusterSortParity: 2-, 4-, and 8-worker in-process clusters must sort
// to exactly the single-process order, and the exchange's received-block
// matrix must respect the balance bound.
func TestClusterSortParity(t *testing.T) {
	for _, w := range []int{2, 4, 8} {
		w := w
		t.Run(map[int]string{2: "w2", 4: "w4", 8: "w8"}[w], func(t *testing.T) {
			t.Parallel()
			addrs := startWorkers(t, w, nil)
			stats := runClusterSort(t, addrs, 40000, int64(w), false, SortSpec{BlockRecs: 256})
			if stats.Records != 40000 || stats.Workers != w {
				t.Fatalf("stats %+v", stats)
			}
			checkBalanceBound(t, stats.X)
			var recv int
			for _, r := range stats.RecvBlocks {
				recv += r
			}
			if recv != stats.ExchangeBlocks {
				t.Fatalf("received %d of %d exchange blocks", recv, stats.ExchangeBlocks)
			}
		})
	}
}

// TestClusterSortDuplicateKeys: with 50 distinct keys over 30k records the
// (Key, Loc) tiebreak is what makes the sorted arrangement unique; the
// cluster must reproduce it exactly.
func TestClusterSortDuplicateKeys(t *testing.T) {
	addrs := startWorkers(t, 4, nil)
	runClusterSort(t, addrs, 30000, 11, true, SortSpec{BlockRecs: 128})
}

func TestClusterSortTinyInputs(t *testing.T) {
	addrs := startWorkers(t, 3, nil)
	for _, n := range []int{0, 1, 2, 5, 100} {
		runClusterSort(t, addrs, n, int64(n)+77, false, SortSpec{})
	}
}

// TestClusterSortSurvivesConnectionDrop: every worker severs one peer
// connection mid-exchange; redial plus retransmit plus receiver-side dedup
// must still deliver the exact sorted output.
func TestClusterSortSurvivesConnectionDrop(t *testing.T) {
	addrs := startWorkers(t, 4, func(i int, cfg *WorkerConfig) {
		cfg.DropAfterBlocks = 3 + i
		cfg.Dial = DialConfig{Backoff: time.Millisecond}
	})
	stats := runClusterSort(t, addrs, 30000, 23, false, SortSpec{BlockRecs: 128})
	checkBalanceBound(t, stats.X)
}

// TestClusterSortWorkerLost: a worker address nobody answers must fail the
// job fast with a typed *WorkerLostError — not a hang, not a generic error.
func TestClusterSortWorkerLost(t *testing.T) {
	live := startWorkers(t, 1, nil)
	// A listener opened and immediately closed: connection refused forever.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	inPath, _ := makeInput(t, 1000, 3, false)
	outPath := filepath.Join(t.TempDir(), "out.dat")
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	_, err = Sort(ctx, inPath, outPath, SortSpec{
		Workers: []string{live[0], dead},
		Dial:    DialConfig{Attempts: 2, Backoff: time.Millisecond},
	})
	var lost *WorkerLostError
	if !errors.As(err, &lost) {
		t.Fatalf("got %v, want a *WorkerLostError", err)
	}
	if lost.Addr != dead {
		t.Fatalf("lost worker at %s, want %s", lost.Addr, dead)
	}
	if _, serr := os.Stat(outPath); serr == nil {
		t.Fatal("failed sort left an output file behind")
	}
}

// TestClusterSortContextCancel: a canceled context must abort the job
// promptly instead of hanging a barrier.
func TestClusterSortContextCancel(t *testing.T) {
	addrs := startWorkers(t, 2, nil)
	inPath, _ := makeInput(t, 20000, 5, false)
	outPath := filepath.Join(t.TempDir(), "out.dat")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan error, 1)
	go func() {
		_, err := Sort(ctx, inPath, outPath, SortSpec{Workers: addrs})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("canceled sort reported success")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled sort did not return")
	}
}
