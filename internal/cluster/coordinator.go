package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"balancesort/internal/balance"
	"balancesort/internal/obs"
	"balancesort/internal/pdm"
	"balancesort/internal/plan"
	"balancesort/internal/record"
)

// SortSpec parameterizes one coordinator-driven cluster sort.
type SortSpec struct {
	// Workers are the worker addresses to dial, in worker-ID order.
	Workers []string
	// Buckets is S, the number of key-range buckets the exchange
	// distributes into. Default 4·W (at least the paper's H', with slack
	// so the owner assignment can balance shard sizes).
	Buckets int
	// BlockRecs is the exchange block size in records. Default 2048.
	BlockRecs int
	// Dial tunes connection retry/backoff and per-op timeouts.
	Dial DialConfig
	// Heartbeat tunes the v3 failure detector.
	Heartbeat Heartbeat
	// Chaos, when non-nil, injects one fault: the named worker is killed
	// (or hung) the moment the coordinator enters the named phase. It
	// requires an all-v3 cluster; against v2 workers it is ignored.
	Chaos *ChaosSpec
	// Join, when non-nil, admits one extra worker mid-job: the moment the
	// coordinator enters the named phase it dials Addr, attaches it as
	// worker W via the v4 mJoin handshake — an *added* virtual disk, the
	// dual of failover's removed one — and reseeds the cluster under a new
	// epoch. It requires an all-v4 cluster; otherwise it is ignored.
	Join *JoinSpec
	// Straggler configures the progress-rate failure detector, the phase
	// deadline budgets, and the hedged shard-sort re-execution. The zero
	// value disables all three; see StragglerConfig.
	Straggler StragglerConfig
	// Stall, when non-nil, injects one slowdown: the named worker keeps
	// answering heartbeats but does every unit of work Factor times slower
	// from the moment the coordinator enters the named phase — the latency
	// dual of Chaos's kill/hang. It requires an all-v6 cluster; otherwise
	// it is ignored.
	Stall *StallSpec
	// JournalPath, when nonempty, appends the coordinator's recovery
	// state — per-worker partition extents after the scatter, each phase
	// entered, each loss, each completed failover — to a checksummed
	// journal (the pdm journal format), so an operator can reconstruct
	// what a degraded job did.
	JournalPath string
	// Trace, when non-nil, records a span per coordinator phase (see
	// CoordinatorPhases) and asks every worker — via the Hello trace flag —
	// to record its own phase spans and ship them back after the drain.
	// Worker spans are rebased onto this tracer's epoch and merged, so
	// Trace ends up holding the whole job's timeline: node 0 is the
	// coordinator, node w+1 is worker w.
	Trace *obs.Tracer
	// Sample, when positive, runs a background utilization sampler on the
	// coordinator at this interval: goroutines, heap, and inbound/outbound
	// network throughput land as counter tracks on Trace. Requires Trace.
	Sample time.Duration
}

// Heartbeat configures the coordinator's failure detector: a dedicated
// monitor connection per v3 worker carrying mPing/mPong. A worker whose
// pong is late Interval·(MissBudget+1) in a row is declared lost. Any pong
// — however late — resets the miss counter, so a flapping link does not
// trigger failover.
type Heartbeat struct {
	// Interval is the ping period and the per-ping pong deadline.
	// Default 500ms.
	Interval time.Duration
	// MissBudget is how many consecutive missed pongs are tolerated
	// before the worker is declared lost. Default 3.
	MissBudget int
	// Disable turns the ping monitors off. Failover still triggers on
	// connection errors and worker peer-loss reports.
	Disable bool
}

func (h Heartbeat) withDefaults() Heartbeat {
	if h.Interval <= 0 {
		h.Interval = 500 * time.Millisecond
	}
	if h.MissBudget <= 0 {
		h.MissBudget = 3
	}
	return h
}

// StragglerConfig tunes the v6 straggler mitigation: a progress-rate
// failure detector that runs alongside the liveness heartbeat. The
// heartbeat can only see a dead or hung worker; this detector sees a live
// worker that answers every ping yet makes no useful progress — a
// throttled disk, a paging host, a half-broken NIC — and bounds how long
// such a worker may hold a phase barrier hostage.
//
// Every barrier phase gets a deadline budget. An explicit HardBudget wins;
// otherwise the budget is derived once at least half the active workers
// have finished the phase, as BudgetFactor times the median finisher's
// phase time, floored by MinBudget and capped by BudgetFactor times the
// internal/plan cost model's predicted single-node wall-clock for the
// shard — so one fast outlier cannot condemn honest peers, and one slow
// cohort cannot stretch the budget without bound. A worker past its
// deadline earns a single grace extension if its progress counters (the
// v6 pong trailer) advanced recently; past that it is demoted to the
// failover path with a typed *StragglerError, exactly as if it had died.
//
// During the local-sort phase a gentler remedy runs first when Hedge is
// set: the straggler's shard sort is speculatively re-executed on the
// fastest finished peer (see SortSpec.Stall and the hedge messages), the
// first finisher wins, and the loser is cancelled — the job pays one
// redundant shard sort instead of a full failover epoch.
type StragglerConfig struct {
	// Enabled turns the detector (and budgets, and demotion) on.
	Enabled bool
	// Hedge allows speculative re-execution of a straggling local sort on
	// the fastest idle worker. Requires an all-v6 cluster; ignored
	// otherwise.
	Hedge bool
	// SoftBudget is the local-sort deadline past which the hedge fires.
	// Zero derives it like the hard budget.
	SoftBudget time.Duration
	// HardBudget is the per-phase deadline past which a straggler is
	// demoted. Zero derives it from the median finisher and the plan
	// model.
	HardBudget time.Duration
	// MinBudget floors every derived budget so short phases on small
	// inputs cannot demote a healthy worker over scheduling jitter.
	// Default 2s.
	MinBudget time.Duration
	// BudgetFactor scales the median finisher's phase time (and the plan
	// model's ceiling) into a budget. Default 4.
	BudgetFactor float64
}

func (s StragglerConfig) withDefaults() StragglerConfig {
	if s.MinBudget <= 0 {
		s.MinBudget = 2 * time.Second
	}
	if s.BudgetFactor <= 0 {
		s.BudgetFactor = 4
	}
	return s
}

// StallSpec is one injected slowdown for the chaos harness: the latency
// dual of ChaosSpec's kill and hang. The victim stays connected and keeps
// answering heartbeats — only the progress detector can see it.
type StallSpec struct {
	// Phase is the coordinator phase (a CoordinatorPhases name) at whose
	// start the stall fires.
	Phase string
	// Worker is the victim's ID.
	Worker int
	// Factor is the slowdown multiplier: every unit of work takes Factor
	// times as long. Values below 2 default to 10.
	Factor int
}

// ChaosSpec is one injected fault for the chaos harness.
type ChaosSpec struct {
	// Phase is the coordinator phase (a CoordinatorPhases name) at whose
	// start the fault fires.
	Phase string
	// Worker is the victim's ID.
	Worker int
	// Hang makes the victim go silent (stop ponging, stop progressing)
	// instead of dying; only the heartbeat detector can see it.
	Hang bool
	// Coordinator makes the coordinator itself the victim: entering the
	// phase returns ErrCoordinatorChaosKill without a word on any link, so
	// every connection dies abruptly (v4 workers park their shards) and
	// the job is left for Resume. Worker and Hang are ignored.
	Coordinator bool
}

// JoinSpec schedules one mid-job elastic join: when the coordinator enters
// Phase, the worker listening at Addr is added to the cluster.
type JoinSpec struct {
	Phase string
	Addr  string
}

// CoordinatorPhases are the span names the coordinator records under the
// "cluster" layer, in phase order.
var CoordinatorPhases = []string{
	"scatter", "histogram-merge", "plan", "exchange", "gather", "local-sort", "drain",
}

// WorkerPhases are the span names each worker records under the "cluster"
// layer, in phase order.
var WorkerPhases = []string{
	"scatter-recv", "histogram", "partition-counts", "exchange", "gather", "shard-sort", "drain",
}

// scatterChunk is the record count of one scatter/drain frame.
const scatterChunk = 4096

func (s SortSpec) withDefaults() (SortSpec, error) {
	w := len(s.Workers)
	if w < 1 {
		return s, fmt.Errorf("cluster: no workers")
	}
	if w > maxWorkers {
		return s, fmt.Errorf("cluster: %d workers exceeds the %d limit", w, maxWorkers)
	}
	if s.Buckets == 0 {
		s.Buckets = 4 * w
	}
	if s.Buckets < 1 {
		return s, fmt.Errorf("cluster: Buckets = %d", s.Buckets)
	}
	if s.BlockRecs == 0 {
		s.BlockRecs = 2048
	}
	if s.BlockRecs < 1 {
		return s, fmt.Errorf("cluster: BlockRecs = %d", s.BlockRecs)
	}
	if s.BlockRecs*record.EncodedSize+64 > MaxFramePayload {
		return s, fmt.Errorf("cluster: BlockRecs = %d does not fit a frame", s.BlockRecs)
	}
	s.Dial = s.Dial.withDefaults()
	s.Heartbeat = s.Heartbeat.withDefaults()
	if c := s.Chaos; c != nil {
		if !c.Coordinator && (c.Worker < 0 || c.Worker >= w) {
			return s, fmt.Errorf("cluster: chaos targets worker %d of %d", c.Worker, w)
		}
		if !isCoordinatorPhase(c.Phase) {
			return s, fmt.Errorf("cluster: chaos phase %q is not a coordinator phase", c.Phase)
		}
	}
	if j := s.Join; j != nil {
		if !isCoordinatorPhase(j.Phase) {
			return s, fmt.Errorf("cluster: join phase %q is not a coordinator phase", j.Phase)
		}
		if j.Addr == "" {
			return s, fmt.Errorf("cluster: join has no address")
		}
	}
	s.Straggler = s.Straggler.withDefaults()
	if st := s.Stall; st != nil {
		if st.Worker < 0 || st.Worker >= w {
			return s, fmt.Errorf("cluster: stall targets worker %d of %d", st.Worker, w)
		}
		if !isCoordinatorPhase(st.Phase) {
			return s, fmt.Errorf("cluster: stall phase %q is not a coordinator phase", st.Phase)
		}
		cp := *st
		if cp.Factor < 2 {
			cp.Factor = 10
		}
		s.Stall = &cp
	}
	return s, nil
}

func isCoordinatorPhase(name string) bool {
	for _, p := range CoordinatorPhases {
		if p == name {
			return true
		}
	}
	return false
}

// SortStats reports what a completed cluster sort moved and how evenly the
// balancer spread it.
type SortStats struct {
	Records int `json:"records"` // records sorted
	Workers int `json:"workers"` // cluster width W
	Buckets int `json:"buckets"` // S

	// ExchangeBlocks is the total block count of the placement exchange;
	// RecvBlocks[h] is how many of them worker h received (the column sums
	// of X). X[b][h] is the full histogram matrix — blocks of bucket b
	// placed on the h-th active worker — on which Invariants 1 and 2 hold.
	// After a failover X has one column per surviving worker (H' columns);
	// Recovery.ActiveWorkers maps columns back to worker IDs.
	ExchangeBlocks int     `json:"exchange_blocks"`
	RecvBlocks     []int   `json:"recv_blocks"`
	X              [][]int `json:"x,omitempty"`

	// GatherRecords[h] is the shard size worker h locally sorted.
	GatherRecords []int `json:"gather_records"`

	// Recovery is non-nil when at least one worker was lost and the job
	// completed anyway.
	Recovery *RecoveryStats `json:"recovery,omitempty"`
}

// RecoveryStats describes how a sort survived worker loss.
type RecoveryStats struct {
	// LostWorkers are the dead workers' IDs, in detection order;
	// LostPhases[i] is the coordinator phase during which loss i was
	// detected.
	LostWorkers []int    `json:"lost_workers"`
	LostPhases  []string `json:"lost_phases"`
	// Failovers counts recovery epochs (a single failover can absorb
	// several simultaneous losses).
	Failovers int `json:"failovers"`
	// RescatteredBlocks / RescatteredRecords measure the shard data
	// re-streamed to survivors.
	RescatteredBlocks  int `json:"rescattered_blocks"`
	RescatteredRecords int `json:"rescattered_records"`
	// FailoverWallNanos is the total wall time spent inside recovery
	// (detection to last survivor's ack), excluding the re-run phases.
	FailoverWallNanos int64 `json:"failover_wall_nanos"`
	// ActiveWorkers are the IDs that finished the job, ascending. They
	// are the columns of SortStats.X.
	ActiveWorkers []int `json:"active_workers"`
	// Joins counts mid-job elastic admissions; JoinedWorkers are the IDs
	// the joiners were assigned.
	Joins         int   `json:"joins,omitempty"`
	JoinedWorkers []int `json:"joined_workers,omitempty"`
	// Stragglers are workers demoted by the progress-rate detector for
	// falling past a phase deadline budget — a subset of LostWorkers.
	// HedgeWins counts speculative shard sorts that finished before the
	// straggler they covered; HedgeLosses, hedges the straggler outran.
	Stragglers  []int `json:"stragglers,omitempty"`
	HedgeWins   int   `json:"hedge_wins,omitempty"`
	HedgeLosses int   `json:"hedge_losses,omitempty"`
	// Resumed marks a job completed by a restarted coordinator replaying
	// its journal; ResumePhase is the last phase the journal had entered
	// before the crash.
	Resumed     bool   `json:"resumed,omitempty"`
	ResumePhase string `json:"resume_phase,omitempty"`
}

// errFailover is the internal sentinel that unwinds the current epoch's
// phase machinery back to the recovery loop. It never escapes Sort.
var errFailover = errors.New("cluster: worker lost, failover required")

// errRejoin unwinds the phase machinery to admit the configured mid-job
// joiner; like errFailover it never escapes Sort.
var errRejoin = errors.New("cluster: join admission required")

// ErrCoordinatorChaosKill is what Sort returns when ChaosSpec.Coordinator
// fired: the coordinator "crashed" at the phase boundary, its connections
// died without a goodbye, and the job is left for Resume to finish.
var ErrCoordinatorChaosKill = errors.New("cluster: chaos: coordinator killed")

// frameMsg is one frame (or terminal read error) from a link's reader.
type frameMsg struct {
	typ     byte
	payload []byte
	err     error
}

// link is one framed coordinator->worker control connection. A dedicated
// reader goroutine pushes inbound frames to ch so the coordinator can wait
// on a frame and a loss signal simultaneously; writes go straight out.
type link struct {
	id    int
	conn  net.Conn
	cfg   DialConfig
	meter *netMeter // nil-safe; counts the link's frames and wire bytes
	ch    chan frameMsg
	done  chan struct{} // closed when the job ends; unblocks a stuck reader
	wmu   sync.Mutex    // serializes writers: phase driver, watcher, hedge
}

func newLink(id int, conn net.Conn, cfg DialConfig, meter *netMeter) *link {
	l := &link{id: id, conn: conn, cfg: cfg, meter: meter, ch: make(chan frameMsg, 4), done: make(chan struct{})}
	go func() {
		br := bufio.NewReaderSize(conn, 1<<16)
		for {
			clearDeadline(conn) // liveness comes from heartbeats, not read deadlines
			typ, payload, err := readFrame(br)
			if err == nil {
				l.meter.in(len(payload))
			}
			fr := frameMsg{typ: typ, payload: payload, err: err}
			select {
			case l.ch <- fr:
			case <-l.done:
				return
			}
			if err != nil {
				return
			}
		}
	}()
	return l
}

func (l *link) send(typ byte, payload []byte) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	setWriteDeadline(l.conn, l.cfg)
	if err := writeFrame(l.conn, typ, payload); err != nil {
		return err
	}
	l.meter.out(len(payload))
	return nil
}

// coordinator is the per-job state of one cluster Sort call.
type coordinator struct {
	spec    SortSpec
	W, S    int
	n       int // total records
	in      *os.File
	inPath  string
	outPath string
	tr      *obs.Tracer
	net     *netMeter
	jobID   uint64

	links    []*link // grows only on join (under mu); dead entries keep a closed conn
	vers     []int   // negotiated protocol version per worker
	failover bool    // all workers v3: losses trigger recovery, not failure
	elastic  bool    // all workers v4: join and resume are available
	progress bool    // all workers v6: progress pongs, stall chaos, hedging
	joined   bool    // the configured Join already fired

	mu       sync.Mutex
	deadErr  map[int]error // worker -> first loss, as a *WorkerLostError
	handled  int           // losses already absorbed by a completed failover
	lastLost error
	lostSig  chan struct{} // cap 1: wakes phase waits when a loss lands
	phase    string

	monCtx    context.Context
	monCancel context.CancelFunc
	monWG     sync.WaitGroup

	jmu sync.Mutex
	jr  *pdm.Journal

	// Scatter bookkeeping: chunk t holds records [t·scatterChunk, …).
	chunks    int
	assign    []int32 // chunk -> worker, -1 while unassigned
	perWorker []uint64

	epoch      uint32
	chaosFired bool
	stallFired bool
	rec        RecoveryStats

	// Straggler-detector state. The pmu domain is touched by the phase
	// driver, the heartbeat monitors (progress pongs), and the per-phase
	// watcher goroutine; it is never held together with mu.
	pmu       sync.Mutex
	prog      map[int]progTrack // per-worker progress, fed by the monitors
	phaseT0   time.Time         // when the current phase was entered
	doneAt    map[int]time.Time // worker -> barrier completion, this phase
	focus     int               // sequential-phase fetch target, -1 outside drain
	focusT0   time.Time         // when the current fetch began
	watchStop chan struct{}     // retires the current phase watcher
	watchWG   sync.WaitGroup    // watchers and hedge supervisors
	predicted time.Duration     // plan-model ceiling for one phase budget

	// hctx outlives monCtx's availability conditions (heartbeats may be
	// disabled) and bounds the hedge supervisor's dial and reads.
	hctx    context.Context
	hcancel context.CancelFunc

	hmu    sync.Mutex
	hedged *hedgeRun // the job's (single) hedged shard sort, nil before

	owners []uint32 // bucket -> owning worker ID, current epoch's plan

	// First computed (or journal-replayed) pivot set and histogram digest.
	// Pivots are a pure function of the merged histogram, and the merged
	// histogram is a pure function of the whole input — the shards always
	// partition it — so every later epoch, whatever its membership, must
	// reproduce them exactly. Checked in histogramPhase as a determinism
	// assertion.
	wantPivots []uint64
	wantDigest uint64

	// Plan state of the (last) epoch, for the final stats.
	pivots       []uint64
	streamLen    int
	bl           *balance.Balancer
	expectRecv   []uint64
	expectGather []uint64
}

// progTrack is one worker's latest progress report, decoded from the v6
// pong trailer. at is when the (phase, units) pair last changed — the
// detector's notion of "recent progress".
type progTrack struct {
	have  bool
	phase uint8
	units uint64
	at    time.Time
}

// hedgeRun is the coordinator's side of one speculative shard-sort
// re-execution: the victim's gather set is re-collected and re-sorted on
// target over a dedicated connection, racing the victim's own sort. At
// most one hedge runs per job; the race is decided exactly once (covered
// xor lost), and a supervisor failure (failed) just abandons the hedge —
// the barrier keeps waiting for the victim.
type hedgeRun struct {
	victim, target int
	epoch          uint32
	won            chan struct{} // closed by the supervisor: mHedgeDone validated
	recs           uint64        // set before won closes

	// Under hmu from here down.
	conn    net.Conn
	br      *bufio.Reader
	covered bool // hedge won the race; the victim's shard drains from conn
	beaten  bool // victim's own mSortDone arrived first
	failed  bool // supervisor error: hedge abandoned, no verdict
}

// Sort externally sorts inPath into outPath across the cluster: it scatters
// the input over the workers, runs the histogram/pivot, balanced-exchange,
// gather, and local-sort phases, and drains the sorted shards in key order.
// The output is byte-identical to a single-process SortFile of the same
// input because both produce the unique nondecreasing arrangement of the
// record multiset under the strict (Key, Loc) order — which is also why a
// failover mid-job, which re-plans the placement from scratch over the
// survivors, cannot change a single output byte.
func Sort(ctx context.Context, inPath, outPath string, spec SortSpec) (*SortStats, error) {
	spec, err := spec.withDefaults()
	if err != nil {
		return nil, err
	}
	in, err := os.Open(inPath)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	st, err := in.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size()%record.EncodedSize != 0 {
		return nil, fmt.Errorf("cluster: %s is %d bytes, not a whole number of %d-byte records",
			inPath, st.Size(), record.EncodedSize)
	}
	c := &coordinator{
		spec:    spec,
		W:       len(spec.Workers),
		S:       spec.Buckets,
		n:       int(st.Size() / record.EncodedSize),
		in:      in,
		inPath:  inPath,
		outPath: outPath,
		tr:      spec.Trace,
		net:     &netMeter{},
		jobID:   uint64(time.Now().UnixNano()),
		deadErr: make(map[int]error),
		lostSig: make(chan struct{}, 1),
		prog:    make(map[int]progTrack),
	}
	c.hctx, c.hcancel = context.WithCancel(ctx)
	if spec.Straggler.Enabled {
		// The plan model's predicted single-node wall-clock for the whole
		// input is a generous per-phase ceiling for any one worker's 1/W
		// shard of it, whatever the phase.
		c.predicted = time.Duration(plan.PhaseBudgetSeconds(c.n, record.EncodedSize) * float64(time.Second))
	}
	if c.tr != nil {
		// Every coordinator span closes with its network and allocation
		// deltas; the optional sampler adds utilization counter tracks.
		c.tr.SetResourceSource(c.net.resourceSource(), "cluster")
		defer c.tr.SetResourceSource(nil)
		smp := obs.StartSampler(c.tr, spec.Sample,
			append(obs.RuntimeGauges(), c.net.gauges()...))
		defer smp.Stop()
	}
	defer func() {
		c.stopPhaseWatch()
		if c.monCancel != nil {
			c.monCancel()
			c.monWG.Wait()
		}
		c.hcancel()
		c.closeHedge()
		c.watchWG.Wait()
		for _, l := range c.links {
			if l != nil {
				l.conn.Close()
				close(l.done)
			}
		}
		if c.jr != nil {
			c.jr.Close()
		}
	}()
	return c.run(ctx)
}

func (c *coordinator) run(ctx context.Context) (*SortStats, error) {
	if c.spec.JournalPath != "" {
		jr, err := pdm.CreateJournal(c.spec.JournalPath)
		if err != nil {
			return nil, fmt.Errorf("cluster: recovery journal: %w", err)
		}
		c.jr = jr
	}
	c.journal(journalEvent{
		Event: "start", JobID: c.jobID, Addrs: c.spec.Workers,
		S: c.S, BlockRecs: c.spec.BlockRecs, Records: c.n,
	})
	if err := c.connect(ctx); err != nil {
		return nil, err
	}
	stop := c.watchCancel(ctx)
	defer stop()
	c.startMonitors(ctx)
	return c.finish(ctx, c.scatter(ctx))
}

// watchCancel tears the connections down when ctx is canceled so no phase
// can block past it; the returned func retires the watcher.
func (c *coordinator) watchCancel(ctx context.Context) func() {
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			c.mu.Lock()
			links := append([]*link(nil), c.links...)
			c.mu.Unlock()
			for _, l := range links {
				if l != nil {
					l.conn.Close()
				}
			}
		case <-watchDone:
		}
	}()
	return func() { close(watchDone) }
}

// finish drives the pipeline/recovery/join loop to completion and builds
// the final stats. run and resume both land here once their entry work —
// scatter for a fresh job, the journal-replay reseed for a resumed one —
// has produced its first verdict.
func (c *coordinator) finish(ctx context.Context, err error) (*SortStats, error) {
	for {
		if err == nil {
			err = c.pipeline(ctx)
		}
		if err == nil {
			break
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		switch {
		case errors.Is(err, errRejoin):
			c.stopPhaseWatch()
			err = c.admitJoin(ctx)
		case errors.Is(err, errFailover):
			c.stopPhaseWatch()
			err = c.recoverLost(ctx)
		default:
			return nil, err
		}
	}
	c.stopPhaseWatch()
	c.journal(journalEvent{Event: "done", Epoch: c.epoch})

	// Collect worker traces and merge them into the job timeline before
	// saying goodbye: node 0 is the coordinator, node w+1 is worker w. The
	// output is already complete, so with failover enabled a worker dying
	// here only costs its spans, not the job.
	if c.tr != nil {
		for _, i := range c.active() {
			if terr := c.collectTrace(i); terr != nil {
				if !c.failover {
					return nil, fmt.Errorf("cluster: trace from worker %d: %w", i, terr)
				}
			}
		}
	}

	if c.monCancel != nil {
		c.monCancel()
		c.monWG.Wait()
		c.monCancel = nil
	}
	for _, i := range c.active() {
		_ = c.links[i].send(mBye, nil) // best effort: workers also reset on conn close
	}

	stats := &SortStats{
		Records:        c.n,
		Workers:        c.W,
		Buckets:        c.S,
		ExchangeBlocks: c.streamLen,
		X:              c.bl.Histogram(),
		GatherRecords:  make([]int, c.W),
		RecvBlocks:     make([]int, c.W),
	}
	for w := 0; w < c.W; w++ {
		stats.RecvBlocks[w] = int(c.expectRecv[w])
		stats.GatherRecords[w] = int(c.expectGather[w])
	}
	c.mu.Lock()
	if len(c.deadErr) > 0 || c.rec.Joins > 0 || c.rec.Resumed || c.rec.HedgeWins+c.rec.HedgeLosses > 0 {
		rec := c.rec
		rec.ActiveWorkers = append([]int(nil), c.rec.ActiveWorkers...)
		rec.JoinedWorkers = append([]int(nil), c.rec.JoinedWorkers...)
		stats.Recovery = &rec
	}
	c.mu.Unlock()
	return stats, nil
}

// connect dials every worker, starts its reader, and runs the version
// handshake. A worker unreachable here fails the job fast with a typed
// *WorkerLostError — failover only covers workers that joined the job.
func (c *coordinator) connect(ctx context.Context) error {
	c.links = make([]*link, c.W)
	c.vers = make([]int, c.W)
	for i, addr := range c.spec.Workers {
		conn, derr := c.spec.Dial.dial(ctx, i, addr)
		if derr != nil {
			return fmt.Errorf("cluster: dialing worker %d: %w", i, derr)
		}
		c.links[i] = newLink(i, conn, c.spec.Dial, c.net)
	}
	var flags uint32
	if c.tr != nil {
		flags |= helloFlagTrace
	}
	for i, l := range c.links {
		h := msgHello{
			Version: protocolVersion, JobID: c.jobID,
			Worker: uint32(i), Workers: uint32(c.W),
			S: uint32(c.S), BlockRecs: uint32(c.spec.BlockRecs),
			Flags: flags,
			Peers: c.spec.Workers,
		}
		if err := l.send(mHello, h.encode()); err != nil {
			return fmt.Errorf("cluster: hello to worker %d: %w", i, err)
		}
	}
	for i := range c.links {
		payload, err := c.expectHandshake(i, mHelloAck)
		if err != nil {
			return fmt.Errorf("cluster: worker %d handshake: %w", i, err)
		}
		var v msgVersion
		if err := v.decode(payload); err != nil {
			return fmt.Errorf("cluster: worker %d handshake: %w", i, err)
		}
		c.vers[i] = int(v.Version)
	}
	c.failover = true
	c.elastic = true
	c.progress = true
	for _, v := range c.vers {
		if v < 3 {
			c.failover = false
		}
		if v < 4 {
			c.elastic = false
		}
		if v < 6 {
			c.progress = false
		}
	}
	return nil
}

// expectHandshake reads one frame from worker i with the handshake timeout
// (the only read the coordinator bounds by a deadline: past this point
// liveness comes from the failure detector).
func (c *coordinator) expectHandshake(i int, want byte) ([]byte, error) {
	return c.expectHandshakeOn(c.links[i], want)
}

// expectHandshakeOn is expectHandshake for a link not (yet) registered in
// c.links — a joiner being vetted before the membership commit.
func (c *coordinator) expectHandshakeOn(l *link, want byte) ([]byte, error) {
	t := time.NewTimer(c.spec.Dial.IOTimeout)
	defer t.Stop()
	select {
	case fr := <-l.ch:
		if fr.err != nil {
			return nil, fr.err
		}
		if fr.typ == mError {
			var e msgError
			if derr := e.decode(fr.payload); derr != nil {
				return nil, derr
			}
			return nil, wireToError(&e)
		}
		if fr.typ != want {
			return nil, fmt.Errorf("cluster: expected message %d, got %d", want, fr.typ)
		}
		return fr.payload, nil
	case <-t.C:
		return nil, fmt.Errorf("cluster: handshake timed out after %v", c.spec.Dial.IOTimeout)
	}
}

// lost marks worker i dead (idempotently), closes its control connection,
// and returns the error the caller should propagate: errFailover when the
// cluster can recover, the transport error itself when it cannot.
func (c *coordinator) lost(i int, err error) error {
	c.mu.Lock()
	if _, dup := c.deadErr[i]; !dup {
		wl := c.asLost(i, err)
		c.deadErr[i] = wl
		c.lastLost = wl
		c.rec.LostWorkers = append(c.rec.LostWorkers, i)
		c.rec.LostPhases = append(c.rec.LostPhases, c.phase)
		phase, epoch := c.phase, c.epoch
		l := c.links[i]
		select {
		case c.lostSig <- struct{}{}:
		default:
		}
		c.mu.Unlock()
		if l != nil {
			l.conn.Close()
		}
		c.tr.Count("cluster", "workers-lost", 0, 1)
		c.journal(journalEvent{Event: "lost", Epoch: epoch, Phase: phase, Worker: i})
	} else {
		c.mu.Unlock()
	}
	if c.failover {
		return errFailover
	}
	return err
}

// lostAsync is lost() for the monitor goroutines, which have no phase
// error to return into.
func (c *coordinator) lostAsync(i int, err error) { _ = c.lost(i, err) }

// asLost wraps err as a *WorkerLostError naming worker i, unless it
// already carries a typed identity — a lost worker's, or a demoted
// straggler's (the demotion IS a loss to the failover machinery, but the
// caller-visible type must say "slow", not "dead").
func (c *coordinator) asLost(i int, err error) error {
	var wl *WorkerLostError
	var st *StragglerError
	if errors.As(err, &wl) || errors.As(err, &st) {
		return err
	}
	return &WorkerLostError{Worker: i, Addr: c.spec.Workers[i], Err: err}
}

func (c *coordinator) isDead(i int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, dead := c.deadErr[i]
	return dead
}

// addr returns worker i's address under the lock: a join grows the peer
// table mid-job, so monitor goroutines cannot read it bare.
func (c *coordinator) addr(i int) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.spec.Workers[i]
}

// active returns the surviving worker IDs, ascending.
func (c *coordinator) active() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, 0, c.W)
	for i := 0; i < c.W; i++ {
		if _, dead := c.deadErr[i]; !dead {
			out = append(out, i)
		}
	}
	return out
}

// pendingLoss reports a loss not yet absorbed by a completed failover.
func (c *coordinator) pendingLoss() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.deadErr) > c.handled
}

// sendTo writes one frame to worker i, converting a write failure into a
// loss.
func (c *coordinator) sendTo(i int, typ byte, payload []byte) error {
	if c.isDead(i) {
		return c.deadSendErr(i)
	}
	if err := c.links[i].send(typ, payload); err != nil {
		return c.lost(i, err)
	}
	return nil
}

func (c *coordinator) deadSendErr(i int) error {
	if c.failover {
		return errFailover
	}
	c.mu.Lock()
	err := c.deadErr[i]
	c.mu.Unlock()
	return err
}

// triage handles the frames every wait on worker i must absorb: transport
// losses, peer-loss reports, worker errors, and debris left over from an
// epoch a failover aborted. skip=true means the frame was consumed
// internally and the caller should keep reading.
func (c *coordinator) triage(i int, fr frameMsg) (typ byte, payload []byte, skip bool, err error) {
	if fr.err != nil {
		return 0, nil, false, c.lost(i, fr.err)
	}
	switch fr.typ {
	case mPeerLost:
		var pl msgPeerLost
		if err := pl.decode(fr.payload); err != nil {
			return 0, nil, false, err
		}
		t := int(pl.Worker)
		if t < 0 || t >= c.W {
			return 0, nil, false, fmt.Errorf("cluster: worker %d reported peer %d lost", i, t)
		}
		if c.isDead(t) {
			return 0, nil, true, nil // duplicate report of a loss already being handled
		}
		return 0, nil, false, c.lost(t, &WorkerLostError{Worker: t, Addr: pl.Addr, Err: errors.New(pl.Text)})
	case mError:
		var e msgError
		if derr := e.decode(fr.payload); derr != nil {
			return 0, nil, false, derr
		}
		return 0, nil, false, wireToError(&e)
	case mRescatterAck:
		var a msgRescatterAck
		if err := a.decode(fr.payload); err != nil {
			return 0, nil, false, err
		}
		if a.Epoch != c.epoch {
			return 0, nil, true, nil // ack of a superseded recovery exchange
		}
		return fr.typ, fr.payload, false, nil
	case mPong:
		return 0, nil, true, nil // straggler from an aborted recovery exchange
	}
	return fr.typ, fr.payload, false, nil
}

// recvFrom returns the next frame from worker i, handling losses, peer-loss
// reports, worker errors, and frames left over from an epoch a failover
// aborted. It blocks until a frame or any loss signal arrives.
func (c *coordinator) recvFrom(i int) (byte, []byte, error) {
	if c.isDead(i) {
		return 0, nil, c.deadSendErr(i)
	}
	l := c.links[i]
	for {
		select {
		case fr := <-l.ch:
			typ, payload, skip, err := c.triage(i, fr)
			if err != nil {
				return 0, nil, err
			}
			if skip {
				continue
			}
			return typ, payload, nil
		case <-c.lostSig:
			return 0, nil, errFailover
		}
	}
}

// recvPoll is recvFrom without the blocking: ok=false reports that worker
// i has no frame ready. The barrier loops use it to take finishes in
// completion order rather than worker order, so a straggler early in the
// iteration cannot hide its peers' progress from the phase watcher.
func (c *coordinator) recvPoll(i int) (typ byte, payload []byte, ok bool, err error) {
	if c.isDead(i) {
		return 0, nil, false, c.deadSendErr(i)
	}
	l := c.links[i]
	for {
		select {
		case fr := <-l.ch:
			typ, payload, skip, err := c.triage(i, fr)
			if err != nil {
				return 0, nil, false, err
			}
			if skip {
				continue
			}
			return typ, payload, true, nil
		default:
			return 0, nil, false, nil
		}
	}
}

// expectFrom is recvFrom constrained to one message type.
func (c *coordinator) expectFrom(i int, want byte) ([]byte, error) {
	typ, payload, err := c.recvFrom(i)
	if err != nil {
		return nil, err
	}
	if typ != want {
		return nil, fmt.Errorf("cluster: expected message %d from worker %d, got %d", want, i, typ)
	}
	return payload, nil
}

// enterPhase records the phase for loss attribution and the journal, bails
// to the recovery loop if a loss is pending, and fires chaos or the
// scheduled join if this is their phase.
func (c *coordinator) enterPhase(name string) error {
	c.mu.Lock()
	c.phase = name
	c.mu.Unlock()
	c.journal(journalEvent{Event: "phase", Epoch: c.epoch, Phase: name})
	if c.failover && c.pendingLoss() {
		return errFailover
	}
	if ch := c.spec.Chaos; ch != nil && ch.Coordinator && !c.chaosFired && ch.Phase == name && c.epoch == 0 {
		// Simulated coordinator crash: die without a word on any link. The
		// deferred cleanup closes every connection abruptly; v4 workers
		// park their shards and wait for a Resume.
		c.chaosFired = true
		return ErrCoordinatorChaosKill
	}
	c.maybeChaos(name)
	c.maybeStall(name)
	c.beginPhaseWatch(name)
	if j := c.spec.Join; j != nil && !c.joined && c.elastic && j.Phase == name {
		c.joined = true
		return errRejoin
	}
	return nil
}

// maybeChaos fires the configured fault if this is its phase. It fires at
// most once per job, in epoch 0 only — the harness proves one induced
// death is survivable, not that the job outlives arbitrary repetition.
func (c *coordinator) maybeChaos(phase string) {
	ch := c.spec.Chaos
	if ch == nil || c.chaosFired || ch.Phase != phase || !c.failover || c.epoch != 0 {
		return
	}
	c.chaosFired = true
	mode := crashKill
	if ch.Hang {
		mode = crashHang
	}
	if !c.isDead(ch.Worker) {
		_ = c.links[ch.Worker].send(mCrash, (&msgCrash{Mode: mode}).encode())
	}
}

// maybeStall fires the configured slowdown if this is its phase — the
// latency analogue of maybeChaos, under the same fire-once, epoch-0 rules.
// v6-only: only the progress detector can see a stalled-but-ponging
// worker, so injecting one into an older cluster would just hang the job.
func (c *coordinator) maybeStall(phase string) {
	st := c.spec.Stall
	if st == nil || c.stallFired || st.Phase != phase || !c.progress || c.epoch != 0 {
		return
	}
	c.stallFired = true
	if !c.isDead(st.Worker) {
		_ = c.links[st.Worker].send(mCrash, (&msgCrash{Mode: crashStall, Factor: uint32(st.Factor)}).encode())
	}
}

// beginPhaseWatch resets the per-phase completion table and (for barrier
// phases, with the detector enabled) arms a watcher goroutine that
// enforces the phase's deadline budget. Scatter is exempt: it is
// coordinator-push with no per-worker barrier, so a stall there surfaces
// at the histogram barrier (or as a transport write timeout).
func (c *coordinator) beginPhaseWatch(name string) {
	c.pmu.Lock()
	if c.watchStop != nil {
		close(c.watchStop)
		c.watchStop = nil
	}
	c.phaseT0 = time.Now()
	c.doneAt = make(map[int]time.Time)
	c.focus = -1
	arm := c.spec.Straggler.Enabled && name != "scatter"
	var stop chan struct{}
	if arm {
		stop = make(chan struct{})
		c.watchStop = stop
	}
	c.pmu.Unlock()
	if arm {
		c.watchWG.Add(1)
		go c.watchPhase(name, stop)
	}
}

// stopPhaseWatch retires the current phase watcher, if any. Called when
// the pipeline unwinds to recovery (the phase it watched is being
// abandoned) and at job end.
func (c *coordinator) stopPhaseWatch() {
	c.pmu.Lock()
	if c.watchStop != nil {
		close(c.watchStop)
		c.watchStop = nil
	}
	c.pmu.Unlock()
}

// setWatchFocus marks worker i as the one the coordinator is currently
// blocked on in a sequential phase like drain, where peers not yet
// fetched are idle through no fault of their own: the watcher then blames
// only the focused worker for elapsed budget.
func (c *coordinator) setWatchFocus(i int) {
	c.pmu.Lock()
	c.focus = i
	c.focusT0 = time.Now()
	c.pmu.Unlock()
}

// notePhaseDone records worker i's barrier completion in the current
// phase, for the watcher's dynamic budgets and the hedge's target choice.
func (c *coordinator) notePhaseDone(i int) {
	c.pmu.Lock()
	if _, ok := c.doneAt[i]; !ok {
		c.doneAt[i] = time.Now()
	}
	c.pmu.Unlock()
}

// noteProgress folds one v6 pong trailer into the progress table,
// timestamping only actual advancement so the watcher's grace check reads
// "made progress recently", not "answered a ping recently".
func (c *coordinator) noteProgress(i int, pg msgProgress) {
	c.pmu.Lock()
	t := c.prog[i]
	if !t.have || t.phase != pg.Phase || t.units != pg.Units {
		t.at = time.Now()
	}
	t.have, t.phase, t.units = true, pg.Phase, pg.Units
	c.prog[i] = t
	c.pmu.Unlock()
}

// progressWithin reports whether worker i's progress counters advanced in
// the last grace window. Without v6 pongs there is no progress evidence,
// so no grace.
func (c *coordinator) progressWithin(i int, now time.Time, grace time.Duration) bool {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	t, ok := c.prog[i]
	return ok && t.have && now.Sub(t.at) <= grace
}

// watchPhase is the progress-rate failure detector for one barrier phase.
// Each tick it derives the phase's deadline budget, hedges a straggling
// local sort past the soft budget, and demotes a worker past the hard
// budget — after one grace extension if its progress counters advanced
// recently — to the failover path via a typed *StragglerError.
func (c *coordinator) watchPhase(phase string, stop chan struct{}) {
	defer c.watchWG.Done()
	st := c.spec.Straggler
	tick := c.spec.Heartbeat.Interval / 2
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	tk := time.NewTicker(tick)
	defer tk.Stop()
	extended := make(map[int]time.Duration) // worker -> extended deadline
	for {
		select {
		case <-stop:
			return
		case <-tk.C:
		}
		now := time.Now()
		c.pmu.Lock()
		t0 := c.phaseT0
		focus, focusT0 := c.focus, c.focusT0
		durs := make([]time.Duration, 0, len(c.doneAt))
		done := make(map[int]bool, len(c.doneAt))
		var doneShards []uint64
		for i, at := range c.doneAt {
			durs = append(durs, at.Sub(t0))
			done[i] = true
			if (phase == "local-sort" || phase == "drain") && i < len(c.expectGather) {
				doneShards = append(doneShards, c.expectGather[i])
			}
		}
		c.pmu.Unlock()
		activeList := c.active()
		if phase == "drain" {
			// Drain fetches shards one worker at a time: only the worker the
			// coordinator is currently blocked on can be at fault, and until
			// the first fetch begins there is nobody to blame.
			if focus < 0 {
				continue
			}
			activeList = []int{focus}
			t0 = focusT0 // the budget covers this fetch, not the whole drain
		}
		hard := c.phaseBudget(st, durs, len(activeList))
		soft := st.SoftBudget
		if soft <= 0 {
			soft = hard
		}
		elapsed := now.Sub(t0)
		var unfinished []int
		for _, i := range activeList {
			if !done[i] {
				unfinished = append(unfinished, i)
			}
		}
		// Hedge only a lone outlier: every peer has sorted and exactly one
		// worker is still running past the soft budget. Counters cannot
		// reliably rank two still-sorting workers (a sort is one coarse work
		// unit), so spending the job's single hedge while several workers are
		// legitimately busy risks wasting it on a healthy one.
		if phase == "local-sort" && st.Hedge && c.progress && soft > 0 && elapsed > soft &&
			len(unfinished) == 1 {
			c.maybeHedge(unfinished[0], done)
		}
		var cands []int
		limits := make(map[int]time.Duration)
		for _, i := range activeList {
			if done[i] {
				continue
			}
			if c.hedgeInFlightFor(i) {
				continue // give the hedge its chance before demoting
			}
			limit := hard
			if st.HardBudget <= 0 {
				limit = c.scaleShardBudget(phase, i, doneShards, hard)
			}
			if e, ok := extended[i]; ok {
				limit = e
			}
			if limit <= 0 || elapsed <= limit {
				continue
			}
			grace := 2 * c.spec.Heartbeat.Interval
			if hard/4 > grace {
				grace = hard / 4
			}
			if _, ok := extended[i]; !ok && c.progressWithin(i, now, grace) {
				extended[i] = elapsed + grace
				continue
			}
			cands = append(cands, i)
			limits[i] = limit
		}
		if len(cands) == 0 {
			continue
		}
		// In an all-to-all phase every healthy worker is eventually blocked
		// at the barrier behind the one straggler, so several workers blow
		// the budget together. Demote only the furthest-behind unfinished
		// worker — and if that worker is still inside its grace extension
		// (a throttled worker inches forward, earning grace, while the
		// healthy peers it blocks sit flat), hold this sweep rather than
		// shoot a bystander. The failover that follows reruns the phase,
		// and if a second straggler remains the fresh watcher will find it.
		v := c.straggliest(unfinished)
		if _, ok := limits[v]; !ok {
			continue
		}
		c.demote(v, phase, limits[v])
		return
	}
}

// straggliest picks the most-behind worker among cands by the v6 progress
// counters: lowest worker phase first, then fewest work units, then lowest
// ID for determinism. Workers that never reported progress sort first.
func (c *coordinator) straggliest(cands []int) int {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	v := cands[0]
	vt := c.prog[v]
	for _, i := range cands[1:] {
		t := c.prog[i]
		behind := false
		switch {
		case t.have != vt.have:
			behind = !t.have
		case t.phase != vt.phase:
			behind = t.phase < vt.phase
		case t.units != vt.units:
			behind = t.units < vt.units
		}
		if behind {
			v, vt = i, t
		}
	}
	return v
}

// phaseBudget derives the phase's hard deadline: the explicit HardBudget
// when set; otherwise, once at least half the active workers have
// finished, BudgetFactor times the median finisher's phase time, floored
// by MinBudget and capped by BudgetFactor times the plan model's
// prediction. Zero means "no verdict yet".
func (c *coordinator) phaseBudget(st StragglerConfig, durs []time.Duration, active int) time.Duration {
	if st.HardBudget > 0 {
		return st.HardBudget
	}
	if len(durs) == 0 || len(durs)*2 < active {
		return 0
	}
	b := time.Duration(st.BudgetFactor * float64(medianDur(durs)))
	if b < st.MinBudget {
		b = st.MinBudget
	}
	if c.predicted > 0 {
		if ceil := time.Duration(st.BudgetFactor * float64(c.predicted)); ceil > st.MinBudget && b > ceil {
			b = ceil
		}
	}
	return b
}

// scaleShardBudget stretches a derived local-sort or drain deadline for a
// worker whose planned shard outweighs the median finisher's: the budget
// is derived from the median finisher's time, and under bucket skew the
// biggest shard legitimately sorts (and drains) proportionally slower —
// that is load imbalance, not a straggle, and demoting the big worker
// only re-spreads its shard and amplifies the skew. Explicit budgets are
// the operator's absolute verdict and are never scaled (the caller gates
// on HardBudget). expectGather is safe to read here: it is written during
// the plan, which happens before the local-sort and drain watchers are
// armed, and watchers are retired before any re-plan.
func (c *coordinator) scaleShardBudget(phase string, i int, doneShards []uint64, hard time.Duration) time.Duration {
	if hard <= 0 || (phase != "local-sort" && phase != "drain") ||
		i >= len(c.expectGather) || len(doneShards) == 0 {
		return hard
	}
	m := medianU64(doneShards)
	if m == 0 {
		// The median finisher's shard was empty (extreme duplicate skew can
		// put every record in one worker's buckets): its time says nothing
		// about how long real work takes, so a derived deadline has no
		// baseline — issue no verdict for a worker that actually holds data.
		if c.expectGather[i] > 0 {
			return 0
		}
		return hard
	}
	if s := float64(c.expectGather[i]) / float64(m); s > 1 {
		return time.Duration(float64(hard) * s)
	}
	return hard
}

func medianU64(v []uint64) uint64 {
	s := append([]uint64(nil), v...)
	for i := 1; i < len(s); i++ { // insertion sort: W is small
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

func medianDur(durs []time.Duration) time.Duration {
	s := append([]time.Duration(nil), durs...)
	for i := 1; i < len(s); i++ { // insertion sort: W is small
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

// demote expels a live-but-stalled worker to the failover path: the same
// machinery that absorbs a death absorbs a demotion, it just carries a
// *StragglerError so the caller (and jobs.Classify) can tell "slow" from
// "dead".
func (c *coordinator) demote(i int, phase string, budget time.Duration) {
	c.pmu.Lock()
	t, haveProg := c.prog[i]
	c.pmu.Unlock()
	detail := "no progress reports"
	if haveProg && t.have {
		detail = fmt.Sprintf("last progress %v ago (%s, %d units)",
			time.Since(t.at).Round(time.Millisecond), WorkerPhases[int(t.phase)%len(WorkerPhases)], t.units)
	}
	c.mu.Lock()
	c.rec.Stragglers = append(c.rec.Stragglers, i)
	epoch := c.epoch
	c.mu.Unlock()
	c.tr.Count("cluster", "stragglers-detected", 0, 1)
	// A zero-length marker span: analyze keys its straggler section on it.
	c.tr.Begin("cluster", "straggler", 0).End(
		obs.Attr{Key: "worker", Val: int64(i)},
		obs.Attr{Key: "budget-ms", Val: budget.Milliseconds()},
	)
	c.journal(journalEvent{Event: "straggler", Epoch: epoch, Phase: phase, Worker: i})
	c.lostAsync(i, &StragglerError{
		Worker: i, Addr: c.addr(i), Phase: phase, Budget: budget,
		Err: fmt.Errorf("no barrier completion after %v; %s", budget, detail),
	})
}

// maybeHedge starts the job's one hedged shard-sort re-execution against
// victim, if none ran yet and a target exists: the fastest idle worker —
// the earliest barrier finisher when one is known, otherwise the peer
// with the most reported progress.
func (c *coordinator) maybeHedge(victim int, done map[int]bool) {
	c.hmu.Lock()
	if c.hedged != nil {
		c.hmu.Unlock()
		return
	}
	target := c.pickHedgeTarget(victim, done)
	if target < 0 {
		c.hmu.Unlock()
		return
	}
	c.mu.Lock()
	epoch := c.epoch
	c.mu.Unlock()
	hr := &hedgeRun{victim: victim, target: target, epoch: epoch, won: make(chan struct{})}
	c.hedged = hr
	c.hmu.Unlock()
	c.watchWG.Add(1)
	go c.superviseHedge(hr)
}

func (c *coordinator) pickHedgeTarget(victim int, done map[int]bool) int {
	c.pmu.Lock()
	doneAt := make(map[int]time.Time, len(c.doneAt))
	for i, at := range c.doneAt {
		doneAt[i] = at
	}
	prog := make(map[int]progTrack, len(c.prog))
	for i, t := range c.prog {
		prog[i] = t
	}
	c.pmu.Unlock()
	best := -1
	var bestAt time.Time
	for _, i := range c.active() {
		if i == victim || !done[i] {
			continue
		}
		if at, ok := doneAt[i]; ok && (best < 0 || at.Before(bestAt)) {
			best, bestAt = i, at
		}
	}
	if best >= 0 {
		return best
	}
	var bestProg progTrack
	for _, i := range c.active() {
		if i == victim {
			continue
		}
		t := prog[i]
		if best < 0 || t.phase > bestProg.phase || (t.phase == bestProg.phase && t.units > bestProg.units) {
			best, bestProg = i, t
		}
	}
	return best
}

// superviseHedge drives one hedge: dial the target on a dedicated
// connection, arm it with mHedgeHello/mHedgeHelloAck, only then order
// every active worker (the victim included — its control reader stays
// responsive, and its resend path is not stall-throttled) to re-send the
// victim's buckets as phase-3 streams, and wait for mHedgeDone. Closing
// won publishes the verdict to the sort barrier, which decides the race.
// Any failure just abandons the hedge; the job never depends on it.
func (c *coordinator) superviseHedge(hr *hedgeRun) {
	defer c.watchWG.Done()
	sp := c.tr.Begin("cluster", "hedge", 0)
	outcome := "failed"
	defer func() {
		sp.End(
			obs.Attr{Key: "victim", Val: int64(hr.victim)},
			obs.Attr{Key: "target", Val: int64(hr.target)},
			obs.Attr{Key: "armed", Val: boolAttr(outcome == "armed")},
		)
	}()
	fail := func() {
		c.hmu.Lock()
		if !hr.covered && !hr.beaten {
			hr.failed = true
		}
		conn := hr.conn
		c.hmu.Unlock()
		if conn != nil {
			conn.Close()
		}
	}
	victimRecs := c.expectGather[hr.victim]
	var buckets []uint32
	for b, o := range c.owners {
		if int(o) == hr.victim {
			buckets = append(buckets, uint32(b))
		}
	}
	conn, err := c.spec.Dial.dial(c.hctx, hr.target, c.addr(hr.target))
	if err != nil {
		fail()
		return
	}
	// A job-end or explicit closeHedge must be able to cut a read that has
	// no deadline (the sort can take arbitrarily long).
	stopCut := context.AfterFunc(c.hctx, func() { conn.Close() })
	defer stopCut()
	br := bufio.NewReaderSize(conn, 1<<16)
	c.hmu.Lock()
	if hr.beaten { // the victim finished while we were dialing
		c.hmu.Unlock()
		conn.Close()
		return
	}
	hr.conn, hr.br = conn, br
	c.hmu.Unlock()
	hh := &msgHedgeHello{
		JobID: c.jobID, Epoch: hr.epoch, Victim: uint32(hr.victim),
		Recs: victimRecs, Buckets: buckets,
	}
	setOpDeadline(conn, c.spec.Dial)
	if err := writeFrame(conn, mHedgeHello, hh.encode()); err != nil {
		fail()
		return
	}
	setOpDeadline(conn, c.spec.Dial)
	typ, _, err := readFrame(br)
	if err != nil || typ != mHedgeHelloAck {
		fail()
		return
	}
	// The target is armed: order the resends. Serializing the broadcast
	// after the ack means no phase-3 block can reach an unarmed target.
	hs := (&msgHedgeSend{
		Epoch: hr.epoch, Victim: uint32(hr.victim), Target: uint32(hr.target), Buckets: buckets,
	}).encode()
	for _, i := range c.active() {
		_ = c.links[i].send(mHedgeSend, hs) // best effort: a missing sender just starves the hedge
	}
	clearDeadline(conn)
	typ, payload, err := readFrame(br)
	if err != nil || typ != mHedgeDone {
		fail()
		return
	}
	var m msgCount
	if err := m.decode(payload); err != nil || m.Count != victimRecs {
		fail()
		return
	}
	hr.recs = m.Count
	outcome = "armed"
	close(hr.won)
}

// currentHedge returns the hedge belonging to the current epoch, if any.
// Main-goroutine only (epoch is read bare).
func (c *coordinator) currentHedge() *hedgeRun {
	c.hmu.Lock()
	defer c.hmu.Unlock()
	if c.hedged != nil && c.hedged.epoch == c.epoch {
		return c.hedged
	}
	return nil
}

// hedgeInFlightFor reports an undecided hedge covering worker i — the
// watcher suspends demotion while one runs.
func (c *coordinator) hedgeInFlightFor(i int) bool {
	c.hmu.Lock()
	defer c.hmu.Unlock()
	hr := c.hedged
	return hr != nil && hr.victim == i && !hr.covered && !hr.beaten && !hr.failed
}

// hedgeTakeover decides the race in the hedge's favor if it finished
// first, exactly once: covered means the victim's shard is served from
// the hedge connection at drain.
func (c *coordinator) hedgeTakeover(hr *hedgeRun) bool {
	c.hmu.Lock()
	defer c.hmu.Unlock()
	if hr.covered {
		return true
	}
	if hr.beaten || hr.failed {
		return false
	}
	select {
	case <-hr.won:
		hr.covered = true
		return true
	default:
		return false
	}
}

// hedgeBeaten decides the race in the victim's favor: its own mSortDone
// arrived first. Closing the hedge connection aborts the target's
// speculative work.
func (c *coordinator) hedgeBeaten(hr *hedgeRun) {
	c.hmu.Lock()
	if hr.covered || hr.beaten {
		c.hmu.Unlock()
		return
	}
	hr.beaten = true
	conn := hr.conn
	already := hr.failed
	c.hmu.Unlock()
	if conn != nil {
		conn.Close()
	}
	if !already {
		c.tr.Count("cluster", "hedge-losses", 0, 1)
		c.mu.Lock()
		c.rec.HedgeLosses++
		c.mu.Unlock()
	}
}

// closeHedge tears down the hedge connection at job end or on a failover
// unwind (the epoch bump makes the worker side abandon it anyway).
func (c *coordinator) closeHedge() {
	c.hmu.Lock()
	var conn net.Conn
	if c.hedged != nil {
		conn = c.hedged.conn
	}
	c.hmu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// scatter streams the input round-robin, one chunk per frame, recording
// which worker owns each chunk so a failover can re-stream exactly the
// dead workers' extents.
func (c *coordinator) scatter(ctx context.Context) error {
	if err := c.enterPhase("scatter"); err != nil {
		return err
	}
	sp := c.tr.Begin("cluster", "scatter", 0)
	c.chunks = (c.n + scatterChunk - 1) / scatterChunk
	c.assign = make([]int32, c.chunks)
	for t := range c.assign {
		c.assign[t] = -1
	}
	c.perWorker = make([]uint64, c.W)
	buf := make([]byte, scatterChunk*record.EncodedSize)
	r := bufio.NewReaderSize(c.in, 1<<16)
	for pos, turn := 0, 0; pos < c.n; turn++ {
		m := scatterChunk
		if pos+m > c.n {
			m = c.n - pos
		}
		chunk := buf[:m*record.EncodedSize]
		if _, err := readFull(r, chunk); err != nil {
			return fmt.Errorf("cluster: reading %s at record %d: %w", c.inPath, pos, err)
		}
		w := turn % c.W
		if c.isDead(w) {
			return c.deadSendErr(w) // errFailover: recovery re-streams from here
		}
		if err := c.sendTo(w, mRecords, chunk); err != nil {
			if errors.Is(err, errFailover) {
				return err
			}
			return fmt.Errorf("cluster: scattering to worker %d: %w", w, err)
		}
		c.assign[turn] = int32(w)
		c.perWorker[w] += uint64(m)
		pos += m
	}
	for i := 0; i < c.W; i++ {
		if err := c.sendTo(i, mScatterDone, (&msgCount{Count: c.perWorker[i]}).encode()); err != nil {
			if errors.Is(err, errFailover) {
				return err
			}
			return fmt.Errorf("cluster: finishing scatter to worker %d: %w", i, err)
		}
	}
	c.journal(journalEvent{
		Event: "scatter-done", Epoch: c.epoch,
		Extents: append([]uint64(nil), c.perWorker...),
		Assign:  append([]int32(nil), c.assign...),
	})
	sp.End(obs.Attr{Key: "records", Val: int64(c.n)}, obs.Attr{Key: "workers", Val: int64(c.W)})
	return nil
}

// collectBarrier gathers one want-typed frame from every active worker,
// in completion order rather than worker order, so one straggler cannot
// hide its peers' finishes from the phase watcher (whose dynamic budgets
// and hedge-target choice feed off notePhaseDone). onFrame validates and
// folds worker i's payload; folding must be order-independent, which
// every barrier here is (sums, per-worker slots, count checks). With
// hedge set (the local-sort barrier), a won hedge satisfies the victim's
// slot: first finisher wins, the loser is cancelled.
func (c *coordinator) collectBarrier(want byte, what string, hedge bool, onFrame func(i int, payload []byte) error) error {
	pending := c.active()
	for len(pending) > 0 {
		if c.failover && c.pendingLoss() {
			return errFailover
		}
		var hr *hedgeRun
		if hedge {
			hr = c.currentHedge()
		}
		progressed := false
		var next []int
		for _, i := range pending {
			if hr != nil && hr.victim == i && c.hedgeTakeover(hr) {
				// The hedge finished first: cancel the victim's sort (best
				// effort — if the cancel cannot be delivered the victim
				// just computes a shard nobody drains) and cover its slot.
				_ = c.links[i].send(mSortCancel, nil)
				c.tr.Count("cluster", "hedge-wins", 0, 1)
				c.mu.Lock()
				c.rec.HedgeWins++
				epoch := c.epoch
				c.mu.Unlock()
				c.journal(journalEvent{Event: "hedge", Epoch: epoch, Phase: "local-sort", Worker: i, Addr: c.addr(hr.target)})
				c.notePhaseDone(i)
				progressed = true
				continue
			}
			typ, payload, ok, err := c.recvPoll(i)
			if err != nil {
				return phaseErr(what, i, err)
			}
			if !ok {
				next = append(next, i)
				continue
			}
			if typ != want {
				return fmt.Errorf("cluster: expected message %d from worker %d, got %d", want, i, typ)
			}
			if err := onFrame(i, payload); err != nil {
				return err
			}
			c.notePhaseDone(i)
			if hr != nil && hr.victim == i {
				c.hedgeBeaten(hr)
			}
			progressed = true
		}
		pending = next
		if len(pending) == 0 || progressed {
			continue
		}
		// Nothing ready: sleep a beat. A loss signal ends the lull early;
		// frames and hedge verdicts are picked up on the next sweep.
		t := time.NewTimer(time.Millisecond)
		select {
		case <-c.lostSig:
			t.Stop()
			return errFailover
		case <-t.C:
		}
	}
	return nil
}

// pipeline runs the post-scatter phases for the current epoch. Any return
// of errFailover unwinds to the recovery loop in run.
func (c *coordinator) pipeline(ctx context.Context) error {
	if err := c.histogramPhase(); err != nil {
		return err
	}
	if err := c.planPhase(); err != nil {
		return err
	}
	if err := c.exchangePhase(); err != nil {
		return err
	}
	if err := c.gatherPhase(); err != nil {
		return err
	}
	if err := c.sortPhase(); err != nil {
		return err
	}
	return c.drainPhase()
}

func (c *coordinator) histogramPhase() error {
	if err := c.enterPhase("histogram-merge"); err != nil {
		return err
	}
	sp := c.tr.Begin("cluster", "histogram-merge", 0)
	merged := make([]uint64, histBins)
	err := c.collectBarrier(mHistogram, "histogram from worker", false, func(i int, payload []byte) error {
		var h msgHistogram
		if err := h.decode(payload); err != nil {
			return err
		}
		for b, v := range h.Bins {
			merged[b] += v
		}
		return nil
	})
	if err != nil {
		return err
	}
	c.pivots = pickPivots(merged, uint64(c.n), c.S)
	digest := histDigest(merged)
	if c.wantPivots == nil {
		c.wantPivots = append([]uint64(nil), c.pivots...)
		c.wantDigest = digest
		c.journal(journalEvent{Event: "pivots", Epoch: c.epoch, Pivots: c.pivots, Digest: digest})
	} else if digest != c.wantDigest || !equalU64(c.pivots, c.wantPivots) {
		// The merged histogram is membership-independent — the shards
		// always partition the whole input — so any divergence across
		// epochs (or across a crash, via the journal) means the shards no
		// longer hold the input and the output could not be trusted.
		return fmt.Errorf("cluster: epoch %d merged histogram diverged (digest %#x, committed %#x)",
			c.epoch, digest, c.wantDigest)
	}
	pv := (&msgPivots{Pivots: c.pivots}).encode()
	for _, i := range c.active() {
		if err := c.sendTo(i, mPivots, pv); err != nil {
			return phaseErr("pivots to worker", i, err)
		}
		c.flowOut("pivots", i)
	}
	sp.End(obs.Attr{Key: "pivots", Val: int64(len(c.pivots))})
	return nil
}

func (c *coordinator) planPhase() error {
	if err := c.enterPhase("plan"); err != nil {
		return err
	}
	sp := c.tr.Begin("cluster", "plan", 0)
	activeList := c.active()
	H := len(activeList)

	// Per-bucket record counts from every surviving worker.
	counts := make([][]uint64, c.W)
	err := c.collectBarrier(mCounts, "counts from worker", false, func(i int, payload []byte) error {
		var m msgCounts
		if err := m.decode(payload); err != nil {
			return err
		}
		if len(m.PerBucket) != c.S {
			return fmt.Errorf("cluster: worker %d counted %d buckets, want %d", i, len(m.PerBucket), c.S)
		}
		var total uint64
		for _, v := range m.PerBucket {
			total += v
		}
		if total != c.perWorker[i] {
			return fmt.Errorf("cluster: worker %d partitioned %d of %d records", i, total, c.perWorker[i])
		}
		counts[i] = m.PerBucket
		return nil
	})
	if err != nil {
		return err
	}

	// Balance-Sort placement: enumerate every block each worker will form
	// (bucket-major per worker), interleave across workers so each
	// placement track holds at most one block per worker — the cluster
	// analogue of "one block formed per processor per step" — and let the
	// histogram/auxiliary-matrix machinery pick destinations. The balancer
	// runs over H' = |survivors| virtual disks: losing a worker shrinks
	// the disk set exactly as the paper's model allows, and the invariant
	// check below asserts the placement guarantees on the shrunk matrix.
	type blockRef struct {
		worker int // worker ID (not active index)
		bucket int
		seq    int
	}
	blocksOf := make(map[int][]blockRef, H)
	for _, w := range activeList {
		for b := 0; b < c.S; b++ {
			nb := int((counts[w][b] + uint64(c.spec.BlockRecs) - 1) / uint64(c.spec.BlockRecs))
			for seq := 0; seq < nb; seq++ {
				blocksOf[w] = append(blocksOf[w], blockRef{worker: w, bucket: b, seq: seq})
			}
		}
	}
	var stream []blockRef
	for t := 0; ; t++ {
		any := false
		for _, w := range activeList {
			if t < len(blocksOf[w]) {
				stream = append(stream, blocksOf[w][t])
				any = true
			}
		}
		if !any {
			break
		}
	}
	labels := make([]int, len(stream))
	for i, ref := range stream {
		labels[i] = ref.bucket
	}
	bl := balance.New(balance.Config{S: c.S, H: H})
	dests := bl.PlaceStream(labels) // dest is an index into activeList
	if err := bl.CheckInvariants(); err != nil {
		return fmt.Errorf("cluster: placement over %d disks broke the balance invariants: %w", H, err)
	}

	planDests := make(map[int][][]uint32, H) // worker ID -> [bucket][seq]
	for _, w := range activeList {
		rows := make([][]uint32, c.S)
		for b := 0; b < c.S; b++ {
			nb := int((counts[w][b] + uint64(c.spec.BlockRecs) - 1) / uint64(c.spec.BlockRecs))
			rows[b] = make([]uint32, nb)
		}
		planDests[w] = rows
	}
	expectRecv := make([]uint64, c.W)
	for i, ref := range stream {
		dest := activeList[dests[i]]
		planDests[ref.worker][ref.bucket][ref.seq] = uint32(dest)
		expectRecv[dest]++
	}

	// Bucket ownership: contiguous runs of buckets per surviving worker,
	// balanced by record volume, so each worker's final shard is one key
	// range and the drain in ascending survivor order is the global key
	// order.
	bucketTotal := make([]uint64, c.S)
	for _, w := range activeList {
		for b := 0; b < c.S; b++ {
			bucketTotal[b] += counts[w][b]
		}
	}
	ownerPos := assignOwners(bucketTotal, H)
	owners := make([]uint32, c.S)
	for b, p := range ownerPos {
		owners[b] = uint32(activeList[p])
	}
	expectGather := make([]uint64, c.W)
	for b, o := range owners {
		expectGather[o] += bucketTotal[b]
	}

	for _, i := range activeList {
		p := msgPlan{
			Dests:            planDests[i],
			ExpectRecvBlocks: expectRecv[i],
			Owners:           owners,
			ExpectGatherRecs: expectGather[i],
		}
		if err := c.sendTo(i, mPlan, p.encode()); err != nil {
			return phaseErr("plan to worker", i, err)
		}
		c.flowOut("plan", i)
	}
	c.bl = bl
	c.streamLen = len(stream)
	c.expectRecv = expectRecv
	c.expectGather = expectGather
	c.owners = owners
	sp.End(obs.Attr{Key: "blocks", Val: int64(len(stream))}, obs.Attr{Key: "buckets", Val: int64(c.S)},
		obs.Attr{Key: "disks", Val: int64(H)})
	return nil
}

func (c *coordinator) exchangePhase() error {
	if err := c.enterPhase("exchange"); err != nil {
		return err
	}
	sp := c.tr.Begin("cluster", "exchange", 0)
	err := c.collectBarrier(mPhaseDone, "exchange on worker", false, func(i int, payload []byte) error {
		var d msgPhaseDone
		if err := d.decode(payload); err != nil {
			return err
		}
		if d.Phase != 1 || d.BlocksRecv != c.expectRecv[i] {
			return fmt.Errorf("cluster: worker %d finished exchange with %d of %d blocks",
				i, d.BlocksRecv, c.expectRecv[i])
		}
		c.journalWDone("exchange", i)
		return nil
	})
	if err != nil {
		return err
	}
	sp.End(obs.Attr{Key: "blocks", Val: int64(c.streamLen)})
	return nil
}

func (c *coordinator) gatherPhase() error {
	if err := c.enterPhase("gather"); err != nil {
		return err
	}
	sp := c.tr.Begin("cluster", "gather", 0)
	for _, i := range c.active() {
		if err := c.sendTo(i, mStartGather, nil); err != nil {
			return phaseErr("starting gather on worker", i, err)
		}
		c.flowOut("gather", i)
	}
	err := c.collectBarrier(mPhaseDone, "gather on worker", false, func(i int, payload []byte) error {
		var d msgPhaseDone
		if err := d.decode(payload); err != nil {
			return err
		}
		if d.Phase != 2 || d.RecsRecv != c.expectGather[i] {
			return fmt.Errorf("cluster: worker %d gathered %d of %d records",
				i, d.RecsRecv, c.expectGather[i])
		}
		c.journalWDone("gather", i)
		return nil
	})
	if err != nil {
		return err
	}
	sp.End()
	return nil
}

func (c *coordinator) sortPhase() error {
	if err := c.enterPhase("local-sort"); err != nil {
		return err
	}
	sp := c.tr.Begin("cluster", "local-sort", 0)
	for _, i := range c.active() {
		if err := c.sendTo(i, mSortReq, nil); err != nil {
			return phaseErr("sort request to worker", i, err)
		}
		c.flowOut("local-sort", i)
	}
	err := c.collectBarrier(mSortDone, "local sort on worker", true, func(i int, payload []byte) error {
		var m msgCount
		if err := m.decode(payload); err != nil {
			return err
		}
		if m.Count != c.expectGather[i] {
			return fmt.Errorf("cluster: worker %d sorted %d of %d records", i, m.Count, c.expectGather[i])
		}
		c.journalWDone("local-sort", i)
		return nil
	})
	if err != nil {
		return err
	}
	sp.End()
	return nil
}

func (c *coordinator) drainPhase() error {
	if err := c.enterPhase("drain"); err != nil {
		return err
	}
	sp := c.tr.Begin("cluster", "drain", 0)
	if err := c.drainShards(); err != nil {
		return err
	}
	sp.End(obs.Attr{Key: "records", Val: int64(c.n)})
	return nil
}

// drainShards pulls every surviving worker's sorted shard in ascending ID
// order into outPath, verifying global sortedness and record conservation
// while streaming, and leaving no partial output behind on failure (a
// failover here re-creates the file from scratch).
func (c *coordinator) drainShards() (err error) {
	out, err := os.Create(c.outPath)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			out.Close()
			os.Remove(c.outPath)
		}
	}()
	w := bufio.NewWriterSize(out, 1<<16)
	var prev record.Record
	first := true
	written := uint64(0)
	for _, i := range c.active() {
		if hr := c.currentHedge(); hr != nil && hr.victim == i && c.hedgeTakeover(hr) {
			// The victim's sort was cancelled when the hedge won; its shard
			// — byte-identical, being the same record multiset under the
			// same total order — is served by the target over the hedge
			// connection, at the victim's position in the drain order. A
			// failure here demotes the *target* (its speculative copy is
			// what proved unusable) and reruns the epoch without a hedge.
			c.setWatchFocus(hr.target)
			got, derr := c.drainHedge(hr, w, &prev, &first)
			if derr != nil {
				return phaseErr("draining hedged shard for worker", i, c.lost(hr.target, derr))
			}
			written += got
			c.journalWDone("drain", i)
			c.notePhaseDone(i)
			continue
		}
		c.setWatchFocus(i)
		if err := c.sendTo(i, mFetch, nil); err != nil {
			return phaseErr("fetch from worker", i, err)
		}
		c.flowOut("drain", i)
		var got uint64
		for {
			typ, payload, rerr := c.recvFrom(i)
			if rerr != nil {
				return phaseErr("draining worker", i, rerr)
			}
			if typ == mFetchDone {
				var m msgCount
				if derr := m.decode(payload); derr != nil {
					return derr
				}
				if m.Count != got || got != c.expectGather[i] {
					return fmt.Errorf("cluster: worker %d drained %d records, reported %d, expected %d",
						i, got, m.Count, c.expectGather[i])
				}
				break
			}
			if typ != mRecords {
				return fmt.Errorf("cluster: unexpected message %d while draining worker %d", typ, i)
			}
			recs, derr := decodeRecords(payload)
			if derr != nil {
				return derr
			}
			for _, rec := range recs {
				if !first && rec.Less(prev) {
					return fmt.Errorf("cluster: output not sorted at worker %d shard", i)
				}
				prev, first = rec, false
			}
			if _, werr := w.Write(payload); werr != nil {
				return werr
			}
			got += uint64(len(recs))
		}
		written += got
		c.journalWDone("drain", i)
		c.notePhaseDone(i)
	}
	if written != uint64(c.n) {
		return fmt.Errorf("cluster: drained %d of %d records", written, c.n)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return out.Close()
}

// drainHedge pulls the hedged copy of the victim's sorted shard from the
// target over the dedicated hedge connection, running the same sortedness
// and conservation checks the normal drain does.
func (c *coordinator) drainHedge(hr *hedgeRun, w *bufio.Writer, prev *record.Record, first *bool) (uint64, error) {
	c.hmu.Lock()
	conn, br := hr.conn, hr.br
	c.hmu.Unlock()
	defer conn.Close()
	setOpDeadline(conn, c.spec.Dial)
	if err := writeFrame(conn, mFetch, nil); err != nil {
		return 0, err
	}
	want := c.expectGather[hr.victim]
	var got uint64
	for {
		setOpDeadline(conn, c.spec.Dial)
		typ, payload, err := readFrame(br)
		if err != nil {
			return got, err
		}
		c.net.in(len(payload))
		if typ == mFetchDone {
			var m msgCount
			if derr := m.decode(payload); derr != nil {
				return got, derr
			}
			if m.Count != got || got != want {
				return got, fmt.Errorf("cluster: hedged shard drained %d records, reported %d, expected %d",
					got, m.Count, want)
			}
			return got, nil
		}
		if typ != mRecords {
			return got, fmt.Errorf("cluster: unexpected message %d while draining hedged shard", typ)
		}
		recs, derr := decodeRecords(payload)
		if derr != nil {
			return got, derr
		}
		for _, rec := range recs {
			if !*first && rec.Less(*prev) {
				return got, fmt.Errorf("cluster: output not sorted at hedged shard of worker %d", hr.victim)
			}
			*prev, *first = rec, false
		}
		if _, werr := w.Write(payload); werr != nil {
			return got, werr
		}
		got += uint64(len(recs))
	}
}

// recoverLost is the failover path: snapshot the dead set, check quorum,
// open a new epoch on every survivor, re-stream the dead workers' chunk
// extents round-robin across the survivors, and wait for every survivor to
// acknowledge the reset. The pipeline then reruns from the histogram phase
// — the shards are the only durable state a worker carries, so rewinding
// to post-scatter is a complete recovery from loss at any phase.
func (c *coordinator) recoverLost(ctx context.Context) error {
	t0 := time.Now()
	c.closeHedge() // the epoch bump orphans any in-flight hedge
	sp := c.tr.Begin("cluster", "failover", 0)
	defer func() {
		c.mu.Lock()
		c.rec.FailoverWallNanos += time.Since(t0).Nanoseconds()
		c.mu.Unlock()
	}()

	c.mu.Lock()
	select {
	case <-c.lostSig:
	default:
	}
	dead := make([]int, 0, len(c.deadErr))
	for i := 0; i < c.W; i++ {
		if _, d := c.deadErr[i]; d {
			dead = append(dead, i)
		}
	}
	lastLost := c.lastLost
	c.mu.Unlock()

	survivors := c.W - len(dead)
	quorum := c.W/2 + 1
	if survivors < quorum {
		sp.End()
		return &ClusterDegradedError{
			Lost: dead, Workers: c.W, Quorum: quorum, Err: lastLost,
		}
	}

	activeList := c.active()
	c.mu.Lock()
	c.epoch++
	c.rec.Failovers++
	c.rec.ActiveWorkers = append([]int(nil), activeList...)
	c.mu.Unlock()

	pending, rescatteredRecs, err := c.reseed(nil)
	if err != nil {
		sp.End()
		return err
	}
	c.journal(journalEvent{
		Event: "failover", Epoch: c.epoch, Blocks: pending,
		Extents: append([]uint64(nil), c.perWorker...),
		Assign:  append([]int32(nil), c.assign...),
	})
	sp.End(
		obs.Attr{Key: "epoch", Val: int64(c.epoch)},
		obs.Attr{Key: "rescattered-blocks", Val: int64(pending)},
		obs.Attr{Key: "rescattered-records", Val: int64(rescatteredRecs)},
	)
	return nil
}

// reseed opens the (already bumped) epoch on every active worker and
// re-streams every chunk that no live, shard-intact worker owns. fresh[i]
// marks workers whose shard must be rebuilt from scratch — a joiner, or a
// resumed worker whose parked state did not survive: their announcement
// carries the Fresh flag (truncate before appending) and every chunk they
// own is re-fed to them. Chunks with no live owner are re-dealt
// round-robin across the actives. On an elastic (all-v4) cluster the
// announcement also carries the full peer table, so worker-side
// membership changes atomically with the epoch; on v3 clusters fresh is
// always nil and the wire encoding is unchanged.
func (c *coordinator) reseed(fresh map[int]bool) (pending int, rescatteredRecs uint64, err error) {
	activeList := c.active()
	var peers []string
	if c.elastic {
		peers = append([]string(nil), c.spec.Workers...)
	}
	if c.assign == nil {
		// The interruption predates scatter-done: nothing is known to be
		// delivered, so deal every chunk out as if scattering afresh.
		c.chunks = (c.n + scatterChunk - 1) / scatterChunk
		c.assign = make([]int32, c.chunks)
		for t := range c.assign {
			c.assign[t] = -1
		}
	}

	// Open the epoch on every active worker. The worker's control reader
	// acts on this immediately — canceling its in-flight phase — even if
	// its job loop is deep inside exchange or sort.
	for _, i := range activeList {
		ann := (&msgRescatter{Epoch: c.epoch, Active: toU32(activeList), Fresh: fresh[i], Peers: peers}).encode()
		if err := c.sendTo(i, mRescatter, ann); err != nil {
			return 0, 0, err
		}
	}

	// Re-stream every chunk owned by a dead or fresh worker (or never
	// delivered, if the interruption hit mid-scatter). A fresh-but-live
	// owner keeps its chunks — they are re-fed to it — while ownerless
	// chunks go round-robin across the actives.
	buf := make([]byte, scatterChunk*record.EncodedSize)
	rr := 0
	for t := 0; t < c.chunks; t++ {
		w := int(c.assign[t])
		if c.assign[t] >= 0 && !c.isDead(w) && !fresh[w] {
			continue
		}
		m := scatterChunk
		if (t+1)*scatterChunk > c.n {
			m = c.n - t*scatterChunk
		}
		chunk := buf[:m*record.EncodedSize]
		if _, err := c.in.ReadAt(chunk, int64(t)*scatterChunk*record.EncodedSize); err != nil {
			return 0, 0, fmt.Errorf("cluster: re-reading %s chunk %d: %w", c.inPath, t, err)
		}
		dest := w
		if c.assign[t] < 0 || c.isDead(w) {
			dest = activeList[rr%len(activeList)]
			rr++
		}
		if err := c.sendTo(dest, mRecords, chunk); err != nil {
			return 0, 0, err
		}
		c.assign[t] = int32(dest)
		pending++
		rescatteredRecs += uint64(m)
	}

	// Rebuild the extents from the assignment and tell each active worker
	// its authoritative shard size.
	c.perWorker = make([]uint64, c.W)
	for t, w := range c.assign {
		m := scatterChunk
		if (t+1)*scatterChunk > c.n {
			m = c.n - t*scatterChunk
		}
		c.perWorker[w] += uint64(m)
	}
	for _, i := range activeList {
		done := (&msgRescatterDone{Epoch: c.epoch, Total: c.perWorker[i]}).encode()
		if err := c.sendTo(i, mRescatterDone, done); err != nil {
			return 0, 0, err
		}
	}

	// Wait for every active worker's reset ack, discarding frames the
	// aborted epoch left in flight. TCP ordering makes the first
	// epoch-matching ack a clean cut: everything after it belongs to the
	// new epoch.
	for _, i := range activeList {
		for {
			typ, payload, err := c.recvFrom(i)
			if err != nil {
				return 0, 0, err
			}
			if typ != mRescatterAck {
				continue
			}
			var a msgRescatterAck
			if err := a.decode(payload); err != nil {
				return 0, 0, err
			}
			if a.Epoch != c.epoch {
				continue // ack of an earlier, superseded recovery
			}
			if a.ShardRecs != c.perWorker[i] {
				return 0, 0, fmt.Errorf("cluster: worker %d holds %d records after re-scatter, coordinator expects %d",
					i, a.ShardRecs, c.perWorker[i])
			}
			break
		}
	}

	c.mu.Lock()
	c.handled = len(c.deadErr)
	c.rec.RescatteredBlocks += pending
	c.rec.RescatteredRecords += int(rescatteredRecs)
	c.mu.Unlock()
	c.tr.Count("cluster", "blocks-rescattered", 0, int64(pending))
	return pending, rescatteredRecs, nil
}

// admitJoin dials the scheduled joiner and runs the v4 attach handshake;
// only once the joiner is known good does it commit the membership growth
// — worker W exists from the epoch bump onward, its whole (empty) shard
// streamed to it under the Fresh flag while every incumbent rewinds to the
// same epoch cut. A joiner that cannot be reached or refuses the
// handshake is abandoned: the incumbents are reseeded as-is so the
// interrupted pipeline restarts coherently.
func (c *coordinator) admitJoin(ctx context.Context) error {
	j := c.spec.Join
	sp := c.tr.Begin("cluster", "join", 0)
	id := c.W
	newPeers := append(append([]string(nil), c.spec.Workers...), j.Addr)
	l, aerr := c.attachJoiner(ctx, id, j.Addr, newPeers)

	c.mu.Lock()
	c.epoch++
	epoch := c.epoch
	if aerr == nil {
		// Commit: from here the joiner is a full member and its loss is a
		// failover like any other's.
		c.links = append(c.links, l)
		c.vers = append(c.vers, protocolVersion)
		c.spec.Workers = newPeers
		c.W = id + 1
		c.rec.Joins++
		c.rec.JoinedWorkers = append(c.rec.JoinedWorkers, id)
	}
	c.mu.Unlock()

	var fresh map[int]bool
	if aerr == nil {
		fresh = map[int]bool{id: true}
		c.startMonitor(id)
	}
	activeList := c.active()
	c.mu.Lock()
	c.rec.ActiveWorkers = append([]int(nil), activeList...)
	c.mu.Unlock()

	pending, recs, err := c.reseed(fresh)
	if err != nil {
		sp.End()
		return err
	}
	if aerr == nil {
		c.journal(journalEvent{
			Event: "join", Epoch: epoch, Worker: id, Addr: j.Addr, Blocks: pending,
			Extents: append([]uint64(nil), c.perWorker...),
			Assign:  append([]int32(nil), c.assign...),
		})
		c.tr.Count("cluster", "workers-joined", 0, 1)
	} else {
		c.journal(journalEvent{Event: "join-failed", Epoch: epoch, Addr: j.Addr})
	}
	sp.End(
		obs.Attr{Key: "epoch", Val: int64(epoch)},
		obs.Attr{Key: "worker", Val: int64(id)},
		obs.Attr{Key: "rescattered-records", Val: int64(recs)},
		obs.Attr{Key: "admitted", Val: boolAttr(aerr == nil)},
	)
	return nil
}

// attachJoiner performs the joiner's dial + mJoin handshake without
// touching any membership state; the caller commits on success.
func (c *coordinator) attachJoiner(ctx context.Context, id int, addr string, newPeers []string) (*link, error) {
	conn, err := c.spec.Dial.dial(ctx, id, addr)
	if err != nil {
		return nil, err
	}
	l := newLink(id, conn, c.spec.Dial, c.net)
	drop := func() {
		conn.Close()
		close(l.done)
	}
	var flags uint32
	if c.tr != nil {
		flags |= helloFlagTrace
	}
	a := msgAttach{
		Version: protocolVersion, JobID: c.jobID,
		Worker: uint32(id), Workers: uint32(id + 1),
		S: uint32(c.S), BlockRecs: uint32(c.spec.BlockRecs),
		Flags: flags, Epoch: c.epoch + 1, Peers: newPeers,
	}
	if err := l.send(mJoin, a.encode()); err != nil {
		drop()
		return nil, err
	}
	payload, err := c.expectHandshakeOn(l, mHelloAck)
	if err != nil {
		drop()
		return nil, err
	}
	var v msgVersion
	if err := v.decode(payload); err != nil {
		drop()
		return nil, err
	}
	if v.Version < 4 {
		drop()
		return nil, fmt.Errorf("cluster: joiner %s speaks protocol %d, join needs 4", addr, v.Version)
	}
	return l, nil
}

// flowOut drops the outbound half of a coordinator->worker causality edge
// right after the phase-triggering message leaves; the worker drops the
// matching inbound half when it acts on it. Both ends derive the same flow
// id from (phase, epoch, worker), so the edge binds in the merged trace
// without shipping ids.
func (c *coordinator) flowOut(phase string, worker int) {
	c.tr.FlowPoint("cluster", "flow-"+phase, worker, flowID(phase, c.epoch, worker), true)
}

func boolAttr(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// startMonitors launches one heartbeat goroutine per worker. Monitors are
// the only detector that can see a hung-but-connected worker.
func (c *coordinator) startMonitors(ctx context.Context) {
	if !c.failover || c.spec.Heartbeat.Disable {
		return
	}
	mctx, cancel := context.WithCancel(ctx)
	c.monCtx, c.monCancel = mctx, cancel
	for i := 0; i < c.W; i++ {
		c.startMonitor(i)
	}
}

// startMonitor adds a heartbeat monitor for one worker — used at startup
// and when a join grows the membership mid-job.
func (c *coordinator) startMonitor(i int) {
	if c.monCtx == nil || c.monCtx.Err() != nil || c.isDead(i) {
		return
	}
	c.monWG.Add(1)
	go c.monitor(c.monCtx, i)
}

func (c *coordinator) monitor(ctx context.Context, i int) {
	defer c.monWG.Done()
	hb := c.spec.Heartbeat
	conn, err := c.spec.Dial.dial(ctx, i, c.addr(i))
	if err != nil {
		if ctx.Err() == nil {
			c.lostAsync(i, fmt.Errorf("cluster: heartbeat dial: %w", err))
		}
		return
	}
	defer conn.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-stop:
		}
	}()
	setOpDeadline(conn, c.spec.Dial)
	if err := writeFrame(conn, mMonHello, (&msgMonHello{JobID: c.jobID}).encode()); err != nil {
		if ctx.Err() == nil {
			c.lostAsync(i, err)
		}
		return
	}
	br := bufio.NewReaderSize(conn, 1<<12)
	misses := 0
	for seq := uint64(1); ; seq++ {
		setOpDeadline(conn, c.spec.Dial)
		if err := writeFrame(conn, mPing, (&msgPing{Seq: seq}).encode()); err != nil {
			if ctx.Err() == nil {
				c.lostAsync(i, err)
			}
			return
		}
		_ = conn.SetReadDeadline(time.Now().Add(hb.Interval))
		typ, payload, err := readFrame(br)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				// A miss. A later pong still counts — the next read will
				// find it buffered and clear the counter (flap, not death).
				misses++
				if misses > hb.MissBudget {
					c.lostAsync(i, fmt.Errorf("cluster: heartbeat: %d consecutive pongs missed at %v interval",
						misses, hb.Interval))
					return
				}
				continue
			}
			c.lostAsync(i, err)
			return
		}
		if typ == mPong {
			misses = 0
			// v6 pongs carry a progress trailer; older ones decode with
			// Have == false and feed the detector nothing.
			var pg msgProgress
			if pg.decode(payload) == nil && pg.Have {
				c.noteProgress(i, pg)
			}
		}
		if sleepCtx(ctx, hb.Interval) != nil {
			return
		}
	}
}

// collectTrace requests worker i's recorded spans and merges them into the
// job tracer, rebasing the worker tracer's epoch (shipped as wall-clock
// UnixNano) onto the coordinator's. Wall clocks are only used for the epoch
// shift — span offsets themselves are monotonic — so cross-machine skew
// displaces a worker's track but never distorts durations.
func (c *coordinator) collectTrace(i int) error {
	if err := c.sendTo(i, mTraceReq, nil); err != nil {
		return err
	}
	coordEpoch := c.tr.Epoch().UnixNano()
	for {
		typ, payload, err := c.recvFrom(i)
		if err != nil {
			return err
		}
		switch typ {
		case mTrace:
			var m msgTrace
			if err := m.decode(payload); err != nil {
				return err
			}
			shift := time.Duration(int64(m.EpochNanos) - coordEpoch)
			c.tr.Merge(m.Spans, shift, i+1)
		case mTraceDone:
			return nil
		case mSortDone:
			// Hedge debris: the victim's own finish, beaten to the barrier
			// by the hedge after the cancel was already in flight.
		default:
			return fmt.Errorf("cluster: unexpected message %d during trace collection", typ)
		}
	}
}

// journalEvent is one checksummed line of the coordinator's recovery
// journal. Beyond the failover bookkeeping (phase progress, per-worker
// partition extents, losses), it now carries everything a restarted
// coordinator needs to resume the job: the job identity ("start"), the
// per-chunk ownership map (Assign, on "scatter-done"/"failover"/"join"/
// "reseed"), the committed pivot set and histogram digest ("pivots"),
// per-worker phase completions ("wdone"), membership growth ("join"), and
// the terminal "done".
type journalEvent struct {
	Event   string   `json:"event"` // "start" | "phase" | "scatter-done" | "pivots" | "wdone" | "lost" | "straggler" | "hedge" | "failover" | "join" | "join-failed" | "resume" | "reseed" | "done"
	Epoch   uint32   `json:"epoch"`
	Phase   string   `json:"phase,omitempty"`
	Worker  int      `json:"worker,omitempty"`
	Extents []uint64 `json:"extents,omitempty"` // per-worker shard records
	Blocks  int      `json:"blocks,omitempty"`  // chunks re-scattered

	JobID     uint64   `json:"job_id,omitempty"`
	Addrs     []string `json:"addrs,omitempty"` // membership at "start"
	Addr      string   `json:"addr,omitempty"`  // the joiner's address
	S         int      `json:"s,omitempty"`
	BlockRecs int      `json:"block_recs,omitempty"`
	Records   int      `json:"records,omitempty"`
	Assign    []int32  `json:"assign,omitempty"` // chunk -> owning worker
	Pivots    []uint64 `json:"pivots,omitempty"`
	Digest    uint64   `json:"digest,omitempty"` // merged-histogram digest
}

// journalWDone marks worker i's completion of a pipeline phase, so a
// resumed coordinator can report how far the job had provably gotten.
func (c *coordinator) journalWDone(phase string, i int) {
	c.journal(journalEvent{Event: "wdone", Epoch: c.epoch, Phase: phase, Worker: i})
}

func (c *coordinator) journal(ev journalEvent) {
	if c.jr == nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		return
	}
	c.jmu.Lock()
	_, _ = c.jr.Append(b)
	c.jmu.Unlock()
}

// phaseErr wraps a phase-scoped error, passing the failover sentinel (and
// context errors) through untouched so the recovery loop can see them.
func phaseErr(what string, worker int, err error) error {
	if errors.Is(err, errFailover) {
		return err
	}
	return fmt.Errorf("cluster: %s %d: %w", what, worker, err)
}

func toU32(xs []int) []uint32 {
	out := make([]uint32, len(xs))
	for i, x := range xs {
		out[i] = uint32(x)
	}
	return out
}

// pickPivots chooses the S-1 bucket pivots from the merged histogram: the
// b-th pivot is the start key of the first bin at which the cumulative
// count reaches a b/S share of the input. The choice is a pure function of
// the histogram — deterministic, no sampling.
func pickPivots(bins []uint64, n uint64, s int) []uint64 {
	piv := make([]uint64, 0, s-1)
	var cum uint64
	b := 1
	for i := 0; i < len(bins) && b < s; i++ {
		cum += bins[i]
		for b < s && cum*uint64(s) >= uint64(b)*n {
			piv = append(piv, binStart(i+1))
			b++
		}
	}
	for len(piv) < s-1 {
		piv = append(piv, ^uint64(0))
	}
	return piv
}

// assignOwners maps buckets to workers in contiguous ascending runs whose
// record volumes are as even as the bucket granularity allows.
func assignOwners(totals []uint64, workers int) []uint32 {
	owners := make([]uint32, len(totals))
	var grand uint64
	for _, t := range totals {
		grand += t
	}
	w := 0
	var acc uint64
	for b := range totals {
		owners[b] = uint32(w)
		acc += totals[b]
		if w < workers-1 && acc*uint64(workers) >= grand*uint64(w+1) {
			w++
		}
	}
	return owners
}

// readFull is io.ReadFull without the package import dance in callers.
func readFull(r *bufio.Reader, p []byte) (int, error) {
	n := 0
	for n < len(p) {
		m, err := r.Read(p[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
