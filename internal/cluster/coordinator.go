package cluster

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"os"
	"time"

	"balancesort/internal/balance"
	"balancesort/internal/obs"
	"balancesort/internal/record"
)

// SortSpec parameterizes one coordinator-driven cluster sort.
type SortSpec struct {
	// Workers are the worker addresses to dial, in worker-ID order.
	Workers []string
	// Buckets is S, the number of key-range buckets the exchange
	// distributes into. Default 4·W (at least the paper's H', with slack
	// so the owner assignment can balance shard sizes).
	Buckets int
	// BlockRecs is the exchange block size in records. Default 2048.
	BlockRecs int
	// Dial tunes connection retry/backoff and per-op timeouts.
	Dial DialConfig
	// Trace, when non-nil, records a span per coordinator phase (see
	// CoordinatorPhases) and asks every worker — via the Hello trace flag —
	// to record its own phase spans and ship them back after the drain.
	// Worker spans are rebased onto this tracer's epoch and merged, so
	// Trace ends up holding the whole job's timeline: node 0 is the
	// coordinator, node w+1 is worker w.
	Trace *obs.Tracer
}

// CoordinatorPhases are the span names the coordinator records under the
// "cluster" layer, in phase order.
var CoordinatorPhases = []string{
	"scatter", "histogram-merge", "plan", "exchange", "gather", "local-sort", "drain",
}

// WorkerPhases are the span names each worker records under the "cluster"
// layer, in phase order.
var WorkerPhases = []string{
	"scatter-recv", "histogram", "partition-counts", "exchange", "gather", "shard-sort", "drain",
}

// scatterChunk is the record count of one scatter/drain frame.
const scatterChunk = 4096

func (s SortSpec) withDefaults() (SortSpec, error) {
	w := len(s.Workers)
	if w < 1 {
		return s, fmt.Errorf("cluster: no workers")
	}
	if w > maxWorkers {
		return s, fmt.Errorf("cluster: %d workers exceeds the %d limit", w, maxWorkers)
	}
	if s.Buckets == 0 {
		s.Buckets = 4 * w
	}
	if s.Buckets < 1 {
		return s, fmt.Errorf("cluster: Buckets = %d", s.Buckets)
	}
	if s.BlockRecs == 0 {
		s.BlockRecs = 2048
	}
	if s.BlockRecs < 1 {
		return s, fmt.Errorf("cluster: BlockRecs = %d", s.BlockRecs)
	}
	if s.BlockRecs*record.EncodedSize+64 > MaxFramePayload {
		return s, fmt.Errorf("cluster: BlockRecs = %d does not fit a frame", s.BlockRecs)
	}
	s.Dial = s.Dial.withDefaults()
	return s, nil
}

// SortStats reports what a completed cluster sort moved and how evenly the
// balancer spread it.
type SortStats struct {
	Records int `json:"records"` // records sorted
	Workers int `json:"workers"` // cluster width W
	Buckets int `json:"buckets"` // S

	// ExchangeBlocks is the total block count of the placement exchange;
	// RecvBlocks[h] is how many of them worker h received (the column sums
	// of X). X[b][h] is the full histogram matrix — blocks of bucket b
	// placed on worker h — on which Invariant 2 (x_bh <= m_b + 1) holds.
	ExchangeBlocks int     `json:"exchange_blocks"`
	RecvBlocks     []int   `json:"recv_blocks"`
	X              [][]int `json:"x,omitempty"`

	// GatherRecords[h] is the shard size worker h locally sorted.
	GatherRecords []int `json:"gather_records"`
}

// link is one framed coordinator<->worker control connection.
type link struct {
	conn net.Conn
	br   *bufio.Reader
	cfg  DialConfig
}

func newLink(conn net.Conn, cfg DialConfig) *link {
	return &link{conn: conn, br: bufio.NewReaderSize(conn, 1<<16), cfg: cfg}
}

func (l *link) send(typ byte, payload []byte) error {
	setOpDeadline(l.conn, l.cfg)
	return writeFrame(l.conn, typ, payload)
}

// recv reads the next frame. With slow set the read blocks without a
// deadline — used across phase barriers, where a healthy worker may
// legitimately take a long time; a dead worker's connection still errors
// out of the read.
func (l *link) recv(slow bool) (byte, []byte, error) {
	if slow {
		clearDeadline(l.conn)
	} else {
		setOpDeadline(l.conn, l.cfg)
	}
	return readFrame(l.br)
}

// expect reads the next frame and requires it to be of type want,
// converting a worker-reported mError into its typed Go error.
func (l *link) expect(want byte, slow bool) ([]byte, error) {
	typ, payload, err := l.recv(slow)
	if err != nil {
		return nil, err
	}
	if typ == mError {
		var e msgError
		if derr := e.decode(payload); derr != nil {
			return nil, derr
		}
		return nil, wireToError(&e)
	}
	if typ != want {
		return nil, fmt.Errorf("cluster: expected message %d, got %d", want, typ)
	}
	return payload, nil
}

// Sort externally sorts inPath into outPath across the cluster: it scatters
// the input over the workers, runs the histogram/pivot, balanced-exchange,
// gather, and local-sort phases, and drains the sorted shards in key order.
// The output is byte-identical to a single-process SortFile of the same
// input because both produce the unique nondecreasing arrangement of the
// record multiset under the strict (Key, Loc) order.
func Sort(ctx context.Context, inPath, outPath string, spec SortSpec) (stats *SortStats, err error) {
	spec, err = spec.withDefaults()
	if err != nil {
		return nil, err
	}
	W := len(spec.Workers)
	S := spec.Buckets

	in, err := os.Open(inPath)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	st, err := in.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size()%record.EncodedSize != 0 {
		return nil, fmt.Errorf("cluster: %s is %d bytes, not a whole number of %d-byte records",
			inPath, st.Size(), record.EncodedSize)
	}
	n := int(st.Size() / record.EncodedSize)

	// Dial every worker up front; a worker that cannot be reached at all
	// fails the job fast with a typed *WorkerLostError.
	links := make([]*link, W)
	defer func() {
		for _, l := range links {
			if l != nil {
				l.conn.Close()
			}
		}
	}()
	for i, addr := range spec.Workers {
		conn, derr := spec.Dial.dial(ctx, i, addr)
		if derr != nil {
			return nil, fmt.Errorf("cluster: dialing worker %d: %w", i, derr)
		}
		links[i] = newLink(conn, spec.Dial)
	}

	// A canceled context tears the connections down so no phase can block
	// past it.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			for _, l := range links {
				l.conn.Close()
			}
		case <-watchDone:
		}
	}()

	tr := spec.Trace
	var flags uint32
	if tr != nil {
		flags |= helloFlagTrace
	}
	jobID := uint64(time.Now().UnixNano())
	for i, l := range links {
		h := msgHello{
			Version: protocolVersion, JobID: jobID,
			Worker: uint32(i), Workers: uint32(W),
			S: uint32(S), BlockRecs: uint32(spec.BlockRecs),
			Flags: flags,
			Peers: spec.Workers,
		}
		if err := l.send(mHello, h.encode()); err != nil {
			return nil, fmt.Errorf("cluster: hello to worker %d: %w", i, err)
		}
		if _, err := l.expect(mHelloAck, false); err != nil {
			return nil, fmt.Errorf("cluster: worker %d handshake: %w", i, err)
		}
	}

	// Scatter: stream the input round-robin, one chunk per frame.
	spScatter := tr.Begin("cluster", "scatter", 0)
	perWorker := make([]uint64, W)
	buf := make([]byte, scatterChunk*record.EncodedSize)
	r := bufio.NewReaderSize(in, 1<<16)
	for pos, turn := 0, 0; pos < n; turn++ {
		m := scatterChunk
		if pos+m > n {
			m = n - pos
		}
		chunk := buf[:m*record.EncodedSize]
		if _, err := readFull(r, chunk); err != nil {
			return nil, fmt.Errorf("cluster: reading %s at record %d: %w", inPath, pos, err)
		}
		w := turn % W
		if err := links[w].send(mRecords, chunk); err != nil {
			return nil, fmt.Errorf("cluster: scattering to worker %d: %w", w, err)
		}
		perWorker[w] += uint64(m)
		pos += m
	}
	for i, l := range links {
		if err := l.send(mScatterDone, (&msgCount{Count: perWorker[i]}).encode()); err != nil {
			return nil, fmt.Errorf("cluster: finishing scatter to worker %d: %w", i, err)
		}
	}
	spScatter.End(obs.Attr{Key: "records", Val: int64(n)}, obs.Attr{Key: "workers", Val: int64(W)})

	// Histograms -> deterministic pivots.
	spHist := tr.Begin("cluster", "histogram-merge", 0)
	merged := make([]uint64, histBins)
	for i, l := range links {
		payload, err := l.expect(mHistogram, true)
		if err != nil {
			return nil, fmt.Errorf("cluster: histogram from worker %d: %w", i, err)
		}
		var h msgHistogram
		if err := h.decode(payload); err != nil {
			return nil, err
		}
		for b, v := range h.Bins {
			merged[b] += v
		}
	}
	pivots := pickPivots(merged, uint64(n), S)
	pv := (&msgPivots{Pivots: pivots}).encode()
	for i, l := range links {
		if err := l.send(mPivots, pv); err != nil {
			return nil, fmt.Errorf("cluster: pivots to worker %d: %w", i, err)
		}
	}
	spHist.End(obs.Attr{Key: "pivots", Val: int64(len(pivots))})

	spPlan := tr.Begin("cluster", "plan", 0)

	// Per-bucket record counts from every worker.
	counts := make([][]uint64, W)
	for i, l := range links {
		payload, err := l.expect(mCounts, true)
		if err != nil {
			return nil, fmt.Errorf("cluster: counts from worker %d: %w", i, err)
		}
		var c msgCounts
		if err := c.decode(payload); err != nil {
			return nil, err
		}
		if len(c.PerBucket) != S {
			return nil, fmt.Errorf("cluster: worker %d counted %d buckets, want %d", i, len(c.PerBucket), S)
		}
		var total uint64
		for _, v := range c.PerBucket {
			total += v
		}
		if total != perWorker[i] {
			return nil, fmt.Errorf("cluster: worker %d partitioned %d of %d records", i, total, perWorker[i])
		}
		counts[i] = c.PerBucket
	}

	// Balance-Sort placement: enumerate every block each worker will form
	// (bucket-major per worker), interleave across workers so each
	// placement track holds at most one block per worker — the cluster
	// analogue of "one block formed per processor per step" — and let the
	// histogram/auxiliary-matrix machinery pick destinations.
	type blockRef struct {
		worker int
		bucket int
		seq    int
	}
	blocksOf := make([][]blockRef, W)
	for w := 0; w < W; w++ {
		for b := 0; b < S; b++ {
			nb := int((counts[w][b] + uint64(spec.BlockRecs) - 1) / uint64(spec.BlockRecs))
			for seq := 0; seq < nb; seq++ {
				blocksOf[w] = append(blocksOf[w], blockRef{worker: w, bucket: b, seq: seq})
			}
		}
	}
	var stream []blockRef
	for t := 0; ; t++ {
		any := false
		for w := 0; w < W; w++ {
			if t < len(blocksOf[w]) {
				stream = append(stream, blocksOf[w][t])
				any = true
			}
		}
		if !any {
			break
		}
	}
	labels := make([]int, len(stream))
	for i, ref := range stream {
		labels[i] = ref.bucket
	}
	bl := balance.New(balance.Config{S: S, H: W})
	dests := bl.PlaceStream(labels)
	if err := bl.CheckInvariant2(); err != nil {
		return nil, fmt.Errorf("cluster: placement broke the balance bound: %w", err)
	}

	planDests := make([][][]uint32, W) // [worker][bucket][seq]
	for w := 0; w < W; w++ {
		planDests[w] = make([][]uint32, S)
		for b := 0; b < S; b++ {
			nb := int((counts[w][b] + uint64(spec.BlockRecs) - 1) / uint64(spec.BlockRecs))
			planDests[w][b] = make([]uint32, nb)
		}
	}
	expectRecv := make([]uint64, W)
	for i, ref := range stream {
		planDests[ref.worker][ref.bucket][ref.seq] = uint32(dests[i])
		expectRecv[dests[i]]++
	}

	// Bucket ownership: contiguous runs of buckets per worker, balanced by
	// record volume, so each worker's final shard is one key range and the
	// drain in worker order is the global key order.
	bucketTotal := make([]uint64, S)
	for w := 0; w < W; w++ {
		for b := 0; b < S; b++ {
			bucketTotal[b] += counts[w][b]
		}
	}
	owners := assignOwners(bucketTotal, W)
	expectGather := make([]uint64, W)
	for b, o := range owners {
		expectGather[o] += bucketTotal[b]
	}

	for i, l := range links {
		p := msgPlan{
			Dests:            planDests[i],
			ExpectRecvBlocks: expectRecv[i],
			Owners:           owners,
			ExpectGatherRecs: expectGather[i],
		}
		if err := l.send(mPlan, p.encode()); err != nil {
			return nil, fmt.Errorf("cluster: plan to worker %d: %w", i, err)
		}
	}
	spPlan.End(obs.Attr{Key: "blocks", Val: int64(len(stream))}, obs.Attr{Key: "buckets", Val: int64(S)})

	// Exchange barrier: every worker has sent its blocks (all acked) and
	// received exactly what the plan promised it.
	spExchange := tr.Begin("cluster", "exchange", 0)
	for i, l := range links {
		payload, err := l.expect(mPhaseDone, true)
		if err != nil {
			return nil, fmt.Errorf("cluster: exchange on worker %d: %w", i, err)
		}
		var d msgPhaseDone
		if err := d.decode(payload); err != nil {
			return nil, err
		}
		if d.Phase != 1 || d.BlocksRecv != expectRecv[i] {
			return nil, fmt.Errorf("cluster: worker %d finished exchange with %d of %d blocks",
				i, d.BlocksRecv, expectRecv[i])
		}
	}
	spExchange.End(obs.Attr{Key: "blocks", Val: int64(len(stream))})
	spGather := tr.Begin("cluster", "gather", 0)
	for i, l := range links {
		if err := l.send(mStartGather, nil); err != nil {
			return nil, fmt.Errorf("cluster: starting gather on worker %d: %w", i, err)
		}
	}
	for i, l := range links {
		payload, err := l.expect(mPhaseDone, true)
		if err != nil {
			return nil, fmt.Errorf("cluster: gather on worker %d: %w", i, err)
		}
		var d msgPhaseDone
		if err := d.decode(payload); err != nil {
			return nil, err
		}
		if d.Phase != 2 || d.RecsRecv != expectGather[i] {
			return nil, fmt.Errorf("cluster: worker %d gathered %d of %d records",
				i, d.RecsRecv, expectGather[i])
		}
	}
	spGather.End()

	// Local sorts.
	spSort := tr.Begin("cluster", "local-sort", 0)
	for i, l := range links {
		if err := l.send(mSortReq, nil); err != nil {
			return nil, fmt.Errorf("cluster: sort request to worker %d: %w", i, err)
		}
	}
	for i, l := range links {
		payload, err := l.expect(mSortDone, true)
		if err != nil {
			return nil, fmt.Errorf("cluster: local sort on worker %d: %w", i, err)
		}
		var c msgCount
		if err := c.decode(payload); err != nil {
			return nil, err
		}
		if c.Count != expectGather[i] {
			return nil, fmt.Errorf("cluster: worker %d sorted %d of %d records", i, c.Count, expectGather[i])
		}
	}
	spSort.End()

	// Drain shards in owner order, verifying global sortedness and record
	// conservation while streaming, exactly like the single-process path.
	spDrain := tr.Begin("cluster", "drain", 0)
	if err := drainShards(links, outPath, n, expectGather); err != nil {
		return nil, err
	}
	spDrain.End(obs.Attr{Key: "records", Val: int64(n)})

	// Collect worker traces and merge them into the job timeline before
	// saying goodbye: node 0 is the coordinator, node w+1 is worker w.
	if tr != nil {
		for i, l := range links {
			if err := collectTrace(l, tr, i); err != nil {
				return nil, fmt.Errorf("cluster: trace from worker %d: %w", i, err)
			}
		}
	}

	for _, l := range links {
		_ = l.send(mBye, nil) // best effort: workers also reset on conn close
	}

	stats = &SortStats{
		Records:        n,
		Workers:        W,
		Buckets:        S,
		ExchangeBlocks: len(stream),
		X:              bl.Histogram(),
		GatherRecords:  make([]int, W),
		RecvBlocks:     make([]int, W),
	}
	for w := 0; w < W; w++ {
		stats.RecvBlocks[w] = int(expectRecv[w])
		stats.GatherRecords[w] = int(expectGather[w])
	}
	return stats, nil
}

// collectTrace requests worker w's recorded spans and merges them into tr,
// rebasing the worker tracer's epoch (shipped as wall-clock UnixNano) onto
// the coordinator's. Wall clocks are only used for the epoch shift — span
// offsets themselves are monotonic — so cross-machine skew displaces a
// worker's track but never distorts durations.
func collectTrace(l *link, tr *obs.Tracer, w int) error {
	if err := l.send(mTraceReq, nil); err != nil {
		return err
	}
	coordEpoch := tr.Epoch().UnixNano()
	for {
		typ, payload, err := l.recv(true)
		if err != nil {
			return err
		}
		switch typ {
		case mTrace:
			var m msgTrace
			if err := m.decode(payload); err != nil {
				return err
			}
			shift := time.Duration(int64(m.EpochNanos) - coordEpoch)
			tr.Merge(m.Spans, shift, w+1)
		case mTraceDone:
			return nil
		case mError:
			var e msgError
			if derr := e.decode(payload); derr != nil {
				return derr
			}
			return wireToError(&e)
		default:
			return fmt.Errorf("cluster: unexpected message %d during trace collection", typ)
		}
	}
}

// drainShards pulls every worker's sorted shard in order into outPath,
// leaving no partial output behind on failure.
func drainShards(links []*link, outPath string, n int, expect []uint64) (err error) {
	out, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			out.Close()
			os.Remove(outPath)
		}
	}()
	w := bufio.NewWriterSize(out, 1<<16)
	var prev record.Record
	first := true
	written := uint64(0)
	for i, l := range links {
		if err := l.send(mFetch, nil); err != nil {
			return fmt.Errorf("cluster: fetch from worker %d: %w", i, err)
		}
		var got uint64
		for {
			typ, payload, rerr := l.recv(true)
			if rerr != nil {
				return fmt.Errorf("cluster: draining worker %d: %w", i, rerr)
			}
			if typ == mError {
				var e msgError
				if derr := e.decode(payload); derr != nil {
					return derr
				}
				return wireToError(&e)
			}
			if typ == mFetchDone {
				var c msgCount
				if derr := c.decode(payload); derr != nil {
					return derr
				}
				if c.Count != got || got != expect[i] {
					return fmt.Errorf("cluster: worker %d drained %d records, reported %d, expected %d",
						i, got, c.Count, expect[i])
				}
				break
			}
			if typ != mRecords {
				return fmt.Errorf("cluster: unexpected message %d while draining worker %d", typ, i)
			}
			recs, derr := decodeRecords(payload)
			if derr != nil {
				return derr
			}
			for _, rec := range recs {
				if !first && rec.Less(prev) {
					return fmt.Errorf("cluster: output not sorted at worker %d shard", i)
				}
				prev, first = rec, false
			}
			if _, werr := w.Write(payload); werr != nil {
				return werr
			}
			got += uint64(len(recs))
		}
	}
	for _, e := range expect {
		written += e
	}
	if written != uint64(n) {
		return fmt.Errorf("cluster: drained %d of %d records", written, n)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return out.Close()
}

// pickPivots chooses the S-1 bucket pivots from the merged histogram: the
// b-th pivot is the start key of the first bin at which the cumulative
// count reaches a b/S share of the input. The choice is a pure function of
// the histogram — deterministic, no sampling.
func pickPivots(bins []uint64, n uint64, s int) []uint64 {
	piv := make([]uint64, 0, s-1)
	var cum uint64
	b := 1
	for i := 0; i < len(bins) && b < s; i++ {
		cum += bins[i]
		for b < s && cum*uint64(s) >= uint64(b)*n {
			piv = append(piv, binStart(i+1))
			b++
		}
	}
	for len(piv) < s-1 {
		piv = append(piv, ^uint64(0))
	}
	return piv
}

// assignOwners maps buckets to workers in contiguous ascending runs whose
// record volumes are as even as the bucket granularity allows.
func assignOwners(totals []uint64, workers int) []uint32 {
	owners := make([]uint32, len(totals))
	var grand uint64
	for _, t := range totals {
		grand += t
	}
	w := 0
	var acc uint64
	for b := range totals {
		owners[b] = uint32(w)
		acc += totals[b]
		if w < workers-1 && acc*uint64(workers) >= grand*uint64(w+1) {
			w++
		}
	}
	return owners
}

// readFull is io.ReadFull without the package import dance in callers.
func readFull(r *bufio.Reader, p []byte) (int, error) {
	n := 0
	for n < len(p) {
		m, err := r.Read(p[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
