// Package cluster is the shared-nothing runtime that turns the repository's
// single-process Balance Sort into a coordinator/worker distributed system
// over TCP. The coordinator runs the Balance Sort distribution logic — it
// gathers per-worker key histograms, picks the S bucket pivots
// deterministically, and drives an all-to-all bucket exchange whose
// per-worker placement is decided by the internal/balance histogram and
// auxiliary-matrix machinery, so every exchange round's receive volume obeys
// the paper's x_bh <= m_b + 1 bound (Invariant 2). Each worker then sorts
// its final shard locally with whatever local sorter the embedder wires in
// (the repository wires the file-backed SortFile path), and the coordinator
// drains the shards in key order into the output file.
//
// The wire protocol is length-prefixed, CRC-framed binary: every frame is
//
//	uint32 LE  payload length n      (bounded by MaxFramePayload)
//	byte       message type
//	n bytes    payload
//	uint32 LE  CRC32C over type byte + payload
//
// The decoder validates the length bound before allocating, verifies the
// checksum before handing the payload up, and never panics on hostile
// input — FuzzFrame holds it to that.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// MaxFramePayload bounds a single frame's payload. It must accommodate the
// largest message (a histogram or a full exchange block) with room to
// spare; anything larger on the wire is a protocol violation, not a reason
// to allocate.
const MaxFramePayload = 1 << 21 // 2 MiB

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Framing error values. ErrFrameTooLarge and ErrFrameChecksum identify the
// two hostile-input failure modes distinctly so tests (and peers) can tell
// a resource-exhaustion attempt from corruption.
var (
	ErrFrameTooLarge = errors.New("cluster: frame exceeds MaxFramePayload")
	ErrFrameChecksum = errors.New("cluster: frame checksum mismatch")
)

// frameOverhead is the non-payload byte count of a frame: the length
// prefix, the type byte, and the trailing CRC.
const frameOverhead = 4 + 1 + 4

// appendFrame appends the encoded frame for (typ, payload) to dst and
// returns the extended slice.
func appendFrame(dst []byte, typ byte, payload []byte) []byte {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	hdr[4] = typ
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	sum := crc32.Checksum([]byte{typ}, castagnoli)
	sum = crc32.Update(sum, castagnoli, payload)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], sum)
	return append(dst, tail[:]...)
}

// writeFrame writes one frame to w.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return ErrFrameTooLarge
	}
	buf := make([]byte, 0, len(payload)+frameOverhead)
	_, err := w.Write(appendFrame(buf, typ, payload))
	return err
}

// readFrame reads one frame from r. The returned payload is freshly
// allocated (bounded by MaxFramePayload before allocation, so a hostile
// length prefix cannot balloon memory).
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > MaxFramePayload {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	typ = hdr[4]
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return 0, nil, err
	}
	sum := crc32.Checksum([]byte{typ}, castagnoli)
	sum = crc32.Update(sum, castagnoli, payload)
	if got := binary.LittleEndian.Uint32(tail[:]); got != sum {
		return 0, nil, fmt.Errorf("%w: frame says %08x, bytes hash to %08x", ErrFrameChecksum, got, sum)
	}
	return typ, payload, nil
}
