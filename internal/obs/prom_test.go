package obs

import (
	"bufio"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$`)
	labelRe      = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// parsePromText validates text in the Prometheus exposition format and
// returns sample-name -> count. It checks HELP/TYPE headers, sample line
// syntax, label syntax, parseable values, and — for histograms — that
// bucket counts are cumulative, end in +Inf, and match _count.
func parsePromText(t *testing.T, text string) map[string]int {
	t.Helper()
	samples := map[string]int{}
	types := map[string]string{}
	type bucketKey struct{ series string }
	lastCum := map[string]float64{}
	infSeen := map[string]float64{}
	counts := map[string]float64{}
	_ = bucketKey{}

	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 3 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				t.Fatalf("bad comment line: %q", line)
			}
			if !metricNameRe.MatchString(parts[2]) {
				t.Fatalf("bad metric name in comment: %q", line)
			}
			if parts[1] == "TYPE" {
				if len(parts) != 4 {
					t.Fatalf("bad TYPE line: %q", line)
				}
				switch parts[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					t.Fatalf("bad TYPE %q", parts[3])
				}
				types[parts[2]] = parts[3]
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("bad sample line: %q", line)
		}
		name, labels, valStr := m[1], m[3], m[4]
		var le string
		var seriesLabels []string
		if labels != "" {
			for _, pair := range splitLabels(labels) {
				lm := labelRe.FindStringSubmatch(pair)
				if lm == nil {
					t.Fatalf("bad label pair %q in %q", pair, line)
				}
				if lm[1] == "le" {
					le = lm[2]
				} else {
					seriesLabels = append(seriesLabels, pair)
				}
			}
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		samples[name]++

		series := strings.Join(seriesLabels, ",")
		switch {
		case strings.HasSuffix(name, "_bucket"):
			key := strings.TrimSuffix(name, "_bucket") + "|" + series
			if val < lastCum[key] {
				t.Fatalf("non-cumulative bucket in %q: %v < %v", line, val, lastCum[key])
			}
			lastCum[key] = val
			if le == "+Inf" {
				infSeen[key] = val
			} else if _, err := strconv.ParseFloat(le, 64); err != nil {
				t.Fatalf("bad le %q in %q", le, line)
			}
		case strings.HasSuffix(name, "_count"):
			counts[strings.TrimSuffix(name, "_count")+"|"+series] = val
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for key, c := range counts {
		if inf, ok := infSeen[key]; ok {
			if math.Abs(inf-c) > 1e-9 {
				t.Fatalf("histogram %s: +Inf bucket %v != _count %v", key, inf, c)
			}
		}
	}
	for key := range lastCum {
		if _, ok := infSeen[key]; !ok {
			t.Fatalf("histogram %s has buckets but no +Inf bucket", key)
		}
	}
	return samples
}

// splitLabels splits a label body on commas not inside quoted values.
func splitLabels(s string) []string {
	var out []string
	var cur strings.Builder
	inQ := false
	esc := false
	for _, r := range s {
		switch {
		case esc:
			esc = false
			cur.WriteRune(r)
		case r == '\\':
			esc = true
			cur.WriteRune(r)
		case r == '"':
			inQ = !inQ
			cur.WriteRune(r)
		case r == ',' && !inQ:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

func TestWriteMetricsFormat(t *testing.T) {
	var b strings.Builder
	err := WriteMetrics(&b, []Metric{
		{Name: "x_total", Type: "counter", Help: "An x.", Labels: []Label{{"disk", "0"}}, Value: 3},
		{Name: "x_total", Type: "counter", Help: "An x.", Labels: []Label{{"disk", "1"}}, Value: 4},
		{Name: "y", Type: "gauge", Help: `Quote " and \ and newline`, Value: 1.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	samples := parsePromText(t, out)
	if samples["x_total"] != 2 || samples["y"] != 1 {
		t.Fatalf("samples = %v\n%s", samples, out)
	}
	if strings.Count(out, "# TYPE x_total counter") != 1 {
		t.Fatalf("TYPE header not emitted exactly once:\n%s", out)
	}
}

func TestWritePhaseHistogramsFormat(t *testing.T) {
	tr := New(64, nil)
	for i := 0; i < 5; i++ {
		tr.Begin("cluster", "exchange", 0).End()
	}
	tr.Merge([]Span{{Layer: "sort", Name: "base-case", Dur: 3 * time.Millisecond}}, 0, 1)
	var b strings.Builder
	if err := WritePhaseHistograms(&b, "balancesort_phase_seconds", tr.Hists()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	samples := parsePromText(t, out)
	wantBuckets := 2 * HistBuckets // two (layer,phase) series
	if samples["balancesort_phase_seconds_bucket"] != wantBuckets {
		t.Fatalf("bucket samples = %d, want %d\n%s", samples["balancesort_phase_seconds_bucket"], wantBuckets, out)
	}
	if samples["balancesort_phase_seconds_count"] != 2 || samples["balancesort_phase_seconds_sum"] != 2 {
		t.Fatalf("samples = %v", samples)
	}
}

func TestTracerMetrics(t *testing.T) {
	tr := New(4, nil)
	tr.Count("disk", "retry", 0, 7)
	ms := TracerMetrics(tr)
	if len(ms) != 1 || ms[0].Value != 7 || ms[0].Name != "balancesort_events_total" {
		t.Fatalf("metrics = %+v", ms)
	}
	var b strings.Builder
	if err := WriteMetrics(&b, ms); err != nil {
		t.Fatal(err)
	}
	parsePromText(t, b.String())
	if !strings.Contains(b.String(), fmt.Sprintf("balancesort_events_total{layer=%q,event=%q} 7", "disk", "retry")) {
		t.Fatalf("output:\n%s", b.String())
	}
}
