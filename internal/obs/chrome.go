package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// chromeEvent is one entry of the Chrome trace_event format's JSON array
// ("X" complete events and "M" metadata events are the only kinds we
// emit). ts and dur are microseconds; pid is the node (coordinator = 0,
// worker w = w+1) and tid the per-layer worker/disk id, which is how the
// viewer groups spans into process and thread tracks.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace writes the spans as Chrome trace_event JSON, loadable
// in Perfetto / chrome://tracing. Node 0 is labeled "coordinator" and node
// n "worker n-1" via process_name metadata events.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	nodes := map[int]bool{}
	for _, s := range spans {
		nodes[s.Node] = true
	}
	nodeList := make([]int, 0, len(nodes))
	for n := range nodes {
		nodeList = append(nodeList, n)
	}
	sort.Ints(nodeList)

	evs := make([]chromeEvent, 0, len(spans)+len(nodeList))
	for _, n := range nodeList {
		name := "coordinator"
		if n > 0 {
			name = "worker " + strconv.Itoa(n-1)
		}
		evs = append(evs, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  n,
			Args: map[string]any{"name": name},
		})
	}
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Cat:  s.Layer,
			Ph:   "X",
			Ts:   float64(s.Start.Nanoseconds()) / 1e3,
			Dur:  float64(s.Dur.Nanoseconds()) / 1e3,
			Pid:  s.Node,
			Tid:  s.ID,
		}
		if len(s.Attrs) > 0 {
			args := make(map[string]any, len(s.Attrs))
			for _, a := range s.Attrs {
				args[a.Key] = a.Val
			}
			ev.Args = args
		}
		evs = append(evs, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: evs})
}
