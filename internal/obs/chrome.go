package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// chromeEvent is one entry of the Chrome trace_event format's JSON array.
// We emit "X" complete events for phases, "M" metadata events for process
// names, "C" counter events for utilization tracks, and "s"/"f" flow events
// for coordinator→worker message edges. ts and dur are microseconds; pid is
// the node (coordinator = 0, worker w = w+1) and tid the per-layer
// worker/disk id, which is how the viewer groups spans into process and
// thread tracks.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	ID   string         `json:"id,omitempty"` // flow-event binding id (hex)
	BP   string         `json:"bp,omitempty"` // "e": bind flow finish to enclosing slice
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent  `json:"traceEvents"`
	OtherData   map[string]any `json:"otherData,omitempty"`
}

// WriteChromeTrace writes the spans as Chrome trace_event JSON, loadable
// in Perfetto / chrome://tracing. Node 0 is labeled "coordinator" and node
// n "worker n-1" via process_name metadata events.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	return WriteChromeTraceDropped(w, spans, 0)
}

// WriteChromeTraceDropped is WriteChromeTrace plus a span-loss warning:
// when dropped > 0 the trace carries a "spans_dropped" metadata event and
// an otherData footer, so a truncated timeline announces itself instead of
// silently looking complete.
func WriteChromeTraceDropped(w io.Writer, spans []Span, dropped int64) error {
	nodes := map[int]bool{}
	for _, s := range spans {
		nodes[s.Node] = true
	}
	nodeList := make([]int, 0, len(nodes))
	for n := range nodes {
		nodeList = append(nodeList, n)
	}
	sort.Ints(nodeList)

	evs := make([]chromeEvent, 0, len(spans)+len(nodeList)+1)
	for _, n := range nodeList {
		name := "coordinator"
		if n > 0 {
			name = "worker " + strconv.Itoa(n-1)
		}
		evs = append(evs, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  n,
			Args: map[string]any{"name": name},
		})
	}
	if dropped > 0 {
		evs = append(evs, chromeEvent{
			Name: "spans_dropped",
			Ph:   "M",
			Args: map[string]any{"count": dropped},
		})
	}
	for _, s := range spans {
		switch {
		case s.Flow != 0:
			ph, bp := "s", ""
			if !s.FlowOut {
				ph, bp = "f", "e"
			}
			evs = append(evs, chromeEvent{
				Name: s.Name,
				Cat:  s.Layer,
				Ph:   ph,
				BP:   bp,
				ID:   strconv.FormatUint(s.Flow, 16),
				Ts:   float64(s.Start.Nanoseconds()) / 1e3,
				Pid:  s.Node,
				Tid:  s.ID,
			})
		case s.Layer == LayerCounter:
			var val int64
			if len(s.Attrs) > 0 {
				val = s.Attrs[0].Val
			}
			evs = append(evs, chromeEvent{
				Name: s.Name,
				Cat:  LayerCounter,
				Ph:   "C",
				Ts:   float64(s.Start.Nanoseconds()) / 1e3,
				Pid:  s.Node,
				Tid:  s.ID,
				Args: map[string]any{"value": val},
			})
		default:
			ev := chromeEvent{
				Name: s.Name,
				Cat:  s.Layer,
				Ph:   "X",
				Ts:   float64(s.Start.Nanoseconds()) / 1e3,
				Dur:  float64(s.Dur.Nanoseconds()) / 1e3,
				Pid:  s.Node,
				Tid:  s.ID,
			}
			n := len(s.Attrs)
			if s.SpanID != 0 {
				n += 2
			}
			if n > 0 {
				args := make(map[string]any, n)
				for _, a := range s.Attrs {
					args[a.Key] = a.Val
				}
				if s.SpanID != 0 {
					args["span_id"] = s.SpanID
					if s.Parent != 0 {
						args["parent"] = s.Parent
					}
				}
				ev.Args = args
			}
			evs = append(evs, ev)
		}
	}
	tr := chromeTrace{TraceEvents: evs}
	if dropped > 0 {
		tr.OtherData = map[string]any{"spansDropped": dropped}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}
