// Package obs is the zero-dependency tracing and metrics layer shared by
// the sort core, the disk engine, and the cluster runtime. It answers the
// question the end-of-run counters cannot: *where does the time go* inside
// a distribute pass, a matching round, or a cluster phase.
//
// The design goals, in order:
//
//   - Off means off. A nil *Tracer is a valid tracer whose every method is
//     a no-op; instrumentation sites never check for enablement. Model
//     parallel-I/O counts and sorted bytes are identical with tracing on
//     (pinned by the parity tests in the root package).
//   - Allocation-frugal when on. Spans land in a fixed-capacity ring
//     buffer under one mutex; starting a span allocates nothing (Active is
//     a value), and per-phase duration histograms use fixed log2 buckets.
//   - One timeline. Worker tracers in cluster mode ship their spans back
//     over the framed protocol; Merge rebases them onto the coordinator's
//     epoch so a single Chrome trace shows every process.
//
// Exporters live alongside: chrome.go writes Chrome trace_event JSON
// (Perfetto-loadable), prom.go writes Prometheus text exposition, and
// server.go serves /metrics plus net/http/pprof.
package obs

import (
	"sort"
	"sync"
	"time"
)

// Attr is one integer-valued span attribute (pass number, depth, record
// count, bucket count, ...). Integer-only keeps encoding and merging
// trivial and allocation cheap.
type Attr struct {
	Key string `json:"key"`
	Val int64  `json:"val"`
}

// Span is one completed phase. Start is an offset from the owning tracer's
// epoch (monotonic), not a wall-clock time, so spans from different
// processes can be rebased onto one timeline with a single shift.
type Span struct {
	Layer string        `json:"layer"` // "sort", "disk", "cluster"
	Name  string        `json:"name"`  // phase name, e.g. "distribute-pass"
	Node  int           `json:"node"`  // 0 = this process/coordinator, w+1 = cluster worker w
	ID    int           `json:"id"`    // worker/disk id within the layer
	Start time.Duration `json:"start"` // offset from the tracer epoch
	Dur   time.Duration `json:"dur"`   // span duration
	Attrs []Attr        `json:"attrs,omitempty"`
}

// Observer receives live phase events as they happen — the hook behind the
// CLI's -progress renderer. Callbacks run on the instrumented goroutine and
// must be fast; they are invoked only for spans and counts produced
// locally, not for spans merged in from remote tracers.
type Observer interface {
	// SpanStart fires when a phase begins.
	SpanStart(layer, name string, id int)
	// SpanEnd fires when a phase completes.
	SpanEnd(s Span)
	// Count fires on every event-counter increment (records moved,
	// retries, breaker trips, ...).
	Count(layer, name string, id int, delta int64)
}

// DefaultCapacity is the span ring size used when New is given cap <= 0.
const DefaultCapacity = 1 << 14

// HistBuckets is the number of log2 duration-histogram buckets: bucket i
// counts spans with duration <= 1µs<<i for i < HistBuckets-1, and the last
// bucket is unbounded (+Inf). 1µs<<20 ≈ 1.05s, so everything from a single
// block transfer to a full pass lands in a meaningful bucket.
const HistBuckets = 22

// HistBound returns the upper bound of histogram bucket i; the last bucket
// has no bound and returns a negative sentinel.
func HistBound(i int) time.Duration {
	if i >= HistBuckets-1 {
		return -1
	}
	return time.Microsecond << i
}

// HistSnapshot is one (layer, phase) duration histogram.
type HistSnapshot struct {
	Layer  string
	Name   string
	Counts [HistBuckets]int64
	Sum    time.Duration
	N      int64
}

// CountSnapshot is one (layer, event) counter value.
type CountSnapshot struct {
	Layer string
	Name  string
	Val   int64
}

type statKey struct {
	layer, name string
}

type hist struct {
	counts [HistBuckets]int64
	sum    time.Duration
	n      int64
}

func (h *hist) observe(d time.Duration) {
	i := 0
	for i < HistBuckets-1 && d > time.Microsecond<<i {
		i++
	}
	h.counts[i]++
	h.sum += d
	h.n++
}

// Tracer records spans and counters. The nil tracer is valid and free:
// every method on a nil receiver is a no-op, which is how "off by default"
// is made structural rather than checked at each call site.
type Tracer struct {
	epoch time.Time
	obs   Observer

	mu      sync.Mutex
	buf     []Span
	next    int
	full    bool
	dropped int64
	hists   map[statKey]*hist
	counts  map[statKey]int64
}

// New creates a tracer with the given span-ring capacity (DefaultCapacity
// when cap <= 0) and an optional live observer.
func New(capacity int, o Observer) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{
		epoch:  time.Now(),
		obs:    o,
		buf:    make([]Span, 0, capacity),
		hists:  make(map[statKey]*hist),
		counts: make(map[statKey]int64),
	}
}

// Epoch returns the tracer's time origin. Span.Start offsets are relative
// to it; cluster trace collection ships it so worker spans can be rebased.
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// Active is an in-flight span. It is a value, so Begin/End allocates
// nothing until the span is recorded into the ring.
type Active struct {
	t     *Tracer
	layer string
	name  string
	id    int
	start time.Duration
}

// Begin starts a span. On a nil tracer it returns an inert Active whose
// End is a no-op.
func (t *Tracer) Begin(layer, name string, id int) Active {
	if t == nil {
		return Active{}
	}
	if t.obs != nil {
		t.obs.SpanStart(layer, name, id)
	}
	return Active{t: t, layer: layer, name: name, id: id, start: time.Since(t.epoch)}
}

// End completes the span, attaching the given attributes.
func (a Active) End(attrs ...Attr) {
	if a.t == nil {
		return
	}
	s := Span{
		Layer: a.layer,
		Name:  a.name,
		ID:    a.id,
		Start: a.start,
		Dur:   time.Since(a.t.epoch) - a.start,
		Attrs: attrs,
	}
	a.t.record(s)
	if a.t.obs != nil {
		a.t.obs.SpanEnd(s)
	}
}

func (t *Tracer) record(s Span) {
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, s)
	} else {
		t.buf[t.next] = s
		t.next = (t.next + 1) % cap(t.buf)
		t.full = true
		t.dropped++
	}
	k := statKey{s.Layer, s.Name}
	h := t.hists[k]
	if h == nil {
		h = &hist{}
		t.hists[k] = h
	}
	h.observe(s.Dur)
	t.mu.Unlock()
}

// Count adds delta to the (layer, name) event counter.
func (t *Tracer) Count(layer, name string, id int, delta int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.counts[statKey{layer, name}] += delta
	t.mu.Unlock()
	if t.obs != nil {
		t.obs.Count(layer, name, id, delta)
	}
}

// Spans returns the recorded spans, oldest first. When the ring
// overflowed, the oldest spans are gone (see Dropped).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.buf))
	if t.full {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// Dropped reports how many spans were overwritten by ring wraparound.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Merge records spans from another tracer (typically a cluster worker),
// rebasing each Start by shift onto this tracer's epoch and stamping Node.
// Merged spans feed the phase histograms but not the live Observer.
func (t *Tracer) Merge(spans []Span, shift time.Duration, node int) {
	if t == nil {
		return
	}
	for _, s := range spans {
		s.Start += shift
		s.Node = node
		t.record(s)
	}
}

// Hists returns the per-(layer, phase) duration histograms, ordered by
// layer then name for deterministic output.
func (t *Tracer) Hists() []HistSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]HistSnapshot, 0, len(t.hists))
	for k, h := range t.hists {
		out = append(out, HistSnapshot{Layer: k.layer, Name: k.name, Counts: h.counts, Sum: h.sum, N: h.n})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Layer != out[j].Layer {
			return out[i].Layer < out[j].Layer
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Counts returns the event counters, ordered by layer then name.
func (t *Tracer) Counts() []CountSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]CountSnapshot, 0, len(t.counts))
	for k, v := range t.counts {
		out = append(out, CountSnapshot{Layer: k.layer, Name: k.name, Val: v})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Layer != out[j].Layer {
			return out[i].Layer < out[j].Layer
		}
		return out[i].Name < out[j].Name
	})
	return out
}
