// Package obs is the zero-dependency tracing and metrics layer shared by
// the sort core, the disk engine, and the cluster runtime. It answers the
// question the end-of-run counters cannot: *where does the time go* inside
// a distribute pass, a matching round, or a cluster phase.
//
// The design goals, in order:
//
//   - Off means off. A nil *Tracer is a valid tracer whose every method is
//     a no-op; instrumentation sites never check for enablement. Model
//     parallel-I/O counts and sorted bytes are identical with tracing on
//     (pinned by the parity tests in the root package).
//   - Allocation-frugal when on. Spans land in a fixed-capacity ring
//     buffer under one mutex; starting a span allocates nothing (Active is
//     a value), and per-phase duration histograms use fixed log2 buckets.
//   - One timeline. Worker tracers in cluster mode ship their spans back
//     over the framed protocol; Merge rebases them onto the coordinator's
//     epoch so a single Chrome trace shows every process.
//
// Exporters live alongside: chrome.go writes Chrome trace_event JSON
// (Perfetto-loadable), prom.go writes Prometheus text exposition, and
// server.go serves /metrics plus net/http/pprof.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one integer-valued span attribute (pass number, depth, record
// count, bucket count, ...). Integer-only keeps encoding and merging
// trivial and allocation cheap.
type Attr struct {
	Key string `json:"key"`
	Val int64  `json:"val"`
}

// LayerCounter marks a Span as one sample of a utilization counter track
// (queue depth, busy %, backlog, ...) rather than a phase. Counter spans
// have Dur 0, carry their value as the single attribute "value", never feed
// the duration histograms, and export as Chrome "C" events.
const LayerCounter = "counter"

// Span is one completed phase. Start is an offset from the owning tracer's
// epoch (monotonic), not a wall-clock time, so spans from different
// processes can be rebased onto one timeline with a single shift.
//
// SpanID/Parent give spans within one process a causality tree; Flow marks
// the span as a cross-process flow endpoint (a coordinator→worker message
// edge) instead of a phase. All three are scoped per process: the analyzer
// keys them by (Node, SpanID), so merging worker spans needs no renumbering.
type Span struct {
	Layer   string        `json:"layer"` // "sort", "disk", "cluster", LayerCounter
	Name    string        `json:"name"`  // phase name, e.g. "distribute-pass"
	Node    int           `json:"node"`  // 0 = this process/coordinator, w+1 = cluster worker w
	ID      int           `json:"id"`    // worker/disk id within the layer
	SpanID  uint64        `json:"span_id,omitempty"`
	Parent  uint64        `json:"parent,omitempty"`   // SpanID of the enclosing span, 0 = root
	Flow    uint64        `json:"flow,omitempty"`     // non-zero: flow-event endpoint, not a phase
	FlowOut bool          `json:"flow_out,omitempty"` // true = producing side ("s"), false = consuming ("f")
	Start   time.Duration `json:"start"`              // offset from the tracer epoch
	Dur     time.Duration `json:"dur"`                // span duration
	Attrs   []Attr        `json:"attrs,omitempty"`
}

// Observer receives live phase events as they happen — the hook behind the
// CLI's -progress renderer. Callbacks run on the instrumented goroutine and
// must be fast; they are invoked only for spans and counts produced
// locally, not for spans merged in from remote tracers.
type Observer interface {
	// SpanStart fires when a phase begins.
	SpanStart(layer, name string, id int)
	// SpanEnd fires when a phase completes.
	SpanEnd(s Span)
	// Count fires on every event-counter increment (records moved,
	// retries, breaker trips, ...).
	Count(layer, name string, id int, delta int64)
}

// DefaultCapacity is the span ring size used when New is given cap <= 0.
const DefaultCapacity = 1 << 14

// HistBuckets is the number of log2 duration-histogram buckets: bucket i
// counts spans with duration <= 1µs<<i for i < HistBuckets-1, and the last
// bucket is unbounded (+Inf). 1µs<<20 ≈ 1.05s, so everything from a single
// block transfer to a full pass lands in a meaningful bucket.
const HistBuckets = 22

// HistBound returns the upper bound of histogram bucket i; the last bucket
// has no bound and returns a negative sentinel.
func HistBound(i int) time.Duration {
	if i >= HistBuckets-1 {
		return -1
	}
	return time.Microsecond << i
}

// HistSnapshot is one (layer, phase) duration histogram.
type HistSnapshot struct {
	Layer  string
	Name   string
	Counts [HistBuckets]int64
	Sum    time.Duration
	N      int64
}

// CountSnapshot is one (layer, event) counter value.
type CountSnapshot struct {
	Layer string
	Name  string
	Val   int64
}

type statKey struct {
	layer, name string
}

type hist struct {
	counts [HistBuckets]int64
	sum    time.Duration
	n      int64
}

func (h *hist) observe(d time.Duration) {
	i := 0
	for i < HistBuckets-1 && d > time.Microsecond<<i {
		i++
	}
	h.counts[i]++
	h.sum += d
	h.n++
}

// Tracer records spans and counters. The nil tracer is valid and free:
// every method on a nil receiver is a no-op, which is how "off by default"
// is made structural rather than checked at each call site.
type Tracer struct {
	epoch time.Time
	obs   Observer
	seq   atomic.Uint64 // span-ID allocator, scoped to this process
	res   atomic.Pointer[resSource]

	mu      sync.Mutex
	buf     []Span
	next    int
	full    bool
	dropped int64
	hists   map[statKey]*hist
	counts  map[statKey]int64
}

// New creates a tracer with the given span-ring capacity (DefaultCapacity
// when cap <= 0) and an optional live observer.
func New(capacity int, o Observer) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{
		epoch:  time.Now(),
		obs:    o,
		buf:    make([]Span, 0, capacity),
		hists:  make(map[statKey]*hist),
		counts: make(map[statKey]int64),
	}
}

// Epoch returns the tracer's time origin. Span.Start offsets are relative
// to it; cluster trace collection ships it so worker spans can be rebased.
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// Active is an in-flight span. It is a value, so Begin/End allocates
// nothing until the span is recorded into the ring (resource attribution,
// when enabled, allocates its baseline snapshot).
type Active struct {
	t      *Tracer
	layer  string
	name   string
	id     int
	spanID uint64
	parent uint64
	start  time.Duration
	base   []Attr // resource-source snapshot at Begin; nil when attribution is off
}

// resSource pairs the cumulative snapshot function with the set of span
// layers it attributes; nil layers means every layer.
type resSource struct {
	fn     func() []Attr
	layers map[string]bool
}

func (r *resSource) covers(layer string) bool {
	return r.layers == nil || r.layers[layer]
}

// SetResourceSource installs a cumulative resource snapshot function. When
// set, every Begin snapshots fn() and every End appends the key-wise deltas
// (zero deltas elided) to the span's attributes — so each phase carries the
// bytes, I/Os, frames, and allocations it was responsible for. fn must be
// safe for concurrent use and should return keys in a stable order.
//
// The optional layers restrict attribution to spans of those layers; with
// none given every span is attributed. High-frequency micro-spans (the
// per-flush "disk" layer emits tens of thousands per sort) make two
// snapshots each, so callers attribute the coarse phase layers ("sort",
// "cluster") and leave the micro layers bare.
//
// Nil fn removes the source. No-op on a nil tracer.
func (t *Tracer) SetResourceSource(fn func() []Attr, layers ...string) {
	if t == nil {
		return
	}
	if fn == nil {
		t.res.Store(nil)
		return
	}
	src := &resSource{fn: fn}
	if len(layers) > 0 {
		src.layers = make(map[string]bool, len(layers))
		for _, l := range layers {
			src.layers[l] = true
		}
	}
	t.res.Store(src)
}

// Begin starts a root span. On a nil tracer it returns an inert Active
// whose End is a no-op.
func (t *Tracer) Begin(layer, name string, id int) Active {
	return t.begin(layer, name, id, 0)
}

func (t *Tracer) begin(layer, name string, id int, parent uint64) Active {
	if t == nil {
		return Active{}
	}
	if t.obs != nil {
		t.obs.SpanStart(layer, name, id)
	}
	a := Active{
		t:      t,
		layer:  layer,
		name:   name,
		id:     id,
		spanID: t.seq.Add(1),
		parent: parent,
		start:  time.Since(t.epoch),
	}
	if src := t.res.Load(); src != nil && src.covers(layer) {
		a.base = src.fn()
	}
	return a
}

// Child starts a span parented under a. On an inert Active (nil tracer)
// the child is inert too.
func (a Active) Child(layer, name string, id int) Active {
	if a.t == nil {
		return Active{}
	}
	return a.t.begin(layer, name, id, a.spanID)
}

// SpanID returns the span's process-scoped ID (0 for an inert Active).
func (a Active) SpanID() uint64 { return a.spanID }

// End completes the span, attaching the given attributes plus — when a
// resource source is installed — the resource deltas since Begin.
func (a Active) End(attrs ...Attr) {
	if a.t == nil {
		return
	}
	if a.base != nil {
		if src := a.t.res.Load(); src != nil {
			attrs = appendResourceDeltas(attrs, a.base, src.fn())
		}
	}
	s := Span{
		Layer:  a.layer,
		Name:   a.name,
		ID:     a.id,
		SpanID: a.spanID,
		Parent: a.parent,
		Start:  a.start,
		Dur:    time.Since(a.t.epoch) - a.start,
		Attrs:  attrs,
	}
	a.t.record(s)
	if a.t.obs != nil {
		a.t.obs.SpanEnd(s)
	}
}

// appendResourceDeltas appends cur-base per key, matching positionally when
// the source returns a stable layout (the cheap, common case) and falling
// back to a key lookup when it does not. Zero deltas are elided.
func appendResourceDeltas(attrs, base, cur []Attr) []Attr {
	for i, c := range cur {
		var b int64
		var found bool
		if i < len(base) && base[i].Key == c.Key {
			b, found = base[i].Val, true
		} else {
			for _, ba := range base {
				if ba.Key == c.Key {
					b, found = ba.Val, true
					break
				}
			}
		}
		d := c.Val
		if found {
			d = c.Val - b
		}
		if d != 0 {
			attrs = append(attrs, Attr{Key: c.Key, Val: d})
		}
	}
	return attrs
}

// FlowPoint records one endpoint of a cross-process flow edge: the
// producing side (out=true, a coordinator handing work to a worker) or the
// consuming side (out=false, the worker picking it up). Both sides must
// derive the same flow ID (see FlowID) for the viewer and analyzer to
// connect them. Flow points are instants: Dur 0, no histogram entry.
func (t *Tracer) FlowPoint(layer, name string, id int, flow uint64, out bool) {
	if t == nil || flow == 0 {
		return
	}
	t.record(Span{
		Layer:   layer,
		Name:    name,
		ID:      id,
		SpanID:  t.seq.Add(1),
		Flow:    flow,
		FlowOut: out,
		Start:   time.Since(t.epoch),
	})
}

// FlowID derives a deterministic non-zero flow identifier from the given
// parts (FNV-1a). Coordinator and worker compute it independently from the
// same (phase, epoch, worker) tuple, so no IDs cross the wire.
func FlowID(parts ...string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= prime64
		}
		h ^= 0xff // part separator so ("ab","c") != ("a","bc")
		h *= prime64
	}
	if h == 0 {
		h = 1
	}
	return h
}

// Sample records one utilization counter-track sample (LayerCounter span
// with the value as its single attribute). Samples land in the span ring
// and export as Chrome "C" counter events, but never touch the duration
// histograms or the live Observer.
func (t *Tracer) Sample(name string, val int64) {
	if t == nil {
		return
	}
	t.record(Span{
		Layer:  LayerCounter,
		Name:   name,
		SpanID: t.seq.Add(1),
		Start:  time.Since(t.epoch),
		Attrs:  []Attr{{Key: "value", Val: val}},
	})
}

func (t *Tracer) record(s Span) {
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, s)
	} else {
		t.buf[t.next] = s
		t.next = (t.next + 1) % cap(t.buf)
		t.full = true
		t.dropped++
	}
	// Counter samples and flow instants are not phases: keep them out of
	// the duration histograms.
	if s.Layer != LayerCounter && s.Flow == 0 {
		k := statKey{s.Layer, s.Name}
		h := t.hists[k]
		if h == nil {
			h = &hist{}
			t.hists[k] = h
		}
		h.observe(s.Dur)
	}
	t.mu.Unlock()
}

// Count adds delta to the (layer, name) event counter.
func (t *Tracer) Count(layer, name string, id int, delta int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.counts[statKey{layer, name}] += delta
	t.mu.Unlock()
	if t.obs != nil {
		t.obs.Count(layer, name, id, delta)
	}
}

// Spans returns the recorded spans, oldest first. When the ring
// overflowed, the oldest spans are gone (see Dropped).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.buf))
	if t.full {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// Dropped reports how many spans were overwritten by ring wraparound.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Merge records spans from another tracer (typically a cluster worker),
// rebasing each Start by shift onto this tracer's epoch and stamping Node.
// Merged spans feed the phase histograms but not the live Observer.
func (t *Tracer) Merge(spans []Span, shift time.Duration, node int) {
	if t == nil {
		return
	}
	for _, s := range spans {
		s.Start += shift
		s.Node = node
		t.record(s)
	}
}

// Hists returns the per-(layer, phase) duration histograms, ordered by
// layer then name for deterministic output.
func (t *Tracer) Hists() []HistSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]HistSnapshot, 0, len(t.hists))
	for k, h := range t.hists {
		out = append(out, HistSnapshot{Layer: k.layer, Name: k.name, Counts: h.counts, Sum: h.sum, N: h.n})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Layer != out[j].Layer {
			return out[i].Layer < out[j].Layer
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Counts returns the event counters, ordered by layer then name.
func (t *Tracer) Counts() []CountSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]CountSnapshot, 0, len(t.counts))
	for k, v := range t.counts {
		out = append(out, CountSnapshot{Layer: k.layer, Name: k.name, Val: v})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Layer != out[j].Layer {
			return out[i].Layer < out[j].Layer
		}
		return out[i].Name < out[j].Name
	})
	return out
}
