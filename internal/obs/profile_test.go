package obs

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestChildParenting(t *testing.T) {
	tr := New(8, nil)
	root := tr.Begin("sort", "distribute-pass", 0)
	if root.SpanID() == 0 {
		t.Fatal("root SpanID is 0")
	}
	child := root.Child("disk", "flush", 2)
	child.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	c, r := spans[0], spans[1] // child ends first
	if c.Name != "flush" || r.Name != "distribute-pass" {
		t.Fatalf("unexpected order: %s, %s", c.Name, r.Name)
	}
	if c.Parent != r.SpanID {
		t.Fatalf("child.Parent = %d, want root SpanID %d", c.Parent, r.SpanID)
	}
	if r.Parent != 0 {
		t.Fatalf("root.Parent = %d, want 0", r.Parent)
	}
	if c.SpanID == r.SpanID || c.SpanID == 0 {
		t.Fatalf("bad child SpanID %d (root %d)", c.SpanID, r.SpanID)
	}
}

func TestChildOfInertActiveIsInert(t *testing.T) {
	var tr *Tracer
	a := tr.Begin("sort", "x", 0)
	c := a.Child("sort", "y", 0)
	c.End()
	a.End()
	if c.SpanID() != 0 {
		t.Fatal("inert child has a SpanID")
	}
}

func TestResourceAttribution(t *testing.T) {
	tr := New(8, nil)
	var bytesRead atomic.Int64
	tr.SetResourceSource(func() []Attr {
		return []Attr{
			{Key: "disk.read_bytes", Val: bytesRead.Load()},
			{Key: "disk.write_bytes", Val: 0}, // never moves: must be elided
		}
	})
	a := tr.Begin("sort", "run-formation", 0)
	bytesRead.Add(4096)
	a.End(Attr{"runs", 3})

	s := tr.Spans()[0]
	want := []Attr{{"runs", 3}, {"disk.read_bytes", 4096}}
	if len(s.Attrs) != len(want) {
		t.Fatalf("attrs = %v, want %v", s.Attrs, want)
	}
	for i := range want {
		if s.Attrs[i] != want[i] {
			t.Fatalf("attrs[%d] = %v, want %v", i, s.Attrs[i], want[i])
		}
	}

	// After removing the source, spans carry only their explicit attrs.
	tr.SetResourceSource(nil)
	b := tr.Begin("sort", "bare", 0)
	bytesRead.Add(100)
	b.End()
	if got := tr.Spans()[1].Attrs; got != nil {
		t.Fatalf("attrs after source removal = %v, want none", got)
	}
}

func TestAppendResourceDeltas(t *testing.T) {
	base := []Attr{{"a", 10}, {"b", 5}}
	// Reordered current layout exercises the key-lookup fallback; "c" is
	// new (no baseline) and lands with its full value.
	cur := []Attr{{"b", 9}, {"a", 10}, {"c", 7}}
	got := appendResourceDeltas([]Attr{{"n", 1}}, base, cur)
	want := []Attr{{"n", 1}, {"b", 4}, {"c", 7}} // a's delta 0 elided
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestFlowPointAndFlowID(t *testing.T) {
	id := FlowID("exchange", "3", "1")
	if id == 0 {
		t.Fatal("FlowID returned 0")
	}
	if FlowID("ab", "c") == FlowID("a", "bc") {
		t.Fatal("FlowID ignores part boundaries")
	}
	if FlowID("exchange", "3", "1") != id {
		t.Fatal("FlowID not deterministic")
	}

	tr := New(8, nil)
	tr.FlowPoint("cluster", "flow-exchange", 1, id, true)
	tr.FlowPoint("cluster", "flow-exchange", 1, id, false)
	tr.FlowPoint("cluster", "flow-none", 1, 0, true) // flow 0: dropped
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d flow spans, want 2", len(spans))
	}
	if !spans[0].FlowOut || spans[1].FlowOut {
		t.Fatalf("flow directions wrong: %+v", spans)
	}
	if spans[0].Flow != id || spans[1].Flow != id {
		t.Fatalf("flow ids differ: %+v", spans)
	}
	// Flow instants must not pollute the phase histograms.
	if hists := tr.Hists(); len(hists) != 0 {
		t.Fatalf("flow points fed histograms: %+v", hists)
	}
}

func TestSampleCounterTrack(t *testing.T) {
	tr := New(8, nil)
	tr.Sample("disk0.queue", 3)
	tr.Sample("disk0.queue", 5)
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d samples, want 2", len(spans))
	}
	for _, s := range spans {
		if s.Layer != LayerCounter || s.Dur != 0 {
			t.Fatalf("bad counter span %+v", s)
		}
		if len(s.Attrs) != 1 || s.Attrs[0].Key != "value" {
			t.Fatalf("bad counter attrs %+v", s.Attrs)
		}
	}
	if hists := tr.Hists(); len(hists) != 0 {
		t.Fatalf("counter samples fed histograms: %+v", hists)
	}
}

func TestSamplerKindsAndMetrics(t *testing.T) {
	tr := New(64, nil)
	var cum atomic.Int64
	gauges := []Gauge{
		{Name: "depth", Kind: GaugeInstant, Fn: func() int64 { return 7 }},
		{Name: "bps", Kind: GaugeRate, Fn: cum.Load},
	}
	s := StartSampler(tr, time.Millisecond, gauges)
	if s == nil {
		t.Fatal("sampler did not start")
	}
	cum.Add(1 << 20)
	time.Sleep(10 * time.Millisecond)
	s.Stop()
	s.Stop() // idempotent

	var depth, bps int
	for _, sp := range tr.Spans() {
		switch sp.Name {
		case "depth":
			depth++
			if sp.Attrs[0].Val != 7 {
				t.Fatalf("instant gauge sampled %d, want 7", sp.Attrs[0].Val)
			}
		case "bps":
			bps++
			if sp.Attrs[0].Val < 0 {
				t.Fatalf("negative rate %d", sp.Attrs[0].Val)
			}
		}
	}
	if depth == 0 || bps == 0 {
		t.Fatalf("sampler recorded depth=%d bps=%d samples", depth, bps)
	}

	ms := s.Metrics()
	if len(ms) != 2 {
		t.Fatalf("got %d metrics, want 2", len(ms))
	}
	for _, m := range ms {
		if m.Name != "balancesort_util" || len(m.Labels) != 1 || m.Labels[0].Name != "track" {
			t.Fatalf("bad util metric %+v", m)
		}
	}
}

func TestSamplerNilSafety(t *testing.T) {
	if s := StartSampler(nil, time.Millisecond, []Gauge{{Name: "x", Fn: func() int64 { return 0 }}}); s != nil {
		t.Fatal("sampler started on nil tracer")
	}
	if s := StartSampler(New(8, nil), 0, []Gauge{{Name: "x", Fn: func() int64 { return 0 }}}); s != nil {
		t.Fatal("sampler started with zero interval")
	}
	if s := StartSampler(New(8, nil), time.Millisecond, nil); s != nil {
		t.Fatal("sampler started with no gauges")
	}
	var s *Sampler
	s.Stop()
	if s.Metrics() != nil {
		t.Fatal("nil sampler Metrics() != nil")
	}
}

func TestRuntimeGaugesAndAllocAttrs(t *testing.T) {
	gs := RuntimeGauges()
	if len(gs) != 2 {
		t.Fatalf("got %d runtime gauges", len(gs))
	}
	for _, g := range gs {
		if v := g.Fn(); v < 0 {
			t.Fatalf("%s = %d", g.Name, v)
		}
	}
	a1 := AllocAttrs()
	junk := make([]byte, 1<<20)
	_ = junk[len(junk)-1]
	a2 := AllocAttrs()
	if len(a1) != 2 || len(a2) != 2 {
		t.Fatalf("AllocAttrs shape: %v %v", a1, a2)
	}
	if a2[0].Val < a1[0].Val {
		t.Fatalf("alloc.bytes went backwards: %d -> %d", a1[0].Val, a2[0].Val)
	}
}

func TestChromeTraceDroppedFooter(t *testing.T) {
	tr := New(8, nil)
	tr.Begin("sort", "p", 0).End()
	var buf bytes.Buffer
	if err := WriteChromeTraceDropped(&buf, tr.Spans(), 42); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"spans_dropped"`) || !strings.Contains(out, `"spansDropped":42`) {
		t.Fatalf("trace missing drop markers:\n%s", out)
	}
}
