package obs

import (
	"runtime"
	runtimemetrics "runtime/metrics"
	"sync"
	"time"
)

// GaugeKind says how a Gauge's raw reading becomes the recorded sample.
type GaugeKind int

const (
	// GaugeInstant records Fn() as-is (queue depth, backlog, occupancy).
	GaugeInstant GaugeKind = iota
	// GaugeRate treats Fn() as a cumulative total and records the delta
	// per second since the previous tick (bytes → bytes/s).
	GaugeRate
	// GaugeBusyPct treats Fn() as cumulative busy nanoseconds and records
	// the busy percentage of the sampling interval, clamped to [0, 100].
	GaugeBusyPct
)

// Gauge is one sampled utilization signal: a named counter track fed by a
// cheap, concurrency-safe reading function.
type Gauge struct {
	Name string // counter-track name, e.g. "disk0.queue" or "heap.mb"
	Kind GaugeKind
	Fn   func() int64
}

// Sampler periodically reads a set of gauges and records each as a counter
// sample on the tracer — the utilization timeline that makes idle disks and
// barrier stalls visible as flat lines in the Chrome trace. It also caches
// the latest values so Metrics can serve them as Prometheus gauges without
// touching the (possibly already-closed) instrumented component.
type Sampler struct {
	t        *Tracer
	interval time.Duration
	gauges   []Gauge
	prev     []int64

	mu   sync.Mutex
	last []int64

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// StartSampler begins sampling the gauges every interval, recording onto t.
// Returns nil (on which Stop and Metrics are safe no-ops) when t is nil,
// interval <= 0, or there is nothing to sample.
func StartSampler(t *Tracer, interval time.Duration, gauges []Gauge) *Sampler {
	if t == nil || interval <= 0 || len(gauges) == 0 {
		return nil
	}
	s := &Sampler{
		t:        t,
		interval: interval,
		gauges:   gauges,
		prev:     make([]int64, len(gauges)),
		last:     make([]int64, len(gauges)),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for i, g := range gauges {
		if g.Kind != GaugeInstant {
			s.prev[i] = g.Fn()
		}
	}
	go s.run()
	return s
}

func (s *Sampler) run() {
	defer close(s.done)
	tick := time.NewTicker(s.interval)
	defer tick.Stop()
	lastT := time.Now()
	for {
		select {
		case <-s.stop:
			return
		case now := <-tick.C:
			elapsed := now.Sub(lastT)
			lastT = now
			if elapsed <= 0 {
				continue
			}
			s.sampleOnce(elapsed)
		}
	}
}

func (s *Sampler) sampleOnce(elapsed time.Duration) {
	for i, g := range s.gauges {
		cur := g.Fn()
		var v int64
		switch g.Kind {
		case GaugeRate:
			v = int64(float64(cur-s.prev[i]) / elapsed.Seconds())
		case GaugeBusyPct:
			v = (cur - s.prev[i]) * 100 / elapsed.Nanoseconds()
			if v < 0 {
				v = 0
			} else if v > 100 {
				v = 100
			}
		default:
			v = cur
		}
		s.prev[i] = cur
		s.t.Sample(g.Name, v)
		s.mu.Lock()
		s.last[i] = v
		s.mu.Unlock()
	}
}

// Stop halts the sampling goroutine and waits for it to exit. Safe on nil
// and safe to call more than once.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.once.Do(func() { close(s.stop) })
	<-s.done
}

// Metrics serves the latest sampled values as one Prometheus gauge family,
// balancesort_util{track=...}. It reads the cache, not the gauges, so it is
// safe after Stop. Usable as a Source; safe on nil.
func (s *Sampler) Metrics() []Metric {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	vals := append([]int64(nil), s.last...)
	s.mu.Unlock()
	ms := make([]Metric, 0, len(vals))
	for i, g := range s.gauges {
		ms = append(ms, Metric{
			Name:   "balancesort_util",
			Type:   "gauge",
			Help:   "Sampled utilization by track (queue depth, busy %, backlog, bytes/s, ...).",
			Labels: []Label{{"track", g.Name}},
			Value:  float64(vals[i]),
		})
	}
	return ms
}

// heapSample reads the live heap size via runtime/metrics — unlike
// runtime.ReadMemStats this takes no stop-the-world, so it is cheap enough
// for a tight sampling interval.
var heapSample = []runtimemetrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}

// RuntimeGauges returns the process-wide gauges every sampler should carry:
// goroutine count and heap megabytes.
func RuntimeGauges() []Gauge {
	var mu sync.Mutex
	samples := append([]runtimemetrics.Sample(nil), heapSample...)
	return []Gauge{
		{Name: "go.goroutines", Kind: GaugeInstant, Fn: func() int64 {
			return int64(runtime.NumGoroutine())
		}},
		{Name: "go.heap_mb", Kind: GaugeInstant, Fn: func() int64 {
			mu.Lock()
			defer mu.Unlock()
			runtimemetrics.Read(samples)
			return int64(samples[0].Value.Uint64() >> 20)
		}},
	}
}

// AllocAttrs returns cumulative allocation counters as span attributes —
// the allocation half of a resource source. Each call reads into its own
// sample slice (runtimemetrics.Read is not safe on a shared one).
func AllocAttrs() []Attr {
	samples := []runtimemetrics.Sample{
		{Name: "/gc/heap/allocs:bytes"},
		{Name: "/gc/heap/allocs:objects"},
	}
	runtimemetrics.Read(samples)
	return []Attr{
		{Key: "alloc.bytes", Val: int64(samples[0].Value.Uint64())},
		{Key: "alloc.objects", Val: int64(samples[1].Value.Uint64())},
	}
}
