package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"
)

// Server serves /metrics (Prometheus text exposition) and /debug/pprof/*
// on its own listener and mux, so mounting it never touches
// http.DefaultServeMux. The zero addr case is handled by callers: no
// Server is created at all, so "observability off" opens no listener.
type Server struct {
	mu      sync.Mutex
	ln      net.Listener
	srv     *http.Server
	sources []Source
	named   map[string]Source
	tracers map[string]*Tracer
}

// NewServer creates an unstarted server.
func NewServer() *Server {
	return &Server{tracers: make(map[string]*Tracer), named: make(map[string]Source)}
}

// AddSource registers a metrics producer polled on every scrape.
func (s *Server) AddSource(src Source) {
	s.mu.Lock()
	s.sources = append(s.sources, src)
	s.mu.Unlock()
}

// SetSource registers (or replaces) a metrics producer under a key — for
// per-sort sources like the utilization sampler, where each new sort must
// supersede the previous one's gauges rather than pile up. A nil src
// removes the key.
func (s *Server) SetSource(key string, src Source) {
	s.mu.Lock()
	if s.named == nil {
		s.named = make(map[string]Source)
	}
	if src == nil {
		delete(s.named, key)
	} else {
		s.named[key] = src
	}
	s.mu.Unlock()
}

// SetTracer registers (or replaces) a tracer under a key; its phase
// histograms and event counters appear on /metrics. A nil tracer removes
// the key.
func (s *Server) SetTracer(key string, t *Tracer) {
	s.mu.Lock()
	if t == nil {
		delete(s.tracers, key)
	} else {
		s.tracers[key] = t
	}
	s.mu.Unlock()
}

// Mount registers the /metrics and /debug/pprof/* handlers on an external
// mux, for servers that already own a listener (the job server exposes
// metrics on its API port this way). The Server need not be Started.
func (s *Server) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Start binds addr and begins serving. It returns once the listener is
// bound, so Addr is valid immediately after.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	s.Mount(mux)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s.mu.Lock()
	s.ln = ln
	s.srv = srv
	s.mu.Unlock()
	// Serve returns ErrServerClosed after Close; nothing to report.
	go func() { _ = srv.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address, or "" before Start.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server and releases the listener.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.srv
	s.srv = nil
	s.ln = nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sources := append([]Source(nil), s.sources...)
	namedKeys := make([]string, 0, len(s.named))
	for k := range s.named {
		namedKeys = append(namedKeys, k)
	}
	sort.Strings(namedKeys)
	for _, k := range namedKeys {
		sources = append(sources, s.named[k])
	}
	keys := make([]string, 0, len(s.tracers))
	for k := range s.tracers {
		keys = append(keys, k)
	}
	tracers := make([]*Tracer, 0, len(keys))
	for _, k := range keys {
		tracers = append(tracers, s.tracers[k])
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var ms []Metric
	for _, src := range sources {
		ms = append(ms, src()...)
	}
	// Span-ring overflow is data loss for the trace; make it a first-class
	// scrape signal rather than something only the trace footer reveals.
	var droppedTotal int64
	for _, t := range tracers {
		droppedTotal += t.Dropped()
	}
	ms = append(ms, Metric{
		Name:  "balancesort_spans_dropped_total",
		Type:  "counter",
		Help:  "Spans lost to span-ring overflow across all registered tracers.",
		Value: float64(droppedTotal),
	})
	// Sum identical (layer, event) counters across tracers before emitting:
	// with one tracer per concurrent job, the same label set shows up in
	// many registries, and duplicate series would break the exposition.
	eventTotals := map[statKey]int64{}
	var eventOrder []statKey
	var hists []HistSnapshot
	for _, t := range tracers {
		for _, c := range t.Counts() {
			k := statKey{c.Layer, c.Name}
			if _, ok := eventTotals[k]; !ok {
				eventOrder = append(eventOrder, k)
			}
			eventTotals[k] += c.Val
		}
		hists = append(hists, t.Hists()...)
	}
	for _, k := range eventOrder {
		ms = append(ms, Metric{
			Name:   "balancesort_events_total",
			Type:   "counter",
			Help:   "Observability event counts by layer and event.",
			Labels: []Label{{"layer", k.layer}, {"event", k.name}},
			Value:  float64(eventTotals[k]),
		})
	}
	// The straggler detector's counters additionally surface as their own
	// family, so tail-latency alerting keys on a stable metric name.
	for _, k := range eventOrder {
		if m, ok := stragglerMetric(k.layer, k.name, eventTotals[k]); ok {
			ms = append(ms, m)
		}
	}
	if err := WriteMetrics(w, ms); err != nil {
		return
	}
	// Merge identical (layer, phase) series from multiple tracers so the
	// family stays well-formed (one series per label set).
	merged := map[statKey]*HistSnapshot{}
	var order []statKey
	for i := range hists {
		h := hists[i]
		k := statKey{h.Layer, h.Name}
		if m, ok := merged[k]; ok {
			for j := range m.Counts {
				m.Counts[j] += h.Counts[j]
			}
			m.Sum += h.Sum
			m.N += h.N
		} else {
			cp := h
			merged[k] = &cp
			order = append(order, k)
		}
	}
	out := make([]HistSnapshot, 0, len(order))
	for _, k := range order {
		out = append(out, *merged[k])
	}
	_ = WritePhaseHistograms(w, "balancesort_phase_seconds", out)
}
