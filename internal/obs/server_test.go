package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServerMetricsAndPprof(t *testing.T) {
	s := NewServer()
	tr := New(64, nil)
	tr.Begin("cluster", "scatter", 0).End(Attr{"records", 10})
	tr.Count("cluster", "blocks-received", 0, 4)
	s.SetTracer("coordinator", tr)
	s.AddSource(func() []Metric {
		return []Metric{{Name: "balancesort_disk_reads_total", Type: "counter", Help: "Block reads.", Labels: []Label{{"disk", "0"}}, Value: 12}}
	})
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	text := string(body)
	samples := parsePromText(t, text)
	if samples["balancesort_disk_reads_total"] != 1 {
		t.Fatalf("missing source metric:\n%s", text)
	}
	if samples["balancesort_events_total"] != 1 {
		t.Fatalf("missing tracer counter:\n%s", text)
	}
	if samples["balancesort_phase_seconds_bucket"] == 0 {
		t.Fatalf("missing phase histogram:\n%s", text)
	}
	if !strings.Contains(text, `phase="scatter"`) {
		t.Fatalf("missing scatter phase series:\n%s", text)
	}

	resp, err = http.Get("http://" + s.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", resp.StatusCode)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	s := NewServer()
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Addr() != "" {
		t.Fatalf("Addr after Close = %q", s.Addr())
	}
}
