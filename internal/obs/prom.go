package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Label is one Prometheus label pair.
type Label struct {
	Name  string
	Value string
}

// Metric is one sample of a counter or gauge family. Samples sharing a
// Name form one family; WriteMetrics emits HELP/TYPE once per family.
type Metric struct {
	Name   string
	Type   string // "counter" or "gauge"
	Help   string
	Labels []Label
	Value  float64
}

// Source produces the current samples of one component (disk engine
// stats, cluster worker counters, ...). Sources are polled on every
// /metrics scrape.
type Source func() []Metric

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func writeLabels(b *strings.Builder, labels []Label) {
	if len(labels) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// WriteMetrics writes the samples in the Prometheus text exposition
// format, grouping samples of the same family under one HELP/TYPE header.
// Families appear in first-seen order; samples keep their given order.
func WriteMetrics(w io.Writer, ms []Metric) error {
	var order []string
	families := map[string][]Metric{}
	for _, m := range ms {
		if _, ok := families[m.Name]; !ok {
			order = append(order, m.Name)
		}
		families[m.Name] = append(families[m.Name], m)
	}
	var b strings.Builder
	for _, name := range order {
		fam := families[name]
		if fam[0].Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, fam[0].Help)
		}
		typ := fam[0].Type
		if typ == "" {
			typ = "gauge"
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, typ)
		for _, m := range fam {
			b.WriteString(name)
			writeLabels(&b, m.Labels)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatFloat(m.Value, 'g', -1, 64))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WritePhaseHistograms writes the tracer's per-(layer, phase) duration
// histograms as one Prometheus histogram family with cumulative le
// buckets in seconds, a _sum, and a _count per series.
func WritePhaseHistograms(w io.Writer, name string, hs []HistSnapshot) error {
	if len(hs) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP %s Phase duration distribution by layer and phase.\n", name)
	fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
	for _, h := range hs {
		base := []Label{{"layer", h.Layer}, {"phase", h.Name}}
		cum := int64(0)
		for i := 0; i < HistBuckets; i++ {
			cum += h.Counts[i]
			le := "+Inf"
			if bound := HistBound(i); bound >= 0 {
				le = strconv.FormatFloat(bound.Seconds(), 'g', -1, 64)
			}
			b.WriteString(name)
			b.WriteString("_bucket")
			writeLabels(&b, append(append([]Label{}, base...), Label{"le", le}))
			fmt.Fprintf(&b, " %d\n", cum)
		}
		b.WriteString(name)
		b.WriteString("_sum")
		writeLabels(&b, base)
		b.WriteString(" " + strconv.FormatFloat(h.Sum.Seconds(), 'g', -1, 64) + "\n")
		b.WriteString(name)
		b.WriteString("_count")
		writeLabels(&b, base)
		fmt.Fprintf(&b, " %d\n", h.N)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// stragglerOutcomes maps the cluster layer's straggler-detector event
// counters onto the outcome label of balancesort_stragglers_total.
var stragglerOutcomes = map[string]string{
	"stragglers-detected": "detected",   // demoted to the failover path
	"hedge-wins":          "hedge_win",  // hedge finished first, victim cancelled
	"hedge-losses":        "hedge_loss", // victim finished first, hedge discarded
}

// stragglerMetric maps one (layer, event) counter onto a sample of the
// dedicated balancesort_stragglers_total family, or false if the counter
// is not a straggler-detector event. Kept separate from the generic
// events_total family so a "stragglers firing" alert needs no knowledge
// of the tracer's internal event vocabulary.
func stragglerMetric(layer, event string, val int64) (Metric, bool) {
	outcome, ok := stragglerOutcomes[event]
	if layer != "cluster" || !ok {
		return Metric{}, false
	}
	return Metric{
		Name:   "balancesort_stragglers_total",
		Type:   "counter",
		Help:   "Straggler detections and hedged re-execution outcomes.",
		Labels: []Label{{"outcome", outcome}},
		Value:  float64(val),
	}, true
}

// StragglerMetrics renders a tracer's straggler-detector counters as the
// balancesort_stragglers_total family (empty when the job saw none).
func StragglerMetrics(t *Tracer) []Metric {
	var ms []Metric
	for _, c := range t.Counts() {
		if m, ok := stragglerMetric(c.Layer, c.Name, c.Val); ok {
			ms = append(ms, m)
		}
	}
	return ms
}

// TracerMetrics renders a tracer's event counters as one counter family.
func TracerMetrics(t *Tracer) []Metric {
	counts := t.Counts()
	ms := make([]Metric, 0, len(counts))
	for _, c := range counts {
		ms = append(ms, Metric{
			Name:   "balancesort_events_total",
			Type:   "counter",
			Help:   "Observability event counts by layer and event.",
			Labels: []Label{{"layer", c.Layer}, {"event", c.Name}},
			Value:  float64(c.Val),
		})
	}
	return ms
}
