package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	a := tr.Begin("sort", "distribute-pass", 0)
	a.End(Attr{"n", 42})
	tr.Count("disk", "retry", 1, 3)
	tr.Merge([]Span{{Name: "x"}}, 0, 1)
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil tracer Spans() = %v, want nil", got)
	}
	if got := tr.Hists(); got != nil {
		t.Fatalf("nil tracer Hists() = %v, want nil", got)
	}
	if got := tr.Counts(); got != nil {
		t.Fatalf("nil tracer Counts() = %v, want nil", got)
	}
	if tr.Dropped() != 0 {
		t.Fatal("nil tracer Dropped() != 0")
	}
}

func TestTracerSpansAndAttrs(t *testing.T) {
	tr := New(8, nil)
	a := tr.Begin("cluster", "scatter", 2)
	a.End(Attr{"records", 100}, Attr{"blocks", 5})
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Layer != "cluster" || s.Name != "scatter" || s.ID != 2 || s.Node != 0 {
		t.Fatalf("span = %+v", s)
	}
	if s.Dur < 0 || s.Start < 0 {
		t.Fatalf("negative times: %+v", s)
	}
	if len(s.Attrs) != 2 || s.Attrs[0] != (Attr{"records", 100}) {
		t.Fatalf("attrs = %v", s.Attrs)
	}
}

func TestRingOverflowKeepsNewest(t *testing.T) {
	tr := New(4, nil)
	for i := 0; i < 10; i++ {
		tr.Begin("sort", "p", i).End()
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if s.ID != 6+i {
			t.Fatalf("spans[%d].ID = %d, want %d (newest kept, oldest first)", i, s.ID, 6+i)
		}
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped() = %d, want 6", tr.Dropped())
	}
	// Histograms still count every span, dropped or not.
	hs := tr.Hists()
	if len(hs) != 1 || hs[0].N != 10 {
		t.Fatalf("hists = %+v, want one entry with N=10", hs)
	}
}

func TestHistBucketing(t *testing.T) {
	var h hist
	h.observe(500 * time.Nanosecond) // <= 1µs -> bucket 0
	h.observe(time.Microsecond)      // <= 1µs -> bucket 0
	h.observe(3 * time.Microsecond)  // <= 4µs -> bucket 2
	h.observe(time.Hour)             // beyond last bound -> +Inf bucket
	if h.counts[0] != 2 || h.counts[2] != 1 || h.counts[HistBuckets-1] != 1 {
		t.Fatalf("counts = %v", h.counts)
	}
	if h.n != 4 {
		t.Fatalf("n = %d", h.n)
	}
}

func TestMergeRebasesAndStampsNode(t *testing.T) {
	tr := New(16, nil)
	remote := []Span{
		{Layer: "cluster", Name: "exchange", ID: 0, Start: 5 * time.Millisecond, Dur: time.Millisecond},
	}
	tr.Merge(remote, 2*time.Millisecond, 3)
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].Node != 3 {
		t.Fatalf("Node = %d, want 3", spans[0].Node)
	}
	if spans[0].Start != 7*time.Millisecond {
		t.Fatalf("Start = %v, want 7ms", spans[0].Start)
	}
}

func TestCounts(t *testing.T) {
	tr := New(4, nil)
	tr.Count("disk", "retry", 0, 2)
	tr.Count("disk", "retry", 1, 3)
	tr.Count("disk", "fault", 0, 1)
	cs := tr.Counts()
	if len(cs) != 2 {
		t.Fatalf("counts = %+v", cs)
	}
	if cs[0] != (CountSnapshot{"disk", "fault", 1}) || cs[1] != (CountSnapshot{"disk", "retry", 5}) {
		t.Fatalf("counts = %+v", cs)
	}
}

type recObserver struct {
	starts, ends, counts int
	last                 Span
}

func (o *recObserver) SpanStart(layer, name string, id int)          { o.starts++ }
func (o *recObserver) SpanEnd(s Span)                                { o.ends++; o.last = s }
func (o *recObserver) Count(layer, name string, id int, delta int64) { o.counts++ }

func TestObserverCallbacks(t *testing.T) {
	o := &recObserver{}
	tr := New(4, o)
	tr.Begin("sort", "base-case", 0).End(Attr{"n", 7})
	tr.Count("sort", "records", 0, 7)
	// Merged spans must not re-fire the live observer.
	tr.Merge([]Span{{Layer: "cluster", Name: "gather"}}, 0, 1)
	if o.starts != 1 || o.ends != 1 || o.counts != 1 {
		t.Fatalf("observer = %+v", o)
	}
	if o.last.Name != "base-case" {
		t.Fatalf("last span = %+v", o.last)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := New(16, nil)
	tr.Begin("sort", "distribute-pass", 0).End(Attr{"depth", 1})
	tr.Merge([]Span{{Layer: "cluster", Name: "exchange", Start: time.Millisecond, Dur: time.Millisecond}}, 0, 2)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON invalid: %v\n%s", err, buf.String())
	}
	var xEvents, mEvents int
	pids := map[float64]bool{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "X":
			xEvents++
			for _, field := range []string{"name", "ts", "pid", "tid"} {
				if _, ok := ev[field]; !ok {
					t.Fatalf("X event missing %q: %v", field, ev)
				}
			}
			if ts := ev["ts"].(float64); ts < 0 {
				t.Fatalf("negative ts: %v", ev)
			}
			pids[ev["pid"].(float64)] = true
		case "M":
			mEvents++
			if ev["name"] != "process_name" {
				t.Fatalf("unexpected metadata event: %v", ev)
			}
		default:
			t.Fatalf("unexpected ph %q", ph)
		}
	}
	if xEvents != 2 {
		t.Fatalf("got %d X events, want 2", xEvents)
	}
	if mEvents != 2 {
		t.Fatalf("got %d M (process_name) events, want 2", mEvents)
	}
	if !pids[0] || !pids[2] {
		t.Fatalf("pids = %v, want 0 and 2", pids)
	}
}

func TestHistBound(t *testing.T) {
	if HistBound(0) != time.Microsecond {
		t.Fatalf("HistBound(0) = %v", HistBound(0))
	}
	if HistBound(10) != time.Microsecond<<10 {
		t.Fatalf("HistBound(10) = %v", HistBound(10))
	}
	if HistBound(HistBuckets-1) >= 0 {
		t.Fatal("last bucket should be unbounded")
	}
}
