package analyze

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"balancesort/internal/obs"
)

// fixtureSpans builds a small but fully featured cluster timeline by hand:
// a coordinator (node 0) running scatter then exchange then drain, two
// workers whose exchange spans overlap for half the window, one worker disk
// track, a counter sample, and a flow edge. Times are in milliseconds from
// the epoch so the expected numbers below can be read off directly.
func fixtureSpans() []obs.Span {
	ms := func(n int) int64 { return int64(n) * 1e6 }
	sp := func(node int, layer, name string, id int, startMS, durMS int) obs.Span {
		return obs.Span{
			Node: node, Layer: layer, Name: name, ID: id,
			Start: durationFromNanos(ms(startMS)), Dur: durationFromNanos(ms(durMS)),
		}
	}
	return []obs.Span{
		// Coordinator phases: scatter 0-10, exchange 10-30, drain 30-40.
		sp(0, "cluster", "scatter", 0, 0, 10),
		sp(0, "cluster", "exchange", 0, 10, 20),
		sp(0, "cluster", "drain", 0, 30, 10),
		// Worker 0 (pid 1): scatter-recv 2-8, exchange 10-28.
		sp(1, "cluster", "scatter-recv", 0, 2, 6),
		sp(1, "cluster", "exchange", 0, 10, 18),
		// Worker 1 (pid 2): scatter-recv 4-9, exchange 20-30 — so the
		// exchange window has two workers active only during 20-28, i.e.
		// 8 of 20 ms = 40% overlap; scatter has 2 workers during 4-8,
		// 4 of 10 ms = 40%.
		sp(2, "cluster", "scatter-recv", 0, 4, 5),
		sp(2, "cluster", "exchange", 0, 20, 10),
		// Worker 0 disk 0 busy 12-20.
		sp(1, "disk", "flush", 0, 12, 8),
		// A counter sample and a flow edge: both must be ignored by the
		// busy/overlap math.
		{Node: 0, Layer: obs.LayerCounter, Name: "go.goroutines", ID: 0,
			Start: durationFromNanos(ms(15)), Attrs: []obs.Attr{{Key: "value", Val: 11}}},
		{Node: 0, Layer: "cluster", Name: "flow-plan", ID: 1,
			Start: durationFromNanos(ms(10)), Flow: 0xBEEF, FlowOut: true},
		{Node: 2, Layer: "cluster", Name: "flow-plan", ID: 2,
			Start: durationFromNanos(ms(11)), Flow: 0xBEEF},
	}
}

func durationFromNanos(n int64) time.Duration { return time.Duration(n) }

func loadFixture(t *testing.T, dropped int64) *Trace {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.WriteChromeTraceDropped(&buf, fixtureSpans(), dropped); err != nil {
		t.Fatal(err)
	}
	tr, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestAnalyzeFixture(t *testing.T) {
	rep := Analyze(loadFixture(t, 0), 0)

	if rep.TotalUS != 40000 {
		t.Fatalf("TotalUS = %v, want 40000", rep.TotalUS)
	}
	if rep.Workers != 2 {
		t.Fatalf("Workers = %d, want 2", rep.Workers)
	}
	if len(rep.Phases) != 3 {
		t.Fatalf("got %d phases, want 3: %+v", len(rep.Phases), rep.Phases)
	}
	wantPhases := []struct {
		name     string
		durUS    float64
		overlap  float64
		dominant string
	}{
		{"scatter", 10000, 40, "worker 0: scatter-recv"},
		{"exchange", 20000, 40, "worker 0: exchange"},
		{"drain", 10000, 0, "coordinator: drain"},
	}
	for i, w := range wantPhases {
		p := rep.Phases[i]
		if p.Name != w.name || p.DurUS != w.durUS {
			t.Errorf("phase %d = %s/%v, want %s/%v", i, p.Name, p.DurUS, w.name, w.durUS)
		}
		if p.OverlapPct != w.overlap {
			t.Errorf("phase %s overlap = %v, want %v", p.Name, p.OverlapPct, w.overlap)
		}
		if p.Dominant != w.dominant {
			t.Errorf("phase %s dominant = %q, want %q", p.Name, p.Dominant, w.dominant)
		}
	}

	// Resource rows: worker 0's disk track was busy 8 of 40 ms -> 80% idle.
	var disk *ResourceReport
	for i := range rep.Resources {
		if rep.Resources[i].Name == "worker 0/disk 0" {
			disk = &rep.Resources[i]
		}
	}
	if disk == nil {
		t.Fatalf("no worker 0/disk 0 resource row in %+v", rep.Resources)
	}
	if disk.BusyUS != 8000 || disk.IdlePct != 80 {
		t.Errorf("disk row = busy %v idle %v, want 8000/80", disk.BusyUS, disk.IdlePct)
	}

	// Bottleneck ranking: exchange (20 ms) must rank first.
	if len(rep.Bottlenecks) == 0 || rep.Bottlenecks[0].Phase != "exchange" {
		t.Fatalf("top bottleneck = %+v, want exchange", rep.Bottlenecks)
	}

	if err := OverlapGate(rep); err != nil {
		t.Errorf("OverlapGate on overlapping trace: %v", err)
	}
}

// TestGoldenText locks the exact text rendering, so report formatting
// changes are deliberate.
func TestGoldenText(t *testing.T) {
	rep := Analyze(loadFixture(t, 0), 0)
	var buf bytes.Buffer
	WriteText(&buf, rep)
	const want = `trace: 40.0 ms end to end, 2 workers

critical path (coordinator phases, in order):
  scatter               10.0 ms   25.0% of total  overlap  40.0%  <- worker 0: scatter-recv (6.0 ms)
  exchange              20.0 ms   50.0% of total  overlap  40.0%  <- worker 0: exchange (18.0 ms)
  drain                 10.0 ms   25.0% of total  overlap   0.0%  <- coordinator: drain (0.0 ms)

resource idle time:
  coordinator/cluster      busy      40.0 ms  idle   0.0%
  worker 0/cluster         busy      24.0 ms  idle  40.0%
  worker 0/disk 0          busy       8.0 ms  idle  80.0%
  worker 1/cluster         busy      15.0 ms  idle  62.5%

bottlenecks (worst first):
  #1 exchange — 20.0 ms (50.0% of total): waiting on worker 0: exchange (90% of the window); workers overlapped 40% of the window
  #2 scatter — 10.0 ms (25.0% of total): waiting on worker 0: scatter-recv (60% of the window); workers overlapped 40% of the window
  #3 drain — 10.0 ms (25.0% of total): waiting on coordinator: drain (0% of the window)
`
	if got := buf.String(); got != want {
		t.Errorf("text report mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestDroppedWarning(t *testing.T) {
	rep := Analyze(loadFixture(t, 17), 0)
	if rep.SpansDropped != 17 {
		t.Fatalf("SpansDropped = %d, want 17", rep.SpansDropped)
	}
	var buf bytes.Buffer
	WriteText(&buf, rep)
	if !strings.Contains(buf.String(), "17 spans were dropped") {
		t.Errorf("text report missing drop warning:\n%s", buf.String())
	}
}

func TestOverlapGateSerialized(t *testing.T) {
	// Strip worker 1's overlapping exchange span: shift it after worker
	// 0's, so no window ever has two workers at once.
	spans := fixtureSpans()
	serial := spans[:0:0]
	for _, s := range spans {
		if s.Node == 2 && s.Name == "exchange" {
			s.Start = durationFromNanos(30 * 1e6)
		}
		if s.Node == 2 && s.Name == "scatter-recv" {
			// After worker 0's last span ends at 28; overlapping its own
			// exchange is fine (same pid never counts as overlap).
			s.Start = durationFromNanos(28_500_000)
		}
		serial = append(serial, s)
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTraceDropped(&buf, serial, 0); err != nil {
		t.Fatal(err)
	}
	tr, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(tr, 0)
	if rep.Workers != 2 {
		t.Fatalf("Workers = %d, want 2", rep.Workers)
	}
	if err := OverlapGate(rep); err == nil {
		t.Fatal("OverlapGate passed on a fully serialized 2-worker trace")
	}
}

func TestEmptyTrace(t *testing.T) {
	tr, err := Load(strings.NewReader(`{"traceEvents":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(tr, 0)
	if rep.TotalUS != 0 || len(rep.Phases) != 0 {
		t.Fatalf("empty trace produced %+v", rep)
	}
	if err := OverlapGate(rep); err != nil {
		t.Fatalf("OverlapGate on empty trace: %v", err)
	}
}
