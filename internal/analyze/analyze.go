// Package analyze turns a merged Chrome trace emitted by the sorter into a
// bottleneck report: the critical path through the coordinator's phases, how
// much of each phase ran with workers genuinely in parallel, and how idle
// each resource track sat over the run.
//
// The input is the trace_event JSON that obs.WriteChromeTrace produces —
// "X" complete events for phase spans (pid = node, coordinator first),
// "C" counter samples, "s"/"f" flow edges, and "M" metadata. The analyzer
// only trusts event geometry (ts/dur/pid/cat), so it works on any trace in
// that shape, including hand-built fixtures.
package analyze

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Event is one Chrome trace_event entry, decoded loosely: unknown fields
// are dropped, numbers arrive as float64 microseconds.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// Trace is a loaded trace file.
type Trace struct {
	Events       []Event
	ProcNames    map[int]string // from process_name metadata events
	SpansDropped int64          // from the spans_dropped metadata / footer
}

type traceFile struct {
	TraceEvents []Event        `json:"traceEvents"`
	OtherData   map[string]any `json:"otherData"`
}

// Load parses Chrome trace_event JSON (the object form with a traceEvents
// array, as the sorter writes it).
func Load(r io.Reader) (*Trace, error) {
	var tf traceFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tf); err != nil {
		return nil, fmt.Errorf("analyze: parse trace: %w", err)
	}
	t := &Trace{Events: tf.TraceEvents, ProcNames: map[int]string{}}
	for _, e := range tf.TraceEvents {
		if e.Ph != "M" {
			continue
		}
		switch e.Name {
		case "process_name":
			if n, ok := e.Args["name"].(string); ok {
				t.ProcNames[e.Pid] = n
			}
		case "spans_dropped":
			if c, ok := e.Args["count"].(float64); ok {
				t.SpansDropped = int64(c)
			}
		}
	}
	if d, ok := tf.OtherData["spansDropped"].(float64); ok && t.SpansDropped == 0 {
		t.SpansDropped = int64(d)
	}
	return t, nil
}

func (t *Trace) procName(pid int) string {
	if n, ok := t.ProcNames[pid]; ok {
		return n
	}
	if pid == 0 {
		return "coordinator"
	}
	return fmt.Sprintf("worker %d", pid-1)
}

// Report is the full analysis of one trace.
type Report struct {
	// TotalUS is the wall-clock extent of the trace in microseconds: from
	// the earliest span start to the latest span end.
	TotalUS float64 `json:"total_us"`
	// Workers counts the distinct non-coordinator processes that emitted
	// phase spans.
	Workers int `json:"workers"`
	// Phases are the coordinator's top-level cluster phases in time order;
	// together they are the critical path, since the coordinator runs them
	// strictly one after another.
	Phases []PhaseReport `json:"phases"`
	// Resources are per-track busy/idle summaries: one row per process
	// layer, plus one per disk track.
	Resources []ResourceReport `json:"resources"`
	// Bottlenecks ranks the phases by wall-clock cost, worst first, each
	// with the reason it cost what it did.
	Bottlenecks []Bottleneck `json:"bottlenecks"`
	// Stragglers is non-nil when the trace records straggler detections or
	// hedged shard re-executions — tail-latency events that explain a phase
	// window no resource-utilization row can.
	Stragglers *StragglerReport `json:"stragglers,omitempty"`
	// SpansDropped carries the trace's own loss warning; a non-zero value
	// means the timeline (and so this report) is incomplete.
	SpansDropped int64 `json:"spans_dropped,omitempty"`
}

// StragglerReport summarizes the straggler detector's activity: demotions
// (zero-length "straggler" marker spans) and hedged shard-sort
// re-executions ("hedge" spans with victim/target/armed args).
type StragglerReport struct {
	Detected []StragglerEvent `json:"detected,omitempty"`
	Hedges   []HedgeEvent     `json:"hedges,omitempty"`
}

// StragglerEvent is one demotion: a worker expelled to the failover path
// after blowing its phase deadline budget.
type StragglerEvent struct {
	Worker   int     `json:"worker"`
	AtUS     float64 `json:"at_us"`     // offset from trace start
	BudgetMS float64 `json:"budget_ms"` // the budget it fell past
}

// HedgeEvent is one hedged re-execution: the victim's shard speculatively
// re-sorted on the target, first finisher wins.
type HedgeEvent struct {
	Victim  int     `json:"victim"`
	Target  int     `json:"target"`
	Armed   bool    `json:"armed"` // false: the hedge failed before arming
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
}

// PhaseReport covers one coordinator phase window.
type PhaseReport struct {
	Name    string  `json:"name"`
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
	// PctOfTotal is this phase's share of the end-to-end wall clock — its
	// weight on the critical path.
	PctOfTotal float64 `json:"pct_of_total"`
	// OverlapPct is the fraction of the window during which at least two
	// worker processes had a phase span open: 0 means the workers took
	// strict turns, 100 means they ran fully in parallel.
	OverlapPct float64 `json:"overlap_pct"`
	// Dominant names the single longest span inside the window — the
	// process and span the phase was actually waiting on.
	Dominant      string  `json:"dominant"`
	DominantDurUS float64 `json:"dominant_dur_us"`
}

// ResourceReport is one utilization row: how long a track had at least one
// span open, against the whole run.
type ResourceReport struct {
	Name    string  `json:"name"` // e.g. "worker 1/cluster", "coordinator/disk 0"
	BusyUS  float64 `json:"busy_us"`
	IdlePct float64 `json:"idle_pct"`
}

// Bottleneck is one ranked entry of the final verdict.
type Bottleneck struct {
	Rank       int     `json:"rank"`
	Phase      string  `json:"phase"`
	CostUS     float64 `json:"cost_us"`
	PctOfTotal float64 `json:"pct_of_total"`
	Reason     string  `json:"reason"`
}

type interval struct{ lo, hi float64 }

// unionLen returns the total length covered by the union of the intervals.
func unionLen(iv []interval) float64 {
	if len(iv) == 0 {
		return 0
	}
	sort.Slice(iv, func(a, b int) bool { return iv[a].lo < iv[b].lo })
	total, curLo, curHi := 0.0, iv[0].lo, iv[0].hi
	for _, x := range iv[1:] {
		if x.lo > curHi {
			total += curHi - curLo
			curLo, curHi = x.lo, x.hi
			continue
		}
		if x.hi > curHi {
			curHi = x.hi
		}
	}
	return total + curHi - curLo
}

// clip cuts the intervals to [lo, hi], dropping empties.
func clip(iv []interval, lo, hi float64) []interval {
	out := iv[:0:0]
	for _, x := range iv {
		l, h := math.Max(x.lo, lo), math.Min(x.hi, hi)
		if h > l {
			out = append(out, interval{l, h})
		}
	}
	return out
}

// multiCover returns the length of [lo, hi] covered by at least two of the
// per-key interval sets (each key's set is unioned first, so two spans of
// the same worker never count as overlap).
func multiCover(sets map[int][]interval, lo, hi float64) float64 {
	var bounds []float64
	clipped := make(map[int][]interval, len(sets))
	for k, iv := range sets {
		c := clip(iv, lo, hi)
		if len(c) == 0 {
			continue
		}
		clipped[k] = c
		for _, x := range c {
			bounds = append(bounds, x.lo, x.hi)
		}
	}
	if len(clipped) < 2 {
		return 0
	}
	sort.Float64s(bounds)
	covered := 0.0
	for i := 0; i+1 < len(bounds); i++ {
		segLo, segHi := bounds[i], bounds[i+1]
		if segHi <= segLo {
			continue
		}
		mid := (segLo + segHi) / 2
		active := 0
		for _, iv := range clipped {
			for _, x := range iv {
				if x.lo <= mid && mid < x.hi {
					active++
					break
				}
			}
		}
		if active >= 2 {
			covered += segHi - segLo
		}
	}
	return covered
}

// Analyze computes the report for a loaded trace. coordPid is normally 0
// (the merged-trace convention); pass a different pid to analyze a trace
// whose coordinator landed elsewhere.
func Analyze(t *Trace, coordPid int) *Report {
	rep := &Report{SpansDropped: t.SpansDropped}

	// Collect phase spans ("X" events), splitting coordinator cluster
	// phases from everything else.
	var coordPhases []Event
	workerSets := map[int][]interval{} // worker pid -> cluster span intervals
	trackIv := map[string][]interval{} // resource track -> intervals
	var spans []Event
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, e := range t.Events {
		if e.Ph != "X" || e.Dur < 0 {
			continue
		}
		spans = append(spans, e)
		if e.Ts < lo {
			lo = e.Ts
		}
		if end := e.Ts + e.Dur; end > hi {
			hi = end
		}
		iv := interval{e.Ts, e.Ts + e.Dur}
		if e.Cat == "cluster" {
			switch {
			case e.Pid == coordPid && (e.Name == "hedge" || e.Name == "straggler"):
				// Straggler-detector spans run concurrently with the phase
				// they rescue; they feed the straggler section, not the
				// strictly-sequential critical path.
			case e.Pid == coordPid:
				coordPhases = append(coordPhases, e)
			default:
				workerSets[e.Pid] = append(workerSets[e.Pid], iv)
			}
		}
		track := t.procName(e.Pid) + "/" + e.Cat
		if e.Cat == "disk" {
			track = fmt.Sprintf("%s/disk %d", t.procName(e.Pid), e.Tid)
		}
		trackIv[track] = append(trackIv[track], iv)
	}
	collectStragglers(rep, spans, lo)
	if len(spans) == 0 {
		return rep
	}
	rep.TotalUS = hi - lo
	rep.Workers = len(workerSets)

	// Coordinator phases in start order form the critical path: the
	// coordinator drives them strictly sequentially, so each window's
	// wall-clock cost lands on the end-to-end time in full.
	sort.Slice(coordPhases, func(a, b int) bool { return coordPhases[a].Ts < coordPhases[b].Ts })
	for _, p := range coordPhases {
		pLo, pHi := p.Ts, p.Ts+p.Dur
		pr := PhaseReport{
			Name:    p.Name,
			StartUS: p.Ts - lo,
			DurUS:   p.Dur,
		}
		if rep.TotalUS > 0 {
			pr.PctOfTotal = 100 * p.Dur / rep.TotalUS
		}
		// Dominant span: the longest worker span that overlaps the
		// window; the coordinator's own bookkeeping wins only when no
		// worker was active at all.
		domName, domProc, domDur := p.Name, t.procName(coordPid), 0.0
		for _, e := range spans {
			if e.Pid == coordPid || e.Cat != "cluster" {
				continue
			}
			if e.Ts >= pHi || e.Ts+e.Dur <= pLo {
				continue
			}
			if e.Dur > domDur {
				domName, domProc, domDur = e.Name, t.procName(e.Pid), e.Dur
			}
		}
		pr.Dominant = fmt.Sprintf("%s: %s", domProc, domName)
		pr.DominantDurUS = domDur
		if p.Dur > 0 {
			pr.OverlapPct = 100 * multiCover(workerSets, pLo, pHi) / p.Dur
		}
		rep.Phases = append(rep.Phases, pr)
	}

	// Resource utilization: union each track's spans against the run.
	names := make([]string, 0, len(trackIv))
	for n := range trackIv {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		busy := unionLen(trackIv[n])
		rr := ResourceReport{Name: n, BusyUS: busy}
		if rep.TotalUS > 0 {
			rr.IdlePct = 100 * (1 - busy/rep.TotalUS)
			if rr.IdlePct < 0 {
				rr.IdlePct = 0
			}
		}
		rep.Resources = append(rep.Resources, rr)
	}

	// Bottlenecks: phases ranked by wall-clock cost.
	ranked := append([]PhaseReport(nil), rep.Phases...)
	sort.SliceStable(ranked, func(a, b int) bool { return ranked[a].DurUS > ranked[b].DurUS })
	for i, p := range ranked {
		reason := fmt.Sprintf("waiting on %s (%.0f%% of the window)", p.Dominant, pct(p.DominantDurUS, p.DurUS))
		if rep.Workers > 1 && p.OverlapPct == 0 && p.DominantDurUS > 0 {
			reason += "; workers never overlapped — serialized phase"
		} else if rep.Workers > 1 && p.OverlapPct > 0 {
			reason += fmt.Sprintf("; workers overlapped %.0f%% of the window", p.OverlapPct)
		}
		rep.Bottlenecks = append(rep.Bottlenecks, Bottleneck{
			Rank: i + 1, Phase: p.Name, CostUS: p.DurUS,
			PctOfTotal: p.PctOfTotal, Reason: reason,
		})
	}
	return rep
}

// collectStragglers fills the report's straggler section from the
// coordinator's "straggler" and "hedge" marker spans.
func collectStragglers(rep *Report, spans []Event, lo float64) {
	argInt := func(e Event, key string) int {
		if v, ok := e.Args[key].(float64); ok {
			return int(v)
		}
		return -1
	}
	var sr StragglerReport
	for _, e := range spans {
		if e.Cat != "cluster" {
			continue
		}
		switch e.Name {
		case "straggler":
			ev := StragglerEvent{Worker: argInt(e, "worker"), AtUS: e.Ts - lo}
			if v, ok := e.Args["budget-ms"].(float64); ok {
				ev.BudgetMS = v
			}
			sr.Detected = append(sr.Detected, ev)
		case "hedge":
			sr.Hedges = append(sr.Hedges, HedgeEvent{
				Victim:  argInt(e, "victim"),
				Target:  argInt(e, "target"),
				Armed:   argInt(e, "armed") == 1,
				StartUS: e.Ts - lo,
				DurUS:   e.Dur,
			})
		}
	}
	if len(sr.Detected) > 0 || len(sr.Hedges) > 0 {
		rep.Stragglers = &sr
	}
}

func pct(part, whole float64) float64 {
	if whole <= 0 {
		return 0
	}
	p := 100 * part / whole
	if p > 100 {
		p = 100
	}
	return p
}

// OverlapGate returns an error when the trace shows more than one worker
// yet no coordinator phase ever had two workers running at once — the
// signature of an accidentally serialized cluster (a CI tripwire, not a
// perf heuristic).
func OverlapGate(rep *Report) error {
	if rep.Workers <= 1 {
		return nil
	}
	best := 0.0
	for _, p := range rep.Phases {
		if p.OverlapPct > best {
			best = p.OverlapPct
		}
	}
	if best == 0 {
		return fmt.Errorf("analyze: %d workers but no coordinator phase shows any worker overlap — cluster ran serialized", rep.Workers)
	}
	return nil
}

// WriteText renders the report as the human-readable bottleneck summary.
func WriteText(w io.Writer, rep *Report) {
	fmt.Fprintf(w, "trace: %.1f ms end to end, %d workers\n", rep.TotalUS/1000, rep.Workers)
	if rep.SpansDropped > 0 {
		fmt.Fprintf(w, "WARNING: %d spans were dropped; the report undercounts\n", rep.SpansDropped)
	}
	if len(rep.Phases) > 0 {
		fmt.Fprintf(w, "\ncritical path (coordinator phases, in order):\n")
		for _, p := range rep.Phases {
			fmt.Fprintf(w, "  %-16s %9.1f ms  %5.1f%% of total  overlap %5.1f%%  <- %s (%.1f ms)\n",
				p.Name, p.DurUS/1000, p.PctOfTotal, p.OverlapPct, p.Dominant, p.DominantDurUS/1000)
		}
	}
	if len(rep.Resources) > 0 {
		fmt.Fprintf(w, "\nresource idle time:\n")
		for _, r := range rep.Resources {
			fmt.Fprintf(w, "  %-24s busy %9.1f ms  idle %5.1f%%\n", r.Name, r.BusyUS/1000, r.IdlePct)
		}
	}
	if len(rep.Bottlenecks) > 0 {
		fmt.Fprintf(w, "\nbottlenecks (worst first):\n")
		for _, b := range rep.Bottlenecks {
			fmt.Fprintf(w, "  #%d %s — %.1f ms (%.1f%% of total): %s\n",
				b.Rank, b.Phase, b.CostUS/1000, b.PctOfTotal, b.Reason)
		}
	}
	if s := rep.Stragglers; s != nil {
		fmt.Fprintf(w, "\nstragglers:\n")
		for _, d := range s.Detected {
			fmt.Fprintf(w, "  worker %d demoted at %.1f ms (budget %.0f ms blown)\n",
				d.Worker, d.AtUS/1000, d.BudgetMS)
		}
		for _, h := range s.Hedges {
			verdict := "failed before arming"
			if h.Armed {
				verdict = "armed"
			}
			fmt.Fprintf(w, "  hedge: worker %d re-ran worker %d's shard at %.1f ms for %.1f ms (%s)\n",
				h.Target, h.Victim, h.StartUS/1000, h.DurUS/1000, verdict)
		}
	}
}
