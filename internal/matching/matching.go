// Package matching implements the bipartite partial matching at the heart
// of the paper's rebalancing step (Section 4.2, Algorithm 7, Theorem 5,
// Lemma 1).
//
// The instance shape is fixed by Invariant 1: U is the set of at most
// ⌊H'/2⌋ virtual hierarchies carrying a 2 in the auxiliary matrix, V is all
// H' virtual hierarchies, and u~v iff moving u's overloaded virtual block to
// v removes the 2 (a_b(u),v = 0). Every u has at least ⌈H'/2⌉ neighbors, so
// the graph is dense and three strategies are interesting:
//
//   - Randomized: the paper's Algorithm 7 — every u picks a uniformly random
//     vertex of V until it picks a neighbor; the smallest-numbered u wins
//     each contested v. One shot, expected ≥ H'/4 matches (Lemma 1),
//     parallel time O(T(H)).
//   - Derandomized: the same one-shot experiment run over a pairwise-
//     independent probability space (linear maps over a prime field, the
//     Luby construction the paper cites); every point of the space is
//     evaluated and the best kept, so the outcome is deterministic and at
//     least as good as the space's average. If the best point still falls
//     short of the ⌈H'/4⌉ target the matching is extended greedily — a
//     deterministic completion that only ever adds pairs. Theorem 5's
//     guarantee of ⌈H'/4⌉ matches per call therefore holds unconditionally.
//   - Greedy: plain sequential maximal matching. On these dense instances a
//     maximal matching necessarily matches all of U (if some u were
//     unmatched, its ≥ ⌈H'/2⌉ > ⌊H'/2⌋-1 ≥ |M| neighbors could not all be
//     matched). It is the quality ceiling but needs Ω(H') sequential time —
//     exactly why the paper develops Fast-Partial-Match instead.
//
// Each strategy reports the simulated parallel time of one invocation so
// experiment E5 can reproduce the paper's time/quality trade-off.
package matching

import (
	"math"

	"balancesort/internal/record"
)

// Graph is a dense bipartite matching instance. U[i] is the caller's name
// for left vertex i (Balance passes virtual-hierarchy indices); Adj[i][v]
// reports an edge between left vertex i and right vertex v in 0..H-1.
type Graph struct {
	H   int
	U   []int
	Adj [][]bool
}

// NewGraph builds an instance with |U| = k left vertices over H right
// vertices and no edges.
func NewGraph(h, k int) *Graph {
	g := &Graph{H: h, U: make([]int, k), Adj: make([][]bool, k)}
	for i := range g.Adj {
		g.Adj[i] = make([]bool, h)
	}
	return g
}

// Degree returns the neighbor count of left vertex i.
func (g *Graph) Degree(i int) int {
	d := 0
	for _, e := range g.Adj[i] {
		if e {
			d++
		}
	}
	return d
}

// CheckInvariant1 reports whether every left vertex has at least ⌈H/2⌉
// neighbors and |U| <= ⌊H/2⌋ — the preconditions Balance guarantees.
func (g *Graph) CheckInvariant1() bool {
	if len(g.U) > g.H/2 {
		return false
	}
	need := (g.H + 1) / 2
	for i := range g.U {
		if g.Degree(i) < need {
			return false
		}
	}
	return true
}

// Pair is one matched edge: left vertex index I (so g.U[I] names it) and
// right vertex V.
type Pair struct {
	I int
	V int
}

// Result is a partial matching plus the simulated parallel time of the
// invocation, in the units of the supplied interconnect cost function.
type Result struct {
	Pairs        []Pair
	ParallelTime float64
}

// Target is Theorem 5's guarantee: the number of matches one call must
// produce, min(|U|, ⌈H/4⌉).
func (g *Graph) Target() int {
	t := (g.H + 3) / 4
	if len(g.U) < t {
		t = len(g.U)
	}
	return t
}

// TCost is the interconnect's time to sort H items on H processors; the
// matching's parallel time is O(TCost(H)).
type TCost func(h int) float64

// PRAMCost is T(H) on an EREW PRAM: Θ(log H) (Cole's merge sort).
func PRAMCost(h int) float64 { return lg(float64(h)) }

// HypercubeCost is the best known deterministic T(H) on a hypercube with no
// precomputation: Θ(log H (log log H)²) (Cypher–Plaxton Sharesort).
func HypercubeCost(h int) float64 {
	l := lg(float64(h))
	ll := lg(l)
	return l * ll * ll
}

func lg(x float64) float64 {
	if x <= 2 {
		return 1
	}
	return math.Log2(x)
}

// resolve applies the "smallest-numbered vertex in U wins" rule of
// Algorithm 7 step (2) to the picks (pick[i] < 0 means no pick) and returns
// the matched pairs.
func resolve(g *Graph, pick []int) []Pair {
	winner := make([]int, g.H)
	for v := range winner {
		winner[v] = -1
	}
	for i, v := range pick {
		if v < 0 || !g.Adj[i][v] {
			continue
		}
		if winner[v] == -1 || i < winner[v] {
			winner[v] = i
		}
	}
	var pairs []Pair
	for v, i := range winner {
		if i >= 0 {
			pairs = append(pairs, Pair{I: i, V: v})
		}
	}
	return pairs
}

// Randomized is the paper's Algorithm 7. Every left vertex draws uniform
// vertices of V until it draws a neighbor (expected ≤ 2 draws under
// Invariant 1); contested picks go to the smallest-numbered left vertex.
func Randomized(g *Graph, rng *record.RNG, t TCost) Result {
	pick := make([]int, len(g.U))
	maxDraws := 0
	for i := range g.U {
		if g.Degree(i) == 0 {
			pick[i] = -1
			continue
		}
		draws := 0
		for {
			v := rng.Intn(g.H)
			draws++
			if g.Adj[i][v] {
				pick[i] = v
				break
			}
		}
		if draws > maxDraws {
			maxDraws = draws
		}
	}
	// Step (1) costs O(1) per draw round on H' processors; step (2) is a
	// sort + segmented prefix + monotone route, all O(T(H)).
	return Result{
		Pairs:        resolve(g, pick),
		ParallelTime: float64(maxDraws) + t(g.H),
	}
}

// Derandomized evaluates the one-shot experiment at every point (a, b) of
// the pairwise-independent space {i ↦ ((a·i + b) mod p) mod H : a ∈ [1,p),
// b ∈ [0,p)} for the smallest prime p ≥ H, keeps the best point, and — if
// that still falls short of Target() — completes the matching greedily. The
// result is deterministic.
//
// The charged parallel time follows the paper's accounting: the (H')² space
// points are evaluated by (H')² processor groups simultaneously (H = (H')³
// processors are available), so one evaluation plus a max-reduction costs
// O(T(H)).
func Derandomized(g *Graph, t TCost) Result {
	p := nextPrime(g.H)
	var best []Pair
	pick := make([]int, len(g.U))
	for a := 1; a < p; a++ {
		for b := 0; b < p; b++ {
			for i := range g.U {
				pick[i] = ((a*i + b) % p) % g.H
			}
			pairs := resolve(g, pick)
			if len(pairs) > len(best) {
				best = pairs
			}
			if len(best) >= len(g.U) {
				break // cannot improve
			}
		}
		if len(best) >= len(g.U) {
			break
		}
	}
	if len(best) < g.Target() {
		best = greedyExtend(g, best)
	}
	return Result{Pairs: best, ParallelTime: t(g.H)}
}

// Greedy builds a maximal matching sequentially: each left vertex takes its
// smallest unmatched neighbor. On Invariant-1 instances this matches all of
// U, but takes Θ(|U|·H) sequential work — the ablation baseline of E5/E12.
func Greedy(g *Graph, t TCost) Result {
	pairs := greedyExtend(g, nil)
	// Inherently sequential: charge |U| dependent rounds of O(1) picks plus
	// the same routing cost as the others.
	return Result{Pairs: pairs, ParallelTime: float64(len(g.U)) + t(g.H)}
}

// greedyExtend extends the given matching to a maximal one, deterministically.
func greedyExtend(g *Graph, base []Pair) []Pair {
	usedV := make([]bool, g.H)
	usedU := make([]bool, len(g.U))
	out := append([]Pair(nil), base...)
	for _, pr := range base {
		usedV[pr.V] = true
		usedU[pr.I] = true
	}
	for i := range g.U {
		if usedU[i] {
			continue
		}
		for v := 0; v < g.H; v++ {
			if g.Adj[i][v] && !usedV[v] {
				out = append(out, Pair{I: i, V: v})
				usedV[v] = true
				usedU[i] = true
				break
			}
		}
	}
	return out
}

// Valid reports whether pairs is a matching of g: every pair an edge, no
// left or right vertex used twice.
func Valid(g *Graph, pairs []Pair) bool {
	usedV := make([]bool, g.H)
	usedU := make([]bool, len(g.U))
	for _, pr := range pairs {
		if pr.I < 0 || pr.I >= len(g.U) || pr.V < 0 || pr.V >= g.H {
			return false
		}
		if !g.Adj[pr.I][pr.V] || usedU[pr.I] || usedV[pr.V] {
			return false
		}
		usedU[pr.I] = true
		usedV[pr.V] = true
	}
	return true
}

// nextPrime returns the smallest prime >= n (n >= 1).
func nextPrime(n int) int {
	if n < 2 {
		return 2
	}
	for p := n; ; p++ {
		if isPrime(p) {
			return p
		}
	}
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}
