package matching

import (
	"testing"
	"testing/quick"

	"balancesort/internal/record"
)

// invariantGraph builds a random instance satisfying Invariant 1: k <= H/2
// left vertices, each adjacent to at least ceil(H/2) right vertices.
func invariantGraph(h, k int, rng *record.RNG) *Graph {
	g := NewGraph(h, k)
	need := (h + 1) / 2
	for i := 0; i < k; i++ {
		g.U[i] = i
		deg := need + rng.Intn(h-need+1)
		// Choose deg distinct neighbors.
		perm := make([]int, h)
		for j := range perm {
			perm[j] = j
		}
		for j := h - 1; j > 0; j-- {
			l := rng.Intn(j + 1)
			perm[j], perm[l] = perm[l], perm[j]
		}
		for _, v := range perm[:deg] {
			g.Adj[i][v] = true
		}
	}
	return g
}

func TestCheckInvariant1(t *testing.T) {
	rng := record.NewRNG(1)
	g := invariantGraph(8, 4, rng)
	if !g.CheckInvariant1() {
		t.Fatal("constructed graph violates invariant")
	}
	// Too many left vertices.
	g2 := invariantGraph(8, 4, rng)
	g2.U = append(g2.U, 4)
	g2.Adj = append(g2.Adj, make([]bool, 8))
	if g2.CheckInvariant1() {
		t.Fatal("oversized U accepted")
	}
	// Degree deficit.
	g3 := NewGraph(8, 1)
	g3.Adj[0][0] = true
	if g3.CheckInvariant1() {
		t.Fatal("low-degree vertex accepted")
	}
}

func TestTarget(t *testing.T) {
	g := NewGraph(16, 8)
	if g.Target() != 4 {
		t.Fatalf("Target = %d, want ceil(16/4) = 4", g.Target())
	}
	g2 := NewGraph(16, 2)
	if g2.Target() != 2 {
		t.Fatalf("Target = %d, want |U| = 2", g2.Target())
	}
}

func TestGreedyMatchesAllOfU(t *testing.T) {
	// On Invariant-1 instances a maximal matching matches every left
	// vertex (see package comment).
	rng := record.NewRNG(7)
	for _, h := range []int{2, 4, 8, 16, 64, 128} {
		for trial := 0; trial < 5; trial++ {
			k := 1 + rng.Intn(h/2)
			g := invariantGraph(h, k, rng)
			res := Greedy(g, PRAMCost)
			if !Valid(g, res.Pairs) {
				t.Fatalf("H=%d: greedy produced invalid matching", h)
			}
			if len(res.Pairs) != k {
				t.Fatalf("H=%d k=%d: greedy matched only %d", h, k, len(res.Pairs))
			}
		}
	}
}

func TestRandomizedMeetsLemma1OnAverage(t *testing.T) {
	// Lemma 1: E[matches] >= H'/4. Check the empirical mean over many
	// trials with |U| = floor(H/2) (the extremal case).
	rng := record.NewRNG(42)
	h := 32
	k := h / 2
	trials := 200
	total := 0
	for i := 0; i < trials; i++ {
		g := invariantGraph(h, k, rng)
		res := Randomized(g, rng, PRAMCost)
		if !Valid(g, res.Pairs) {
			t.Fatal("randomized produced invalid matching")
		}
		total += len(res.Pairs)
	}
	mean := float64(total) / float64(trials)
	if mean < float64(h)/4 {
		t.Fatalf("mean matches %.2f < H/4 = %d", mean, h/4)
	}
}

func TestDerandomizedDeterministicAndMeetsTheorem5(t *testing.T) {
	rng := record.NewRNG(3)
	for _, h := range []int{4, 8, 16, 32, 64} {
		for trial := 0; trial < 4; trial++ {
			k := 1 + rng.Intn(h/2)
			g := invariantGraph(h, k, rng)
			r1 := Derandomized(g, PRAMCost)
			r2 := Derandomized(g, PRAMCost)
			if !Valid(g, r1.Pairs) {
				t.Fatalf("H=%d: invalid matching", h)
			}
			if len(r1.Pairs) < g.Target() {
				t.Fatalf("H=%d k=%d: matched %d < target %d", h, k, len(r1.Pairs), g.Target())
			}
			if len(r1.Pairs) != len(r2.Pairs) {
				t.Fatal("derandomized matching not deterministic")
			}
			for i := range r1.Pairs {
				if r1.Pairs[i] != r2.Pairs[i] {
					t.Fatal("derandomized matching not deterministic")
				}
			}
		}
	}
}

func TestDerandomizedQuick(t *testing.T) {
	f := func(seed uint64, hRaw, kRaw uint8) bool {
		h := 2 + int(hRaw%62)
		k := 1 + int(kRaw)%(h/2+1)
		if k > h/2 {
			k = h / 2
		}
		if k == 0 {
			k = 1
		}
		if k > h/2 { // h = 2 or 3 edge case
			return true
		}
		g := invariantGraph(h, k, record.NewRNG(seed))
		res := Derandomized(g, PRAMCost)
		return Valid(g, res.Pairs) && len(res.Pairs) >= g.Target()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomizedHandlesIsolatedVertex(t *testing.T) {
	// Degenerate instance violating Invariant 1 (degree 0): must not loop
	// forever, must still produce a valid (possibly empty) matching.
	g := NewGraph(4, 1)
	res := Randomized(g, record.NewRNG(1), PRAMCost)
	if !Valid(g, res.Pairs) || len(res.Pairs) != 0 {
		t.Fatalf("isolated vertex handled badly: %+v", res)
	}
}

func TestResolveSmallestWins(t *testing.T) {
	g := NewGraph(4, 2)
	g.Adj[0][2] = true
	g.Adj[1][2] = true
	pairs := resolve(g, []int{2, 2})
	if len(pairs) != 1 || pairs[0].I != 0 || pairs[0].V != 2 {
		t.Fatalf("smallest-numbered rule broken: %+v", pairs)
	}
}

func TestValidRejectsBadMatchings(t *testing.T) {
	g := NewGraph(4, 2)
	g.Adj[0][1] = true
	g.Adj[1][1] = true
	if Valid(g, []Pair{{I: 0, V: 0}}) {
		t.Fatal("non-edge accepted")
	}
	if Valid(g, []Pair{{I: 0, V: 1}, {I: 1, V: 1}}) {
		t.Fatal("doubled right vertex accepted")
	}
	if Valid(g, []Pair{{I: 9, V: 1}}) {
		t.Fatal("out-of-range vertex accepted")
	}
}

func TestCostModels(t *testing.T) {
	if PRAMCost(1024) != 10 {
		t.Fatalf("PRAMCost(1024) = %v", PRAMCost(1024))
	}
	// Hypercube cost must dominate PRAM cost for large H.
	if HypercubeCost(1<<16) <= PRAMCost(1<<16) {
		t.Fatal("hypercube cost should exceed PRAM cost")
	}
	// And both saturate at >= 1 for tiny H (log x = max(1, log2 x)).
	if PRAMCost(1) < 1 || HypercubeCost(1) < 1 {
		t.Fatal("cost floor of 1 violated")
	}
}

func TestNextPrime(t *testing.T) {
	cases := map[int]int{1: 2, 2: 2, 3: 3, 4: 5, 8: 11, 90: 97}
	for n, want := range cases {
		if got := nextPrime(n); got != want {
			t.Fatalf("nextPrime(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestGreedyExtendKeepsBase(t *testing.T) {
	g := NewGraph(4, 2)
	for v := 0; v < 4; v++ {
		g.Adj[0][v] = true
		g.Adj[1][v] = true
	}
	base := []Pair{{I: 1, V: 3}}
	out := greedyExtend(g, base)
	found := false
	for _, pr := range out {
		if pr == base[0] {
			found = true
		}
	}
	if !found {
		t.Fatal("base pair dropped")
	}
	if len(out) != 2 {
		t.Fatalf("extension incomplete: %+v", out)
	}
}
