package baseline

import (
	"fmt"

	"balancesort/internal/columnsort"
	"balancesort/internal/pdm"
	"balancesort/internal/pram"
	"balancesort/internal/record"
)

// ColumnSortDisk sorts the n records striped at block offset off with
// Leighton's Columnsort run externally: each column is one memoryload, the
// four column-sort passes are memoryload sorts, and the two transpositions
// are single sequential passes with one block buffer per column. The I/O
// schedule is completely oblivious — every pass reads and writes fixed
// positions regardless of the data — which is Columnsort's selling point
// and the reason [NoV] could build Greed Sort's cleanup on it.
//
// The shape constraint r >= 2(s-1)² with r = M/2 caps n at roughly
// (M/2)^{3/2}; beyond it an error is returned (the recursive extension is
// out of scope — see DESIGN.md).
func ColumnSortDisk(arr *pdm.Array, off, n, p int) (Region, Metrics, error) {
	par := arr.Params()
	cpu := pram.New(maxInt(p, 1))
	arr.ResetStats()

	met := Metrics{N: n}
	if n == 0 {
		return Region{}, met, nil
	}

	r0 := (par.M / 2 / par.B) * par.B
	// Find the smallest column count s whose B-aligned, s-divisible column
	// length r (at most a memoryload) still covers n and satisfies
	// Leighton's r >= 2(s-1)².
	r, s := r0, 1
	for ; ; s++ {
		// r must be divisible by s (Columnsort) and by 2B (the shifted
		// windows start at j·r - r/2, which must stay block-aligned).
		step := lcm(s, 2*par.B)
		r = (r0 / step) * step
		if r == 0 || 2*(s-1)*(s-1) > r {
			return Region{}, met, fmt.Errorf("baseline: columnsort shape r=%d s=%d out of range (n too large for M)", r, s)
		}
		if r*s >= n {
			break
		}
	}
	if s == 1 && n <= r {
		// Single column: one memoryload sort.
		buf := make([]record.Record, n)
		arr.Mem.Use(n)
		readAlignedFrom(arr, off, 0, buf)
		cpu.Sort(buf)
		out := allocStripeFor(arr, n)
		arr.WriteStripe(out, buf)
		arr.Mem.Release(n)
		met.fill(arr, cpu, 1)
		return Region{Off: out, N: n}, met, nil
	}
	if !columnsort.Valid(r, s) {
		return Region{}, met, fmt.Errorf("baseline: columnsort shape r=%d s=%d out of range (n too large for M)", r, s)
	}
	if s*par.B > par.M/4 {
		return Region{}, met, fmt.Errorf("baseline: %d columns need %d records of transpose buffers, M/4 = %d", s, s*par.B, par.M/4)
	}

	total := r * s
	// Region A: the padded column-major matrix; sentinels (+inf) fill the
	// tail and sort to the end, so the final region is read back as n
	// records.
	regA := allocStripeFor(arr, total)
	regB := allocStripeFor(arr, total)
	loadPadded(arr, off, n, regA, total)

	colSorts := 0
	sortColumns := func(reg int) {
		buf := make([]record.Record, r)
		arr.Mem.Use(r)
		for j := 0; j < s; j++ {
			readAlignedFrom(arr, reg, j*r, buf)
			cpu.Sort(buf)
			writeAlignedTo(arr, reg, j*r, buf)
			colSorts++
		}
		arr.Mem.Release(r)
	}

	// The two permutations are inverses; both are realized by a single
	// sequential pass with one block buffer per column.
	deal := func(src, dst int) { // dst[(t%s)*r + t/s] = src[t]
		dealPass(arr, src, dst, total, r, s, par, false)
	}
	gather := func(src, dst int) { // dst[t] = src[(t%s)*r + t/s]
		dealPass(arr, src, dst, total, r, s, par, true)
	}

	sortColumns(regA)                              // step 1
	deal(regA, regB)                               // step 2
	sortColumns(regB)                              // step 3
	gather(regB, regA)                             // step 4
	sortColumns(regA)                              // step 5
	shiftSortDisk(arr, cpu, regA, r, s, &colSorts) // steps 6-8

	met.fill(arr, cpu, 0)
	met.MergeArity = 0
	met.Passes = colSorts
	return Region{Off: regA, N: n}, met, nil
}

// dealPass redistributes a column-major region: forward writes src stream
// slot t to column t%s, row t/s of dst; inverse performs the inverse
// permutation (dst stream slot t reads from column t%s, row t/s of src).
func dealPass(arr *pdm.Array, src, dst, total, r, s int, par pdm.Params, inverse bool) {
	bufs := make([][]record.Record, s)
	fill := make([]int, s)
	rows := make([]int, s)
	for j := range bufs {
		bufs[j] = make([]record.Record, par.B)
	}
	arr.Mem.Use(s*par.B + par.D*par.B)
	chunk := make([]record.Record, par.D*par.B)

	if !inverse {
		// Sequential read of src; buffered writes to the s dst columns.
		for t := 0; t < total; t += len(chunk) {
			m := len(chunk)
			if t+m > total {
				m = total - t
			}
			readAlignedFrom(arr, src, t, chunk[:m])
			for i := 0; i < m; i++ {
				j := (t + i) % s
				bufs[j][fill[j]] = chunk[i]
				fill[j]++
				if fill[j] == par.B {
					writeAlignedTo(arr, dst, j*r+rows[j], bufs[j][:fill[j]])
					rows[j] += fill[j]
					fill[j] = 0
				}
			}
		}
		for j := 0; j < s; j++ {
			if fill[j] > 0 {
				writeAlignedTo(arr, dst, j*r+rows[j], bufs[j][:fill[j]])
				rows[j] += fill[j]
				fill[j] = 0
			}
		}
	} else {
		// Sequential write of dst; buffered reads from the s src columns
		// (the mirror image: keep one read-ahead block per source column).
		srcPos := make([]int, s)
		cur := make([][]record.Record, s) // unconsumed buffered records
		out := make([]record.Record, 0, par.D*par.B)
		outPos := 0
		for t := 0; t < total; t++ {
			j := t % s
			if len(cur[j]) == 0 {
				m := par.B
				if r-srcPos[j] < m {
					m = r - srcPos[j]
				}
				readAlignedFrom(arr, src, j*r+srcPos[j], bufs[j][:m])
				cur[j] = bufs[j][:m]
				srcPos[j] += m
			}
			out = append(out, cur[j][0])
			cur[j] = cur[j][1:]
			if len(out) == cap(out) {
				writeAlignedTo(arr, dst, outPos, out)
				outPos += len(out)
				out = out[:0]
			}
		}
		if len(out) > 0 {
			writeAlignedTo(arr, dst, outPos, out)
		}
	}
	arr.Mem.Release(s*par.B + par.D*par.B)
}

// shiftSortDisk performs Columnsort's steps 6-8 externally: memoryload
// sorts of the boundary-straddling windows.
func shiftSortDisk(arr *pdm.Array, cpu *pram.Machine, reg, r, s int, colSorts *int) {
	buf := make([]record.Record, r)
	arr.Mem.Use(r)
	half := r / 2
	total := r * s
	sortWindow := func(pos, m int) {
		readAlignedFrom(arr, reg, pos, buf[:m])
		cpu.Sort(buf[:m])
		writeAlignedTo(arr, reg, pos, buf[:m])
		*colSorts++
	}
	sortWindow(0, half)
	for j := 1; j < s; j++ {
		sortWindow(j*r-half, r)
	}
	sortWindow(total-half, half)
	arr.Mem.Release(r)
}

// loadPadded copies the n-record input into a fresh total-record region,
// padding the tail with +inf sentinels.
func loadPadded(arr *pdm.Array, off, n, dst, total int) {
	par := arr.Params()
	chunk := make([]record.Record, par.D*par.B)
	arr.Mem.Use(len(chunk))
	pos := 0
	for pos < n {
		m := len(chunk)
		if pos+m > n {
			m = n - pos
		}
		readAlignedFrom(arr, off, pos, chunk[:m])
		writeAlignedTo(arr, dst, pos, chunk[:m])
		pos += m
	}
	// Sentinel padding. The final partial data block was already sentinel-
	// padded by writeAlignedTo, so padding resumes at the next block
	// boundary.
	for i := range chunk {
		chunk[i] = record.Record{Key: ^uint64(0), Loc: ^uint64(0)}
	}
	pos = ((n + par.B - 1) / par.B) * par.B
	for pos < total {
		m := len(chunk)
		if pos+m > total {
			m = total - pos
		}
		writeAlignedTo(arr, dst, pos, chunk[:m])
		pos += m
	}
	arr.Mem.Release(len(chunk))
}

// fill populates the shared metric fields from the array and CPU counters.
func (m *Metrics) fill(arr *pdm.Array, cpu *pram.Machine, passes int) {
	st := arr.Stats()
	m.IOs = st.IOs
	m.ReadIOs = st.ReadIOs
	m.WriteIOs = st.WriteIOs
	m.PRAMTime = cpu.Time()
	m.PRAMWork = cpu.Work()
	if passes != 0 {
		m.Passes = passes
	}
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }

// allocStripeFor reserves a block-aligned striped region for n records.
func allocStripeFor(arr *pdm.Array, n int) int {
	p := arr.Params()
	blocks := (n + p.B - 1) / p.B
	perDisk := (blocks + p.D - 1) / p.D
	if perDisk == 0 {
		perDisk = 1
	}
	return arr.AllocStripe(perDisk)
}

// readAlignedFrom / writeAlignedTo move a record range within a striped
// region; pos must be block-aligned except for a final partial block.
func readAlignedFrom(arr *pdm.Array, off, pos int, buf []record.Record) {
	p := arr.Params()
	if pos%p.B != 0 {
		panic("baseline: unaligned region read")
	}
	first := pos / p.B
	nblocks := (len(buf) + p.B - 1) / p.B
	for base := 0; base < nblocks; base += p.D {
		var ops []pdm.Op
		var dsts [][]record.Record
		for j := 0; j < p.D && base+j < nblocks; j++ {
			blk := first + base + j
			b := make([]record.Record, p.B)
			dsts = append(dsts, b)
			ops = append(ops, pdm.Op{Disk: blk % p.D, Off: off + blk/p.D, Data: b})
		}
		arr.ParallelIO(ops)
		for j, b := range dsts {
			lo := (base + j) * p.B
			hi := lo + p.B
			if hi > len(buf) {
				hi = len(buf)
			}
			if lo < len(buf) {
				copy(buf[lo:hi], b[:hi-lo])
			}
		}
	}
}

func writeAlignedTo(arr *pdm.Array, off, pos int, buf []record.Record) {
	p := arr.Params()
	if pos%p.B != 0 {
		panic("baseline: unaligned region write")
	}
	first := pos / p.B
	nblocks := (len(buf) + p.B - 1) / p.B
	for base := 0; base < nblocks; base += p.D {
		var ops []pdm.Op
		for j := 0; j < p.D && base+j < nblocks; j++ {
			blk := first + base + j
			b := make([]record.Record, p.B)
			lo := (base + j) * p.B
			hi := lo + p.B
			if hi > len(buf) {
				hi = len(buf)
			}
			copy(b, buf[lo:hi])
			for k := hi - lo; k < p.B; k++ {
				b[k] = record.Record{Key: ^uint64(0), Loc: ^uint64(0)}
			}
			ops = append(ops, pdm.Op{Disk: blk % p.D, Off: off + blk/p.D, Write: true, Data: b})
		}
		arr.ParallelIO(ops)
	}
}
