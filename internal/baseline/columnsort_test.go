package baseline

import (
	"testing"

	"balancesort/internal/pdm"
	"balancesort/internal/record"
)

func runColumnSort(t *testing.T, p pdm.Params, in []record.Record) ([]record.Record, Metrics) {
	t.Helper()
	arr := pdm.New(p)
	t.Cleanup(func() { arr.Close() })
	off := allocStripeFor(arr, maxInt(len(in), 1))
	arr.WriteStripe(off, in)
	reg, met, err := ColumnSortDisk(arr, off, len(in), 1)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]record.Record, reg.N)
	if reg.N > 0 {
		arr.ReadStripe(reg.Off, out)
	}
	return out, met
}

func TestColumnSortDiskSingleColumn(t *testing.T) {
	in := record.Generate(record.Uniform, 100, 1)
	out, _ := runColumnSort(t, pSmall(), in)
	check(t, in, out)
}

func TestColumnSortDiskMultiColumn(t *testing.T) {
	for _, w := range record.AllWorkloads {
		in := record.Generate(w, 2000, 2)
		out, _ := runColumnSort(t, pSmall(), in)
		check(t, in, out)
	}
}

func TestColumnSortDiskUnevenTail(t *testing.T) {
	// n not a multiple of the column length: sentinel padding must vanish.
	for _, n := range []int{257, 999, 2001} {
		in := record.Generate(record.Zipf, n, 3)
		out, _ := runColumnSort(t, pSmall(), in)
		check(t, in, out)
	}
}

func TestColumnSortDiskEmpty(t *testing.T) {
	out, _ := runColumnSort(t, pSmall(), nil)
	if len(out) != 0 {
		t.Fatal("empty sort produced records")
	}
}

func TestColumnSortDiskObliviousIOs(t *testing.T) {
	// The I/O count must be identical for different data of the same size
	// — Columnsort's schedule is oblivious.
	a := record.Generate(record.Uniform, 2000, 4)
	b := record.Generate(record.Reversed, 2000, 5)
	_, ma := runColumnSort(t, pSmall(), a)
	_, mb := runColumnSort(t, pSmall(), b)
	if ma.IOs != mb.IOs {
		t.Fatalf("I/Os depend on data: %d vs %d", ma.IOs, mb.IOs)
	}
}

func TestColumnSortDiskTooLarge(t *testing.T) {
	// s grows past the r >= 2(s-1)^2 constraint: must error, not panic.
	p := pdm.Params{D: 2, B: 4, M: 64} // r = 32, s_max ~ 5
	arr := pdm.New(p)
	defer arr.Close()
	n := 32 * 8 // s = 8 -> 2*49 = 98 > 32
	in := record.Generate(record.Uniform, n, 6)
	off := allocStripeFor(arr, n)
	arr.WriteStripe(off, in)
	if _, _, err := ColumnSortDisk(arr, off, n, 1); err == nil {
		t.Fatal("oversized columnsort did not error")
	}
}

func TestColumnSortDiskIOBudget(t *testing.T) {
	// 4 column passes + 2 permutation passes + load: each ~2n/DB I/Os;
	// allow a factor for rounding and the boundary windows.
	p := pSmall()
	in := record.Generate(record.Uniform, 2000, 7)
	out, m := runColumnSort(t, p, in)
	check(t, in, out)
	perPass := 2.0 * float64(len(in)) / float64(p.D*p.B)
	if float64(m.IOs) > 14*perPass {
		t.Fatalf("columnsort used %d I/Os, budget %.0f", m.IOs, 14*perPass)
	}
}
