package baseline

import (
	"testing"

	"balancesort/internal/pdm"
	"balancesort/internal/record"
)

func runGreedSort(t *testing.T, p pdm.Params, in []record.Record) ([]record.Record, GreedSortMetrics) {
	t.Helper()
	arr := pdm.New(p)
	t.Cleanup(func() { arr.Close() })
	off := allocStripeFor(arr, maxInt(len(in), 1))
	arr.WriteStripe(off, in)
	reg, met, err := GreedSort(arr, off, len(in), 1)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]record.Record, reg.N)
	if reg.N > 0 {
		arr.ReadStripe(reg.Off, out)
	}
	return out, met
}

func TestGreedSortAllWorkloads(t *testing.T) {
	for _, w := range record.AllWorkloads {
		in := record.Generate(w, 6000, 1)
		out, _ := runGreedSort(t, pSmall(), in)
		check(t, in, out)
	}
}

func TestGreedSortTiny(t *testing.T) {
	for _, n := range []int{0, 1, 100} {
		in := record.Generate(record.Uniform, n, 2)
		out, _ := runGreedSort(t, pSmall(), in)
		check(t, in, out)
	}
}

func TestGreedSortDisplacementBounded(t *testing.T) {
	// The greedy pass's disorder must stay within a small constant number
	// of memoryloads (this implementation's pool-pressure emission allows
	// a few W/2 units where [NoV]'s discipline proves one), and the
	// cleanup must repair it within a handful of passes per merge level —
	// far below its odd-even worst-case budget.
	p := pSmall()
	in := record.Generate(record.Uniform, 1<<14, 3)
	out, met := runGreedSort(t, p, in)
	check(t, in, out)
	memload := (p.M / 2 / p.B) * p.B
	if met.MaxDisplacement >= 4*memload {
		t.Fatalf("displacement %d >= 4 memoryloads (%d)", met.MaxDisplacement, 4*memload)
	}
	// 64 initial runs at arity 16 -> 4 first-level merge groups + 1 final:
	// five cleanup invocations, each expected to finish in a few rounds.
	groups := 5
	if met.Passes == 0 || met.CleanupPasses > 6*groups {
		t.Fatalf("cleanup needed %d passes over %d merge groups", met.CleanupPasses, groups)
	}
}

func TestGreedSortDeterministic(t *testing.T) {
	in := record.Generate(record.BucketSkew, 9000, 4)
	_, m1 := runGreedSort(t, pSmall(), in)
	_, m2 := runGreedSort(t, pSmall(), in)
	if m1.IOs != m2.IOs || m1.MaxDisplacement != m2.MaxDisplacement {
		t.Fatal("greed sort not deterministic")
	}
}

func TestGreedSortArity(t *testing.T) {
	in := record.Generate(record.Uniform, 1<<14, 5)
	_, met := runGreedSort(t, pSmall(), in)
	// M/(4B) = 512/32 = 16 — full merge arity despite 2-blocks-per-disk
	// pooling, the point of the greedy discipline.
	if met.MergeArity != 16 {
		t.Fatalf("arity = %d, want 16", met.MergeArity)
	}
}

func TestGreedSortIOBudget(t *testing.T) {
	p := pSmall()
	in := record.Generate(record.Uniform, 1<<14, 6)
	out, met := runGreedSort(t, p, in)
	check(t, in, out)
	perPass := 2.0 * float64(len(in)) / float64(p.D*p.B)
	// run formation + per level: greedy pass + cleanup round + verify.
	budget := perPass * float64(1+4*met.Passes) * 2
	if float64(met.IOs) > budget {
		t.Fatalf("greed sort used %d I/Os, budget %.0f (%d levels)", met.IOs, budget, met.Passes)
	}
}
