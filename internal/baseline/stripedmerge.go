// Package baseline implements the algorithms the paper positions Balance
// Sort against on the parallel disk model:
//
//   - StripedMergeSort — disk striping turns the D disks into one logical
//     disk with block size DB, then merge sort runs on it. Deterministic and
//     simple, but the merge arity collapses from Θ(M/B) to Θ(M/(DB)), which
//     costs the Θ(log(M/B)/log(M/DB)) extra factor quoted in Section 1
//     (experiment E11).
//   - ForecastMergeSort — a deterministic merge sort with Greed Sort's
//     defining trait: the disks read *independently*, each I/O fetching on
//     every disk the block most urgently needed by the merge. The arity is
//     back to Θ(M/B) and the I/O count is optimal-shaped. (Greed Sort's
//     worst-case fix-up pass — the Columnsort cleanup after its approximate
//     merge — is not needed here because the merge is exact; see DESIGN.md
//     for the substitution note.)
//   - Randomized distribution sort [ViSa] lives in internal/core as
//     PlacementRandom, since it shares the whole distribution skeleton with
//     Balance Sort.
package baseline

import (
	"container/heap"
	"fmt"

	"balancesort/internal/pdm"
	"balancesort/internal/pram"
	"balancesort/internal/record"
)

// Metrics reports the cost of one baseline sort.
type Metrics struct {
	N          int
	IOs        int64
	ReadIOs    int64
	WriteIOs   int64
	MergeArity int
	Passes     int // merge passes after run formation
	PRAMTime   float64
	PRAMWork   float64
}

// StripedMergeSort sorts the n records striped at block offset off on the
// array and returns the output region plus metrics. P is the PRAM processor
// count for internal-work accounting.
func StripedMergeSort(arr *pdm.Array, off, n, p int) (pdm.Params, Region, Metrics) {
	s := &mergeSorter{arr: arr, cpu: pram.New(maxInt(p, 1)), striped: true}
	reg, met := s.sort(off, n)
	return arr.Params(), reg, met
}

// ForecastMergeSort sorts like StripedMergeSort but reads the disks
// independently with per-disk forecasting, restoring the full merge arity.
func ForecastMergeSort(arr *pdm.Array, off, n, p int) (pdm.Params, Region, Metrics) {
	s := &mergeSorter{arr: arr, cpu: pram.New(maxInt(p, 1)), striped: false}
	reg, met := s.sort(off, n)
	return arr.Params(), reg, met
}

// Region names n records striped at block offset Off (same layout as
// core.Region; duplicated here so baseline does not import core).
type Region struct {
	Off int
	N   int
}

type mergeSorter struct {
	arr     *pdm.Array
	cpu     *pram.Machine
	striped bool
	met     Metrics
}

func (ms *mergeSorter) sort(off, n int) (Region, Metrics) {
	ms.arr.ResetStats()
	ms.cpu.Reset()
	ms.met = Metrics{N: n}

	p := ms.arr.Params()
	memload := (p.M / 2 / p.B) * p.B

	// Run formation: sort memoryloads.
	runs := ms.formRuns(off, n, memload)

	// Merge arity: with striping each run buffer must hold one logical
	// block of DB records; with independent disks a physical block of B
	// suffices (double-buffered), which is the whole difference.
	var arity int
	if ms.striped {
		arity = p.M / (2 * p.D * p.B)
	} else {
		arity = p.M / (4 * p.B)
	}
	if arity < 2 {
		arity = 2
	}
	ms.met.MergeArity = arity

	for len(runs) > 1 {
		ms.met.Passes++
		var next []Region
		for i := 0; i < len(runs); i += arity {
			j := i + arity
			if j > len(runs) {
				j = len(runs)
			}
			next = append(next, ms.mergeOnce(runs[i:j]))
		}
		runs = next
	}

	st := ms.arr.Stats()
	ms.met.IOs = st.IOs
	ms.met.ReadIOs = st.ReadIOs
	ms.met.WriteIOs = st.WriteIOs
	ms.met.PRAMTime = ms.cpu.Time()
	ms.met.PRAMWork = ms.cpu.Work()
	if len(runs) == 0 {
		return Region{}, ms.met
	}
	return runs[0], ms.met
}

func (ms *mergeSorter) formRuns(off, n, memload int) []Region {
	runs, _ := ms.formRunsWithMinima(off, n, memload)
	return runs
}

// formRunsWithMinima also returns, per run, the first key of each of its
// blocks — the forecasting metadata Greed Sort records while the sorted
// memoryload is still in memory (B keys of bookkeeping per run, free).
func (ms *mergeSorter) formRunsWithMinima(off, n, memload int) ([]Region, [][]record.Record) {
	p := ms.arr.Params()
	var runs []Region
	var minima [][]record.Record
	for pos := 0; pos < n; pos += memload {
		sz := memload
		if pos+sz > n {
			sz = n - pos
		}
		ms.arr.Mem.Use(sz)
		buf := make([]record.Record, sz)
		// The input region is block-aligned; pos is a multiple of memload,
		// itself a multiple of B, so we can address whole stripe rows.
		ms.readAligned(off, pos, buf)
		ms.cpu.Sort(buf)
		outOff := ms.allocStripe(sz)
		ms.arr.WriteStripe(outOff, buf)
		runs = append(runs, Region{Off: outOff, N: sz})
		mins := make([]record.Record, 0, (sz+p.B-1)/p.B)
		for k := 0; k < sz; k += p.B {
			mins = append(mins, buf[k])
		}
		minima = append(minima, mins)
		ms.arr.Mem.Release(sz)
	}
	return runs, minima
}

// readAligned reads buf's worth of records starting at record index pos of
// the striped region at block offset off. pos must be a multiple of B.
func (ms *mergeSorter) readAligned(off, pos int, buf []record.Record) {
	p := ms.arr.Params()
	if pos%p.B != 0 {
		panic("baseline: unaligned region read")
	}
	first := pos / p.B
	nblocks := (len(buf) + p.B - 1) / p.B
	for base := 0; base < nblocks; base += p.D {
		var ops []pdm.Op
		var dsts [][]record.Record
		for j := 0; j < p.D && base+j < nblocks; j++ {
			blk := first + base + j
			b := make([]record.Record, p.B)
			dsts = append(dsts, b)
			ops = append(ops, pdm.Op{Disk: blk % p.D, Off: off + blk/p.D, Data: b})
		}
		ms.arr.ParallelIO(ops)
		for j, b := range dsts {
			lo := (base+j)*p.B - 0
			hi := lo + p.B
			if hi > len(buf) {
				hi = len(buf)
			}
			if lo < len(buf) {
				copy(buf[lo:hi], b[:hi-lo])
			}
		}
	}
}

func (ms *mergeSorter) allocStripe(n int) int {
	p := ms.arr.Params()
	blocks := (n + p.B - 1) / p.B
	perDisk := (blocks + p.D - 1) / p.D
	return ms.arr.AllocStripe(perDisk)
}

// runCursor walks one run block by block during a merge. pos counts the
// records fetched from disk so far; buf holds the records handed to the
// merge but not yet consumed; ahead holds at most one prefetched block
// (the forecasting lookahead of the non-striped merge).
type runCursor struct {
	reg   Region
	pos   int
	buf   []record.Record
	ahead []record.Record
}

func (rc *runCursor) exhausted() bool {
	return rc.pos >= rc.reg.N && len(rc.buf) == 0 && len(rc.ahead) == 0
}

// hasData reports whether the merge can take a record without an I/O.
func (rc *runCursor) hasData() bool { return len(rc.buf) > 0 || len(rc.ahead) > 0 }

// promote moves the lookahead block into buf if buf is empty.
func (rc *runCursor) promote() {
	if len(rc.buf) == 0 && len(rc.ahead) > 0 {
		rc.buf, rc.ahead = rc.ahead, nil
	}
}

// forecastKey is the last buffered record — the moment this run will next
// demand a block. Runs with no buffered data are infinitely urgent.
func (rc *runCursor) forecastKey() (record.Record, bool) {
	if len(rc.ahead) > 0 {
		return rc.ahead[len(rc.ahead)-1], true
	}
	if len(rc.buf) > 0 {
		return rc.buf[len(rc.buf)-1], true
	}
	return record.Record{}, false
}

// diskOf returns which disk the run's block i lives on.
func (rc *runCursor) diskOf(i, d int) int { return i % d }

func (rc *runCursor) offOf(i, d int) int { return rc.reg.Off + i/d }

type mergeItem struct {
	rec record.Record
	run int
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int            { return len(h) }
func (h mergeHeap) Less(i, j int) bool  { return h[i].rec.Less(h[j].rec) }
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// mergeOnce merges the given runs into a fresh region.
func (ms *mergeSorter) mergeOnce(runs []Region) Region {
	p := ms.arr.Params()
	total := 0
	cursors := make([]*runCursor, len(runs))
	for i, r := range runs {
		cursors[i] = &runCursor{reg: r}
		total += r.N
	}

	outOff := ms.allocStripe(total)
	outBuf := make([]record.Record, 0, p.D*p.B)
	outBlock := 0
	written := 0
	ms.arr.Mem.Use(p.D * p.B) // output buffer

	flushOut := func(force bool) {
		for len(outBuf) >= p.B*p.D || (force && len(outBuf) > 0) {
			var ops []pdm.Op
			for j := 0; j < p.D && len(outBuf) > 0; j++ {
				blk := make([]record.Record, p.B)
				take := copy(blk, outBuf)
				if take < p.B {
					for k := take; k < p.B; k++ {
						blk[k] = record.Record{Key: ^uint64(0), Loc: ^uint64(0)}
					}
					if !force {
						break
					}
				}
				outBuf = outBuf[take:]
				ops = append(ops, pdm.Op{Disk: outBlock % p.D, Off: outOff + outBlock/p.D, Write: true, Data: blk})
				outBlock++
			}
			ms.arr.ParallelIO(ops)
			if force && len(outBuf) == 0 {
				break
			}
		}
	}

	// Per-run buffer budget (charged while the merge runs).
	var bufRecords int
	if ms.striped {
		bufRecords = len(runs) * p.D * p.B
	} else {
		bufRecords = 2 * len(runs) * p.B // current block + lookahead block
	}
	ms.arr.Mem.Use(bufRecords)

	refill := ms.refillStriped
	if !ms.striped {
		refill = ms.refillForecast
	}

	var h mergeHeap
	refill(cursors, nil)
	for i, rc := range cursors {
		if len(rc.buf) > 0 {
			h = append(h, mergeItem{rec: rc.buf[0], run: i})
			rc.buf = rc.buf[1:]
		}
	}
	heap.Init(&h)
	ms.cpu.ChargeScan(len(runs))

	for h.Len() > 0 {
		it := h[0]
		outBuf = append(outBuf, it.rec)
		written++
		rc := cursors[it.run]
		if len(rc.buf) == 0 && !rc.exhausted() {
			refill(cursors, []int{it.run})
		}
		if len(rc.buf) > 0 {
			h[0] = mergeItem{rec: rc.buf[0], run: it.run}
			rc.buf = rc.buf[1:]
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
		flushOut(false)
	}
	flushOut(true)
	ms.arr.Mem.Release(bufRecords)
	ms.arr.Mem.Release(p.D * p.B)
	if written != total {
		panic(fmt.Sprintf("baseline: merged %d of %d records", written, total))
	}
	// Charge the merge's comparisons: total * log(arity).
	ms.cpu.ChargeMerge(total)
	ms.cpu.ChargePartition(total, len(runs))
	return Region{Off: outOff, N: total}
}

// refillStriped loads the next logical block (one stripe row, DB records)
// of every run whose buffer is empty; one I/O per needy run.
func (ms *mergeSorter) refillStriped(cursors []*runCursor, needy []int) {
	p := ms.arr.Params()
	idxs := needy
	if idxs == nil {
		idxs = allIdx(len(cursors))
	}
	for _, i := range idxs {
		rc := cursors[i]
		if rc.pos >= rc.reg.N || len(rc.buf) > 0 {
			continue
		}
		want := p.D * p.B
		if rc.reg.N-rc.pos < want {
			want = rc.reg.N - rc.pos
		}
		buf := make([]record.Record, want)
		ms.readAligned(rc.reg.Off, rc.pos, buf)
		rc.pos += want
		rc.buf = buf
	}
}

// refillForecast is Greed Sort's defining discipline: every I/O lets each
// disk independently fetch the block it will be asked for soonest. needy
// names runs whose buffers just emptied; the function loops full-width
// fetch rounds until every needy, non-exhausted run has data again, and
// every round also prefetches opportunistically on the remaining disks
// (most urgent run first, judged by each run's last buffered key).
func (ms *mergeSorter) refillForecast(cursors []*runCursor, needy []int) {
	p := ms.arr.Params()
	for _, i := range orDefault(needy, allIdx(len(cursors))) {
		cursors[i].promote()
	}
	for {
		blocked := false
		for _, i := range orDefault(needy, allIdx(len(cursors))) {
			rc := cursors[i]
			if !rc.hasData() && rc.pos < rc.reg.N {
				blocked = true
			}
		}
		if !blocked {
			return
		}
		// One fetch round: per disk, the most urgent candidate run.
		best := make(map[int]int) // disk -> cursor index
		for i, rc := range cursors {
			if rc.pos >= rc.reg.N || len(rc.ahead) > 0 {
				continue // exhausted or lookahead already full
			}
			disk := rc.diskOf(rc.pos/p.B, p.D)
			j, ok := best[disk]
			if !ok {
				best[disk] = i
				continue
			}
			// Bufferless runs outrank everything; otherwise smaller
			// forecast key wins.
			ki, oki := rc.forecastKey()
			kj, okj := cursors[j].forecastKey()
			if !oki && okj {
				best[disk] = i
			} else if oki && okj && ki.Less(kj) {
				best[disk] = i
			}
		}
		if len(best) == 0 {
			panic("baseline: forecast merge starved with blocked runs")
		}
		var ops []pdm.Op
		type fill struct {
			rc   *runCursor
			buf  []record.Record
			want int
		}
		var fills []fill
		for disk, i := range best {
			rc := cursors[i]
			blk := rc.pos / p.B
			want := p.B
			if rc.reg.N-rc.pos < want {
				want = rc.reg.N - rc.pos
			}
			buf := make([]record.Record, p.B)
			ops = append(ops, pdm.Op{Disk: disk, Off: rc.offOf(blk, p.D), Data: buf})
			fills = append(fills, fill{rc, buf, want})
		}
		ms.arr.ParallelIO(ops)
		for _, f := range fills {
			f.rc.ahead = f.buf[:f.want]
			f.rc.pos += f.want
			f.rc.promote()
		}
	}
}

func orDefault(xs, def []int) []int {
	if xs == nil {
		return def
	}
	return xs
}

func allIdx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
