package baseline

import (
	"testing"

	"balancesort/internal/pdm"
	"balancesort/internal/record"
)

func runBaseline(t *testing.T, f func(*pdm.Array, int, int, int) (pdm.Params, Region, Metrics),
	p pdm.Params, in []record.Record) ([]record.Record, Metrics) {
	t.Helper()
	arr := pdm.New(p)
	t.Cleanup(func() { arr.Close() })
	blocks := (len(in) + p.B - 1) / p.B
	perDisk := (blocks + p.D - 1) / p.D
	off := arr.AllocStripe(perDisk)
	arr.WriteStripe(off, in)
	_, reg, met := f(arr, off, len(in), 1)
	out := make([]record.Record, reg.N)
	arr.ReadStripe(reg.Off, out)
	return out, met
}

func check(t *testing.T, in, out []record.Record) {
	t.Helper()
	if len(out) != len(in) {
		t.Fatalf("got %d records, want %d", len(out), len(in))
	}
	if !record.IsSorted(out) {
		t.Fatal("output not sorted")
	}
	if !record.SameMultiset(in, out) {
		t.Fatal("output not a permutation of input")
	}
}

func pSmall() pdm.Params { return pdm.Params{D: 4, B: 8, M: 512} }

func TestStripedMergeSortsAllWorkloads(t *testing.T) {
	for _, w := range record.AllWorkloads {
		in := record.Generate(w, 5000, 1)
		out, _ := runBaseline(t, StripedMergeSort, pSmall(), in)
		check(t, in, out)
	}
}

func TestForecastMergeSortsAllWorkloads(t *testing.T) {
	for _, w := range record.AllWorkloads {
		in := record.Generate(w, 5000, 2)
		out, _ := runBaseline(t, ForecastMergeSort, pSmall(), in)
		check(t, in, out)
	}
}

func TestTinyInputs(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64} {
		in := record.Generate(record.Uniform, n, 3)
		out, _ := runBaseline(t, StripedMergeSort, pSmall(), in)
		check(t, in, out)
		out, _ = runBaseline(t, ForecastMergeSort, pSmall(), in)
		check(t, in, out)
	}
}

func TestForecastArityExceedsStriped(t *testing.T) {
	in := record.Generate(record.Uniform, 4000, 4)
	_, ms := runBaseline(t, StripedMergeSort, pSmall(), in)
	_, mf := runBaseline(t, ForecastMergeSort, pSmall(), in)
	// Striped: M/(2DB) = 512/64 = 8. Forecast: M/(4B) = 16.
	if ms.MergeArity != 8 || mf.MergeArity != 16 {
		t.Fatalf("arities = %d/%d, want 8/16", ms.MergeArity, mf.MergeArity)
	}
}

func TestStripedPaysMorePassesWhenDBLarge(t *testing.T) {
	// DB close to M/2 collapses striped arity to 2 while the forecast
	// merge keeps M/(4B); with enough runs the striped pass count and I/O
	// count must be strictly larger.
	p := pdm.Params{D: 16, B: 8, M: 512} // DB = 128 = M/4; striped arity = 2, forecast = 16
	in := record.Generate(record.Uniform, 1<<15, 5)
	outS, ms := runBaseline(t, StripedMergeSort, p, in)
	check(t, in, outS)
	outF, mf := runBaseline(t, ForecastMergeSort, p, in)
	check(t, in, outF)
	if ms.Passes <= mf.Passes {
		t.Fatalf("striped passes %d, forecast passes %d — striping should pay the log(M/B)/log(M/DB) factor",
			ms.Passes, mf.Passes)
	}
	if ms.IOs <= mf.IOs {
		t.Fatalf("striped I/Os %d <= forecast I/Os %d", ms.IOs, mf.IOs)
	}
}

func TestForecastIOsNearOneBlockPerRecordPass(t *testing.T) {
	// Each merge pass should move ~N records with ~N/(DB) I/Os each way;
	// allow a generous factor for partial rounds and mandatory fetches.
	p := pSmall()
	in := record.Generate(record.Uniform, 1<<14, 6)
	out, m := runBaseline(t, ForecastMergeSort, p, in)
	check(t, in, out)
	perPass := float64(len(in)) / float64(p.D*p.B) * 2 // read + write
	budget := perPass * float64(m.Passes+1) * 3
	if float64(m.IOs) > budget {
		t.Fatalf("forecast merge used %d I/Os, budget %.0f (%d passes)", m.IOs, budget, m.Passes)
	}
}

func TestMergeDeterministic(t *testing.T) {
	in := record.Generate(record.Uniform, 9000, 7)
	_, m1 := runBaseline(t, ForecastMergeSort, pSmall(), in)
	_, m2 := runBaseline(t, ForecastMergeSort, pSmall(), in)
	if m1.IOs != m2.IOs || m1.Passes != m2.Passes {
		t.Fatal("forecast merge not deterministic")
	}
}

func TestMetricsPopulated(t *testing.T) {
	in := record.Generate(record.Uniform, 5000, 8)
	_, m := runBaseline(t, StripedMergeSort, pSmall(), in)
	if m.N != 5000 || m.IOs == 0 || m.ReadIOs == 0 || m.WriteIOs == 0 || m.PRAMTime <= 0 {
		t.Fatalf("metrics incomplete: %+v", m)
	}
}

func TestDuplicateKeysStable(t *testing.T) {
	in := record.Generate(record.FewDistinct, 6000, 9)
	out, _ := runBaseline(t, ForecastMergeSort, pSmall(), in)
	check(t, in, out)
	for i := 1; i < len(out); i++ {
		if out[i].Key == out[i-1].Key && out[i].Loc < out[i-1].Loc {
			t.Fatal("equal keys out of location order")
		}
	}
}
