package baseline

import (
	"container/heap"
	"fmt"
	"sort"

	"balancesort/internal/pdm"
	"balancesort/internal/pram"
	"balancesort/internal/record"
)

// GreedSortMetrics extends the shared metrics with the quantities specific
// to the greedy merge: how disordered the approximate pass left the data
// and how many cleanup passes were needed to finish.
type GreedSortMetrics struct {
	Metrics
	// MaxDisplacement is the largest distance any record sat from its
	// final position after the greedy pass (per merge level, the maximum).
	MaxDisplacement int
	// CleanupPasses counts window-sort passes run (two per cleanup round).
	CleanupPasses int
}

// GreedSort is the Nodine–Vitter Greed Sort [NoV] reproduced in spirit: a
// merge sort whose merge pass is *approximate* — each parallel I/O lets
// every disk independently fetch the block whose first key is smallest
// among the runs' next blocks on that disk, and each step emits the DB
// smallest pooled records — followed by a deterministic cleanup that sorts
// overlapping memoryload windows until the residual disorder is gone.
//
// [NoV] bound the greedy pass's displacement analytically and clean up
// with a fixed Columnsort schedule; here the displacement is *measured*
// (the simulator can afford to) and the cleanup loops its two offset
// window passes until a full pass verifies sortedness, so correctness is
// unconditional and the metrics report how hard the cleanup had to work —
// on every workload in the test suite one round (two passes) suffices,
// matching the paper's fixed schedule.
func GreedSort(arr *pdm.Array, off, n, p int) (Region, GreedSortMetrics, error) {
	par := arr.Params()
	cpu := pram.New(maxInt(p, 1))
	arr.ResetStats()
	met := GreedSortMetrics{Metrics: Metrics{N: n}}
	if n == 0 {
		return Region{}, met, nil
	}

	ms := &mergeSorter{arr: arr, cpu: cpu, striped: false}
	memload := (par.M / 2 / par.B) * par.B
	runs, minima := ms.formRunsWithMinima(off, n, memload)

	arity := par.M / (4 * par.B)
	if arity < 2 {
		arity = 2
	}
	met.MergeArity = arity

	for len(runs) > 1 {
		met.Passes++
		var next []Region
		var nextMinima [][]record.Record
		for i := 0; i < len(runs); i += arity {
			j := i + arity
			if j > len(runs) {
				j = len(runs)
			}
			out, disp := greedyMerge(arr, cpu, runs[i:j], minima[i:j])
			if disp > met.MaxDisplacement {
				met.MaxDisplacement = disp
			}
			cleaned, passes, mins, err := cleanupWindows(arr, cpu, out, memload)
			if err != nil {
				return Region{}, met, err
			}
			met.CleanupPasses += passes
			next = append(next, cleaned)
			nextMinima = append(nextMinima, mins)
		}
		runs, minima = next, nextMinima
	}

	met.fill(arr, cpu, met.Passes)
	if len(runs) == 0 {
		return Region{}, met, nil
	}
	return runs[0], met, nil
}

// poolItem is one buffered block's cursor in the greedy merge pool.
type poolItem struct {
	recs []record.Record
}

type poolHeap []*poolItem

func (h poolHeap) Len() int            { return len(h) }
func (h poolHeap) Less(i, j int) bool  { return h[i].recs[0].Less(h[j].recs[0]) }
func (h poolHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *poolHeap) Push(x interface{}) { *h = append(*h, x.(*poolItem)) }
func (h *poolHeap) Pop() interface{} {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

// greedyMerge approximately merges the runs: per step, one parallel read
// I/O in which every disk independently fetches its most promising block
// (smallest first key among the runs' next blocks on that disk), then the
// DB smallest pooled records are written out as one stripe row. Returns
// the output region and the measured maximum displacement from sorted
// order.
func greedyMerge(arr *pdm.Array, cpu *pram.Machine, runs []Region, minima [][]record.Record) (Region, int) {
	par := arr.Params()
	total := 0
	type cursor struct {
		reg  Region
		mins []record.Record // first key of each block (run metadata)
		pos  int             // records fetched
	}
	cursors := make([]*cursor, len(runs))
	for i, r := range runs {
		cursors[i] = &cursor{reg: r, mins: minima[i]}
		total += r.N
	}

	outOff := allocStripeFor(arr, total)
	outBlock := 0
	emitted := 0

	var pool poolHeap
	pooled := 0
	// The pool may grow to a quarter memoryload: with arity M/(4B) runs
	// that is room for roughly one block per run, so the safe frontier can
	// usually be respected and unsafe (disorder-creating) emission stays a
	// pressure valve rather than the steady state.
	poolCap := par.M / 4
	if poolCap < 4*par.D*par.B {
		poolCap = 4 * par.D * par.B
	}
	arr.Mem.Use(poolCap + par.D*par.B)

	// fetchRound: each disk picks, among runs whose next block lives on
	// it, the block with the smallest first key. Runs already fully
	// fetched are skipped. One parallel I/O for the whole round.
	fetchRound := func() bool {
		type pick struct {
			c   *cursor
			key record.Record
		}
		best := make(map[int]pick, par.D)
		for _, c := range cursors {
			if c.pos >= c.reg.N {
				continue
			}
			blk := c.pos / par.B
			disk := blk % par.D
			key := c.mins[blk]
			if b, ok := best[disk]; !ok || key.Less(b.key) {
				best[disk] = pick{c: c, key: key}
			}
		}
		if len(best) == 0 {
			return false
		}
		var ops []pdm.Op
		type fill struct {
			c    *cursor
			buf  []record.Record
			want int
		}
		var fills []fill
		for disk, pk := range best {
			c := pk.c
			blk := c.pos / par.B
			want := par.B
			if c.reg.N-c.pos < want {
				want = c.reg.N - c.pos
			}
			buf := make([]record.Record, par.B)
			ops = append(ops, pdm.Op{Disk: disk, Off: c.reg.Off + blk/par.D, Data: buf})
			fills = append(fills, fill{c, buf, want})
		}
		arr.ParallelIO(ops)
		for _, f := range fills {
			heap.Push(&pool, &poolItem{recs: f.buf[:f.want]})
			pooled += f.want
			f.c.pos += f.want
		}
		return true
	}

	// frontier is the smallest first key among the runs' unfetched blocks:
	// every pooled record below it is globally safe to emit. Records at or
	// above it may still be overtaken by unfetched data — emitting them is
	// the "greed" that creates the bounded disorder the cleanup repairs.
	frontier := func() (record.Record, bool) {
		var f record.Record
		have := false
		for _, c := range cursors {
			if c.pos >= c.reg.N {
				continue
			}
			k := c.mins[c.pos/par.B]
			if !have || k.Less(f) {
				f, have = k, true
			}
		}
		return f, have
	}

	// outBuf stages emitted records; flushOut writes whole blocks, up to D
	// per parallel I/O, padding only the final block of the whole run.
	var outBuf []record.Record
	flushOut := func(force bool) {
		for len(outBuf) >= par.B || (force && len(outBuf) > 0) {
			var ops []pdm.Op
			for j := 0; j < par.D; j++ {
				if len(outBuf) < par.B && !(force && len(outBuf) > 0) {
					break
				}
				blk := make([]record.Record, par.B)
				take := copy(blk, outBuf)
				for k := take; k < par.B; k++ {
					blk[k] = record.Record{Key: ^uint64(0), Loc: ^uint64(0)}
				}
				outBuf = outBuf[take:]
				ops = append(ops, pdm.Op{Disk: outBlock % par.D, Off: outOff + outBlock/par.D, Write: true, Data: blk})
				outBlock++
			}
			arr.ParallelIO(ops)
		}
	}

	// emitRow drains up to DB records from the pool per call:
	// preferentially safe records; unsafe ones only when unsafeOK (pool
	// pressure or final drain).
	row := make([]record.Record, 0, par.D*par.B)
	emitRow := func(unsafeOK bool) int {
		f, bounded := frontier()
		want := par.D * par.B
		if want > pooled {
			want = pooled
		}
		row = row[:0]
		for len(row) < want && len(pool) > 0 {
			it := pool[0]
			if bounded && !unsafeOK && !it.recs[0].Less(f) {
				break // only unsafe records remain
			}
			take := it.recs
			room := want - len(row)
			if len(take) > room {
				take = take[:room]
			}
			if bounded && !unsafeOK {
				// Trim the take at the frontier.
				cut := len(take)
				for cut > 0 && !take[cut-1].Less(f) {
					cut--
				}
				take = take[:cut]
				if len(take) == 0 {
					break
				}
			}
			row = append(row, take...)
			it.recs = it.recs[len(take):]
			if len(it.recs) == 0 {
				heap.Pop(&pool)
			} else {
				heap.Fix(&pool, 0)
			}
			pooled -= len(take)
		}
		if len(row) == 0 {
			return 0
		}
		// Pool order interleaves blocks; sort the emitted chunk locally (a
		// base-level operation), then stage it so only whole blocks reach
		// disk — a partial block mid-stream would leave sentinel holes.
		sort.Slice(row, func(i, j int) bool { return row[i].Less(row[j]) })
		cpu.ChargeSort(len(row))
		outBuf = append(outBuf, row...)
		flushOut(false)
		emitted += len(row)
		return len(row)
	}

	for emitted < total {
		progressed := fetchRound()
		// Emit full safe rows while the pool holds a row's worth; under
		// pool pressure (or at the end) emit unsafely to keep draining.
		for pooled >= par.D*par.B || (!progressed && pooled > 0) {
			unsafeOK := pooled >= poolCap-par.D*par.B || !progressed
			if emitRow(unsafeOK) == 0 {
				if !unsafeOK {
					break // wait for the frontier to advance
				}
				panic(fmt.Sprintf("baseline: greedy merge stalled at %d of %d", emitted, total))
			}
		}
	}
	flushOut(true)
	arr.Mem.Release(poolCap + par.D*par.B)

	out := Region{Off: outOff, N: total}
	return out, measureDisplacement(arr, out)
}

// measureDisplacement reads the region through the array's measurement
// channel (no I/Os charged) and computes how far records sit from their
// sorted positions.
func measureDisplacement(arr *pdm.Array, reg Region) int {
	got := peekRegion(arr, reg)
	type kv struct {
		r   record.Record
		pos int
	}
	all := make([]kv, len(got))
	for i, r := range got {
		all[i] = kv{r, i}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].r.Less(all[j].r) })
	maxd := 0
	for sortedPos, e := range all {
		d := e.pos - sortedPos
		if d < 0 {
			d = -d
		}
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

// cleanupWindows repeatedly applies the two offset window-sort passes
// (windows of one memoryload, then offset by half a memoryload) until a
// measurement sweep sees a sorted region. Records within W/2 of their
// final position are fully repaired by one round — the classical
// nearly-sorted cleanup that stands in for [NoV]'s Columnsort schedule.
// It returns the region, the pass count, and the per-block minima of the
// now-sorted run (the forecasting metadata for the next merge level).
func cleanupWindows(arr *pdm.Array, cpu *pram.Machine, reg Region, w int) (Region, int, []record.Record, error) {
	passes := 0
	// The offset window passes are an odd-even transposition sort over
	// ⌈N/W⌉ blocks, which provably converges within that many rounds; the
	// expected case (displacement < W/2, as [NoV]'s analysis provides for
	// their discipline) finishes in one.
	maxRounds := (reg.N+w-1)/w + 2
	for round := 0; ; round++ {
		if round > maxRounds {
			return reg, passes, nil, fmt.Errorf("baseline: greedy cleanup did not converge after %d rounds", round)
		}
		sortWindowsPass(arr, cpu, reg, w, 0)
		sortWindowsPass(arr, cpu, reg, w, w/2)
		passes += 2
		if regionSorted(arr, reg) {
			return reg, passes, blockMinima(arr, reg), nil
		}
	}
}

// blockMinima collects the first key of each block of a sorted region via
// the measurement channel (in a real system the cleanup's final pass would
// record them as it streams).
func blockMinima(arr *pdm.Array, reg Region) []record.Record {
	p := arr.Params()
	blocks := (reg.N + p.B - 1) / p.B
	mins := make([]record.Record, blocks)
	for blk := 0; blk < blocks; blk++ {
		mins[blk] = arr.Peek(blk%p.D, reg.Off+blk/p.D)[0]
	}
	return mins
}

// peekRegion reads a whole region via the measurement channel.
func peekRegion(arr *pdm.Array, reg Region) []record.Record {
	p := arr.Params()
	out := make([]record.Record, 0, reg.N)
	blocks := (reg.N + p.B - 1) / p.B
	for blk := 0; blk < blocks; blk++ {
		b := arr.Peek(blk%p.D, reg.Off+blk/p.D)
		take := p.B
		if reg.N-len(out) < take {
			take = reg.N - len(out)
		}
		out = append(out, b[:take]...)
	}
	return out
}

// sortWindowsPass sorts consecutive windows of w records starting at the
// given offset, in place.
func sortWindowsPass(arr *pdm.Array, cpu *pram.Machine, reg Region, w, start int) {
	buf := make([]record.Record, w)
	arr.Mem.Use(w)
	for pos := start; pos < reg.N; pos += w {
		m := w
		if pos+m > reg.N {
			m = reg.N - pos
		}
		readAlignedFrom(arr, reg.Off, pos, buf[:m])
		cpu.Sort(buf[:m])
		writeAlignedTo(arr, reg.Off, pos, buf[:m])
	}
	arr.Mem.Release(w)
}

// regionSorted verifies sortedness with one charged sequential read pass.
func regionSorted(arr *pdm.Array, reg Region) bool {
	p := arr.Params()
	chunk := make([]record.Record, p.D*p.B)
	arr.Mem.Use(len(chunk))
	defer arr.Mem.Release(len(chunk))
	var prev record.Record
	first := true
	for pos := 0; pos < reg.N; pos += len(chunk) {
		m := len(chunk)
		if pos+m > reg.N {
			m = reg.N - pos
		}
		readAlignedFrom(arr, reg.Off, pos, chunk[:m])
		for _, r := range chunk[:m] {
			if !first && r.Less(prev) {
				return false
			}
			prev, first = r, false
		}
	}
	return true
}
