// Package stats renders the experiment tables of EXPERIMENTS.md: fixed-
// width, pipe-separated rows that read the same in a terminal and in
// markdown, plus the closed-form bound evaluators shared by the benchmark
// harness and cmd/experiments.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table accumulates rows and renders them column-aligned.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with 3
// significant places.
func (t *Table) AddRow(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = formatFloat(x)
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(x float64) string {
	switch {
	case x == 0:
		return "0"
	case math.Abs(x) >= 1e6 || math.Abs(x) < 1e-3:
		return fmt.Sprintf("%.3g", x)
	case math.Abs(x) >= 100:
		return fmt.Sprintf("%.0f", x)
	default:
		return fmt.Sprintf("%.3g", x)
	}
}

// Render writes the table in markdown form.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "### %s\n\n", t.Title)
	}
	cells := make([]string, len(t.headers))
	for i, h := range t.headers {
		cells[i] = pad(h, widths[i])
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
	for i := range cells {
		cells[i] = strings.Repeat("-", widths[i])
	}
	fmt.Fprintf(w, "|-%s-|\n", strings.Join(cells, "-|-"))
	for _, row := range t.rows {
		for i := range cells {
			c := ""
			if i < len(row) {
				c = row[i]
			}
			cells[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Lg is the paper's log x = max(1, log2 x).
func Lg(x float64) float64 {
	if x <= 2 {
		return 1
	}
	return math.Log2(x)
}

// Theorem2Bound evaluates the P-HMM sorting-time bound of Theorem 2 for
// N records on H hierarchies. alpha < 0 selects f(x) = log x; otherwise
// f(x) = x^alpha. tcost is the interconnect's T(H).
func Theorem2Bound(n, h int, alpha float64, tcost func(int) float64) float64 {
	fn, fh := float64(n), float64(h)
	perH := fn / fh
	net := Lg(fn) / Lg(fh) * tcost(h)
	if alpha < 0 {
		// f = log x: Θ((N/H)(log(N/H) + (log N / log H)·T(H))).
		return perH * (Lg(perH) + net)
	}
	// f = x^α: Θ((N/H)^{α+1} + (N/H)·(log N / log H)·T(H)).
	return math.Pow(perH, alpha+1) + perH*net
}

// Theorem3Bound evaluates the P-BT bound of Theorem 3: four regimes by
// alpha (alpha < 0 selects f = log x).
func Theorem3Bound(n, h int, alpha float64, tcost func(int) float64) float64 {
	fn, fh := float64(n), float64(h)
	perH := fn / fh
	net := Lg(fn) / Lg(fh) * tcost(h)
	switch {
	case alpha < 0: // f = log x: Θ((N/H) log N) on a PRAM
		return perH * maxF(Lg(fn), net)
	case alpha < 1: // Θ((N/H) log N)
		return perH * maxF(Lg(fn), net)
	case alpha == 1: // Θ((N/H)(log²(N/H) + log N))
		return perH * (Lg(perH)*Lg(perH) + maxF(Lg(fn), net))
	default: // α > 1: Θ((N/H)^α + (N/H) log N)
		return math.Pow(perH, alpha) + perH*maxF(Lg(fn), net)
	}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
