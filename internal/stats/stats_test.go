package stats

import (
	"strings"
	"testing"

	"balancesort/internal/matching"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "n", "ratio")
	tb.AddRow(1024, 1.2345)
	tb.AddRow(2048, 10.0)
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "### Demo") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "| n ") || !strings.Contains(out, "1024") {
		t.Fatalf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title, blank, header, separator, 2 rows
	if len(lines) != 6 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	// All table lines same width (alignment).
	w := len(lines[2])
	for _, l := range lines[3:] {
		if len(l) != w {
			t.Fatalf("misaligned table:\n%s", out)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1.23456: "1.23",
		123.4:   "123",
		1e7:     "1e+07",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Fatalf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestLg(t *testing.T) {
	if Lg(1) != 1 || Lg(2) != 1 || Lg(8) != 3 {
		t.Fatal("Lg floor broken")
	}
}

func TestTheorem2BoundShapes(t *testing.T) {
	// Log model grows ~linearly with N/H; power model with α=1 grows
	// quadratically in N/H.
	logSmall := Theorem2Bound(1<<10, 8, -1, matching.PRAMCost)
	logBig := Theorem2Bound(1<<20, 8, -1, matching.PRAMCost)
	if logBig <= logSmall {
		t.Fatal("bound not increasing")
	}
	growth := logBig / logSmall
	if growth < 1000 || growth > 5000 {
		t.Fatalf("log-model growth %v, want ~2048 (near-linear)", growth)
	}

	pSmall := Theorem2Bound(1<<10, 8, 1, matching.PRAMCost)
	pBig := Theorem2Bound(1<<20, 8, 1, matching.PRAMCost)
	if pBig/pSmall < 1<<19 {
		t.Fatalf("power-model growth %v, want ~2^20 (quadratic)", pBig/pSmall)
	}
}

func TestTheorem3Regimes(t *testing.T) {
	n, h := 1<<20, 8
	small := Theorem3Bound(n, h, 0.5, matching.PRAMCost)
	mid := Theorem3Bound(n, h, 1, matching.PRAMCost)
	big := Theorem3Bound(n, h, 2, matching.PRAMCost)
	if !(small < mid && mid < big) {
		t.Fatalf("regimes not ordered: %v %v %v", small, mid, big)
	}
	// α<1 and log regimes coincide at Θ((N/H) log N).
	if Theorem3Bound(n, h, -1, matching.PRAMCost) != small {
		t.Fatal("log and sub-linear BT regimes should match")
	}
}

func TestHypercubeBoundDominates(t *testing.T) {
	n, h := 1<<18, 64
	if Theorem2Bound(n, h, -1, matching.HypercubeCost) <= Theorem2Bound(n, h, -1, matching.PRAMCost) {
		t.Fatal("hypercube bound should exceed PRAM bound")
	}
}

func TestMoreHierarchiesHelp(t *testing.T) {
	n := 1 << 20
	if Theorem2Bound(n, 64, -1, matching.PRAMCost) >= Theorem2Bound(n, 4, -1, matching.PRAMCost) {
		t.Fatal("more hierarchies should lower the bound")
	}
}
