// Package balance implements the paper's deterministic load-balancing core
// (Section 4.1, Algorithms 3-6): the histogram matrix X, the auxiliary
// matrix A, and the track-by-track placement discipline that keeps every
// bucket spread almost evenly over the virtual disks/hierarchies.
//
// The Balancer is deliberately I/O-free: it decides *where* each formed
// virtual block may be written and which blocks must be carried to the next
// track, while the callers in internal/core perform the actual transfers on
// the parallel-disk or hierarchy substrate. That is what lets the same
// machinery drive Theorem 1 (disks) and Theorems 2-3 (hierarchies).
//
// Terminology follows the paper: there are S buckets and H virtual
// disks/hierarchies (the paper's H'), X[b][h] counts the virtual blocks of
// bucket b resident on h, m_b is the ⌈H/2⌉-th smallest entry of row b, and
// A[b][h] = max(0, X[b][h] - m_b). The two invariants maintained are:
//
//	Invariant 1: every row of A has at least ⌈H/2⌉ zeros.
//	Invariant 2: after each track is processed (with unprocessed blocks
//	             conceptually returned to the input), A is 0/1-valued,
//	             hence X[b][h] <= m_b + 1.
//
// Invariant 2 is what yields Theorem 4: bucket b occupies at most m_b + 1
// blocks on any virtual disk, and since at least ⌈H/2⌉ disks hold >= m_b
// blocks, m_b + 1 is at most about twice the even share N_b/(H·VB).
package balance

import (
	"fmt"

	"balancesort/internal/matching"
	"balancesort/internal/obs"
	"balancesort/internal/record"
	"balancesort/internal/selection"
)

// AuxRule selects how the auxiliary matrix is derived from the histogram.
type AuxRule int

const (
	// AuxMedian is the paper's rule: A[b][h] = max(0, X[b][h] - m_b) with
	// m_b the ⌈H/2⌉-th smallest entry of row b.
	AuxMedian AuxRule = iota
	// AuxTwiceAverage is the alternative attributed to Arge (Section 4.1):
	// an entry is overloaded (treated like a 2) when the block count
	// exceeds twice the evenly-balanced share, and balanced (0) otherwise.
	AuxTwiceAverage
)

// MatchStrategy selects the partial-matching algorithm used by Rearrange.
type MatchStrategy int

const (
	// MatchDerandomized is the paper's deterministic Fast-Partial-Match.
	MatchDerandomized MatchStrategy = iota
	// MatchRandomized is Algorithm 7 as stated, with an explicit seed; the
	// paper's Section 6 notes it is "even simpler to implement in practice".
	MatchRandomized
	// MatchGreedy is sequential maximal matching — the quality ceiling that
	// is too slow in the parallel model (experiment E12).
	MatchGreedy
)

// Config parameterizes a Balancer.
type Config struct {
	S     int           // buckets
	H     int           // virtual disks / virtual hierarchies
	Rule  AuxRule       // auxiliary matrix definition
	Match MatchStrategy // Rearrange matching algorithm
	Seed  uint64        // seed for MatchRandomized
	TCost matching.TCost
	// Trace, when non-nil, records a "repair-rearrange" span per Rearrange
	// call (the Algorithm 5-7 repair step) under the "sort" layer. Nil is
	// free and changes nothing observable.
	Trace *obs.Tracer
}

// Stats counts the balancing work performed, for experiments E4/E12/E13/E15.
type Stats struct {
	Tracks          int // PlaceTrack calls
	BlocksPlaced    int // blocks finally written
	BlocksCarried   int // blocks returned to the input ("conceptual" 2s)
	TwosIntroduced  int // entries that reached 2 at tentative placement
	RearrangeCalls  int
	RearrangeMoves  int     // blocks moved by matching
	MatchTime       float64 // simulated parallel time spent matching
	ExtraWriteSteps int     // additional parallel write references from Rearrange rounds
}

// Placement directs the caller to write its block index Block to virtual
// disk VDisk. Writes within one Round can share a parallel I/O; distinct
// rounds are distinct parallel memory references (the good-column write plus
// one per Rearrange call).
type Placement struct {
	Block int
	VDisk int
	Round int
}

// Balancer tracks placement state for one distribution pass.
type Balancer struct {
	cfg Config
	x   [][]int
	rot int
	rng *record.RNG

	stats Stats
}

// New creates a Balancer for S buckets over H virtual disks.
func New(cfg Config) *Balancer {
	if cfg.S < 1 || cfg.H < 1 {
		panic(fmt.Sprintf("balance: S=%d H=%d", cfg.S, cfg.H))
	}
	if cfg.TCost == nil {
		cfg.TCost = matching.PRAMCost
	}
	b := &Balancer{cfg: cfg, rng: record.NewRNG(cfg.Seed)}
	b.x = make([][]int, cfg.S)
	for i := range b.x {
		b.x[i] = make([]int, cfg.H)
	}
	return b
}

// S returns the bucket count.
func (bl *Balancer) S() int { return bl.cfg.S }

// H returns the virtual disk count.
func (bl *Balancer) H() int { return bl.cfg.H }

// Stats returns a copy of the accumulated counters.
func (bl *Balancer) Stats() Stats { return bl.stats }

// Histogram returns a copy of X, for tests and experiments.
func (bl *Balancer) Histogram() [][]int {
	out := make([][]int, len(bl.x))
	for i, row := range bl.x {
		out[i] = append([]int(nil), row...)
	}
	return out
}

// MemoryWords returns the internal-memory footprint of the balance state in
// machine words (X, A, and L are each S x H; the paper keeps all three
// resident).
func (bl *Balancer) MemoryWords() int { return 3 * bl.cfg.S * bl.cfg.H }

// rowMedian returns m_b for the current X.
func (bl *Balancer) rowMedian(b int) int {
	return selection.RowMedian(bl.x[b])
}

// Aux computes the auxiliary matrix for the current histogram (Algorithm 4
// under AuxMedian; the Arge variant under AuxTwiceAverage, scaled so that
// "overloaded" entries read 2 and balanced entries 0, which lets the rest
// of the machinery treat both rules uniformly).
func (bl *Balancer) Aux() [][]int {
	a := make([][]int, bl.cfg.S)
	switch bl.cfg.Rule {
	case AuxMedian:
		for b := range a {
			m := bl.rowMedian(b)
			row := make([]int, bl.cfg.H)
			for h, x := range bl.x[b] {
				if x > m {
					row[h] = x - m
				}
			}
			a[b] = row
		}
	case AuxTwiceAverage:
		for b := range a {
			total := 0
			for _, x := range bl.x[b] {
				total += x
			}
			// Twice the evenly-balanced number, rounded up; +1 keeps the
			// rule permissive when a bucket holds almost nothing yet.
			limit := 2*((total+bl.cfg.H-1)/bl.cfg.H) + 1
			row := make([]int, bl.cfg.H)
			for h, x := range bl.x[b] {
				if x > limit {
					row[h] = 2
				}
			}
			a[b] = row
		}
	default:
		panic("balance: unknown aux rule")
	}
	return a
}

// CheckInvariant1 verifies that every row of A has at least ⌈H/2⌉ zeros.
func (bl *Balancer) CheckInvariant1() error {
	a := bl.Aux()
	need := (bl.cfg.H + 1) / 2
	for b, row := range a {
		zeros := 0
		for _, v := range row {
			if v == 0 {
				zeros++
			}
		}
		if zeros < need {
			return fmt.Errorf("balance: row %d has %d zeros, invariant 1 needs %d", b, zeros, need)
		}
	}
	return nil
}

// CheckInvariant2 verifies that A is 0/1-valued, i.e. X[b][h] <= m_b + 1.
// It must hold after every PlaceTrack call returns.
func (bl *Balancer) CheckInvariant2() error {
	a := bl.Aux()
	for b, row := range a {
		for h, v := range row {
			if v > 1 {
				return fmt.Errorf("balance: A[%d][%d] = %d after track, invariant 2 violated", b, h, v)
			}
		}
	}
	return nil
}

// CheckInvariants verifies Invariants 1 and 2 together — the full Theorem 4
// precondition. Callers that re-plan a placement over a shrunk disk set
// (cluster failover drops H to H−1 per lost worker) use this to assert the
// balance guarantees still hold on the smaller matrix before committing to
// the new plan.
func (bl *Balancer) CheckInvariants() error {
	if err := bl.CheckInvariant1(); err != nil {
		return err
	}
	return bl.CheckInvariant2()
}

// PlaceTrack processes one track of formed virtual blocks. buckets[j] is the
// bucket of block j; len(buckets) must be at most H. It returns the final
// placements (grouped into parallel write rounds) and the indices of blocks
// that could not be placed without unbalancing their buckets — the caller
// must return those records to its input pool, exactly the paper's
// "conceptually written back to the input".
func (bl *Balancer) PlaceTrack(buckets []int) (writes []Placement, carry []int) {
	if len(buckets) > bl.cfg.H {
		panic(fmt.Sprintf("balance: track of %d blocks exceeds H = %d", len(buckets), bl.cfg.H))
	}
	for _, b := range buckets {
		if b < 0 || b >= bl.cfg.S {
			panic(fmt.Sprintf("balance: bucket %d of %d", b, bl.cfg.S))
		}
	}
	bl.stats.Tracks++

	// Line (2-3) of Algorithm 3: tentatively assign block j to virtual disk
	// (j + rot) mod H — distinct disks within the track — and update X.
	// The rotation spreads the formation order across columns over time.
	assigned := make([]int, len(buckets)) // block -> vdisk
	for j, b := range buckets {
		h := (j + bl.rot) % bl.cfg.H
		assigned[j] = h
		bl.x[b][h]++
	}
	bl.rot = (bl.rot + len(buckets)) % bl.cfg.H

	// Line (4): A := ComputeAux(X). Only incremented entries can have
	// become 2 (medians never decrease), so each overloaded column carries
	// exactly one of this track's blocks.
	a := bl.Aux()
	overloaded := func(j int) bool { return a[buckets[j]][assigned[j]] >= 2 }

	// Line (5-6): write out blocks on columns free of 2s (round 0).
	twoCols := make(map[int]int) // vdisk -> block index with the 2
	for j := range buckets {
		if overloaded(j) {
			bl.stats.TwosIntroduced++
			twoCols[assigned[j]] = j
		}
	}
	for j := range buckets {
		if !overloaded(j) {
			writes = append(writes, Placement{Block: j, VDisk: assigned[j], Round: 0})
		}
	}

	// Lines (7-8), Algorithm 5 (Rebalance): while at least ⌊H/2⌋ columns
	// still hold 2s, run Rearrange on ⌊H/2⌋ of them; each call removes at
	// least ⌈H/4⌉, so the loop runs at most twice.
	round := 1
	for len(twoCols) >= bl.cfg.H/2 && bl.cfg.H >= 2 {
		moved := bl.rearrange(buckets, assigned, twoCols, round)
		writes = append(writes, moved...)
		if len(moved) == 0 {
			break // degenerate instance; remaining blocks will be carried
		}
		round++
	}

	// Remaining 2s become unprocessed blocks: decrement X (line 7's
	// compensation) and report them as carry.
	for _, j := range sortedValues(twoCols) {
		bl.x[buckets[j]][assigned[j]]--
		carry = append(carry, j)
	}

	bl.stats.BlocksPlaced += len(writes)
	bl.stats.BlocksCarried += len(carry)
	bl.stats.ExtraWriteSteps += round - 1
	return writes, carry
}

// rearrange is Algorithm 6: build the bipartite instance over the columns
// in twoCols, match, and move each matched block to its zero column. Matched
// entries are deleted from twoCols. The returned placements share one write
// round (one parallel memory reference).
func (bl *Balancer) rearrange(buckets, assigned []int, twoCols map[int]int, round int) []Placement {
	sp := bl.cfg.Trace.Begin("sort", "repair-rearrange", 0)
	cols := sortedKeys(twoCols)
	// U is at most ⌊H/2⌋ columns ("the next ⌊H'/2⌋ 2s").
	if len(cols) > bl.cfg.H/2 {
		cols = cols[:bl.cfg.H/2]
	}
	a := bl.Aux()
	g := matching.NewGraph(bl.cfg.H, len(cols))
	for i, h := range cols {
		g.U[i] = h
		b := buckets[twoCols[h]]
		for v := 0; v < bl.cfg.H; v++ {
			if a[b][v] == 0 {
				g.Adj[i][v] = true
			}
		}
	}

	var res matching.Result
	switch bl.cfg.Match {
	case MatchDerandomized:
		res = matching.Derandomized(g, bl.cfg.TCost)
	case MatchRandomized:
		res = matching.Randomized(g, bl.rng, bl.cfg.TCost)
	case MatchGreedy:
		res = matching.Greedy(g, bl.cfg.TCost)
	default:
		panic("balance: unknown match strategy")
	}
	bl.stats.RearrangeCalls++
	bl.stats.MatchTime += res.ParallelTime

	var moved []Placement
	for _, pr := range res.Pairs {
		h := g.U[pr.I]
		j := twoCols[h]
		b := buckets[j]
		// Swap the placement: the 2 at (b, h) moves to the 0 at (b, pr.V).
		bl.x[b][h]--
		bl.x[b][pr.V]++
		moved = append(moved, Placement{Block: j, VDisk: pr.V, Round: round})
		delete(twoCols, h)
		bl.stats.RearrangeMoves++
	}
	sp.End(
		obs.Attr{Key: "round", Val: int64(round)},
		obs.Attr{Key: "twos", Val: int64(len(cols))},
		obs.Attr{Key: "moved", Val: int64(len(moved))},
	)
	return moved
}

// sortedKeys returns the map's keys in increasing order (deterministic
// iteration for the deterministic algorithm).
func sortedKeys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	insertionSortInts(out)
	return out
}

// sortedValues returns the map's values ordered by key.
func sortedValues(m map[int]int) []int {
	keys := sortedKeys(m)
	out := make([]int, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

func insertionSortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// PlaceStream drives the track discipline over an arbitrary stream of
// formed blocks and returns the final virtual disk of each one: buckets[i]
// is block i's bucket label in formation order, and the result's entry i is
// the disk PlaceTrack ultimately assigned it. Carried blocks are returned
// to the head of the next track — the paper's "conceptually written back to
// the input" — so callers that batch placement round by round (the cluster
// coordinator planning an all-to-all exchange) get exactly the same
// placements as callers that interleave PlaceTrack with real I/O, and
// Invariant 2 holds when PlaceStream returns.
func (bl *Balancer) PlaceStream(buckets []int) []int {
	dest := make([]int, len(buckets))
	for i := range dest {
		dest[i] = -1
	}
	var pending []int // indices into buckets, carried from the last track
	next := 0
	stuck := 0
	for next < len(buckets) || len(pending) > 0 {
		track := pending
		pending = nil
		for len(track) < bl.cfg.H && next < len(buckets) {
			track = append(track, next)
			next++
		}
		labels := make([]int, len(track))
		for j, idx := range track {
			labels[j] = buckets[idx]
		}
		writes, carry := bl.PlaceTrack(labels)
		for _, pl := range writes {
			dest[track[pl.Block]] = pl.VDisk
		}
		for _, c := range carry {
			pending = append(pending, track[c])
		}
		// The rotation guarantees a carried block places within O(H) further
		// tracks; a longer stall is a bug, not an input property.
		if len(writes) == 0 {
			if stuck++; stuck > 16*bl.cfg.H {
				panic("balance: PlaceStream made no progress")
			}
		} else {
			stuck = 0
		}
	}
	return dest
}

// MaxRowSpread returns, for each bucket, the maximum number of blocks on
// any single virtual disk and the bucket's total block count — the inputs
// to Theorem 4's read-cost bound.
func (bl *Balancer) MaxRowSpread() (maxPer []int, totals []int) {
	maxPer = make([]int, bl.cfg.S)
	totals = make([]int, bl.cfg.S)
	for b, row := range bl.x {
		for _, x := range row {
			totals[b] += x
			if x > maxPer[b] {
				maxPer[b] = x
			}
		}
	}
	return maxPer, totals
}
