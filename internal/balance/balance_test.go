package balance

import (
	"testing"
	"testing/quick"

	"balancesort/internal/record"
)

// runTracks feeds n tracks of random bucket labels (distribution dist over
// S buckets) through the balancer, simulating the caller's carry loop: a
// carried block is re-offered on the next track, exactly like records
// conceptually returned to the input. It verifies invariants after every
// track and returns the balancer.
func runTracks(t *testing.T, cfg Config, nTracks int, seed uint64, dist func(*record.RNG) int) *Balancer {
	t.Helper()
	bl := New(cfg)
	rng := record.NewRNG(seed)
	var pending []int
	for i := 0; i < nTracks; i++ {
		track := pending
		pending = nil
		for len(track) < cfg.H {
			track = append(track, dist(rng))
		}
		writes, carry := bl.PlaceTrack(track)
		if len(writes)+len(carry) != len(track) {
			t.Fatalf("track %d: %d writes + %d carries != %d blocks", i, len(writes), len(carry), len(track))
		}
		seen := make(map[int]bool)
		for _, w := range writes {
			if seen[w.Block] {
				t.Fatalf("track %d: block %d placed twice", i, w.Block)
			}
			seen[w.Block] = true
		}
		// No two writes in the same round may share a virtual disk.
		type rv struct{ r, v int }
		used := make(map[rv]bool)
		for _, w := range writes {
			k := rv{w.Round, w.VDisk}
			if used[k] {
				t.Fatalf("track %d: two blocks on vdisk %d in round %d", i, w.VDisk, w.Round)
			}
			used[k] = true
		}
		for _, c := range carry {
			if seen[c] {
				t.Fatalf("track %d: block %d both placed and carried", i, c)
			}
			pending = append(pending, track[c])
		}
		if err := bl.CheckInvariant2(); err != nil {
			t.Fatalf("track %d: %v", i, err)
		}
		if err := bl.CheckInvariant1(); err != nil {
			t.Fatalf("track %d: %v", i, err)
		}
	}
	return bl
}

func uniformDist(s int) func(*record.RNG) int {
	return func(r *record.RNG) int { return r.Intn(s) }
}

// hotDist sends 90% of blocks to bucket 0.
func hotDist(s int) func(*record.RNG) int {
	return func(r *record.RNG) int {
		if r.Intn(10) != 0 {
			return 0
		}
		return r.Intn(s)
	}
}

func TestInvariantsUniform(t *testing.T) {
	runTracks(t, Config{S: 8, H: 8}, 200, 1, uniformDist(8))
}

func TestInvariantsHotBucket(t *testing.T) {
	runTracks(t, Config{S: 8, H: 8}, 200, 2, hotDist(8))
}

func TestInvariantsSingleBucket(t *testing.T) {
	// Every block in one bucket: the adversarial extreme.
	runTracks(t, Config{S: 4, H: 16}, 100, 3, func(*record.RNG) int { return 0 })
}

func TestInvariantsSmallH(t *testing.T) {
	for _, h := range []int{1, 2, 3, 4} {
		runTracks(t, Config{S: 5, H: h}, 100, uint64(h), uniformDist(5))
	}
}

func TestInvariantsManyBucketsFewDisks(t *testing.T) {
	runTracks(t, Config{S: 64, H: 4}, 150, 4, uniformDist(64))
}

func TestInvariantsRandomizedMatching(t *testing.T) {
	runTracks(t, Config{S: 8, H: 8, Match: MatchRandomized, Seed: 7}, 200, 5, hotDist(8))
}

func TestInvariantsGreedyMatching(t *testing.T) {
	runTracks(t, Config{S: 8, H: 8, Match: MatchGreedy}, 200, 6, hotDist(8))
}

func TestTheorem4BalanceFactor(t *testing.T) {
	// After many tracks, every bucket must be readable in at most about
	// twice the optimal number of parallel reads: max_h X[b][h] <=
	// 2*ceil(total_b/H) + 1 (the +1 absorbs start-up rounding; the paper's
	// statement is "no more than a factor of about 2").
	for _, dist := range []func(*record.RNG) int{uniformDist(8), hotDist(8), func(*record.RNG) int { return 0 }} {
		bl := runTracks(t, Config{S: 8, H: 8}, 300, 9, dist)
		maxPer, totals := bl.MaxRowSpread()
		for b := range maxPer {
			if totals[b] == 0 {
				continue
			}
			opt := (totals[b] + bl.H() - 1) / bl.H()
			if maxPer[b] > 2*opt+1 {
				t.Fatalf("bucket %d: max/disk %d vs optimal %d — balance factor exceeded", b, maxPer[b], opt)
			}
		}
	}
}

func TestPlaceTrackDeterministic(t *testing.T) {
	run := func() ([][]int, Stats) {
		bl := New(Config{S: 4, H: 8})
		rng := record.NewRNG(11)
		for i := 0; i < 50; i++ {
			track := make([]int, 8)
			for j := range track {
				track[j] = rng.Intn(4)
			}
			bl.PlaceTrack(track)
		}
		return bl.Histogram(), bl.Stats()
	}
	x1, s1 := run()
	x2, s2 := run()
	if s1 != s2 {
		t.Fatalf("stats differ across identical runs: %+v vs %+v", s1, s2)
	}
	for b := range x1 {
		for h := range x1[b] {
			if x1[b][h] != x2[b][h] {
				t.Fatal("histogram differs across identical runs")
			}
		}
	}
}

func TestPartialTrack(t *testing.T) {
	bl := New(Config{S: 3, H: 8})
	writes, carry := bl.PlaceTrack([]int{0, 1})
	if len(writes) != 2 || len(carry) != 0 {
		t.Fatalf("partial track mishandled: %d writes %d carries", len(writes), len(carry))
	}
}

func TestEmptyTrack(t *testing.T) {
	bl := New(Config{S: 3, H: 8})
	writes, carry := bl.PlaceTrack(nil)
	if len(writes) != 0 || len(carry) != 0 {
		t.Fatal("empty track produced placements")
	}
	if bl.Stats().Tracks != 1 {
		t.Fatal("empty track not counted")
	}
}

func TestOversizedTrackPanics(t *testing.T) {
	bl := New(Config{S: 2, H: 4})
	defer func() {
		if recover() == nil {
			t.Fatal("oversized track did not panic")
		}
	}()
	bl.PlaceTrack(make([]int, 5))
}

func TestBadBucketPanics(t *testing.T) {
	bl := New(Config{S: 2, H: 4})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range bucket did not panic")
		}
	}()
	bl.PlaceTrack([]int{0, 2})
}

func TestHistogramMatchesPlacements(t *testing.T) {
	// Reconstruct X from the returned placements; it must equal the
	// balancer's own histogram (carried blocks excluded).
	bl := New(Config{S: 4, H: 8})
	rng := record.NewRNG(13)
	shadow := make([][]int, 4)
	for i := range shadow {
		shadow[i] = make([]int, 8)
	}
	var pending []int
	for i := 0; i < 120; i++ {
		track := pending
		pending = nil
		for len(track) < 8 {
			track = append(track, rng.Intn(4))
		}
		writes, carry := bl.PlaceTrack(track)
		for _, w := range writes {
			shadow[track[w.Block]][w.VDisk]++
		}
		for _, c := range carry {
			pending = append(pending, track[c])
		}
	}
	x := bl.Histogram()
	for b := range x {
		for h := range x[b] {
			if x[b][h] != shadow[b][h] {
				t.Fatalf("X[%d][%d] = %d, placements say %d", b, h, x[b][h], shadow[b][h])
			}
		}
	}
}

func TestAuxMedianDefinition(t *testing.T) {
	bl := New(Config{S: 1, H: 4})
	bl.x[0] = []int{1, 1, 3, 2}
	a := bl.Aux()
	// Median = ceil(4/2) = 2nd smallest = 1; A = max(0, x-1).
	want := []int{0, 0, 2, 1}
	for h := range want {
		if a[0][h] != want[h] {
			t.Fatalf("aux = %v, want %v", a[0], want)
		}
	}
}

func TestAuxTwiceAverageRule(t *testing.T) {
	bl := New(Config{S: 1, H: 4, Rule: AuxTwiceAverage})
	bl.x[0] = []int{0, 0, 0, 12}
	a := bl.Aux()
	// total 12, even share 3, limit 2*3+1=7; only the 12 is overloaded.
	want := []int{0, 0, 0, 2}
	for h := range want {
		if a[0][h] != want[h] {
			t.Fatalf("aux = %v, want %v", a[0], want)
		}
	}
}

func TestInvariantsArgeRule(t *testing.T) {
	bl := runTracks(t, Config{S: 8, H: 8, Rule: AuxTwiceAverage}, 200, 15, hotDist(8))
	// The Arge rule also keeps buckets within a factor ~2 (its definition).
	maxPer, totals := bl.MaxRowSpread()
	for b := range maxPer {
		if totals[b] == 0 {
			continue
		}
		opt := (totals[b] + bl.H() - 1) / bl.H()
		if maxPer[b] > 2*opt+1 {
			t.Fatalf("bucket %d: max/disk %d vs optimal %d under Arge rule", b, maxPer[b], opt)
		}
	}
}

func TestInvariant2Property(t *testing.T) {
	// Property: for any bucket-label stream, invariant 2 holds after every
	// track and the balance factor stays bounded.
	f := func(seed uint64, sRaw, hRaw uint8) bool {
		s := 1 + int(sRaw%16)
		h := 1 + int(hRaw%16)
		bl := New(Config{S: s, H: h})
		rng := record.NewRNG(seed)
		var pending []int
		for i := 0; i < 40; i++ {
			track := pending
			pending = nil
			for len(track) < h {
				track = append(track, rng.Intn(s))
			}
			_, carry := bl.PlaceTrack(track)
			for _, c := range carry {
				pending = append(pending, track[c])
			}
			if bl.CheckInvariant2() != nil || bl.CheckInvariant1() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckInvariantsShrunkDiskSet(t *testing.T) {
	// Failover re-plans the same bucket stream over one fewer disk. The
	// combined invariant check must pass on every H' from H down to 1 —
	// the Theorem 4 guarantees are per-matrix, not tied to the original
	// width — and must report a fabricated violation.
	rng := record.NewRNG(7)
	labels := make([]int, 4096)
	for i := range labels {
		labels[i] = rng.Intn(13)
	}
	for h := 4; h >= 1; h-- {
		bl := New(Config{S: 13, H: h})
		bl.PlaceStream(labels)
		if err := bl.CheckInvariants(); err != nil {
			t.Fatalf("H'=%d: %v", h, err)
		}
	}
	// A forced invariant-2 violation must surface through the combined check.
	bl := New(Config{S: 2, H: 2})
	bl.x[0][0] = 6 // pile bucket 0 onto disk 0 behind the balancer's back
	if err := bl.CheckInvariants(); err == nil {
		t.Fatal("CheckInvariants accepted a matrix with A[0][0] > 1")
	}
}

func TestCarryIsBounded(t *testing.T) {
	// At most ⌊H/2⌋-1 blocks may be carried from any track (Rebalance
	// leaves fewer than ⌊H/2⌋ 2s).
	bl := New(Config{S: 4, H: 8})
	rng := record.NewRNG(21)
	var pending []int
	for i := 0; i < 200; i++ {
		track := pending
		pending = nil
		for len(track) < 8 {
			track = append(track, rng.Intn(4))
		}
		_, carry := bl.PlaceTrack(track)
		if len(carry) >= 4 {
			t.Fatalf("track %d carried %d blocks, Rebalance guarantees < H/2 = 4", i, len(carry))
		}
		for _, c := range carry {
			pending = append(pending, track[c])
		}
	}
}

func TestMemoryWords(t *testing.T) {
	bl := New(Config{S: 10, H: 7})
	if bl.MemoryWords() != 210 {
		t.Fatalf("MemoryWords = %d, want 210", bl.MemoryWords())
	}
}
