package core

import (
	"balancesort/internal/hypercube"
	"balancesort/internal/record"
)

// HypercubeNetSorter returns a NetSorter that runs every base-level sort on
// a real simulated H-node hypercube (Batcher bitonic with compare-split for
// more than one record per node) and charges the measured network steps.
// h must be a power of two. Inputs are padded to a multiple of h with +inf
// sentinels that are stripped after the network sorts them to the end.
func HypercubeNetSorter(h int) func([]record.Record) float64 {
	net := hypercube.New(h)
	return func(recs []record.Record) float64 {
		n := len(recs)
		if n <= 1 {
			return 0
		}
		padded := recs
		if n%h != 0 {
			padded = make([]record.Record, ((n+h-1)/h)*h)
			copy(padded, recs)
			for i := n; i < len(padded); i++ {
				padded[i] = record.Record{Key: ^uint64(0), Loc: ^uint64(0)}
			}
		}
		before := net.Steps()
		net.SortDistributed(padded)
		if n%h != 0 {
			copy(recs, padded[:n])
		}
		return float64(net.Steps() - before)
	}
}

// BitonicTCost is the executed hypercube's sorting time for H items on H
// nodes: the exact bitonic step count, Θ(log² H). It is the T(H) to pair
// with HypercubeNetSorter when evaluating bounds and pricing the matching.
func BitonicTCost(h int) float64 {
	c := float64(hypercube.BitonicStepCount(h))
	if c < 1 {
		return 1
	}
	return c
}
