package core

import (
	"balancesort/internal/balance"
	"balancesort/internal/record"
)

// A placer decides which virtual disk receives each formed block of a
// track. PlacementBalanced delegates to the balance machinery; the two
// baseline placers implement the strategies Balance Sort is compared with.
type placer interface {
	placeTrack(labels []int) (writes []balance.Placement, carry []int)
	stats() balance.Stats
}

func (ds *DiskSorter) newPlacer(s, h int) placer {
	switch ds.cfg.Placement {
	case PlacementBalanced:
		return &balancedPlacer{bal: balance.New(balance.Config{
			S: s, H: h,
			Rule:  ds.cfg.Rule,
			Match: ds.cfg.Match,
			Seed:  ds.cfg.Seed,
			TCost: ds.cfg.TCost,
			Trace: ds.cfg.Trace,
		})}
	case PlacementRandom:
		return &randomPlacer{h: h, rng: record.NewRNG(ds.cfg.Seed ^ 0x5eed)}
	case PlacementRoundRobin:
		return &rrPlacer{h: h, next: make([]int, s)}
	default:
		panic("core: unknown placement strategy")
	}
}

type balancedPlacer struct {
	bal *balance.Balancer
}

func (p *balancedPlacer) placeTrack(labels []int) ([]balance.Placement, []int) {
	return p.bal.PlaceTrack(labels)
}

func (p *balancedPlacer) stats() balance.Stats { return p.bal.Stats() }

// randomPlacer writes each track's blocks to a uniformly random set of
// distinct virtual disks in a single round, with no carrying — the
// Vitter–Shriver randomized placement.
type randomPlacer struct {
	h   int
	rng *record.RNG
	st  balance.Stats
}

func (p *randomPlacer) placeTrack(labels []int) ([]balance.Placement, []int) {
	p.st.Tracks++
	perm := make([]int, p.h)
	for i := range perm {
		perm[i] = i
	}
	for i := p.h - 1; i > 0; i-- {
		j := p.rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	writes := make([]balance.Placement, len(labels))
	for j := range labels {
		writes[j] = balance.Placement{Block: j, VDisk: perm[j], Round: 0}
	}
	p.st.BlocksPlaced += len(labels)
	return writes, nil
}

func (p *randomPlacer) stats() balance.Stats { return p.st }

// rrPlacer gives every bucket an independent round-robin cursor over the
// virtual disks. Cursor collisions within a track are resolved by pushing
// blocks to additional write rounds, so each block still lands on the disk
// its bucket's cursor demanded — at the price of extra parallel I/Os.
type rrPlacer struct {
	h    int
	next []int // per-bucket cursor
	st   balance.Stats
}

func (p *rrPlacer) placeTrack(labels []int) ([]balance.Placement, []int) {
	p.st.Tracks++
	used := make(map[[2]int]bool) // (round, vdisk) -> taken
	writes := make([]balance.Placement, len(labels))
	maxRound := 0
	for j, b := range labels {
		v := p.next[b]
		p.next[b] = (v + 1) % p.h
		round := 0
		for used[[2]int{round, v}] {
			round++
		}
		used[[2]int{round, v}] = true
		if round > maxRound {
			maxRound = round
		}
		writes[j] = balance.Placement{Block: j, VDisk: v, Round: round}
	}
	p.st.BlocksPlaced += len(labels)
	p.st.ExtraWriteSteps += maxRound
	return writes, nil
}

func (p *rrPlacer) stats() balance.Stats { return p.st }
