package core

import (
	"errors"
	"fmt"
)

// Checkpointing support for the disk sorter: the recursion of Algorithm 1
// is driven as an explicit depth-first work-list (see Resume in disk.go),
// so that between any two steps the sorter's complete state is a plain
// serializable value — the sorted segments emitted so far plus the
// descriptors of the work still pending. A crash-consistent caller
// persists that value at every commit and hands it back to Resume to
// continue from the last committed pass.

// SourceKind names the two input layouts a recursion level can have.
type SourceKind string

const (
	// KindStriped is a block-aligned region striped over all D physical
	// disks (the original input and every phase-1 sorted run).
	KindStriped SourceKind = "striped"
	// KindChains is the per-virtual-disk block chains a distribution pass
	// leaves behind for one bucket.
	KindChains SourceKind = "chains"
)

// ChainEntry is one virtual block written during distribution: its offset
// on its virtual disk and how many of its records are real (the final
// flushed block of a bucket may be partial; the rest is sentinel padding).
type ChainEntry struct {
	Off   int `json:"off"`
	Count int `json:"count"`
}

// SourceDesc serializably describes one pending recursion level.
type SourceDesc struct {
	Kind  SourceKind `json:"kind"`
	Depth int        `json:"depth"`
	// Striped fields.
	Off int `json:"off,omitempty"`
	N   int `json:"n,omitempty"`
	// Chains field: Chains[h] lists the bucket's blocks on virtual disk h
	// in write order.
	Chains [][]ChainEntry `json:"chains,omitempty"`
}

// StripedDesc describes a striped region at the given depth.
func StripedDesc(off, n, depth int) SourceDesc {
	return SourceDesc{Kind: KindStriped, Off: off, N: n, Depth: depth}
}

// Total returns how many records the descriptor covers.
func (d SourceDesc) Total() int {
	if d.Kind == KindStriped {
		return d.N
	}
	total := 0
	for _, ch := range d.Chains {
		for _, e := range ch {
			total += e.Count
		}
	}
	return total
}

// CheckDescs validates a deserialized work-list against the sorter's
// geometry (v virtual disks). Journals come off disk, so a resume must
// not trust them blindly.
func CheckDescs(descs []SourceDesc, v int) error {
	for i, d := range descs {
		switch d.Kind {
		case KindStriped:
			if d.Off < 0 || d.N < 0 || d.Chains != nil {
				return fmt.Errorf("core: work item %d: bad striped descriptor off=%d n=%d", i, d.Off, d.N)
			}
		case KindChains:
			if len(d.Chains) != v {
				return fmt.Errorf("core: work item %d: %d chains for %d virtual disks", i, len(d.Chains), v)
			}
			for h, ch := range d.Chains {
				for _, e := range ch {
					if e.Off < 0 || e.Count < 0 {
						return fmt.Errorf("core: work item %d: bad chain entry %+v on vdisk %d", i, e, h)
					}
				}
			}
		default:
			return fmt.Errorf("core: work item %d: unknown source kind %q", i, d.Kind)
		}
		if d.Depth < 0 || d.Depth > maxDepth {
			return fmt.Errorf("core: work item %d: depth %d out of range", i, d.Depth)
		}
	}
	return nil
}

// CheckpointState is the sorter's complete resumable state, handed to the
// Checkpoint hook after every committed step. Done and Work alias the
// sorter's internal slices and must be serialized, not retained.
type CheckpointState struct {
	// Done lists the sorted segments emitted so far, in output order.
	Done []Region
	// Work lists the pending recursion levels; the front is next.
	Work []SourceDesc
	// Metrics is the cumulative metrics snapshot, including any prior
	// (pre-resume) counters.
	Metrics Metrics
}

// ErrInjectedCrash is the error carried by the test-only crash hook
// (DiskConfig.CrashAfterCommits).
var ErrInjectedCrash = errors.New("core: injected crash")

// Abort carries an operational abort — a cancelled context, a failed
// checkpoint, an injected crash — out of the sorter through its
// panic-based error channel. The public façade recovers it and returns
// the wrapped error; programming bugs keep panicking.
type Abort struct{ Err error }

func (a Abort) Error() string { return "core: sort aborted: " + a.Err.Error() }

func (a Abort) Unwrap() error { return a.Err }

// checkCtx panics an Abort if the configured context is done. It is
// called only between I/Os, never during one, so the disk goroutines are
// always quiescent when the panic unwinds.
func (ds *DiskSorter) checkCtx() {
	if ds.cfg.Context == nil {
		return
	}
	if err := ds.cfg.Context.Err(); err != nil {
		panic(Abort{Err: err})
	}
}
