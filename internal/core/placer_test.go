package core

import (
	"testing"

	"balancesort/internal/record"
)

func TestSortRandomPlacementStillSorts(t *testing.T) {
	for _, w := range []record.Workload{record.Uniform, record.BucketSkew} {
		in := record.Generate(w, 10000, 21)
		out, _ := sortOnDisks(t, smallParams(), DiskConfig{Placement: PlacementRandom, Seed: 5}, in)
		checkSorted(t, in, out)
	}
}

func TestSortRoundRobinPlacementStillSorts(t *testing.T) {
	for _, w := range []record.Workload{record.Uniform, record.BucketSkew} {
		in := record.Generate(w, 10000, 22)
		out, _ := sortOnDisks(t, smallParams(), DiskConfig{Placement: PlacementRoundRobin}, in)
		checkSorted(t, in, out)
	}
}

func TestRandomPlacementIsSeedDeterministic(t *testing.T) {
	in := record.Generate(record.Uniform, 8000, 23)
	_, ds1 := sortOnDisks(t, smallParams(), DiskConfig{Placement: PlacementRandom, Seed: 9}, in)
	_, ds2 := sortOnDisks(t, smallParams(), DiskConfig{Placement: PlacementRandom, Seed: 9}, in)
	if ds1.Metrics().IOs != ds2.Metrics().IOs {
		t.Fatal("same seed produced different I/O counts")
	}
}

func TestRoundRobinPaysExtraWriteRounds(t *testing.T) {
	// With many buckets cycling independently, cursor collisions force
	// extra write rounds; the balanced placer avoids almost all of them.
	in := record.Generate(record.Uniform, 16000, 24)
	_, rr := sortOnDisks(t, smallParams(), DiskConfig{Placement: PlacementRoundRobin}, in)
	_, bl := sortOnDisks(t, smallParams(), DiskConfig{Placement: PlacementBalanced}, in)
	if rr.Metrics().Balance.ExtraWriteSteps == 0 {
		t.Log("round-robin placement saw no collisions on this workload (acceptable, but unusual)")
	}
	if bl.Metrics().IOs > 2*rr.Metrics().IOs {
		t.Fatalf("balanced placement used %d I/Os vs round-robin %d — should be comparable or better",
			bl.Metrics().IOs, rr.Metrics().IOs)
	}
}

func TestBalancedReadRatioNoWorseThanNaive(t *testing.T) {
	// On the skewed workload, the balanced placer's bucket-read ratio must
	// stay near 2; the point of the machinery.
	in := record.Generate(record.BucketSkew, 16000, 25)
	_, bl := sortOnDisks(t, smallParams(), DiskConfig{Placement: PlacementBalanced}, in)
	if r := bl.Metrics().MaxBucketReadRatio; r > 3 {
		t.Fatalf("balanced read ratio %.2f", r)
	}
}
