package core

import (
	"fmt"
	"math"

	"balancesort/internal/balance"
	"balancesort/internal/hier"
	"balancesort/internal/record"
)

// HierConfig tunes the parallel-memory-hierarchy sorter of Section 4.
type HierConfig struct {
	// HPrime is the number of virtual hierarchies H'; 0 selects the
	// paper's H^{1/3} (rounded to a divisor of H).
	HPrime int
	// Match, Rule, Seed configure the balancing exactly as in DiskConfig.
	Match balance.MatchStrategy
	Rule  balance.AuxRule
	Seed  uint64
	// NetSorter, when set, executes base-level sorts on a real interconnect
	// simulator instead of charging the machine's T(H) formula: it must
	// sort recs in place and return the parallel time to charge. The
	// hypercube-bitonic interconnect is wired this way, so its charges are
	// measured network steps rather than a closed form.
	NetSorter func(recs []record.Record) float64
}

// Segment names n records striped over all H hierarchies: record i lives on
// hierarchy i mod H at address Base + i/H.
type Segment struct {
	Base int
	N    int
}

// HierMetrics reports one hierarchy sort in model units.
type HierMetrics struct {
	N          int
	Time       float64 // total parallel time (access + interconnect)
	AccessTime float64
	NetTime    float64
	Steps      int64

	Balance       balance.Stats
	Depth         int
	Passes        int
	MaxBucketFrac float64
	// MaxLogSkew is the worst ratio of a virtual hierarchy's append-log
	// length to the even share within one distribution pass — what the
	// balancing keeps near 1 so that bucket gathering parallelizes.
	MaxLogSkew float64
}

// HierSorter runs Balance Sort on a parallel memory hierarchy machine.
type HierSorter struct {
	m   *hier.Machine
	cfg HierConfig
	hp  int // H'
	vb  int // records per virtual block = H/H' (one per member hierarchy)

	met HierMetrics
}

// NewHierSorter prepares a sorter on the machine. cfg.HPrime must divide H
// when set.
func NewHierSorter(m *hier.Machine, cfg HierConfig) *HierSorter {
	h := m.H()
	hp := cfg.HPrime
	if hp == 0 {
		hp = divisorNear(h, int(math.Cbrt(float64(h))))
	}
	if hp < 1 || h%hp != 0 {
		panic(fmt.Sprintf("core: H' = %d does not divide H = %d", hp, h))
	}
	return &HierSorter{m: m, cfg: cfg, hp: hp, vb: h / hp}
}

// divisorNear returns the largest divisor of h that is <= max(1, want).
func divisorNear(h, want int) int {
	if want < 1 {
		want = 1
	}
	best := 1
	for d := 1; d <= want && d <= h; d++ {
		if h%d == 0 {
			best = d
		}
	}
	return best
}

// HPrime returns the virtual hierarchy count in use.
func (hs *HierSorter) HPrime() int { return hs.hp }

// Machine returns the underlying hierarchy machine.
func (hs *HierSorter) Machine() *hier.Machine { return hs.m }

// Metrics returns the metrics of the last Sort call.
func (hs *HierSorter) Metrics() HierMetrics { return hs.met }

// WriteInput stripes recs onto the hierarchies as a fresh segment.
func (hs *HierSorter) WriteInput(recs []record.Record) Segment {
	return hs.writeSegment(recs)
}

// ReadSegment reads a segment back (costs model time like any access).
func (hs *HierSorter) ReadSegment(seg Segment) []record.Record {
	h := hs.m.H()
	depth := (seg.N + h - 1) / h
	var ops []hier.Op
	for hh := 0; hh < h; hh++ {
		d := rowsOf(seg.N, h, hh)
		if d > 0 {
			ops = append(ops, hier.Op{H: hh, Addr: seg.Base, N: d, Base: seg.Base})
		}
	}
	data := hs.m.ParallelRead(ops)
	out := make([]record.Record, seg.N)
	for i, op := range ops {
		for r := 0; r < op.N; r++ {
			out[r*h+op.H] = data[i][r]
		}
	}
	_ = depth
	return out
}

// rowsOf returns how many rows of an n-record segment hierarchy hh holds.
func rowsOf(n, h, hh int) int {
	full := n / h
	if hh < n%h {
		return full + 1
	}
	return full
}

func (hs *HierSorter) writeSegment(recs []record.Record) Segment {
	h := hs.m.H()
	n := len(recs)
	depth := (n + h - 1) / h
	base := hs.m.AllocAligned(0, h, depth)
	var ops []hier.Op
	for hh := 0; hh < h; hh++ {
		d := rowsOf(n, h, hh)
		if d == 0 {
			continue
		}
		data := make([]record.Record, d)
		for r := 0; r < d; r++ {
			data[r] = recs[r*h+hh]
		}
		ops = append(ops, hier.Op{H: hh, Addr: base, N: d, Base: base, Data: data})
	}
	hs.m.ParallelWrite(ops)
	return Segment{Base: base, N: n}
}

// Sort sorts the segment and returns a fresh segment holding the records in
// nondecreasing order.
func (hs *HierSorter) Sort(seg Segment) Segment {
	hs.met = HierMetrics{N: seg.N}
	hs.m.ResetCost()
	out := hs.sortSegment(seg, 0)
	hs.met.Time = hs.m.Time()
	hs.met.AccessTime = hs.m.AccessTime()
	hs.met.NetTime = hs.m.NetTime()
	hs.met.Steps = hs.m.Steps()
	return out
}

func (hs *HierSorter) sortSegment(seg Segment, depth int) Segment {
	if depth > maxDepth {
		panic("core: hierarchy recursion depth exceeded")
	}
	if depth > hs.met.Depth {
		hs.met.Depth = depth
	}
	h := hs.m.H()
	n := seg.N
	if n <= 3*h {
		return hs.baseCaseSegment(seg)
	}

	// Parameter choice satisfying the paper's sufficient condition
	// G log N <= N/S for the 2N/S bucket bound: S ~ sqrt(N/(2 log N)) and
	// groups of about S log N records.
	lg := int(math.Max(1, math.Log2(float64(n))))
	s := int(math.Sqrt(float64(n) / float64(2*lg)))
	if s < 2 {
		return hs.binaryMergeSort(seg)
	}
	groupRecs := s * lg
	groupRecs = ((groupRecs + h - 1) / h) * h // row-aligned groups
	g := (n + groupRecs - 1) / groupRecs
	if g < 2 {
		return hs.binaryMergeSort(seg)
	}

	// Frame discipline: the output segment is allocated first, directly at
	// the frame mark; everything this level allocates above it (group
	// results, the sample C, the append logs, the bucket segments, the
	// children's results) is popped once the output is written, so the
	// level's net allocation is exactly its output. Without this, garbage
	// pushes live data ever deeper and the hierarchy charges f(depth) for
	// it — the antithesis of the paper's algorithms.
	mark := hs.m.PushOrigin()
	defer hs.m.PopOrigin()
	out := newSegWriter(hs, n)

	// --- Algorithm 2, line (1): sort the G groups recursively -----------
	groups := make([]Segment, 0, g)
	for r, remaining := 0, n; remaining > 0; {
		take := groupRecs
		if take > remaining {
			take = remaining
		}
		sub := Segment{Base: seg.Base + r, N: take}
		groups = append(groups, hs.sortSegment(sub, depth+1))
		r += take / h
		remaining -= take
	}

	// --- Algorithm 2, lines (2-4): sample, merge-sort C, pick pivots ----
	var sample []record.Record
	for _, grp := range groups {
		sample = append(sample, hs.sampleSegment(grp, lg)...)
	}
	cseg := hs.writeSegment(sample)
	cseg = hs.binaryMergeSort(cseg)
	sorted := hs.ReadSegment(cseg) // pivot extraction touches all of C once
	pivots := make([]record.Record, 0, s-1)
	for j := 1; j < s; j++ {
		idx := j*len(sorted)/s - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		pivots = append(pivots, sorted[idx])
	}

	// --- Algorithm 3: balanced distribution ------------------------------
	buckets, counts := hs.distributeSegments(groups, pivots, s)
	for b, c := range counts {
		if c > 0 {
			frac := float64(c) * float64(s) / float64(n)
			if frac > hs.met.MaxBucketFrac {
				hs.met.MaxBucketFrac = frac
			}
			if c >= n {
				panic("core: hierarchy distribution made no progress")
			}
		}
		_ = b
	}

	// --- Recurse per bucket and concatenate ------------------------------
	if out.base != mark {
		panic("core: output segment not at the frame mark")
	}
	for b := range buckets {
		if buckets[b].N == 0 {
			continue
		}
		topBefore := hs.m.MaxTop()
		sorted := hs.sortSegment(buckets[b], depth+1)
		rd := newSegReader(hs, sorted)
		for {
			recs := rd.next(4 * h)
			if len(recs) == 0 {
				break
			}
			out.append(recs)
		}
		// The child's result has been copied into out; pop it.
		hs.m.TruncateTo(topBefore)
	}
	res := out.close()
	hs.m.TruncateTo(res.Base + hs.segDepth(res.N))
	return res
}

// baseCaseSegment is Algorithm 1's N <= 3H branch: pull the rows to the
// base level, sort across the interconnect, write back out.
func (hs *HierSorter) baseCaseSegment(seg Segment) Segment {
	recs := hs.ReadSegment(seg)
	hs.netSort(recs)
	return hs.writeSegment(recs)
}

// netSort sorts recs across the interconnect: on the executed network when
// one is configured, otherwise host-side with the machine's T(H) charge
// (<= 3 rows of H records each means constant sorting rounds).
func (hs *HierSorter) netSort(recs []record.Record) {
	if hs.cfg.NetSorter != nil {
		hs.m.ChargeNet(hs.cfg.NetSorter(recs))
		return
	}
	sortRecords(recs)
	hs.m.ChargeNetSort(len(recs))
}

// binaryMergeSort sorts a segment by repeated two-way merging with
// hierarchy striping — the C-sorting routine of Algorithm 2, line (3), and
// the fallback when a segment is too small for distribution to pay off.
func (hs *HierSorter) binaryMergeSort(seg Segment) Segment {
	h := hs.m.H()
	n := seg.N
	if n <= 3*h {
		return hs.baseCaseSegment(seg)
	}
	hs.m.PushOrigin()
	defer hs.m.PopOrigin()

	// Two ping-pong regions of the segment's depth: every pass reads runs
	// from one and writes into the other, so the merge never works deeper
	// than ~2·(N/H) no matter how many passes run. (Letting each pass
	// allocate fresh space would push later passes log N times deeper —
	// under BT's f(x) = x^α charges that is a measurable extra factor.)
	d := hs.segDepth(n) + 1 // +1 absorbs partial-row rounding
	baseA := hs.m.AllocAligned(0, h, d)
	baseB := hs.m.AllocAligned(0, h, d)

	// Initial runs: base-case sorted 3H-record chunks written into A.
	var runs []Segment
	row := 0
	for r, remaining := 0, n; remaining > 0; {
		take := 3 * h
		if take > remaining {
			take = remaining
		}
		recs := hs.ReadSegment(Segment{Base: seg.Base + r, N: take})
		hs.netSort(recs)
		w := newSegWriterAt(hs, baseA+row, take)
		w.append(recs)
		runs = append(runs, w.close())
		row += hs.segDepth(take)
		r += 3
		remaining -= take
	}

	other := baseB
	for len(runs) > 1 {
		var next []Segment
		row := 0
		for i := 0; i < len(runs); i += 2 {
			if i+1 == len(runs) {
				// Odd run: stream-copy it across so every live run is in
				// the destination region before the regions swap roles.
				w := newSegWriterAt(hs, other+row, runs[i].N)
				hs.streamCopy(runs[i], w)
				next = append(next, w.close())
				row += hs.segDepth(runs[i].N)
				continue
			}
			total := runs[i].N + runs[i+1].N
			w := newSegWriterAt(hs, other+row, total)
			hs.mergeInto(runs[i], runs[i+1], w)
			next = append(next, w.close())
			row += hs.segDepth(total)
		}
		runs = next
		if other == baseB {
			other = baseA
		} else {
			other = baseB
		}
	}
	res := runs[0]
	hs.m.TruncateTo(res.Base + hs.segDepth(res.N))
	return res
}

// streamCopy moves a segment's records into the writer.
func (hs *HierSorter) streamCopy(seg Segment, w *segWriter) {
	rd := newSegReader(hs, seg)
	for {
		recs := rd.next(4 * hs.m.H())
		if len(recs) == 0 {
			return
		}
		w.append(recs)
	}
}

// mergeInto two-way merges sorted segments into the writer with streamed
// reads and writes; the interconnect is charged one scan per merged batch.
func (hs *HierSorter) mergeInto(a, b Segment, out *segWriter) {
	h := hs.m.H()
	ra, rb := newSegReader(hs, a), newSegReader(hs, b)
	bufA, bufB := ra.next(h), rb.next(h)
	for len(bufA) > 0 || len(bufB) > 0 {
		emitted := 0
		for len(bufA) > 0 && len(bufB) > 0 && emitted < h {
			if bufB[0].Less(bufA[0]) {
				out.append(bufB[:1])
				bufB = bufB[1:]
			} else {
				out.append(bufA[:1])
				bufA = bufA[1:]
			}
			emitted++
		}
		if len(bufA) == 0 {
			bufA = ra.next(h)
			if len(bufA) == 0 && len(bufB) > 0 {
				out.append(bufB)
				bufB = rb.next(h)
				for len(bufB) > 0 {
					out.append(bufB)
					bufB = rb.next(h)
				}
				break
			}
		}
		if len(bufB) == 0 {
			bufB = rb.next(h)
			if len(bufB) == 0 && len(bufA) > 0 {
				out.append(bufA)
				bufA = ra.next(h)
				for len(bufA) > 0 {
					out.append(bufA)
					bufA = ra.next(h)
				}
				break
			}
		}
		hs.m.ChargeNetScan(emitted)
	}
}

// sampleSegment sets aside every k-th record of a (sorted) segment into the
// sample, Algorithm 2 line (2). The records are streamed through the base
// level with the same long-transfer discipline as every other pass — the
// paper gets the sample for free during the group sort's output pass;
// streaming it separately costs one extra scan, a constant factor. Point
// reads would be fatal here: under BT with f(x) = x they would cost
// Θ((N/H)²/log N) and swamp the whole sort.
func (hs *HierSorter) sampleSegment(seg Segment, k int) []record.Record {
	h := hs.m.H()
	rd := newSegReader(hs, seg)
	var out []record.Record
	idx := 0
	for {
		chunk := rd.next(4 * h)
		if len(chunk) == 0 {
			return out
		}
		for _, r := range chunk {
			idx++
			if idx%k == 0 {
				out = append(out, r)
			}
		}
	}
}

func sortRecords(rs []record.Record) {
	// Host-side mirror of the base-level sort whose model cost the caller
	// charges; simple insertion-free path via the standard library.
	quickSortRecords(rs)
}

func quickSortRecords(rs []record.Record) {
	if len(rs) < 2 {
		return
	}
	// sort.Slice without the interface overhead matters here because the
	// hierarchy sorter base-cases millions of tiny chunks.
	insertionThreshold := 24
	if len(rs) <= insertionThreshold {
		for i := 1; i < len(rs); i++ {
			for j := i; j > 0 && rs[j].Less(rs[j-1]); j-- {
				rs[j], rs[j-1] = rs[j-1], rs[j]
			}
		}
		return
	}
	p := rs[len(rs)/2]
	lo, i, hi := 0, 0, len(rs)
	for i < hi {
		switch rs[i].Compare(p) {
		case -1:
			rs[lo], rs[i] = rs[i], rs[lo]
			lo++
			i++
		case 1:
			hi--
			rs[i], rs[hi] = rs[hi], rs[i]
		default:
			i++
		}
	}
	quickSortRecords(rs[:lo])
	quickSortRecords(rs[hi:])
}
