package core

import (
	"balancesort/internal/pdm"
	"balancesort/internal/record"
)

// A source yields the records of one recursion level's input through
// parallel I/Os. The two layouts that occur are the block-aligned striped
// region (the original input and every sorted run) and the per-virtual-disk
// block chains that the balancing pass leaves behind for each bucket.
type source interface {
	// Total returns how many records remain unread.
	Total() int
	// ReadSome reads up to max records into a fresh slice using parallel
	// I/Os of the virtual-disk layer and returns them. It returns fewer
	// records only when the source is exhausted.
	ReadSome(max int) []record.Record
}

// stripedSource reads a block-aligned striped region of the physical array.
type stripedSource struct {
	arr *pdm.Array
	off int // block offset of the region start
	n   int // records remaining
	pos int // records already consumed
}

func newStripedSource(arr *pdm.Array, off, n int) *stripedSource {
	return &stripedSource{arr: arr, off: off, n: n}
}

func (s *stripedSource) Total() int { return s.n }

func (s *stripedSource) ReadSome(max int) []record.Record {
	if max > s.n {
		max = s.n
	}
	if max == 0 {
		return nil
	}
	b, d := s.arr.B(), s.arr.D()
	// Stay block-aligned: the region was written by WriteStripe, so record
	// i lives in stripe block i/B. We always consume whole blocks; the
	// caller's track size is a multiple of the virtual block size, which is
	// a multiple of B.
	if s.pos%b != 0 {
		panic("core: striped source consumed off block boundary")
	}
	nblocks := (max + b - 1) / b
	out := make([]record.Record, 0, nblocks*b)
	firstBlock := s.pos / b
	for base := 0; base < nblocks; base += d {
		var ops []pdm.Op
		bufs := make([][]record.Record, 0, d)
		for j := 0; j < d && base+j < nblocks; j++ {
			blk := firstBlock + base + j
			buf := make([]record.Record, b)
			bufs = append(bufs, buf)
			ops = append(ops, pdm.Op{Disk: blk % d, Off: s.off + blk/d, Data: buf})
		}
		s.arr.ParallelIO(ops)
		for _, buf := range bufs {
			out = append(out, buf...)
		}
	}
	if len(out) > max {
		out = out[:max]
	}
	s.pos += len(out)
	s.n -= len(out)
	return out
}

// chains records where a bucket's blocks live: chains[h] lists the blocks
// on virtual disk h in write order. The entry type is the exported
// ChainEntry (checkpoint.go) so a bucket's chains serialize directly into
// a work-list descriptor.
type chains struct {
	perDisk [][]ChainEntry
	total   int
}

func newChains(h int) *chains {
	return &chains{perDisk: make([][]ChainEntry, h)}
}

func (c *chains) add(h, off, count int) {
	c.perDisk[h] = append(c.perDisk[h], ChainEntry{Off: off, Count: count})
	c.total += count
}

// rounds returns the number of parallel reads needed to fetch the whole
// chain set: the longest per-disk chain (Theorem 4 bounds this by about
// twice the optimal ⌈total/(H·VB)⌉).
func (c *chains) rounds() int {
	r := 0
	for _, ch := range c.perDisk {
		if len(ch) > r {
			r = len(ch)
		}
	}
	return r
}

// chainSource reads a bucket's chains, one block per virtual disk per
// parallel I/O.
type chainSource struct {
	vd    *pdm.Virtual
	ch    *chains
	round int
	n     int
	spill []record.Record // records read but not yet returned
}

func newChainSource(vd *pdm.Virtual, ch *chains) *chainSource {
	return &chainSource{vd: vd, ch: ch, n: ch.total}
}

// Total returns the records not yet returned (buffered spill included,
// since n is only decremented when records are handed to the caller).
func (s *chainSource) Total() int { return s.n }

func (s *chainSource) ReadSome(max int) []record.Record {
	var out []record.Record
	// Serve buffered records first.
	if len(s.spill) > 0 {
		take := len(s.spill)
		if take > max {
			take = max
		}
		out = append(out, s.spill[:take]...)
		s.spill = s.spill[take:]
	}
	for len(out) < max && s.round < s.maxRound() {
		var ops []pdm.VOp
		var metas []ChainEntry
		var bufs [][]record.Record
		for h, ch := range s.ch.perDisk {
			if s.round >= len(ch) {
				continue
			}
			e := ch[s.round]
			buf := make([]record.Record, s.vd.VB())
			bufs = append(bufs, buf)
			metas = append(metas, e)
			ops = append(ops, pdm.VOp{VDisk: h, Off: e.Off, Data: buf})
		}
		s.round++
		s.vd.ParallelVIO(ops)
		for i, buf := range bufs {
			real := buf[:metas[i].Count]
			room := max - len(out)
			if room >= len(real) {
				out = append(out, real...)
			} else {
				out = append(out, real[:room]...)
				s.spill = append(s.spill, real[room:]...)
			}
		}
	}
	s.n -= len(out)
	return out
}

func (s *chainSource) maxRound() int { return s.ch.rounds() }
