package core

import (
	"testing"

	"balancesort/internal/balance"
	"balancesort/internal/bt"
	"balancesort/internal/hier"
	"balancesort/internal/hmm"
	"balancesort/internal/matching"
	"balancesort/internal/record"
	"balancesort/internal/umh"
)

func hmmMachine(h int) *hier.Machine {
	return hier.New(h, hmm.Model{Cost: hmm.LogCost{}}, matching.PRAMCost)
}

func sortOnHier(t *testing.T, m *hier.Machine, cfg HierConfig, recs []record.Record) ([]record.Record, *HierSorter) {
	t.Helper()
	hs := NewHierSorter(m, cfg)
	seg := hs.WriteInput(recs)
	out := hs.Sort(seg)
	return hs.ReadSegment(out), hs
}

func TestHierBaseCase(t *testing.T) {
	in := record.Generate(record.Uniform, 20, 1) // <= 3H for H=8
	out, hs := sortOnHier(t, hmmMachine(8), HierConfig{}, in)
	checkSorted(t, in, out)
	if hs.Metrics().Passes != 0 {
		t.Fatalf("base case ran %d distribution passes", hs.Metrics().Passes)
	}
}

func TestHierSmallViaMerge(t *testing.T) {
	// Sizes where S < 2 force the binary-merge fallback.
	in := record.Generate(record.Uniform, 100, 2)
	out, _ := sortOnHier(t, hmmMachine(8), HierConfig{}, in)
	checkSorted(t, in, out)
}

func TestHierDistributionPath(t *testing.T) {
	in := record.Generate(record.Uniform, 20000, 3)
	out, hs := sortOnHier(t, hmmMachine(8), HierConfig{}, in)
	checkSorted(t, in, out)
	if hs.Metrics().Passes < 1 {
		t.Fatal("large input did not use distribution")
	}
	if hs.Metrics().Time <= 0 {
		t.Fatal("no cost accrued")
	}
}

func TestHierAllWorkloads(t *testing.T) {
	for _, w := range record.AllWorkloads {
		in := record.Generate(w, 8000, 4)
		out, _ := sortOnHier(t, hmmMachine(8), HierConfig{}, in)
		checkSorted(t, in, out)
	}
}

func TestHierVariousH(t *testing.T) {
	for _, h := range []int{1, 2, 4, 8, 16, 64} {
		in := record.Generate(record.Uniform, 6000, uint64(h))
		out, hs := sortOnHier(t, hmmMachine(h), HierConfig{}, in)
		checkSorted(t, in, out)
		if h >= 8 && hs.HPrime() < 2 {
			t.Fatalf("H=%d: H' = %d, expected >= 2", h, hs.HPrime())
		}
	}
}

func TestHierHPrimeDefaultsToCubeRootDivisor(t *testing.T) {
	hs := NewHierSorter(hmmMachine(64), HierConfig{})
	if hs.HPrime() != 4 {
		t.Fatalf("H'=%d for H=64, want 4", hs.HPrime())
	}
	hs2 := NewHierSorter(hmmMachine(27), HierConfig{})
	if hs2.HPrime() != 3 {
		t.Fatalf("H'=%d for H=27, want 3", hs2.HPrime())
	}
}

func TestHierOnBTModel(t *testing.T) {
	for _, alpha := range []float64{0.5, 1, 2} {
		m := hier.New(8, bt.Model{Cost: hmm.PowerCost{Alpha: alpha}}, matching.PRAMCost)
		in := record.Generate(record.Uniform, 10000, 5)
		out, _ := sortOnHier(t, m, HierConfig{}, in)
		checkSorted(t, in, out)
	}
}

func TestHierOnBTLog(t *testing.T) {
	m := hier.New(8, bt.Model{Cost: hmm.LogCost{}}, matching.PRAMCost)
	in := record.Generate(record.Uniform, 10000, 6)
	out, _ := sortOnHier(t, m, HierConfig{}, in)
	checkSorted(t, in, out)
}

func TestHierOnUMHModel(t *testing.T) {
	m := hier.New(8, umh.Model{Rho: 2, Alpha: 1}, matching.PRAMCost)
	in := record.Generate(record.Uniform, 8000, 7)
	out, _ := sortOnHier(t, m, HierConfig{}, in)
	checkSorted(t, in, out)
}

func TestHierHypercubeInterconnect(t *testing.T) {
	m := hier.New(8, hmm.Model{Cost: hmm.LogCost{}}, matching.HypercubeCost)
	in := record.Generate(record.Uniform, 10000, 8)
	out, hs := sortOnHier(t, m, HierConfig{}, in)
	checkSorted(t, in, out)

	m2 := hmmMachine(8)
	_, hs2 := sortOnHier(t, m2, HierConfig{}, in)
	if hs.Metrics().NetTime <= hs2.Metrics().NetTime {
		t.Fatal("hypercube interconnect should cost more than PRAM")
	}
}

func TestHierDeterministic(t *testing.T) {
	in := record.Generate(record.Uniform, 12000, 9)
	out1, hs1 := sortOnHier(t, hmmMachine(8), HierConfig{}, in)
	out2, hs2 := sortOnHier(t, hmmMachine(8), HierConfig{}, in)
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatal("hierarchy sort not deterministic")
		}
	}
	if hs1.Metrics().Time != hs2.Metrics().Time {
		t.Fatal("hierarchy cost not deterministic")
	}
}

func TestHierRandomizedMatching(t *testing.T) {
	in := record.Generate(record.BucketSkew, 12000, 10)
	out, _ := sortOnHier(t, hmmMachine(8), HierConfig{Match: balance.MatchRandomized, Seed: 3}, in)
	checkSorted(t, in, out)
}

func TestHierBucketFracBounded(t *testing.T) {
	in := record.Generate(record.Uniform, 30000, 11)
	out, hs := sortOnHier(t, hmmMachine(8), HierConfig{}, in)
	checkSorted(t, in, out)
	if f := hs.Metrics().MaxBucketFrac; f > 2.5 {
		t.Fatalf("max bucket %.2fx even share, pivot guarantee is ~2x", f)
	}
}

func TestHierLogSkewBounded(t *testing.T) {
	for _, w := range []record.Workload{record.Uniform, record.BucketSkew} {
		in := record.Generate(w, 30000, 12)
		out, hs := sortOnHier(t, hmmMachine(8), HierConfig{}, in)
		checkSorted(t, in, out)
		if sk := hs.Metrics().MaxLogSkew; sk > 2.0 {
			t.Fatalf("%v: append-log skew %.2f — balancing failed", w, sk)
		}
	}
}

func TestHierEmptyAndSingle(t *testing.T) {
	out, _ := sortOnHier(t, hmmMachine(4), HierConfig{}, nil)
	if len(out) != 0 {
		t.Fatal("empty input produced records")
	}
	in := []record.Record{{Key: 3}}
	out, _ = sortOnHier(t, hmmMachine(4), HierConfig{}, in)
	checkSorted(t, in, out)
}

func TestSegmentRoundTrip(t *testing.T) {
	m := hmmMachine(4)
	hs := NewHierSorter(m, HierConfig{})
	for _, n := range []int{1, 3, 4, 5, 17, 100} {
		in := record.Generate(record.Uniform, n, uint64(n))
		seg := hs.WriteInput(in)
		got := hs.ReadSegment(seg)
		for i := range in {
			if got[i] != in[i] {
				t.Fatalf("n=%d: segment round trip mismatch at %d", n, i)
			}
		}
	}
}

func TestSegReaderWriterStream(t *testing.T) {
	m := hmmMachine(4)
	hs := NewHierSorter(m, HierConfig{})
	in := record.Generate(record.Uniform, 1001, 13)
	w := newSegWriter(hs, len(in))
	for i := 0; i < len(in); i += 7 {
		j := i + 7
		if j > len(in) {
			j = len(in)
		}
		w.append(in[i:j])
	}
	seg := w.close()
	r := newSegReader(hs, seg)
	var got []record.Record
	for {
		chunk := r.next(13)
		if len(chunk) == 0 {
			break
		}
		got = append(got, chunk...)
	}
	if len(got) != len(in) {
		t.Fatalf("streamed %d of %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("stream mismatch at %d", i)
		}
	}
}

func TestDivisorNear(t *testing.T) {
	cases := []struct{ h, want, got int }{
		{64, 4, divisorNear(64, 4)},
		{32, 3, divisorNear(32, 3)}, // largest divisor <= 3 is 2
		{27, 3, divisorNear(27, 3)},
		{7, 1, divisorNear(7, 1)},
	}
	if cases[0].got != 4 || cases[1].got != 2 || cases[2].got != 3 || cases[3].got != 1 {
		t.Fatalf("divisorNear results: %+v", cases)
	}
}
