package core

import (
	"fmt"

	"balancesort/internal/hier"
	"balancesort/internal/record"
)

// adaptiveLen returns the streaming transfer length (in rows) used at the
// given absolute address: roughly f(addr), so that a BT block transfer of
// cost f(addr) + len amortizes to O(1) per row, while HMM costs are
// unchanged by chunking.
func (hs *HierSorter) adaptiveLen(base, addr int) int {
	c := hs.m.CostOfRegion(base, addr, addr+1)
	l := int(c)
	if l < 1 {
		l = 1
	}
	return l
}

// segReader streams a segment's records in index order with adaptive
// transfer lengths (the "touch"-style discipline of Section 4.4 that both
// HMM and BT stream costs correctly under).
type segReader struct {
	hs    *HierSorter
	seg   Segment
	row   int
	depth int
	buf   []record.Record
}

func newSegReader(hs *HierSorter, seg Segment) *segReader {
	h := hs.m.H()
	return &segReader{hs: hs, seg: seg, depth: (seg.N + h - 1) / h}
}

// next returns up to max records (fewer only at the end of the segment).
func (r *segReader) next(max int) []record.Record {
	for len(r.buf) < max && r.row < r.depth {
		r.refill()
	}
	take := max
	if take > len(r.buf) {
		take = len(r.buf)
	}
	out := r.buf[:take]
	r.buf = r.buf[take:]
	return out
}

func (r *segReader) refill() {
	h := r.hs.m.H()
	l := r.hs.adaptiveLen(r.seg.Base, r.seg.Base+r.row)
	if r.row+l > r.depth {
		l = r.depth - r.row
	}
	var ops []hier.Op
	for hh := 0; hh < h; hh++ {
		rows := rowsOf(r.seg.N, h, hh)
		n := rows - r.row
		if n > l {
			n = l
		}
		if n > 0 {
			ops = append(ops, hier.Op{H: hh, Addr: r.seg.Base + r.row, N: n, Base: r.seg.Base})
		}
	}
	data := r.hs.m.ParallelRead(ops)
	// Reassemble index order: row rr contributes its record from each
	// hierarchy that has one.
	for rr := r.row; rr < r.row+l; rr++ {
		for i, op := range ops {
			if rr-r.row < op.N {
				idx := rr*h + op.H
				if idx < r.seg.N {
					r.buf = append(r.buf, data[i][rr-r.row])
				}
			}
		}
	}
	r.row += l
}

// segWriter streams records into a freshly allocated segment of known final
// size, flushing whole row ranges with adaptive transfer lengths.
type segWriter struct {
	hs      *HierSorter
	n       int
	base    int
	row     int
	buf     []record.Record
	written int
}

func newSegWriter(hs *HierSorter, n int) *segWriter {
	h := hs.m.H()
	depth := (n + h - 1) / h
	if depth == 0 {
		depth = 1
	}
	base := hs.m.AllocAligned(0, h, depth)
	return &segWriter{hs: hs, n: n, base: base}
}

// newSegWriterAt builds a writer over an already-owned address range —
// used to compact a result downward over a frame's garbage before the
// frame is popped.
func newSegWriterAt(hs *HierSorter, base, n int) *segWriter {
	return &segWriter{hs: hs, n: n, base: base}
}

// segDepth returns the rows an n-record segment occupies.
func (hs *HierSorter) segDepth(n int) int {
	h := hs.m.H()
	d := (n + h - 1) / h
	if d == 0 {
		d = 1
	}
	return d
}

func (w *segWriter) append(recs []record.Record) {
	w.buf = append(w.buf, recs...)
	w.written += len(recs)
	if w.written > w.n {
		panic(fmt.Sprintf("core: segment writer overflow: %d of %d", w.written, w.n))
	}
	h := w.hs.m.H()
	for {
		l := w.hs.adaptiveLen(w.base, w.base+w.row)
		if len(w.buf) < l*h {
			return
		}
		w.flushRows(l)
	}
}

// flushRows writes l full rows from the buffer.
func (w *segWriter) flushRows(l int) {
	h := w.hs.m.H()
	var ops []hier.Op
	for hh := 0; hh < h; hh++ {
		data := make([]record.Record, l)
		for rr := 0; rr < l; rr++ {
			data[rr] = w.buf[rr*h+hh]
		}
		ops = append(ops, hier.Op{H: hh, Addr: w.base + w.row, N: l, Base: w.base, Data: data})
	}
	w.hs.m.ParallelWrite(ops)
	w.buf = w.buf[l*h:]
	w.row += l
}

// close flushes the tail (including a final partial row) and returns the
// completed segment.
func (w *segWriter) close() Segment {
	if w.written != w.n {
		panic(fmt.Sprintf("core: segment writer closed with %d of %d records", w.written, w.n))
	}
	h := w.hs.m.H()
	for len(w.buf) >= h {
		l := len(w.buf) / h
		if al := w.hs.adaptiveLen(w.base, w.base+w.row); l > al {
			l = al
		}
		w.flushRows(l)
	}
	if len(w.buf) > 0 {
		// Final partial row: one short write per involved hierarchy.
		var ops []hier.Op
		for hh := 0; hh < len(w.buf); hh++ {
			ops = append(ops, hier.Op{H: hh, Addr: w.base + w.row, N: 1, Base: w.base, Data: w.buf[hh : hh+1]})
		}
		w.hs.m.ParallelWrite(ops)
		w.buf = nil
		w.row++
	}
	return Segment{Base: w.base, N: w.n}
}
