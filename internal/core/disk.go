// Package core implements Balance Sort itself: Algorithm 1 (the recursive
// distribution sort), Algorithm 2 (partition-element computation), and the
// drivers that run the balancing discipline of internal/balance on the two
// substrates — the parallel disk model of Section 5 (this file) and the
// parallel memory hierarchies of Section 4 (hierarchy.go).
package core

import (
	"context"
	"fmt"
	"math"

	"balancesort/internal/balance"
	"balancesort/internal/matching"
	"balancesort/internal/obs"
	"balancesort/internal/pdm"
	"balancesort/internal/pram"
	"balancesort/internal/record"
)

// DiskConfig tunes the parallel-disk sorter. The zero value asks for the
// paper's defaults.
type DiskConfig struct {
	// V is the number of virtual disks for partial striping; 0 selects D
	// (no striping), the paper's default for the disk model.
	V int
	// S overrides the bucket count; 0 selects the paper's S = (M/B)^{1/4},
	// floored at 2.
	S int
	// P is the number of PRAM processors doing the internal work; 0 means 1.
	P int
	// PRAM selects the PRAM variant (EREW default; Section 5 requires CRCW
	// when log(M/B) = o(log M) and P approaches M).
	PRAM pram.Variant
	// Match selects the Rearrange matching strategy (default deterministic).
	Match balance.MatchStrategy
	// Rule selects the auxiliary-matrix definition (default the paper's
	// median rule).
	Rule balance.AuxRule
	// Seed feeds MatchRandomized and PlacementRandom.
	Seed uint64
	// TCost is the interconnect sort-time model used to price matching
	// rounds; nil selects the EREW PRAM cost.
	TCost matching.TCost
	// Placement selects how formed blocks are assigned to virtual disks.
	Placement Placement
	// Internal selects the memoryload sorting algorithm.
	Internal InternalSort
	// Context, when non-nil, cancels the sort: it is polled between
	// work-list steps, between phase-1 memoryloads, and between
	// distribution tracks, and a done context aborts the sort with an
	// Abort wrapping ctx.Err(). In-flight parallel I/Os always complete,
	// so the scratch array stays consistent and resumable.
	Context context.Context
	// Checkpoint, when non-nil, runs after every completed work-list step
	// (a base case or one distribution pass) with the sorter's complete
	// serializable state. The callback owns durability — flush the array,
	// then journal the state — and an error from it aborts the sort.
	Checkpoint func(CheckpointState) error
	// CrashAfterCommits > 0 simulates a crash for recovery tests: the
	// sorter panics an Abort carrying ErrInjectedCrash immediately before
	// the k-th Checkpoint call of this run, after the step's work is done
	// — so exactly that step's work is lost and must be redone on resume.
	CrashAfterCommits int
	// Trace, when non-nil, records a span per work-list step ("base-case",
	// "distribute-pass") and per distribution sub-phase ("run-formation",
	// "partition-elements", "distribute-tracks") under the "sort" layer,
	// and is forwarded to the balancer for repair spans. Nil is free and
	// cannot perturb the model I/O counts — tracing is pure host-side
	// timekeeping.
	Trace *obs.Tracer
}

// InternalSort selects how memoryloads are sorted in internal memory.
type InternalSort int

const (
	// SortComparison uses the Cole-cost parallel merge sort (default).
	SortComparison InternalSort = iota
	// SortRadix uses the Rajasekaran–Reif-style parallel radix sort that
	// Section 5 invokes for the Θ((N/P) log N) internal bound.
	SortRadix
)

// Placement selects the block-placement discipline of the distribution
// pass. PlacementBalanced is the paper's contribution; the other two are the
// algorithms it is measured against.
type Placement int

const (
	// PlacementBalanced uses the histogram/auxiliary-matrix machinery with
	// matching-based rebalancing (Balance Sort proper).
	PlacementBalanced Placement = iota
	// PlacementRandom assigns each track's blocks to a uniformly random
	// permutation of the virtual disks — the randomized placement of
	// Vitter–Shriver's distribution sort [ViSa], which Balance Sort
	// derandomizes.
	PlacementRandom
	// PlacementRoundRobin assigns each bucket's blocks to consecutive
	// virtual disks with a per-bucket cursor — the naive deterministic
	// strategy. Blocks of different buckets that collide on a virtual disk
	// within a track are pushed to extra write rounds, inflating the I/O
	// count (the failure mode the balance matrices exist to avoid).
	PlacementRoundRobin
)

// Region names n records stored block-aligned and striped over all D disks
// starting at block offset Off (the layout of pdm.WriteStripe).
type Region struct {
	Off int
	N   int
}

// Metrics reports what one Sort call did, in model units.
type Metrics struct {
	N          int
	IOs        int64
	ReadIOs    int64
	WriteIOs   int64
	BlocksRead int64
	BlocksWrit int64

	PRAMTime float64
	PRAMWork float64

	Balance balance.Stats

	// MaxBucketReadRatio is the worst observed (parallel reads needed for a
	// bucket) / (optimal ⌈N_b/(H·VB)⌉) — Theorem 4 bounds it near 2.
	MaxBucketReadRatio float64
	// MaxBucketFrac is the worst observed N_b / (N/S) over all distribution
	// passes — the partition-element guarantee bounds it near 2.
	MaxBucketFrac float64
	// Depth is the deepest recursion level reached (0 = no distribution).
	Depth int
	// Passes counts distribution passes performed.
	Passes int
	// MemPeak is the high-water internal memory use in records.
	MemPeak int
}

// LowerBoundIOs evaluates the paper's I/O lower bound (Theorem 1),
// (N/(DB)) · log(N/B)/log(M/B), with log x = max(1, log2 x). Balance Sort's
// measured I/Os divided by this should be a flat constant (experiment E1).
func LowerBoundIOs(n int, p pdm.Params) float64 {
	if n == 0 {
		return 0
	}
	lg := func(x float64) float64 {
		if x <= 2 {
			return 1
		}
		return math.Log2(x)
	}
	fn := float64(n)
	return fn / float64(p.D*p.B) * lg(fn/float64(p.B)) / lg(float64(p.M)/float64(p.B))
}

// DiskSorter runs Balance Sort on a simulated disk array.
type DiskSorter struct {
	arr *pdm.Array
	vd  *pdm.Virtual
	cpu *pram.Machine
	cfg DiskConfig

	s       int // buckets per pass
	memload int // records per memoryload (phase-1 unit), B-aligned

	met Metrics
}

// NewDiskSorter prepares a sorter over the array. The array's parameters
// must satisfy the model constraints; cfg.V must divide D.
func NewDiskSorter(arr *pdm.Array, cfg DiskConfig) *DiskSorter {
	p := arr.Params()
	if cfg.V == 0 {
		cfg.V = p.D
	}
	if cfg.P == 0 {
		cfg.P = 1
	}
	if cfg.TCost == nil {
		cfg.TCost = matching.PRAMCost
	}
	s := cfg.S
	if s == 0 {
		s = int(math.Floor(math.Pow(float64(p.M)/float64(p.B), 0.25)))
	}
	if s < 2 {
		s = 2
	}
	ds := &DiskSorter{
		arr: arr,
		vd:  pdm.NewVirtual(arr, cfg.V),
		cpu: pram.NewVariant(cfg.P, cfg.PRAM),
		cfg: cfg,
		s:   s,
	}
	// The distribution pass keeps one track, the pending/carried blocks of
	// the previous track, and the partial per-bucket pools resident at
	// once, so the sorter wants DB <= M/4 (a constant factor tighter than
	// the model's DB <= M/2).
	if 4*p.D*p.B > p.M {
		panic(fmt.Sprintf("core: DB = %d exceeds M/4 = %d; the sorter needs that headroom", p.D*p.B, p.M/4))
	}
	ds.memload = (p.M / 2 / p.B) * p.B
	if ds.memload < ds.vd.V()*ds.vd.VB() {
		panic(fmt.Sprintf("core: memoryload %d smaller than one track %d", ds.memload, ds.vd.V()*ds.vd.VB()))
	}
	if ds.s*ds.vd.VB() > p.M/4 {
		panic(fmt.Sprintf("core: S*VB = %d exceeds M/4 = %d; lower S or V", ds.s*ds.vd.VB(), p.M/4))
	}
	return ds
}

// CPU exposes the PRAM cost model (for experiment harnesses).
func (ds *DiskSorter) CPU() *pram.Machine { return ds.cpu }

// internalSort sorts an in-memory slice with the configured algorithm.
func (ds *DiskSorter) internalSort(rs []record.Record) {
	if ds.cfg.Internal == SortRadix {
		ds.cpu.SortRadix(rs)
		return
	}
	ds.cpu.Sort(rs)
}

// S returns the bucket count per distribution pass.
func (ds *DiskSorter) S() int { return ds.s }

// Metrics returns the metrics of the last Sort call.
func (ds *DiskSorter) Metrics() Metrics { return ds.met }

// Sort sorts the n records striped at block offset off and returns the
// sorted output as an ordered list of striped segments (reading the
// segments in order yields the records in nondecreasing order).
func (ds *DiskSorter) Sort(off, n int) []Region {
	return ds.Resume(nil, []SourceDesc{StripedDesc(off, n, 0)}, Metrics{N: n})
}

const maxDepth = 64 // runaway-recursion guard; log_S(N) never approaches this

// Resume drives Algorithm 1's recursion as an explicit depth-first
// work-list, starting from checkpointed state: done segments already
// emitted, work still pending (front first), and the cumulative metrics
// recorded at the checkpoint. Sort is Resume from the initial state. The
// work-list visits levels in exactly the order the recursion would —
// a distribution pass pushes its bucket descriptors at the front — so an
// uninterrupted Resume performs the identical I/O sequence, and a resumed
// one continues it from the last committed step.
func (ds *DiskSorter) Resume(done []Region, work []SourceDesc, prior Metrics) []Region {
	ds.met = prior
	ds.arr.ResetStats()
	ds.cpu.Reset()

	done = append([]Region(nil), done...)
	work = append([]SourceDesc(nil), work...)
	commits := 0
	for len(work) > 0 {
		ds.checkCtx()
		d := work[0]
		work = work[1:]
		if d.Depth > maxDepth {
			panic("core: recursion depth exceeded — distribution is not making progress")
		}
		if d.Depth > ds.met.Depth {
			ds.met.Depth = d.Depth
		}
		src := ds.openSource(d)
		n := src.Total()
		if n == 0 {
			continue
		}
		if n <= ds.memload {
			sp := ds.cfg.Trace.Begin("sort", "base-case", 0)
			done = append(done, ds.baseCase(src))
			sp.End(obs.Attr{Key: "depth", Val: int64(d.Depth)}, obs.Attr{Key: "n", Val: int64(n)})
		} else {
			sp := ds.cfg.Trace.Begin("sort", "distribute-pass", 0)
			work = append(ds.distribute(sp, src, d.Depth), work...)
			sp.End(obs.Attr{Key: "depth", Val: int64(d.Depth)}, obs.Attr{Key: "n", Val: int64(n)})
		}
		ds.cfg.Trace.Count("sort", "records-moved", 0, int64(n))
		ds.refreshMetrics(prior)
		commits++
		if ds.cfg.CrashAfterCommits > 0 && commits == ds.cfg.CrashAfterCommits {
			panic(Abort{Err: ErrInjectedCrash})
		}
		if ds.cfg.Checkpoint != nil {
			if err := ds.cfg.Checkpoint(CheckpointState{Done: done, Work: work, Metrics: ds.met}); err != nil {
				panic(Abort{Err: err})
			}
		}
	}
	ds.refreshMetrics(prior)
	return done
}

// openSource materialises a work-list descriptor as a readable source.
func (ds *DiskSorter) openSource(d SourceDesc) source {
	switch d.Kind {
	case KindStriped:
		return newStripedSource(ds.arr, d.Off, d.N)
	case KindChains:
		return newChainSource(ds.vd, &chains{perDisk: d.Chains, total: d.Total()})
	}
	panic(fmt.Sprintf("core: unknown source kind %q", d.Kind))
}

// refreshMetrics folds this run's counters on top of the checkpointed
// prior ones, so Metrics stays cumulative across crash/resume.
func (ds *DiskSorter) refreshMetrics(prior Metrics) {
	st := ds.arr.Stats()
	ds.met.IOs = prior.IOs + st.IOs
	ds.met.ReadIOs = prior.ReadIOs + st.ReadIOs
	ds.met.WriteIOs = prior.WriteIOs + st.WriteIOs
	ds.met.BlocksRead = prior.BlocksRead + st.BlocksRead
	ds.met.BlocksWrit = prior.BlocksWrit + st.BlocksWritten
	ds.met.PRAMTime = prior.PRAMTime + ds.cpu.Time()
	ds.met.PRAMWork = prior.PRAMWork + ds.cpu.Work()
	if peak := ds.arr.Mem.Peak(); peak > prior.MemPeak {
		ds.met.MemPeak = peak
	} else {
		ds.met.MemPeak = prior.MemPeak
	}
}

// baseCase reads the remaining records, sorts them internally, and writes
// them out as one striped segment (Algorithm 1's N <= M branch, with the
// memoryload as the threshold so one buffer fits alongside bookkeeping).
func (ds *DiskSorter) baseCase(src source) Region {
	n := src.Total()
	ds.arr.Mem.Use(n)
	recs := src.ReadSome(n)
	if len(recs) != n {
		panic(fmt.Sprintf("core: source yielded %d of %d records", len(recs), n))
	}
	ds.internalSort(recs)
	seg := ds.writeStriped(recs)
	ds.arr.Mem.Release(n)
	return seg
}

// writeStriped allocates a fresh aligned region and writes recs to it.
func (ds *DiskSorter) writeStriped(recs []record.Record) Region {
	p := ds.arr.Params()
	blocks := (len(recs) + p.B - 1) / p.B
	perDisk := (blocks + p.D - 1) / p.D
	off := ds.arr.AllocStripe(perDisk)
	ds.arr.WriteStripe(off, recs)
	return Region{Off: off, N: len(recs)}
}

// formedBlock is a virtual block assembled in memory, waiting for the
// balancer to place it.
type formedBlock struct {
	bucket int
	recs   []record.Record // len <= VB; padded at write time
	count  int
}

// distribute is one pass of Algorithm 1's else-branch on the disk model:
// form sorted runs while sampling (phase 1), pick partition elements
// (phase 2), stream the runs through the balancer into per-bucket block
// chains (phase 3), and return the per-bucket descriptors (in bucket
// order) for the work-list to recurse into.
// pass is the enclosing distribute-pass span; the three phase spans are
// its children, so the trace shows the pass as a causal tree rather than
// four disjoint siblings.
func (ds *DiskSorter) distribute(pass obs.Active, src source, depth int) []SourceDesc {
	n := src.Total()
	ds.met.Passes++

	// --- Phase 1: memoryload runs + evenly spaced sampling ---------------
	phase1 := pass.Child("sort", "run-formation", 0)
	stride := (4*n + ds.arr.M() - 1) / ds.arr.M() // sample size <= M/4
	if stride < 4 {
		stride = 4
	}
	if stride > ds.memload {
		// Tiny-memory regime: the one-level stride would skip whole
		// memoryloads and leave the sample empty. Sample every load and
		// thin below instead (multi-level sampling).
		stride = ds.memload
	}
	var sample []record.Record
	var runs []Region
	for src.Total() > 0 {
		ds.checkCtx()
		want := ds.memload
		if t := src.Total(); t < want {
			want = t
		}
		ds.arr.Mem.Use(want)
		load := src.ReadSome(want)
		ds.internalSort(load)
		step := stride
		if step > len(load) {
			step = len(load) // at least one sample per sorted run
		}
		for i := step - 1; i < len(load); i += step {
			sample = append(sample, load[i])
			ds.arr.Mem.Use(1)
		}
		// Keep the sample within its M/4 budget: halve it whenever it
		// overflows. Thinning coarsens the pivots (buckets may exceed
		// 2N/S), which only deepens the recursion — correctness is
		// unaffected.
		for len(sample) > ds.arr.M()/4 {
			kept := sample[:0]
			for k := 1; k < len(sample); k += 2 {
				kept = append(kept, sample[k])
			}
			ds.arr.Mem.Release(len(sample) - len(kept))
			sample = kept
		}
		runs = append(runs, ds.writeStriped(load))
		ds.arr.Mem.Release(want)
	}
	phase1.End(obs.Attr{Key: "runs", Val: int64(len(runs))}, obs.Attr{Key: "sample", Val: int64(len(sample))})

	// --- Phase 2: partition elements from the sample ---------------------
	phase2 := pass.Child("sort", "partition-elements", 0)
	ds.internalSort(sample)
	s := ds.s
	pivots := make([]record.Record, 0, s-1)
	for j := 1; j < s; j++ {
		idx := j*len(sample)/s - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sample) {
			idx = len(sample) - 1
		}
		pivots = append(pivots, sample[idx])
	}
	ds.arr.Mem.Release(len(sample))
	sample = nil
	ds.arr.Mem.Use(len(pivots))
	phase2.End(obs.Attr{Key: "pivots", Val: int64(len(pivots))})

	// --- Phase 3: balanced distribution into block chains ----------------
	phase3 := pass.Child("sort", "distribute-tracks", 0)
	h := ds.vd.V()
	vb := ds.vd.VB()
	pl := ds.newPlacer(s, h)
	matrixWords := 3 * s * h
	ds.arr.Mem.Use(matrixWords / 2) // X, A, L matrices; 2 words per record-equivalent

	buckets := make([]*chains, s)
	for b := range buckets {
		buckets[b] = newChains(h)
	}
	pools := make([][]record.Record, s)
	var pending []formedBlock
	counts := make([]int, s)

	// Records are charged against internal memory exactly once, when their
	// track is read; flushWrites releases a block's records when they reach
	// disk, so pools, pending blocks, and carried blocks stay charged for
	// as long as they are resident.
	placeTracks := func(final bool) {
		idle := 0
		for (len(pending) >= h) || (final && len(pending) > 0) {
			take := len(pending)
			if take > h {
				take = h
			}
			track := pending[:take]
			labels := make([]int, take)
			for i, fb := range track {
				labels[i] = fb.bucket
			}
			writes, carry := pl.placeTrack(labels)
			if len(writes) == 0 {
				idle++
				if idle > 10*h {
					panic("core: balancer made no progress on tail blocks")
				}
			} else {
				idle = 0
			}
			ds.flushWrites(track, writes, buckets)
			rest := append([]formedBlock(nil), pending[take:]...)
			for _, c := range carry {
				rest = append(rest, track[c])
			}
			pending = rest
		}
	}

	trackRecs := h * vb
	for _, run := range runs {
		rsrc := newStripedSource(ds.arr, run.Off, run.N)
		for rsrc.Total() > 0 {
			ds.checkCtx()
			want := trackRecs
			if t := rsrc.Total(); t < want {
				want = t
			}
			ds.arr.Mem.Use(want)
			recs := rsrc.ReadSome(want)
			labels := ds.cpu.Partition(recs, pivots)
			ds.cpu.ChargeScan(len(recs))
			for i, r := range recs {
				b := labels[i]
				counts[b]++
				pools[b] = append(pools[b], r)
				if len(pools[b]) == vb {
					pending = append(pending, formedBlock{bucket: b, recs: pools[b], count: vb})
					pools[b] = nil
				}
			}
			placeTracks(false)
		}
	}

	// Flush leftovers as (possibly partial) blocks and drain the queue.
	for b, pool := range pools {
		if len(pool) > 0 {
			pending = append(pending, formedBlock{bucket: b, recs: pool, count: len(pool)})
			pools[b] = nil
		}
	}
	placeTracks(true)

	ds.arr.Mem.Release(len(pivots))
	ds.arr.Mem.Release(matrixWords / 2)

	// Bookkeeping for the paper's guarantees.
	bs := pl.stats()
	ds.met.Balance.Tracks += bs.Tracks
	ds.met.Balance.BlocksPlaced += bs.BlocksPlaced
	ds.met.Balance.BlocksCarried += bs.BlocksCarried
	ds.met.Balance.TwosIntroduced += bs.TwosIntroduced
	ds.met.Balance.RearrangeCalls += bs.RearrangeCalls
	ds.met.Balance.RearrangeMoves += bs.RearrangeMoves
	ds.met.Balance.MatchTime += bs.MatchTime
	ds.met.Balance.ExtraWriteSteps += bs.ExtraWriteSteps
	ds.cpu.Charge(0, bs.MatchTime)
	phase3.End(
		obs.Attr{Key: "buckets", Val: int64(s)},
		obs.Attr{Key: "tracks", Val: int64(bs.Tracks)},
		obs.Attr{Key: "carried", Val: int64(bs.BlocksCarried)},
	)

	for b := 0; b < s; b++ {
		if counts[b] > 0 {
			frac := float64(counts[b]) * float64(s) / float64(n)
			if frac > ds.met.MaxBucketFrac {
				ds.met.MaxBucketFrac = frac
			}
			if counts[b] >= n {
				panic("core: distribution made no progress (one bucket holds everything)")
			}
			opt := (buckets[b].total + h*vb - 1) / (h * vb)
			if opt > 0 {
				ratio := float64(buckets[b].rounds()) / float64(opt)
				if ratio > ds.met.MaxBucketReadRatio {
					ds.met.MaxBucketReadRatio = ratio
				}
			}
		}
	}

	// --- Emit bucket descriptors in order for the work-list --------------
	var kids []SourceDesc
	for b := 0; b < s; b++ {
		if buckets[b].total == 0 {
			continue
		}
		kids = append(kids, SourceDesc{Kind: KindChains, Depth: depth + 1, Chains: buckets[b].perDisk})
	}
	return kids
}

// flushWrites performs the parallel write I/Os for one track's placements,
// one ParallelVIO per balancer round, and records the chain entries.
func (ds *DiskSorter) flushWrites(track []formedBlock, writes []balance.Placement, buckets []*chains) {
	if len(writes) == 0 {
		return
	}
	maxRound := 0
	for _, w := range writes {
		if w.Round > maxRound {
			maxRound = w.Round
		}
	}
	vb := ds.vd.VB()
	for r := 0; r <= maxRound; r++ {
		var ops []pdm.VOp
		for _, w := range writes {
			if w.Round != r {
				continue
			}
			fb := track[w.Block]
			data := fb.recs
			if len(data) < vb {
				padded := make([]record.Record, vb)
				copy(padded, data)
				for i := len(data); i < vb; i++ {
					padded[i] = record.Record{Key: ^uint64(0), Loc: ^uint64(0)}
				}
				data = padded
			}
			off := ds.vd.Alloc(w.VDisk, 1)
			ops = append(ops, pdm.VOp{VDisk: w.VDisk, Off: off, Write: true, Data: data})
			buckets[fb.bucket].add(w.VDisk, off, fb.count)
			ds.arr.Mem.Release(fb.count)
		}
		ds.vd.ParallelVIO(ops)
	}
}

// ReadRegion reads a striped segment back into memory (verification and
// facade use; counts I/Os like any other access).
func (ds *DiskSorter) ReadRegion(r Region) []record.Record {
	dst := make([]record.Record, r.N)
	ds.arr.ReadStripe(r.Off, dst)
	return dst
}

// WriteInput stripes the given records onto the array and returns the
// region, for loading workloads before sorting.
func (ds *DiskSorter) WriteInput(recs []record.Record) Region {
	return ds.writeStriped(recs)
}
