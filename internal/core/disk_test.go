package core

import (
	"sort"
	"testing"

	"balancesort/internal/balance"
	"balancesort/internal/pdm"
	"balancesort/internal/record"
)

// sortOnDisks loads recs onto a fresh array, runs Balance Sort, reads the
// segments back, and returns the output with the sorter for metric checks.
func sortOnDisks(t *testing.T, p pdm.Params, cfg DiskConfig, recs []record.Record) ([]record.Record, *DiskSorter) {
	t.Helper()
	arr := pdm.New(p)
	t.Cleanup(func() { arr.Close() })
	ds := NewDiskSorter(arr, cfg)
	in := ds.WriteInput(recs)
	segs := ds.Sort(in.Off, in.N)
	var out []record.Record
	for _, seg := range segs {
		out = append(out, ds.ReadRegion(seg)...)
	}
	return out, ds
}

func checkSorted(t *testing.T, in, out []record.Record) {
	t.Helper()
	if len(out) != len(in) {
		t.Fatalf("output has %d records, want %d", len(out), len(in))
	}
	if !record.IsSorted(out) {
		for i := 1; i < len(out); i++ {
			if out[i].Less(out[i-1]) {
				t.Fatalf("output unsorted at %d: %v then %v", i, out[i-1], out[i])
			}
		}
	}
	if !record.SameMultiset(in, out) {
		t.Fatal("output is not a permutation of the input")
	}
}

func smallParams() pdm.Params { return pdm.Params{D: 4, B: 8, M: 512} }

func TestSortTinyBaseCase(t *testing.T) {
	// N below one memoryload: pure base case, no distribution.
	in := record.Generate(record.Uniform, 100, 1)
	out, ds := sortOnDisks(t, smallParams(), DiskConfig{}, in)
	checkSorted(t, in, out)
	if ds.Metrics().Passes != 0 {
		t.Fatalf("tiny input used %d distribution passes", ds.Metrics().Passes)
	}
}

func TestSortOneLevel(t *testing.T) {
	// N a few memoryloads: one distribution pass, buckets fit in memory.
	in := record.Generate(record.Uniform, 2000, 2)
	out, ds := sortOnDisks(t, smallParams(), DiskConfig{}, in)
	checkSorted(t, in, out)
	m := ds.Metrics()
	if m.Passes < 1 {
		t.Fatal("expected at least one distribution pass")
	}
	if m.Depth < 1 {
		t.Fatal("expected recursion depth >= 1")
	}
}

func TestSortTwoLevels(t *testing.T) {
	// N large enough that some bucket exceeds a memoryload.
	in := record.Generate(record.Uniform, 20000, 3)
	out, ds := sortOnDisks(t, smallParams(), DiskConfig{}, in)
	checkSorted(t, in, out)
	if ds.Metrics().Depth < 2 {
		t.Fatalf("depth = %d, expected >= 2", ds.Metrics().Depth)
	}
}

func TestSortAllWorkloads(t *testing.T) {
	for _, w := range record.AllWorkloads {
		in := record.Generate(w, 6000, 4)
		out, _ := sortOnDisks(t, smallParams(), DiskConfig{}, in)
		checkSorted(t, in, out)
	}
}

func TestSortEmptyAndSingle(t *testing.T) {
	out, _ := sortOnDisks(t, smallParams(), DiskConfig{}, nil)
	if len(out) != 0 {
		t.Fatal("empty input produced output")
	}
	in := []record.Record{{Key: 5, Loc: 0}}
	out, _ = sortOnDisks(t, smallParams(), DiskConfig{}, in)
	checkSorted(t, in, out)
}

func TestSortDeterministic(t *testing.T) {
	in := record.Generate(record.Uniform, 8000, 5)
	out1, ds1 := sortOnDisks(t, smallParams(), DiskConfig{}, in)
	out2, ds2 := sortOnDisks(t, smallParams(), DiskConfig{}, in)
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatal("outputs differ between identical runs")
		}
	}
	if ds1.Metrics().IOs != ds2.Metrics().IOs {
		t.Fatalf("I/O counts differ: %d vs %d", ds1.Metrics().IOs, ds2.Metrics().IOs)
	}
	if ds1.Metrics().PRAMTime != ds2.Metrics().PRAMTime {
		t.Fatal("PRAM times differ between identical runs")
	}
}

func TestSortRandomizedMatchingStillSorts(t *testing.T) {
	in := record.Generate(record.BucketSkew, 8000, 6)
	out, _ := sortOnDisks(t, smallParams(), DiskConfig{Match: balance.MatchRandomized, Seed: 99}, in)
	checkSorted(t, in, out)
}

func TestSortGreedyMatchingStillSorts(t *testing.T) {
	in := record.Generate(record.BucketSkew, 8000, 7)
	out, _ := sortOnDisks(t, smallParams(), DiskConfig{Match: balance.MatchGreedy}, in)
	checkSorted(t, in, out)
}

func TestSortArgeRuleStillSorts(t *testing.T) {
	in := record.Generate(record.Uniform, 8000, 8)
	out, _ := sortOnDisks(t, smallParams(), DiskConfig{Rule: balance.AuxTwiceAverage}, in)
	checkSorted(t, in, out)
}

func TestSortPartialStriping(t *testing.T) {
	p := pdm.Params{D: 8, B: 4, M: 1024}
	for _, v := range []int{1, 2, 4, 8} {
		in := record.Generate(record.Uniform, 6000, uint64(v))
		out, _ := sortOnDisks(t, p, DiskConfig{V: v}, in)
		checkSorted(t, in, out)
	}
}

func TestSortMultipleProcessorsSameIOs(t *testing.T) {
	// Figure 2a vs 2b: P only affects internal time, never the I/O count.
	in := record.Generate(record.Uniform, 8000, 9)
	out1, ds1 := sortOnDisks(t, smallParams(), DiskConfig{P: 1}, in)
	out4, ds4 := sortOnDisks(t, smallParams(), DiskConfig{P: 4}, in)
	checkSorted(t, in, out1)
	checkSorted(t, in, out4)
	if ds1.Metrics().IOs != ds4.Metrics().IOs {
		t.Fatalf("I/Os differ with P: %d vs %d", ds1.Metrics().IOs, ds4.Metrics().IOs)
	}
	if ds4.Metrics().PRAMTime >= ds1.Metrics().PRAMTime {
		t.Fatalf("P=4 not faster: %.0f vs %.0f", ds4.Metrics().PRAMTime, ds1.Metrics().PRAMTime)
	}
}

func TestTheorem4ReadRatioBounded(t *testing.T) {
	for _, w := range []record.Workload{record.Uniform, record.BucketSkew, record.FewDistinct} {
		in := record.Generate(w, 16000, 10)
		out, ds := sortOnDisks(t, smallParams(), DiskConfig{}, in)
		checkSorted(t, in, out)
		if r := ds.Metrics().MaxBucketReadRatio; r > 3.0 {
			t.Fatalf("%v: bucket read ratio %.2f far exceeds Theorem 4's ~2", w, r)
		}
	}
}

func TestBucketSizesBounded(t *testing.T) {
	in := record.Generate(record.Uniform, 16000, 11)
	_, ds := sortOnDisks(t, smallParams(), DiskConfig{}, in)
	if f := ds.Metrics().MaxBucketFrac; f > 2.5 {
		t.Fatalf("max bucket %.2fx the even share; pivot guarantee is ~2x", f)
	}
}

func TestMemoryNeverExceedsM(t *testing.T) {
	// The Mem tracker panics on overflow, so surviving the run is the
	// assertion; additionally the peak must be meaningfully below M.
	in := record.Generate(record.Uniform, 16000, 12)
	_, ds := sortOnDisks(t, smallParams(), DiskConfig{}, in)
	if peak := ds.Metrics().MemPeak; peak > smallParams().M {
		t.Fatalf("memory peak %d exceeds M = %d", peak, smallParams().M)
	}
	if ds.Metrics().MemPeak == 0 {
		t.Fatal("memory accounting recorded nothing")
	}
}

func TestIOsWithinConstantOfLowerBound(t *testing.T) {
	p := pdm.Params{D: 4, B: 16, M: 2048}
	in := record.Generate(record.Uniform, 1<<16, 13)
	out, ds := sortOnDisks(t, p, DiskConfig{}, in)
	checkSorted(t, in, out)
	lb := LowerBoundIOs(len(in), p)
	ratio := float64(ds.Metrics().IOs) / lb
	if ratio > 12 {
		t.Fatalf("I/Os %d are %.1fx the lower bound %.0f — not a constant factor", ds.Metrics().IOs, ratio, lb)
	}
	if ratio < 1 {
		t.Fatalf("I/Os %d beat the lower bound %.0f — counting bug", ds.Metrics().IOs, lb)
	}
}

func TestSegmentsAreOrderedRuns(t *testing.T) {
	in := record.Generate(record.Uniform, 12000, 14)
	arr := pdm.New(smallParams())
	defer arr.Close()
	ds := NewDiskSorter(arr, DiskConfig{})
	reg := ds.WriteInput(in)
	segs := ds.Sort(reg.Off, reg.N)
	var last record.Record
	first := true
	total := 0
	for _, seg := range segs {
		recs := ds.ReadRegion(seg)
		total += len(recs)
		if !record.IsSorted(recs) {
			t.Fatal("segment internally unsorted")
		}
		if len(recs) == 0 {
			t.Fatal("empty segment emitted")
		}
		if !first && recs[0].Less(last) {
			t.Fatal("segments out of order")
		}
		last = recs[len(recs)-1]
		first = false
	}
	if total != len(in) {
		t.Fatalf("segments hold %d records, want %d", total, len(in))
	}
}

func TestLowerBoundFormula(t *testing.T) {
	p := pdm.Params{D: 10, B: 100, M: 10000}
	// N = B: log(N/B) = max(1, 0) = 1 -> N/(DB) * 1/log(M/B).
	got := LowerBoundIOs(100, p)
	want := 100.0 / 1000.0 * 1.0 / 6.643856189774724
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("LowerBoundIOs = %v, want %v", got, want)
	}
	if LowerBoundIOs(0, p) != 0 {
		t.Fatal("zero records should cost zero")
	}
}

func TestSConfigOverride(t *testing.T) {
	arr := pdm.New(smallParams())
	defer arr.Close()
	ds := NewDiskSorter(arr, DiskConfig{S: 3})
	if ds.S() != 3 {
		t.Fatalf("S = %d, want 3", ds.S())
	}
}

func TestDefaultSFollowsPaper(t *testing.T) {
	arr := pdm.New(pdm.Params{D: 4, B: 8, M: 2048})
	defer arr.Close()
	ds := NewDiskSorter(arr, DiskConfig{})
	// (M/B)^{1/4} = 256^{1/4} = 4.
	if ds.S() != 4 {
		t.Fatalf("default S = %d, want 4", ds.S())
	}
}

func TestNewDiskSorterRejectsTightMemory(t *testing.T) {
	arr := pdm.New(pdm.Params{D: 8, B: 8, M: 128}) // DB = M/2
	defer arr.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("DB > M/4 accepted")
		}
	}()
	NewDiskSorter(arr, DiskConfig{})
}

func TestDuplicateHeavyStableByLoc(t *testing.T) {
	// FewDistinct keys: ties must come out ordered by original location,
	// which is exactly what effective-key sorting guarantees.
	in := record.Generate(record.FewDistinct, 6000, 15)
	out, _ := sortOnDisks(t, smallParams(), DiskConfig{}, in)
	want := append([]record.Record(nil), in...)
	sort.Slice(want, func(i, j int) bool { return want[i].Less(want[j]) })
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("duplicate ordering differs at %d", i)
		}
	}
}

func TestSortRadixInternal(t *testing.T) {
	in := record.Generate(record.Zipf, 12000, 31)
	out, ds := sortOnDisks(t, smallParams(), DiskConfig{Internal: SortRadix}, in)
	checkSorted(t, in, out)
	// Radix charges different PRAM work than comparison sorting.
	_, dc := sortOnDisks(t, smallParams(), DiskConfig{}, in)
	if ds.Metrics().PRAMTime == dc.Metrics().PRAMTime {
		t.Fatal("radix and comparison internal sorts charged identical time")
	}
	if ds.Metrics().IOs != dc.Metrics().IOs {
		t.Fatal("internal sort choice changed the I/O count")
	}
}

func TestSortRandomConfigurations(t *testing.T) {
	// Deterministic sweep over the configuration space: every legal
	// (D, B, M, V, S) combination drawn here must sort every workload
	// shape it is paired with.
	rng := record.NewRNG(2026)
	for trial := 0; trial < 25; trial++ {
		d := 1 << rng.Intn(4) // 1..8
		b := 4 << rng.Intn(3) // 4..16
		m := 4 * d * b * (2 + rng.Intn(6))
		v := d >> rng.Intn(2) // d or d/2 (divides d)
		if v < 1 {
			v = 1
		}
		s := 0
		if rng.Intn(2) == 0 {
			s = 2 + rng.Intn(4)
		}
		p := pdm.Params{D: d, B: b, M: m}
		cfg := DiskConfig{V: v, S: s, P: 1 + rng.Intn(4)}
		if s != 0 && s*(b*d/v) > m/4 {
			continue // would violate the pool budget; not a legal config
		}
		w := record.AllWorkloads[rng.Intn(len(record.AllWorkloads))]
		n := 500 + rng.Intn(8000)
		in := record.Generate(w, n, uint64(trial))
		out, ds := sortOnDisks(t, p, cfg, in)
		checkSorted(t, in, out)
		if ds.Metrics().MemPeak > m {
			t.Fatalf("trial %d (D=%d B=%d M=%d V=%d S=%d): memory peak %d > M",
				trial, d, b, m, v, s, ds.Metrics().MemPeak)
		}
	}
}
