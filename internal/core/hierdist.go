package core

import (
	"math"

	"balancesort/internal/balance"
	"balancesort/internal/hier"
	"balancesort/internal/record"
)

// bucketOf returns the number of pivots <= r — r's bucket index.
func bucketOf(r record.Record, pivots []record.Record) int {
	lo, hi := 0, len(pivots)
	for lo < hi {
		mid := (lo + hi) / 2
		if pivots[mid].Less(r) || pivots[mid] == r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// rowMeta describes one virtual block (= one row of a virtual hierarchy's
// member group) sitting in a distribution append log.
type rowMeta struct {
	bucket int
	count  int // real records in the row (<= vb; the rest is padding)
}

// flushRegion is one contiguous run of append-log rows on a virtual
// hierarchy, written by a single long transfer. base is the region's cost
// origin: addr-base equals the log's cumulative row depth before it.
type flushRegion struct {
	addr int
	base int
	rows []rowMeta
}

// vhierLog accumulates a virtual hierarchy's formed blocks: a base-side
// buffer of pending rows plus the flushed regions on the member
// hierarchies. Buffered long flushes are what keep the distribution's write
// side affordable on BT hierarchies (every flush is one block transfer per
// member hierarchy).
type vhierLog struct {
	pendingRows [][]record.Record // each of length vb (padded)
	pendingMeta []rowMeta
	regions     []flushRegion
	totalRows   int
}

// distributeSegments streams the sorted groups through the balancing
// discipline into per-virtual-hierarchy append logs, then gathers each
// bucket into a fresh contiguous segment (the repositioning step Section
// 4.4 requires for BT; run for HMM too at a constant-factor cost — see
// DESIGN.md). It returns the bucket segments and their record counts.
func (hs *HierSorter) distributeSegments(groups []Segment, pivots []record.Record, s int) ([]Segment, []int) {
	h := hs.m.H()
	hp := hs.hp
	vb := hs.vb
	hs.met.Passes++

	bal := balance.New(balance.Config{
		S: s, H: hp,
		Rule:  hs.cfg.Rule,
		Match: hs.cfg.Match,
		Seed:  hs.cfg.Seed,
		TCost: hs.m.TCost(),
	})

	logs := make([]*vhierLog, hp)
	for i := range logs {
		logs[i] = &vhierLog{}
	}
	pools := make([][]record.Record, s)
	counts := make([]int, s)
	var pending []formedBlock

	bufferRow := func(vh int, fb formedBlock) {
		row := fb.recs
		if len(row) < vb {
			padded := make([]record.Record, vb)
			copy(padded, row)
			for i := len(row); i < vb; i++ {
				padded[i] = record.Record{Key: ^uint64(0), Loc: ^uint64(0)}
			}
			row = padded
		}
		logs[vh].pendingRows = append(logs[vh].pendingRows, row)
		logs[vh].pendingMeta = append(logs[vh].pendingMeta, rowMeta{bucket: fb.bucket, count: fb.count})
	}

	// flushLogs writes every virtual hierarchy's pending rows in one
	// parallel step (the member groups are disjoint, so one op per
	// hierarchy suffices).
	flushLogs := func() {
		var ops []hier.Op
		members := h / hp
		for vh, lg := range logs {
			k := len(lg.pendingRows)
			if k == 0 {
				continue
			}
			addr := hs.m.AllocAligned(vh*members, (vh+1)*members, k)
			// The region's cost origin is set so that its rows continue at
			// the log's cumulative depth (the log is one logical stream
			// even when its flushes land in separate allocations).
			base := addr - lg.totalRows
			for mm := 0; mm < members; mm++ {
				data := make([]record.Record, k)
				for r := 0; r < k; r++ {
					data[r] = lg.pendingRows[r][mm]
				}
				ops = append(ops, hier.Op{H: vh*members + mm, Addr: addr, N: k, Base: base, Data: data})
			}
			lg.regions = append(lg.regions, flushRegion{addr: addr, base: base, rows: lg.pendingMeta})
			lg.totalRows += k
			lg.pendingRows, lg.pendingMeta = nil, nil
		}
		hs.m.ParallelWrite(ops)
	}

	maybeFlush := func() {
		for _, lg := range logs {
			// Flush when the buffer reaches the transfer length that
			// amortizes the log's current depth (touch-style growth).
			threshold := hs.adaptiveLen(1, 1+lg.totalRows)
			if len(lg.pendingRows) >= threshold {
				flushLogs()
				return
			}
		}
	}

	placeTracks := func(final bool) {
		idle := 0
		for (len(pending) >= hp) || (final && len(pending) > 0) {
			take := len(pending)
			if take > hp {
				take = hp
			}
			track := pending[:take]
			labels := make([]int, take)
			for i, fb := range track {
				labels[i] = fb.bucket
			}
			writes, carry := bal.PlaceTrack(labels)
			if len(writes) == 0 {
				idle++
				if idle > 10*hp {
					panic("core: hierarchy balancer made no progress on tail blocks")
				}
			} else {
				idle = 0
			}
			for _, w := range writes {
				bufferRow(w.VDisk, track[w.Block])
			}
			rest := append([]formedBlock(nil), pending[take:]...)
			for _, c := range carry {
				rest = append(rest, track[c])
			}
			pending = rest
			maybeFlush()
		}
	}

	lgS := math.Log2(float64(s))
	if lgS < 1 {
		lgS = 1
	}
	for _, grp := range groups {
		rd := newSegReader(hs, grp)
		for {
			batch := rd.next(h)
			if len(batch) == 0 {
				break
			}
			// Partitioning one batch across the interconnect: a binary
			// search over the S-1 pivots plus a routing scan.
			hs.m.ChargeNet(lgS)
			hs.m.ChargeNetScan(len(batch))
			for _, r := range batch {
				b := bucketOf(r, pivots)
				counts[b]++
				pools[b] = append(pools[b], r)
				if len(pools[b]) == vb {
					pending = append(pending, formedBlock{bucket: b, recs: pools[b], count: vb})
					pools[b] = nil
				}
			}
			placeTracks(false)
		}
	}
	for b, pool := range pools {
		if len(pool) > 0 {
			pending = append(pending, formedBlock{bucket: b, recs: pool, count: len(pool)})
			pools[b] = nil
		}
	}
	placeTracks(true)
	flushLogs()

	// Matching time goes to the interconnect; balance stats to metrics.
	bs := bal.Stats()
	hs.m.ChargeNet(bs.MatchTime)
	hs.met.Balance.Tracks += bs.Tracks
	hs.met.Balance.BlocksPlaced += bs.BlocksPlaced
	hs.met.Balance.BlocksCarried += bs.BlocksCarried
	hs.met.Balance.TwosIntroduced += bs.TwosIntroduced
	hs.met.Balance.RearrangeCalls += bs.RearrangeCalls
	hs.met.Balance.RearrangeMoves += bs.RearrangeMoves
	hs.met.Balance.MatchTime += bs.MatchTime
	hs.met.Balance.ExtraWriteSteps += bs.ExtraWriteSteps

	totalRows := 0
	maxRows := 0
	for _, lg := range logs {
		totalRows += lg.totalRows
		if lg.totalRows > maxRows {
			maxRows = lg.totalRows
		}
	}
	if totalRows > 0 {
		skew := float64(maxRows) * float64(hp) / float64(totalRows)
		if skew > hs.met.MaxLogSkew {
			hs.met.MaxLogSkew = skew
		}
	}

	return hs.gatherBuckets(logs, counts), counts
}

// gatherBuckets repositions every bucket into a contiguous striped segment:
// region-by-region, all virtual hierarchies are read in lockstep rounds
// (one parallel step per round), and each row's records are routed to its
// bucket's segment writer.
func (hs *HierSorter) gatherBuckets(logs []*vhierLog, counts []int) []Segment {
	h := hs.m.H()
	hp := hs.hp
	members := h / hp

	writers := make([]*segWriter, len(counts))
	for b, c := range counts {
		if c > 0 {
			writers[b] = newSegWriter(hs, c)
		}
	}

	maxRegions := 0
	for _, lg := range logs {
		if len(lg.regions) > maxRegions {
			maxRegions = len(lg.regions)
		}
	}
	for round := 0; round < maxRegions; round++ {
		var ops []hier.Op
		type srcRegion struct {
			vh  int
			reg flushRegion
			ops []int // indices into ops, one per member
		}
		var srcs []srcRegion
		for vh, lg := range logs {
			if round >= len(lg.regions) {
				continue
			}
			reg := lg.regions[round]
			sr := srcRegion{vh: vh, reg: reg}
			for mm := 0; mm < members; mm++ {
				sr.ops = append(sr.ops, len(ops))
				ops = append(ops, hier.Op{H: vh*members + mm, Addr: reg.addr, N: len(reg.rows), Base: reg.base})
			}
			srcs = append(srcs, sr)
		}
		if len(ops) == 0 {
			continue
		}
		data := hs.m.ParallelRead(ops)
		routed := 0
		for _, sr := range srcs {
			for r, meta := range sr.reg.rows {
				row := make([]record.Record, 0, meta.count)
				for mm := 0; mm < members && len(row) < meta.count; mm++ {
					row = append(row, data[sr.ops[mm]][r])
				}
				writers[meta.bucket].append(row)
				routed += meta.count
			}
		}
		hs.m.ChargeNetScan(routed)
	}

	out := make([]Segment, len(counts))
	for b, w := range writers {
		if w != nil {
			out[b] = w.close()
		}
	}
	return out
}
