package bt

import (
	"testing"

	"balancesort/internal/hmm"
)

func TestAccessCostIsBlockTransfer(t *testing.T) {
	m := Model{Cost: hmm.LogCost{}}
	// Range [100, 356): f(356) + 256.
	want := hmm.LogCost{}.F(356) + 256
	if got := m.AccessCost(100, 356); got != want {
		t.Fatalf("AccessCost = %v, want %v", got, want)
	}
	if m.AccessCost(5, 5) != 0 {
		t.Fatal("empty transfer must cost 0")
	}
}

func TestBTBeatsHMMOnLongTransfers(t *testing.T) {
	// The whole point of BT: one long transfer costs f(hi)+len instead of
	// HMM's per-location sum.
	btm := Model{Cost: hmm.PowerCost{Alpha: 1}}
	hmmm := hmm.Model{Cost: hmm.PowerCost{Alpha: 1}}
	if btm.AccessCost(0, 10000) >= hmmm.AccessCost(0, 10000) {
		t.Fatal("BT transfer not cheaper than HMM scan")
	}
}

func TestTouchCostShape(t *testing.T) {
	// For f(x)=x^α, α<1, touch cost is O(n log log n): the ratio to
	// TouchBound must stay bounded as n grows.
	m := Model{Cost: hmm.PowerCost{Alpha: 0.5}}
	prevRatio := 0.0
	for _, n := range []int{1 << 10, 1 << 14, 1 << 18, 1 << 22} {
		ratio := m.TouchCost(n) / TouchBound(n)
		if ratio > 3 {
			t.Fatalf("touch(%d)/bound = %v, not O(n log log n)-shaped", n, ratio)
		}
		prevRatio = ratio
	}
	_ = prevRatio
}

func TestTouchCostMonotone(t *testing.T) {
	m := Model{Cost: hmm.PowerCost{Alpha: 0.5}}
	prev := 0.0
	for n := 1; n < 1<<16; n *= 2 {
		c := m.TouchCost(n)
		if c <= prev {
			t.Fatalf("TouchCost(%d) = %v not increasing", n, c)
		}
		prev = c
	}
}

func TestTouchTiny(t *testing.T) {
	m := Model{Cost: hmm.LogCost{}}
	if m.TouchCost(0) != 0 {
		t.Fatal("touch of nothing must be free")
	}
	if m.TouchCost(1) != 1 {
		t.Fatal("touch of one record costs one access")
	}
}

func TestName(t *testing.T) {
	m := Model{Cost: hmm.LogCost{}}
	if m.Name() != "BT(log)" {
		t.Fatalf("name = %q", m.Name())
	}
}
