// Package bt models the Block Transfer hierarchy of Aggarwal, Chandra and
// Snir (reference [ACSa]; Figure 3b of the paper): like HMM it has an
// access-cost function f(x), but the t+1 consecutive locations x, x-1, …,
// x-t can be fetched in one operation of cost f(x) + t. Long transfers
// therefore amortize the latency of deep memory, which is why Theorem 3's
// bounds beat Theorem 2's for the same f.
//
// The package also provides the "touch" pass the paper invokes for the
// P-BT analysis (Section 4.4): streaming an n-record array through the base
// level in order, which [ACSa] shows costs O(n log log n) for f(x) = x^α
// with α < 1 when done with recursively doubled transfer lengths.
package bt

import (
	"math"

	"balancesort/internal/hmm"
)

// Model is the BT access-cost model for internal/hier's machine: touching
// the contiguous range [lo, hi) is one block transfer of length hi-lo
// ending at depth hi, costing f(hi) + (hi - lo).
type Model struct {
	Cost hmm.CostFunc
}

// AccessCost returns f(hi) + (hi-lo) for the range [lo, hi).
func (m Model) AccessCost(lo, hi int) float64 {
	if hi <= lo {
		return 0
	}
	return m.Cost.F(float64(hi)) + float64(hi-lo)
}

// Name labels the model.
func (m Model) Name() string { return "BT(" + m.Cost.Name() + ")" }

// TouchCost returns the cost of the [ACSa] touch pass over an n-record
// array stored at depth [0, n): the array is pulled through the base level
// in order using transfer lengths that double with depth, so segment
// [2^k, 2^{k+1}) moves in one transfer of cost f(2^{k+1}) + 2^k. For
// f(x) = x^α, α < 1, the sum is dominated by the linear term once k exceeds
// log log n doubling rounds — the O(n log log n) bound the paper uses.
func (m Model) TouchCost(n int) float64 {
	if n <= 1 {
		return float64(n)
	}
	total := m.Cost.F(1) // address 0
	for lo := 1; lo < n; lo *= 2 {
		hi := lo * 2
		if hi > n {
			hi = n
		}
		total += m.Cost.F(float64(hi)) + float64(hi-lo)
	}
	return total
}

// TouchBound evaluates the paper's stated touch complexity n·log log n
// (with the max(1,·) floors), for comparing measured against stated shape.
func TouchBound(n int) float64 {
	if n < 2 {
		return 1
	}
	lg := math.Log2(float64(n))
	if lg < 2 {
		lg = 2
	}
	llg := math.Log2(lg)
	if llg < 1 {
		llg = 1
	}
	return float64(n) * llg
}
