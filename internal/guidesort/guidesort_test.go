package guidesort

import (
	"context"
	"errors"
	"testing"

	"balancesort/internal/core"
	"balancesort/internal/pdm"
	"balancesort/internal/record"
)

// pGuided is a geometry where the guided discipline fits comfortably.
func pGuided() pdm.Params { return pdm.Params{D: 4, B: 8, M: 1024} }

// run sorts in on a fresh in-memory array and returns the output.
func run(t *testing.T, p pdm.Params, cfg Config, in []record.Record) ([]record.Record, Metrics) {
	t.Helper()
	arr := pdm.New(p)
	t.Cleanup(func() { arr.Close() })
	off := loadInput(arr, in)
	s := NewSorter(arr, cfg)
	reg := s.Sort(off, len(in))
	out := make([]record.Record, reg.N)
	readRegion(arr, reg.Off, out)
	return out, s.Metrics()
}

func loadInput(arr *pdm.Array, in []record.Record) int {
	p := arr.Params()
	blocks := (len(in) + p.B - 1) / p.B
	perDisk := (blocks + p.D - 1) / p.D
	if perDisk == 0 {
		perDisk = 1
	}
	off := arr.AllocStripe(perDisk)
	arr.WriteStripe(off, in)
	return off
}

// readRegion reads n records from a region laid out in guidesort's
// blk%D striping (identical to WriteStripe's layout).
func readRegion(arr *pdm.Array, off int, out []record.Record) {
	arr.ReadStripe(off, out)
}

func check(t *testing.T, in, out []record.Record) {
	t.Helper()
	if len(out) != len(in) {
		t.Fatalf("got %d records, want %d", len(out), len(in))
	}
	if !record.IsSorted(out) {
		t.Fatal("output not sorted")
	}
	if !record.SameMultiset(in, out) {
		t.Fatal("output not a permutation of input")
	}
}

func TestGuidedSortsAllWorkloads(t *testing.T) {
	for _, w := range record.AllWorkloads {
		for _, n := range []int{1, 7, 64, 500, 4000} {
			in := record.Generate(w, n, 11)
			out, met := run(t, pGuided(), Config{}, in)
			check(t, in, out)
			if met.MemPeak > pGuided().M {
				t.Fatalf("%v n=%d: mem peak %d exceeds M=%d", w, n, met.MemPeak, pGuided().M)
			}
		}
	}
}

func TestStripedModeMatchesGuided(t *testing.T) {
	for _, w := range record.AllWorkloads {
		in := record.Generate(w, 3000, 13)
		guided, _ := run(t, pGuided(), Config{}, in)
		striped, _ := run(t, pGuided(), Config{Striped: true}, in)
		check(t, in, guided)
		for i := range guided {
			if guided[i] != striped[i] {
				t.Fatalf("%v: guided and striped outputs differ at %d", w, i)
			}
		}
	}
}

func TestRadixAndComparisonBaseCasesAgree(t *testing.T) {
	in := record.Generate(record.Zipf, 2500, 17)
	radix, mr := run(t, pGuided(), Config{}, in)
	comp, mc := run(t, pGuided(), Config{NoRadix: true}, in)
	check(t, in, radix)
	for i := range radix {
		if radix[i] != comp[i] {
			t.Fatalf("radix and comparison outputs differ at %d", i)
		}
	}
	if mr.IOs != mc.IOs {
		t.Fatalf("base case changed I/O count: radix %d, comparison %d", mr.IOs, mc.IOs)
	}
}

func TestTinyMemoryFallsBackToStriped(t *testing.T) {
	p := pdm.Params{D: 2, B: 2, M: 16}
	if GuidedFits(p) {
		t.Fatalf("geometry %+v unexpectedly fits the guided discipline", p)
	}
	in := record.Generate(record.Uniform, 300, 19)
	arr := pdm.New(p)
	defer arr.Close()
	off := loadInput(arr, in)
	s := NewSorter(arr, Config{})
	if !s.cfg.Striped {
		t.Fatal("sorter did not degrade to striped mode")
	}
	reg := s.Sort(off, len(in))
	out := make([]record.Record, reg.N)
	readRegion(arr, reg.Off, out)
	check(t, in, out)
}

func TestGuideThinningBoundsGuideSize(t *testing.T) {
	// Small M relative to N forces totalBlocks >> guideCap.
	p := pdm.Params{D: 2, B: 4, M: 256}
	if !GuidedFits(p) {
		t.Skip("geometry does not fit guided mode")
	}
	in := record.Generate(record.Uniform, 6000, 23)
	out, met := run(t, p, Config{}, in)
	check(t, in, out)
	_, _, guideCap := guidedBudget(p)
	// Thinning halves until totalBlocks/thin <= guideCap; per-run rounding
	// adds at most one entry per run in the group.
	if met.GuidePeak > guideCap+met.MergeArity {
		t.Fatalf("guide peak %d exceeds cap %d + arity %d", met.GuidePeak, guideCap, met.MergeArity)
	}
	if met.GuidePeak == 0 {
		t.Fatal("no guide was ever built")
	}
}

func TestCancellationAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := record.Generate(record.Uniform, 2000, 29)
	arr := pdm.New(pGuided())
	defer arr.Close()
	off := loadInput(arr, in)
	s := NewSorter(arr, Config{Context: ctx})
	defer func() {
		r := recover()
		ab, ok := r.(core.Abort)
		if !ok {
			t.Fatalf("want core.Abort panic, got %v", r)
		}
		if !errors.Is(ab.Err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", ab.Err)
		}
	}()
	s.Sort(off, len(in))
	t.Fatal("sort completed despite cancelled context")
}

// TestCrashAtEveryCommitResumes kills the sort immediately before every
// commit in turn, then resumes from the last checkpointed state on the
// same array and demands output identical to an uninterrupted run.
func TestCrashAtEveryCommitResumes(t *testing.T) {
	in := record.Generate(record.Zipf, 4000, 31)
	want, _ := run(t, pGuided(), Config{}, in)

	// Count the commits of a clean run first.
	commits := 0
	func() {
		arr := pdm.New(pGuided())
		defer arr.Close()
		off := loadInput(arr, in)
		s := NewSorter(arr, Config{Checkpoint: func(State) error { commits++; return nil }})
		s.Sort(off, len(in))
	}()
	if commits < 3 {
		t.Fatalf("expected a multi-commit sort, got %d commits", commits)
	}

	for k := 1; k <= commits; k++ {
		arr := pdm.New(pGuided())
		off := loadInput(arr, in)
		var last State
		have := false
		func() {
			defer func() {
				r := recover()
				ab, ok := r.(core.Abort)
				if !ok || !errors.Is(ab.Err, core.ErrInjectedCrash) {
					t.Fatalf("k=%d: want injected crash, got %v", k, r)
				}
			}()
			s := NewSorter(arr, Config{
				Checkpoint:        func(st State) error { last = st; have = true; return nil },
				CrashAfterCommits: k,
			})
			s.Sort(off, len(in))
			t.Fatalf("k=%d: sort survived the injected crash", k)
		}()
		if arr.Mem.Used() != 0 {
			t.Fatalf("k=%d: crash left %d records charged against memory", k, arr.Mem.Used())
		}

		st := State{InputOff: off, InputN: len(in), Metrics: Metrics{N: len(in)}}
		if have {
			last.InputOff = off
			st = last
		}
		s := NewSorter(arr, Config{})
		reg := s.Resume(st)
		out := make([]record.Record, reg.N)
		readRegion(arr, reg.Off, out)
		if len(out) != len(want) {
			t.Fatalf("k=%d: resumed output has %d records, want %d", k, len(out), len(want))
		}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("k=%d: resumed output differs at %d", k, i)
			}
		}
		met := s.Metrics()
		if met.IOs <= 0 || met.BlocksWrit <= 0 {
			t.Fatalf("k=%d: cumulative metrics not carried: %+v", k, met)
		}
		arr.Close()
	}
}

func TestMetricsPopulated(t *testing.T) {
	in := record.Generate(record.Uniform, 4000, 37)
	_, met := run(t, pGuided(), Config{}, in)
	if met.N != 4000 || met.IOs == 0 || met.ReadIOs == 0 || met.WriteIOs == 0 ||
		met.Passes == 0 || met.Depth == 0 || met.MergeArity < 2 ||
		met.PRAMTime == 0 || met.PRAMWork == 0 || met.MemPeak == 0 {
		t.Fatalf("metrics incomplete: %+v", met)
	}
}

func TestDuplicateHeavyGuideSchedules(t *testing.T) {
	// FewDistinct makes nearly every guide key equal — the schedule's
	// (key, run, block) tie-break must still fetch every block exactly once.
	in := record.Generate(record.FewDistinct, 5000, 41)
	out, met := run(t, pGuided(), Config{}, in)
	check(t, in, out)
	t.Logf("demand fetches on dup-heavy input: %d of %d IOs", met.DemandFetches, met.IOs)
}
